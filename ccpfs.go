// Package ccpfs is a from-scratch Go reproduction of SeqDLM and ccPFS
// from "SeqDLM: A Sequencer-Based Distributed Lock Manager for Efficient
// Shared File Access in a Parallel File System" (SC 2022).
//
// The package is the public facade over the internal implementation:
//
//   - a lock-server engine implementing SeqDLM (early grant, early
//     revocation, PR/NBW/BW/PW modes, automatic lock conversion) and the
//     paper's three baselines (DLM-basic, DLM-Lustre, DLM-datatype);
//   - the ccPFS burst-buffer file system around it: striped files,
//     SN-tagged client page caches, data servers with extent caches, a
//     namespace service, and a POSIX-like client API;
//   - an in-process cluster harness with a simulated fabric (latency,
//     bandwidth, lock-server OPS, disk) standing in for the paper's
//     96-node InfiniBand/NVMe testbed;
//   - workload generators (IOR N-N / N-1, Tile-IO, VPIC-IO) and one
//     experiment runner per table and figure of the paper's evaluation.
//
// Quick start:
//
//	c, _ := ccpfs.NewCluster(ccpfs.Options{Servers: 4, Policy: ccpfs.SeqDLM()})
//	defer c.Close()
//	cl, _ := c.NewClient("node-0")
//	defer cl.Close()
//	f, _ := cl.Create("/data", 1<<20, 4)
//	f.WriteAt([]byte("hello"), 0)
package ccpfs

import (
	"ccpfs/internal/client"
	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/pagecache"
	"ccpfs/internal/sim"
	"ccpfs/internal/workload"
)

// Cluster is an in-process ccPFS deployment: data servers, a namespace
// service, and a factory for client nodes.
type Cluster = cluster.Cluster

// Options configure a cluster.
type Options = cluster.Options

// Client is a ccPFS client node (libccPFS).
type Client = client.Client

// File is an open ccPFS file.
type File = client.File

// WriteOptions tune a write for experiments.
type WriteOptions = client.WriteOptions

// WriteOp is one piece of a vectored (atomic non-contiguous) write.
type WriteOp = client.WriteOp

// Policy selects which DLM the cluster runs.
type Policy = dlm.Policy

// Mode is a lock mode (PR, NBW, BW, PW, and the legacy LR/LW).
type Mode = dlm.Mode

// Hardware is the simulated testbed model.
type Hardware = sim.Hardware

// PageCacheConfig sizes a client's page cache.
type PageCacheConfig = pagecache.Config

// Lock modes, re-exported for WriteOptions.
const (
	PR  = dlm.PR
	NBW = dlm.NBW
	BW  = dlm.BW
	PW  = dlm.PW
)

// NewCluster builds and starts an in-process cluster.
func NewCluster(opts Options) (*Cluster, error) { return cluster.New(opts) }

// SeqDLM returns the paper's proposed lock manager policy.
func SeqDLM() Policy { return dlm.SeqDLM() }

// DLMBasic returns the general traditional DLM baseline.
func DLMBasic() Policy { return dlm.Basic() }

// DLMLustre returns the Lustre-special DLM baseline (expansion capped at
// 32 MB past 32 grants).
func DLMLustre() Policy { return dlm.Lustre() }

// DLMDatatype returns the datatype-locking baseline for atomic
// non-contiguous IO.
func DLMDatatype() Policy { return dlm.Datatype() }

// FastHardware returns a hardware model with no simulated delays, for
// functional use.
func FastHardware() Hardware { return sim.Fast() }

// TableIHardware returns the paper's Table I hardware scaled by factor
// scale (1 = published parameters).
func TableIHardware(scale float64) Hardware { return sim.TableI(scale) }

// Workload re-exports: the generators behind the paper's evaluation.
type (
	// IORConfig parameterizes an IOR-like run (N-N, N-1 segmented,
	// N-1 strided).
	IORConfig = workload.IORConfig
	// IORResult is the timing of a workload run.
	IORResult = workload.Result
	// TileConfig parameterizes the Tile-IO workload.
	TileConfig = workload.TileConfig
	// VPICConfig parameterizes the VPIC-IO particle workload.
	VPICConfig = workload.VPICConfig
)

// Access patterns for IORConfig.
const (
	PatternNN          = workload.NN
	PatternN1Segmented = workload.N1Segmented
	PatternN1Strided   = workload.N1Strided
)

// RunIOR executes an IOR-like workload on the cluster.
func RunIOR(c *Cluster, cfg IORConfig) (IORResult, error) { return workload.RunIOR(c, cfg) }

// RunTileIO executes the Tile-IO workload on the cluster.
func RunTileIO(c *Cluster, cfg TileConfig) (IORResult, error) { return workload.RunTileIO(c, cfg) }

// RunVPIC executes the VPIC-IO workload on the cluster.
func RunVPIC(c *Cluster, cfg VPICConfig) (IORResult, error) { return workload.RunVPIC(c, cfg) }

// CheckpointConfig parameterizes a checkpoint/restart cycle.
type CheckpointConfig = workload.CheckpointConfig

// CheckpointResult reports the checkpoint phase timings.
type CheckpointResult = workload.CheckpointResult

// RunCheckpoint executes an N-1 checkpoint write, drain, and (optionally)
// a restart read-back with a shifted rank mapping, verifying content.
func RunCheckpoint(c *Cluster, cfg CheckpointConfig) (CheckpointResult, error) {
	return workload.RunCheckpoint(c, cfg)
}
