package ccpfs_test

import (
	"fmt"
	"io"
	"log"

	"ccpfs"
)

// The canonical flow: build a cluster, write from one client, read from
// another — coherence enforced by the DLM, no explicit synchronization.
func ExampleNewCluster() {
	c, err := ccpfs.NewCluster(ccpfs.Options{
		Servers:  2,
		Policy:   ccpfs.SeqDLM(),
		Hardware: ccpfs.FastHardware(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	writer, err := c.NewClient("writer")
	if err != nil {
		log.Fatal(err)
	}
	defer writer.Close()
	f, err := writer.Create("/greeting", 1<<20, 2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello from the client cache"), 0); err != nil {
		log.Fatal(err)
	}

	reader, err := c.NewClient("reader")
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	g, err := reader.Open("/greeting")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 27)
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	// Output: hello from the client cache
}

// Running a canned workload: the N-1 strided pattern that motivates the
// paper, on a fast (undelayed) cluster.
func ExampleRunIOR() {
	c, err := ccpfs.NewCluster(ccpfs.Options{
		Servers:  1,
		Policy:   ccpfs.SeqDLM(),
		Hardware: ccpfs.FastHardware(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	res, err := ccpfs.RunIOR(c, ccpfs.IORConfig{
		Pattern:         ccpfs.PatternN1Strided,
		Clients:         4,
		WriteSize:       64 << 10,
		WritesPerClient: 4,
		StripeSize:      1 << 20,
		StripeCount:     1,
		Verify:          true, // read everything back and check it
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote and verified %d KiB in %d ops\n", res.Bytes>>10, res.Ops)
	// Output: wrote and verified 1024 KiB in 16 ops
}

// Atomic appends from concurrent clients never interleave: each lands at
// its own reserved offset under a PW lock.
func ExampleFile_Append() {
	c, err := ccpfs.NewCluster(ccpfs.Options{
		Servers:  1,
		Policy:   ccpfs.SeqDLM(),
		Hardware: ccpfs.FastHardware(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl, err := c.NewClient("appender")
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Create("/log", 1<<20, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range []string{"alpha", "beta", "gamma"} {
		off, err := f.Append([]byte(rec))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s at %d\n", rec, off)
	}
	// Output:
	// alpha at 0
	// beta at 5
	// gamma at 9
}
