//go:build !race

package ccpfs

// raceEnabled reports that the race detector is instrumenting this
// build.
const raceEnabled = false
