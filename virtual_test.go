package ccpfs

import (
	"strings"
	"testing"

	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/sim"
	"ccpfs/internal/workload"
)

// These tests pin the discrete-event mode's two contracts: the same
// seed reproduces a run byte for byte (every duration, SN, and counter
// — not just "roughly the same numbers"), and a virtual run computes
// the same results as the identical workload on the wall clock. The
// first is what makes virtual experiments diffable across machines and
// CI runs; the second is what makes them trustworthy.

// virtualPingPong runs the pingpong experiment in virtual mode at a
// fixed small scale and returns the full rendered table.
func virtualPingPong(t *testing.T, seed int64) (*Experiment, string) {
	t.Helper()
	cfg := DefaultPingPong()
	cfg.Exchanges = 24
	cfg.Virtual = VirtualOpts{Enabled: true, Seed: seed}
	exp, err := RunPingPong(cfg)
	if err != nil {
		t.Fatalf("virtual pingpong (seed %d): %v", seed, err)
	}
	return exp, exp.String()
}

func TestVirtualPingPongDeterministic(t *testing.T) {
	exp1, text1 := virtualPingPong(t, 42)
	exp2, text2 := virtualPingPong(t, 42)
	if text1 != text2 {
		t.Fatalf("same seed, different output:\n--- run 1\n%s\n--- run 2\n%s", text1, text2)
	}
	if len(exp1.Rows) != len(exp2.Rows) {
		t.Fatalf("row count differs: %d vs %d", len(exp1.Rows), len(exp2.Rows))
	}
	for i := range exp1.Rows {
		if exp1.Rows[i] != exp2.Rows[i] {
			t.Fatalf("row %d differs:\n%+v\n%+v", i, exp1.Rows[i], exp2.Rows[i])
		}
	}
	// PIO must be a virtual quantity, not a wall measurement: a 24-
	// exchange run over a 40µs-RTT fabric takes real simulated time,
	// which a wall clock on this in-process cluster would never show.
	if exp1.Rows[0].PIO <= 0 {
		t.Fatalf("virtual PIO not positive: %v", exp1.Rows[0].PIO)
	}
}

// TestVirtualReaderFanDeterministic covers the fan-out path, which
// exercises the broadcast/lease machinery, peer-to-peer propagation,
// and much larger goroutine counts than pingpong.
func TestVirtualReaderFanDeterministic(t *testing.T) {
	run := func() string {
		cfg := DefaultReaderFan()
		cfg.Rounds = 8
		cfg.Readers = []int{16}
		cfg.Virtual = VirtualOpts{Enabled: true, Seed: 7}
		exp, err := RunReaderFan(cfg)
		if err != nil {
			t.Fatalf("virtual readfan: %v", err)
		}
		return exp.String()
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatalf("same seed, different output:\n--- run 1\n%s\n--- run 2\n%s", t1, t2)
	}
}

// ppCounts runs a small pingpong workload on c and returns the
// timing-independent outcomes: ops, bytes, and flushed data.
func ppCounts(t *testing.T, c *cluster.Cluster) (ops, bytes, flushed int64) {
	t.Helper()
	st, err := workload.RunPingPong(c, workload.PingPongConfig{
		Exchanges:   16,
		WriteSize:   32 << 10,
		StripeSize:  1 << 20,
		StripeCount: 2,
	})
	if err != nil {
		t.Fatalf("pingpong: %v", err)
	}
	return st.Ops, st.Bytes, c.FlushedBytes()
}

// TestVirtualRealEquivalence runs the identical workload on the wall
// clock and under a virtual clock and asserts the timing-independent
// results agree: the virtual mode must change WHEN things happen, never
// WHAT happens.
func TestVirtualRealEquivalence(t *testing.T) {
	build := func(hw Hardware) *cluster.Cluster {
		c, err := cluster.New(cluster.Options{
			Servers:  1,
			Policy:   dlm.SeqDLM(),
			Hardware: hw,
			Handoff:  true,
		})
		if err != nil {
			t.Fatalf("cluster: %v", err)
		}
		return c
	}
	hw := quickHW()

	realC := build(hw)
	rOps, rBytes, rFlushed := ppCounts(t, realC)
	realC.Close()

	var vOps, vBytes, vFlushed int64
	v := sim.NewVClock(1)
	hw.Clock = sim.Virtual(v)
	v.Run(func() {
		c := build(hw)
		vOps, vBytes, vFlushed = ppCounts(t, c)
		c.Close()
	})

	if rOps != vOps || rBytes != vBytes {
		t.Fatalf("virtual run diverged: real ops=%d bytes=%d, virtual ops=%d bytes=%d",
			rOps, rBytes, vOps, vBytes)
	}
	// The drain lands every dirty byte in both modes. Flushed totals can
	// include revocation-driven flushes whose count is schedule-dependent,
	// so assert the floor, not equality.
	if vFlushed < vBytes || rFlushed < rBytes {
		t.Fatalf("drain incomplete: real flushed=%d/%d, virtual flushed=%d/%d",
			rFlushed, rBytes, vFlushed, vBytes)
	}
}

// TestVirtualIORVerified runs a verified strided IOR inside a virtual
// clock: the read-back pass proves locking, caching, flushing, and SN
// resolution all work when every delay is an event on the heap.
func TestVirtualIORVerified(t *testing.T) {
	v := sim.NewVClock(99)
	hw := quickHW()
	hw.Clock = sim.Virtual(v)
	var res workload.Result
	var err error
	v.Run(func() {
		var c *cluster.Cluster
		c, err = cluster.New(cluster.Options{
			Servers:  2,
			Policy:   dlm.SeqDLM(),
			Hardware: hw,
		})
		if err != nil {
			return
		}
		res, err = workload.RunIOR(c, workload.IORConfig{
			Pattern:         workload.N1Strided,
			Clients:         4,
			WriteSize:       16 << 10,
			WritesPerClient: 8,
			StripeSize:      256 << 10,
			StripeCount:     2,
			Verify:          true,
		})
		c.Close()
	})
	if err != nil {
		t.Fatalf("virtual IOR: %v", err)
	}
	if res.PIO <= 0 || res.Ops != 32 {
		t.Fatalf("virtual IOR result: PIO=%v ops=%d", res.PIO, res.Ops)
	}
}

// TestVirtualSeedsDiffer guards against the opposite failure: if two
// different seeds produce identical grant-wait tables, the seed is not
// actually feeding the run and "deterministic" would be vacuous. Only
// the timing columns must differ; ops and bytes stay fixed.
func TestVirtualSeedsDiffer(t *testing.T) {
	_, t1 := virtualPingPong(t, 1)
	_, t2 := virtualPingPong(t, 2)
	if t1 == t2 {
		// Not fatal: with a workload this regular the seeded jitter may
		// legitimately cancel out. But it usually should not, so flag it
		// loudly when it happens.
		t.Logf("warning: seeds 1 and 2 produced identical tables:\n%s", t1)
	}
	if !strings.Contains(t1, "handoff") {
		t.Fatalf("table missing handoff variant:\n%s", t1)
	}
}
