package client

import (
	"context"
	"errors"
	"time"

	"ccpfs/internal/dlm"
	"ccpfs/internal/partition"
	"ccpfs/internal/rpc"
	"ccpfs/internal/transport"
	"ccpfs/internal/wire"
)

// This file implements the client side of the partitioned lock space
// (DESIGN.md §12): an RCU-cached partition map routing each resource's
// lock traffic to the slot's current master, refreshed when a server
// answers ErrNotOwner (mastership moved) or a connection dies (master
// crashed). Lock RPCs are retried transparently at the new master, so
// migration and failover cost clients latency, never failures.

// refreshCollapse bounds how often the map is actually re-fetched: a
// burst of redirected RPCs (every lock in a migrated slot) collapses
// into one refresh instead of a per-RPC stampede.
const refreshCollapse = 2 * time.Millisecond

// refreshCallTimeout bounds one map-fetch RPC so a dead server's
// endpoint cannot stall the refresh loop past the other servers.
const refreshCallTimeout = 500 * time.Millisecond

// partitionMap returns the cached map, or nil before the first refresh.
func (c *Client) partitionMap() *partition.Map { return c.pmap.Load() }

// refreshMap re-fetches the partition map, trying every data server
// until one answers (during failover the dead master's endpoint is
// unreachable; any live server shares the coordinator's view, so the
// first success is authoritative). Concurrent callers collapse into one
// fetch. A fetched map installs only if its epoch is not older than the
// cached one.
func (c *Client) refreshMap(ctx context.Context) error {
	c.pmMu.Lock()
	defer c.pmMu.Unlock()
	if c.clk.Since(c.pmLast) < refreshCollapse {
		return nil // a concurrent caller just refreshed
	}
	var lastErr error
	for _, ep := range c.conns.Data {
		callCtx, cancel := context.WithTimeout(ctx, refreshCallTimeout)
		var rep wire.PartitionMapReply
		err := ep.Call(callCtx, wire.MPartitionMap, &wire.Ack{}, &rep)
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		if len(rep.Owners) != partition.NumSlots {
			lastErr = wire.Errorf(wire.CodeInvalid, "client: partition map with %d owners", len(rep.Owners))
			continue
		}
		m := &partition.Map{Epoch: rep.Epoch}
		copy(m.Owner[:], rep.Owners)
		if cur := c.pmap.Load(); cur == nil || m.Epoch >= cur.Epoch {
			c.pmap.Store(m)
		}
		c.pmLast = c.clk.Now()
		c.Stats.MapRefreshes.Inc()
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("client: no data servers to fetch partition map from")
	}
	return lastErr
}

// masterFor resolves a resource's current master endpoint from the
// cached map. A missing map or unowned slot reports ErrNotOwner, which
// the retry loop turns into a refresh.
func (c *Client) masterFor(rid uint64) (*rpc.Endpoint, error) {
	m := c.pmap.Load()
	if m == nil {
		return nil, wire.ErrNotOwner
	}
	owner := m.OwnerOf(rid)
	if owner < 0 || int(owner) >= len(c.conns.Data) {
		return nil, wire.ErrNotOwner
	}
	return c.conns.Data[owner], nil
}

// retryableRedirect reports whether err means "wrong or dead master":
// the server refused mastership (stale map) or the connection died
// (crashed master — its slots will reappear under a successor). Nothing
// else retries here; in particular a draining server's refusals must
// surface, or the client's own shutdown would livelock against it.
func retryableRedirect(err error) bool {
	return wire.CodeOf(err) == wire.CodeNotOwner || errors.Is(err, transport.ErrClosed)
}

// withMaster runs fn against the resource's master, refreshing the map
// and retrying (with backoff, ctx-bounded) on redirects. This is the
// client half of the paper's transparent remastering: lock users above
// never observe the topology change.
func (c *Client) withMaster(ctx context.Context, rid uint64, fn func(ep *rpc.Endpoint) error) error {
	backoff := time.Millisecond
	for {
		ep, err := c.masterFor(rid)
		if err == nil {
			err = fn(ep)
		}
		if err == nil || !retryableRedirect(err) {
			return err
		}
		c.Stats.LockRetries.Inc()
		if rerr := c.refreshMap(ctx); rerr != nil && ctx.Err() != nil {
			return err
		}
		if !c.clk.SleepCtx(ctx, backoff) {
			return err
		}
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
}

// partConn adapts the partition-routed RPC path to dlm.ServerConn. One
// instance serves all resources: the endpoint is resolved per call from
// the current map, so a lock acquired at one master releases at its
// successor after a migration.
type partConn struct{ c *Client }

// Lock implements dlm.ServerConn.
func (p partConn) Lock(ctx context.Context, req dlm.Request) (dlm.Grant, error) {
	var g dlm.Grant
	err := p.c.withMaster(ctx, uint64(req.Resource), func(ep *rpc.Endpoint) error {
		var e error
		g, e = rpcConn{ep: ep}.Lock(ctx, req)
		return e
	})
	return g, err
}

// Release implements dlm.ServerConn.
func (p partConn) Release(ctx context.Context, res dlm.ResourceID, id dlm.LockID) error {
	return p.c.withMaster(ctx, uint64(res), func(ep *rpc.Endpoint) error {
		return rpcConn{ep: ep}.Release(ctx, res, id)
	})
}

// Downgrade implements dlm.ServerConn.
func (p partConn) Downgrade(ctx context.Context, res dlm.ResourceID, id dlm.LockID, m dlm.Mode) error {
	return p.c.withMaster(ctx, uint64(res), func(ep *rpc.Endpoint) error {
		return rpcConn{ep: ep}.Downgrade(ctx, res, id, m)
	})
}

// HandoffAck implements dlm.HandoffAcker against the slot's current
// master, so a delegation confirmed after a migration still lands at
// the server that now carries the delegated lock.
func (p partConn) HandoffAck(ctx context.Context, res dlm.ResourceID, id dlm.LockID) error {
	return p.c.withMaster(ctx, uint64(res), func(ep *rpc.Endpoint) error {
		return rpcConn{ep: ep}.HandoffAck(ctx, res, id)
	})
}

// HandoffAckBatch implements dlm.HandoffAckBatcher against the slot's
// current master.
func (p partConn) HandoffAckBatch(ctx context.Context, res dlm.ResourceID, ids []dlm.LockID) error {
	return p.c.withMaster(ctx, uint64(res), func(ep *rpc.Endpoint) error {
		return rpcConn{ep: ep}.HandoffAckBatch(ctx, res, ids)
	})
}

// slotReportHandler answers a successor master's slot-filtered lock
// gather (§IV-C2 replay, restricted to the slots it just claimed).
func (c *Client) slotReportHandler(_ context.Context, p []byte) (wire.Msg, error) {
	var req wire.SlotReportRequest
	if err := wire.Unmarshal(p, &req); err != nil {
		return nil, err
	}
	slots := make([]partition.Slot, len(req.Slots))
	for i, s := range req.Slots {
		slots[i] = partition.Slot(s)
	}
	return reportFromRecords(c.lc.ExportSlots(slots)), nil
}
