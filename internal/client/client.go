// Package client implements libccPFS, the ccPFS client library: a
// POSIX-like API (Create/Open, WriteAt, ReadAt, Append, Truncate, Fsync,
// Close) whose locking is implicit and transparent, exactly as in the
// paper's prototype. Every IO operation selects a lock mode with the
// Fig. 10 rules, acquires byte-range locks on the stripes it touches (in
// ascending stripe order for multi-stripe atomicity), writes through the
// SN-tagged page cache, and lets the lock client's cancel path flush and
// release on revocation.
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/meta"
	"ccpfs/internal/obs"
	"ccpfs/internal/pagecache"
	"ccpfs/internal/partition"
	"ccpfs/internal/rpc"
	"ccpfs/internal/sim"
	"ccpfs/internal/wire"
)

// DefaultLockAlign is the lock range alignment (the paper's DLMs align
// lock ranges with 4 KB, which is why adjacent unaligned writes
// conflict).
const DefaultLockAlign = 4096

// DefaultMaxFlushRPC bounds the payload of one flush RPC; larger
// flushes are split (the prototype similarly batches cache pages per
// RPC).
const DefaultMaxFlushRPC = 8 << 20

// DefaultFlushWindow is the default bound on concurrent flush RPCs in
// flight to one data server. The flush path is the conflict-resolution
// critical path (a conflicting grant waits on the previous holder's
// flush), so chunks are pipelined instead of issued one blocking RPC at
// a time.
const DefaultFlushWindow = 4

// Config describes one ccPFS client.
type Config struct {
	// Name labels the client.
	Name string
	// ID is the cluster-assigned lock client identifier (must be unique
	// across the cluster and nonzero).
	ID dlm.ClientID
	// Policy must match the servers' DLM policy.
	Policy dlm.Policy
	// PageCache sizes the client cache.
	PageCache pagecache.Config
	// FlushInterval runs the voluntary flush daemon when > 0 (the
	// best-effort durability strategy of §IV-C1).
	FlushInterval time.Duration
	// LockAlign is the lock range alignment (DefaultLockAlign when 0;
	// ignored by the datatype policy, which locks exact ranges).
	LockAlign int64
	// MaxFlushRPC bounds the payload bytes of one flush RPC
	// (DefaultMaxFlushRPC when 0); larger dirty sets are split into a
	// pipeline of smaller RPCs.
	MaxFlushRPC int64
	// FlushWindow bounds how many flush RPCs may be in flight to one
	// data server at a time (DefaultFlushWindow when 0). 1 selects the
	// strictly sequential flush path.
	FlushWindow int
	// Clock is the client's time source: the flush daemon, stats
	// timing, redirect backoff, and background goroutines run on it.
	// The zero value is the wall clock; a virtual run sets a VClock so
	// a whole simulated cluster advances one logical timeline.
	Clock sim.Clock
	// Partitioned routes lock traffic by the cluster's partition map
	// (hash slot → master) instead of stripe placement, refreshing the
	// cached map on ErrNotOwner redirects (DESIGN.md §12); data
	// placement is unaffected. Partitioned servers are also
	// auto-detected at connect time; setting this additionally makes a
	// missing map a mount-time error instead of a silent fallback to
	// placement routing.
	Partitioned bool
}

// Conns carries the client's established RPC endpoints. Meta may equal
// one of the Data endpoints (a data server hosting the namespace).
// Bulk, when set, provides dedicated per-server connections for flush
// and read traffic so bulk transfers never delay lock RPCs — mirroring
// the prototype's split between CaRT RPCs and RDMA bulk transfers. When
// nil, Data carries everything.
type Conns struct {
	Meta *rpc.Endpoint
	Data []*rpc.Endpoint
	Bulk []*rpc.Endpoint
}

// Stats aggregates client-side IO accounting.
type Stats struct {
	// LockNs is time spent acquiring locks inside IO calls.
	LockNs atomic.Int64
	// IONs is total time spent inside IO calls.
	IONs atomic.Int64
	// FlushedBytes counts bytes sent in flush RPCs.
	FlushedBytes atomic.Int64
	// ReadRPCs and WriteOps count operations.
	ReadRPCs atomic.Int64
	WriteOps atomic.Int64

	// ReadCacheHits/ReadCacheMisses count ReadAt segments served from
	// the page cache vs fetched from a data server.
	ReadCacheHits   obs.Counter
	ReadCacheMisses obs.Counter
	// FlushRPCHist observes per-chunk flush RPC round trips;
	// FlushGroupHist observes whole windowed group flushes (collect +
	// pipelined send), the flush-window latency on the cancel critical
	// path.
	FlushRPCHist   obs.Histogram
	FlushGroupHist obs.Histogram

	// LockRetries counts lock RPCs re-sent after a partition redirect
	// (stale map or dead master); MapRefreshes counts partition-map
	// fetches. Both stay zero in unpartitioned deployments.
	LockRetries  obs.Counter
	MapRefreshes obs.Counter
}

// Client is a ccPFS client node.
type Client struct {
	cfg   Config
	clk   sim.Clock
	conns Conns
	lc    *dlm.LockClient
	pc    *pagecache.Cache

	// sizes holds the local size watermark per FID as *atomic.Int64
	// cells, so the hot write path updates its watermark without a
	// client-wide lock (watermarks only grow except at Truncate).
	sizes sync.Map

	// baseCtx is the client's lifecycle: the flush daemon and the
	// context-less convenience wrappers (WriteAt, ReadAt, …) run under
	// it, so closing the client aborts their RPCs.
	baseCtx  context.Context
	cancelFn context.CancelFunc
	stopOnce sync.Once
	daemonWG *sim.Group

	// Stats aggregates client-side IO accounting.
	Stats Stats

	// obs is the client's metrics registry; rpcMetrics instruments all
	// of the client's endpoints (shared, so the numbers aggregate).
	obs        *obs.Registry
	rpcMetrics *rpc.Metrics

	// pmap is the RCU-cached partition map (nil when the servers are
	// unpartitioned: the connect-time probe only installs a map a
	// server actually served). pmMu serializes refreshes and guards
	// pmLast, the stampede-collapse timestamp.
	pmap   atomic.Pointer[partition.Map]
	pmMu   sync.Mutex
	pmLast time.Time

	// Peer transport for client-to-client lock handoff (DESIGN.md §13):
	// peerSrv accepts inbound transfers, peerEps caches one outbound
	// endpoint per peer, peerDial resolves a lock client ID to a dialed
	// endpoint (nil disables the fast path — stamped cancels then fall
	// back to releasing through the server).
	peerSrv  *rpc.Server
	peerMu   sync.Mutex
	peerEps  map[dlm.ClientID]*rpc.Endpoint
	peerDial PeerDialer
}

// New builds a client over established connections. It registers the
// revocation handler on every data connection and sends Hello to each;
// ctx bounds those handshake round trips.
func New(ctx context.Context, cfg Config, conns Conns) (*Client, error) {
	if cfg.ID == 0 {
		return nil, errors.New("client: ID must be nonzero")
	}
	if cfg.LockAlign == 0 {
		cfg.LockAlign = DefaultLockAlign
	}
	if cfg.MaxFlushRPC == 0 {
		cfg.MaxFlushRPC = DefaultMaxFlushRPC
	}
	if cfg.FlushWindow == 0 {
		cfg.FlushWindow = DefaultFlushWindow
	}
	lifeCtx, cancel := context.WithCancel(context.Background())
	c := &Client{
		cfg:      cfg,
		clk:      cfg.Clock,
		conns:    conns,
		pc:       pagecache.New(cfg.PageCache),
		baseCtx:  lifeCtx,
		cancelFn: cancel,
	}
	c.daemonWG = sim.NewGroup(c.clk)
	c.pc.SetClock(c.clk)
	c.lc = dlm.NewLockClient(cfg.ID, cfg.Policy, c.route, dlm.FlusherFunc(c.flushForCancel))
	c.lc.SetClock(c.clk)
	c.rpcMetrics = rpc.NewMetrics()
	c.obs = obs.NewRegistry()
	c.registerObs()

	// Endpoints arrive unstarted: register the revocation handler and
	// metrics on every data connection first, then start the read
	// loops, then announce the client identity to every server.
	for i, ep := range conns.Data {
		ep.Handle(wire.MRevoke, c.handleRevoke)
		ep.Handle(wire.MRevokeBatch, c.handleRevokeBatch)
		ep.Handle(wire.MHandoff, c.handleHandoff)
		ep.Handle(wire.MReport, c.reportHandler(i))
		ep.Handle(wire.MReportSlots, c.slotReportHandler)
	}
	started := make(map[*rpc.Endpoint]bool, 2*len(conns.Data)+1)
	start := func(ep *rpc.Endpoint) {
		if ep != nil && !started[ep] {
			started[ep] = true
			ep.SetMetrics(c.rpcMetrics)
			ep.Start()
		}
	}
	for _, ep := range conns.Data {
		start(ep)
	}
	for _, ep := range conns.Bulk {
		start(ep)
	}
	start(conns.Meta)
	for _, ep := range conns.Data {
		var rep wire.HelloReply
		if err := ep.Call(ctx, wire.MHello, &wire.HelloRequest{NodeName: cfg.Name, ClientID: uint32(cfg.ID)}, &rep); err != nil {
			return nil, fmt.Errorf("client: hello: %w", err)
		}
	}
	for _, ep := range conns.Bulk {
		var rep wire.HelloReply
		if err := ep.Call(ctx, wire.MHello, &wire.HelloRequest{NodeName: cfg.Name, ClientID: uint32(cfg.ID), Bulk: true}, &rep); err != nil {
			return nil, fmt.Errorf("client: bulk hello: %w", err)
		}
	}
	// Fetch the initial partition map so the first lock RPC routes
	// correctly. With cfg.Partitioned a failure surfaces a
	// misconfigured cluster at mount time; without it the probe
	// auto-detects partitioned servers (cmd/ccpfs-server
	// -lock-servers) — unpartitioned ones answer with an empty map,
	// the probe errors, and routing stays placement-based.
	if err := c.refreshMap(ctx); err != nil && cfg.Partitioned {
		return nil, fmt.Errorf("client: partition map: %w", err)
	}
	if cfg.FlushInterval > 0 {
		c.daemonWG.Go(c.flushDaemon)
	}
	return c, nil
}

// registerObs wires the client's instruments into its registry: page
// cache occupancy as sampled gauges, lock-client protocol counters,
// the IO/flush instruments, and the shared endpoint metrics.
func (c *Client) registerObs() {
	r := c.obs
	r.Func("client.dirty_bytes", c.pc.DirtyBytes)
	r.Func("client.cached_bytes", c.pc.CachedBytes)
	r.Func("client.flushed_bytes", c.Stats.FlushedBytes.Load)
	r.Func("client.read_rpcs", c.Stats.ReadRPCs.Load)
	r.Func("client.write_ops", c.Stats.WriteOps.Load)
	r.RegisterCounter("client.read_cache_hits", &c.Stats.ReadCacheHits)
	r.RegisterCounter("client.read_cache_misses", &c.Stats.ReadCacheMisses)
	r.RegisterHistogram("client.flush_rpc", &c.Stats.FlushRPCHist)
	r.RegisterHistogram("client.flush_group", &c.Stats.FlushGroupHist)
	r.RegisterCounter("client.lock_retries", &c.Stats.LockRetries)
	r.RegisterCounter("client.map_refreshes", &c.Stats.MapRefreshes)
	r.Func("lockclient.cache_hits", c.lc.Stats.CacheHits.Load)
	r.Func("lockclient.cache_misses", c.lc.Stats.CacheMisses.Load)
	r.Func("lockclient.revocations", c.lc.Stats.Revocations.Load)
	r.Func("lockclient.cancels", c.lc.Stats.Cancels.Load)
	r.RegisterCollector(c.rpcMetrics)
}

// Obs exposes the client's metrics registry.
func (c *Client) Obs() *obs.Registry { return c.obs }

// Locks exposes the lock client (stats and tests).
func (c *Client) Locks() *dlm.LockClient { return c.lc }

// PageCache exposes the page cache (stats and tests).
func (c *Client) PageCache() *pagecache.Cache { return c.pc }

// Close drains the client with no deadline: every dirty page is
// flushed, every cached lock released, then the connections close. It
// is idempotent.
func (c *Client) Close() { c.Shutdown(context.Background()) }

// Shutdown drains the client gracefully, bounded by ctx: it stops the
// flush daemon, flushes all dirty stripes (so the data is readable by
// other clients afterwards), releases every cached lock, publishes size
// watermarks, and closes the connections. When ctx fires mid-drain the
// remaining steps are skipped and the connections close hard — the
// crash-equivalent the protocol already tolerates.
func (c *Client) Shutdown(ctx context.Context) error {
	var err error
	c.stopOnce.Do(func() {
		// Stop the daemon first so it cannot race the final flush.
		c.cancelFn()
		c.daemonWG.Wait()
		if ferr := c.flushStripes(ctx, c.pc.DirtyStripes(), extent.New(0, extent.Inf), ^extent.SN(0)); ferr != nil {
			err = ferr
		}
		if rerr := c.lc.ReleaseAll(ctx); rerr != nil && err == nil {
			err = rerr
		}
		c.pushAllSizes(ctx)
		c.lc.Close()
		c.closeConns()
	})
	return err
}

// Kill abruptly severs the client's connections without flushing or
// releasing anything — the client-crash model of §IV-C1. All dirty
// cached data is lost; the servers force-release this client's locks
// when the next conflicting request revokes them.
func (c *Client) Kill() {
	c.stopOnce.Do(func() {
		c.cancelFn()
		c.daemonWG.Wait()
		c.lc.Close()
		c.closeConns()
	})
}

func (c *Client) closeConns() {
	c.closePeers()
	for _, ep := range c.conns.Data {
		ep.Close()
	}
	for _, ep := range c.conns.Bulk {
		ep.Close()
	}
	if c.conns.Meta != nil && !c.isDataEndpoint(c.conns.Meta) {
		c.conns.Meta.Close()
	}
}

func (c *Client) isDataEndpoint(ep *rpc.Endpoint) bool {
	for _, d := range c.conns.Data {
		if d == ep {
			return true
		}
	}
	return false
}

func (c *Client) handleRevoke(_ context.Context, p []byte) (wire.Msg, error) {
	var req wire.RevokeRequest
	if err := wire.Unmarshal(p, &req); err != nil {
		return nil, err
	}
	c.lc.OnRevokeStamped(dlm.ResourceID(req.Resource), dlm.LockID(req.LockID), stampOf(req.Handoff))
	return &wire.Ack{}, nil
}

// handleRevokeBatch processes a server's coalesced revocation callback:
// each entry runs the same OnRevoke path as an individual MRevoke, and
// the reply acks them all in one frame.
func (c *Client) handleRevokeBatch(_ context.Context, p []byte) (wire.Msg, error) {
	var req wire.RevokeBatch
	if err := wire.Unmarshal(p, &req); err != nil {
		return nil, err
	}
	ack := &wire.RevokeBatchAck{Acked: make([]wire.RevokeEntry, 0, len(req.Entries))}
	for _, e := range req.Entries {
		c.lc.OnRevokeStamped(dlm.ResourceID(e.Resource), dlm.LockID(e.LockID), stampOf(e.Handoff))
		ack.Acked = append(ack.Acked, e)
	}
	return ack, nil
}

// stampOf converts a wire handoff stamp to the lock client's form.
func stampOf(w *wire.HandoffStamp) *dlm.HandoffStamp {
	if w == nil {
		return nil
	}
	return &dlm.HandoffStamp{
		NextOwner: dlm.ClientID(w.NextOwner),
		NewLockID: dlm.LockID(w.NewLockID),
		Mode:      dlm.Mode(w.Mode),
		SN:        extent.SN(w.SN),
		MustFlush: w.MustFlush,
		Broadcast: stampFromWire(w.Broadcast),
	}
}

// reportHandler answers a recovering server's lock-state gather
// (§IV-C2) with the locks placed on that server.
func (c *Client) reportHandler(serverIdx int) rpc.Handler {
	return func(context.Context, []byte) (wire.Msg, error) {
		records := c.lc.Export(func(res dlm.ResourceID) bool {
			return meta.PlaceStripe(uint64(res), len(c.conns.Data)) == serverIdx
		})
		return reportFromRecords(records), nil
	}
}

// reportFromRecords maps engine lock records to the wire replay form,
// carrying the delegation flags crash takeover force-resolves.
func reportFromRecords(records []dlm.LockRecord) *wire.LockReport {
	rep := &wire.LockReport{}
	for _, r := range records {
		var flags uint8
		if r.Delegated {
			flags |= wire.LockFlagDelegated
		}
		if r.HandedOff {
			flags |= wire.LockFlagHandedOff
		}
		rep.Locks = append(rep.Locks, wire.LockRecord{
			Resource: uint64(r.Resource),
			Client:   uint32(r.Client),
			LockID:   uint64(r.LockID),
			Mode:     uint8(r.Mode),
			Range:    r.Range,
			SN:       r.SN,
			State:    uint8(r.State),
			Flags:    flags,
		})
	}
	return rep
}

// endpointFor returns the control endpoint of the server owning a
// resource (lock traffic).
func (c *Client) endpointFor(rid uint64) *rpc.Endpoint {
	return c.conns.Data[meta.PlaceStripe(rid, len(c.conns.Data))]
}

// bulkFor returns the bulk endpoint of the server owning a resource
// (flush and read traffic); without dedicated bulk connections it is the
// control endpoint.
func (c *Client) bulkFor(rid uint64) *rpc.Endpoint {
	if len(c.conns.Bulk) == len(c.conns.Data) && len(c.conns.Bulk) > 0 {
		return c.conns.Bulk[meta.PlaceStripe(rid, len(c.conns.Data))]
	}
	return c.endpointFor(rid)
}

// route implements the lock client's resource → server mapping: the
// static stripe placement, or — when the lock space is partitioned —
// the map-routed, redirect-retrying connection.
func (c *Client) route(res dlm.ResourceID) dlm.ServerConn {
	// Partitioned explicitly, or a partition map was detected at
	// connect time (the map only installs when a server served one).
	if c.cfg.Partitioned || c.partitionMap() != nil {
		return partConn{c: c}
	}
	return rpcConn{ep: c.endpointFor(uint64(res))}
}

// rpcConn adapts an RPC endpoint to dlm.ServerConn.
type rpcConn struct{ ep *rpc.Endpoint }

// Lock implements dlm.ServerConn.
func (c rpcConn) Lock(ctx context.Context, req dlm.Request) (dlm.Grant, error) {
	w := &wire.LockRequest{
		Resource: uint64(req.Resource),
		Client:   uint32(req.Client),
		Mode:     uint8(req.Mode),
		Range:    req.Range,
		Extents:  req.Extents,
	}
	for _, id := range req.HandoffAcks {
		w.HandoffAcks = append(w.HandoffAcks, uint64(id))
	}
	var rep wire.LockGrant
	if err := c.ep.Call(ctx, wire.MLock, w, &rep); err != nil {
		return dlm.Grant{}, err
	}
	g := dlm.Grant{
		LockID:      dlm.LockID(rep.LockID),
		Mode:        dlm.Mode(rep.Mode),
		Range:       rep.Range,
		SN:          rep.SN,
		State:       dlm.State(rep.State),
		Delegated:   rep.Delegated,
		GatherParts: int(rep.GatherParts),
		HandBack:    stampFromWire(rep.HandBack),
	}
	for _, id := range rep.Absorbed {
		g.Absorbed = append(g.Absorbed, dlm.LockID(id))
	}
	return g, nil
}

// Release implements dlm.ServerConn.
func (c rpcConn) Release(ctx context.Context, res dlm.ResourceID, id dlm.LockID) error {
	return c.ep.Call(ctx, wire.MRelease, &wire.ReleaseRequest{Resource: uint64(res), LockID: uint64(id)}, nil)
}

// Downgrade implements dlm.ServerConn.
func (c rpcConn) Downgrade(ctx context.Context, res dlm.ResourceID, id dlm.LockID, m dlm.Mode) error {
	return c.ep.Call(ctx, wire.MDowngrade, &wire.DowngradeRequest{Resource: uint64(res), LockID: uint64(id), NewMode: uint8(m)}, nil)
}

// HandoffAck implements dlm.HandoffAcker: a standalone delegation
// confirmation, sent when no lock request comes soon enough to
// piggyback it.
func (c rpcConn) HandoffAck(ctx context.Context, res dlm.ResourceID, id dlm.LockID) error {
	return c.ep.Call(ctx, wire.MHandoffAck, &wire.HandoffAckRequest{Resource: uint64(res), LockID: uint64(id)}, nil)
}

// HandoffAckBatch implements dlm.HandoffAckBatcher: several queued
// confirmations for one resource go out as a single RPC, the extras
// riding in the request's More list.
func (c rpcConn) HandoffAckBatch(ctx context.Context, res dlm.ResourceID, ids []dlm.LockID) error {
	if len(ids) == 0 {
		return nil
	}
	req := &wire.HandoffAckRequest{Resource: uint64(res), LockID: uint64(ids[0])}
	for _, id := range ids[1:] {
		req.More = append(req.More, uint64(id))
	}
	return c.ep.Call(ctx, wire.MHandoffAck, req, nil)
}

// flushForCancel is the lock client's data path: flush dirty data under
// the canceling lock, push the size watermark, and drop the cached pages
// that lose their lock protection.
func (c *Client) flushForCancel(ctx context.Context, res dlm.ResourceID, rng extent.Extent, sn extent.SN) error {
	// Redo failed flush RPCs a few times (the recovery convention of
	// §IV-C2) before giving up with the ephemeral-cache semantics. A
	// dead context stops the retries — the caller is gone.
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = c.flushRange(ctx, res, rng, sn); err == nil {
			break
		}
		if ctx.Err() != nil {
			break
		}
	}
	if err != nil {
		return err
	}
	fid, _ := meta.SplitResource(uint64(res))
	c.pushSize(ctx, fid)
	// Only drop cache coverage the canceling lock was protecting; data
	// with newer SNs belongs to still-granted locks whose expanded
	// ranges may overlap this one.
	c.pc.InvalidateUpTo(uint64(res), rng, sn)
	return nil
}

// flushRange sends the dirty blocks of res within rng with SN <= sn.
func (c *Client) flushRange(ctx context.Context, res dlm.ResourceID, rng extent.Extent, sn extent.SN) error {
	return c.flushGroup(ctx, []uint64{uint64(res)}, rng, sn)
}

// flushStripes flushes the dirty data of many stripes at once, fanning
// out across data servers: stripes are grouped by owning server and
// each group flushes through its own bulk endpoint with an independent
// in-flight window, so a multi-stripe Fsync overlaps every server's
// round trips. The first error cancels all remaining work.
func (c *Client) flushStripes(ctx context.Context, rids []uint64, rng extent.Extent, sn extent.SN) error {
	switch len(rids) {
	case 0:
		return nil
	case 1:
		return c.flushGroup(ctx, rids, rng, sn)
	}
	groups := make(map[int][]uint64)
	for _, rid := range rids {
		si := meta.PlaceStripe(rid, len(c.conns.Data))
		groups[si] = append(groups[si], rid)
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		once  sync.Once
		first error
	)
	fail := func(err error) {
		once.Do(func() {
			first = err
			cancel()
		})
	}
	// Fan out in sorted server order: map iteration order is the one
	// nondeterminism a seeded virtual run cannot absorb, since it decides
	// which group's RPCs enqueue first on the shared timeline.
	order := make([]int, 0, len(groups))
	for si := range groups {
		order = append(order, si)
	}
	sort.Ints(order)
	grp := sim.NewGroup(c.clk)
	for _, si := range order {
		g := groups[si]
		grp.Go(func() {
			if err := c.flushGroup(gctx, g, rng, sn); err != nil {
				fail(err)
			}
		})
	}
	grp.Wait()
	return first
}

// stripeFlush is one stripe's collected dirty set and the chunked flush
// RPCs that will carry it.
type stripeFlush struct {
	rid    uint64
	blocks []pagecache.Block
	reqs   []*wire.FlushRequest
}

// collectStripe drains rid's dirty blocks and splits them into flush
// RPCs of at most MaxFlushRPC payload bytes each. The blocks are
// disjoint by construction (the page cache removes each dirty extent as
// it is collected) and each carries the SN of the lock it was written
// under, so the resulting chunks may land at the server in any order —
// the server's extent cache resolves overlap by SN, not arrival order.
func (c *Client) collectStripe(rid uint64, rng extent.Extent, sn extent.SN) *stripeFlush {
	blocks := c.pc.CollectDirty(rid, rng, sn)
	if len(blocks) == 0 {
		return nil
	}
	sf := &stripeFlush{rid: rid, blocks: blocks}
	req := &wire.FlushRequest{Resource: rid, Client: uint32(c.cfg.ID)}
	var size int64
	for _, b := range blocks {
		if size > 0 && size+int64(len(b.Data)) > c.cfg.MaxFlushRPC {
			sf.reqs = append(sf.reqs, req)
			req = &wire.FlushRequest{Resource: rid, Client: uint32(c.cfg.ID)}
			size = 0
		}
		req.Blocks = append(req.Blocks, wire.Block{Range: b.Range, SN: b.SN, Data: b.Data})
		size += int64(len(b.Data))
	}
	if len(req.Blocks) > 0 {
		sf.reqs = append(sf.reqs, req)
	}
	return sf
}

// flushGroup flushes a set of stripes that live on the same data
// server. Any failure re-dirties every collected stripe of the group so
// the data is retried by a later flush (SN-tagged re-application is
// idempotent at the server).
func (c *Client) flushGroup(ctx context.Context, rids []uint64, rng extent.Extent, sn extent.SN) error {
	var (
		flushes []*stripeFlush
		chunks  []*wire.FlushRequest
	)
	for _, rid := range rids {
		if sf := c.collectStripe(rid, rng, sn); sf != nil {
			flushes = append(flushes, sf)
			chunks = append(chunks, sf.reqs...)
		}
	}
	if len(chunks) == 0 {
		return nil
	}
	start := c.clk.Now()
	err := c.sendChunks(ctx, c.bulkFor(flushes[0].rid), chunks)
	c.Stats.FlushGroupHist.Observe(c.clk.Since(start))
	if err != nil {
		for _, sf := range flushes {
			c.pc.Redirty(sf.rid, sf.blocks)
		}
	}
	return err
}

// sendChunks issues the flush RPCs with up to FlushWindow in flight at
// once. The first error cancels the window: outstanding calls abort and
// their server-side work is withdrawn via rpc cancel frames.
func (c *Client) sendChunks(ctx context.Context, ep *rpc.Endpoint, chunks []*wire.FlushRequest) error {
	send := func(ctx context.Context, req *wire.FlushRequest) error {
		var size int64
		for i := range req.Blocks {
			size += int64(len(req.Blocks[i].Data))
		}
		start := c.clk.Now()
		err := ep.Call(ctx, wire.MFlush, req, nil)
		c.Stats.FlushRPCHist.Observe(c.clk.Since(start))
		if err != nil {
			return err
		}
		c.Stats.FlushedBytes.Add(size)
		return nil
	}
	workers := c.cfg.FlushWindow
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers <= 1 {
		for _, req := range chunks {
			if err := send(ctx, req); err != nil {
				return err
			}
		}
		return nil
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		once  sync.Once
		first error
	)
	fail := func(err error) {
		once.Do(func() {
			first = err
			cancel()
		})
	}
	var next atomic.Int64
	grp := sim.NewGroup(c.clk)
	for w := 0; w < workers; w++ {
		grp.Go(func() {
			for wctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				if err := send(wctx, chunks[i]); err != nil {
					fail(err)
					return
				}
			}
		})
	}
	grp.Wait()
	if first == nil && ctx.Err() != nil {
		// The caller's context fired between chunks: no worker pushed an
		// error, but the flush did not complete.
		first = wire.FromContext(ctx.Err())
	}
	return first
}

// flushDaemon implements the voluntary flush of §IV-C1: once dirty data
// crosses the MinDirty threshold, it is pushed to data servers in the
// background without releasing any lock.
func (c *Client) flushDaemon() {
	for c.clk.SleepCtx(c.baseCtx, c.cfg.FlushInterval) {
		if !c.pc.NeedsFlush() {
			continue
		}
		c.flushStripes(c.baseCtx, c.pc.DirtyStripes(), extent.New(0, extent.Inf), ^extent.SN(0))
	}
}

// sizeCell returns fid's watermark cell, creating it if needed.
func (c *Client) sizeCell(fid uint64) *atomic.Int64 {
	if v, ok := c.sizes.Load(fid); ok {
		return v.(*atomic.Int64)
	}
	v, _ := c.sizes.LoadOrStore(fid, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// localSize returns the locally known size watermark for fid.
func (c *Client) localSize(fid uint64) int64 {
	if v, ok := c.sizes.Load(fid); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// noteSize records a local file size watermark (CAS max-update).
func (c *Client) noteSize(fid uint64, size int64) {
	cell := c.sizeCell(fid)
	for {
		cur := cell.Load()
		if size <= cur || cell.CompareAndSwap(cur, size) {
			return
		}
	}
}

// pushSize publishes the local watermark to the metadata service so
// readers that acquire the lock after a release observe the size.
func (c *Client) pushSize(ctx context.Context, fid uint64) {
	size := c.localSize(fid)
	if size == 0 {
		return
	}
	c.conns.Meta.Call(ctx, wire.MSetSize, &wire.SetSizeRequest{FID: fid, Size: size}, nil)
}

func (c *Client) pushAllSizes(ctx context.Context) {
	var fids []uint64
	c.sizes.Range(func(k, _ any) bool {
		fids = append(fids, k.(uint64))
		return true
	})
	for _, fid := range fids {
		c.pushSize(ctx, fid)
	}
}

// Create creates a file with the given stripe layout and opens it.
// Context-less wrappers like this one run under the client's lifecycle
// context; the *Context variants take a per-call deadline.
func (c *Client) Create(path string, stripeSize int64, stripeCount uint32) (*File, error) {
	return c.CreateContext(c.baseCtx, path, stripeSize, stripeCount)
}

// CreateContext is Create bounded by ctx.
func (c *Client) CreateContext(ctx context.Context, path string, stripeSize int64, stripeCount uint32) (*File, error) {
	var rep wire.FileReply
	err := c.conns.Meta.Call(ctx, wire.MCreate, &wire.CreateRequest{
		Path: path, StripeSize: stripeSize, StripeCount: stripeCount,
	}, &rep)
	if err != nil {
		return nil, err
	}
	return c.fileOf(path, &rep), nil
}

// Open opens an existing file.
func (c *Client) Open(path string) (*File, error) {
	return c.OpenContext(c.baseCtx, path)
}

// OpenContext is Open bounded by ctx.
func (c *Client) OpenContext(ctx context.Context, path string) (*File, error) {
	var rep wire.FileReply
	if err := c.conns.Meta.Call(ctx, wire.MOpen, &wire.OpenRequest{Path: path}, &rep); err != nil {
		return nil, err
	}
	return c.fileOf(path, &rep), nil
}

// OpenOrCreate opens path, creating it with the layout if absent.
func (c *Client) OpenOrCreate(path string, stripeSize int64, stripeCount uint32) (*File, error) {
	f, err := c.Open(path)
	if err == nil {
		return f, nil
	}
	f, err = c.Create(path, stripeSize, stripeCount)
	if err == nil {
		return f, nil
	}
	return c.Open(path) // lost a create race; open what won
}

// Remove deletes a file from the namespace.
func (c *Client) Remove(path string) error {
	return c.conns.Meta.Call(c.baseCtx, wire.MRemove, &wire.OpenRequest{Path: path}, nil)
}

// List returns every path in the namespace.
func (c *Client) List() ([]string, error) {
	var rep wire.ListReply
	if err := c.conns.Meta.Call(c.baseCtx, wire.MList, &wire.Ack{}, &rep); err != nil {
		return nil, err
	}
	return rep.Paths, nil
}

func (c *Client) fileOf(path string, rep *wire.FileReply) *File {
	c.noteSize(rep.FID, rep.Size)
	return &File{
		c:           c,
		path:        path,
		fid:         rep.FID,
		stripeSize:  rep.StripeSize,
		stripeCount: rep.StripeCount,
	}
}

// File is an open ccPFS file.
type File struct {
	c           *Client
	path        string
	fid         uint64
	stripeSize  int64
	stripeCount uint32
}

// Path returns the file path.
func (f *File) Path() string { return f.path }

// FID returns the file identifier.
func (f *File) FID() uint64 { return f.fid }

// Layout returns the stripe layout.
func (f *File) Layout() (stripeSize int64, stripeCount uint32) {
	return f.stripeSize, f.stripeCount
}

// Resource returns the lock resource of one stripe.
func (f *File) Resource(stripe uint32) dlm.ResourceID {
	return dlm.ResourceID(meta.ResourceID(f.fid, stripe))
}

// Size returns the file size, refreshing from the metadata service.
func (f *File) Size() (int64, error) { return f.SizeContext(f.c.baseCtx) }

// SizeContext is Size bounded by ctx.
func (f *File) SizeContext(ctx context.Context) (int64, error) {
	var rep wire.FileReply
	if err := f.c.conns.Meta.Call(ctx, wire.MStat, &wire.OpenRequest{Path: f.path}, &rep); err != nil {
		return 0, err
	}
	f.c.noteSize(f.fid, rep.Size)
	return f.c.localSize(f.fid), nil
}

// WriteOptions tune a write for experiments; the zero value follows the
// paper's deterministic selection rules.
type WriteOptions struct {
	// Mode forces a lock mode (must cover the write); ModeNone selects
	// automatically per Fig. 10.
	Mode dlm.Mode
	// LockWholeStripe acquires [0, EOF) on each touched stripe instead
	// of the write's own range — the totally-conflicting workload of the
	// microbenchmarks (Fig. 16).
	LockWholeStripe bool
}

// WriteAt writes p at file offset off, returning once the data is in
// the client cache (the PIO semantics the paper measures). It runs
// under the client's lifecycle context; WriteAtContext takes a per-call
// deadline.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	return f.WriteAtContext(f.c.baseCtx, p, off)
}

// WriteAtContext is WriteAt bounded by ctx: a canceled context aborts
// the lock acquisition (withdrawing any queued remote request) and
// returns before the write lands in the cache.
func (f *File) WriteAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	return f.WriteAtOpts(ctx, p, off, WriteOptions{})
}

// WriteAtOpts is WriteAtContext with experiment controls.
func (f *File) WriteAtOpts(ctx context.Context, p []byte, off int64, o WriteOptions) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("client: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	start := f.c.clk.Now()
	defer func() {
		f.c.Stats.IONs.Add(f.c.clk.Since(start).Nanoseconds())
		f.c.Stats.WriteOps.Add(1)
	}()

	segs := meta.SplitRange(off, int64(len(p)), f.stripeSize, f.stripeCount)
	stripes := meta.StripesOf(segs)
	mode := o.Mode
	if mode == dlm.ModeNone {
		mode = dlm.SelectMode(false, false, len(stripes) > 1)
	}

	handles, err := f.acquireStripes(ctx, stripes, segs, mode, o.LockWholeStripe)
	if err != nil {
		return 0, err
	}
	for _, seg := range segs {
		h := handles[seg.Stripe]
		f.c.pc.Write(uint64(f.Resource(seg.Stripe)), seg.Off, p[seg.FileOff-off:seg.FileOff-off+seg.Len], h.SN())
	}
	f.c.noteSize(f.fid, off+int64(len(p)))
	f.unlockAll(handles)
	return len(p), nil
}

// acquireStripes obtains one lock per touched stripe in ascending stripe
// order, timing the locking part.
func (f *File) acquireStripes(ctx context.Context, stripes []uint32, segs []meta.Segment, mode dlm.Mode, whole bool) (map[uint32]*dlm.Handle, error) {
	lockStart := f.c.clk.Now()
	defer func() { f.c.Stats.LockNs.Add(f.c.clk.Since(lockStart).Nanoseconds()) }()
	handles := make(map[uint32]*dlm.Handle, len(stripes))
	for _, st := range stripes {
		lo, hi, _ := meta.StripeRange(segs, st)
		rng := f.lockRange(lo, hi, whole)
		h, err := f.c.lc.Acquire(ctx, f.Resource(st), mode, rng)
		if err != nil {
			f.unlockAll(handles)
			return nil, err
		}
		handles[st] = h
	}
	return handles, nil
}

func (f *File) lockRange(lo, hi int64, whole bool) extent.Extent {
	if whole {
		return extent.New(0, extent.Inf)
	}
	if f.c.cfg.Policy.Expand == dlm.ExpandNone {
		return extent.New(lo, hi) // datatype: exact, unaligned ranges
	}
	a := f.c.cfg.LockAlign
	return extent.New(extent.AlignDown(lo, a), extent.AlignUp(hi, a))
}

func (f *File) unlockAll(handles map[uint32]*dlm.Handle) {
	for _, h := range handles {
		f.c.lc.Unlock(h)
	}
}

// ReadAt reads into p from file offset off. It returns io.EOF when off
// is at or beyond the file size, and a short count when the file ends
// inside p.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	return f.ReadAtContext(f.c.baseCtx, p, off)
}

// ReadAtContext is ReadAt bounded by ctx.
func (f *File) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("client: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	start := f.c.clk.Now()
	defer func() { f.c.Stats.IONs.Add(f.c.clk.Since(start).Nanoseconds()) }()

	// Lock the full requested range first: acquiring the PR locks is
	// what forces conflicting writers to flush their data *and* publish
	// their size watermark, so the size check below observes them.
	segsAll := meta.SplitRange(off, int64(len(p)), f.stripeSize, f.stripeCount)
	stripes := meta.StripesOf(segsAll)
	handles, err := f.acquireStripes(ctx, stripes, segsAll, dlm.SelectMode(true, false, false), false)
	if err != nil {
		return 0, err
	}
	defer f.unlockAll(handles)

	known := f.c.localSize(f.fid)
	if off+int64(len(p)) > known {
		if known, err = f.SizeContext(ctx); err != nil {
			return 0, err
		}
	}
	if off >= known {
		return 0, io.EOF
	}
	n := int64(len(p))
	if off+n > known {
		n = known - off
	}

	segs := meta.SplitRange(off, n, f.stripeSize, f.stripeCount)
	for _, seg := range segs {
		rid := uint64(f.Resource(seg.Stripe))
		if !f.c.pc.Covered(rid, seg.Off, seg.Len) {
			f.c.Stats.ReadCacheMisses.Inc()
			if err := f.fetch(ctx, rid, seg, handles[seg.Stripe]); err != nil {
				return 0, err
			}
		} else {
			f.c.Stats.ReadCacheHits.Inc()
		}
		f.c.pc.Read(rid, seg.Off, p[seg.FileOff-off:seg.FileOff-off+seg.Len])
	}
	if n < int64(len(p)) {
		return int(n), io.EOF
	}
	return int(n), nil
}

// fetch reads a segment from its data server and fills the cache as
// clean data under the read lock's SN.
func (f *File) fetch(ctx context.Context, rid uint64, seg meta.Segment, h *dlm.Handle) error {
	ep := f.c.bulkFor(rid)
	var rep wire.ReadReply
	err := ep.Call(ctx, wire.MRead, &wire.ReadRequest{
		Resource: rid,
		Range:    extent.Span(seg.Off, seg.Len),
	}, &rep)
	if err != nil {
		return err
	}
	f.c.Stats.ReadRPCs.Add(1)
	for _, b := range rep.Blocks {
		// Tag the fill with the SN the server reported for the range,
		// not the read lock's SN: a fill must represent how new the
		// server's bytes actually are, so it can never clobber newer
		// (possibly dirty) cached data.
		f.c.pc.Fill(rid, b.Range.Start, b.Data, b.SN)
	}
	return nil
}

// Append atomically appends p at the end of the file and returns the
// offset it landed at. The size read-and-bump is the implicit read that
// makes append select PW under the Fig. 10 rules.
func (f *File) Append(p []byte) (int64, error) {
	return f.AppendContext(f.c.baseCtx, p)
}

// AppendContext is Append bounded by ctx.
func (f *File) AppendContext(ctx context.Context, p []byte) (int64, error) {
	var rep wire.SizeReply
	err := f.c.conns.Meta.Call(ctx, wire.MReserve, &wire.SetSizeRequest{FID: f.fid, Size: int64(len(p))}, &rep)
	if err != nil {
		return 0, err
	}
	off := rep.Size
	_, err = f.WriteAtOpts(ctx, p, off, WriteOptions{Mode: f.appendMode()})
	if err != nil {
		return 0, err
	}
	return off, nil
}

func (f *File) appendMode() dlm.Mode {
	return dlm.SelectMode(false, true, false) // PW: implicit read
}

// Truncate sets the file size exactly, invalidating cached data beyond
// it. It takes PW locks over every stripe's whole range, serializing
// with all in-flight IO.
func (f *File) Truncate(size int64) error {
	return f.TruncateContext(f.c.baseCtx, size)
}

// TruncateContext is Truncate bounded by ctx.
func (f *File) TruncateContext(ctx context.Context, size int64) error {
	if size < 0 {
		return fmt.Errorf("client: negative size")
	}
	var handles []*dlm.Handle
	for st := uint32(0); st < f.stripeCount; st++ {
		h, err := f.c.lc.Acquire(ctx, f.Resource(st), dlm.PW, extent.New(0, extent.Inf))
		if err != nil {
			for _, g := range handles {
				f.c.lc.Unlock(g)
			}
			return err
		}
		handles = append(handles, h)
	}
	defer func() {
		for _, h := range handles {
			f.c.lc.Unlock(h)
		}
	}()
	var rep wire.SizeReply
	if err := f.c.conns.Meta.Call(ctx, wire.MSetSize, &wire.SetSizeRequest{FID: f.fid, Size: size, Truncate: true}, &rep); err != nil {
		return err
	}
	// Plain store, not max-update: truncation may shrink the watermark.
	f.c.sizeCell(f.fid).Store(size)
	// Drop cached data beyond the new size on every stripe; reads are
	// gated by the size register, so on-device stale bytes are inert.
	for st := uint32(0); st < f.stripeCount; st++ {
		f.c.pc.Invalidate(uint64(f.Resource(st)), extent.New(0, extent.Inf))
	}
	return nil
}

// Fsync flushes all of the file's dirty data to data servers and
// publishes the size, without releasing any lock (§IV-C1).
func (f *File) Fsync() error { return f.FsyncContext(f.c.baseCtx) }

// FsyncContext is Fsync bounded by ctx.
func (f *File) FsyncContext(ctx context.Context) error {
	rids := make([]uint64, 0, f.stripeCount)
	for st := uint32(0); st < f.stripeCount; st++ {
		rids = append(rids, uint64(f.Resource(st)))
	}
	if err := f.c.flushStripes(ctx, rids, extent.New(0, extent.Inf), ^extent.SN(0)); err != nil {
		return err
	}
	f.c.pushSize(ctx, f.fid)
	return nil
}

// Close flushes the file. Locks stay cached for reuse until revoked or
// the client closes.
func (f *File) Close() error { return f.Fsync() }

// WriteOp is one piece of a vectored write.
type WriteOp struct {
	Off  int64
	Data []byte
}

// WriteMulti writes a batch of (possibly non-contiguous, possibly
// overlapping-with-other-clients) pieces atomically: one lock per
// touched stripe covers all of that stripe's pieces, every lock is held
// until all pieces land in the cache, and locks are taken in ascending
// stripe order. Under SeqDLM the per-stripe lock is the minimum covering
// range (more conflicts, but early grant absorbs them — §V-D); under
// DLM-datatype it is the exact extent list.
func (f *File) WriteMulti(ops []WriteOp) error {
	return f.WriteMultiContext(f.c.baseCtx, ops)
}

// WriteMultiContext is WriteMulti bounded by ctx.
func (f *File) WriteMultiContext(ctx context.Context, ops []WriteOp) error {
	if len(ops) == 0 {
		return nil
	}
	start := f.c.clk.Now()
	defer func() {
		f.c.Stats.IONs.Add(f.c.clk.Since(start).Nanoseconds())
		f.c.Stats.WriteOps.Add(1)
	}()

	// Map every piece to stripe-local segments, grouped by stripe.
	type piece struct {
		seg  meta.Segment
		data []byte
	}
	perStripe := make(map[uint32][]piece)
	var maxEnd int64
	for _, op := range ops {
		if op.Off+int64(len(op.Data)) > maxEnd {
			maxEnd = op.Off + int64(len(op.Data))
		}
		for _, seg := range meta.SplitRange(op.Off, int64(len(op.Data)), f.stripeSize, f.stripeCount) {
			rel := seg.FileOff - op.Off
			perStripe[seg.Stripe] = append(perStripe[seg.Stripe], piece{seg: seg, data: op.Data[rel : rel+seg.Len]})
		}
	}
	stripes := make([]uint32, 0, len(perStripe))
	for st := range perStripe {
		stripes = append(stripes, st)
	}
	for i := 1; i < len(stripes); i++ {
		for j := i; j > 0 && stripes[j] < stripes[j-1]; j-- {
			stripes[j], stripes[j-1] = stripes[j-1], stripes[j]
		}
	}

	mode := dlm.SelectMode(false, false, len(stripes) > 1)
	lockStart := f.c.clk.Now()
	handles := make(map[uint32]*dlm.Handle, len(stripes))
	for _, st := range stripes {
		var h *dlm.Handle
		var err error
		if f.c.cfg.Policy.Expand == dlm.ExpandNone {
			// Datatype locking: describe the non-contiguous ranges
			// exactly.
			var exts []extent.Extent
			for _, pc := range perStripe[st] {
				exts = append(exts, extent.Span(pc.seg.Off, pc.seg.Len))
			}
			h, err = f.c.lc.AcquireExtents(ctx, f.Resource(st), mode, extent.NewSet(exts...))
		} else {
			lo, hi := int64(-1), int64(-1)
			for _, pc := range perStripe[st] {
				if lo < 0 || pc.seg.Off < lo {
					lo = pc.seg.Off
				}
				if pc.seg.Off+pc.seg.Len > hi {
					hi = pc.seg.Off + pc.seg.Len
				}
			}
			h, err = f.c.lc.Acquire(ctx, f.Resource(st), mode, f.lockRange(lo, hi, false))
		}
		if err != nil {
			f.unlockAll(handles)
			f.c.Stats.LockNs.Add(f.c.clk.Since(lockStart).Nanoseconds())
			return err
		}
		handles[st] = h
	}
	f.c.Stats.LockNs.Add(f.c.clk.Since(lockStart).Nanoseconds())

	for _, st := range stripes {
		h := handles[st]
		rid := uint64(f.Resource(st))
		for _, pc := range perStripe[st] {
			f.c.pc.Write(rid, pc.seg.Off, pc.data, h.SN())
		}
	}
	f.c.noteSize(f.fid, maxEnd)
	f.unlockAll(handles)
	return nil
}
