package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"ccpfs/internal/dataserver"
	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/meta"
	"ccpfs/internal/rpc"
	"ccpfs/internal/sim"
	"ccpfs/internal/transport/memnet"
)

// harness starts nservers data servers (server 0 hosting the namespace)
// and builds clients against them.
type harness struct {
	t    *testing.T
	net  *memnet.Network
	pol  dlm.Policy
	n    int
	next dlm.ClientID
}

func newHarness(t *testing.T, pol dlm.Policy, nservers int) *harness {
	t.Helper()
	h := &harness{t: t, net: memnet.New(sim.Fast()), pol: pol, n: nservers}
	ns := meta.NewService()
	for i := 0; i < nservers; i++ {
		cfg := dataserver.Config{Name: fmt.Sprintf("s%d", i), Policy: pol}
		if i == 0 {
			cfg.Meta = ns
		}
		l, err := h.net.Listen(fmt.Sprintf("server-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		srv := dataserver.New(cfg)
		srv.Serve(l)
		t.Cleanup(srv.Close)
	}
	return h
}

func (h *harness) client(cfg Config) *Client {
	h.t.Helper()
	h.next++
	if cfg.ID == 0 {
		cfg.ID = h.next
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("c%d", cfg.ID)
	}
	cfg.Policy = h.pol
	conns := Conns{}
	for i := 0; i < h.n; i++ {
		conn, err := h.net.Dial(fmt.Sprintf("server-%d", i))
		if err != nil {
			h.t.Fatal(err)
		}
		ep := rpc.NewEndpoint(conn, rpc.Options{})
		conns.Data = append(conns.Data, ep)
		if i == 0 {
			conns.Meta = ep
		}
	}
	cl, err := New(context.Background(), cfg, conns)
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(cl.Close)
	return cl
}

func TestNewRejectsZeroID(t *testing.T) {
	if _, err := New(context.Background(), Config{Policy: dlm.SeqDLM()}, Conns{}); err == nil {
		t.Fatal("zero client ID accepted")
	}
}

func TestWriteReadWithoutBulkConns(t *testing.T) {
	// Bulk connections are optional: everything flows over Data conns.
	h := newHarness(t, dlm.SeqDLM(), 2)
	cl := h.client(Config{})
	f, err := cl.Create("/x", 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAA}, 10000)
	if _, err := f.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 100); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
}

func TestArgumentValidation(t *testing.T) {
	h := newHarness(t, dlm.SeqDLM(), 1)
	cl := h.client(Config{})
	f, err := cl.Create("/v", 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{1}, -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read offset accepted")
	}
	if n, err := f.WriteAt(nil, 0); n != 0 || err != nil {
		t.Fatalf("empty write: n=%d err=%v", n, err)
	}
	if err := f.WriteMulti(nil); err != nil {
		t.Fatalf("empty WriteMulti: %v", err)
	}
	if err := f.Truncate(-5); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestFileAccessors(t *testing.T) {
	h := newHarness(t, dlm.SeqDLM(), 1)
	cl := h.client(Config{})
	f, err := cl.Create("/acc", 8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Path() != "/acc" || f.FID() == 0 {
		t.Fatalf("accessors: path=%q fid=%d", f.Path(), f.FID())
	}
	ss, sc := f.Layout()
	if ss != 8192 || sc != 3 {
		t.Fatalf("layout = %d, %d", ss, sc)
	}
	r0, r1 := f.Resource(0), f.Resource(1)
	if r0 == r1 {
		t.Fatal("stripe resources collide")
	}
	fid, stripe := meta.SplitResource(uint64(r1))
	if fid != f.FID() || stripe != 1 {
		t.Fatalf("resource encoding wrong: fid=%d stripe=%d", fid, stripe)
	}
}

func TestLockModeSelection(t *testing.T) {
	h := newHarness(t, dlm.SeqDLM(), 2)
	cl := h.client(Config{})
	f, err := cl.Create("/modes", 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A plain single-stripe write selects NBW (Fig. 10): re-acquiring
	// NBW over the written range must hit the cached grant.
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	hd, err := cl.Locks().Acquire(context.Background(), f.Resource(0), dlm.NBW, extent.New(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if hd.Mode() != dlm.NBW {
		t.Fatalf("single-stripe write used %v, want NBW", hd.Mode())
	}
	cl.Locks().Unlock(hd)

	// A write spanning both stripes selects BW.
	span := make([]byte, 6000)
	if _, err := f.WriteAt(span, 2000); err != nil { // crosses 4096 boundary
		t.Fatal(err)
	}
	hd1, err := cl.Locks().Acquire(context.Background(), f.Resource(1), dlm.NBW, extent.New(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := hd1.Mode(); got != dlm.BW {
		t.Fatalf("spanning write used %v on stripe 1, want BW", got)
	}
	cl.Locks().Unlock(hd1)
}

func TestAppendUsesPW(t *testing.T) {
	h := newHarness(t, dlm.SeqDLM(), 1)
	cl := h.client(Config{})
	f, err := cl.Create("/app", 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	off, err := f.Append([]byte("record-1"))
	if err != nil || off != 0 {
		t.Fatalf("append: off=%d err=%v", off, err)
	}
	hd, err := cl.Locks().Acquire(context.Background(), f.Resource(0), dlm.PR, extent.New(0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if hd.Mode() != dlm.PW {
		t.Fatalf("append left mode %v, want PW (implicit read rule)", hd.Mode())
	}
	cl.Locks().Unlock(hd)
	off, err = f.Append([]byte("record-2"))
	if err != nil || off != 8 {
		t.Fatalf("second append: off=%d err=%v", off, err)
	}
}

func TestWriteOptionsForceModeAndWholeStripe(t *testing.T) {
	h := newHarness(t, dlm.SeqDLM(), 1)
	cl := h.client(Config{})
	f, err := cl.Create("/opts", 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAtOpts(context.Background(), []byte("x"), 0, WriteOptions{Mode: dlm.PW, LockWholeStripe: true}); err != nil {
		t.Fatal(err)
	}
	hd, err := cl.Locks().Acquire(context.Background(), f.Resource(0), dlm.PR, extent.New(1<<19, 1<<19+1))
	if err != nil {
		t.Fatal(err)
	}
	// The PW whole-stripe lock covers a PR far beyond the written byte:
	// reuse proves both options took effect.
	if hd.Mode() != dlm.PW || hd.Range() != extent.New(0, extent.Inf) {
		t.Fatalf("lock = %v %v, want whole-stripe PW", hd.Mode(), hd.Range())
	}
	cl.Locks().Unlock(hd)
}

func TestDatatypeLockRangesExact(t *testing.T) {
	h := newHarness(t, dlm.Datatype(), 1)
	cl := h.client(Config{})
	f, err := cl.Create("/dt", 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Unaligned exact-range locks: no 4 KB rounding for datatype.
	if _, err := f.WriteAt([]byte("abc"), 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if _, err := f.ReadAt(got, 5); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("read %q", got)
	}
}

func TestSizeVisibilityAfterFsync(t *testing.T) {
	h := newHarness(t, dlm.SeqDLM(), 1)
	a := h.client(Config{})
	b := h.client(Config{})
	fa, err := a.Create("/size", 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	fa.WriteAt(bytes.Repeat([]byte{1}, 5000), 0)
	if err := fa.Fsync(); err != nil {
		t.Fatal(err)
	}
	fb, err := b.Open("/size")
	if err != nil {
		t.Fatal(err)
	}
	sz, err := fb.Size()
	if err != nil || sz != 5000 {
		t.Fatalf("size = %d, %v", sz, err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := newHarness(t, dlm.SeqDLM(), 1)
	cl := h.client(Config{})
	f, _ := cl.Create("/st", 4096, 1)
	f.WriteAt(bytes.Repeat([]byte{1}, 8192), 0)
	f.Fsync()
	if cl.Stats.WriteOps.Load() != 1 {
		t.Fatalf("WriteOps = %d", cl.Stats.WriteOps.Load())
	}
	if cl.Stats.IONs.Load() <= 0 {
		t.Fatal("IONs not recorded")
	}
	if cl.Stats.FlushedBytes.Load() != 8192 {
		t.Fatalf("FlushedBytes = %d", cl.Stats.FlushedBytes.Load())
	}
}

// TestReadYourOwnDirtyWrites is the regression test for a data-loss bug
// found by the page-cache oracle: a read that is only partially covered
// by the cache fetches the whole segment from the server, and that fill
// must not clobber the client's own newer, unflushed bytes with stale
// server data.
func TestReadYourOwnDirtyWrites(t *testing.T) {
	h := newHarness(t, dlm.SeqDLM(), 1)
	cl := h.client(Config{})
	f, err := cl.Create("/ryow", 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Establish server-side content for the whole range, then overwrite
	// a small piece locally WITHOUT flushing.
	base := bytes.Repeat([]byte{0x11}, 64<<10)
	if _, err := f.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	hot := bytes.Repeat([]byte{0xEE}, 100)
	if _, err := f.WriteAt(hot, 1000); err != nil {
		t.Fatal(err)
	}
	// Invalidate part of the clean cache so the next read is partially
	// uncovered and must fetch from the server (which lacks the dirty
	// bytes). The dirty bytes themselves stay cached.
	cl.PageCache().InvalidateUpTo(uint64(f.Resource(0)), extent.New(8192, 32<<10), 1)

	got := make([]byte, 64<<10)
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got[1000+i] != 0xEE {
			t.Fatalf("dirty byte %d clobbered by server fill: %x", 1000+i, got[1000+i])
		}
	}
	for _, i := range []int{0, 999, 1100, 9000, 40000} {
		if got[i] != 0x11 {
			t.Fatalf("base byte %d = %x, want 11", i, got[i])
		}
	}
	// The dirty data must still be flushable (it survived the fill).
	if cl.PageCache().DirtyBytes() == 0 {
		t.Fatal("dirty bytes lost")
	}
}
