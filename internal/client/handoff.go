package client

import (
	"context"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/rpc"
	"ccpfs/internal/transport"
	"ccpfs/internal/wire"
)

// This file wires the client into the lock handoff fast path
// (DESIGN.md §13). The client is both ends of the transfer: as the
// revoked holder it sends MHandoff to the stamped next owner over a
// direct peer connection, and as the next owner it accepts MHandoff —
// from a peer, or from the server (the activation after a fallback
// release or reclaim) — and forwards it to the lock client.

// PeerDialer resolves another client's lock client ID to a started RPC
// endpoint on that client's peer listener. It is called at most once
// per peer; the endpoint is cached until it errors.
type PeerDialer func(peer dlm.ClientID) (*rpc.Endpoint, error)

// ServePeers accepts client-to-client handoff connections on l. Every
// inbound endpoint only answers MHandoff; the accept loop runs until l
// closes (Close/Shutdown close it with the other connections).
func (c *Client) ServePeers(l transport.Listener) {
	c.peerSrv = rpc.NewServer(l, rpc.Options{Clock: c.clk}, func(ep *rpc.Endpoint) {
		ep.Handle(wire.MHandoff, c.handleHandoff)
		ep.Handle(wire.MLeasePropagate, c.handleLeasePropagate)
	})
	c.clk.Go(c.peerSrv.Serve)
}

// SetPeerDialer installs the peer address book and enables the
// client-to-client transfer path. Without it, stamped revocations
// still work — the cancel path falls back to releasing through the
// server, which activates the delegation itself.
func (c *Client) SetPeerDialer(d PeerDialer) {
	c.peerMu.Lock()
	c.peerDial = d
	if c.peerEps == nil {
		c.peerEps = make(map[dlm.ClientID]*rpc.Endpoint)
	}
	c.peerMu.Unlock()
	if d != nil {
		c.lc.SetPeerSender(c)
	} else {
		c.lc.SetPeerSender(nil)
	}
}

// handleHandoff processes an inbound transfer: the named lock is now
// this client's — a single lock, one part of a gather, or (with a
// broadcast payload) the lead lease of a cohort to propagate.
// Duplicates (peer transfer racing the server's activation) are
// dropped inside the lock client.
func (c *Client) handleHandoff(_ context.Context, p []byte) (wire.Msg, error) {
	var req wire.HandoffRequest
	if err := wire.Unmarshal(p, &req); err != nil {
		return nil, err
	}
	acks := make([]dlm.LockID, 0, len(req.Acks))
	for _, a := range req.Acks {
		acks = append(acks, dlm.LockID(a))
	}
	c.lc.OnHandoffMsg(dlm.ResourceID(req.Resource), dlm.LockID(req.LockID),
		req.Final, acks, stampFromWire(req.Broadcast))
	return &wire.Ack{}, nil
}

// handleLeasePropagate receives a propagation-tree subtree: the first
// lease is this client's own, the rest is forwarded down the tree.
func (c *Client) handleLeasePropagate(_ context.Context, p []byte) (wire.Msg, error) {
	var req wire.LeasePropagate
	if err := wire.Unmarshal(p, &req); err != nil {
		return nil, err
	}
	grant := stampFromWire(&wire.BroadcastGrant{
		Mode: req.Mode, Range: req.Range, Fanout: req.Fanout, Leases: req.Leases,
	})
	c.lc.OnLeasePropagate(dlm.ResourceID(req.Resource), grant)
	return &wire.Ack{}, nil
}

// SendHandoff implements dlm.PeerSender: deliver "this lock is yours"
// to the stamped next owner, with piggybacked delegation acks and, for
// a broadcast, the cohort payload. An error (no dialer, dead peer)
// makes the lock client fall back to releasing through the server.
func (c *Client) SendHandoff(ctx context.Context, peer dlm.ClientID, res dlm.ResourceID, id dlm.LockID, acks []dlm.LockID, bcast *dlm.BroadcastStamp) error {
	ep, err := c.peerEndpoint(peer)
	if err != nil {
		return err
	}
	req := &wire.HandoffRequest{Resource: uint64(res), LockID: uint64(id), Broadcast: stampToWire(bcast)}
	for _, a := range acks {
		req.Acks = append(req.Acks, uint64(a))
	}
	err = ep.Call(ctx, wire.MHandoff, req, nil)
	if err != nil {
		c.dropPeer(peer, ep)
	}
	return err
}

// SendLease implements dlm.LeaseSender: ship a cohort subtree to the
// peer owning its first lease.
func (c *Client) SendLease(ctx context.Context, peer dlm.ClientID, res dlm.ResourceID, grant *dlm.BroadcastStamp) error {
	ep, err := c.peerEndpoint(peer)
	if err != nil {
		return err
	}
	w := stampToWire(grant)
	req := &wire.LeasePropagate{
		Resource: uint64(res), Mode: w.Mode, Range: w.Range, Fanout: w.Fanout, Leases: w.Leases,
	}
	err = ep.Call(ctx, wire.MLeasePropagate, req, nil)
	if err != nil {
		c.dropPeer(peer, ep)
	}
	return err
}

// stampToWire converts a dlm broadcast payload to its wire form (nil
// maps to nil).
func stampToWire(b *dlm.BroadcastStamp) *wire.BroadcastGrant {
	if b == nil {
		return nil
	}
	g := &wire.BroadcastGrant{
		Mode:   uint8(b.Mode),
		Range:  b.Range,
		Fanout: uint8(b.Fanout),
		Leases: make([]wire.LeaseEntry, 0, len(b.Leases)),
	}
	for _, l := range b.Leases {
		g.Leases = append(g.Leases, wire.LeaseEntry{
			Owner: uint32(l.Owner), LockID: uint64(l.LockID), SN: uint64(l.SN),
		})
	}
	return g
}

// stampFromWire converts a wire broadcast payload to its dlm form (nil
// maps to nil).
func stampFromWire(g *wire.BroadcastGrant) *dlm.BroadcastStamp {
	if g == nil {
		return nil
	}
	b := &dlm.BroadcastStamp{
		Mode:   dlm.Mode(g.Mode),
		Range:  g.Range,
		Fanout: int(g.Fanout),
		Leases: make([]dlm.Lease, 0, len(g.Leases)),
	}
	for _, l := range g.Leases {
		b.Leases = append(b.Leases, dlm.Lease{
			Owner: dlm.ClientID(l.Owner), LockID: dlm.LockID(l.LockID), SN: extent.SN(l.SN),
		})
	}
	return b
}

// peerEndpoint returns the cached endpoint for a peer, dialing on the
// first transfer to it.
func (c *Client) peerEndpoint(peer dlm.ClientID) (*rpc.Endpoint, error) {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	if ep, ok := c.peerEps[peer]; ok {
		return ep, nil
	}
	if c.peerDial == nil {
		return nil, wire.Errorf(wire.CodeInvalid, "client: no peer dialer")
	}
	ep, err := c.peerDial(peer)
	if err != nil {
		return nil, err
	}
	c.peerEps[peer] = ep
	return ep, nil
}

// dropPeer discards a failed peer endpoint so the next transfer to
// that peer redials.
func (c *Client) dropPeer(peer dlm.ClientID, ep *rpc.Endpoint) {
	c.peerMu.Lock()
	if c.peerEps[peer] == ep {
		delete(c.peerEps, peer)
	}
	c.peerMu.Unlock()
	ep.Close()
}

// closePeers tears down the peer transport with the other connections.
func (c *Client) closePeers() {
	if c.peerSrv != nil {
		c.peerSrv.Close()
	}
	c.peerMu.Lock()
	eps := c.peerEps
	c.peerEps = nil
	c.peerDial = nil
	c.peerMu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}
