package client

import (
	"context"

	"ccpfs/internal/dlm"
	"ccpfs/internal/rpc"
	"ccpfs/internal/transport"
	"ccpfs/internal/wire"
)

// This file wires the client into the lock handoff fast path
// (DESIGN.md §13). The client is both ends of the transfer: as the
// revoked holder it sends MHandoff to the stamped next owner over a
// direct peer connection, and as the next owner it accepts MHandoff —
// from a peer, or from the server (the activation after a fallback
// release or reclaim) — and forwards it to the lock client.

// PeerDialer resolves another client's lock client ID to a started RPC
// endpoint on that client's peer listener. It is called at most once
// per peer; the endpoint is cached until it errors.
type PeerDialer func(peer dlm.ClientID) (*rpc.Endpoint, error)

// ServePeers accepts client-to-client handoff connections on l. Every
// inbound endpoint only answers MHandoff; the accept loop runs until l
// closes (Close/Shutdown close it with the other connections).
func (c *Client) ServePeers(l transport.Listener) {
	c.peerSrv = rpc.NewServer(l, rpc.Options{}, func(ep *rpc.Endpoint) {
		ep.Handle(wire.MHandoff, c.handleHandoff)
	})
	go c.peerSrv.Serve()
}

// SetPeerDialer installs the peer address book and enables the
// client-to-client transfer path. Without it, stamped revocations
// still work — the cancel path falls back to releasing through the
// server, which activates the delegation itself.
func (c *Client) SetPeerDialer(d PeerDialer) {
	c.peerMu.Lock()
	c.peerDial = d
	if c.peerEps == nil {
		c.peerEps = make(map[dlm.ClientID]*rpc.Endpoint)
	}
	c.peerMu.Unlock()
	if d != nil {
		c.lc.SetPeerSender(c)
	} else {
		c.lc.SetPeerSender(nil)
	}
}

// handleHandoff processes an inbound transfer: the named lock is now
// this client's. Duplicates (peer transfer racing the server's
// activation) are dropped inside the lock client.
func (c *Client) handleHandoff(_ context.Context, p []byte) (wire.Msg, error) {
	var req wire.HandoffRequest
	if err := wire.Unmarshal(p, &req); err != nil {
		return nil, err
	}
	c.lc.OnHandoff(dlm.ResourceID(req.Resource), dlm.LockID(req.LockID))
	return &wire.Ack{}, nil
}

// SendHandoff implements dlm.PeerSender: deliver "this lock is yours"
// to the stamped next owner. An error (no dialer, dead peer) makes the
// lock client fall back to releasing through the server.
func (c *Client) SendHandoff(ctx context.Context, peer dlm.ClientID, res dlm.ResourceID, id dlm.LockID) error {
	ep, err := c.peerEndpoint(peer)
	if err != nil {
		return err
	}
	err = ep.Call(ctx, wire.MHandoff, &wire.HandoffRequest{Resource: uint64(res), LockID: uint64(id)}, nil)
	if err != nil {
		c.dropPeer(peer, ep)
	}
	return err
}

// peerEndpoint returns the cached endpoint for a peer, dialing on the
// first transfer to it.
func (c *Client) peerEndpoint(peer dlm.ClientID) (*rpc.Endpoint, error) {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	if ep, ok := c.peerEps[peer]; ok {
		return ep, nil
	}
	if c.peerDial == nil {
		return nil, wire.Errorf(wire.CodeInvalid, "client: no peer dialer")
	}
	ep, err := c.peerDial(peer)
	if err != nil {
		return nil, err
	}
	c.peerEps[peer] = ep
	return ep, nil
}

// dropPeer discards a failed peer endpoint so the next transfer to
// that peer redials.
func (c *Client) dropPeer(peer dlm.ClientID, ep *rpc.Endpoint) {
	c.peerMu.Lock()
	if c.peerEps[peer] == ep {
		delete(c.peerEps, peer)
	}
	c.peerMu.Unlock()
	ep.Close()
}

// closePeers tears down the peer transport with the other connections.
func (c *Client) closePeers() {
	if c.peerSrv != nil {
		c.peerSrv.Close()
	}
	c.peerMu.Lock()
	eps := c.peerEps
	c.peerEps = nil
	c.peerDial = nil
	c.peerMu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}
