package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"ccpfs/internal/dataserver"
	"ccpfs/internal/dlm"
	"ccpfs/internal/meta"
	"ccpfs/internal/rpc"
	"ccpfs/internal/transport/tcpnet"
)

// TestFullStackOverTCP drives the complete coherence flow — cached
// write, cross-client read forcing revocation and flush — over real TCP
// sockets with separate control and bulk connections, proving the wire
// protocol works outside the simulated fabric.
func TestFullStackOverTCP(t *testing.T) {
	tn := tcpnet.New()
	pol := dlm.SeqDLM()
	ns := meta.NewService()

	var addrs []string
	for i := 0; i < 2; i++ {
		cfg := dataserver.Config{Name: fmt.Sprintf("tcp-%d", i), Policy: pol}
		if i == 0 {
			cfg.Meta = ns
		}
		l, err := tn.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := dataserver.New(cfg)
		srv.Serve(l)
		t.Cleanup(srv.Close)
		addrs = append(addrs, l.Addr())
	}

	mk := func(name string, id dlm.ClientID) *Client {
		conns := Conns{}
		for i, addr := range addrs {
			conn, err := tn.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			ep := rpc.NewEndpoint(conn, rpc.Options{})
			conns.Data = append(conns.Data, ep)
			if i == 0 {
				conns.Meta = ep
			}
			bconn, err := tn.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			conns.Bulk = append(conns.Bulk, rpc.NewEndpoint(bconn, rpc.Options{}))
		}
		cl, err := New(context.Background(), Config{Name: name, ID: id, Policy: pol}, conns)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		return cl
	}

	writer := mk("w", 1)
	reader := mk("r", 2)

	f, err := writer.Create("/tcp", 64<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 200_000)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// No fsync: the reader's PR locks must revoke the writer's cached
	// locks over TCP and force the flush.
	g, err := reader.Open("/tcp")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, err := g.ReadAt(got, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("TCP coherence broken: n=%d", n)
	}
	if writer.Locks().Stats.Revocations.Load() == 0 {
		t.Fatal("no revocation crossed the TCP fabric")
	}
}
