package dlm

import (
	"context"
	"sort"
	"sync"
	"time"

	"ccpfs/internal/extent"
)

// Client-to-client lock handoff (DESIGN.md §13). When a revocation's
// conflict is owed to exactly one waiter, the server stamps the revoke
// with a delegation grant — next owner, mode, SN, flush obligation —
// and the holder transfers the lock directly to that client instead of
// flushing-and-releasing back to the server. The new owner starts
// using the lock the moment the transfer arrives and acknowledges the
// server asynchronously (piggybacked on its next lock request when
// possible), cutting the per-exchange server cost of stable conflict
// patterns from two lock RPCs to about one.

// DefaultHandoffTimeout bounds how long a delegation may stay
// unconfirmed before the reclaimer first re-revokes the previous
// holder and, one period later, force-resolves the transfer.
const DefaultHandoffTimeout = 250 * time.Millisecond

// HandoffStamp is the delegation grant attached to a revocation: who
// the next owner is, the lock it will own (already installed in the
// server's table, delegated), the SN its writes are tagged with, and
// whether the previous holder must flush dirty data before handing
// over.
type HandoffStamp struct {
	NextOwner ClientID
	NewLockID LockID
	Mode      Mode
	SN        extent.SN
	MustFlush bool
	// Broadcast, when non-nil, turns the transfer into a read fan-out
	// (DESIGN.md §14): NextOwner/NewLockID name the lead reader's lease,
	// and the holder ships the whole ordered cohort to the lead, which
	// propagates the remaining leases peer-to-peer.
	Broadcast *BroadcastStamp
}

// HandoffNotifier is the optional Notifier extension the handoff fast
// path requires: a server-sent activation path to the delegated
// owner, used when the previous holder released instead of
// transferring (fallback) or the reclaimer force-resolved a stuck
// delegation. The engine never stamps a revocation unless its
// notifier implements it, so a fallback activation path always
// exists. Calls are made from their own goroutines and may block.
type HandoffNotifier interface {
	Handoff(ctx context.Context, client ClientID, res ResourceID, id LockID)
}

// activationMsg is a server-sent activation captured under res.mu and
// delivered after it drops.
type activationMsg struct {
	client ClientID
	res    ResourceID
	id     LockID
}

// stampHandoff attempts to retire waiter w by delegating the single
// conflicting lock c to it: the successor lock is installed
// immediately (SN assigned under res.mu, so stamp order is grant order
// and SN stays monotonic), the waiter's grant reply is marked
// Delegated, and the revocation appended to revs carries the stamp.
// Called from tryGrant with res.mu held; reports whether it stamped.
func (s *Server) stampHandoff(res *resource, w *waiter, mode Mode, c *lock, fx *effects) bool {
	if !s.handoffOn.Load() {
		return false
	}
	hn, ok := s.notifier.(HandoffNotifier)
	if !ok || hn == nil {
		return false
	}
	// Eligibility: the conflict must still be quietly GRANTED (a lock
	// already being revoked or handed off follows the normal path), on
	// another client, and both sides must be plain ranges — datatype
	// extent sets release after every operation and gain nothing.
	if c.state != Granted || c.revokeSent || c.handedOff || c.succ != nil ||
		c.client == w.req.Client || len(c.set) > 0 || len(w.req.Extents) > 0 {
		return false
	}

	// From here on c behaves as CANCELING (compatible), so range
	// expansion below may legally run through it; the transfer's
	// flush-before-handoff obligation plus SN ordering make the
	// overlap as safe as an early grant.
	c.handedOff = true
	c.revokeSent = true

	rng := w.req.Range
	rng.End = s.expandEnd(res, w, mode, rng)

	sn := res.nextSN
	if mode.IsWrite() {
		res.nextSN++
	}

	l := &lock{
		id:        s.newLockID(),
		client:    w.req.Client,
		mode:      mode,
		rng:       rng,
		state:     Granted,
		sn:        sn,
		delegated: true,
		pred:      c,
	}
	c.succ = l
	res.granted.insert(l)
	res.grants++

	fx.revs = append(fx.revs, Revocation{
		Client:   c.client,
		Resource: res.id,
		Lock:     c.id,
		Handoff: &HandoffStamp{
			NextOwner: w.req.Client,
			NewLockID: l.id,
			Mode:      mode,
			SN:        sn,
			MustFlush: c.mode.IsWrite(),
		},
	})

	now := s.clk.Now()
	s.Stats.Handoffs.Add(1)
	s.Stats.Grants.Add(1)
	s.Stats.GrantWaitHist.Record(now.Sub(w.enqAt).Nanoseconds())
	if w.hadConflict {
		// The waiter saw its conflict resolved by delegation, never by
		// a cancel phase: the whole wait is revocation wait, as with an
		// early grant.
		s.Stats.RevocationWaitHist.Record(now.Sub(w.enqAt).Nanoseconds())
	}
	s.tracer.record(Event{Kind: EvGrant, Resource: res.id, Client: w.req.Client, Lock: l.id, Mode: mode, Range: rng, SN: sn})

	s.reclaim.register(s, res, c, l)

	res.retire(w)
	fx.sends = append(fx.sends, grantSend{w: w, r: lockResult{g: Grant{
		LockID:    l.id,
		Mode:      mode,
		Range:     rng,
		SN:        sn,
		State:     Granted,
		Delegated: true,
	}}})
	return true
}

// HandoffAck records the new owner's confirmation of a delegated lock
// as a standalone client operation. The predecessor chain is retired —
// the previous holder transferred the lock and will never release it —
// and the delegation is confirmed. Unknown or already-confirmed locks
// are ignored (duplicate acks are harmless).
func (s *Server) HandoffAck(resID ResourceID, id LockID) {
	res := s.lookup(resID)
	if res == nil {
		return
	}
	s.Stats.LockOps.Add(1)
	s.ackDelegation(res, id)
}

// handoffAck applies a piggybacked ack — identical to HandoffAck but
// without LockOps accounting, since it rode inside a Lock request.
func (s *Server) handoffAck(resID ResourceID, id LockID) {
	res := s.lookup(resID)
	if res == nil {
		return
	}
	s.ackDelegation(res, id)
}

func (s *Server) ackDelegation(res *resource, id LockID) {
	res.mu.Lock()
	l := res.granted.get(id)
	if l == nil || !l.delegated {
		res.mu.Unlock()
		return
	}
	l.delegated = false
	s.removePreds(res, l)
	s.reclaim.deregister(res.id, id)
	s.Stats.HandoffAcks.Add(1)
	s.tracer.record(Event{Kind: EvRelease, Resource: res.id, Lock: id})
	var fx effects
	s.scan(res, &fx)
	res.mu.Unlock()
	s.apply(fx)
}

// removePreds retires l's whole predecessor closure — the single-pred
// chain plus, for a gathering write lock, its displaced cohort: every
// member transferred its lock away, so each removal counts as a
// release. Predecessors may be shared between ack paths (a cohort
// member's own ack and the gathering writer's, for instance), so
// retirement is idempotent: a lock is only retired while it is still
// the table's entry for its ID. Called with res.mu held.
func (s *Server) removePreds(res *resource, l *lock) {
	var retire func(p *lock)
	retire = func(p *lock) {
		if p == nil || res.granted.get(p.id) != p {
			return
		}
		next := p.pred
		preds := p.preds
		res.granted.remove(p)
		s.Stats.Releases.Add(1)
		s.reclaim.deregister(res.id, p.id)
		p.pred, p.succ, p.preds, p.bcast = nil, nil, nil, nil
		retire(next)
		for _, q := range preds {
			retire(q)
		}
	}
	retire(l.pred)
	for _, q := range l.preds {
		retire(q)
	}
	l.pred = nil
	l.preds = nil
}

// removeWithPreds removes l and its predecessor chain. Called with
// res.mu held.
func (s *Server) removeWithPreds(res *resource, l *lock) {
	s.removePreds(res, l)
	res.granted.remove(l)
	s.Stats.Releases.Add(1)
	s.reclaim.deregister(res.id, l.id)
}

// resolveDelegation confirms a delegation server-side without an ack:
// the successor becomes a plain granted lock and the caller must send
// the returned activation once res.mu drops, so the owner stops
// waiting for a transfer that will never arrive. Called with res.mu
// held; the caller has already detached/removed the predecessor.
func (s *Server) resolveDelegation(res *resource, l *lock) activationMsg {
	l.delegated = false
	l.pred = nil
	s.reclaim.deregister(res.id, l.id)
	return activationMsg{client: l.client, res: res.id, id: l.id}
}

// sendActivation delivers a server-sent activation through the
// notifier's HandoffNotifier extension, if present. Duplicate
// activations (server-sent racing the peer transfer) are idempotent
// client-side.
func (s *Server) sendActivation(a activationMsg) {
	hn, ok := s.notifier.(HandoffNotifier)
	if !ok || hn == nil {
		return
	}
	s.clk.Go(func() { hn.Handoff(s.baseCtx, a.client, a.res, a.id) })
}

// delegationEntry tracks one outstanding delegation for the
// reclaimer: which successor is unconfirmed, and which holder owes
// the transfer.
type delegationEntry struct {
	res      *resource
	succID   LockID
	predID   LockID
	predCli  ClientID
	deadline time.Time
	// phase 0: not yet nudged; 1: the previous holder was re-revoked
	// (plain, unstamped) and given one more period; >=1 expiry
	// force-resolves.
	phase int
}

// handoffReclaimer is the safety net behind asynchronous acks: if a
// delegation is not confirmed within the timeout, the server first
// re-sends a plain revocation to the previous holder (the normal
// cancel path — its Release resolves the delegation), and one period
// later force-resolves the transfer, activating the successor
// directly. The daemon goroutine is lazy: started on first
// registration, retired when the registry drains.
type handoffReclaimer struct {
	mu      sync.Mutex
	entries map[lockKey]*delegationEntry
	running bool
}

func (r *handoffReclaimer) register(s *Server, res *resource, pred, succ *lock) {
	deadline := s.clk.Now().Add(time.Duration(s.handoffTimeout.Load()))
	r.mu.Lock()
	if r.entries == nil {
		r.entries = make(map[lockKey]*delegationEntry)
	}
	r.entries[lockKey{res: res.id, id: succ.id}] = &delegationEntry{
		res: res, succID: succ.id, predID: pred.id, predCli: pred.client,
		deadline: deadline,
	}
	if !r.running {
		r.running = true
		s.clk.Go(func() { r.loop(s) })
	}
	r.mu.Unlock()
}

func (r *handoffReclaimer) deregister(res ResourceID, succ LockID) {
	r.mu.Lock()
	delete(r.entries, lockKey{res: res, id: succ})
	r.mu.Unlock()
}

func (r *handoffReclaimer) loop(s *Server) {
	period := time.Duration(s.handoffTimeout.Load()) / 2
	if period <= 0 {
		period = time.Millisecond
	}
	for s.clk.SleepCtx(s.baseCtx, period) {
		now := s.clk.Now()
		type action struct {
			e     delegationEntry
			phase int
		}
		var acts []action
		r.mu.Lock()
		for _, e := range r.entries {
			if !now.After(e.deadline) {
				continue
			}
			acts = append(acts, action{e: *e, phase: e.phase})
			e.phase++
			e.deadline = now.Add(time.Duration(s.handoffTimeout.Load()))
		}
		if len(r.entries) == 0 {
			r.running = false
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()
		// Deterministic reclaim order regardless of registry-map
		// iteration order.
		sort.Slice(acts, func(i, j int) bool {
			if acts[i].e.res.id != acts[j].e.res.id {
				return acts[i].e.res.id < acts[j].e.res.id
			}
			return acts[i].e.succID < acts[j].e.succID
		})
		for _, a := range acts {
			if a.phase == 0 {
				s.reclaimNudge(&a.e)
			} else {
				s.reclaimForce(&a.e)
			}
		}
	}
	r.mu.Lock()
	r.running = false
	r.mu.Unlock()
}

// reclaimNudge re-sends a plain (unstamped) revocation to the
// previous holder of an expired delegation: if the holder is merely
// slow, its normal cancel — flush then release — resolves the
// delegation through the Release hook.
func (s *Server) reclaimNudge(e *delegationEntry) {
	res := e.res
	if s.CheckMaster(res.id) != nil {
		// Mastership moved; the freeze path resolved or exported the
		// delegation already.
		s.reclaim.deregister(res.id, e.succID)
		return
	}
	res.mu.Lock()
	l := res.granted.get(e.succID)
	live := l != nil && l.delegated
	pred := res.granted.get(e.predID)
	res.mu.Unlock()
	if !live {
		s.reclaim.deregister(res.id, e.succID)
		return
	}
	if pred != nil {
		s.fire([]Revocation{{Client: e.predCli, Resource: res.id, Lock: e.predID}})
	}
}

// reclaimForce resolves an expired delegation without the holder's
// cooperation: the predecessor chain is retired and the successor
// activated. The holder has vanished or the transfer was lost; this
// mirrors dead-client lock reclamation, with the same exposure — any
// unflushed predecessor data is bounded by SN ordering at the extent
// cache, exactly as for an early grant.
func (s *Server) reclaimForce(e *delegationEntry) {
	res := e.res
	if s.CheckMaster(res.id) != nil {
		s.reclaim.deregister(res.id, e.succID)
		return
	}
	var fx effects
	found := false
	res.mu.Lock()
	l := res.granted.get(e.succID)
	if l != nil && l.delegated {
		if p := res.granted.get(e.predID); p != nil && !p.handedOff {
			// The provider of this delegation is still a legitimately
			// active holder — a pre-armed lease whose writer has not
			// finished (DESIGN.md §14). Force-resolving would activate
			// a reader behind a live writer, so demote to another
			// nudge; the transfer resolves when the writer hands over.
			res.mu.Unlock()
			s.fire([]Revocation{{Client: e.predCli, Resource: res.id, Lock: e.predID}})
			return
		}
		s.removePreds(res, l)
		fx.acts = append(fx.acts, s.resolveDelegation(res, l))
		found = true
		s.Stats.HandoffReclaims.Add(1)
	}
	s.scan(res, &fx)
	res.mu.Unlock()
	s.apply(fx)
	if !found {
		s.reclaim.deregister(res.id, e.succID)
	}
}

// resolveSlotDelegations force-resolves every outstanding delegation
// on a frozen resource before its locks are exported (partition.go):
// the predecessor chains are retired so the importing master never
// sees overlapping handed-off pairs it has no delegation state for,
// and the successors export as plain granted locks. The returned
// activations must be sent after the freeze completes — the peer
// transfer may still arrive and activate the owner first, which is
// fine (activations are idempotent client-side). Called with res.mu
// held.
func (s *Server) resolveSlotDelegations(res *resource) []activationMsg {
	var delegated []*lock
	for _, l := range res.granted.list {
		if l.delegated {
			delegated = append(delegated, l)
		}
	}
	var acts []activationMsg
	for _, l := range delegated {
		s.removePreds(res, l)
		acts = append(acts, s.resolveDelegation(res, l))
		s.Stats.HandoffReclaims.Add(1)
	}
	return acts
}
