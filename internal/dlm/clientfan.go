package dlm

import (
	"context"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/sim"
)

// Client side of the read-lease propagation tree (DESIGN.md §14). A
// broadcast transfer hands the receiving client the lead lease of a
// cohort plus the ordered remainder; the lead installs its own lease,
// splits the rest into at most Fanout contiguous subtrees, and ships
// each to the peer owning its first lease, which recurses. Leases for
// resources in a fan rotation arrive this way round after round, so
// shared-mode acquires park briefly on the arrival instead of paying a
// server round trip; a reclaim-interval timeout falls back to the
// server, which self-heals any lease lost in flight.

// waitStanding parks a shared-mode acquire on a fan-rotation resource
// until a covering lease lands (claimed via the cached-hit path), the
// reclaim interval expires, or ctx fires. Returns nil when the caller
// should proceed to the server.
func (c *LockClient) waitStanding(ctx context.Context, res ResourceID, need Mode, rng extent.Extent) *Handle {
	sh := c.shard(res)
	timeout := DefaultHandoffTimeout
	if c.policy.HandoffReclaimInterval > 0 {
		timeout = c.policy.HandoffReclaimInterval
	}
	if v := c.clk.V(); v != nil {
		// Virtual time: park on the per-waiter channel with the reclaim
		// deadline on the event heap; wakeStanding wakes the key.
		end := c.clk.Now().Add(timeout)
		for {
			sh.mu.Lock()
			if !sh.fanStanding[res] {
				sh.mu.Unlock()
				return nil
			}
			if h := c.fastHit(res, need, rng); h != nil {
				sh.mu.Unlock()
				return h
			}
			ch := make(chan struct{})
			sh.fanWaiters[res] = append(sh.fanWaiters[res], ch)
			sh.mu.Unlock()
			switch c.clk.V().WaitOnUntil(ch, end) {
			case sim.WakeTimeout:
				sh.mu.Lock()
				delete(sh.fanStanding, res)
				sh.mu.Unlock()
				return nil
			case sim.WakeExited:
				return nil // run over; callers finish on the server path
			}
			if ctx.Err() != nil || c.baseCtx.Err() != nil {
				return nil
			}
		}
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		sh.mu.Lock()
		if !sh.fanStanding[res] {
			sh.mu.Unlock()
			return nil
		}
		// The lease may have landed between the caller's cache miss and
		// here; re-probe under the registration lock so a wake cannot
		// slip between the miss and the park.
		if h := c.fastHit(res, need, rng); h != nil {
			sh.mu.Unlock()
			return h
		}
		ch := make(chan struct{})
		sh.fanWaiters[res] = append(sh.fanWaiters[res], ch)
		sh.mu.Unlock()

		select {
		case <-ch:
		case <-deadline.C:
			// The lease never came (propagation lost, writer died).
			// Stop standing and fall back to the server.
			sh.mu.Lock()
			delete(sh.fanStanding, res)
			sh.mu.Unlock()
			return nil
		case <-ctx.Done():
			return nil
		case <-c.baseCtx.Done():
			return nil
		}
	}
}

// wakeStanding releases every acquire parked on res. Caller holds
// sh.mu; woken waiters re-probe the cache and re-park on a miss.
func (sh *clientShard) wakeStanding(res ResourceID, clk sim.Clock) {
	ws := sh.fanWaiters[res]
	if len(ws) == 0 {
		return
	}
	for _, ch := range ws {
		close(ch)
		clk.Wakeup(ch)
	}
	delete(sh.fanWaiters, res)
}

// OnLeasePropagate receives a propagation-tree subtree: the first
// lease is this client's own, the rest is forwarded onward. Duplicate
// deliveries are idempotent.
func (c *LockClient) OnLeasePropagate(res ResourceID, grant *BroadcastStamp) {
	if !c.policy.ReaderFanout {
		return
	}
	c.receiveCohort(res, grant)
}

// receiveCohort handles an arriving cohort slice — from the displaced
// holder's broadcast transfer (lead) or a peer's propagation: install
// the first lease as our own, then ship the remainder down the tree.
func (c *LockClient) receiveCohort(res ResourceID, g *BroadcastStamp) {
	if len(g.Leases) == 0 {
		return
	}
	c.installLease(res, g, g.Leases[0])
	rest := g.Leases[1:]
	if len(rest) == 0 {
		return
	}
	var ls LeaseSender
	if box := c.peer.Load(); box != nil {
		ls, _ = box.s.(LeaseSender)
	}
	if ls == nil {
		// No propagation path: the server's reclaimer resolves the
		// remaining leases after the reclaim interval.
		return
	}
	fanout := g.Fanout
	if fanout < 1 {
		fanout = c.policy.FanoutWidth()
	}
	for _, chunk := range splitLeases(rest, fanout) {
		sub := &BroadcastStamp{Mode: g.Mode, Range: g.Range, Fanout: g.Fanout, Leases: chunk}
		owner := chunk[0].Owner
		c.clk.Go(func() {
			if err := ls.SendLease(c.baseCtx, owner, res, sub); err == nil {
				c.Stats.LeasesSent.Add(1)
			}
			// On error the subtree's leases stay delegated server-side
			// and the reclaimer resolves them; nothing to do here.
		})
	}
}

// splitLeases partitions rest into at most fanout contiguous,
// near-equal chunks — the subtrees of one propagation-tree node.
func splitLeases(rest []Lease, fanout int) [][]Lease {
	if fanout < 1 {
		fanout = 1
	}
	k := fanout
	if k > len(rest) {
		k = len(rest)
	}
	chunks := make([][]Lease, 0, k)
	base, extra := len(rest)/k, len(rest)%k
	i := 0
	for j := 0; j < k; j++ {
		sz := base
		if j < extra {
			sz++
		}
		chunks = append(chunks, rest[i:i+sz])
		i += sz
	}
	return chunks
}

// installLease installs an unsolicited read lease delivered by a
// broadcast or propagation. If a delegated acquire is parked on the
// lease (round-one formation), completing its wait is the install; a
// lease already installed or tombstoned is a duplicate and dropped.
// Otherwise a zero-hold GRANTED handle enters the cache, honouring any
// revocation that raced ahead (the lease is then born CANCELING and
// cancels immediately — its transfer obligation, if stamped, still
// runs). Parked fan waiters are woken either way.
func (c *LockClient) installLease(res ResourceID, g *BroadcastStamp, mine Lease) {
	k := lockKey{res, mine.LockID}
	sh := c.shard(res)
	sh.mu.Lock()
	if tw, ok := sh.pendingHandoffs[k]; ok {
		delete(sh.pendingHandoffs, k)
		close(tw.ch)
		c.clk.Wakeup(tw.ch)
		sh.mu.Unlock()
		return
	}
	if sh.tombstones[k] || findByID(sh.cur()[res], mine.LockID) != nil {
		sh.mu.Unlock()
		return
	}
	delete(sh.arrivedHandoffs, k)
	h := &Handle{
		c:        c,
		res:      res,
		id:       mine.LockID,
		sn:       mine.SN,
		rng:      g.Range,
		released: make(chan struct{}),
	}
	st := Granted
	if stamp, ok := sh.pendingRevokes[k]; ok {
		delete(sh.pendingRevokes, k)
		if stamp != nil {
			h.stamp.Store(stamp)
		}
		st = Canceling
	}
	w := hotWord(0, st, g.Mode, false)
	spawnCancel := st == Canceling
	if spawnCancel {
		w |= hotCanceling
	}
	h.hot.Store(w)
	list := sh.cur()[res]
	nl := make([]*Handle, 0, len(list)+1)
	nl = append(nl, list...)
	nl = append(nl, h)
	sh.setList(res, nl)
	sh.wakeStanding(res, c.clk)
	sh.mu.Unlock()

	c.Stats.HandoffsRecv.Add(1)
	c.Stats.LeasesRecv.Add(1)
	c.queueAck(res, mine.LockID)
	if spawnCancel {
		c.clk.Go(func() { c.cancel(h) })
	}
}
