// Package dlm implements the paper's primary contribution: a
// sequencer-based distributed lock manager (SeqDLM) with early grant,
// early revocation, the four-mode lock semantics of §III-C, and the
// automatic lock conversion of §III-D — together with the three
// traditional baselines the paper evaluates against (DLM-basic,
// DLM-Lustre, DLM-datatype), all implemented inside one lock-server
// engine selected by Policy, exactly as the authors did inside ccPFS.
package dlm

import "fmt"

// Mode is a lock mode. SeqDLM keeps the traditional read lock (PR) and
// refines the traditional write lock into three modes (NBW, BW, PW);
// the traditional baselines use the legacy LR/LW pair.
type Mode uint8

// Lock modes.
const (
	// ModeNone is the zero value; never granted.
	ModeNone Mode = iota
	// PR (protective read): holders may read the resource concurrently —
	// the traditional read lock.
	PR
	// NBW (non-blocking write): write-only access without the blocking
	// feature; the mode that unlocks early grant and early revocation.
	NBW
	// BW (blocking write): write-only access that keeps the blocking
	// feature, used for atomic writes across multiple resources.
	BW
	// PW (protective write): full read/write access with traditional
	// write-lock semantics, used for atomic read-update operations.
	PW
	// LR is the legacy read mode of the traditional baselines.
	LR
	// LW is the legacy write mode of the traditional baselines.
	LW
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case PR:
		return "PR"
	case NBW:
		return "NBW"
	case BW:
		return "BW"
	case PW:
		return "PW"
	case LR:
		return "LR"
	case LW:
		return "LW"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// IsWrite reports whether the mode permits writes. Write-mode grants
// consume a sequence number.
func (m Mode) IsWrite() bool {
	switch m {
	case NBW, BW, PW, LW:
		return true
	}
	return false
}

// CanRead reports whether the mode permits reads. NBW and BW are
// write-only (§III-C).
func (m Mode) CanRead() bool {
	switch m {
	case PR, PW, LR:
		return true
	}
	return false
}

// Valid reports whether m is a grantable mode.
func (m Mode) Valid() bool { return m >= PR && m <= LW }

// Covers reports whether a cached lock of mode m satisfies an operation
// that needs mode need. It follows the severity ordering of Fig. 9: a
// more restrictive mode can be used in more scenarios.
func (m Mode) Covers(need Mode) bool {
	switch m {
	case PW:
		return need == PR || need == NBW || need == BW || need == PW
	case BW:
		return need == NBW || need == BW
	case NBW:
		return need == NBW
	case PR:
		return need == PR
	case LW:
		return need == LR || need == LW
	case LR:
		return need == LR
	}
	return false
}

// Upgrade returns the least restrictive mode that covers both a and b —
// the target of lock upgrading in automatic lock conversion (Fig. 9).
func Upgrade(a, b Mode) Mode {
	if a.Covers(b) {
		return a
	}
	if b.Covers(a) {
		return b
	}
	// Mixed read/write (PR with NBW or BW) upgrades to PW; legacy mixes
	// upgrade to LW.
	if a == LR || a == LW || b == LR || b == LW {
		return LW
	}
	return PW
}

// State is a granted lock's state. A lock is GRANTED by default and
// enters CANCELING when its revocation reply has been processed by the
// server or it was granted with early revocation (§III-A2).
type State uint8

// Lock states.
const (
	// Granted means the lock may be cached and reused by the client.
	Granted State = 0
	// Canceling means the lock must not be reused and is to be canceled
	// after use.
	Canceling State = 1
)

func (s State) String() string {
	if s == Canceling {
		return "CANCELING"
	}
	return "GRANTED"
}

// Compatible implements the lock compatibility matrix. For SeqDLM modes
// it is Table II of the paper: the only state-dependent (N/Y) cells are
// a new NBW or BW request against a granted NBW lock, which becomes
// compatible once the granted lock is CANCELING — that transition *is*
// early grant. Legacy modes implement the traditional matrix where
// conflicts resolve only on full release.
func Compatible(req Mode, granted Mode, gstate State) bool {
	switch req {
	case PR:
		return granted == PR
	case NBW, BW:
		return granted == NBW && gstate == Canceling
	case PW:
		return false
	case LR:
		return granted == LR
	case LW:
		return false
	}
	return false
}

// Downgrade returns the mode a canceling lock converts to before data
// flushing (§III-D2), or ModeNone when no downgrade applies. BW
// downgrades to NBW; PW downgrades to PR when the holder only read under
// it (wrote == false) and to NBW otherwise.
func Downgrade(m Mode, wrote bool) Mode {
	switch m {
	case BW:
		return NBW
	case PW:
		if wrote {
			return NBW
		}
		return PR
	}
	return ModeNone
}

// SelectMode implements the deterministic lock mode selection rules of
// Fig. 10 for an IO operation: PR for reads; PW for writes with implicit
// reads (append, read-modify-write); BW for writes that must hold
// multiple locks simultaneously (atomic writes spanning stripes); NBW
// otherwise.
func SelectMode(isRead, implicitRead, multiResource bool) Mode {
	if isRead {
		return PR
	}
	if implicitRead {
		return PW
	}
	if multiResource {
		return BW
	}
	return NBW
}

// LegacyMode maps a SeqDLM mode to the traditional baseline's mode.
func LegacyMode(m Mode) Mode {
	if m == PR {
		return LR
	}
	if m.IsWrite() {
		return LW
	}
	return m
}
