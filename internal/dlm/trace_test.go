package dlm

import (
	"context"
	"strings"
	"testing"

	"ccpfs/internal/extent"
)

// TestTracerEarlyGrantSequence asserts the exact protocol sequence of an
// early-grant round as recorded by the tracer: request → grant (A),
// request (B) → revoke-sent (A) → revoke-ack (A) → grant (B), with B's
// grant arriving before A's release.
func TestTracerEarlyGrantSequence(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	tr := NewTracer(64)
	h.srv.SetTracer(tr)

	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))
	h.client(1).Unlock(a)
	b := mustAcquire(t, h.client(2), 1, NBW, extent.New(0, extent.Inf))
	h.client(2).Unlock(b)
	h.client(1).ReleaseAll(context.Background())
	h.client(2).ReleaseAll(context.Background())
	waitFor(t, "drain", func() bool { return h.srv.GrantedCount(1) == 0 })

	kinds := tr.Kinds()
	// Find the index of each milestone.
	idx := func(k EventKind, nth int) int {
		seen := 0
		for i, got := range kinds {
			if got == k {
				seen++
				if seen == nth {
					return i
				}
			}
		}
		return -1
	}
	grantA := idx(EvGrant, 1)
	revoke := idx(EvRevokeSent, 1)
	ack := idx(EvRevokeAck, 1)
	grantB := idx(EvGrant, 2)
	release := idx(EvRelease, 1)
	for name, i := range map[string]int{
		"grantA": grantA, "revoke": revoke, "ack": ack, "grantB": grantB, "release": release,
	} {
		if i < 0 {
			t.Fatalf("missing %s in trace:\n%s", name, tr.Dump())
		}
	}
	if !(grantA < revoke && revoke < ack && ack < grantB) {
		t.Fatalf("protocol order wrong:\n%s", tr.Dump())
	}
	if grantB > release {
		t.Fatalf("early grant did not precede release:\n%s", tr.Dump())
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.record(Event{Kind: EvRequest, Lock: LockID(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 || tr.Total() != 10 {
		t.Fatalf("len=%d total=%d", len(evs), tr.Total())
	}
	// Oldest-first: locks 6,7,8,9.
	for i, e := range evs {
		if e.Lock != LockID(6+i) {
			t.Fatalf("ring order wrong: %v", evs)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.record(Event{})
	if tr.Events() != nil || tr.Total() != 0 || tr.Dump() != "" {
		t.Fatal("nil tracer not inert")
	}
	h := newHarness(t, SeqDLM(), 1)
	// No tracer attached: traffic must work.
	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, 10))
	h.client(1).Unlock(a)
}

func TestTracerDumpAndStrings(t *testing.T) {
	tr := NewTracer(8)
	tr.record(Event{Kind: EvGrant, Resource: 1, Client: 2, Lock: 3, Mode: NBW, Range: extent.New(0, 10), SN: 4})
	out := tr.Dump()
	for _, want := range []string{"grant", "res=1", "client=2", "lock=3", "NBW", "sn=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	for k := EvRequest; k <= EvUpgrade; k++ {
		if strings.HasPrefix(k.String(), "event(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if NewTracer(0) == nil {
		t.Fatal("NewTracer(0) must clamp, not fail")
	}
}
