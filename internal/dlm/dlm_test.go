package dlm

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/extent"
)

// harness wires a Server and several LockClients directly (no RPC), so
// protocol behaviour is tested in isolation. The notifier delivers the
// revocation callback into the client and then acks to the server,
// mimicking the RPC round trip.
type harness struct {
	srv     *Server
	flusher *recFlusher
	clients map[ClientID]*LockClient

	mu         sync.Mutex
	revokeGate chan struct{} // when non-nil, revocation delivery waits on it
}

func (h *harness) setRevokeGate(gate chan struct{}) {
	h.mu.Lock()
	h.revokeGate = gate
	h.mu.Unlock()
}

type directConn struct{ srv *Server }

func (d directConn) Lock(ctx context.Context, req Request) (Grant, error) {
	return d.srv.Lock(ctx, req)
}
func (d directConn) Release(_ context.Context, res ResourceID, id LockID) error {
	d.srv.Release(res, id)
	return nil
}
func (d directConn) Downgrade(_ context.Context, res ResourceID, id LockID, m Mode) error {
	return d.srv.Downgrade(res, id, m)
}

// recFlusher records FlushForCancel calls; an optional gate blocks each
// flush until released, simulating slow data flushing.
type recFlusher struct {
	mu    sync.Mutex
	gate  chan struct{}
	calls []flushCall
}

type flushCall struct {
	res ResourceID
	rng extent.Extent
	sn  extent.SN
}

func (f *recFlusher) FlushForCancel(_ context.Context, res ResourceID, rng extent.Extent, sn extent.SN) error {
	f.mu.Lock()
	gate := f.gate
	f.mu.Unlock()
	if gate != nil {
		<-gate
	}
	f.mu.Lock()
	f.calls = append(f.calls, flushCall{res, rng, sn})
	f.mu.Unlock()
	return nil
}

func (f *recFlusher) setGate(gate chan struct{}) {
	f.mu.Lock()
	f.gate = gate
	f.mu.Unlock()
}

func (f *recFlusher) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

func newHarness(t *testing.T, policy Policy, nclients int) *harness {
	t.Helper()
	h := &harness{
		flusher: &recFlusher{},
		clients: make(map[ClientID]*LockClient),
	}
	h.srv = NewServer(policy, nil)
	h.srv.SetNotifier(NotifierFunc(func(_ context.Context, rv Revocation) {
		h.mu.Lock()
		gate := h.revokeGate
		h.mu.Unlock()
		if gate != nil {
			<-gate
		}
		if c, ok := h.clients[rv.Client]; ok {
			c.OnRevoke(rv.Resource, rv.Lock)
		}
		h.srv.RevokeAck(rv.Resource, rv.Lock)
	}))
	router := func(ResourceID) ServerConn { return directConn{h.srv} }
	for i := 1; i <= nclients; i++ {
		id := ClientID(i)
		h.clients[id] = NewLockClient(id, policy, router, h.flusher)
	}
	return h
}

func (h *harness) client(i int) *LockClient { return h.clients[ClientID(i)] }

func mustAcquire(t *testing.T, c *LockClient, res ResourceID, m Mode, rng extent.Extent) *Handle {
	t.Helper()
	hd, err := c.Acquire(context.Background(), res, m, rng)
	if err != nil {
		t.Fatalf("Acquire(%v, %v): %v", m, rng, err)
	}
	return hd
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestGrantNoConflictExpandsToEOF(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	hd := mustAcquire(t, h.client(1), 1, NBW, extent.New(100, 200))
	if hd.Range() != extent.New(100, extent.Inf) {
		t.Fatalf("range = %v, want [100, EOF)", hd.Range())
	}
	if hd.State() != Granted {
		t.Fatalf("state = %v", hd.State())
	}
	h.client(1).Unlock(hd)
}

func TestWriteGrantsGetUniqueIncreasingSNs(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))
	sn0 := a.SN()
	h.client(1).Unlock(a)
	b, err := h.client(2).Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
	if err != nil {
		t.Fatal(err)
	}
	if b.SN() != sn0+1 {
		t.Fatalf("second write SN = %d, want %d", b.SN(), sn0+1)
	}
	h.client(2).Unlock(b)
}

func TestReadGrantDoesNotConsumeSN(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	r1 := mustAcquire(t, h.client(1), 1, PR, extent.New(0, 10))
	h.client(1).Unlock(r1)
	// Force the PR lock out so the next write starts fresh.
	h.client(1).ReleaseAll(context.Background())
	w := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, 10))
	if w.SN() != r1.SN() {
		t.Fatalf("PR consumed an SN: read sn=%d write sn=%d", r1.SN(), w.SN())
	}
	h.client(1).Unlock(w)
}

func TestExpansionCappedByConflictingLock(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(1000, 2000))
	if a.Range().Start != 1000 || a.Range().End != extent.Inf {
		t.Fatalf("first lock range = %v", a.Range())
	}
	b := mustAcquire(t, h.client(2), 1, NBW, extent.New(0, 100))
	if b.Range() != extent.New(0, 1000) {
		t.Fatalf("second lock range = %v, want [0, 1000)", b.Range())
	}
	h.client(1).Unlock(a)
	h.client(2).Unlock(b)
}

// TestEarlyGrant is the heart of §III-A1: a conflicting NBW request is
// granted as soon as the holder acks the revocation, before its data
// flushing completes.
func TestEarlyGrant(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	gate := make(chan struct{})
	h.flusher.setGate(gate)

	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))
	h.client(1).Unlock(a) // cached, idle

	// B's request conflicts; A's flush is gated so a normal grant would
	// block forever — early grant must complete anyway.
	done := make(chan *Handle, 1)
	go func() {
		b, err := h.client(2).Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
		if err == nil {
			done <- b
		}
	}()
	select {
	case b := <-done:
		if b.SN() != a.SN()+1 {
			t.Fatalf("grant order wrong: a.sn=%d b.sn=%d", a.SN(), b.SN())
		}
		if h.flusher.count() != 0 {
			t.Fatal("flush completed before early grant check")
		}
		close(gate)
		h.client(2).Unlock(b)
	case <-time.After(5 * time.Second):
		close(gate)
		t.Fatal("early grant did not happen: conflicting NBW blocked on data flushing")
	}
	if h.srv.Stats.EarlyGrants.Load() == 0 {
		t.Fatal("EarlyGrants stat not incremented")
	}
}

// TestNormalGrantWaitsForFlush: the legacy write lock must not be
// granted until the previous holder has flushed and released.
func TestNormalGrantWaitsForFlush(t *testing.T) {
	h := newHarness(t, Basic(), 2)
	gate := make(chan struct{})
	h.flusher.setGate(gate)

	a := mustAcquire(t, h.client(1), 1, LW, extent.New(0, extent.Inf))
	h.client(1).Unlock(a)

	done := make(chan struct{})
	go func() {
		b, err := h.client(2).Acquire(context.Background(), 1, LW, extent.New(0, extent.Inf))
		if err == nil {
			h.client(2).Unlock(b)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("legacy write lock granted before holder flushed (early grant leaked into DLM-basic)")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("grant never happened after flush")
	}
	if h.flusher.count() == 0 {
		t.Fatal("no flush recorded")
	}
}

// TestReadWaitsForWriterFlush: PR against a canceling NBW is still
// incompatible — readers must observe flushed data (Table II).
func TestReadWaitsForWriterFlush(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	gate := make(chan struct{})
	h.flusher.setGate(gate)

	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))
	h.client(1).Unlock(a)

	done := make(chan struct{})
	go func() {
		r, err := h.client(2).Acquire(context.Background(), 1, PR, extent.New(0, 100))
		if err == nil {
			h.client(2).Unlock(r)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("PR granted while conflicting write unflushed")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("PR never granted after flush")
	}
}

// TestEarlyRevocation: with conflicting requests queued, grants are
// tagged CANCELING and the server never waits for revocation replies.
func TestEarlyRevocation(t *testing.T) {
	h := newHarness(t, SeqDLM(), 3)
	gate := make(chan struct{})
	h.flusher.setGate(gate)
	defer close(gate)
	revGate := make(chan struct{})
	h.setRevokeGate(revGate)

	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))
	h.client(1).Unlock(a)

	// Two conflicting requests queue up while A's revocation is held
	// back. Once it is delivered, B is granted; because C's request is
	// queued and B's range cannot expand, B's grant is tagged CANCELING.
	type result struct {
		hd  *Handle
		cli *LockClient
	}
	results := make(chan result, 2)
	for i := 2; i <= 3; i++ {
		go func(i int) {
			cli := h.client(i)
			hd, err := cli.Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
			if err == nil {
				results <- result{hd, cli}
			}
		}(i)
	}
	waitFor(t, "both requests queued", func() bool { return h.srv.QueueLen(1) == 2 })
	close(revGate)
	r1 := <-results
	r2 := <-results
	if r1.hd.State() != Canceling && r2.hd.State() != Canceling {
		t.Fatalf("no contended grant tagged CANCELING (early revocation): %v, %v",
			r1.hd.State(), r2.hd.State())
	}
	if h.srv.Stats.EarlyRevocations.Load() == 0 {
		t.Fatal("EarlyRevocations stat not incremented")
	}
	r1.cli.Unlock(r1.hd)
	r2.cli.Unlock(r2.hd)
}

// TestLockUpgrading reproduces Fig. 11: a PR request conflicting with
// the same client's NBW is upgraded to PW and the NBW is absorbed.
func TestLockUpgrading(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)
	w := mustAcquire(t, c, 1, NBW, extent.New(0, extent.Inf))
	c.Unlock(w)

	r := mustAcquire(t, c, 1, PR, extent.New(0, 100))
	if r.Mode() != PW {
		t.Fatalf("upgraded mode = %v, want PW", r.Mode())
	}
	if c.CachedLocks(1) != 1 {
		t.Fatalf("cached locks = %d, want 1 (absorbed)", c.CachedLocks(1))
	}
	if h.srv.Stats.Upgrades.Load() != 1 {
		t.Fatalf("Upgrades = %d, want 1", h.srv.Stats.Upgrades.Load())
	}
	if h.srv.Stats.Revocations.Load() != 0 {
		t.Fatal("upgrading must not revoke the same client's lock")
	}
	// Subsequent reads and writes reuse the PW lock.
	r2 := mustAcquire(t, c, 1, PR, extent.New(0, 10))
	w2 := mustAcquire(t, c, 1, NBW, extent.New(50, 60))
	if r2 != r || w2 != r {
		t.Fatal("PW lock not reused from cache")
	}
	c.Unlock(r)
	c.Unlock(r2)
	c.Unlock(w2)
}

// TestUpgradeReclaimsOtherReaders: upgrading to PW first reclaims PR
// locks cached by other clients.
func TestUpgradeReclaimsOtherReaders(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	// Client 2 takes a PR first so client 1's later NBW cannot expand
	// over it and both coexist.
	b := mustAcquire(t, h.client(2), 1, PR, extent.New(20, 30))
	h.client(2).Unlock(b)
	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, 10))
	if a.Range().End != 20 {
		t.Fatalf("NBW range = %v, want capped at client 2's PR", a.Range())
	}
	h.client(1).Unlock(a)

	// Client 1 reads [0, 30): same-client conflict with its NBW upgrades
	// the request to PW, which now conflicts with client 2's PR.
	r := mustAcquire(t, h.client(1), 1, PR, extent.New(0, 30))
	if r.Mode() != PW {
		t.Fatalf("mode = %v, want PW", r.Mode())
	}
	if h.client(2).Stats.Revocations.Load() == 0 {
		t.Fatal("other client's PR was not reclaimed")
	}
	h.client(1).Unlock(r)
}

// TestLockDowngrading reproduces Fig. 12: a canceling BW downgrades to
// NBW, letting a conflicting BW request early grant before the flush.
func TestLockDowngrading(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	gate := make(chan struct{})
	h.flusher.setGate(gate)

	a := mustAcquire(t, h.client(1), 1, BW, extent.New(0, extent.Inf))

	done := make(chan *Handle, 1)
	go func() {
		b, err := h.client(2).Acquire(context.Background(), 1, BW, extent.New(0, extent.Inf))
		if err == nil {
			done <- b
		}
	}()
	// While A holds the BW lock, B must wait (blocking feature).
	select {
	case <-done:
		t.Fatal("BW granted while another BW held (atomicity broken)")
	case <-time.After(100 * time.Millisecond):
	}
	// A unlocks; the cancel path downgrades BW→NBW, and B is granted
	// before A's gated flush finishes.
	h.client(1).Unlock(a)
	select {
	case b := <-done:
		if h.flusher.count() != 0 {
			t.Fatal("B waited for A's flush despite downgrade")
		}
		close(gate)
		h.client(2).Unlock(b)
	case <-time.After(5 * time.Second):
		close(gate)
		t.Fatal("BW request never granted after downgrade")
	}
	if h.srv.Stats.Downgrades.Load() == 0 {
		t.Fatal("Downgrades stat not incremented")
	}
}

// TestDowngradeDisabledBlocks: without conversion, a canceling BW keeps
// blocking until release (the BW−D ablation of Fig. 19b).
func TestDowngradeDisabledBlocks(t *testing.T) {
	p := SeqDLM()
	p.Conversion = false
	h := newHarness(t, p, 2)
	gate := make(chan struct{})
	h.flusher.setGate(gate)

	a := mustAcquire(t, h.client(1), 1, BW, extent.New(0, extent.Inf))
	done := make(chan struct{})
	go func() {
		b, err := h.client(2).Acquire(context.Background(), 1, BW, extent.New(0, extent.Inf))
		if err == nil {
			h.client(2).Unlock(b)
		}
		close(done)
	}()
	h.client(1).Unlock(a)
	select {
	case <-done:
		t.Fatal("BW granted before flush with conversion disabled")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("grant never arrived")
	}
}

// TestPWDowngradesToPRForReaders: a canceling PW held only by readers
// flushes and downgrades to PR, compatible with waiting PR requests.
func TestPWDowngradesToPRForReaders(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	a := mustAcquire(t, h.client(1), 1, PW, extent.New(0, extent.Inf))
	// Use it as a reader only: re-acquire for PR, never write.
	h.client(1).Unlock(a)
	// Re-acquire with a read need so wrote stays... the first acquire was
	// PW (write). Use a fresh scenario instead: acquire PR, upgrade never
	// happens; so acquire PW directly but mark only reads.
	_ = a

	h2 := newHarness(t, SeqDLM(), 2)
	// Reader acquires PR; no conflict; then another client's PR also
	// works. The PW→PR downgrade needs a PW acquired for a read-only
	// purpose — that arises from upgrading. Simulate: client 1 gets NBW,
	// then PR (upgrade to PW, wrote=true because NBW wrote)...
	// A genuinely read-only PW comes from Acquire(PW) for an operation
	// that checks but never writes; model it via need=PR on a PW handle.
	c1 := h2.client(1)
	hd, err := c1.Acquire(context.Background(), 1, PW, extent.New(0, extent.Inf))
	if err != nil {
		t.Fatal(err)
	}
	// Force wrote=false to model the only-readers case.
	hd.hot.And(^hotWrote)

	gate := make(chan struct{})
	h2.flusher.setGate(gate)
	done := make(chan struct{})
	go func() {
		r, err := h2.client(2).Acquire(context.Background(), 1, PR, extent.New(0, 10))
		if err == nil {
			h2.client(2).Unlock(r)
		}
		close(done)
	}()
	time.Sleep(50 * time.Millisecond) // let the PR request queue and revoke PW
	close(gate)                       // allow the pre-downgrade flush
	c1.Unlock(hd)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("PR not granted after PW→PR downgrade")
	}
}

func TestDatatypeDisjointSetsDoNotConflict(t *testing.T) {
	h := newHarness(t, Datatype(), 2)
	setA := extent.NewSet(extent.New(0, 10), extent.New(100, 110))
	setB := extent.NewSet(extent.New(10, 20), extent.New(200, 210))
	a, err := h.client(1).AcquireExtents(context.Background(), 1, NBW, setA)
	if err != nil {
		t.Fatal(err)
	}
	// B's set interleaves with A's but never overlaps: must grant
	// immediately even while A holds its lock.
	done := make(chan *Handle, 1)
	go func() {
		b, err := h.client(2).AcquireExtents(context.Background(), 1, NBW, setB)
		if err == nil {
			done <- b
		}
	}()
	select {
	case b := <-done:
		h.client(2).Unlock(b)
	case <-time.After(2 * time.Second):
		t.Fatal("disjoint datatype locks conflicted")
	}
	h.client(1).Unlock(a)
}

func TestDatatypeOverlappingSetsSerialize(t *testing.T) {
	h := newHarness(t, Datatype(), 2)
	gate := make(chan struct{})
	h.flusher.setGate(gate)
	setA := extent.NewSet(extent.New(0, 10), extent.New(100, 110))
	setB := extent.NewSet(extent.New(105, 120))
	a, err := h.client(1).AcquireExtents(context.Background(), 1, NBW, setA)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		b, err := h.client(2).AcquireExtents(context.Background(), 1, NBW, setB)
		if err == nil {
			h.client(2).Unlock(b)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("overlapping datatype locks granted concurrently")
	case <-time.After(100 * time.Millisecond):
	}
	h.client(1).Unlock(a) // datatype policy releases after use
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second datatype lock never granted")
	}
	// Datatype locks are not cached.
	waitFor(t, "lock cache drain", func() bool {
		return h.client(1).CachedLocks(1) == 0 && h.client(2).CachedLocks(1) == 0
	})
}

func TestLustreExpansionCap(t *testing.T) {
	p := Lustre()
	p.LustreCapBytes = 1 << 10 // 1 KB cap for the test
	p.LustreLockThreshold = 4
	h := newHarness(t, p, 1)
	c := h.client(1)
	// Grant more than the threshold; ranges must expand greedily first.
	hd := mustAcquire(t, c, 1, LW, extent.New(0, 16))
	if hd.Range().End != extent.Inf {
		t.Fatalf("pre-threshold expansion = %v, want EOF", hd.Range())
	}
	c.Unlock(hd)
	c.ReleaseAll(context.Background())
	for i := 0; i < 5; i++ {
		hd := mustAcquire(t, c, 1, LW, extent.Span(int64(i*100000), 16))
		c.Unlock(hd)
		c.ReleaseAll(context.Background())
	}
	hd = mustAcquire(t, c, 1, LW, extent.New(1<<20, 1<<20+16))
	if hd.Range().End != 1<<20+1<<10 {
		t.Fatalf("post-threshold expansion = %v, want capped at start+1K", hd.Range())
	}
	c.Unlock(hd)
}

func TestMinSN(t *testing.T) {
	h := newHarness(t, SeqDLM(), 3)
	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(1000, 2000))
	b := mustAcquire(t, h.client(2), 1, NBW, extent.New(0, 500))
	if _, ok := h.srv.MinSN(1, extent.New(5000, 6000)); ok {
		// a's range expanded to [1000, EOF) so this overlaps; adjust
		// expectation: it must report a's SN.
	}
	msn, ok := h.srv.MinSN(1, extent.New(0, extent.Inf))
	if !ok {
		t.Fatal("MinSN found no locks")
	}
	want := a.SN()
	if b.SN() < want {
		want = b.SN()
	}
	if msn != want {
		t.Fatalf("MinSN = %d, want %d", msn, want)
	}
	h.client(1).Unlock(a)
	h.client(2).Unlock(b)
	h.client(1).ReleaseAll(context.Background())
	h.client(2).ReleaseAll(context.Background())
	if _, ok := h.srv.MinSN(1, extent.New(0, extent.Inf)); ok {
		t.Fatal("MinSN reported locks after all released")
	}
}

func TestClientCacheReuse(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)
	a := mustAcquire(t, c, 1, NBW, extent.New(0, 100))
	c.Unlock(a)
	b := mustAcquire(t, c, 1, NBW, extent.New(200, 300)) // inside expanded range
	if a != b {
		t.Fatal("cached lock not reused")
	}
	if c.Stats.CacheHits.Load() != 1 || c.Stats.CacheMisses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Stats.CacheHits.Load(), c.Stats.CacheMisses.Load())
	}
	c.Unlock(b)
}

func TestUnlockWithoutAcquirePanics(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)
	a := mustAcquire(t, c, 1, NBW, extent.New(0, 100))
	c.Unlock(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double Unlock did not panic")
		}
	}()
	c.Unlock(a)
}

func TestInvalidRequests(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	if _, err := h.srv.Lock(context.Background(), Request{Resource: 1, Client: 1, Mode: Mode(77), Range: extent.New(0, 1)}); err == nil {
		t.Fatal("invalid mode accepted")
	}
	if _, err := h.srv.Lock(context.Background(), Request{Resource: 1, Client: 1, Mode: LW, Range: extent.New(0, 1)}); err == nil {
		t.Fatal("legacy mode accepted by SeqDLM policy")
	}
	if _, err := h.srv.Lock(context.Background(), Request{Resource: 1, Client: 1, Mode: NBW, Range: extent.Extent{}}); err == nil {
		t.Fatal("empty range accepted")
	}
	if err := h.srv.Downgrade(1, 9999, NBW); err == nil {
		t.Fatal("downgrade of unknown lock accepted")
	}
	h.srv.Release(1, 12345)  // unknown release must be a no-op
	h.srv.RevokeAck(1, 4242) // unknown ack must be a no-op
}

func TestFIFOFairnessNoOvertaking(t *testing.T) {
	h := newHarness(t, Basic(), 3)
	gate := make(chan struct{})
	h.flusher.setGate(gate)
	a := mustAcquire(t, h.client(1), 1, LW, extent.New(0, extent.Inf))
	h.client(1).Unlock(a)

	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 2; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hd, err := h.client(i).Acquire(context.Background(), 1, LW, extent.New(0, extent.Inf))
			if err != nil {
				return
			}
			order <- i
			h.client(i).Unlock(hd)
			h.client(i).ReleaseAll(context.Background())
		}(i)
		time.Sleep(50 * time.Millisecond) // ensure queue order 2 then 3
	}
	close(gate)
	wg.Wait()
	first := <-order
	if first != 2 {
		t.Fatalf("client %d overtook client 2 in the queue", first)
	}
}

func TestReleaseAllFlushesEverything(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)
	for i := 0; i < 3; i++ {
		hd := mustAcquire(t, c, ResourceID(i), NBW, extent.New(0, 100))
		c.Unlock(hd)
	}
	c.ReleaseAll(context.Background())
	if got := h.flusher.count(); got != 3 {
		t.Fatalf("flushed %d locks, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if c.CachedLocks(ResourceID(i)) != 0 {
			t.Fatal("cache not drained")
		}
		if h.srv.GrantedCount(ResourceID(i)) != 0 {
			t.Fatal("server still holds locks")
		}
	}
}

// TestConcurrentStress hammers one resource from many clients in mixed
// modes and verifies global invariants: every acquire completes, write
// SNs are unique, and the server drains cleanly.
func TestConcurrentStress(t *testing.T) {
	for _, pol := range []Policy{SeqDLM(), Basic(), Lustre()} {
		t.Run(pol.Name, func(t *testing.T) {
			const nclients = 8
			const opsEach = 30
			h := newHarness(t, pol, nclients)
			var wg sync.WaitGroup
			var mu sync.Mutex
			writeSNs := make(map[extent.SN]int)
			for i := 1; i <= nclients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(i)))
					c := h.client(i)
					for op := 0; op < opsEach; op++ {
						start := rng.Int63n(1 << 20)
						e := extent.Span(start, 4096)
						mode := NBW
						if rng.Intn(4) == 0 {
							mode = PR
						}
						hd, err := c.Acquire(context.Background(), 1, mode, e)
						if err != nil {
							t.Errorf("acquire: %v", err)
							return
						}
						if hd.Mode().IsWrite() {
							mu.Lock()
							writeSNs[hd.SN()]++
							mu.Unlock()
						}
						c.Unlock(hd)
					}
				}(i)
			}
			wg.Wait()
			if err := h.srv.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= nclients; i++ {
				h.client(i).ReleaseAll(context.Background())
			}
			waitFor(t, "server drain", func() bool { return h.srv.GrantedCount(1) == 0 })
			// Distinct write locks must have distinct SNs (the same SN
			// appearing twice is fine only via cache reuse of one lock,
			// which we counted once per handle, so duplicates mean two
			// different grants shared an SN).
			snaps := h.srv.Stats.Snapshot()
			if snaps.Grants == 0 {
				t.Fatal("no grants recorded")
			}
		})
	}
}

// TestWriteSNUniqueAcrossGrants verifies the sequencer property directly
// at the server: every write-mode grant returns a distinct SN.
func TestWriteSNUniqueAcrossGrants(t *testing.T) {
	h := newHarness(t, SeqDLM(), 4)
	var mu sync.Mutex
	owner := map[extent.SN]*Handle{}
	var wg sync.WaitGroup
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := h.client(i)
			for op := 0; op < 25; op++ {
				hd, err := c.Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				// Two *distinct* NBW handles must never share an SN —
				// each write-mode grant consumes one.
				mu.Lock()
				if old, ok := owner[hd.SN()]; ok && old != hd {
					t.Errorf("SN %d granted to two different locks", hd.SN())
				}
				owner[hd.SN()] = hd
				mu.Unlock()
				c.Unlock(hd)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i <= 4; i++ {
		h.client(i).ReleaseAll(context.Background())
	}
}

func TestStatsSnapshotSub(t *testing.T) {
	var s Stats
	s.Grants.Add(10)
	s.CancelWaitHist.Record(int64(3 * time.Second))
	a := s.Snapshot()
	s.Grants.Add(5)
	b := s.Snapshot()
	d := b.Sub(a)
	if d.Grants != 5 || d.CancelWait != 0 {
		t.Fatalf("diff = %+v", d)
	}
	if a.CancelWait != 3*time.Second {
		t.Fatalf("CancelWait = %v", a.CancelWait)
	}
}

func TestGrantStateString(t *testing.T) {
	if Granted.String() != "GRANTED" || Canceling.String() != "CANCELING" {
		t.Fatal("state strings wrong")
	}
}

func TestHandleAccessors(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)
	hd := mustAcquire(t, c, 7, NBW, extent.New(0, 10))
	if hd.Resource() != 7 || hd.ID() == 0 {
		t.Fatalf("accessors wrong: res=%d id=%d", hd.Resource(), hd.ID())
	}
	select {
	case <-hd.Released():
		t.Fatal("Released closed while held")
	default:
	}
	c.Unlock(hd)
	c.ReleaseAll(context.Background())
	select {
	case <-hd.Released():
	case <-time.After(2 * time.Second):
		t.Fatal("Released never closed")
	}
}

func TestAcquireExtentsEmptySet(t *testing.T) {
	h := newHarness(t, Datatype(), 1)
	if _, err := h.client(1).AcquireExtents(context.Background(), 1, NBW, extent.Set{}); err == nil {
		t.Fatal("empty extent set accepted")
	}
}

func ExampleSelectMode() {
	fmt.Println(SelectMode(true, false, false))
	fmt.Println(SelectMode(false, false, false))
	fmt.Println(SelectMode(false, false, true))
	fmt.Println(SelectMode(false, true, false))
	// Output:
	// PR
	// NBW
	// BW
	// PW
}
