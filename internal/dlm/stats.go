package dlm

import (
	"sync/atomic"
	"time"
)

// Stats holds protocol counters for a lock server. The wait-time
// attribution implements the Fig. 17 breakdown: for every grant that had
// to resolve conflicts, the time from enqueue until every conflicting
// lock reached CANCELING is revocation wait (part ① of the paper's
// breakdown), and the remainder until grant is cancel wait — data
// flushing plus lock release (part ②). Everything else in an operation
// (lock request, grant reply, cache copy) is part ③.
type Stats struct {
	Grants           atomic.Int64
	Releases         atomic.Int64
	Revocations      atomic.Int64
	// RevokeBatches counts batched notifier deliveries: Revocations /
	// RevokeBatches is the per-client coalescing factor the revoker
	// achieved (DESIGN.md §9).
	RevokeBatches    atomic.Int64
	EarlyGrants      atomic.Int64
	EarlyRevocations atomic.Int64
	Upgrades         atomic.Int64
	Downgrades       atomic.Int64

	GrantWaitNs      atomic.Int64
	RevocationWaitNs atomic.Int64
	CancelWaitNs     atomic.Int64
}

// Snapshot is a plain-value copy of Stats.
type Snapshot struct {
	Grants           int64
	Releases         int64
	Revocations      int64
	RevokeBatches    int64
	EarlyGrants      int64
	EarlyRevocations int64
	Upgrades         int64
	Downgrades       int64

	GrantWait      time.Duration
	RevocationWait time.Duration
	CancelWait     time.Duration
}

// Snapshot returns a consistent-enough copy for reporting.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Grants:           s.Grants.Load(),
		Releases:         s.Releases.Load(),
		Revocations:      s.Revocations.Load(),
		RevokeBatches:    s.RevokeBatches.Load(),
		EarlyGrants:      s.EarlyGrants.Load(),
		EarlyRevocations: s.EarlyRevocations.Load(),
		Upgrades:         s.Upgrades.Load(),
		Downgrades:       s.Downgrades.Load(),
		GrantWait:        time.Duration(s.GrantWaitNs.Load()),
		RevocationWait:   time.Duration(s.RevocationWaitNs.Load()),
		CancelWait:       time.Duration(s.CancelWaitNs.Load()),
	}
}

// Sub returns the difference s - o, for windowed measurements.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Grants:           s.Grants - o.Grants,
		Releases:         s.Releases - o.Releases,
		Revocations:      s.Revocations - o.Revocations,
		RevokeBatches:    s.RevokeBatches - o.RevokeBatches,
		EarlyGrants:      s.EarlyGrants - o.EarlyGrants,
		EarlyRevocations: s.EarlyRevocations - o.EarlyRevocations,
		Upgrades:         s.Upgrades - o.Upgrades,
		Downgrades:       s.Downgrades - o.Downgrades,
		GrantWait:        s.GrantWait - o.GrantWait,
		RevocationWait:   s.RevocationWait - o.RevocationWait,
		CancelWait:       s.CancelWait - o.CancelWait,
	}
}
