package dlm

import (
	"sync/atomic"
	"time"

	"ccpfs/internal/obs"
)

// Stats holds protocol counters for a lock server. The wait-time
// attribution implements the Fig. 17 breakdown: for every grant that had
// to resolve conflicts, the time from enqueue until every conflicting
// lock reached CANCELING is revocation wait (part ① of the paper's
// breakdown), and the remainder until grant is cancel wait — data
// flushing plus lock release (part ②). Everything else in an operation
// (lock request, grant reply, cache copy) is part ③.
//
// The wait components are full log-bucketed histograms (obs.Histogram)
// rather than raw nanosecond sums, so percentiles are available through
// a registry while Snapshot still reports the sums the experiment
// tables were built on. Recording stays allocation-free: one histogram
// record is a few atomic adds on preallocated buckets.
type Stats struct {
	Grants      atomic.Int64
	Releases    atomic.Int64
	Revocations atomic.Int64
	// RevokeBatches counts batched notifier deliveries: Revocations /
	// RevokeBatches is the per-client coalescing factor the revoker
	// achieved (DESIGN.md §9). Derive it via Snapshot.CoalescingFactor,
	// which guards the zero-batch case.
	RevokeBatches    atomic.Int64
	EarlyGrants      atomic.Int64
	EarlyRevocations atomic.Int64
	Upgrades         atomic.Int64
	Downgrades       atomic.Int64

	// LockOps counts client-initiated lock-service operations (Lock,
	// Release, Downgrade, standalone HandoffAck) — the server-RPC cost
	// of the locking protocol. Piggybacked handoff acks ride inside a
	// Lock and are not counted separately, so LockOps per exchange is
	// exactly the round-trip metric the handoff fast path optimizes:
	// ~2 per ping-pong exchange on the server path, ~1 with handoff.
	LockOps atomic.Int64
	// Handoff delegation counters (DESIGN.md §13): stamps issued,
	// delegations confirmed by the new owner, and delegations the
	// server reclaimed after a timeout (holder vanished or transfer
	// lost).
	Handoffs        atomic.Int64
	HandoffAcks     atomic.Int64
	HandoffReclaims atomic.Int64

	// Reader fan-out counters (DESIGN.md §14): scan passes that granted
	// a run of ≥2 shared-mode waiters in one hold of the resource lock
	// (and the grants those runs produced), broadcast stamps issued
	// toward reader cohorts, cohort gathers stamped back toward writers,
	// and delegated read leases installed (broadcast members plus
	// pre-armed handbacks).
	FanRuns     atomic.Int64
	FanGrants   atomic.Int64
	Broadcasts  atomic.Int64
	Gathers     atomic.Int64
	LeaseGrants atomic.Int64

	// GrantWaitHist records enqueue→grant for every grant;
	// RevocationWaitHist and CancelWaitHist record the ①/② split for
	// grants that resolved conflicts. Early grants that never saw all
	// conflicts reach CANCELING contribute to RevocationWaitHist only —
	// no zero-valued cancel-wait sample (see Server.grant).
	GrantWaitHist      obs.Histogram
	RevocationWaitHist obs.Histogram
	CancelWaitHist     obs.Histogram

	// RevokeQueue is the revoker pool's instantaneous backlog: the
	// number of revocations enqueued for delivery but not yet handed to
	// the notifier.
	RevokeQueue obs.Gauge

	// Partition-mastership instruments (partition.go): the number of
	// slots this engine currently masters and the slots it has handed
	// off / taken in through online migration. Zero SlotsOwned on an
	// unpartitioned engine means "all of them" — the gauge is only
	// written once a slot view is installed.
	SlotsOwned        obs.Gauge
	SlotMigrationsIn  atomic.Int64
	SlotMigrationsOut atomic.Int64
}

// Register exposes the server's instruments in reg under dlm.*.
func (s *Stats) Register(reg *obs.Registry) {
	reg.Func("dlm.grants", s.Grants.Load)
	reg.Func("dlm.releases", s.Releases.Load)
	reg.Func("dlm.revocations", s.Revocations.Load)
	reg.Func("dlm.revoke_batches", s.RevokeBatches.Load)
	reg.Func("dlm.early_grants", s.EarlyGrants.Load)
	reg.Func("dlm.early_revocations", s.EarlyRevocations.Load)
	reg.Func("dlm.upgrades", s.Upgrades.Load)
	reg.Func("dlm.downgrades", s.Downgrades.Load)
	reg.Func("dlm.lock_ops", s.LockOps.Load)
	reg.Func("dlm.handoffs", s.Handoffs.Load)
	reg.Func("dlm.handoff_acks", s.HandoffAcks.Load)
	reg.Func("dlm.handoff_reclaims", s.HandoffReclaims.Load)
	reg.Func("dlm.fan_runs", s.FanRuns.Load)
	reg.Func("dlm.fan_grants", s.FanGrants.Load)
	reg.Func("dlm.broadcasts", s.Broadcasts.Load)
	reg.Func("dlm.gathers", s.Gathers.Load)
	reg.Func("dlm.lease_grants", s.LeaseGrants.Load)
	reg.RegisterHistogram("dlm.grant_wait", &s.GrantWaitHist)
	reg.RegisterHistogram("dlm.revocation_wait", &s.RevocationWaitHist)
	reg.RegisterHistogram("dlm.cancel_wait", &s.CancelWaitHist)
	reg.RegisterGauge("dlm.revoke_queue", &s.RevokeQueue)
	reg.RegisterGauge("dlm.slots_owned", &s.SlotsOwned)
	reg.Func("dlm.slot_migrations_in", s.SlotMigrationsIn.Load)
	reg.Func("dlm.slot_migrations_out", s.SlotMigrationsOut.Load)
}

// WaitHists returns point-in-time snapshots of the three wait
// histograms. Cross-server aggregation merges these (obs.HistSnapshot
// .Merge) instead of summing Snapshot's scalar fields, so percentiles
// survive aggregation — summing two p99s is meaningless, merging two
// bucket vectors is exact.
func (s *Stats) WaitHists() (grant, revocation, cancel obs.HistSnapshot) {
	return s.GrantWaitHist.Snapshot(), s.RevocationWaitHist.Snapshot(), s.CancelWaitHist.Snapshot()
}

// Snapshot is a plain-value copy of Stats.
type Snapshot struct {
	Grants           int64
	Releases         int64
	Revocations      int64
	RevokeBatches    int64
	EarlyGrants      int64
	EarlyRevocations int64
	Upgrades         int64
	Downgrades       int64
	LockOps          int64
	Handoffs         int64
	HandoffAcks      int64
	HandoffReclaims  int64
	FanRuns          int64
	FanGrants        int64
	Broadcasts       int64
	Gathers          int64
	LeaseGrants      int64

	GrantWait      time.Duration
	RevocationWait time.Duration
	CancelWait     time.Duration
}

// Snapshot returns a consistent-enough copy for reporting. The wait
// fields are the histogram sums, preserving the pre-histogram schema.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Grants:           s.Grants.Load(),
		Releases:         s.Releases.Load(),
		Revocations:      s.Revocations.Load(),
		RevokeBatches:    s.RevokeBatches.Load(),
		EarlyGrants:      s.EarlyGrants.Load(),
		EarlyRevocations: s.EarlyRevocations.Load(),
		Upgrades:         s.Upgrades.Load(),
		Downgrades:       s.Downgrades.Load(),
		LockOps:          s.LockOps.Load(),
		Handoffs:         s.Handoffs.Load(),
		HandoffAcks:      s.HandoffAcks.Load(),
		HandoffReclaims:  s.HandoffReclaims.Load(),
		FanRuns:          s.FanRuns.Load(),
		FanGrants:        s.FanGrants.Load(),
		Broadcasts:       s.Broadcasts.Load(),
		Gathers:          s.Gathers.Load(),
		LeaseGrants:      s.LeaseGrants.Load(),
		GrantWait:        time.Duration(s.GrantWaitHist.Sum()),
		RevocationWait:   time.Duration(s.RevocationWaitHist.Sum()),
		CancelWait:       time.Duration(s.CancelWaitHist.Sum()),
	}
}

// Sub returns the difference s - o, for windowed measurements.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Grants:           s.Grants - o.Grants,
		Releases:         s.Releases - o.Releases,
		Revocations:      s.Revocations - o.Revocations,
		RevokeBatches:    s.RevokeBatches - o.RevokeBatches,
		EarlyGrants:      s.EarlyGrants - o.EarlyGrants,
		EarlyRevocations: s.EarlyRevocations - o.EarlyRevocations,
		Upgrades:         s.Upgrades - o.Upgrades,
		Downgrades:       s.Downgrades - o.Downgrades,
		LockOps:          s.LockOps - o.LockOps,
		Handoffs:         s.Handoffs - o.Handoffs,
		HandoffAcks:      s.HandoffAcks - o.HandoffAcks,
		HandoffReclaims:  s.HandoffReclaims - o.HandoffReclaims,
		FanRuns:          s.FanRuns - o.FanRuns,
		FanGrants:        s.FanGrants - o.FanGrants,
		Broadcasts:       s.Broadcasts - o.Broadcasts,
		Gathers:          s.Gathers - o.Gathers,
		LeaseGrants:      s.LeaseGrants - o.LeaseGrants,
		GrantWait:        s.GrantWait - o.GrantWait,
		RevocationWait:   s.RevocationWait - o.RevocationWait,
		CancelWait:       s.CancelWait - o.CancelWait,
	}
}

// CoalescingFactor returns the revocations-per-delivery ratio achieved
// by the revoker pool, or 0 before any batch has been delivered — the
// guarded form of Revocations / RevokeBatches.
func (s Snapshot) CoalescingFactor() float64 {
	if s.RevokeBatches <= 0 {
		return 0
	}
	return float64(s.Revocations) / float64(s.RevokeBatches)
}
