package dlm

import (
	"context"
	"testing"
	"time"

	"ccpfs/internal/extent"
)

// TestWaitAttributionEarlyGrant is the regression test for the
// wait-time attribution bug: a waiter granted via early grant — before
// every conflicting lock reached CANCELING server-side release — must
// not fabricate a cancel-wait sample from a zero allCancelAt, and per
// grant the Fig. 17 components must satisfy
//
//	RevocationWait + CancelWait <= GrantWait.
func TestWaitAttributionEarlyGrant(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	// Gate the flusher so the old holder's cancel phase (flush +
	// release) stays open; the second writer can then only get in via
	// early grant against the CANCELING lock.
	gate := make(chan struct{})
	h.flusher.setGate(gate)
	defer close(gate)

	hd1 := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))
	_ = hd1
	before := h.srv.Stats.Snapshot()

	hd2 := mustAcquire(t, h.client(2), 1, NBW, extent.New(0, extent.Inf))
	after := h.srv.Stats.Snapshot()
	d := after.Sub(before)

	if d.Grants != 1 {
		t.Fatalf("grants in window = %d, want 1", d.Grants)
	}
	if d.EarlyGrants != 1 {
		t.Fatalf("early grants in window = %d, want 1 (holder still flushing)", d.EarlyGrants)
	}
	if d.GrantWait <= 0 {
		t.Fatalf("grant wait = %v, want > 0", d.GrantWait)
	}
	if d.RevocationWait <= 0 {
		t.Fatalf("revocation wait = %v, want > 0 (conflict had to be revoked)", d.RevocationWait)
	}
	if d.RevocationWait+d.CancelWait > d.GrantWait {
		t.Fatalf("attribution overshoot: revocation %v + cancel %v > grant %v",
			d.RevocationWait, d.CancelWait, d.GrantWait)
	}
	// The early grant never saw a cancel phase: no cancel-wait sample
	// may be recorded, fabricated zeros included.
	if n := h.srv.Stats.CancelWaitHist.Count(); n != 0 {
		t.Fatalf("cancel-wait samples = %d, want 0 for an early grant", n)
	}
	h.client(2).Unlock(hd2)
}

// TestWaitAttributionFullCancel drives the ordinary conflict path —
// revoke, flush, release, grant — and checks both components are
// recorded and still bounded by the total grant wait.
func TestWaitAttributionFullCancel(t *testing.T) {
	// Early grant off: the waiter must wait out the holder's full
	// cancel (flush + release) phase. Conversion off keeps the cancel
	// path a plain release instead of a downgrade, so the conflict
	// resolves by the lock leaving the table.
	pol := SeqDLM()
	pol.EarlyGrant = false
	pol.Conversion = false
	h := newHarness(t, pol, 2)

	hd1 := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))
	// Return the lock to client 1's cache: the cancel path (flush +
	// release) only runs once the handle has no active holds.
	h.client(1).Unlock(hd1)
	before := h.srv.Stats.Snapshot()
	hd2, err := h.client(2).Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
	if err != nil {
		t.Fatal(err)
	}
	after := h.srv.Stats.Snapshot()
	d := after.Sub(before)

	if d.Grants != 1 {
		t.Fatalf("grants in window = %d, want 1", d.Grants)
	}
	if d.RevocationWait+d.CancelWait > d.GrantWait {
		t.Fatalf("attribution overshoot: revocation %v + cancel %v > grant %v",
			d.RevocationWait, d.CancelWait, d.GrantWait)
	}
	if got := h.srv.Stats.CancelWaitHist.Count(); got != 1 {
		t.Fatalf("cancel-wait samples = %d, want 1", got)
	}
	if got := h.srv.Stats.RevocationWaitHist.Count(); got != 1 {
		t.Fatalf("revocation-wait samples = %d, want 1", got)
	}
	// Percentiles come straight off the wait histograms now.
	if p99 := h.srv.Stats.GrantWaitHist.Snapshot().Quantile(0.99); time.Duration(p99) > time.Minute {
		t.Fatalf("implausible grant-wait p99: %v", time.Duration(p99))
	}
	h.client(2).Unlock(hd2)
}
