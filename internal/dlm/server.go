package dlm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/shard"
	"ccpfs/internal/sim"
	"ccpfs/internal/wire"
)

// ResourceID identifies a lock resource. In ccPFS each file stripe has a
// dedicated lock resource with the same identifier (§IV).
type ResourceID uint64

// ClientID identifies a lock client.
type ClientID uint32

// LockID identifies a granted lock within one server.
type LockID uint64

// Request asks for a byte-range lock on a resource.
type Request struct {
	Resource ResourceID
	Client   ClientID
	Mode     Mode
	Range    extent.Extent
	// Extents carries the exact non-contiguous ranges for the
	// DLM-datatype baseline. When set, Range must be its bounds and no
	// expansion is performed.
	Extents extent.Set
	// HandoffAcks piggybacks client-to-client handoff confirmations on a
	// lock request (DESIGN.md §13): each entry is a delegated lock on
	// the same resource whose transfer the requesting client received.
	// Piggybacked acks cost no extra server RPC.
	HandoffAcks []LockID
}

// Grant is the server's reply: the lock as granted, after range
// expansion and possible mode upgrading, tagged with its sequence number
// and state (CANCELING when granted with early revocation).
type Grant struct {
	LockID LockID
	Mode   Mode
	Range  extent.Extent
	SN     extent.SN
	State  State
	// Absorbed lists same-client locks this grant replaced via lock
	// upgrading; the client merges its cached locks accordingly.
	Absorbed []LockID
	// Delegated marks a grant issued through a handoff stamp: the lock
	// arrives from the previous holder over a client-to-client transfer
	// rather than being usable immediately, and the new owner must ack
	// it back to the server (DESIGN.md §13).
	Delegated bool
	// GatherParts is the number of client-to-client transfers a
	// delegated write grant collects before activating: one per member
	// of the reader cohort it displaced (DESIGN.md §14). Zero for
	// single-transfer delegations.
	GatherParts int
	// HandBack pre-arms the next read fan-out: the server has already
	// installed delegated leases for the displaced reader cohort; the
	// grantee owes them a broadcast transfer when it finishes, without
	// another server round trip (DESIGN.md §14).
	HandBack *BroadcastStamp
}

// Revocation identifies a callback the server wants delivered to a lock
// holder.
type Revocation struct {
	Client   ClientID
	Resource ResourceID
	Lock     LockID
	// Handoff, when non-nil, stamps the revocation with a delegation
	// grant: instead of flushing and releasing back to the server, the
	// holder transfers the lock directly to the stamped next owner
	// (DESIGN.md §13).
	Handoff *HandoffStamp
}

// Notifier delivers revocation callbacks to clients. Implementations
// send an RPC and invoke Server.RevokeAck when the reply returns. Calls
// are made from their own goroutines and may block; ctx is the engine's
// lifecycle context, canceled at shutdown so stragglers abort.
type Notifier interface {
	Revoke(ctx context.Context, rev Revocation)
}

// NotifierFunc adapts a function to Notifier.
type NotifierFunc func(context.Context, Revocation)

// Revoke implements Notifier.
func (f NotifierFunc) Revoke(ctx context.Context, rev Revocation) { f(ctx, rev) }

// Server is the lock-server engine. One engine instance serves all lock
// resources placed on a data server; behaviour is selected by Policy.
//
// Concurrency: the resource map is sharded (shard.Of) so requests on
// different stripes only ever contend on a shard read lock; each
// resource keeps its own mutex for the grant state machine, and the
// lock-ID allocator and Stats are atomics. See DESIGN.md §6.
type Server struct {
	policy   Policy
	notifier Notifier

	// baseCtx is the engine's lifecycle; revocation callbacks run under
	// it and Shutdown cancels it so in-flight notifier RPCs abort.
	baseCtx  context.Context
	cancelFn context.CancelFunc
	draining atomic.Bool

	// indexed selects the interval-indexed grant paths (the default).
	// Benchmarks and property tests clear it via SetIndexed to compare
	// against the original linear scans; flip only on a quiescent engine.
	indexed atomic.Bool

	// revoker coalesces revocations per client and bounds concurrent
	// fan-out (DESIGN.md §9).
	revoker revoker

	// handoffOn gates the client-to-client handoff fast path at
	// runtime; seeded from Policy.Handoff, toggled by SetHandoff. Off,
	// the revoke path is byte-identical to the pre-handoff engine.
	handoffOn atomic.Bool
	// fanOn gates the reader fan-out paths — broadcast stamping and
	// cohort gathering (DESIGN.md §14); seeded from Policy.ReaderFanout,
	// toggled by SetReaderFanout. Off, the grant/revoke path is
	// byte-identical to the single-successor handoff engine.
	fanOn atomic.Bool
	// handoffTimeout (nanoseconds) bounds how long a delegation may
	// stay unconfirmed before the reclaimer intervenes.
	handoffTimeout atomic.Int64
	// reclaim tracks outstanding delegations for timeout recovery
	// (handoff.go).
	reclaim handoffReclaimer

	shards   [shard.Count]srvShard
	nextLock atomic.Uint64

	// slots is the partition-mastership view (nil = unpartitioned,
	// masters everything) and leaseExpiry the wall-clock bound on it;
	// see partition.go.
	slots       atomic.Pointer[slotView]
	leaseExpiry atomic.Int64

	// Stats accumulates protocol counters and wait-time attribution used
	// by the Fig. 17 breakdown.
	Stats Stats

	// tracer, when attached, records protocol events for debugging.
	tracer *Tracer

	// clk is the engine's time source: waiter enqueue stamps, wait-time
	// histograms, handoff deadlines, and the reclaimer loop all run on
	// it. The zero value is the wall clock; virtual runs inject a VClock
	// via SetClock before serving.
	clk sim.Clock
}

// srvShard holds one shard of the resource map; its RWMutex guards only
// map lookup/insert.
type srvShard struct {
	mu        sync.RWMutex
	resources map[ResourceID]*resource
}

// NewServer returns an engine with the given policy. The notifier may be
// nil until SetNotifier is called (before the first conflicting grant).
func NewServer(policy Policy, notifier Notifier) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		policy:   policy,
		notifier: notifier,
		baseCtx:  ctx,
		cancelFn: cancel,
	}
	for i := range s.shards {
		s.shards[i].resources = make(map[ResourceID]*resource)
	}
	s.indexed.Store(true)
	s.handoffOn.Store(policy.Handoff || policy.ReaderFanout)
	s.fanOn.Store(policy.ReaderFanout)
	timeout := DefaultHandoffTimeout
	if policy.HandoffReclaimInterval > 0 {
		timeout = policy.HandoffReclaimInterval
	}
	s.handoffTimeout.Store(int64(timeout))
	s.revoker.init(s, DefaultRevokeWorkers)
	return s
}

// SetHandoff toggles the client-to-client handoff fast path
// (DESIGN.md §13) at runtime. Off — the default unless the policy
// enables it — revocations are never stamped and the engine behaves
// byte-identically to the pre-handoff protocol.
func (s *Server) SetHandoff(on bool) { s.handoffOn.Store(on) }

// SetReaderFanout toggles the reader fan-out paths (DESIGN.md §14) at
// runtime: broadcast-stamped revocations toward reader cohorts and
// gather stamping back toward writers. Implies the handoff transport,
// so enabling it also enables handoff. Off — the default unless the
// policy enables it — the engine behaves byte-identically to the
// single-successor handoff protocol.
func (s *Server) SetReaderFanout(on bool) {
	s.fanOn.Store(on)
	if on {
		s.handoffOn.Store(true)
	}
}

// SetHandoffTimeout bounds how long a delegation may stay unconfirmed
// before the reclaimer nudges the previous holder and, one period
// later, force-resolves the transfer. Tests shorten it.
func (s *Server) SetHandoffTimeout(d time.Duration) { s.handoffTimeout.Store(int64(d)) }

// SetNotifier installs the revocation callback sink.
func (s *Server) SetNotifier(n Notifier) { s.notifier = n }

// SetClock points the engine at a (virtual) clock. Call before serving;
// the zero clock is the wall clock.
func (s *Server) SetClock(c sim.Clock) { s.clk = c }

// SetIndexed toggles the interval-indexed grant paths (on by default).
// Off, the engine answers every conflict, expansion, and mSN query with
// the original linear scans — the baseline the LockGrant benchmarks and
// the index property tests compare against. Toggle only on a quiescent
// engine.
func (s *Server) SetIndexed(on bool) { s.indexed.Store(on) }

// Policy returns the engine's policy.
func (s *Server) Policy() Policy { return s.policy }

type lock struct {
	id         LockID
	client     ClientID
	mode       Mode
	rng        extent.Extent
	set        extent.Set
	state      State
	sn         extent.SN
	revokeSent bool
	// Handoff delegation state (DESIGN.md §13). A handed-off lock was
	// stamped for client-to-client transfer: its holder will hand it to
	// the successor instead of releasing, so it behaves as CANCELING
	// until the successor's ack removes it. A delegated lock was
	// granted through a handoff stamp and stays unconfirmed until the
	// new owner acks. pred/succ link the delegation chain.
	handedOff bool
	delegated bool
	pred      *lock
	succ      *lock
	// Reader fan-out state (DESIGN.md §14). preds lists a gathering
	// write lock's whole displaced cohort (each member also links back
	// through succ); bcast lists the delegated leases a holder owes a
	// broadcast transfer to (succ points at the lead, bcast[0]);
	// gatherLeft counts cohort members that have not resolved
	// server-side, for the release-fallback path.
	preds      []*lock
	bcast      []*lock
	gatherLeft int
	tblIdx     int // position in the lockTable slice (swap-remove)
}

// lockResult is what a waiter receives: a grant, or the typed error the
// engine failed the wait with (shutdown).
type lockResult struct {
	g   Grant
	err error
}

type waiter struct {
	req         Request
	ch          chan lockResult
	enqAt       time.Time
	hadConflict bool
	allCancelAt time.Time
	done        bool
	key         uint64 // unique per resource, keys the queue interval index
}

type resource struct {
	mu      sync.Mutex
	id      ResourceID
	nextSN  extent.SN
	granted lockTable
	queue   []*waiter
	// wtree indexes live (not done) queue entries by request range for
	// queueConflict and expansion probes; the queue slice keeps FIFO
	// order for the fairness scan.
	wtree  extent.ITree[*waiter]
	wseq   uint64 // allocator for waiter keys
	grants int    // total grants ever, drives the DLM-Lustre threshold
}

// retire marks a waiter done and drops it from the queue index. Callers
// hold res.mu; the queue slice itself is compacted by scan.
func (res *resource) retire(w *waiter) {
	w.done = true
	res.wtree.Delete(w.req.Range.Start, w.key)
}

// resource returns id's resource, creating it if needed. A resource is
// only ever removed when its whole slot is exported or purged
// (partition.go), so the pointer stays valid without the shard lock —
// holders racing an export at worst mutate an orphaned table whose
// contents have already been copied out, which the export callers'
// handler gate prevents from mattering (see FreezeExportSlot).
func (s *Server) resource(id ResourceID) *resource {
	sh := &s.shards[shard.Of(uint64(id))]
	sh.mu.RLock()
	r := sh.resources[id]
	sh.mu.RUnlock()
	if r != nil {
		return r
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r = sh.resources[id]; r == nil {
		r = &resource{id: id}
		sh.resources[id] = r
	}
	return r
}

// lookup returns id's resource without creating it. The read-only and
// teardown paths (release, ack, downgrade, mSN) use it so a straggler
// arriving after a slot was exported cannot resurrect an empty
// resource the engine no longer masters.
func (s *Server) lookup(id ResourceID) *resource {
	sh := &s.shards[shard.Of(uint64(id))]
	sh.mu.RLock()
	r := sh.resources[id]
	sh.mu.RUnlock()
	return r
}

func (s *Server) newLockID() LockID {
	return LockID(s.nextLock.Add(1))
}

// Lock requests a lock and blocks until it is granted, ctx fires, or the
// engine shuts down. A canceled wait withdraws the queued request (no
// zombie queue entry); if the grant raced the cancellation, the lock is
// released server-side so nothing stays held on behalf of a caller that
// already gave up.
func (s *Server) Lock(ctx context.Context, req Request) (Grant, error) {
	if !req.Mode.Valid() {
		return Grant{}, wire.Errorf(wire.CodeInvalid, "dlm: invalid mode %v", req.Mode)
	}
	if s.policy.Legacy != (req.Mode == LR || req.Mode == LW) {
		return Grant{}, wire.Errorf(wire.CodeInvalid, "dlm: mode %v not served by policy %s", req.Mode, s.policy.Name)
	}
	if req.Range.Empty() {
		return Grant{}, wire.Errorf(wire.CodeInvalid, "dlm: empty lock range %v", req.Range)
	}
	if len(req.Extents) > 0 {
		if b, ok := req.Extents.Bounds(); !ok || !req.Range.Contains(b) {
			return Grant{}, wire.Errorf(wire.CodeInvalid, "dlm: extents %v exceed range %v", req.Extents, req.Range)
		}
	}
	if s.draining.Load() {
		return Grant{}, wire.ErrShuttingDown
	}
	if err := s.CheckMaster(req.Resource); err != nil {
		return Grant{}, err
	}
	s.Stats.LockOps.Add(1)
	for _, id := range req.HandoffAcks {
		s.handoffAck(req.Resource, id)
	}
	res := s.resource(req.Resource)
	w := &waiter{req: req, ch: make(chan lockResult, 1), enqAt: s.clk.Now()}
	s.tracer.record(Event{Kind: EvRequest, Resource: req.Resource, Client: req.Client, Mode: req.Mode, Range: req.Range})

	res.mu.Lock()
	// Re-check under res.mu: FreezeExportSlot publishes the frozen view
	// and then sweeps each resource's queue under its mutex, so a
	// request that passed the check above either lands in the queue
	// before the sweep (and is redirected by it) or re-checks here and
	// sees the frozen slot. Either way no waiter survives on a slot the
	// engine no longer masters.
	if err := s.CheckMaster(req.Resource); err != nil {
		res.mu.Unlock()
		return Grant{}, err
	}
	w.key = res.wseq
	res.wseq++
	res.queue = append(res.queue, w)
	res.wtree.Insert(w.req.Range, w.key, w)
	var fx effects
	s.scan(res, &fx)
	res.mu.Unlock()
	s.apply(fx)

	if r, ok := s.waitGrant(ctx, w); ok {
		return r.g, r.err
	}
	// Withdraw the waiter. The grant may have raced the cancellation:
	// grant() marks done and buffers the result before we take res.mu,
	// in which case the lock exists server-side and must be released, or
	// it stays held forever on behalf of a caller that already left.
	res.mu.Lock()
	if w.done {
		res.mu.Unlock()
		if r := <-w.ch; r.err == nil {
			s.Release(req.Resource, r.g.LockID)
		}
		return Grant{}, wire.FromContext(ctx.Err())
	}
	res.retire(w)
	fx = effects{}
	s.scan(res, &fx) // the withdrawn entry may have blocked later waiters
	res.mu.Unlock()
	s.apply(fx)
	return Grant{}, wire.FromContext(ctx.Err())
}

// waitGrant blocks until the waiter's reply arrives or ctx fires,
// returning (result, true) on a reply and (_, false) on cancellation.
// Under a virtual clock it parks on w.ch — every resolution path (grant,
// shutdown, freeze redirect) sends the reply and then wakes the key —
// and checks ctx at each wake; a run that exits mid-wait falls back to
// the real select.
func (s *Server) waitGrant(ctx context.Context, w *waiter) (lockResult, bool) {
	if v := s.clk.V(); v != nil {
		for {
			select {
			case r := <-w.ch:
				return r, true
			default:
			}
			if ctx.Err() != nil {
				return lockResult{}, false
			}
			if v.WaitOn(w.ch) == sim.WakeExited {
				break
			}
		}
	}
	select {
	case r := <-w.ch:
		return r, true
	case <-ctx.Done():
		return lockResult{}, false
	}
}

// Shutdown drains the engine: new and queued Lock waits fail with
// wire.ErrShuttingDown, and the lifecycle context is canceled so
// in-flight revocation callbacks abort. Granted locks stay registered —
// clients release them through their own shutdown path.
func (s *Server) Shutdown() {
	if s.draining.Swap(true) {
		return
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		resources := make([]*resource, 0, len(sh.resources))
		for _, r := range sh.resources {
			resources = append(resources, r)
		}
		sh.mu.RUnlock()
		for _, res := range resources {
			res.mu.Lock()
			for _, w := range res.queue {
				if !w.done {
					res.retire(w)
					w.ch <- lockResult{err: wire.ErrShuttingDown}
					s.clk.Wakeup(w.ch)
				}
			}
			res.queue = res.queue[:0]
			res.mu.Unlock()
		}
	}
	s.cancelFn()
}

// RevokeAck records that a client acknowledged a revocation: the lock
// enters CANCELING on the server, which is the transition that enables
// early grant. Unknown locks (already released or absorbed) are ignored.
func (s *Server) RevokeAck(resID ResourceID, id LockID) {
	res := s.lookup(resID)
	if res == nil {
		return
	}
	s.tracer.record(Event{Kind: EvRevokeAck, Resource: resID, Lock: id})
	res.mu.Lock()
	if l := res.granted.get(id); l != nil && l.state == Granted {
		l.state = Canceling
	}
	var fx effects
	s.scan(res, &fx)
	res.mu.Unlock()
	s.apply(fx)
}

// Release removes a fully canceled lock. The client must have flushed
// all dirty data written under it before releasing.
func (s *Server) Release(resID ResourceID, id LockID) {
	res := s.lookup(resID)
	if res == nil {
		return
	}
	s.Stats.LockOps.Add(1)
	s.tracer.record(Event{Kind: EvRelease, Resource: resID, Lock: id})
	var fx effects
	res.mu.Lock()
	if l := res.granted.get(id); l != nil {
		succ := l.succ
		bcast := l.bcast
		s.removeWithPreds(res, l)
		switch {
		case len(bcast) > 0:
			// A holder owing a broadcast transfer released instead
			// (peer send failed or the holder vanished): resolve every
			// still-delegated lease server-side and activate the cohort
			// directly (DESIGN.md §14).
			for _, lease := range bcast {
				if res.granted.get(lease.id) == lease && lease.delegated {
					fx.acts = append(fx.acts, s.resolveDelegation(res, lease))
				}
			}
		case succ != nil && succ.gatherLeft > 0:
			// A gather-cohort member released instead of transferring
			// its part: the server covers that part, and the gathering
			// writer activates once every part is covered one way or
			// the other.
			succ.gatherLeft--
			if succ.gatherLeft == 0 && succ.delegated && res.granted.get(succ.id) == succ {
				fx.acts = append(fx.acts, s.resolveDelegation(res, succ))
			}
		case succ != nil:
			// The holder released instead of transferring (handoff
			// refused, peer send failed, or the holder vanished):
			// resolve the delegation server-side and activate the
			// successor directly.
			fx.acts = append(fx.acts, s.resolveDelegation(res, succ))
		}
	}
	s.scan(res, &fx)
	res.mu.Unlock()
	s.apply(fx)
}

// Downgrade converts a granted lock to a less restrictive mode (§III-D2),
// enabling early grant for requests that were blocked by its blocking
// feature. Invalid transitions are rejected.
func (s *Server) Downgrade(resID ResourceID, id LockID, newMode Mode) error {
	res := s.lookup(resID)
	if res == nil {
		return fmt.Errorf("dlm: downgrade of unknown lock %d", id)
	}
	s.Stats.LockOps.Add(1)
	res.mu.Lock()
	l := res.granted.get(id)
	if l == nil {
		res.mu.Unlock()
		return fmt.Errorf("dlm: downgrade of unknown lock %d", id)
	}
	valid := (l.mode == BW && newMode == NBW) ||
		(l.mode == PW && (newMode == NBW || newMode == PR))
	if !valid {
		res.mu.Unlock()
		return fmt.Errorf("dlm: invalid downgrade %v -> %v", l.mode, newMode)
	}
	l.mode = newMode
	s.Stats.Downgrades.Add(1)
	s.tracer.record(Event{Kind: EvDowngrade, Resource: resID, Lock: id, Mode: newMode})
	var fx effects
	s.scan(res, &fx)
	res.mu.Unlock()
	s.apply(fx)
	return nil
}

// MinSN returns the minimum sequence number among unreleased write locks
// overlapping rng — the mSN the extent-cache cleanup task queries
// (§IV-B) — and whether any such lock exists.
func (s *Server) MinSN(resID ResourceID, rng extent.Extent) (extent.SN, bool) {
	res := s.lookup(resID)
	if res == nil {
		return 0, false
	}
	res.mu.Lock()
	defer res.mu.Unlock()
	var msn extent.SN
	found := false
	res.granted.visitCandidates(s.indexed.Load(), rng, func(l *lock) bool {
		if !l.mode.IsWrite() || !l.overlapsExtent(rng) {
			return true
		}
		if !found || l.sn < msn {
			msn, found = l.sn, true
		}
		return true
	})
	return msn, found
}

// GrantedCount returns the number of unreleased locks on a resource
// (tests and introspection).
func (s *Server) GrantedCount(resID ResourceID) int {
	res := s.lookup(resID)
	if res == nil {
		return 0
	}
	res.mu.Lock()
	defer res.mu.Unlock()
	return res.granted.len()
}

// QueueLen returns the number of waiting requests on a resource.
func (s *Server) QueueLen(resID ResourceID) int {
	res := s.lookup(resID)
	if res == nil {
		return 0
	}
	res.mu.Lock()
	defer res.mu.Unlock()
	n := 0
	for _, w := range res.queue {
		if !w.done {
			n++
		}
	}
	return n
}

func (l *lock) overlapsExtent(e extent.Extent) bool {
	if len(l.set) > 0 {
		return l.set.OverlapsExtent(e)
	}
	return l.rng.Overlaps(e)
}

func (l *lock) overlapsReq(req *Request) bool {
	if len(req.Extents) > 0 && len(l.set) > 0 {
		return req.Extents.Overlaps(l.set)
	}
	if len(req.Extents) > 0 {
		return req.Extents.OverlapsExtent(l.rng)
	}
	return l.overlapsExtent(req.Range)
}

// compatible applies the LCM plus the EarlyGrant policy switch: with
// early grant disabled, the N/Y cells of Table II behave as N. A
// handed-off lock behaves as CANCELING: its holder has been told to
// transfer it, so — exactly like an acked revocation — the early-grant
// cells apply and the successor chain can keep growing.
func (s *Server) compatible(reqMode Mode, l *lock) bool {
	st := l.state
	m := l.mode
	if l.handedOff || len(l.bcast) > 0 {
		// A handed-off lock behaves as if its cancel already ran: the
		// holder will flush and transfer, so it is checked as Canceling
		// at its post-cancel downgraded mode — a handed-off PW writer
		// has exactly a canceling NBW's remaining obligations. This is
		// what lets a chain of NBW delegations keep stamping while the
		// predecessors' acks are still in flight. A lock with a
		// pre-armed handback (bcast) is in the same position before its
		// revocation even fires: its handle was born CANCELING with the
		// transfer obligation, so it can only ever be used once and then
		// handed to the cohort. Without this a fan rotation's previous
		// writer lock — retired only by the next cohort's acks, a full
		// round later — would block the next gather.
		st = Canceling
		if d := Downgrade(m, m.IsWrite()); d != ModeNone {
			m = d
		}
	}
	ok := Compatible(reqMode, m, st)
	if ok && st == Canceling && !s.policy.EarlyGrant &&
		!Compatible(reqMode, m, Granted) {
		return false
	}
	return ok
}

// conflicts returns the granted locks incompatible with the request at
// mode m over range covered by the waiter. With the index on, only the
// locks whose range overlaps the request's bounding range are probed; a
// request carrying a non-contiguous extent set is refined by the
// precise overlap test either way.
func (s *Server) conflicts(res *resource, w *waiter, m Mode) []*lock {
	var out []*lock
	res.granted.visitCandidates(s.indexed.Load(), w.req.Range, func(l *lock) bool {
		if l.overlapsReq(&w.req) && !s.compatible(m, l) {
			out = append(out, l)
		}
		return true
	})
	return out
}

// fire hands revocations to the batching revoker outside all locks. The
// revoker coalesces them per destination client and delivers through a
// bounded worker pool (DESIGN.md §9); deliveries may block inside the
// notifier RPC, whose reply re-enters the server.
func (s *Server) fire(revs []Revocation) {
	if len(revs) == 0 {
		return
	}
	for _, rv := range revs {
		s.Stats.Revocations.Add(1)
		s.tracer.record(Event{Kind: EvRevokeSent, Resource: rv.Resource, Client: rv.Client, Lock: rv.Lock})
	}
	s.revoker.enqueue(revs)
}

type blockEntry struct {
	mode Mode
	req  *Request
}

// grantSend is a deferred waiter reply: grants are decided under res.mu
// (so SN stamping stays in queue order) but delivered only after it
// drops, letting one scan pass retire a whole run of compatible
// shared-mode waiters before any reply goes out. The replies then drain
// back-to-back onto their connections, where the transport's send
// batching coalesces per-client traffic (DESIGN.md §14).
type grantSend struct {
	w *waiter
	r lockResult
}

// effects collects everything a scan pass decided under res.mu that
// must happen after it drops: grant replies, revocations, and
// server-sent activations.
type effects struct {
	revs  []Revocation
	sends []grantSend
	acts  []activationMsg
}

// apply delivers deferred effects outside res.mu. Grant replies go
// first so a run of fan-out grants reaches the waiters in one burst
// before any revocation round trip starts.
func (s *Server) apply(fx effects) {
	for _, g := range fx.sends {
		g.w.ch <- g.r
		s.clk.Wakeup(g.w.ch)
	}
	s.fire(fx.revs)
	for _, a := range fx.acts {
		s.sendActivation(a)
	}
}

// scan drives the grant state machine for a resource. It is called with
// res.mu held after every state transition (new request, revocation
// reply, downgrade, release) and keeps granting until no further waiter
// can proceed, accumulating the deferred effects into fx.
func (s *Server) scan(res *resource, fx *effects) {
	for {
		granted := false
		passShared := 0
		var blocked []blockEntry
		for _, w := range res.queue {
			if w.done {
				continue
			}
			if s.blockedByEarlier(blocked, w) {
				blocked = append(blocked, blockEntry{mode: w.req.Mode, req: &w.req})
				continue
			}
			if s.tryGrant(res, w, fx) {
				granted = true
				if !w.req.Mode.IsWrite() {
					passShared++
				}
			} else {
				blocked = append(blocked, blockEntry{mode: w.req.Mode, req: &w.req})
			}
		}
		// A single pass that granted a run of shared-mode waiters is a
		// fan-out grant: the run was stamped in queue order under one
		// res.mu hold and its replies are delivered in one burst.
		if passShared >= 2 {
			s.Stats.FanRuns.Add(1)
			s.Stats.FanGrants.Add(int64(passShared))
		}
		// Compact the queue.
		live := res.queue[:0]
		for _, w := range res.queue {
			if !w.done {
				live = append(live, w)
			}
		}
		res.queue = live
		if !granted {
			return
		}
	}
}

// blockedByEarlier enforces FIFO fairness: a waiter may not overtake an
// earlier waiter it conflicts with.
func (s *Server) blockedByEarlier(blocked []blockEntry, w *waiter) bool {
	for _, b := range blocked {
		if !reqsOverlap(b.req, &w.req) {
			continue
		}
		if !Compatible(w.req.Mode, b.mode, Granted) || !Compatible(b.mode, w.req.Mode, Granted) {
			return true
		}
	}
	return false
}

func reqsOverlap(a, b *Request) bool {
	if len(a.Extents) > 0 && len(b.Extents) > 0 {
		return a.Extents.Overlaps(b.Extents)
	}
	if len(a.Extents) > 0 {
		return a.Extents.OverlapsExtent(b.Range)
	}
	if len(b.Extents) > 0 {
		return b.Extents.OverlapsExtent(a.Range)
	}
	return a.Range.Overlaps(b.Range)
}

// tryGrant attempts to grant one waiter, handling lock upgrading. It
// appends any new revocations and deferred replies to fx and reports
// whether a grant happened.
func (s *Server) tryGrant(res *resource, w *waiter, fx *effects) bool {
	mode := w.req.Mode
	confs := s.conflicts(res, w, mode)

	var absorbed []*lock
	if s.policy.Conversion && len(confs) > 0 {
		// Lock upgrading (§III-D1): conflicts with GRANTED locks cached
		// by the same client upgrade the request instead of revoking.
		var same []*lock
		for _, c := range confs {
			if c.client == w.req.Client && c.state == Granted {
				same = append(same, c)
			}
		}
		if len(same) > 0 {
			// The upgraded lock will cover the UNION of the request and
			// every absorbed lock, so conflicts must be evaluated over
			// that union, not just the request range: the union can reach
			// locks the request never touched (e.g. another client's PR
			// overlapping only the absorbed NBW's expanded range, which
			// becomes incompatible once the target mode is PW). Growing
			// the union can absorb further same-client locks, so iterate
			// to a fixpoint.
			target := mode
			union := w.req.Range
			absorbedSet := make(map[*lock]bool, len(same))
			for _, c := range same {
				target = Upgrade(target, c.mode)
				union = union.Union(c.rng)
				absorbedSet[c] = true
			}
			indexed := s.indexed.Load()
			for changed := true; changed; {
				changed = false
				// The visit is bounded by the union as of this pass; a
				// lock only reachable through the union grown mid-pass
				// sets changed and is collected next pass.
				res.granted.visitCandidates(indexed, union, func(l *lock) bool {
					if absorbedSet[l] || l.client != w.req.Client || l.state != Granted {
						return true
					}
					if l.overlapsExtent(union) && !s.compatible(target, l) {
						target = Upgrade(target, l.mode)
						union = union.Union(l.rng)
						absorbedSet[l] = true
						changed = true
					}
					return true
				})
			}
			mode = target
			confs = confs[:0]
			// Every absorbed lock overlaps the union (the union contains
			// its range), so the bounded visit sees all of them.
			res.granted.visitCandidates(indexed, union, func(l *lock) bool {
				if absorbedSet[l] {
					absorbed = append(absorbed, l)
					return true
				}
				if l.overlapsExtent(union) && !s.compatible(mode, l) {
					confs = append(confs, l)
				}
				return true
			})
		}
	}

	if len(confs) > 0 {
		if len(absorbed) == 0 {
			if len(confs) == 1 {
				if s.stampBroadcast(res, w, mode, confs[0], fx) {
					return true
				}
				if s.stampHandoff(res, w, mode, confs[0], fx) {
					return true
				}
			} else if s.stampGather(res, w, mode, confs, fx) {
				return true
			}
		}
		w.hadConflict = true
		allCanceling := true
		// A delegated lock's owner has not confirmed the transfer yet;
		// revoking it mid-flight would waste the handoff and permanently
		// disqualify the lock from broadcast stamping once it settles.
		// While any conflicting delegation is in flight, hold fire on the
		// quiet conflicts too: their acks arrive one by one, and revoking
		// each member the moment it settles would destroy, piecemeal, a
		// cohort the gather stamp collects whole once the last ack lands.
		// Every resolution path (ack, release, reclaim) re-scans, so the
		// waiter's revocations are only deferred, never lost.
		inFlight := false
		for _, c := range confs {
			if c.state == Granted && c.delegated {
				inFlight = true
				break
			}
		}
		for _, c := range confs {
			if c.state == Granted {
				allCanceling = false
				if !c.revokeSent && !inFlight {
					c.revokeSent = true
					fx.revs = append(fx.revs, Revocation{Client: c.client, Resource: res.id, Lock: c.id})
				}
			}
		}
		if allCanceling && w.allCancelAt.IsZero() {
			w.allCancelAt = s.clk.Now()
		}
		return false
	}

	s.grant(res, w, mode, absorbed, fx)
	return true
}

// grant installs the lock, expands its range, decides early revocation,
// assigns the sequence number, and defers the reply into fx.
func (s *Server) grant(res *resource, w *waiter, mode Mode, absorbed []*lock, fx *effects) {
	now := s.clk.Now()
	rng := w.req.Range
	for _, a := range absorbed {
		rng = rng.Union(a.rng)
	}
	baseEnd := rng.End
	if len(w.req.Extents) == 0 {
		rng.End = s.expandEnd(res, w, mode, rng)
	}
	couldExpand := rng.End > baseEnd

	state := Granted
	if s.policy.EarlyRevocation && !couldExpand && s.queueConflict(res, w, mode, rng) {
		// Early revocation (§III-A2): the lock already conflicts with a
		// queued request and could not be expanded, so it is granted
		// pre-revoked; the client cancels it right after use and the
		// server never waits for a revocation round trip.
		state = Canceling
		s.Stats.EarlyRevocations.Add(1)
	}

	sn := res.nextSN
	if mode.IsWrite() {
		res.nextSN++
	}

	// Remove absorbed same-client locks; the grant reply tells the
	// client to merge them.
	var absorbedIDs []LockID
	if len(absorbed) > 0 {
		s.Stats.Upgrades.Add(1)
		s.tracer.record(Event{Kind: EvUpgrade, Resource: res.id, Client: w.req.Client, Mode: mode})
		for _, a := range absorbed {
			absorbedIDs = append(absorbedIDs, a.id)
			res.granted.remove(a)
		}
	}

	// Count an early grant: some overlapping write lock is still
	// unreleased in CANCELING state, meaning this grant did not wait for
	// its data flushing.
	if mode.IsWrite() {
		res.granted.visitCandidates(s.indexed.Load(), w.req.Range, func(l *lock) bool {
			if l.state == Canceling && l.mode.IsWrite() && l.overlapsReq(&w.req) {
				s.Stats.EarlyGrants.Add(1)
				return false
			}
			return true
		})
	}

	l := &lock{
		id:     s.newLockID(),
		client: w.req.Client,
		mode:   mode,
		rng:    rng,
		set:    w.req.Extents,
		state:  state,
		sn:     sn,
	}
	if state == Canceling {
		l.revokeSent = true
		s.tracer.record(Event{Kind: EvEarlyRevocation, Resource: res.id, Client: w.req.Client, Lock: l.id, Mode: mode})
	}
	res.granted.insert(l)
	res.grants++
	s.tracer.record(Event{Kind: EvGrant, Resource: res.id, Client: w.req.Client, Lock: l.id, Mode: mode, Range: rng, SN: sn})

	// Wait-time attribution for the Fig. 17 breakdown: time from enqueue
	// to all-conflicts-canceling is revocation wait; from there to grant
	// is cancel (flush + release) wait.
	s.Stats.Grants.Add(1)
	s.Stats.GrantWaitHist.Record(now.Sub(w.enqAt).Nanoseconds())
	if w.hadConflict {
		cancelingAt := w.allCancelAt
		switch {
		case cancelingAt.IsZero():
			// Early grant: the waiter became compatible before every
			// conflict reached CANCELING, so there was no cancel phase.
			// The whole wait is revocation wait; recording a fabricated
			// zero cancel wait here would skew the ② distribution and
			// (pre-histogram) double-attributed the window. Invariant:
			// RevocationWait + CancelWait <= GrantWait per grant.
			s.Stats.RevocationWaitHist.Record(now.Sub(w.enqAt).Nanoseconds())
		default:
			// Clamp against clock anomalies and late-arriving conflicts
			// so neither component can go negative or overshoot the
			// total wait.
			if cancelingAt.Before(w.enqAt) {
				cancelingAt = w.enqAt
			}
			if cancelingAt.After(now) {
				cancelingAt = now
			}
			s.Stats.RevocationWaitHist.Record(cancelingAt.Sub(w.enqAt).Nanoseconds())
			s.Stats.CancelWaitHist.Record(now.Sub(cancelingAt).Nanoseconds())
		}
	}

	res.retire(w)
	fx.sends = append(fx.sends, grantSend{w: w, r: lockResult{g: Grant{
		LockID:   l.id,
		Mode:     mode,
		Range:    rng,
		SN:       sn,
		State:    state,
		Absorbed: absorbedIDs,
	}}})
}

// expandEnd implements lock range expanding: grow the end of the range
// to the largest address compatible with every other granted lock and
// queued request, subject to the policy's rule.
func (s *Server) expandEnd(res *resource, w *waiter, mode Mode, rng extent.Extent) int64 {
	if s.policy.Expand == ExpandNone {
		return rng.End
	}
	end := extent.Inf
	if s.indexed.Load() {
		// Both indexes order entries by ascending start, so the first
		// incompatible entry at or past rng.End is the tightest cap;
		// stop there, or once starts reach a cap already found.
		res.granted.tree.VisitFrom(rng.End, func(_ extent.Extent, _ uint64, l *lock) bool {
			if l.rng.Start >= end {
				return false
			}
			if !s.compatible(mode, l) {
				end = l.rng.Start
				return false
			}
			return true
		})
		res.wtree.VisitFrom(rng.End, func(_ extent.Extent, _ uint64, other *waiter) bool {
			if other.req.Range.Start >= end {
				return false
			}
			if other != w && !Compatible(other.req.Mode, mode, Granted) {
				end = other.req.Range.Start
				return false
			}
			return true
		})
	} else {
		for _, l := range res.granted.list {
			if l.rng.Start >= rng.End && l.rng.Start < end && !s.compatible(mode, l) {
				end = l.rng.Start
			}
		}
		for _, other := range res.queue {
			if other == w || other.done {
				continue
			}
			if other.req.Range.Start >= rng.End && other.req.Range.Start < end &&
				!Compatible(other.req.Mode, mode, Granted) {
				end = other.req.Range.Start
			}
		}
	}
	if s.policy.Expand == ExpandLustre && res.grants > s.policy.LustreLockThreshold {
		cap := rng.Start + s.policy.LustreCapBytes
		if cap < rng.End {
			cap = rng.End
		}
		if end > cap {
			end = cap
		}
	}
	if end < rng.End {
		end = rng.End
	}
	return end
}

// queueConflict reports whether any other waiting request would conflict
// with a lock granted at (mode, rng) — condition (1) of early
// revocation.
func (s *Server) queueConflict(res *resource, w *waiter, mode Mode, rng extent.Extent) bool {
	if s.indexed.Load() {
		// The queue index is keyed by each request's bounding range, and
		// an extent set overlapping rng implies its bounds do too, so
		// the range-overlap probe subsumes the extent-set test below.
		found := false
		res.wtree.VisitOverlap(rng, func(_ extent.Extent, _ uint64, other *waiter) bool {
			if other != w && !Compatible(other.req.Mode, mode, Granted) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	for _, other := range res.queue {
		if other == w || other.done {
			continue
		}
		if !other.req.Range.Overlaps(rng) && !(len(other.req.Extents) > 0 && other.req.Extents.OverlapsExtent(rng)) {
			continue
		}
		if !Compatible(other.req.Mode, mode, Granted) {
			return true
		}
	}
	return false
}

// CheckInvariants validates the core safety property on every resource:
// no two overlapping locks are simultaneously held in states the LCM
// forbids — in particular, two overlapping write locks can never both be
// GRANTED. It returns the first violation found. Tests call it at
// quiescent points; it takes every resource lock briefly.
func (s *Server) CheckInvariants() error {
	var resources []*resource
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, r := range sh.resources {
			resources = append(resources, r)
		}
		sh.mu.RUnlock()
	}
	for _, res := range resources {
		res.mu.Lock()
		for i, a := range res.granted.list {
			for _, b := range res.granted.list[i+1:] {
				if a.client == b.client {
					continue // same-client coexistence is managed by upgrade/merge
				}
				if a.handedOff || b.handedOff || len(a.bcast) > 0 || len(b.bcast) > 0 {
					// Delegation pairs — including a writer owing a
					// pre-armed handback — coexist until the successor's
					// ack retires the predecessor.
					continue
				}
				if a.delegated || b.delegated {
					// A delegated lock (single successor, gathering
					// writer, or pre-armed lease) is not usable until
					// its transfer arrives; it legally overlaps the
					// active holder it will replace.
					continue
				}
				overlap := a.rng.Overlaps(b.rng)
				if len(a.set) > 0 && len(b.set) > 0 {
					overlap = a.set.Overlaps(b.set)
				}
				if !overlap {
					continue
				}
				if a.state == Granted && b.state == Granted &&
					!Compatible(a.mode, b.mode, Granted) && !Compatible(b.mode, a.mode, Granted) {
					res.mu.Unlock()
					return fmt.Errorf("dlm: resource %d: overlapping GRANTED locks %d(%v,%v) and %d(%v,%v)",
						res.id, a.id, a.mode, a.rng, b.id, b.mode, b.rng)
				}
			}
		}
		res.mu.Unlock()
	}
	return nil
}
