package dlm

import (
	"context"
	"testing"

	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
	"ccpfs/internal/wire"
)

// newBareEngine builds an engine with a self-acking notifier (its
// revocations have no live client to go to in these tests).
func newBareEngine(policy Policy) *Server {
	s := NewServer(policy, nil)
	s.SetNotifier(NotifierFunc(func(_ context.Context, rv Revocation) {
		s.RevokeAck(rv.Resource, rv.Lock)
	}))
	return s
}

// ridInSlot returns a resource ID (> after) hashing into the slot.
func ridInSlot(t *testing.T, sl partition.Slot, after uint64) ResourceID {
	t.Helper()
	for rid := after + 1; rid < after+1_000_000; rid++ {
		if partition.SlotOf(rid) == sl {
			return ResourceID(rid)
		}
	}
	t.Fatalf("no resource in slot %d", sl)
	return 0
}

// TestExportSlotsFilters: the slot-filtered export must report exactly
// the locks whose resources hash into the requested slots — the
// partial-replay contract a takeover successor depends on (an
// over-report would double-master locks still served by live masters).
func TestExportSlotsFilters(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)

	resA := ridInSlot(t, 3, 0)
	resB := ridInSlot(t, 3, uint64(resA))
	resC := ridInSlot(t, 9, 0)
	a := mustAcquire(t, c, resA, NBW, extent.New(0, 100))
	b := mustAcquire(t, c, resB, PR, extent.New(0, 50))
	cc := mustAcquire(t, c, resC, NBW, extent.New(0, 10))

	recs := c.ExportSlots([]partition.Slot{3})
	if len(recs) != 2 {
		t.Fatalf("slot 3 export = %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if partition.SlotOf(uint64(r.Resource)) != 3 {
			t.Fatalf("record %+v leaked out of slot 3", r)
		}
	}
	if got := c.ExportSlots([]partition.Slot{9}); len(got) != 1 || got[0].Resource != resC {
		t.Fatalf("slot 9 export = %+v", got)
	}
	if got := c.ExportSlots(nil); len(got) != 0 {
		t.Fatalf("nil slot export reported %d records", len(got))
	}
	if got := c.ExportSlots([]partition.Slot{-1, partition.NumSlots, 40}); len(got) != 0 {
		t.Fatalf("out-of-range/empty slots reported %d records", len(got))
	}
	c.Unlock(a)
	c.Unlock(b)
	c.Unlock(cc)
}

// TestAdoptSlotsPartialReplay is the regression test for slot-filtered
// takeover: a successor adopting a subset of a dead master's slots must
// restore only that subset's locks — even when the replayed records
// (from a client that talked to the dead master about many slots)
// include resources outside the adopted set — and must refuse requests
// for everything it did not adopt.
func TestAdoptSlotsPartialReplay(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	c1 := h.client(1)

	resIn := ridInSlot(t, 5, 0)
	resOut := ridInSlot(t, 6, 0)
	in := mustAcquire(t, c1, resIn, NBW, extent.New(0, 4096))
	out := mustAcquire(t, c1, resOut, NBW, extent.New(0, 4096))
	inSN := in.SN()

	// The "successor": a fresh engine adopting only slot 5, fed the
	// client's full export (slots 5 AND 6) — the concurrent-takeover
	// shape where another successor owns slot 6.
	succ := newBareEngine(SeqDLM())
	records := c1.Export(nil)
	if len(records) != 2 {
		t.Fatalf("exported %d records, want 2", len(records))
	}
	if err := succ.AdoptSlots(7, []partition.Slot{5}, records); err != nil {
		t.Fatal(err)
	}

	if got := succ.GrantedCount(resIn); got != 1 {
		t.Fatalf("adopted slot restored %d locks, want 1", got)
	}
	if got := succ.GrantedCount(resOut); got != 0 {
		t.Fatalf("non-adopted slot restored %d locks, want 0", got)
	}
	if err := succ.CheckMaster(resIn); err != nil {
		t.Fatalf("adopted slot refused: %v", err)
	}
	if err := succ.CheckMaster(resOut); err != wire.ErrNotOwner {
		t.Fatalf("non-adopted slot served: %v", err)
	}
	if succ.PartitionEpoch() != 7 {
		t.Fatalf("epoch = %d, want 7", succ.PartitionEpoch())
	}

	// The restored sequencer resumes above the replayed SN.
	g, err := succ.Lock(context.Background(), Request{
		Resource: resIn, Client: 2, Mode: NBW, Range: extent.New(100000, 100001),
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.SN <= inSN {
		t.Fatalf("post-adopt SN %d not above replayed SN %d", g.SN, inSN)
	}
	c1.Unlock(in)
	c1.Unlock(out)
}

// TestFreezeInstallTransfersSequencer moves a slot between two engines
// and checks the migration invariants at the engine level: the source
// stops mastering the slot, the destination resumes each resource's
// sequencer and grant count exactly, and a double-install is refused.
func TestFreezeInstallTransfersSequencer(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)

	res := ridInSlot(t, 11, 0)
	hd := mustAcquire(t, c, res, NBW, extent.New(0, 4096))
	sn := hd.SN()
	h.srv.SetSlots(1, []partition.Slot{11})

	exp, err := h.srv.FreezeExportSlot(11)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.srv.CheckMaster(res); err != wire.ErrNotOwner {
		t.Fatalf("source still masters frozen slot: %v", err)
	}
	if len(exp.Resources) != 1 || exp.Resources[0].Resource != res {
		t.Fatalf("export = %+v", exp.Resources)
	}
	if exp.Resources[0].NextSN != sn+1 {
		t.Fatalf("exported NextSN %d, want %d", exp.Resources[0].NextSN, sn+1)
	}

	dst := newBareEngine(SeqDLM())
	if err := dst.InstallSlot(exp, 2); err != nil {
		t.Fatal(err)
	}
	if err := dst.CheckMaster(res); err != nil {
		t.Fatalf("destination refuses installed slot: %v", err)
	}
	if got := dst.GrantedCount(res); got != 1 {
		t.Fatalf("installed %d locks, want 1", got)
	}
	// The next write SN continues the source's sequence exactly.
	g, err := dst.Lock(context.Background(), Request{
		Resource: res, Client: 2, Mode: NBW, Range: extent.New(100000, 100001),
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.SN != sn+1 {
		t.Fatalf("post-install SN %d, want %d", g.SN, sn+1)
	}
	// Installing on top of live state must be refused, not merged.
	if err := dst.InstallSlot(exp, 3); err == nil {
		t.Fatal("double install accepted")
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFreezeRedirectsWaiters: queued waiters on a frozen slot fail with
// ErrNotOwner (the redirect signal) instead of hanging — the migration
// orchestrator does not transfer wait queues.
func TestFreezeRedirectsWaiters(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	c1 := h.client(1)

	res := ridInSlot(t, 20, 0)
	hd := mustAcquire(t, c1, res, NBW, extent.New(0, 4096))
	h.srv.SetSlots(1, []partition.Slot{20})
	gate := make(chan struct{})
	h.setRevokeGate(gate) // keep the conflicting request queued

	errCh := make(chan error, 1)
	go func() {
		_, err := h.srv.Lock(context.Background(), Request{
			Resource: res, Client: 2, Mode: NBW, Range: extent.New(0, 4096),
		})
		errCh <- err
	}()
	waitFor(t, "waiter queued", func() bool { return h.srv.QueueLen(res) == 1 })

	if _, err := h.srv.FreezeExportSlot(20); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; wire.CodeOf(err) != wire.CodeNotOwner {
		t.Fatalf("frozen waiter got %v, want ErrNotOwner", err)
	}
	close(gate)
	h.setRevokeGate(nil)
	c1.Unlock(hd)
}
