package dlm

import (
	"fmt"
	"sort"

	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
)

// This file implements the server-recovery half of §IV-C2: "the server
// recovers lock states by gathering them from all clients". Clients
// export their held locks as LockRecords; a recovering server restores
// them wholesale, re-seeding each resource's sequencer and the lock-ID
// allocator above everything it has seen. (The other half — extent-log
// replay — lives in package extcache; flush-RPC redo is the client
// cache's redirty-on-error behaviour.)

// LockRecord is the wire-friendly description of one granted lock, as a
// client reports it during server recovery.
type LockRecord struct {
	Resource ResourceID
	Client   ClientID
	LockID   LockID
	Mode     Mode
	Range    extent.Extent
	SN       extent.SN
	State    State
	// Delegated marks a delegated grant whose client-to-client transfer
	// has not arrived yet: the reporting client holds no usable lock,
	// only the server's promise of one. A taking-over master
	// force-resolves it (AdoptSlots) the way a freeze would.
	Delegated bool
	// HandedOff marks a lock its holder owes (or already sent) to a
	// delegation successor: the holder will never release it to the
	// server, so restoring it would wedge the resource forever.
	HandedOff bool
}

// Export returns records for every lock the client currently holds or
// is canceling, optionally filtered (filter nil = all). Canceling locks
// are reported too: their data flushing may still be in flight and the
// recovered server must keep ordering them.
func (c *LockClient) Export(filter func(ResourceID) bool) []LockRecord {
	var out []LockRecord
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for res, list := range sh.cur() {
			if filter != nil && !filter(res) {
				continue
			}
			for _, h := range list {
				w := h.hot.Load()
				if w&(hotAbsorbed|hotReleaseSent) != 0 {
					continue
				}
				out = append(out, LockRecord{
					Resource: res,
					Client:   c.id,
					LockID:   h.id,
					Mode:     hotMode(w),
					Range:    h.rng,
					SN:       h.sn,
					State:    hotState(w),
					// A stamped handle owes its lock to a successor: its
					// cancel path transfers instead of releasing, so the
					// server must never wait for this lock's release.
					HandedOff: h.stamp.Load() != nil,
				})
			}
		}
		// Delegated grants still waiting for their transfer have no
		// handle yet; report them from the wait registry so a
		// taking-over master can force-resolve them instead of leaving
		// the waiter parked on a transfer that died with the old master.
		for k, tw := range sh.pendingHandoffs {
			if filter != nil && !filter(k.res) {
				continue
			}
			out = append(out, LockRecord{
				Resource:  k.res,
				Client:    c.id,
				LockID:    k.id,
				Mode:      tw.mode,
				Range:     tw.rng,
				SN:        tw.sn,
				State:     Granted,
				Delegated: true,
			})
		}
		sh.mu.Unlock()
	}
	return out
}

// ExportSlots returns records for the client's locks whose resources
// hash into the given slots — the partial-replay form of Export a
// recovering successor uses after claiming a dead master's slots.
// Locks on slots still served by live masters are not reported (and
// must not be: replaying them into the successor would double-master
// them). Nil slots exports nothing.
func (c *LockClient) ExportSlots(slots []partition.Slot) []LockRecord {
	var in [partition.NumSlots]bool
	for _, s := range slots {
		if s >= 0 && s < partition.NumSlots {
			in[s] = true
		}
	}
	return c.Export(func(res ResourceID) bool {
		return in[partition.SlotOf(uint64(res))]
	})
}

// resolveReplay force-resolves the delegation state carried in
// client-replayed records, mirroring what FreezeExportSlot does for
// migration. HandedOff records are dropped: the holder owes the lock to
// a successor and will never release it through the server, so
// restoring it would wedge the resource forever. Delegated records —
// the successor's promised lock — become plain grants; the returned
// activations must be delivered once the restored state is serving, so
// a successor whose peer transfer died with the old master is unparked
// (duplicates are idempotent client-side).
func resolveReplay(records []LockRecord) (kept []LockRecord, acts []activationMsg) {
	kept = records[:0]
	for _, r := range records {
		if r.HandedOff {
			continue
		}
		if r.Delegated {
			r.Delegated = false
			r.State = Granted
			acts = append(acts, activationMsg{client: r.Client, res: r.Resource, id: r.LockID})
		}
		kept = append(kept, r)
	}
	return kept, acts
}

// RestoreReplay is Restore for client-replayed records after a full
// crash: delegation state is force-resolved (see resolveReplay) and the
// corresponding activations sent once the records are installed.
func (s *Server) RestoreReplay(records []LockRecord) error {
	kept, acts := resolveReplay(records)
	if err := s.Restore(kept); err != nil {
		return err
	}
	for _, a := range acts {
		s.Stats.HandoffReclaims.Add(1)
		s.sendActivation(a)
	}
	return nil
}

// Reset drops all lock state. It models the state loss of a server
// crash (the recovery tests crash and rebuild an engine in place) and
// must not be called while requests are in flight.
func (s *Server) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.resources = make(map[ResourceID]*resource)
		sh.mu.Unlock()
	}
}

// Restore reinstalls client-reported locks into a fresh engine. Records
// are trusted (they were granted by the pre-crash server, so they are
// mutually compatible); each resource's sequencer resumes above the
// largest restored SN and the lock-ID allocator above the largest
// restored ID, so post-recovery grants can never collide with or order
// below pre-crash ones. Restoring onto a non-empty resource fails.
func (s *Server) Restore(records []LockRecord) error {
	// Stable order keeps restoration deterministic for tests/logs.
	sort.Slice(records, func(i, j int) bool {
		if records[i].Resource != records[j].Resource {
			return records[i].Resource < records[j].Resource
		}
		return records[i].LockID < records[j].LockID
	})
	var maxID LockID
	for _, r := range records {
		if !r.Mode.Valid() {
			return fmt.Errorf("dlm: restore: invalid mode %v", r.Mode)
		}
		if r.Range.Empty() {
			return fmt.Errorf("dlm: restore: empty range for lock %d", r.LockID)
		}
		res := s.resource(r.Resource)
		res.mu.Lock()
		if len(res.queue) > 0 {
			res.mu.Unlock()
			return fmt.Errorf("dlm: restore: resource %d has queued requests", r.Resource)
		}
		res.granted.insert(&lock{
			id:         r.LockID,
			client:     r.Client,
			mode:       r.Mode,
			rng:        r.Range,
			state:      r.State,
			sn:         r.SN,
			revokeSent: r.State == Canceling,
		})
		res.grants++
		if r.Mode.IsWrite() && r.SN >= res.nextSN {
			res.nextSN = r.SN + 1
		}
		res.mu.Unlock()
		if r.LockID > maxID {
			maxID = r.LockID
		}
	}
	// CAS-max the allocator above every restored ID so post-recovery
	// grants can never collide with pre-crash ones.
	for {
		cur := s.nextLock.Load()
		if uint64(maxID) <= cur || s.nextLock.CompareAndSwap(cur, uint64(maxID)) {
			break
		}
	}
	return nil
}
