package dlm

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/extent"
)

// TestExpansionCappedByQueuedRequest: a grant must not expand over a
// queued conflicting request from another client, or it would be
// revoked the moment it is granted.
func TestExpansionCappedByQueuedRequest(t *testing.T) {
	h := newHarness(t, SeqDLM(), 3)
	gate := make(chan struct{})
	h.flusher.setGate(gate)

	// Client 1 parks a lock at [0, EOF) and is slow to flush, so the
	// queue builds: client 2 wants [0, 4K), client 3 wants [1M, 1M+4K).
	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))
	h.client(1).Unlock(a)

	revGate := make(chan struct{})
	h.setRevokeGate(revGate)
	type res struct {
		hd  *Handle
		cli int
	}
	grants := make(chan res, 2)
	go func() {
		hd, err := h.client(2).Acquire(context.Background(), 1, NBW, extent.New(0, 4096))
		if err == nil {
			grants <- res{hd, 2}
		}
	}()
	waitFor(t, "first waiter queued", func() bool { return h.srv.QueueLen(1) == 1 })
	go func() {
		hd, err := h.client(3).Acquire(context.Background(), 1, NBW, extent.New(1<<20, 1<<20+4096))
		if err == nil {
			grants <- res{hd, 3}
		}
	}()
	waitFor(t, "both waiters queued", func() bool { return h.srv.QueueLen(1) == 2 })
	close(revGate)

	got := map[int]*Handle{}
	for i := 0; i < 2; i++ {
		r := <-grants
		got[r.cli] = r.hd
	}
	close(gate)
	// Client 2's grant must stop at or before client 3's request start.
	if got[2].Range().End > 1<<20 {
		t.Fatalf("client 2's lock %v expanded over client 3's queued request", got[2].Range())
	}
	h.client(2).Unlock(got[2])
	h.client(3).Unlock(got[3])
}

func TestAcquireExtentsValidation(t *testing.T) {
	h := newHarness(t, Datatype(), 1)
	// Request whose extent set exceeds the declared range is rejected by
	// the server (defence against malformed clients).
	_, err := h.srv.Lock(context.Background(), Request{
		Resource: 1,
		Client:   1,
		Mode:     LW,
		Range:    extent.New(0, 10),
		Extents:  extent.NewSet(extent.New(0, 5), extent.New(50, 60)),
	})
	if err == nil {
		t.Fatal("extent set exceeding range accepted")
	}
}

// TestSpanningWritersNoDeadlock: many clients repeatedly take BW locks
// on two resources in ascending order with random timing — ordered
// acquisition must be deadlock-free and every round completes.
func TestSpanningWritersNoDeadlock(t *testing.T) {
	h := newHarness(t, SeqDLM(), 6)
	var wg sync.WaitGroup
	for i := 1; i <= 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			c := h.client(i)
			for k := 0; k < 20; k++ {
				h0, err := c.Acquire(context.Background(), 1, BW, extent.New(0, extent.Inf))
				if err != nil {
					t.Errorf("acquire r1: %v", err)
					return
				}
				if rng.Intn(2) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
				h1, err := c.Acquire(context.Background(), 2, BW, extent.New(0, extent.Inf))
				if err != nil {
					t.Errorf("acquire r2: %v", err)
					c.Unlock(h0)
					return
				}
				c.Unlock(h1)
				c.Unlock(h0)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("spanning writers deadlocked")
	}
	for i := 1; i <= 6; i++ {
		h.client(i).ReleaseAll(context.Background())
	}
}

// TestSameClientConcurrentAcquires: multiple goroutines of one client
// hammering the same resource must serialize safely through the
// per-resource acquire path and the upgrade machinery.
func TestSameClientConcurrentAcquires(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 30; k++ {
				mode := NBW
				if (g+k)%3 == 0 {
					mode = PR
				}
				hd, err := c.Acquire(context.Background(), 1, mode, extent.Span(int64(k*100), 50))
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				c.Unlock(hd)
			}
		}(g)
	}
	wg.Wait()
	c.ReleaseAll(context.Background())
	waitFor(t, "drain", func() bool { return h.srv.GrantedCount(1) == 0 })
}

// TestRevocationStormDuringUpgrades: interleave cross-client revocations
// with same-client upgrades; no grant may be lost and the server drains.
func TestRevocationStormDuringUpgrades(t *testing.T) {
	h := newHarness(t, SeqDLM(), 4)
	var wg sync.WaitGroup
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := h.client(i)
			for k := 0; k < 25; k++ {
				w, err := c.Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
				if err != nil {
					t.Errorf("w: %v", err)
					return
				}
				c.Unlock(w)
				r, err := c.Acquire(context.Background(), 1, PR, extent.New(0, 4096))
				if err != nil {
					t.Errorf("r: %v", err)
					return
				}
				c.Unlock(r)
			}
		}(i)
	}
	wg.Wait()
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		h.client(i).ReleaseAll(context.Background())
	}
	waitFor(t, "drain", func() bool { return h.srv.GrantedCount(1) == 0 })
	st := h.srv.Stats.Snapshot()
	if st.Grants == 0 || st.Upgrades == 0 {
		t.Fatalf("storm exercised nothing: %+v", st)
	}
}

// TestDatatypeManyDisjointWriters: datatype locking's selling point is
// disjoint non-contiguous sets proceeding fully in parallel; make sure
// nothing serializes or wedges them.
func TestDatatypeManyDisjointWriters(t *testing.T) {
	h := newHarness(t, Datatype(), 8)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := h.client(i)
			for k := 0; k < 15; k++ {
				// Interleaved but never overlapping extents per client.
				set := extent.NewSet(
					extent.Span(int64(k*8000+i*1000), 500),
					extent.Span(int64(k*8000+i*1000+500), 200),
				)
				hd, err := c.AcquireExtents(context.Background(), 1, NBW, set)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				c.Unlock(hd)
			}
		}(i)
	}
	wg.Wait()
	if h.srv.Stats.Revocations.Load() != 0 {
		t.Fatalf("disjoint datatype sets caused %d revocations", h.srv.Stats.Revocations.Load())
	}
	_ = start
	waitFor(t, "drain", func() bool { return h.srv.GrantedCount(1) == 0 })
}

// TestUpgradeConflictsOverUnionRange is the regression test for a
// safety bug found by CheckInvariants under stress: the upgraded lock
// covers the union of the request and the absorbed locks, so a PW
// upgrade must reclaim another client's PR that overlaps only the
// ABSORBED range — even when the triggering request never touches it.
func TestUpgradeConflictsOverUnionRange(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	// C0 ends up with PR [0, 5000) (capped by C1's PR below); C1 holds
	// PR [4000, 4500) overlapping it — PR/PR coexist fine.
	b := mustAcquire(t, h.client(2), 1, PR, extent.New(4000, 4500))
	h.client(2).Unlock(b)
	a := mustAcquire(t, h.client(1), 1, PR, extent.New(0, 100))
	h.client(1).Unlock(a)
	if !a.Range().Overlaps(b.Range()) {
		t.Fatalf("setup failed: PRs do not overlap (%v vs %v)", a.Range(), b.Range())
	}

	// C0 writes [0, 50): same-client conflict with its own PR upgrades
	// the request to PW over the union [0, 5000) — which overlaps C1's
	// GRANTED PR. C1 must be revoked before the PW is granted.
	w := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, 50))
	if w.Mode() != PW {
		t.Fatalf("mode = %v, want PW", w.Mode())
	}
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("upgrade violated the LCM: %v", err)
	}
	if h.client(2).Stats.Revocations.Load() == 0 {
		t.Fatal("C1's PR overlapping only the absorbed range was not reclaimed")
	}
	h.client(1).Unlock(w)
}
