package dlm

import (
	"context"
	"errors"
	"testing"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/wire"
)

// TestAcquireCancelWithdrawsWaiter: canceling a blocked Acquire returns
// promptly with a typed cancellation error, leaves no zombie entry in
// the server queue, and a later acquire of the same resource succeeds.
func TestAcquireCancelWithdrawsWaiter(t *testing.T) {
	h := newHarness(t, SeqDLM(), 3)
	gate := make(chan struct{})
	h.setRevokeGate(gate) // stall revocation delivery so client 2 stays queued

	a := mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))
	_ = a

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := h.client(2).Acquire(ctx, 1, NBW, extent.New(0, extent.Inf))
		errc <- err
	}()
	waitFor(t, "waiter queued", func() bool { return h.srv.QueueLen(1) == 1 })

	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled Acquire = %v, want context.Canceled", err)
		}
		if !errors.Is(err, wire.ErrCanceled) {
			t.Fatalf("canceled Acquire = %v, want wire.ErrCanceled match", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled Acquire did not return promptly")
	}
	if n := h.srv.QueueLen(1); n != 0 {
		t.Fatalf("queue has %d entries after withdrawal, want 0", n)
	}

	// Unblock the stalled revocation; client 1's lock cancels, and a
	// fresh acquire by client 3 must succeed.
	close(gate)
	hd, err := h.client(3).Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
	if err != nil {
		t.Fatalf("acquire after withdrawal: %v", err)
	}
	h.client(3).Unlock(hd)
}

// TestAcquireDeadlineTypedError: a blocked Acquire whose deadline
// expires returns within the deadline (not the revocation's duration)
// and the error matches both the context sentinel and the typed wire
// timeout.
func TestAcquireDeadlineTypedError(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	gate := make(chan struct{})
	h.setRevokeGate(gate)
	defer close(gate)

	mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := h.client(2).Acquire(ctx, 1, NBW, extent.New(0, extent.Inf))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire = %v, want context.DeadlineExceeded", err)
	}
	if !errors.Is(err, wire.ErrTimeout) {
		t.Fatalf("Acquire = %v, want wire.ErrTimeout match", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Acquire took %v after a 50ms deadline", elapsed)
	}
	if n := h.srv.QueueLen(1); n != 0 {
		t.Fatalf("queue has %d entries after deadline, want 0", n)
	}
}

// TestShutdownFailsQueuedWaiters: Server.Shutdown fails queued waiters
// with the typed shutting-down error and rejects new lock requests.
func TestShutdownFailsQueuedWaiters(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	gate := make(chan struct{})
	h.setRevokeGate(gate)
	defer close(gate)

	mustAcquire(t, h.client(1), 1, NBW, extent.New(0, extent.Inf))

	errc := make(chan error, 1)
	go func() {
		_, err := h.client(2).Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
		errc <- err
	}()
	waitFor(t, "waiter queued", func() bool { return h.srv.QueueLen(1) == 1 })

	h.srv.Shutdown()
	select {
	case err := <-errc:
		if !errors.Is(err, wire.ErrShuttingDown) {
			t.Fatalf("queued Acquire after Shutdown = %v, want wire.ErrShuttingDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued Acquire did not fail on Shutdown")
	}
	if _, err := h.srv.Lock(context.Background(), Request{
		Client: 2, Resource: 1, Mode: NBW, Range: extent.New(0, 10),
	}); !errors.Is(err, wire.ErrShuttingDown) {
		t.Fatalf("Lock on draining server = %v, want wire.ErrShuttingDown", err)
	}
}
