package dlm

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"ccpfs/internal/epoch"
	"ccpfs/internal/extent"
	"ccpfs/internal/shard"
	"ccpfs/internal/sim"
	"ccpfs/internal/wire"
)

// ServerConn is how a lock client reaches one lock server. The cluster
// layer implements it over RPC; unit tests implement it in-process.
// Every method honours its context: it is the per-call deadline that
// bounds the remote round trip.
type ServerConn interface {
	Lock(ctx context.Context, req Request) (Grant, error)
	Release(ctx context.Context, res ResourceID, id LockID) error
	Downgrade(ctx context.Context, res ResourceID, id LockID, m Mode) error
}

// Flusher is the client's data path: canceling a lock flushes the dirty
// data written under it (and under locks it absorbed) before release.
type Flusher interface {
	// FlushForCancel writes back all dirty data of res within rng whose
	// sequence number is at most sn, returning once it is durable on the
	// data server. ctx bounds the flush IO.
	FlushForCancel(ctx context.Context, res ResourceID, rng extent.Extent, sn extent.SN) error
}

// FlusherFunc adapts a function to Flusher.
type FlusherFunc func(context.Context, ResourceID, extent.Extent, extent.SN) error

// FlushForCancel implements Flusher.
func (f FlusherFunc) FlushForCancel(ctx context.Context, res ResourceID, rng extent.Extent, sn extent.SN) error {
	return f(ctx, res, rng, sn)
}

// The mutable per-handle state lives in one packed atomic word so the
// cached-hit fast path, revocation, absorption, and Unlock all race
// through CAS transitions on a single cell — no per-handle or per-shard
// mutex on the hit path. Layout (low to high):
//
//	bits  0–31  holds       active Acquire references
//	bits 32–33  state       Granted / Canceling
//	bit  34     canceling   the cancel goroutine has been claimed (set once)
//	bit  35     wrote       a write-mode Acquire used this handle
//	bit  36     absorbed    merged into an upgraded lock; merged ptr is set
//	bit  37     releaseSent the Release RPC has been (or is being) issued
//	bits 40–47  mode        current Mode (changes on downgrade)
//
// The combinations the word makes atomic are exactly the races the old
// shard mutex serialized: a hit's holds++ vs. a revocation's
// state=Canceling, an Unlock's holds-- vs. an upgrade's absorb-capture,
// and the one-shot claim of the cancel path (the canceling bit). See
// DESIGN.md §11.
const (
	hotHoldsMask   = uint64(1)<<32 - 1
	hotStateShift  = 32
	hotStateMask   = uint64(3) << hotStateShift
	hotCanceling   = uint64(1) << 34
	hotWrote       = uint64(1) << 35
	hotAbsorbed    = uint64(1) << 36
	hotReleaseSent = uint64(1) << 37
	hotModeShift   = 40
	hotModeMask    = uint64(0xFF) << hotModeShift
)

func hotHolds(w uint64) int   { return int(w & hotHoldsMask) }
func hotState(w uint64) State { return State(w >> hotStateShift & 3) }
func hotMode(w uint64) Mode   { return Mode(w >> hotModeShift & 0xFF) }

func hotWord(holds int, st State, m Mode, wrote bool) uint64 {
	w := uint64(holds) | uint64(st)<<hotStateShift | uint64(m)<<hotModeShift
	if wrote {
		w |= hotWrote
	}
	return w
}

// Handle is a client's reference to a granted lock. Handles are obtained
// from Acquire and returned with Unlock; the client caches GRANTED
// handles for reuse. res, id, sn, rng and released are immutable after
// the grant; all mutable state is in hot (and merged, which is written
// before hot's absorbed bit).
type Handle struct {
	c   *LockClient
	res ResourceID
	id  LockID
	sn  extent.SN
	rng extent.Extent

	hot atomic.Uint64
	// merged points to the handle that absorbed this one via lock
	// upgrading. It is published before the absorbed bit is set in hot,
	// so any reader that observes absorbed finds merged non-nil.
	merged   atomic.Pointer[Handle]
	released chan struct{}
	// stamp carries a handoff delegation received with a stamped
	// revocation (DESIGN.md §13). It is published before the state word
	// flips to CANCELING, so the cancel goroutine — claimed only after
	// that flip — always observes it and transfers the lock to the
	// stamped next owner instead of releasing it.
	stamp atomic.Pointer[HandoffStamp]
}

// Resource returns the lock's resource.
func (h *Handle) Resource() ResourceID { return h.res }

// ID returns the server-assigned lock ID.
func (h *Handle) ID() LockID { return h.id }

// SN returns the sequence number writes under this lock carry.
func (h *Handle) SN() extent.SN { return h.sn }

// Mode returns the current mode (it may change by conversion).
func (h *Handle) Mode() Mode { return hotMode(h.hot.Load()) }

// Range returns the granted (possibly expanded) range.
func (h *Handle) Range() extent.Extent { return h.rng }

// State returns the lock's client-side state.
func (h *Handle) State() State { return hotState(h.hot.Load()) }

// Released returns a channel closed once the lock is fully canceled
// (flushed and released).
func (h *Handle) Released() <-chan struct{} { return h.released }

// setMode swaps the mode bits, leaving the rest of the word to race on.
func (h *Handle) setMode(m Mode) {
	for {
		w := h.hot.Load()
		if h.hot.CompareAndSwap(w, w&^hotModeMask|uint64(m)<<hotModeShift) {
			return
		}
	}
}

// tryHit attempts the wait-free cached-lock fast path: bump holds iff
// the handle is still GRANTED, unclaimed by a cancel, unabsorbed, and
// its mode covers need. The CAS makes the reuse check and the reference
// count one atomic step, so a racing revocation either sees our hold
// (and defers the cancel to our Unlock) or beats us (and we miss).
func (h *Handle) tryHit(need Mode) bool {
	for {
		w := h.hot.Load()
		if hotState(w) != Granted || w&(hotCanceling|hotAbsorbed) != 0 || !hotMode(w).Covers(need) {
			return false
		}
		nw := w + 1
		if need.IsWrite() {
			nw |= hotWrote
		}
		if h.hot.CompareAndSwap(w, nw) {
			return true
		}
	}
}

// ClientStats counts client-side lock activity.
type ClientStats struct {
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	Revocations atomic.Int64
	Cancels     atomic.Int64
	LockWaitNs  atomic.Int64 // time blocked in Acquire RPCs
	CancelNs    atomic.Int64 // time spent flushing + releasing
	// HandoffsSent counts locks this client transferred directly to a
	// peer; HandoffsRecv counts delegated grants this client activated
	// (peer transfer or server-sent activation).
	HandoffsSent atomic.Int64
	HandoffsRecv atomic.Int64
	// LeasesSent counts propagation-tree subtrees this client forwarded
	// to peers; LeasesRecv counts read leases installed from a
	// broadcast transfer or peer propagation (DESIGN.md §14).
	LeasesSent atomic.Int64
	LeasesRecv atomic.Int64
}

// LockClient is the client half of the DLM: it caches grants, answers
// revocation callbacks, and runs the cancel path (downgrade → flush →
// release) of §III-D2.
//
// Concurrency: the cached-lock fast path is lock-free. Each shard
// publishes its resource→handles map through an atomic pointer; readers
// pin the shard's epoch domain, load the snapshot, and claim a handle
// with one CAS on its packed state word — no mutex, no allocation.
// Writers (grant installation, absorption, removal) serialize on the
// shard mutex, publish copy-on-write, and retire displaced maps through
// the epoch domain for reuse. See DESIGN.md §11.
type LockClient struct {
	id      ClientID
	policy  Policy
	router  func(ResourceID) ServerConn
	flusher Flusher

	// baseCtx is the client's lifecycle: background cancel goroutines
	// (spawned by Unlock and OnRevoke) run under it so a closed client
	// does not leave headless flush RPCs behind.
	baseCtx  context.Context
	cancelFn context.CancelFunc

	shards [shard.Count]clientShard

	// peer, when set, is the client-to-client transport handoff
	// transfers are sent over; nil falls back to releasing through the
	// server (clienthandoff.go).
	peer atomic.Pointer[peerSenderBox]

	// clk is the client's time source: wait-time stats, ack flush
	// timers, and background cancel goroutines run on it. The zero
	// value is the wall clock.
	clk sim.Clock

	// Stats counts client-side lock activity.
	Stats ClientStats
}

// clientShard carries the lock state of the resources hashing to one
// shard. snap is the RCU-published cache: the map and every slice in it
// are immutable once stored; mutation copies and re-publishes under mu.
type clientShard struct {
	mu   sync.Mutex
	snap atomic.Pointer[map[ResourceID][]*Handle]
	dom  epoch.Domain
	acq  map[ResourceID]*sync.Mutex
	// pendingRevokes records revocation callbacks that arrived before
	// the corresponding grant reply was processed (the callback and the
	// reply race on different goroutines); the handle is created
	// directly in CANCELING state, carrying the revocation's handoff
	// stamp when it had one (nil for a plain revoke). tombstones
	// records locks already released or absorbed so late revocations
	// for them are ignored. Both are keyed by (resource, lock ID): lock
	// IDs are unique only within one server, and a client talks to many
	// servers.
	pendingRevokes map[lockKey]*HandoffStamp
	tombstones     map[lockKey]bool
	// Handoff reception state (clienthandoff.go): transfer parts that
	// arrived before their delegated grant reply was processed (a
	// gather collects several; a server-sent activation counts as all
	// of them), waiters blocked on a transfer, and delegation acks
	// queued for the server.
	arrivedHandoffs map[lockKey]int
	pendingHandoffs map[lockKey]*transferWaiter
	pendingAcks     map[ResourceID][]LockID
	ackTimer        *sim.ClockTimer
	// Reader fan-out state (clientfan.go): resources in a fan rotation
	// — a write-mode stamped revocation displaced this client's read
	// lease, so the next lease arrives peer-to-peer — and shared-mode
	// acquires parked on that arrival instead of going to the server.
	fanStanding map[ResourceID]bool
	fanWaiters  map[ResourceID][]chan struct{}
}

// lockKey globally identifies a lock: IDs are per-server, resources map
// to exactly one server.
type lockKey struct {
	res ResourceID
	id  LockID
}

// snapMapPool recycles displaced cache snapshots. A map freed here has
// passed a grace period of its shard's epoch domain, so no pinned
// reader can still be iterating it when a writer repopulates it.
var snapMapPool = sync.Pool{
	New: func() any { return make(map[ResourceID][]*Handle, 8) },
}

// cur returns the current snapshot for mutation under sh.mu.
func (sh *clientShard) cur() map[ResourceID][]*Handle { return *sh.snap.Load() }

// setList publishes a copy of the snapshot with res's handle list
// replaced (nil deletes the entry) and retires the displaced map into
// the pool after a grace period. Caller holds sh.mu; list must not be
// mutated after this call.
func (sh *clientShard) setList(res ResourceID, list []*Handle) {
	old := sh.cur()
	m := snapMapPool.Get().(map[ResourceID][]*Handle)
	for k, v := range old {
		m[k] = v
	}
	if list == nil {
		delete(m, res)
	} else {
		m[res] = list
	}
	sh.snap.Store(&m)
	sh.dom.Retire(func() {
		clear(old)
		snapMapPool.Put(old)
	})
}

// NewLockClient returns a lock client. router maps a resource to the
// connection of the server owning it; flusher is the data path used at
// cancel time.
func NewLockClient(id ClientID, policy Policy, router func(ResourceID) ServerConn, flusher Flusher) *LockClient {
	ctx, cancel := context.WithCancel(context.Background())
	c := &LockClient{
		id:       id,
		policy:   policy,
		router:   router,
		flusher:  flusher,
		baseCtx:  ctx,
		cancelFn: cancel,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		m := make(map[ResourceID][]*Handle)
		sh.snap.Store(&m)
		sh.acq = make(map[ResourceID]*sync.Mutex)
		sh.pendingRevokes = make(map[lockKey]*HandoffStamp)
		sh.tombstones = make(map[lockKey]bool)
		sh.arrivedHandoffs = make(map[lockKey]int)
		sh.pendingHandoffs = make(map[lockKey]*transferWaiter)
		sh.pendingAcks = make(map[ResourceID][]LockID)
		sh.fanStanding = make(map[ResourceID]bool)
		sh.fanWaiters = make(map[ResourceID][]chan struct{})
	}
	return c
}

// shard returns the shard owning res.
func (c *LockClient) shard(res ResourceID) *clientShard {
	return &c.shards[shard.Of(uint64(res))]
}

// ID returns the client identifier.
func (c *LockClient) ID() ClientID { return c.id }

// SetClock points the client at a (virtual) clock. Call before first
// use; the zero clock is the wall clock.
func (c *LockClient) SetClock(clk sim.Clock) { c.clk = clk }

// waitReleased blocks until h's released channel closes or ctx fires.
// Under a virtual clock it parks on the channel — every close site
// wakes it — and checks ctx at each wake; a run that exits mid-wait
// falls back to the real select.
func (c *LockClient) waitReleased(ctx context.Context, h *Handle) error {
	if v := c.clk.V(); v != nil {
		for {
			select {
			case <-h.released:
				return nil
			default:
			}
			if err := ctx.Err(); err != nil {
				return wire.FromContext(err)
			}
			if v.WaitOn(h.released) == sim.WakeExited {
				break
			}
		}
	}
	select {
	case <-h.released:
		return nil
	case <-ctx.Done():
		return wire.FromContext(ctx.Err())
	}
}

// Policy returns the client's policy.
func (c *LockClient) Policy() Policy { return c.policy }

func (c *LockClient) acquireMu(res ResourceID) *sync.Mutex {
	sh := c.shard(res)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m := sh.acq[res]
	if m == nil {
		m = &sync.Mutex{}
		sh.acq[res] = m
	}
	return m
}

// Acquire obtains a lock covering rng in a mode that covers need,
// reusing a cached grant when possible. It blocks until granted or ctx
// fires; a canceled wait withdraws the remote request.
func (c *LockClient) Acquire(ctx context.Context, res ResourceID, need Mode, rng extent.Extent) (*Handle, error) {
	return c.acquire(ctx, res, need, rng, nil)
}

// AcquireExtents obtains a lock over an exact non-contiguous extent set
// (DLM-datatype). rng must be the set's bounds.
func (c *LockClient) AcquireExtents(ctx context.Context, res ResourceID, need Mode, set extent.Set) (*Handle, error) {
	b, ok := set.Bounds()
	if !ok {
		return nil, wire.Errorf(wire.CodeInvalid, "dlm: empty extent set")
	}
	return c.acquire(ctx, res, need, b, set)
}

// fastHit scans the published snapshot for a reusable cached handle
// without taking any lock. The epoch pin keeps the snapshot map alive
// against writers recycling displaced versions; the per-handle CAS in
// tryHit claims the reference.
func (c *LockClient) fastHit(res ResourceID, need Mode, rng extent.Extent) *Handle {
	if !c.policy.CacheLocks {
		return nil
	}
	sh := c.shard(res)
	g := sh.dom.Pin()
	list := (*sh.snap.Load())[res]
	for _, h := range list {
		if h.rng.Contains(rng) && h.tryHit(need) {
			g.Unpin()
			return h
		}
	}
	g.Unpin()
	return nil
}

// adoptLease claims a hold on the cached handle a racing broadcast
// lease install created for a delegated grant. Returns nil when the
// lease is already CANCELING or gone — the lock left this client and
// the caller must re-request from the server.
func (c *LockClient) adoptLease(res ResourceID, id LockID, need Mode) *Handle {
	sh := c.shard(res)
	sh.mu.Lock()
	h := findByID(sh.cur()[res], id)
	sh.mu.Unlock()
	if h == nil {
		return nil
	}
	for {
		w := h.hot.Load()
		if w&hotAbsorbed != 0 {
			h = h.merged.Load()
			continue
		}
		if hotState(w) != Granted || w&hotCanceling != 0 {
			return nil
		}
		nw := w + 1
		if need.IsWrite() {
			nw |= hotWrote
		}
		if h.hot.CompareAndSwap(w, nw) {
			return h
		}
	}
}

func (c *LockClient) acquire(ctx context.Context, res ResourceID, need Mode, rng extent.Extent, set extent.Set) (*Handle, error) {
	need = c.policy.MapMode(need)
	if h := c.fastHit(res, need, rng); h != nil {
		c.Stats.CacheHits.Add(1)
		return h, nil
	}
	am := c.acquireMu(res)
	am.Lock()
	defer am.Unlock()

	// Second chance under the acquire mutex: a racing acquire may have
	// just installed a covering grant while we waited for it.
	if h := c.fastHit(res, need, rng); h != nil {
		c.Stats.CacheHits.Add(1)
		return h, nil
	}
	c.Stats.CacheMisses.Add(1)

	// In a fan rotation the next read lease arrives peer-to-peer; park
	// briefly on its arrival instead of paying a server round trip. A
	// timeout (the reclaim interval) falls back to the server, which
	// self-heals any lease that was lost in flight.
	if c.policy.ReaderFanout && !need.IsWrite() && len(set) == 0 {
		if h := c.waitStanding(ctx, res, need, rng); h != nil {
			c.Stats.CacheHits.Add(1)
			return h, nil
		}
	}

	var g Grant
	for {
		start := c.clk.Now()
		acks := c.takeAcks(res)
		var err error
		g, err = c.router(res).Lock(ctx, Request{
			Resource:    res,
			Client:      c.id,
			Mode:        need,
			Range:       rng,
			Extents:     set,
			HandoffAcks: acks,
		})
		c.Stats.LockWaitNs.Add(c.clk.Since(start).Nanoseconds())
		if err != nil {
			// The acks may not have reached the server; re-queue them —
			// duplicate acks are idempotent server-side.
			c.requeueAcks(res, acks)
			return nil, err
		}
		if !g.Delegated {
			break
		}
		// The lock arrives from the previous holder, not from server
		// state: block until the transfer — every part of it, for a
		// gather — or a server-sent activation lands, then confirm the
		// delegation asynchronously.
		cached, err := c.waitTransfer(ctx, res, g)
		if err != nil {
			c.router(res).Release(c.baseCtx, res, g.LockID)
			return nil, err
		}
		if cached {
			// A broadcast lease install raced ahead of this grant reply
			// and already cached (and confirmed) the lock; adopt it. If
			// the lease was revoked and canceled before it could be
			// claimed, the lock left this client — request again.
			if h := c.adoptLease(res, g.LockID, need); h != nil {
				return h, nil
			}
			continue
		}
		c.Stats.HandoffsRecv.Add(1)
		c.queueAck(res, g.LockID)
		break
	}

	h := &Handle{
		c:        c,
		res:      res,
		id:       g.LockID,
		sn:       g.SN,
		rng:      g.Range,
		released: make(chan struct{}),
	}
	st := g.State
	sh := c.shard(res)
	sh.mu.Lock()
	// A revocation callback may have raced ahead of this grant reply;
	// honour it now (including its handoff stamp, for chained
	// delegations revoked before this reply was processed).
	k := lockKey{res, g.LockID}
	if stamp, ok := sh.pendingRevokes[k]; ok {
		delete(sh.pendingRevokes, k)
		if stamp != nil {
			h.stamp.Store(stamp)
		}
		st = Canceling
	}
	if hb := g.HandBack; hb != nil && len(hb.Leases) > 0 {
		// The grant pre-armed the next fan-out (DESIGN.md §14): this
		// lock is born CANCELING with a broadcast transfer obligation
		// toward the displaced reader cohort's fresh leases. The stamp
		// overrides any plain pending revoke — a nudge for a lock that
		// already owes a transfer adds nothing.
		h.stamp.Store(&HandoffStamp{
			NextOwner: hb.Leases[0].Owner,
			NewLockID: hb.Leases[0].LockID,
			Mode:      hb.Mode,
			SN:        hb.Leases[0].SN,
			MustFlush: true,
			Broadcast: hb,
		})
		st = Canceling
	}
	// A duplicate activation racing this install would otherwise leave
	// a stale arrival behind.
	delete(sh.arrivedHandoffs, k)
	h.hot.Store(hotWord(1, st, g.Mode, need.IsWrite()))

	list := sh.cur()[res]
	nl := make([]*Handle, 0, len(list)+1)
	nl = append(nl, list...)
	// Merge locks the server absorbed during upgrading: transfer their
	// active holds and dirty-write flags, and forward their handles.
	for _, aid := range g.Absorbed {
		var old *Handle
		idx := -1
		for i, x := range nl {
			if x.id == aid {
				old, idx = x, i
				break
			}
		}
		if old == nil || !h.absorb(old) {
			continue
		}
		k := lockKey{res, aid}
		sh.tombstones[k] = true
		delete(sh.pendingRevokes, k)
		nl = append(nl[:idx], nl[idx+1:]...)
		// The absorbed lock will never be canceled on its own; its
		// users now hold h, and its released channel tracks h's.
		c.clk.Go(func() {
			c.waitReleased(context.Background(), h)
			close(old.released)
			c.clk.Wakeup(old.released)
		})
	}
	nl = append(nl, h)
	sh.setList(res, nl)
	sh.mu.Unlock()
	return h, nil
}

// absorb folds old into h: one CAS sets old's absorbed bit while
// capturing its holds and wrote flag at that instant. Unlock racers
// either land their decrement before the capture (and are counted) or
// observe absorbed and chase old.merged to h. Returns false when old is
// already claimed by a cancel — then it must be left alone, matching
// the server, which never absorbs a canceling lock.
func (h *Handle) absorb(old *Handle) bool {
	old.merged.Store(h)
	for {
		w := old.hot.Load()
		if w&(hotCanceling|hotAbsorbed) != 0 {
			return false
		}
		if old.hot.CompareAndSwap(w, w|hotAbsorbed) {
			for {
				hw := h.hot.Load()
				nhw := hw + uint64(hotHolds(w))
				if w&hotWrote != 0 {
					nhw |= hotWrote
				}
				if h.hot.CompareAndSwap(hw, nhw) {
					return true
				}
			}
		}
	}
}

func findByID(list []*Handle, id LockID) *Handle {
	for _, h := range list {
		if h.id == id {
			return h
		}
	}
	return nil
}

// remove unpublishes h from the cache and tombstones it. Caller holds
// sh.mu.
func (sh *clientShard) remove(h *Handle) {
	k := lockKey{h.res, h.id}
	sh.tombstones[k] = true
	delete(sh.pendingRevokes, k)
	list := sh.cur()[h.res]
	for i, x := range list {
		if x == h {
			var nl []*Handle
			if len(list) > 1 {
				nl = make([]*Handle, 0, len(list)-1)
				nl = append(nl, list[:i]...)
				nl = append(nl, list[i+1:]...)
			}
			sh.setList(h.res, nl)
			return
		}
	}
}

// Unlock returns a handle after use. If the lock is CANCELING (or the
// policy does not cache locks) and this was the last user, the cancel
// path starts in the background: downgrade, flush, release.
func (c *LockClient) Unlock(h *Handle) {
	for {
		w := h.hot.Load()
		if w&hotAbsorbed != 0 {
			h = h.merged.Load()
			continue
		}
		if hotHolds(w) == 0 {
			panic("dlm: Unlock without matching Acquire")
		}
		nw := w - 1
		start := false
		if hotHolds(nw) == 0 {
			if !c.policy.CacheLocks && hotState(nw) == Granted {
				nw = nw&^hotStateMask | uint64(Canceling)<<hotStateShift
			}
			if hotState(nw) == Canceling && nw&hotCanceling == 0 {
				nw |= hotCanceling
				start = true
			}
		}
		if h.hot.CompareAndSwap(w, nw) {
			if start {
				// Copy h into a branch-local before capturing: h is
				// reassigned in the loop above, so capturing it directly
				// would heap-allocate the variable on EVERY Unlock — one
				// alloc per cached hit (see TestClientCachedHitAllocFree).
				hh := h
				c.clk.Go(func() { c.cancel(hh) })
			}
			return
		}
	}
}

// OnRevoke handles a server revocation callback: the lock enters
// CANCELING immediately (blocking reuse); returning from OnRevoke is the
// revocation reply. The cancel path runs once ongoing operations finish.
func (c *LockClient) OnRevoke(res ResourceID, id LockID) {
	c.OnRevokeStamped(res, id, nil)
}

// OnRevokeStamped handles a revocation carrying an optional handoff
// stamp (DESIGN.md §13): a stamped lock is canceled like any other,
// but its cancel path transfers the lock to the stamped next owner
// instead of releasing it back to the server.
func (c *LockClient) OnRevokeStamped(res ResourceID, id LockID, stamp *HandoffStamp) {
	c.Stats.Revocations.Add(1)
	sh := c.shard(res)
	sh.mu.Lock()
	if c.policy.ReaderFanout && stamp != nil && stamp.Mode.IsWrite() {
		// A writer is displacing this client's lock: the resource is in
		// a fan rotation, and the next read lease — pre-armed by the
		// writer's gather — will arrive peer-to-peer. Subsequent shared
		// acquires park on it instead of going to the server.
		sh.fanStanding[res] = true
	}
	h := findByID(sh.cur()[res], id)
	if h == nil {
		// Either the grant reply has not been processed yet (remember
		// the revocation — and its stamp — for when it is) or the lock
		// is already gone (tombstoned: ignore). Acking both cases is
		// correct.
		if k := (lockKey{res, id}); !sh.tombstones[k] {
			sh.pendingRevokes[k] = stamp
		}
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	if stamp != nil {
		// Published before the CANCELING flip below, so the cancel
		// goroutine always sees it.
		h.stamp.Store(stamp)
	}
	for {
		w := h.hot.Load()
		if w&hotAbsorbed != 0 {
			return // absorbed into an upgraded lock; nothing to cancel
		}
		nw := w&^hotStateMask | uint64(Canceling)<<hotStateShift
		start := hotHolds(w) == 0 && w&hotCanceling == 0
		if start {
			nw |= hotCanceling
		}
		if h.hot.CompareAndSwap(w, nw) {
			if start {
				c.clk.Go(func() { c.cancel(h) })
			}
			return
		}
	}
}

// cancel runs the lock cancel path of §III-D2: automatic downgrade to
// the least restrictive mode (re-enabling early grant for waiters), data
// flushing tagged with the lock's SN, then release. Exactly one
// goroutine runs it per handle: its caller won the canceling bit.
func (c *LockClient) cancel(h *Handle) {
	start := c.clk.Now()
	c.Stats.Cancels.Add(1)
	ctx := c.baseCtx
	conn := c.router(h.res)

	w := h.hot.Load()
	mode, wrote, rng := hotMode(w), w&hotWrote != 0, h.rng

	if stamp := h.stamp.Load(); stamp != nil {
		// Handoff transfer (DESIGN.md §13): the lock leaves this client
		// entirely, so there is no downgrade to run — flush the dirty
		// data written under it, then hand it to the next owner
		// directly. Only if no peer path exists (or the send fails)
		// release through the server, which resolves the delegation and
		// activates the new owner itself.
		// Flush-vs-transfer ordering mirrors early grant (§III-A1): a
		// write-only successor (no implicit read) may own the lock while
		// this holder's dirty data is still in flight — its writes carry
		// a higher SN, so the extent cache resolves the overlap — which
		// keeps the flush off the successor's critical path. A reading
		// successor (PR/PW) must find the data on the data servers, so
		// for it the flush completes before the transfer. Either way the
		// flush obligation runs exactly once, here.
		deferFlush := !stamp.Mode.CanRead()
		if !deferFlush {
			c.flusher.FlushForCancel(ctx, h.res, rng, h.sn)
		}
		h.hot.Or(hotReleaseSent)
		var fwd []LockID
		if c.policy.ReaderFanout && stamp.Broadcast == nil {
			// Transferring toward a gathering writer: piggyback the
			// queued delegation acks on the part — the writer forwards
			// them on its next lock request, so reader acks cost no
			// server RPC (DESIGN.md §14).
			fwd = c.takeAcks(h.res)
		}
		sent := false
		if box := c.peer.Load(); box != nil && box.s != nil {
			if err := box.s.SendHandoff(ctx, stamp.NextOwner, h.res, stamp.NewLockID, fwd, stamp.Broadcast); err == nil {
				// Confirmation is the receiver's job: every lease
				// owner (the lead included) acks its own delegation on
				// install, so the server's reclaim entry stays live
				// until the lease has demonstrably landed.
				sent = true
				c.Stats.HandoffsSent.Add(1)
			}
		}
		if deferFlush {
			// The release fallback below must stay behind the flush:
			// a fully released write lock's data is on the data
			// servers by the time the server may grant readers.
			c.flusher.FlushForCancel(ctx, h.res, rng, h.sn)
		}
		if !sent {
			c.requeueAcks(h.res, fwd)
			conn.Release(ctx, h.res, h.id)
		}
		sh := c.shard(h.res)
		sh.mu.Lock()
		sh.remove(h)
		sh.mu.Unlock()
		close(h.released)
		c.clk.Wakeup(h.released)
		c.Stats.CancelNs.Add(c.clk.Since(start).Nanoseconds())
		return
	}

	flushed := false
	if c.policy.Conversion {
		switch d := Downgrade(mode, wrote); d {
		case NBW:
			if err := conn.Downgrade(ctx, h.res, h.id, NBW); err == nil {
				h.setMode(NBW)
			}
		case PR:
			// A PW held only by readers: flush first so readers granted
			// after the downgrade observe current data, then downgrade.
			c.flusher.FlushForCancel(ctx, h.res, rng, h.sn)
			flushed = true
			if err := conn.Downgrade(ctx, h.res, h.id, PR); err == nil {
				h.setMode(PR)
			}
		}
	}
	if !flushed {
		c.flusher.FlushForCancel(ctx, h.res, rng, h.sn)
	}
	// Once the release is in flight the lock must no longer be exported
	// for server recovery: its data flushing is complete (flush strictly
	// precedes release), so a recovering server that never hears about
	// it loses nothing — while restoring it after the release landed
	// would leave a zombie lock no one will ever release.
	h.hot.Or(hotReleaseSent)
	conn.Release(ctx, h.res, h.id)

	sh := c.shard(h.res)
	sh.mu.Lock()
	sh.remove(h)
	sh.mu.Unlock()
	close(h.released)
	c.clk.Wakeup(h.released)
	c.Stats.CancelNs.Add(c.clk.Since(start).Nanoseconds())
}

// CachedLocks returns the number of cached handles for a resource.
func (c *LockClient) CachedLocks(res ResourceID) int {
	sh := c.shard(res)
	g := sh.dom.Pin()
	n := len((*sh.snap.Load())[res])
	g.Unpin()
	return n
}

// Close cancels the client's lifecycle context, aborting background
// cancel goroutines mid-RPC. Call after ReleaseAll on a graceful path;
// alone it is a hard stop.
func (c *LockClient) Close() { c.cancelFn() }

// ReleaseAll cancels every idle cached lock and waits for the cancels to
// finish — the client's shutdown barrier, bounded by ctx. Handles with
// active holds are marked CANCELING and will cancel at their final
// Unlock.
func (c *LockClient) ReleaseAll(ctx context.Context) error {
	c.FlushHandoffAcks(ctx)
	var toStart, toWait []*Handle
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, list := range sh.cur() {
			for _, h := range list {
				for {
					w := h.hot.Load()
					if w&hotAbsorbed != 0 {
						break
					}
					nw := w&^hotStateMask | uint64(Canceling)<<hotStateShift
					start := hotHolds(w) == 0 && w&hotCanceling == 0
					if start {
						nw |= hotCanceling
					}
					if !h.hot.CompareAndSwap(w, nw) {
						continue
					}
					if start {
						toStart = append(toStart, h)
					}
					toWait = append(toWait, h)
					break
				}
			}
		}
		sh.mu.Unlock()
	}
	// The shard maps iterate in random order; fix the cancel spawn and
	// wait order for deterministic virtual runs.
	sort.Slice(toStart, func(i, j int) bool {
		return toStart[i].res < toStart[j].res ||
			(toStart[i].res == toStart[j].res && toStart[i].id < toStart[j].id)
	})
	sort.Slice(toWait, func(i, j int) bool {
		return toWait[i].res < toWait[j].res ||
			(toWait[i].res == toWait[j].res && toWait[i].id < toWait[j].id)
	})
	for _, h := range toStart {
		h := h
		c.clk.Go(func() { c.cancel(h) })
	}
	for _, h := range toWait {
		if err := c.waitReleased(ctx, h); err != nil {
			return err
		}
	}
	return nil
}
