package dlm

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/shard"
	"ccpfs/internal/wire"
)

// ServerConn is how a lock client reaches one lock server. The cluster
// layer implements it over RPC; unit tests implement it in-process.
// Every method honours its context: it is the per-call deadline that
// bounds the remote round trip.
type ServerConn interface {
	Lock(ctx context.Context, req Request) (Grant, error)
	Release(ctx context.Context, res ResourceID, id LockID) error
	Downgrade(ctx context.Context, res ResourceID, id LockID, m Mode) error
}

// Flusher is the client's data path: canceling a lock flushes the dirty
// data written under it (and under locks it absorbed) before release.
type Flusher interface {
	// FlushForCancel writes back all dirty data of res within rng whose
	// sequence number is at most sn, returning once it is durable on the
	// data server. ctx bounds the flush IO.
	FlushForCancel(ctx context.Context, res ResourceID, rng extent.Extent, sn extent.SN) error
}

// FlusherFunc adapts a function to Flusher.
type FlusherFunc func(context.Context, ResourceID, extent.Extent, extent.SN) error

// FlushForCancel implements Flusher.
func (f FlusherFunc) FlushForCancel(ctx context.Context, res ResourceID, rng extent.Extent, sn extent.SN) error {
	return f(ctx, res, rng, sn)
}

// Handle is a client's reference to a granted lock. Handles are obtained
// from Acquire and returned with Unlock; the client caches GRANTED
// handles for reuse.
type Handle struct {
	c   *LockClient
	res ResourceID
	id  LockID
	sn  extent.SN

	// Guarded by the shard mutex of res (all operations on one handle go
	// through the same shard, since shards are keyed by resource).
	mode        Mode
	rng         extent.Extent
	state       State
	holds       int
	wrote       bool
	canceling   bool
	releaseSent bool // the Release RPC has been (or is being) issued
	merged      *Handle
	released    chan struct{}
}

// Resource returns the lock's resource.
func (h *Handle) Resource() ResourceID { return h.res }

// ID returns the server-assigned lock ID.
func (h *Handle) ID() LockID { return h.id }

// SN returns the sequence number writes under this lock carry.
func (h *Handle) SN() extent.SN { return h.sn }

// Mode returns the current mode (it may change by conversion).
func (h *Handle) Mode() Mode {
	sh := h.c.shard(h.res)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return h.mode
}

// Range returns the granted (possibly expanded) range.
func (h *Handle) Range() extent.Extent {
	sh := h.c.shard(h.res)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return h.rng
}

// State returns the lock's client-side state.
func (h *Handle) State() State {
	sh := h.c.shard(h.res)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return h.state
}

// Released returns a channel closed once the lock is fully canceled
// (flushed and released).
func (h *Handle) Released() <-chan struct{} { return h.released }

// ClientStats counts client-side lock activity.
type ClientStats struct {
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	Revocations atomic.Int64
	Cancels     atomic.Int64
	LockWaitNs  atomic.Int64 // time blocked in Acquire RPCs
	CancelNs    atomic.Int64 // time spent flushing + releasing
}

// LockClient is the client half of the DLM: it caches grants, answers
// revocation callbacks, and runs the cancel path (downgrade → flush →
// release) of §III-D2.
//
// Concurrency: all per-resource state (cached handles, the acquire
// serialization mutex, racing-revocation bookkeeping) is sharded by
// resource ID, so the cached-lock fast path of two clients touching
// different stripes never shares a mutex. See DESIGN.md §6.
type LockClient struct {
	id      ClientID
	policy  Policy
	router  func(ResourceID) ServerConn
	flusher Flusher

	// baseCtx is the client's lifecycle: background cancel goroutines
	// (spawned by Unlock and OnRevoke) run under it so a closed client
	// does not leave headless flush RPCs behind.
	baseCtx  context.Context
	cancelFn context.CancelFunc

	shards [shard.Count]clientShard

	// Stats counts client-side lock activity.
	Stats ClientStats
}

// clientShard carries the lock state of the resources hashing to one
// shard. Every handle of a resource is guarded by its shard's mutex.
type clientShard struct {
	mu    sync.Mutex
	cache map[ResourceID][]*Handle
	acq   map[ResourceID]*sync.Mutex
	// pendingRevokes records revocation callbacks that arrived before
	// the corresponding grant reply was processed (the callback and the
	// reply race on different goroutines); the handle is created
	// directly in CANCELING state. tombstones records locks already
	// released or absorbed so late revocations for them are ignored.
	// Both are keyed by (resource, lock ID): lock IDs are unique only
	// within one server, and a client talks to many servers.
	pendingRevokes map[lockKey]bool
	tombstones     map[lockKey]bool
}

// lockKey globally identifies a lock: IDs are per-server, resources map
// to exactly one server.
type lockKey struct {
	res ResourceID
	id  LockID
}

// NewLockClient returns a lock client. router maps a resource to the
// connection of the server owning it; flusher is the data path used at
// cancel time.
func NewLockClient(id ClientID, policy Policy, router func(ResourceID) ServerConn, flusher Flusher) *LockClient {
	ctx, cancel := context.WithCancel(context.Background())
	c := &LockClient{
		id:       id,
		policy:   policy,
		router:   router,
		flusher:  flusher,
		baseCtx:  ctx,
		cancelFn: cancel,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cache = make(map[ResourceID][]*Handle)
		sh.acq = make(map[ResourceID]*sync.Mutex)
		sh.pendingRevokes = make(map[lockKey]bool)
		sh.tombstones = make(map[lockKey]bool)
	}
	return c
}

// shard returns the shard owning res.
func (c *LockClient) shard(res ResourceID) *clientShard {
	return &c.shards[shard.Of(uint64(res))]
}

// ID returns the client identifier.
func (c *LockClient) ID() ClientID { return c.id }

// Policy returns the client's policy.
func (c *LockClient) Policy() Policy { return c.policy }

func (c *LockClient) acquireMu(res ResourceID) *sync.Mutex {
	sh := c.shard(res)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m := sh.acq[res]
	if m == nil {
		m = &sync.Mutex{}
		sh.acq[res] = m
	}
	return m
}

// Acquire obtains a lock covering rng in a mode that covers need,
// reusing a cached grant when possible. It blocks until granted or ctx
// fires; a canceled wait withdraws the remote request.
func (c *LockClient) Acquire(ctx context.Context, res ResourceID, need Mode, rng extent.Extent) (*Handle, error) {
	return c.acquire(ctx, res, need, rng, nil)
}

// AcquireExtents obtains a lock over an exact non-contiguous extent set
// (DLM-datatype). rng must be the set's bounds.
func (c *LockClient) AcquireExtents(ctx context.Context, res ResourceID, need Mode, set extent.Set) (*Handle, error) {
	b, ok := set.Bounds()
	if !ok {
		return nil, wire.Errorf(wire.CodeInvalid, "dlm: empty extent set")
	}
	return c.acquire(ctx, res, need, b, set)
}

func (c *LockClient) acquire(ctx context.Context, res ResourceID, need Mode, rng extent.Extent, set extent.Set) (*Handle, error) {
	need = c.policy.MapMode(need)
	am := c.acquireMu(res)
	am.Lock()
	defer am.Unlock()

	sh := c.shard(res)
	sh.mu.Lock()
	if h := c.lookupLocked(sh, res, need, rng); h != nil {
		h.holds++
		if need.IsWrite() {
			h.wrote = true
		}
		sh.mu.Unlock()
		c.Stats.CacheHits.Add(1)
		return h, nil
	}
	sh.mu.Unlock()
	c.Stats.CacheMisses.Add(1)

	start := time.Now()
	g, err := c.router(res).Lock(ctx, Request{
		Resource: res,
		Client:   c.id,
		Mode:     need,
		Range:    rng,
		Extents:  set,
	})
	c.Stats.LockWaitNs.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return nil, err
	}

	h := &Handle{
		c:        c,
		res:      res,
		id:       g.LockID,
		sn:       g.SN,
		mode:     g.Mode,
		rng:      g.Range,
		state:    g.State,
		holds:    1,
		wrote:    need.IsWrite(),
		released: make(chan struct{}),
	}
	sh.mu.Lock()
	// A revocation callback may have raced ahead of this grant reply;
	// honour it now.
	if k := (lockKey{res, g.LockID}); sh.pendingRevokes[k] {
		delete(sh.pendingRevokes, k)
		h.state = Canceling
	}
	// Merge locks the server absorbed during upgrading: transfer their
	// active holds and dirty-write flags, and forward their handles.
	for _, aid := range g.Absorbed {
		old := sh.findByIDLocked(res, aid)
		if old == nil || old.canceling {
			continue
		}
		h.holds += old.holds
		if old.wrote {
			h.wrote = true
		}
		old.merged = h
		sh.removeLocked(old)
		// The absorbed lock will never be canceled on its own; its
		// users now hold h, and its released channel tracks h's.
		go func(old *Handle) {
			<-h.released
			close(old.released)
		}(old)
	}
	sh.cache[res] = append(sh.cache[res], h)
	sh.mu.Unlock()
	return h, nil
}

// lookupLocked finds a reusable cached handle. Datatype-style policies
// do not reuse cached locks. The caller holds sh.mu.
func (c *LockClient) lookupLocked(sh *clientShard, res ResourceID, need Mode, rng extent.Extent) *Handle {
	if !c.policy.CacheLocks {
		return nil
	}
	for _, h := range sh.cache[res] {
		if h.state == Granted && !h.canceling && h.merged == nil &&
			h.mode.Covers(need) && h.rng.Contains(rng) {
			return h
		}
	}
	return nil
}

func (sh *clientShard) findByIDLocked(res ResourceID, id LockID) *Handle {
	for _, h := range sh.cache[res] {
		if h.id == id {
			return h
		}
	}
	return nil
}

func (sh *clientShard) removeLocked(h *Handle) {
	k := lockKey{h.res, h.id}
	sh.tombstones[k] = true
	delete(sh.pendingRevokes, k)
	list := sh.cache[h.res]
	for i, x := range list {
		if x == h {
			sh.cache[h.res] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Unlock returns a handle after use. If the lock is CANCELING (or the
// policy does not cache locks) and this was the last user, the cancel
// path starts in the background: downgrade, flush, release.
func (c *LockClient) Unlock(h *Handle) {
	sh := c.shard(h.res)
	sh.mu.Lock()
	for h.merged != nil {
		h = h.merged
	}
	if h.holds <= 0 {
		sh.mu.Unlock()
		panic("dlm: Unlock without matching Acquire")
	}
	h.holds--
	if h.holds == 0 && !c.policy.CacheLocks && h.state == Granted {
		h.state = Canceling
	}
	start := h.holds == 0 && h.state == Canceling && !h.canceling
	if start {
		h.canceling = true
	}
	sh.mu.Unlock()
	if start {
		go c.cancel(h)
	}
}

// OnRevoke handles a server revocation callback: the lock enters
// CANCELING immediately (blocking reuse); returning from OnRevoke is the
// revocation reply. The cancel path runs once ongoing operations finish.
func (c *LockClient) OnRevoke(res ResourceID, id LockID) {
	c.Stats.Revocations.Add(1)
	sh := c.shard(res)
	sh.mu.Lock()
	h := sh.findByIDLocked(res, id)
	if h == nil {
		// Either the grant reply has not been processed yet (remember
		// the revocation for when it is) or the lock is already gone
		// (tombstoned: ignore). Acking both cases is correct.
		if k := (lockKey{res, id}); !sh.tombstones[k] {
			sh.pendingRevokes[k] = true
		}
		sh.mu.Unlock()
		return
	}
	if h.merged != nil {
		sh.mu.Unlock()
		return // absorbed into an upgraded lock; nothing to cancel
	}
	h.state = Canceling
	start := h.holds == 0 && !h.canceling
	if start {
		h.canceling = true
	}
	sh.mu.Unlock()
	if start {
		go c.cancel(h)
	}
}

// cancel runs the lock cancel path of §III-D2: automatic downgrade to
// the least restrictive mode (re-enabling early grant for waiters), data
// flushing tagged with the lock's SN, then release.
func (c *LockClient) cancel(h *Handle) {
	start := time.Now()
	c.Stats.Cancels.Add(1)
	ctx := c.baseCtx
	conn := c.router(h.res)
	sh := c.shard(h.res)

	sh.mu.Lock()
	mode, wrote, rng := h.mode, h.wrote, h.rng
	sh.mu.Unlock()

	flushed := false
	if c.policy.Conversion {
		switch d := Downgrade(mode, wrote); d {
		case NBW:
			if err := conn.Downgrade(ctx, h.res, h.id, NBW); err == nil {
				sh.mu.Lock()
				h.mode = NBW
				sh.mu.Unlock()
			}
		case PR:
			// A PW held only by readers: flush first so readers granted
			// after the downgrade observe current data, then downgrade.
			c.flusher.FlushForCancel(ctx, h.res, rng, h.sn)
			flushed = true
			if err := conn.Downgrade(ctx, h.res, h.id, PR); err == nil {
				sh.mu.Lock()
				h.mode = PR
				sh.mu.Unlock()
			}
		}
	}
	if !flushed {
		c.flusher.FlushForCancel(ctx, h.res, rng, h.sn)
	}
	// Once the release is in flight the lock must no longer be exported
	// for server recovery: its data flushing is complete (flush strictly
	// precedes release), so a recovering server that never hears about
	// it loses nothing — while restoring it after the release landed
	// would leave a zombie lock no one will ever release.
	sh.mu.Lock()
	h.releaseSent = true
	sh.mu.Unlock()
	conn.Release(ctx, h.res, h.id)

	sh.mu.Lock()
	sh.removeLocked(h)
	sh.mu.Unlock()
	close(h.released)
	c.Stats.CancelNs.Add(time.Since(start).Nanoseconds())
}

// CachedLocks returns the number of cached handles for a resource.
func (c *LockClient) CachedLocks(res ResourceID) int {
	sh := c.shard(res)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.cache[res])
}

// Close cancels the client's lifecycle context, aborting background
// cancel goroutines mid-RPC. Call after ReleaseAll on a graceful path;
// alone it is a hard stop.
func (c *LockClient) Close() { c.cancelFn() }

// ReleaseAll cancels every idle cached lock and waits for the cancels to
// finish — the client's shutdown barrier, bounded by ctx. Handles with
// active holds are marked CANCELING and will cancel at their final
// Unlock.
func (c *LockClient) ReleaseAll(ctx context.Context) error {
	var toStart, toWait []*Handle
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, list := range sh.cache {
			for _, h := range list {
				if h.merged != nil {
					continue
				}
				h.state = Canceling
				if h.holds > 0 {
					continue
				}
				if !h.canceling {
					h.canceling = true
					toStart = append(toStart, h)
				}
				toWait = append(toWait, h)
			}
		}
		sh.mu.Unlock()
	}
	for _, h := range toStart {
		go c.cancel(h)
	}
	for _, h := range toWait {
		select {
		case <-h.released:
		case <-ctx.Done():
			return wire.FromContext(ctx.Err())
		}
	}
	return nil
}
