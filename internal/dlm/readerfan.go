package dlm

import (
	"ccpfs/internal/extent"
)

// Reader fan-out (DESIGN.md §14). Client-to-client handoff (§13) cuts
// the server out of stable single-waiter write chains; this file
// extends it to reader cohorts. When a writer's revocation is owed to a
// run of k compatible shared-mode waiters, the server installs k
// delegated leases in one queue pass (one shared SN, stamped in queue
// order) and stamps the writer's revocation with a broadcast grant: the
// holder transfers to a lead reader, which propagates the remaining
// leases peer-to-peer down a bounded-fanout tree. The reverse edge —
// a writer displacing a delegated reader cohort — gathers the cohort's
// transfers directly and carries a pre-armed handback so the next
// fan-out needs no server round trip either. In steady state an entire
// write-then-fan-out cycle costs the server one lock RPC regardless of
// reader count.

// Lease names one pre-installed delegated read lease of a broadcast.
type Lease struct {
	Owner  ClientID
	LockID LockID
	SN     extent.SN
}

// BroadcastStamp is the fan-out payload attached to a handoff stamp or
// pre-armed in a gather grant: the ordered reader cohort (entry 0 is
// the lead), the common lease range and mode, and the propagation-tree
// fanout bound. Every lease shares one SN — reads do not advance the
// extent-cache clock — which is strictly greater than the displaced
// writer's SN, so cached extents written under the old lock order
// correctly before reads under the leases.
type BroadcastStamp struct {
	Mode   Mode
	Range  extent.Extent
	Fanout int
	Leases []Lease
}

// stampBroadcast attempts to retire a run of compatible shared-mode
// waiters headed by w, all of whose only conflict is the single lock c,
// by delegating c to the whole run at once: one delegated lease per
// member is installed under res.mu (queue order, one shared SN), the
// members' grant replies are marked Delegated, and the revocation
// appended for c carries a broadcast stamp naming the full cohort.
// Runs of one fall through to the plain single-successor stamp. Called
// from tryGrant with res.mu held; reports whether it stamped.
func (s *Server) stampBroadcast(res *resource, w *waiter, mode Mode, c *lock, fx *effects) bool {
	if !s.fanOn.Load() {
		return false
	}
	hn, ok := s.notifier.(HandoffNotifier)
	if !ok || hn == nil {
		return false
	}
	// The displaced lock must be a quietly GRANTED writer on another
	// client, and the head waiter a plain-range shared request.
	if mode.IsWrite() || !mode.CanRead() || !c.mode.IsWrite() {
		return false
	}
	if c.state != Granted || c.revokeSent || c.handedOff || c.succ != nil ||
		c.client == w.req.Client || len(c.set) > 0 || len(w.req.Extents) > 0 {
		return false
	}

	// Collect the run: w plus the immediately following live waiters
	// with the same shared mode whose only conflict is c. The run stops
	// at the first non-qualifying live waiter so FIFO fairness is
	// preserved — nothing is granted past a blocked request.
	run := []*waiter{w}
	idx := -1
	for i, q := range res.queue {
		if q == w {
			idx = i
			break
		}
	}
	for _, q := range res.queue[idx+1:] {
		if q.done {
			continue
		}
		if q.req.Mode != mode || len(q.req.Extents) > 0 || q.req.Client == c.client {
			break
		}
		cs := s.conflicts(res, q, q.req.Mode)
		if len(cs) != 1 || cs[0] != c {
			break
		}
		run = append(run, q)
	}
	if len(run) < 2 {
		return false
	}

	// From here on c behaves as CANCELING; the transfer's
	// flush-before-handoff obligation plus SN ordering make the lease
	// overlap as safe as an early grant.
	c.handedOff = true
	c.revokeSent = true

	// One common lease range: the union of the members' requests,
	// expanded once. Any granted lock overlapping the union overlaps
	// some member's range, and each member's only conflict is c, so the
	// union at the shared mode conflicts with nothing but c.
	rng := w.req.Range
	for _, q := range run[1:] {
		rng = rng.Union(q.req.Range)
	}
	rng.End = s.expandEnd(res, w, mode, rng)

	sn := res.nextSN // shared mode: no SN bump

	leases := make([]*lock, 0, len(run))
	now := s.clk.Now()
	for _, q := range run {
		l := &lock{
			id:        s.newLockID(),
			client:    q.req.Client,
			mode:      mode,
			rng:       rng,
			state:     Granted,
			sn:        sn,
			delegated: true,
		}
		leases = append(leases, l)
		res.granted.insert(l)
		res.grants++
		s.reclaim.register(s, res, c, l)
		s.Stats.Grants.Add(1)
		s.Stats.LeaseGrants.Add(1)
		s.Stats.GrantWaitHist.Record(now.Sub(q.enqAt).Nanoseconds())
		if q.hadConflict {
			s.Stats.RevocationWaitHist.Record(now.Sub(q.enqAt).Nanoseconds())
		}
		s.tracer.record(Event{Kind: EvGrant, Resource: res.id, Client: q.req.Client, Lock: l.id, Mode: mode, Range: rng, SN: sn})
	}
	leases[0].pred = c
	c.succ = leases[0]
	c.bcast = leases

	fx.revs = append(fx.revs, Revocation{
		Client:   c.client,
		Resource: res.id,
		Lock:     c.id,
		Handoff: &HandoffStamp{
			NextOwner: leases[0].client,
			NewLockID: leases[0].id,
			Mode:      mode,
			SN:        sn,
			MustFlush: c.mode.IsWrite(),
			Broadcast: s.broadcastStamp(mode, rng, leases),
		},
	})

	s.Stats.Handoffs.Add(1)
	s.Stats.Broadcasts.Add(1)
	for i, q := range run {
		res.retire(q)
		fx.sends = append(fx.sends, grantSend{w: q, r: lockResult{g: Grant{
			LockID:    leases[i].id,
			Mode:      mode,
			Range:     rng,
			SN:        sn,
			State:     Granted,
			Delegated: true,
		}}})
	}
	return true
}

// stampGather attempts to retire a write waiter whose conflicts are
// exactly a delegated-or-held reader cohort by gathering the cohort's
// transfers directly: a delegated write lock is installed that collects
// one client-to-client part per cohort member, each member's revocation
// is stamped toward it, and the grant pre-arms the NEXT fan-out — a
// fresh set of delegated leases for the same cohort that the writer
// owes a broadcast transfer to when it finishes. Called from tryGrant
// with res.mu held; reports whether it stamped.
func (s *Server) stampGather(res *resource, w *waiter, mode Mode, confs []*lock, fx *effects) bool {
	if !s.fanOn.Load() {
		return false
	}
	hn, ok := s.notifier.(HandoffNotifier)
	if !ok || hn == nil {
		return false
	}
	if !mode.IsWrite() || len(w.req.Extents) > 0 {
		return false
	}
	// Every conflict must be a quietly GRANTED plain-range shared lock
	// of one uniform mode, each on a client other than the writer's.
	// Delegated (not-yet-acked) leases qualify: their holders receive
	// the stamped revocation whenever the lease arrives, and their
	// transfers complete the gather just the same.
	shared := confs[0].mode
	for _, c := range confs {
		if c.mode.IsWrite() || c.mode != shared || c.state != Granted ||
			c.revokeSent || c.handedOff || c.succ != nil ||
			c.client == w.req.Client || len(c.set) > 0 {
			return false
		}
	}

	cohort := make([]*lock, len(confs))
	copy(cohort, confs)
	for _, c := range cohort {
		c.handedOff = true
		c.revokeSent = true
	}

	rng := w.req.Range
	rng.End = s.expandEnd(res, w, mode, rng)

	sn := res.nextSN
	res.nextSN++

	wl := &lock{
		id:         s.newLockID(),
		client:     w.req.Client,
		mode:       mode,
		rng:        rng,
		state:      Granted,
		sn:         sn,
		delegated:  true,
		preds:      cohort,
		gatherLeft: len(cohort),
	}
	for _, c := range cohort {
		c.succ = wl
	}
	res.granted.insert(wl)
	res.grants++
	s.reclaim.register(s, res, cohort[0], wl)

	// Pre-arm the handback: one delegated lease per cohort member at
	// the post-write SN. The writer transfers to the lead when it
	// finishes; until then the reclaimer treats these as provider-live
	// and only nudges.
	hbSN := res.nextSN
	leases := make([]*lock, 0, len(cohort))
	for _, c := range cohort {
		l := &lock{
			id:        s.newLockID(),
			client:    c.client,
			mode:      shared,
			rng:       rng,
			state:     Granted,
			sn:        hbSN,
			delegated: true,
		}
		leases = append(leases, l)
		res.granted.insert(l)
		res.grants++
		s.reclaim.register(s, res, wl, l)
		s.Stats.LeaseGrants.Add(1)
	}
	leases[0].pred = wl
	wl.succ = leases[0]
	wl.bcast = leases

	for _, c := range cohort {
		fx.revs = append(fx.revs, Revocation{
			Client:   c.client,
			Resource: res.id,
			Lock:     c.id,
			Handoff: &HandoffStamp{
				NextOwner: w.req.Client,
				NewLockID: wl.id,
				Mode:      mode,
				SN:        sn,
				MustFlush: c.mode.IsWrite(),
			},
		})
	}

	now := s.clk.Now()
	s.Stats.Handoffs.Add(1)
	s.Stats.Gathers.Add(1)
	s.Stats.Grants.Add(1)
	s.Stats.GrantWaitHist.Record(now.Sub(w.enqAt).Nanoseconds())
	if w.hadConflict {
		s.Stats.RevocationWaitHist.Record(now.Sub(w.enqAt).Nanoseconds())
	}
	s.tracer.record(Event{Kind: EvGrant, Resource: res.id, Client: w.req.Client, Lock: wl.id, Mode: mode, Range: rng, SN: sn})

	res.retire(w)
	fx.sends = append(fx.sends, grantSend{w: w, r: lockResult{g: Grant{
		LockID:      wl.id,
		Mode:        mode,
		Range:       rng,
		SN:          sn,
		State:       Granted,
		Delegated:   true,
		GatherParts: len(cohort),
		HandBack:    s.broadcastStamp(shared, rng, leases),
	}}})
	return true
}

// broadcastStamp builds the wire-facing cohort description for a set of
// installed leases.
func (s *Server) broadcastStamp(mode Mode, rng extent.Extent, leases []*lock) *BroadcastStamp {
	b := &BroadcastStamp{
		Mode:   mode,
		Range:  rng,
		Fanout: s.policy.FanoutWidth(),
		Leases: make([]Lease, 0, len(leases)),
	}
	for _, l := range leases {
		b.Leases = append(b.Leases, Lease{Owner: l.client, LockID: l.id, SN: l.sn})
	}
	return b
}

// HandoffAckBatch records a batch of delegation confirmations that
// arrived in one RPC: the whole batch costs one lock op. Unknown or
// already-confirmed locks are ignored, as for HandoffAck.
func (s *Server) HandoffAckBatch(resID ResourceID, ids []LockID) {
	res := s.lookup(resID)
	if res == nil {
		return
	}
	s.Stats.LockOps.Add(1)
	for _, id := range ids {
		s.ackDelegation(res, id)
	}
}
