package dlm

import (
	"context"
	"sort"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/sim"
	"ccpfs/internal/wire"
)

// Client side of the handoff fast path (DESIGN.md §13). The holder of
// a stamped revocation transfers the lock to the next owner over the
// PeerSender; the recipient blocks its delegated acquire on the
// transfer's arrival (OnHandoff) and confirms the delegation back to
// the server asynchronously — piggybacked on its next lock request
// for the resource when one comes soon enough, or flushed standalone
// by a short timer otherwise.

// ackFlushDelay bounds how long a delegation ack may sit queued before
// it is flushed standalone: long enough that a busy exchange pattern
// always piggybacks — on the next lock request, or on the next peer
// transfer when a fan rotation keeps the client off the server
// entirely — short enough that the server's reclaimer (which nudges at
// half the reclaim interval) never fires for a healthy client. A
// quarter of the reclaim interval sits between those bounds at every
// interval the policy picks.
func (c *LockClient) ackFlushDelay() time.Duration {
	iv := c.policy.HandoffReclaimInterval
	if iv <= 0 {
		iv = DefaultHandoffTimeout
	}
	return iv / 4
}

// PeerSender is the client-to-client transport for handoff transfers.
// SendHandoff delivers "lock id on res is now yours" to the peer and
// returns once the peer accepted it; an error makes the holder fall
// back to releasing through the server. acks piggybacks delegation
// confirmations for the receiver to forward to the server on its next
// lock request, and bcast, when non-nil, turns the transfer into a
// broadcast: the receiver owns the lead lease and propagates the rest
// of the cohort (DESIGN.md §14). Both are nil for plain transfers.
type PeerSender interface {
	SendHandoff(ctx context.Context, peer ClientID, res ResourceID, id LockID, acks []LockID, bcast *BroadcastStamp) error
}

// PeerSenderFunc adapts a function to PeerSender.
type PeerSenderFunc func(ctx context.Context, peer ClientID, res ResourceID, id LockID, acks []LockID, bcast *BroadcastStamp) error

// SendHandoff implements PeerSender.
func (f PeerSenderFunc) SendHandoff(ctx context.Context, peer ClientID, res ResourceID, id LockID, acks []LockID, bcast *BroadcastStamp) error {
	return f(ctx, peer, res, id, acks, bcast)
}

// LeaseSender is the optional PeerSender extension the propagation
// tree requires: SendLease ships a cohort subtree to the peer owning
// its first lease. Without it, only the lead receives its lease
// peer-to-peer and the server's reclaimer resolves the rest.
type LeaseSender interface {
	SendLease(ctx context.Context, peer ClientID, res ResourceID, grant *BroadcastStamp) error
}

// HandoffAcker is the optional ServerConn extension for standalone
// delegation acks. Connections that do not implement it leave acks
// queued for piggybacking on the next lock request.
type HandoffAcker interface {
	HandoffAck(ctx context.Context, res ResourceID, id LockID) error
}

// HandoffAckBatcher is the further extension that confirms several
// delegations of one resource in a single RPC — the flush path prefers
// it when more than one ack is queued (a propagation-tree cohort
// confirms this way when no lock request drains the acks first).
type HandoffAckBatcher interface {
	HandoffAckBatch(ctx context.Context, res ResourceID, ids []LockID) error
}

// peerSenderBox wraps the PeerSender interface for atomic publication.
type peerSenderBox struct{ s PeerSender }

// SetPeerSender installs (or, with nil, removes) the client-to-client
// transport. Without one, stamped cancels fall back to releasing
// through the server.
func (c *LockClient) SetPeerSender(s PeerSender) {
	if s == nil {
		c.peer.Store(nil)
		return
	}
	c.peer.Store(&peerSenderBox{s: s})
}

// transferWaiter parks a delegated acquire until enough transfer
// parts arrive: one for a plain handoff, one per cohort member for a
// gather. A server-sent activation (final) completes the wait
// outright — the server already resolved whatever parts were missing.
type transferWaiter struct {
	need int
	ch   chan struct{}
	// The delegated grant being waited on, retained so Export can
	// report the promised lock during crash takeover: the waiter has no
	// Handle yet, and without the record the successor master would
	// never learn the lock exists.
	mode Mode
	rng  extent.Extent
	sn   extent.SN
}

// finalParts marks a server-sent activation in the arrival count: it
// satisfies any part requirement.
const finalParts = int(1) << 30

// OnHandoff records the arrival of a transferred lock — from the
// previous holder over the peer transport, or as a server-sent
// activation after a fallback release or reclaim. Duplicates (the two
// paths racing) are idempotent: a transfer for a lock already
// installed or already gone is dropped.
func (c *LockClient) OnHandoff(res ResourceID, id LockID) {
	c.OnHandoffMsg(res, id, true, nil, nil)
}

// OnHandoffMsg is the full-form transfer arrival: final marks a
// server-sent activation (completes a multi-part gather outright,
// where a peer part counts once); acks carries delegation
// confirmations a transferring reader piggybacked for this client to
// forward to the server; bcast, when non-nil, makes this a broadcast
// transfer — the lead lease plus the cohort to propagate.
func (c *LockClient) OnHandoffMsg(res ResourceID, id LockID, final bool, acks []LockID, bcast *BroadcastStamp) {
	if len(acks) > 0 {
		c.requeueAcks(res, acks)
	}
	if bcast != nil && c.policy.ReaderFanout {
		c.receiveCohort(res, bcast)
		return
	}
	k := lockKey{res, id}
	sh := c.shard(res)
	sh.mu.Lock()
	if tw, ok := sh.pendingHandoffs[k]; ok {
		if final {
			tw.need = 0
		} else {
			tw.need--
		}
		if tw.need <= 0 {
			delete(sh.pendingHandoffs, k)
			close(tw.ch)
			c.clk.Wakeup(tw.ch)
		}
	} else if !sh.tombstones[k] && findByID(sh.cur()[res], id) == nil {
		if final {
			sh.arrivedHandoffs[k] = finalParts
		} else {
			sh.arrivedHandoffs[k]++
		}
	}
	sh.mu.Unlock()
}

// waitTransfer blocks a delegated acquire until its lock's transfer
// arrives — all parts of it, for a gather. Parts may already have
// landed (they raced ahead of the grant reply); otherwise park on a
// channel OnHandoffMsg closes once the count is met. cached reports
// that a broadcast lease install raced ahead of the grant reply and
// the lock is already in the cache — the caller must adopt that
// handle instead of building its own.
func (c *LockClient) waitTransfer(ctx context.Context, res ResourceID, g Grant) (cached bool, err error) {
	parts := g.GatherParts
	if parts < 1 {
		parts = 1
	}
	k := lockKey{res, g.LockID}
	sh := c.shard(res)
	sh.mu.Lock()
	if findByID(sh.cur()[res], g.LockID) != nil {
		sh.mu.Unlock()
		return true, nil
	}
	got := sh.arrivedHandoffs[k]
	delete(sh.arrivedHandoffs, k)
	if got >= parts {
		sh.mu.Unlock()
		return false, nil
	}
	tw := &transferWaiter{
		need: parts - got,
		ch:   make(chan struct{}),
		mode: g.Mode,
		rng:  g.Range,
		sn:   g.SN,
	}
	sh.pendingHandoffs[k] = tw
	sh.mu.Unlock()

	if c.waitTransferCh(ctx, tw) {
		return false, nil
	}
	sh.mu.Lock()
	if _, ok := sh.pendingHandoffs[k]; ok {
		delete(sh.pendingHandoffs, k)
		sh.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return false, wire.FromContext(err)
		}
		return false, wire.ErrShuttingDown
	}
	sh.mu.Unlock()
	// The transfer raced the abort and won; use the lock.
	return false, nil
}

// waitTransferCh waits for the transfer channel to close, reporting
// whether the transfer completed (false means ctx or the client's
// lifecycle fired first). Under a virtual clock it parks on the channel
// — OnHandoffMsg wakes it at close — checking cancellation at each
// wake; a run that exits mid-wait falls back to the real select.
func (c *LockClient) waitTransferCh(ctx context.Context, tw *transferWaiter) bool {
	if v := c.clk.V(); v != nil {
		for {
			select {
			case <-tw.ch:
				return true
			default:
			}
			if ctx.Err() != nil || c.baseCtx.Err() != nil {
				return false
			}
			if v.WaitOn(tw.ch) == sim.WakeExited {
				break
			}
		}
	}
	select {
	case <-tw.ch:
		return true
	case <-ctx.Done():
	case <-c.baseCtx.Done():
	}
	return false
}

// queueAck queues a delegation confirmation for the server mastering
// res and arms the shard's flush timer if no lock request drains it
// first.
func (c *LockClient) queueAck(res ResourceID, id LockID) {
	sh := c.shard(res)
	sh.mu.Lock()
	sh.pendingAcks[res] = append(sh.pendingAcks[res], id)
	if sh.ackTimer == nil {
		sh.ackTimer = c.clk.AfterFunc(c.ackFlushDelay(), func() { c.flushShardAcks(sh) })
	}
	sh.mu.Unlock()
}

// takeAcks pops the queued acks for res, to piggyback on a lock
// request. The caller must re-queue them if the request fails. When
// the take drains the shard, the flush timer is disarmed: leaving it
// running would fire it mid-way into the next batch's window and flush
// acks standalone that the next request or transfer was about to carry
// for free.
func (c *LockClient) takeAcks(res ResourceID) []LockID {
	sh := c.shard(res)
	sh.mu.Lock()
	acks := sh.pendingAcks[res]
	if len(acks) > 0 {
		delete(sh.pendingAcks, res)
	}
	if len(sh.pendingAcks) == 0 && sh.ackTimer != nil {
		sh.ackTimer.Stop()
		sh.ackTimer = nil
	}
	sh.mu.Unlock()
	return acks
}

// requeueAcks returns acks taken by a lock request that failed, or
// whose connection cannot send them standalone; they wait for the next
// lock request (no timer re-arm — a connection without a HandoffAck
// path would otherwise spin the timer forever). Duplicate delivery is
// harmless: the server ignores acks for already-confirmed delegations.
func (c *LockClient) requeueAcks(res ResourceID, acks []LockID) {
	if len(acks) == 0 {
		return
	}
	sh := c.shard(res)
	sh.mu.Lock()
	sh.pendingAcks[res] = append(sh.pendingAcks[res], acks...)
	sh.mu.Unlock()
}

// flushShardAcks sends every queued ack in the shard standalone. Acks
// whose connection has no HandoffAck path stay queued for the next
// lock request; the server's reclaim timer covers the pathological
// case where none ever comes.
func (c *LockClient) flushShardAcks(sh *clientShard) {
	sh.mu.Lock()
	pending := sh.pendingAcks
	sh.pendingAcks = make(map[ResourceID][]LockID)
	sh.ackTimer = nil
	sh.mu.Unlock()
	for _, res := range sortedAckKeys(pending) {
		ids := pending[res]
		conn := c.router(res)
		if hb, ok := conn.(HandoffAckBatcher); ok && len(ids) > 1 {
			hb.HandoffAckBatch(c.baseCtx, res, ids)
			continue
		}
		ha, ok := conn.(HandoffAcker)
		if !ok {
			c.requeueAcks(res, ids)
			continue
		}
		for _, id := range ids {
			ha.HandoffAck(c.baseCtx, res, id)
		}
	}
}

// sortedAckKeys fixes the flush order of a pending-ack map: its
// iteration order is random, and each flush is an RPC whose timing
// deterministic virtual runs must not depend on.
func sortedAckKeys(pending map[ResourceID][]LockID) []ResourceID {
	keys := make([]ResourceID, 0, len(pending))
	for res := range pending {
		keys = append(keys, res)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// FlushHandoffAcks synchronously drains every queued delegation ack —
// the shutdown barrier runs it so the server confirms outstanding
// delegations before the client goes quiet.
func (c *LockClient) FlushHandoffAcks(ctx context.Context) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		pending := sh.pendingAcks
		sh.pendingAcks = make(map[ResourceID][]LockID)
		if sh.ackTimer != nil {
			sh.ackTimer.Stop()
			sh.ackTimer = nil
		}
		sh.mu.Unlock()
		for _, res := range sortedAckKeys(pending) {
			ids := pending[res]
			conn := c.router(res)
			if hb, ok := conn.(HandoffAckBatcher); ok && len(ids) > 1 {
				hb.HandoffAckBatch(ctx, res, ids)
				continue
			}
			if ha, ok := conn.(HandoffAcker); ok {
				for _, id := range ids {
					ha.HandoffAck(ctx, res, id)
				}
			}
		}
	}
}
