package dlm

import (
	"context"
	"time"

	"ccpfs/internal/wire"
)

// Client side of the handoff fast path (DESIGN.md §13). The holder of
// a stamped revocation transfers the lock to the next owner over the
// PeerSender; the recipient blocks its delegated acquire on the
// transfer's arrival (OnHandoff) and confirms the delegation back to
// the server asynchronously — piggybacked on its next lock request
// for the resource when one comes soon enough, or flushed standalone
// by a short timer otherwise.

// handoffAckDelay bounds how long a delegation ack may sit queued
// before it is flushed standalone: long enough that a busy ping-pong
// pattern always piggybacks, short enough that the server's reclaim
// timer never fires for a healthy client.
const handoffAckDelay = 20 * time.Millisecond

// PeerSender is the client-to-client transport for handoff transfers.
// SendHandoff delivers "lock id on res is now yours" to the peer and
// returns once the peer accepted it; an error makes the holder fall
// back to releasing through the server.
type PeerSender interface {
	SendHandoff(ctx context.Context, peer ClientID, res ResourceID, id LockID) error
}

// PeerSenderFunc adapts a function to PeerSender.
type PeerSenderFunc func(ctx context.Context, peer ClientID, res ResourceID, id LockID) error

// SendHandoff implements PeerSender.
func (f PeerSenderFunc) SendHandoff(ctx context.Context, peer ClientID, res ResourceID, id LockID) error {
	return f(ctx, peer, res, id)
}

// HandoffAcker is the optional ServerConn extension for standalone
// delegation acks. Connections that do not implement it leave acks
// queued for piggybacking on the next lock request.
type HandoffAcker interface {
	HandoffAck(ctx context.Context, res ResourceID, id LockID) error
}

// peerSenderBox wraps the PeerSender interface for atomic publication.
type peerSenderBox struct{ s PeerSender }

// SetPeerSender installs (or, with nil, removes) the client-to-client
// transport. Without one, stamped cancels fall back to releasing
// through the server.
func (c *LockClient) SetPeerSender(s PeerSender) {
	if s == nil {
		c.peer.Store(nil)
		return
	}
	c.peer.Store(&peerSenderBox{s: s})
}

// OnHandoff records the arrival of a transferred lock — from the
// previous holder over the peer transport, or as a server-sent
// activation after a fallback release or reclaim. Duplicates (the two
// paths racing) are idempotent: a transfer for a lock already
// installed or already gone is dropped.
func (c *LockClient) OnHandoff(res ResourceID, id LockID) {
	k := lockKey{res, id}
	sh := c.shard(res)
	sh.mu.Lock()
	if ch, ok := sh.pendingHandoffs[k]; ok {
		delete(sh.pendingHandoffs, k)
		close(ch)
	} else if !sh.tombstones[k] && findByID(sh.cur()[res], id) == nil {
		sh.arrivedHandoffs[k] = true
	}
	sh.mu.Unlock()
}

// waitTransfer blocks a delegated acquire until its lock's transfer
// arrives. The transfer may already have landed (it raced ahead of the
// grant reply); otherwise park on a channel OnHandoff closes.
func (c *LockClient) waitTransfer(ctx context.Context, res ResourceID, id LockID) error {
	k := lockKey{res, id}
	sh := c.shard(res)
	sh.mu.Lock()
	if sh.arrivedHandoffs[k] {
		delete(sh.arrivedHandoffs, k)
		sh.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	sh.pendingHandoffs[k] = ch
	sh.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
	case <-c.baseCtx.Done():
	}
	sh.mu.Lock()
	if _, ok := sh.pendingHandoffs[k]; ok {
		delete(sh.pendingHandoffs, k)
		sh.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return wire.FromContext(err)
		}
		return wire.ErrShuttingDown
	}
	sh.mu.Unlock()
	// The transfer raced the abort and won; use the lock.
	return nil
}

// queueAck queues a delegation confirmation for the server mastering
// res and arms the shard's flush timer if no lock request drains it
// first.
func (c *LockClient) queueAck(res ResourceID, id LockID) {
	sh := c.shard(res)
	sh.mu.Lock()
	sh.pendingAcks[res] = append(sh.pendingAcks[res], id)
	if sh.ackTimer == nil {
		sh.ackTimer = time.AfterFunc(handoffAckDelay, func() { c.flushShardAcks(sh) })
	}
	sh.mu.Unlock()
}

// takeAcks pops the queued acks for res, to piggyback on a lock
// request. The caller must re-queue them if the request fails.
func (c *LockClient) takeAcks(res ResourceID) []LockID {
	sh := c.shard(res)
	sh.mu.Lock()
	acks := sh.pendingAcks[res]
	if len(acks) > 0 {
		delete(sh.pendingAcks, res)
	}
	sh.mu.Unlock()
	return acks
}

// requeueAcks returns acks taken by a lock request that failed, or
// whose connection cannot send them standalone; they wait for the next
// lock request (no timer re-arm — a connection without a HandoffAck
// path would otherwise spin the timer forever). Duplicate delivery is
// harmless: the server ignores acks for already-confirmed delegations.
func (c *LockClient) requeueAcks(res ResourceID, acks []LockID) {
	if len(acks) == 0 {
		return
	}
	sh := c.shard(res)
	sh.mu.Lock()
	sh.pendingAcks[res] = append(sh.pendingAcks[res], acks...)
	sh.mu.Unlock()
}

// flushShardAcks sends every queued ack in the shard standalone. Acks
// whose connection has no HandoffAck path stay queued for the next
// lock request; the server's reclaim timer covers the pathological
// case where none ever comes.
func (c *LockClient) flushShardAcks(sh *clientShard) {
	sh.mu.Lock()
	pending := sh.pendingAcks
	sh.pendingAcks = make(map[ResourceID][]LockID)
	sh.ackTimer = nil
	sh.mu.Unlock()
	for res, ids := range pending {
		ha, ok := c.router(res).(HandoffAcker)
		if !ok {
			c.requeueAcks(res, ids)
			continue
		}
		for _, id := range ids {
			ha.HandoffAck(c.baseCtx, res, id)
		}
	}
}

// FlushHandoffAcks synchronously drains every queued delegation ack —
// the shutdown barrier runs it so the server confirms outstanding
// delegations before the client goes quiet.
func (c *LockClient) FlushHandoffAcks(ctx context.Context) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		pending := sh.pendingAcks
		sh.pendingAcks = make(map[ResourceID][]LockID)
		if sh.ackTimer != nil {
			sh.ackTimer.Stop()
			sh.ackTimer = nil
		}
		sh.mu.Unlock()
		for res, ids := range pending {
			if ha, ok := c.router(res).(HandoffAcker); ok {
				for _, id := range ids {
					ha.HandoffAck(ctx, res, id)
				}
			}
		}
	}
}
