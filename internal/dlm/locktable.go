package dlm

import "ccpfs/internal/extent"

// lockTable holds one resource's granted set, indexed three ways
// (DESIGN.md §9):
//
//   - byID: LockID → *lock, so find/Release/RevokeAck/Downgrade are
//     O(1) instead of scanning a slice;
//   - tree: an interval tree over each lock's (expanded) range, so
//     conflict detection, mSN queries, and expansion probes touch only
//     the locks whose ranges can overlap the request — O(log n + k);
//   - list: a plain slice for full walks (invariant checks, stats) and
//     for the linear-scan baseline the benchmarks and property tests
//     compare the index against.
//
// A lock's range is immutable once granted (conversion replaces the
// lock rather than growing it), so the tree key never goes stale. Locks
// carrying a non-contiguous extent set are indexed by their bounding
// range — a strict superset of the set, which Request validation
// enforces — and callers refine tree hits with the lock's precise
// overlap test (overlapsReq/overlapsExtent).
type lockTable struct {
	list []*lock
	byID map[LockID]*lock
	tree extent.ITree[*lock]
}

func (t *lockTable) len() int { return len(t.list) }

func (t *lockTable) get(id LockID) *lock {
	return t.byID[id]
}

func (t *lockTable) insert(l *lock) {
	if t.byID == nil {
		t.byID = make(map[LockID]*lock)
	}
	l.tblIdx = len(t.list)
	t.list = append(t.list, l)
	t.byID[l.id] = l
	t.tree.Insert(l.rng, uint64(l.id), l)
}

// remove drops l from every index. The slice uses swap-remove, so list
// order is arbitrary — nothing in the engine depends on grant order of
// the granted set, only the queue is ordered.
func (t *lockTable) remove(l *lock) {
	last := len(t.list) - 1
	if i := l.tblIdx; i != last {
		moved := t.list[last]
		t.list[i] = moved
		moved.tblIdx = i
	}
	t.list[last] = nil
	t.list = t.list[:last]
	delete(t.byID, l.id)
	t.tree.Delete(l.rng.Start, uint64(l.id))
}

// visitCandidates calls fn for every granted lock that may overlap e:
// with the index on, only locks whose bounding range overlaps e (the
// caller still applies its precise overlap predicate); with the index
// off, every granted lock, reproducing the original linear scan.
// Returning false stops the walk.
func (t *lockTable) visitCandidates(indexed bool, e extent.Extent, fn func(*lock) bool) {
	if indexed {
		t.tree.VisitOverlap(e, func(_ extent.Extent, _ uint64, l *lock) bool {
			return fn(l)
		})
		return
	}
	for _, l := range t.list {
		if !fn(l) {
			return
		}
	}
}
