package dlm

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccpfs/internal/extent"
)

// mpscStressNotifier checks the revoker's two delivery guarantees from
// the receiving side: per-client callbacks never overlap, and the
// revocations of one (client, producer) pair arrive in enqueue order.
// Producer and sequence number ride in the LockID.
type mpscStressNotifier struct {
	t         *testing.T
	active    []atomic.Int32
	delivered atomic.Int64
	mu        sync.Mutex
	lastSeq   map[[2]int]int
}

func (n *mpscStressNotifier) Revoke(_ context.Context, rv Revocation) {
	n.RevokeBatch(nil, rv.Client, []Revocation{rv})
}

func (n *mpscStressNotifier) RevokeBatch(_ context.Context, client ClientID, revs []Revocation) {
	if n.active[client].Add(1) != 1 {
		n.t.Errorf("client %d: concurrent deliveries overlap", client)
	}
	for _, rv := range revs {
		p := int(rv.Lock) / 1_000_000
		seq := int(rv.Lock) % 1_000_000
		n.mu.Lock()
		k := [2]int{int(client), p}
		if last, ok := n.lastSeq[k]; ok && seq <= last {
			n.t.Errorf("client %d producer %d: seq %d after %d (order lost)", client, p, seq, last)
		}
		n.lastSeq[k] = seq
		n.mu.Unlock()
	}
	n.delivered.Add(int64(len(revs)))
	n.active[client].Add(-1)
}

// TestRevokerMPSCStress hammers the revoker's lock-free enqueue from
// many producers at once: per-client MPSC pushes racing the schedule
// CAS, lane workers spawning and retiring, and the post-delivery
// recheck that must never strand a node. Every enqueued revocation must
// be delivered exactly once, in per-producer order, with per-client
// deliveries serialized, and the backlog gauge must converge to zero.
// Run with -race.
func TestRevokerMPSCStress(t *testing.T) {
	const (
		producers   = 8
		nclients    = 16
		perProducer = 400
	)
	s := NewServer(SeqDLM(), nil)
	s.SetRevokeWorkers(4)
	n := &mpscStressNotifier{
		t:       t,
		active:  make([]atomic.Int32, nclients+1),
		lastSeq: make(map[[2]int]int),
	}
	s.SetNotifier(n)

	var wg sync.WaitGroup
	total := int64(0)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		total += perProducer
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 1))
			seq := make([]int, nclients+1)
			sent := 0
			for sent < perProducer {
				// A scan's worth of revocations: 1–3 clients, one each.
				batch := make([]Revocation, 0, 3)
				for k := 0; k < 1+rng.Intn(3) && sent < perProducer; k++ {
					c := ClientID(1 + rng.Intn(nclients))
					batch = append(batch, Revocation{
						Client:   c,
						Resource: 1,
						Lock:     LockID(p*1_000_000 + seq[c]),
					})
					seq[c]++
					sent++
				}
				s.revoker.enqueue(batch)
			}
		}(p)
	}
	wg.Wait()

	waitFor(t, "all revocations delivered", func() bool {
		return n.delivered.Load() == total
	})
	waitFor(t, "revoke backlog drained", func() bool {
		return s.Stats.RevokeQueue.Load() == 0
	})
	if got := n.delivered.Load(); got != total {
		t.Fatalf("delivered = %d, want %d", got, total)
	}
}

// TestClientCacheRCUChurn races the lock-free cached-hit path against
// everything that invalidates it: revocations (another client's
// conflicting PW), absorption (PR/NBW mixes upgrading into PW), and
// the cancel path recycling snapshot maps through the epoch domain.
// Lost holds, double cancels, or leaked handles surface as a panic, a
// hung ReleaseAll, or a race report. Run with -race.
func TestClientCacheRCUChurn(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	c1, c2 := h.client(1), h.client(2)
	const resources = 4

	stop := make(chan struct{})
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(seed int64) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := ResourceID(1 + rng.Intn(resources))
				mode := NBW
				if rng.Intn(3) == 0 {
					mode = PR // PR/NBW mixes force upgrades + absorption
				}
				hd, err := c1.Acquire(context.Background(), res, mode, extent.New(0, 1<<20))
				if err != nil {
					t.Error(err)
					return
				}
				c1.Unlock(hd)
			}
		}(int64(w) + 1)
	}

	// The antagonist: conflicting PW grants revoke c1's cached locks,
	// driving revoke → cancel → release → re-acquire churn.
	for i := 0; i < 120; i++ {
		hd, err := c2.Acquire(context.Background(), ResourceID(1+i%resources), PW, extent.New(0, 1<<20))
		if err != nil {
			t.Fatal(err)
		}
		c2.Unlock(hd)
	}
	close(stop)
	workers.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c1.ReleaseAll(ctx); err != nil {
		t.Fatalf("c1.ReleaseAll: %v (leaked hold or lost cancel)", err)
	}
	if err := c2.ReleaseAll(ctx); err != nil {
		t.Fatalf("c2.ReleaseAll: %v", err)
	}
	for r := 1; r <= resources; r++ {
		if n := c1.CachedLocks(ResourceID(r)); n != 0 {
			t.Fatalf("resource %d: %d handles cached after ReleaseAll", r, n)
		}
	}
}

// TestClientCachedHitAllocFree locks in the fast path's allocation
// profile: a cached-lock hit (epoch pin, snapshot load, hot-word CAS)
// and its Unlock must not allocate.
func TestClientCachedHitAllocFree(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)
	hd := mustAcquire(t, c, 1, NBW, extent.New(0, 1<<20))
	c.Unlock(hd)

	n := testing.AllocsPerRun(500, func() {
		g, err := c.Acquire(context.Background(), 1, NBW, extent.New(0, 4096))
		if err != nil {
			t.Fatal(err)
		}
		c.Unlock(g)
	})
	if n != 0 {
		t.Fatalf("cached hit allocates %.1f times per op, want 0", n)
	}
}
