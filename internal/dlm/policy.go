package dlm

import "time"

// ExpandRule selects how a lock server expands the range of a lock it is
// about to grant (lock range expanding, §II-A). Only the end of a range
// is ever expanded, per the Lustre convention the paper adheres to.
type ExpandRule uint8

// Expansion rules.
const (
	// ExpandGreedy expands the end to the largest compatible address
	// (typically EOF) — SeqDLM and DLM-basic.
	ExpandGreedy ExpandRule = iota
	// ExpandLustre expands greedily until the resource has granted more
	// than LustreLockThreshold locks, then caps expansion at
	// LustreCapBytes past the requested start — the DLM-Lustre
	// optimization that reduces conflicts under high contention.
	ExpandLustre
	// ExpandNone grants exactly the requested range — DLM-datatype.
	ExpandNone
)

// Policy selects which DLM the lock-server engine implements. The paper
// implements all four inside ccPFS so that every comparison isolates the
// lock protocol; this reproduction does the same.
type Policy struct {
	// Name identifies the policy in logs and benchmark output.
	Name string
	// EarlyGrant enables granting a conflicting write lock as soon as
	// the previous holder's lock is CANCELING (§III-A1). It is implied
	// by the SeqDLM LCM; disabling it forces normal grant even for
	// NBW/BW-vs-CANCELING-NBW conflicts (used in ablations).
	EarlyGrant bool
	// EarlyRevocation enables piggybacking revocation on the grant reply
	// when the granted lock already conflicts with a queued request and
	// its range could not be expanded (§III-A2).
	EarlyRevocation bool
	// Conversion enables automatic lock conversion: server-side
	// upgrading on same-client conflicts and client-side downgrading at
	// cancel time (§III-D).
	Conversion bool
	// Legacy restricts the mode set to LR/LW (traditional baselines).
	Legacy bool
	// Expand selects the range expansion rule.
	Expand ExpandRule
	// LustreCapBytes is the expansion cap for ExpandLustre (32 MB in the
	// paper). Scaled-down clusters scale it together with file sizes.
	LustreCapBytes int64
	// LustreLockThreshold is the grant count beyond which ExpandLustre
	// stops greedy expansion (32 in the paper).
	LustreLockThreshold int
	// CacheLocks controls whether clients cache grants for reuse.
	// DLM-datatype acquires exact-range locks per atomic operation and
	// releases them after use.
	CacheLocks bool
	// Handoff enables client-to-client lock handoff (DESIGN.md §13):
	// when a revocation's conflict queue is headed by a single waiter,
	// the server stamps the revoke with a delegation grant and the
	// holder transfers the lock directly to the next owner, cutting the
	// server out of stable conflict patterns. Off by default — the
	// revoke path is then byte-identical to the pre-handoff engine.
	Handoff bool
	// ReaderFanout extends handoff to reader cohorts (DESIGN.md §14):
	// a writer's revocation owed to a run of k compatible shared-mode
	// waiters is stamped with a broadcast grant, the holder transfers to
	// a lead reader, and the lead propagates read leases peer-to-peer
	// down a bounded-fanout tree; the reverse edge gathers the cohort
	// back to a waiting writer with a pre-armed handback. Implies the
	// handoff transport. Off by default — the grant/revoke path is then
	// byte-identical to the single-successor handoff engine.
	ReaderFanout bool
	// ReaderFanoutWidth bounds the propagation tree's fan-out (children
	// per node). Zero means the default (2).
	ReaderFanoutWidth int
	// HandoffReclaimInterval is the deadline after which the server
	// force-resolves an unacked delegation (nudging first at half the
	// interval). Zero means DefaultHandoffTimeout (250 ms); tests and
	// experiments tighten it instead of sleeping real time.
	HandoffReclaimInterval time.Duration
}

// FanoutWidth returns the effective propagation-tree fan-out bound.
func (p Policy) FanoutWidth() int {
	if p.ReaderFanoutWidth > 0 {
		return p.ReaderFanoutWidth
	}
	return 2
}

// SeqDLM returns the paper's proposed policy.
func SeqDLM() Policy {
	return Policy{
		Name:            "SeqDLM",
		EarlyGrant:      true,
		EarlyRevocation: true,
		Conversion:      true,
		Expand:          ExpandGreedy,
		CacheLocks:      true,
	}
}

// Basic returns the general traditional DLM of §II-A: normal grant only,
// greedy range expansion, legacy modes.
func Basic() Policy {
	return Policy{
		Name:       "DLM-basic",
		Legacy:     true,
		Expand:     ExpandGreedy,
		CacheLocks: true,
	}
}

// Lustre returns the Lustre-special DLM: traditional semantics with
// expansion capped at 32 MB once more than 32 locks have been granted.
func Lustre() Policy {
	return Policy{
		Name:                "DLM-Lustre",
		Legacy:              true,
		Expand:              ExpandLustre,
		LustreCapBytes:      32 << 20,
		LustreLockThreshold: 32,
		CacheLocks:          true,
	}
}

// Datatype returns the datatype-locking baseline (Ching et al.):
// non-contiguous lock ranges described exactly, no expansion, locks
// released after each atomic operation.
func Datatype() Policy {
	return Policy{
		Name:   "DLM-datatype",
		Legacy: true,
		Expand: ExpandNone,
	}
}

// MapMode converts the mode an operation selected (via SelectMode) to
// the mode this policy grants.
func (p Policy) MapMode(m Mode) Mode {
	if p.Legacy {
		return LegacyMode(m)
	}
	return m
}
