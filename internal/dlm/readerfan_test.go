package dlm

import (
	"context"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
)

// The reader fan-out tests reuse the handoff harness (hoHarness) with a
// peer sender that also carries lease propagations, exercising the full
// DESIGN.md §14 machinery: broadcast formation over a queued reader
// run, peer-to-peer propagation trees, cohort gathers back to a writer,
// reclaim of lost tree edges, and freeze/migration with broadcast
// delegations outstanding.

// rfSender is the peer transport of a fan-out harness client: handoff
// transfers plus lease propagations, each droppable to simulate loss.
type rfSender struct{ h *hoHarness }

func (s rfSender) SendHandoff(_ context.Context, peer ClientID, res ResourceID, id LockID, acks []LockID, bcast *BroadcastStamp) error {
	s.h.mu.Lock()
	drop := s.h.dropTransfers
	s.h.mu.Unlock()
	if drop {
		return nil // accepted, then lost in flight
	}
	s.h.clients[peer].OnHandoffMsg(res, id, false, acks, bcast)
	return nil
}

func (s rfSender) SendLease(_ context.Context, peer ClientID, res ResourceID, grant *BroadcastStamp) error {
	s.h.mu.Lock()
	drop := s.h.dropLeases
	s.h.mu.Unlock()
	if drop {
		return nil // accepted, then lost in flight
	}
	s.h.clients[peer].OnLeasePropagate(res, grant)
	return nil
}

func newRFHarness(t *testing.T, policy Policy, nclients int) *hoHarness {
	t.Helper()
	h := &hoHarness{
		flusher: &recFlusher{},
		clients: make(map[ClientID]*LockClient),
	}
	h.srv = NewServer(policy, nil)
	h.srv.SetNotifier(hoNotifier{h})
	router := func(ResourceID) ServerConn { return hoConn{h.srv} }
	for i := 1; i <= nclients; i++ {
		id := ClientID(i)
		c := NewLockClient(id, policy, router, h.flusher)
		c.SetPeerSender(rfSender{h})
		h.clients[id] = c
	}
	t.Cleanup(func() {
		for _, c := range h.clients {
			c.Close()
		}
		h.srv.Shutdown()
	})
	return h
}

func fanPolicy() Policy {
	p := SeqDLM()
	p.Handoff = true
	p.ReaderFanout = true
	return p
}

// formBroadcast drives the harness into a broadcast delegation with
// nReaders reader acquires parked on it: client 1 holds the write lock,
// client 2 queues behind it (and is handed the lock), the readers
// (clients 3..) queue behind client 2's fresh lock, and the delegation
// ack scan stamps the broadcast. It returns client 2's held handle —
// unlocking it releases the broadcast transfer — and the channel the
// reader goroutines deliver their handles on.
func formBroadcast(t *testing.T, h *hoHarness, res ResourceID, rng extent.Extent, nReaders int) (*Handle, chan *Handle) {
	t.Helper()
	ctx := context.Background()

	w1 := mustAcquire(t, h.client(1), res, NBW, rng)

	w2ch := make(chan *Handle, 1)
	go func() {
		hd, err := h.client(2).Acquire(ctx, res, NBW, rng)
		if err != nil {
			t.Errorf("writer 2 acquire: %v", err)
			close(w2ch)
			return
		}
		w2ch <- hd
	}()
	waitFor(t, "writer 2 delegation stamped", func() bool { return h.srv.Stats.Handoffs.Load() == 1 })

	readers := make(chan *Handle, nReaders)
	for i := 0; i < nReaders; i++ {
		cl := h.client(3 + i)
		go func() {
			hd, err := cl.Acquire(ctx, res, PR, rng)
			if err != nil {
				t.Errorf("reader acquire: %v", err)
				close(readers)
				return
			}
			readers <- hd
		}()
	}
	waitFor(t, "readers queued", func() bool { return h.srv.QueueLen(res) == nReaders })

	// Hand the lock to writer 2, then confirm its delegation: the ack
	// scan finds the queued reader run behind a quiet fresh lock and
	// stamps the broadcast.
	h.client(1).Unlock(w1)
	w2, ok := <-w2ch
	if !ok {
		t.FailNow()
	}
	h.client(2).FlushHandoffAcks(ctx)
	waitFor(t, "broadcast stamped", func() bool { return h.srv.Stats.Broadcasts.Load() == 1 })
	return w2, readers
}

// TestReaderFanBroadcastTree: a queued run of readers behind one writer
// is granted as a single broadcast delegation, the displaced writer
// transfers the cohort to the lead reader, and the lead propagates the
// remaining leases peer-to-peer — every reader ends with the same SN,
// above the writer's.
func TestReaderFanBroadcastTree(t *testing.T) {
	const nReaders = 4
	h := newRFHarness(t, fanPolicy(), 2+nReaders)
	res := ResourceID(31)
	rng := extent.New(0, 4096)

	w2, readers := formBroadcast(t, h, res, rng, nReaders)
	wSN := w2.SN()
	h.client(2).Unlock(w2) // releases the broadcast transfer

	var got []*Handle
	for i := 0; i < nReaders; i++ {
		hd, ok := <-readers
		if !ok {
			t.FailNow()
		}
		got = append(got, hd)
	}
	leaseSN := got[0].SN()
	for _, hd := range got {
		if hd.SN() != leaseSN {
			t.Fatalf("cohort SNs differ: %d vs %d", hd.SN(), leaseSN)
		}
		if hd.SN() <= wSN {
			t.Fatalf("lease SN %d not above displaced writer's %d", hd.SN(), wSN)
		}
	}
	if got := h.srv.Stats.LeaseGrants.Load(); got != nReaders {
		t.Fatalf("LeaseGrants = %d, want %d", got, nReaders)
	}
	// The tree carried every non-lead lease peer-to-peer: no reclaim,
	// and at least one propagation hop was sent.
	sent := int64(0)
	for _, c := range h.clients {
		sent += c.Stats.LeasesSent.Load()
	}
	if sent == 0 {
		t.Fatal("no lease propagations sent — the tree never fanned out")
	}
	if rec := h.srv.Stats.HandoffReclaims.Load(); rec != 0 {
		t.Fatalf("HandoffReclaims = %d, want 0", rec)
	}

	for i, hd := range got {
		h.client(3 + i).Unlock(hd)
	}
	for _, c := range h.clients {
		c.FlushHandoffAcks(context.Background())
	}
	waitFor(t, "cohort confirmed and chain retired", func() bool {
		return h.srv.GrantedCount(res) == nReaders
	})
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestReaderFanGatherToWriter: the reverse edge — a writer conflicting
// with a whole delegated reader cohort gathers it in one stamp; each
// reader transfers its part directly to the writer, and the grant
// pre-arms the next broadcast. The gather costs the server exactly the
// one lock RPC.
func TestReaderFanGatherToWriter(t *testing.T) {
	const nReaders = 4
	h := newRFHarness(t, fanPolicy(), 2+nReaders)
	res := ResourceID(33)
	rng := extent.New(0, 4096)

	w2, readers := formBroadcast(t, h, res, rng, nReaders)
	h.client(2).Unlock(w2)
	var leaseSN extent.SN
	for i := 0; i < nReaders; i++ {
		hd, ok := <-readers
		if !ok {
			t.FailNow()
		}
		leaseSN = hd.SN()
		h.client(3 + i%nReaders).Unlock(hd) // leases stay cached
	}

	// Drain the cohort's delegation acks so their standalone RPCs cannot
	// land inside the measured window below.
	for _, c := range h.clients {
		c.FlushHandoffAcks(context.Background())
	}

	opsBefore := h.srv.Stats.LockOps.Load()
	w := mustAcquire(t, h.client(1), res, NBW, rng)
	if got := h.srv.Stats.Gathers.Load(); got != 1 {
		t.Fatalf("Gathers = %d, want 1", got)
	}
	if w.SN() < leaseSN {
		t.Fatalf("gathered writer SN %d below cohort SN %d", w.SN(), leaseSN)
	}
	if ops := h.srv.Stats.LockOps.Load() - opsBefore; ops != 1 {
		t.Fatalf("gather cost %d server ops, want 1 (the lock RPC alone)", ops)
	}
	// The grant pre-armed the handback cohort: one lease per reader.
	if got := h.srv.Stats.LeaseGrants.Load(); got != 2*nReaders {
		t.Fatalf("LeaseGrants = %d after gather, want %d", got, 2*nReaders)
	}
	// Unlocking runs the pre-armed broadcast back to the readers; wait
	// for the handback leases to land so shutdown sees a quiet system.
	// (Formation leases completing parked acquires do not count as
	// LeasesRecv, so measure the handback as a delta.)
	recvd := func() int64 {
		var n int64
		for i := 0; i < nReaders; i++ {
			n += h.client(3 + i).Stats.LeasesRecv.Load()
		}
		return n
	}
	base := recvd()
	h.client(1).Unlock(w)
	waitFor(t, "handback leases landed", func() bool { return recvd() == base+nReaders })
	for _, c := range h.clients {
		c.FlushHandoffAcks(context.Background())
	}
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestReaderFanRotation is the steady-state pattern of the readfan
// experiment: one writer and a reader cohort alternate rounds. After
// warm-up every rotation runs gather → write → broadcast with the
// writer's single lock RPC as the only server operation, so total
// LockOps stays near one per round instead of one per reader per round.
func TestReaderFanRotation(t *testing.T) {
	const nReaders = 4
	const rounds = 10
	p := fanPolicy()
	p.HandoffReclaimInterval = 2 * time.Second // keep reclaim out of slow -race runs
	h := newRFHarness(t, p, 1+nReaders)
	res := ResourceID(35)
	rng := extent.New(0, 4096)
	ctx := context.Background()

	var lastW extent.SN
	for r := 0; r < rounds; r++ {
		w := mustAcquire(t, h.client(1), res, NBW, rng)
		if r > 0 && w.SN() <= lastW {
			t.Fatalf("round %d: writer SN %d not above previous %d", r, w.SN(), lastW)
		}
		lastW = w.SN()
		h.client(1).Unlock(w)

		var wg sync.WaitGroup
		var mu sync.Mutex
		var leases []*Handle
		for i := 0; i < nReaders; i++ {
			cl := h.client(2 + i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				hd, err := cl.Acquire(ctx, res, PR, rng)
				if err != nil {
					t.Errorf("round %d reader acquire: %v", r, err)
					return
				}
				mu.Lock()
				leases = append(leases, hd)
				mu.Unlock()
			}()
		}
		wg.Wait()
		if len(leases) != nReaders {
			t.FailNow()
		}
		for _, hd := range leases {
			if hd.SN() < lastW {
				t.Fatalf("round %d: reader SN %d below writer SN %d", r, hd.SN(), lastW)
			}
			hd.c.Unlock(hd)
		}
	}

	if got := h.srv.Stats.Gathers.Load(); got < rounds/2 {
		t.Fatalf("Gathers = %d over %d rounds, want at least %d", got, rounds, rounds/2)
	}
	// Each gather pre-arms a handback lease per reader; the rotation
	// must actually run on those leases, not on server grants.
	if got := h.srv.Stats.LeaseGrants.Load(); got < int64(nReaders*rounds/2) {
		t.Fatalf("LeaseGrants = %d over %d rounds, want at least %d", got, rounds, nReaders*rounds/2)
	}
	// The server-RPC economy: the server path costs at least one lock
	// RPC per reader per round; delegation keeps the total near one per
	// round (writer locks plus round-one setup and stray timer acks).
	serverPath := int64(rounds * nReaders)
	if ops := h.srv.Stats.LockOps.Load(); ops >= serverPath {
		t.Fatalf("LockOps = %d, not below the %d of the server path", ops, serverPath)
	}
	for _, c := range h.clients {
		c.FlushHandoffAcks(ctx)
	}
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestReaderFanReclaimLostPropagation: the lead receives the broadcast
// but every propagation edge is lost, so the non-lead leases sit
// delegated until the reclaimer force-resolves them — the parked reader
// acquires then complete through server-sent activations.
func TestReaderFanReclaimLostPropagation(t *testing.T) {
	const nReaders = 4
	h := newRFHarness(t, fanPolicy(), 2+nReaders)
	h.srv.SetHandoffTimeout(20 * time.Millisecond)
	res := ResourceID(37)
	rng := extent.New(0, 4096)

	w2, readers := formBroadcast(t, h, res, rng, nReaders)
	h.mu.Lock()
	h.dropLeases = true
	h.mu.Unlock()
	h.client(2).Unlock(w2)

	for i := 0; i < nReaders; i++ {
		if _, ok := <-readers; !ok {
			t.FailNow()
		}
	}
	if got := h.srv.Stats.HandoffReclaims.Load(); got == 0 {
		t.Fatal("HandoffReclaims = 0, want reclaims for the lost tree edges")
	}
	for _, c := range h.clients {
		c.FlushHandoffAcks(context.Background())
	}
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestReaderFanFreezeResolvesBroadcast: freezing a slot for migration
// with a whole broadcast delegation outstanding (the cohort transfer
// was lost in flight) must force-resolve every lease: the parked reader
// acquires complete, the export carries the cohort as plain granted
// locks, and the sequencer stays monotonic at the importing master.
func TestReaderFanFreezeResolvesBroadcast(t *testing.T) {
	const nReaders = 3
	h := newRFHarness(t, fanPolicy(), 2+nReaders)
	h.srv.SetHandoffTimeout(time.Hour) // the freeze, not the reclaimer, must resolve

	res := ridInSlot(t, 29, 0)
	h.srv.SetSlots(1, []partition.Slot{29})
	rng := extent.New(0, 4096)

	w2, readers := formBroadcast(t, h, res, rng, nReaders)
	h.mu.Lock()
	h.dropTransfers = true // the broadcast transfer to the lead is lost
	h.mu.Unlock()
	h.client(2).Unlock(w2)
	// The cancel has accepted the transfer obligation once Unlock
	// returns and the handoff counter moves; the message itself is lost.
	waitFor(t, "broadcast transfer sent", func() bool {
		return h.client(2).Stats.HandoffsSent.Load() == 1
	})

	exp, err := h.srv.FreezeExportSlot(29)
	if err != nil {
		t.Fatal(err)
	}
	var maxSN extent.SN
	for i := 0; i < nReaders; i++ {
		hd, ok := <-readers
		if !ok {
			t.FailNow()
		}
		if hd.SN() <= w2.SN() {
			t.Fatalf("resolved lease SN %d not above writer SN %d", hd.SN(), w2.SN())
		}
		if hd.SN() > maxSN {
			maxSN = hd.SN()
		}
	}
	if len(exp.Resources) != 1 || len(exp.Resources[0].Locks) != nReaders {
		t.Fatalf("export = %+v, want one resource with %d locks", exp.Resources, nReaders)
	}

	dst := newBareEngine(fanPolicy())
	if err := dst.InstallSlot(exp, 2); err != nil {
		t.Fatal(err)
	}
	// A compatible shared grant at the importing master must continue
	// the sequencer above the imported cohort.
	g, err := dst.Lock(context.Background(), Request{
		Resource: res, Client: 9, Mode: PR, Range: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.SN < maxSN {
		t.Fatalf("post-install SN %d below cohort SN %d", g.SN, maxSN)
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderFanDisabledByDefault: no stock policy enables the fan-out
// path, and with it off a writer/reader rotation must never stamp a
// broadcast or gather — the engine behaves exactly as before.
func TestReaderFanDisabledByDefault(t *testing.T) {
	for _, p := range []Policy{SeqDLM(), Basic(), Lustre(), Datatype()} {
		if p.ReaderFanout {
			t.Fatalf("policy %q enables ReaderFanout by default", p.Name)
		}
	}
	h := newRFHarness(t, SeqDLM(), 4)
	res := ResourceID(41)
	rng := extent.New(0, 4096)
	for round := 0; round < 3; round++ {
		w := mustAcquire(t, h.client(1), res, NBW, rng)
		h.client(1).Unlock(w)
		for i := 0; i < 3; i++ {
			r := mustAcquire(t, h.client(2+i), res, PR, rng)
			h.client(2 + i).Unlock(r)
		}
	}
	if got := h.srv.Stats.Broadcasts.Load(); got != 0 {
		t.Fatalf("Broadcasts = %d with ReaderFanout off, want 0", got)
	}
	if got := h.srv.Stats.Gathers.Load(); got != 0 {
		t.Fatalf("Gathers = %d with ReaderFanout off, want 0", got)
	}
	if got := h.srv.Stats.LeaseGrants.Load(); got != 0 {
		t.Fatalf("LeaseGrants = %d with ReaderFanout off, want 0", got)
	}
}
