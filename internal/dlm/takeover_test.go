package dlm

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
)

// takeoverHarness wires two clients against a switchable server: the
// router follows an atomic pointer, so "killing" the master and failing
// over to a successor is one store. Stamped revocations, peer
// transfers, and server-sent activations all route like the RPC stack
// would.
type takeoverHarness struct {
	active  atomic.Pointer[Server]
	flusher *recFlusher
	clients map[ClientID]*LockClient
}

type takeoverNotifier struct{ h *takeoverHarness }

func (n takeoverNotifier) Revoke(_ context.Context, rv Revocation) {
	if c, ok := n.h.clients[rv.Client]; ok {
		c.OnRevokeStamped(rv.Resource, rv.Lock, rv.Handoff)
	}
	n.h.active.Load().RevokeAck(rv.Resource, rv.Lock)
}

func (n takeoverNotifier) Handoff(_ context.Context, client ClientID, res ResourceID, id LockID) {
	if c, ok := n.h.clients[client]; ok {
		c.OnHandoff(res, id)
	}
}

type takeoverConn struct{ h *takeoverHarness }

func (d takeoverConn) Lock(ctx context.Context, req Request) (Grant, error) {
	return d.h.active.Load().Lock(ctx, req)
}
func (d takeoverConn) Release(_ context.Context, res ResourceID, id LockID) error {
	d.h.active.Load().Release(res, id)
	return nil
}
func (d takeoverConn) Downgrade(_ context.Context, res ResourceID, id LockID, m Mode) error {
	return d.h.active.Load().Downgrade(res, id, m)
}
func (d takeoverConn) HandoffAck(_ context.Context, res ResourceID, id LockID) error {
	d.h.active.Load().HandoffAck(res, id)
	return nil
}

func allSlots() []partition.Slot {
	all := make([]partition.Slot, partition.NumSlots)
	for i := range all {
		all[i] = partition.Slot(i)
	}
	return all
}

// TestTakeoverResolvesInFlightTransfer kills a master mid-handoff: the
// holder has a stamped revocation (it owes the lock to a successor) but
// is still using the lock, and the successor is parked waiting for a
// transfer that cannot start. The taking-over master must drop the
// holder's handed-off lock from the replay (its holder will never
// release it through a server) and force-resolve the successor's
// delegated grant with an activation — without either, the successor
// hangs forever and the resource is wedged at the new master.
func TestTakeoverResolvesInFlightTransfer(t *testing.T) {
	policy := handoffPolicy()
	h := &takeoverHarness{
		flusher: &recFlusher{},
		clients: make(map[ClientID]*LockClient),
	}
	srv1 := NewServer(policy, nil)
	srv1.SetNotifier(takeoverNotifier{h})
	srv1.SetSlots(1, allSlots())
	h.active.Store(srv1)
	router := func(ResourceID) ServerConn { return takeoverConn{h} }
	for i := 1; i <= 2; i++ {
		id := ClientID(i)
		c := NewLockClient(id, policy, router, h.flusher)
		c.SetPeerSender(PeerSenderFunc(func(_ context.Context, peer ClientID, res ResourceID, lid LockID, acks []LockID, bcast *BroadcastStamp) error {
			h.clients[peer].OnHandoffMsg(res, lid, false, acks, bcast)
			return nil
		}))
		h.clients[id] = c
	}
	a, b := h.clients[1], h.clients[2]
	t.Cleanup(func() {
		a.Close()
		b.Close()
		h.active.Load().Shutdown()
	})

	res := ResourceID(7)
	rng := extent.New(0, 4096)
	ctx := context.Background()

	// A holds the lock with an active user; B's conflicting request gets
	// a stamped delegation, so A owes B a transfer it cannot send while
	// its user is live, and B parks on the transfer's arrival.
	ha := mustAcquire(t, a, res, NBW, rng)
	bDone := make(chan error, 1)
	var hbBox atomic.Pointer[Handle]
	go func() {
		hb, err := b.Acquire(ctx, res, NBW, rng)
		if err == nil {
			hbBox.Store(hb)
		}
		bDone <- err
	}()

	slots := allSlots()
	var records []LockRecord
	waitFor(t, "handoff stamped with transfer outstanding", func() bool {
		records = append(a.ExportSlots(slots), b.ExportSlots(slots)...)
		var handed, delegated bool
		for _, r := range records {
			handed = handed || r.HandedOff
			delegated = delegated || r.Delegated
		}
		return handed && delegated
	})

	// Kill the master and fail over: a successor adopts every slot from
	// the clients' replayed records.
	srv2 := NewServer(policy, nil)
	srv2.SetNotifier(takeoverNotifier{h})
	h.active.Store(srv2)
	if err := srv2.AdoptSlots(2, slots, records); err != nil {
		t.Fatalf("AdoptSlots: %v", err)
	}

	// The activation must complete B's parked acquire even though A's
	// transfer never arrives (A is still holding).
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("successor acquire failed after takeover: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("successor still parked after takeover: delegation not force-resolved")
	}

	// Exactly B's lock was restored: A's handed-off lock is a zombie the
	// holder will never release and must not be replayed.
	if got := srv2.GrantedCount(res); got != 1 {
		t.Fatalf("GrantedCount = %d after adoption, want 1 (successor only)", got)
	}
	if err := srv2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after adoption: %v", err)
	}

	// A's late transfer (sent when its user finishes) is a duplicate the
	// successor drops; both sides then release cleanly through srv2 and
	// the resource makes progress.
	a.Unlock(ha)
	hb := hbBox.Load()
	snB := hb.SN()
	b.Unlock(hb)
	if err := a.ReleaseAll(ctx); err != nil {
		t.Fatalf("a.ReleaseAll: %v", err)
	}
	if err := b.ReleaseAll(ctx); err != nil {
		t.Fatalf("b.ReleaseAll: %v", err)
	}
	h2 := mustAcquire(t, a, res, NBW, rng)
	if h2.SN() <= snB {
		t.Fatalf("post-takeover SN %d not above successor's %d", h2.SN(), snB)
	}
	a.Unlock(h2)
	if err := srv2.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
}
