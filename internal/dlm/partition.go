package dlm

import (
	"fmt"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
	"ccpfs/internal/wire"
)

// This file is the engine side of the partition map layer (ROADMAP
// item 1): a server masters only the hash slots it holds leases on,
// refuses everything else with wire.ErrNotOwner (the redirect signal
// clients refresh their partition map on), and can freeze, export, and
// install a slot's entire lock table for online migration or
// replay-based failover. See DESIGN.md §12.

// slotView is the server's immutable view of the slots it masters,
// published behind an atomic pointer (the RCU idiom from DESIGN.md
// §11): readers load it wait-free on every Lock, writers replace it
// wholesale. A nil view means the engine is unpartitioned and masters
// the whole lock space — the single-server mode every pre-partition
// test and benchmark runs in.
type slotView struct {
	epoch  uint64
	owned  [partition.NumSlots]bool
	frozen [partition.NumSlots]bool
}

// CheckMaster reports whether this engine currently masters id's slot:
// nil when it does, wire.ErrNotOwner when the slot is unowned, frozen
// for migration, or the server's lease has expired. RPC handlers call
// it before mutating lock state on behalf of a client.
func (s *Server) CheckMaster(id ResourceID) error {
	v := s.slots.Load()
	if v == nil {
		return nil
	}
	slot := partition.SlotOf(uint64(id))
	if !v.owned[slot] || v.frozen[slot] {
		return wire.ErrNotOwner
	}
	if exp := s.leaseExpiry.Load(); exp != 0 && s.clk.Now().UnixNano() > exp {
		return wire.ErrNotOwner
	}
	return nil
}

// PartitionEpoch returns the epoch of the engine's slot view, or 0
// when unpartitioned.
func (s *Server) PartitionEpoch() uint64 {
	if v := s.slots.Load(); v != nil {
		return v.epoch
	}
	return 0
}

// OwnedSlots returns the slots the engine currently masters (frozen
// ones excluded), or nil when unpartitioned.
func (s *Server) OwnedSlots() []partition.Slot {
	v := s.slots.Load()
	if v == nil {
		return nil
	}
	var out []partition.Slot
	for i := range v.owned {
		if v.owned[i] && !v.frozen[i] {
			out = append(out, partition.Slot(i))
		}
	}
	return out
}

// SetLeaseExpiry bounds the engine's mastership in time: past t every
// slot is refused even if still marked owned, so a server whose lease
// daemon stalls can never grant concurrently with its successor. Zero
// t removes the bound.
func (s *Server) SetLeaseExpiry(t time.Time) {
	if t.IsZero() {
		s.leaseExpiry.Store(0)
		return
	}
	s.leaseExpiry.Store(t.UnixNano())
}

// SetSlots replaces the engine's slot view: the engine masters exactly
// the given slots at the given epoch. Slots dropped relative to the
// previous view (a lease that lapsed and was taken over) are purged —
// their waiters fail with wire.ErrNotOwner so clients re-request at
// the successor, and their lock tables are dropped because the
// successor rebuilds them from client replay; keeping stale copies
// here could only serve split-brain grants.
func (s *Server) SetSlots(epoch uint64, owned []partition.Slot) {
	v := &slotView{epoch: epoch}
	for _, sl := range owned {
		if sl >= 0 && sl < partition.NumSlots {
			v.owned[sl] = true
		}
	}
	prev := s.slots.Swap(v)
	var dropped []partition.Slot
	if prev != nil {
		for i := range prev.owned {
			if prev.owned[i] && !v.owned[i] {
				dropped = append(dropped, partition.Slot(i))
			}
		}
	}
	for _, sl := range dropped {
		s.purgeSlot(sl)
	}
	s.Stats.SlotsOwned.Set(int64(len(owned)))
}

// addSlots extends the current view with newly claimed slots at a new
// epoch (takeover or migration install).
func (s *Server) addSlots(epoch uint64, slots []partition.Slot) {
	for {
		prev := s.slots.Load()
		v := &slotView{epoch: epoch}
		if prev != nil {
			*v = *prev
			v.epoch = epoch
		}
		n := 0
		for _, sl := range slots {
			if sl >= 0 && sl < partition.NumSlots {
				v.owned[sl] = true
				v.frozen[sl] = false
			}
		}
		for i := range v.owned {
			if v.owned[i] {
				n++
			}
		}
		if s.slots.CompareAndSwap(prev, v) {
			s.Stats.SlotsOwned.Set(int64(n))
			return
		}
	}
}

// purgeSlot fails every waiter in a slot with wire.ErrNotOwner and
// drops the slot's resources from the shard maps.
func (s *Server) purgeSlot(sl partition.Slot) {
	for _, res := range s.takeSlotResources(sl) {
		res.mu.Lock()
		s.failWaiters(res)
		res.mu.Unlock()
	}
}

// failWaiters fails every live queue entry with wire.ErrNotOwner.
// Callers hold res.mu.
func (s *Server) failWaiters(res *resource) {
	for _, w := range res.queue {
		if !w.done {
			res.retire(w)
			w.ch <- lockResult{err: wire.ErrNotOwner}
			s.clk.Wakeup(w.ch)
		}
	}
	res.queue = res.queue[:0]
}

// takeSlotResources removes and returns every resource in a slot from
// the shard maps. Goroutines already holding a resource pointer keep a
// valid (now orphaned) object; the engine-side re-check under res.mu
// in Lock and the data server's handler gate keep them from mutating
// state that has already been exported.
func (s *Server) takeSlotResources(sl partition.Slot) []*resource {
	var out []*resource
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, r := range sh.resources {
			if partition.SlotOf(uint64(id)) == sl {
				out = append(out, r)
				delete(sh.resources, id)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// ResourceExport carries one resource's transferable state: its
// unreleased locks, its sequencer position, and its lifetime grant
// count (which drives the DLM-Lustre expansion threshold). Queued
// waiters are NOT transferred: they are failed with wire.ErrNotOwner
// at freeze time and the clients transparently re-request at the new
// master — a redirect, which the migration window makes
// indistinguishable from a slow grant.
type ResourceExport struct {
	Resource ResourceID
	NextSN   extent.SN
	Grants   uint64
	Locks    []LockRecord
}

// SlotExport is a frozen slot's full lock table, the unit of transfer
// for online migration (and, serialized as wire.SlotState, its wire
// form).
type SlotExport struct {
	Slot      partition.Slot
	Epoch     uint64 // the exporter's view epoch at freeze time
	Resources []ResourceExport
}

// FreezeExportSlot freezes one owned slot and exports its lock tables
// for transfer: new requests for the slot fail with wire.ErrNotOwner
// (clients retry), queued waiters are redirected the same way, and the
// slot's resources are detached from the engine. After it returns the
// engine no longer masters the slot.
//
// The caller must quiesce releases/acks for the duration (the data
// server holds its handler gate), so no Release can land between the
// export copying a lock and the new master installing it — the lost
// release would leave a zombie lock blocking the resource forever.
func (s *Server) FreezeExportSlot(sl partition.Slot) (SlotExport, error) {
	if sl < 0 || sl >= partition.NumSlots {
		return SlotExport{}, fmt.Errorf("dlm: freeze: bad slot %d", sl)
	}
	// Publish frozen first: any Lock that passed CheckMaster before now
	// re-checks under res.mu and fails before enqueueing.
	for {
		prev := s.slots.Load()
		if prev == nil || !prev.owned[sl] {
			return SlotExport{}, wire.ErrNotOwner
		}
		v := *prev
		v.frozen[sl] = true
		if s.slots.CompareAndSwap(prev, &v) {
			break
		}
	}
	exp := SlotExport{Slot: sl, Epoch: s.PartitionEpoch()}
	var acts []activationMsg
	for _, res := range s.takeSlotResources(sl) {
		res.mu.Lock()
		s.failWaiters(res)
		// Outstanding handoff delegations are force-resolved before the
		// copy (DESIGN.md §13): predecessor chains are retired here and
		// successors export as plain granted locks, so the importing
		// master never holds delegation state it cannot reclaim. The
		// activations are delivered once the freeze completes.
		acts = append(acts, s.resolveSlotDelegations(res)...)
		re := ResourceExport{
			Resource: res.id,
			NextSN:   res.nextSN,
			Grants:   uint64(res.grants),
		}
		for _, l := range res.granted.list {
			re.Locks = append(re.Locks, LockRecord{
				Resource: res.id,
				Client:   l.client,
				LockID:   l.id,
				Mode:     l.mode,
				Range:    l.rng,
				SN:       l.sn,
				State:    l.state,
			})
		}
		res.mu.Unlock()
		if len(re.Locks) > 0 || re.NextSN > 0 || re.Grants > 0 {
			exp.Resources = append(exp.Resources, re)
		}
	}
	// Drop ownership: the slot now belongs to whoever installs the
	// export. (frozen is cleared with the owned bit; both gate Lock.)
	for {
		prev := s.slots.Load()
		v := *prev
		v.owned[sl] = false
		v.frozen[sl] = false
		if s.slots.CompareAndSwap(prev, &v) {
			break
		}
	}
	s.Stats.SlotMigrationsOut.Add(1)
	for _, a := range acts {
		s.sendActivation(a)
	}
	return exp, nil
}

// InstallSlot installs a migrated slot's lock tables and takes
// mastership of the slot at the given (post-transfer) epoch. The
// sequencer of every resource resumes exactly where the exporter left
// it, so SNs stay globally unique per resource across any number of
// migrations. Granted locks are installed with their revocation flag
// cleared: an in-flight revocation's ack raced the handoff and died
// with the old master, so this engine re-fires it on the next conflict
// — clients treat the re-delivery as idempotent. CANCELING locks keep
// waiting for the client's release, which the client retries here
// after refreshing its map.
func (s *Server) InstallSlot(exp SlotExport, epoch uint64) error {
	if exp.Slot < 0 || exp.Slot >= partition.NumSlots {
		return fmt.Errorf("dlm: install: bad slot %d", exp.Slot)
	}
	var maxID LockID
	for _, re := range exp.Resources {
		if partition.SlotOf(uint64(re.Resource)) != exp.Slot {
			return fmt.Errorf("dlm: install: resource %d not in slot %d", re.Resource, exp.Slot)
		}
		res := s.resource(re.Resource)
		res.mu.Lock()
		if res.granted.len() > 0 || len(res.queue) > 0 {
			res.mu.Unlock()
			return fmt.Errorf("dlm: install: resource %d not empty", re.Resource)
		}
		if re.NextSN > res.nextSN {
			res.nextSN = re.NextSN
		}
		if g := int(re.Grants); g > res.grants {
			res.grants = g
		}
		for _, r := range re.Locks {
			if !r.Mode.Valid() || r.Range.Empty() {
				res.mu.Unlock()
				return fmt.Errorf("dlm: install: bad lock record %d", r.LockID)
			}
			res.granted.insert(&lock{
				id:         r.LockID,
				client:     r.Client,
				mode:       r.Mode,
				rng:        r.Range,
				state:      r.State,
				sn:         r.SN,
				revokeSent: r.State == Canceling,
			})
			if r.LockID > maxID {
				maxID = r.LockID
			}
		}
		res.mu.Unlock()
	}
	for {
		cur := s.nextLock.Load()
		if uint64(maxID) <= cur || s.nextLock.CompareAndSwap(cur, uint64(maxID)) {
			break
		}
	}
	s.addSlots(epoch, []partition.Slot{exp.Slot})
	s.Stats.SlotMigrationsIn.Add(1)
	return nil
}

// AdoptSlots takes mastership of slots claimed through lease takeover,
// rebuilding their lock tables from client-replayed records (the
// recovery.go path, filtered by slot). Records outside the adopted
// slots are dropped — a client replaying concurrently with two
// takeovers must not hand slot A's locks to slot B's new master.
//
// Delegations outstanding at the old master's death are force-resolved
// here, mirroring what FreezeExportSlot does for migration. A HandedOff
// record is a lock its holder owes (or already sent) to a successor:
// the holder will never release it through the server, so restoring it
// would wedge the resource — it is dropped. A Delegated record is the
// successor's promised lock; it is installed as a plain grant and
// re-activated with a server-sent activation, which either completes
// the successor's parked transfer wait (if the peer transfer died with
// the old epoch) or lands as a harmless duplicate.
func (s *Server) AdoptSlots(epoch uint64, slots []partition.Slot, records []LockRecord) error {
	in := make(map[partition.Slot]bool, len(slots))
	for _, sl := range slots {
		in[sl] = true
	}
	filtered := records[:0]
	for _, r := range records {
		if in[partition.SlotOf(uint64(r.Resource))] {
			filtered = append(filtered, r)
		}
	}
	kept, resolved := resolveReplay(filtered)
	if err := s.Restore(kept); err != nil {
		return err
	}
	s.addSlots(epoch, slots)
	for _, a := range resolved {
		s.Stats.HandoffReclaims.Add(1)
		s.sendActivation(a)
	}
	return nil
}
