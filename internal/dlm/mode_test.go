package dlm

import "testing"

func TestModeProperties(t *testing.T) {
	cases := []struct {
		m       Mode
		isWrite bool
		canRead bool
	}{
		{PR, false, true},
		{NBW, true, false},
		{BW, true, false},
		{PW, true, true},
		{LR, false, true},
		{LW, true, false},
		{ModeNone, false, false},
	}
	for _, c := range cases {
		if c.m.IsWrite() != c.isWrite {
			t.Errorf("%v.IsWrite() = %v, want %v", c.m, c.m.IsWrite(), c.isWrite)
		}
		if c.m.CanRead() != c.canRead {
			t.Errorf("%v.CanRead() = %v, want %v", c.m, c.m.CanRead(), c.canRead)
		}
	}
}

func TestModeValid(t *testing.T) {
	for _, m := range []Mode{PR, NBW, BW, PW, LR, LW} {
		if !m.Valid() {
			t.Errorf("%v not valid", m)
		}
	}
	if ModeNone.Valid() || Mode(99).Valid() {
		t.Error("invalid modes reported valid")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		PR: "PR", NBW: "NBW", BW: "BW", PW: "PW", LR: "LR", LW: "LW", ModeNone: "none",
	} {
		if m.String() != want {
			t.Errorf("String(%d) = %q, want %q", m, m.String(), want)
		}
	}
}

// TestCovers verifies the severity ordering of Fig. 9: PW covers
// everything SeqDLM, BW covers the write-only modes below it, and PR/NBW
// cover only themselves.
func TestCovers(t *testing.T) {
	covers := map[Mode][]Mode{
		PW:  {PR, NBW, BW, PW},
		BW:  {NBW, BW},
		NBW: {NBW},
		PR:  {PR},
		LW:  {LR, LW},
		LR:  {LR},
	}
	all := []Mode{PR, NBW, BW, PW, LR, LW}
	for m, list := range covers {
		want := map[Mode]bool{}
		for _, n := range list {
			want[n] = true
		}
		for _, n := range all {
			if m.Covers(n) != want[n] {
				t.Errorf("%v.Covers(%v) = %v, want %v", m, n, m.Covers(n), want[n])
			}
		}
	}
}

func TestUpgradeLattice(t *testing.T) {
	cases := []struct{ a, b, want Mode }{
		{PR, NBW, PW},
		{NBW, PR, PW},
		{PR, BW, PW},
		{NBW, BW, BW},
		{BW, NBW, BW},
		{PR, PW, PW},
		{NBW, PW, PW},
		{BW, PW, PW},
		{PR, PR, PR},
		{NBW, NBW, NBW},
		{BW, BW, BW},
		{PW, PW, PW},
		{LR, LW, LW},
		{LW, LR, LW},
		{LR, LR, LR},
	}
	for _, c := range cases {
		if got := Upgrade(c.a, c.b); got != c.want {
			t.Errorf("Upgrade(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestCompatibleTableII enumerates the full LCM of Table II. The only
// Y cells are PR×PR; the only state-dependent cells are NBW/BW requests
// against a granted NBW, compatible exactly when it is CANCELING.
func TestCompatibleTableII(t *testing.T) {
	modes := []Mode{PR, NBW, BW, PW}
	type key struct {
		req, granted Mode
		state        State
	}
	want := map[key]bool{}
	for _, r := range modes {
		for _, g := range modes {
			for _, st := range []State{Granted, Canceling} {
				want[key{r, g, st}] = false
			}
		}
	}
	want[key{PR, PR, Granted}] = true
	want[key{PR, PR, Canceling}] = true
	want[key{NBW, NBW, Canceling}] = true
	want[key{BW, NBW, Canceling}] = true

	for k, w := range want {
		if got := Compatible(k.req, k.granted, k.state); got != w {
			t.Errorf("Compatible(%v, %v %v) = %v, want %v", k.req, k.granted, k.state, got, w)
		}
	}
}

func TestCompatibleLegacy(t *testing.T) {
	if !Compatible(LR, LR, Granted) || !Compatible(LR, LR, Canceling) {
		t.Error("LR must be compatible with LR")
	}
	// The traditional write lock conflicts with everything in both
	// states: normal grant only.
	for _, g := range []Mode{LR, LW} {
		for _, st := range []State{Granted, Canceling} {
			if Compatible(LW, g, st) {
				t.Errorf("Compatible(LW, %v %v) must be false", g, st)
			}
		}
	}
	if Compatible(LR, LW, Canceling) {
		t.Error("LR vs canceling LW must be incompatible (reads wait for flush)")
	}
}

func TestDowngradeRoutes(t *testing.T) {
	cases := []struct {
		m     Mode
		wrote bool
		want  Mode
	}{
		{BW, true, NBW},
		{BW, false, NBW},
		{PW, true, NBW},
		{PW, false, PR},
		{NBW, true, ModeNone},
		{PR, false, ModeNone},
		{LW, true, ModeNone},
	}
	for _, c := range cases {
		if got := Downgrade(c.m, c.wrote); got != c.want {
			t.Errorf("Downgrade(%v, wrote=%v) = %v, want %v", c.m, c.wrote, got, c.want)
		}
	}
}

// TestSelectMode verifies the deterministic selection rules of Fig. 10.
func TestSelectMode(t *testing.T) {
	if SelectMode(true, false, false) != PR {
		t.Error("read must select PR")
	}
	if SelectMode(true, true, true) != PR {
		t.Error("read selects PR regardless of other flags")
	}
	if SelectMode(false, true, false) != PW {
		t.Error("write with implicit read must select PW")
	}
	if SelectMode(false, true, true) != PW {
		t.Error("implicit read dominates multi-resource")
	}
	if SelectMode(false, false, true) != BW {
		t.Error("multi-resource write must select BW")
	}
	if SelectMode(false, false, false) != NBW {
		t.Error("plain write must select NBW")
	}
}

func TestLegacyModeMapping(t *testing.T) {
	if LegacyMode(PR) != LR {
		t.Error("PR must map to LR")
	}
	for _, m := range []Mode{NBW, BW, PW, LW} {
		if LegacyMode(m) != LW {
			t.Errorf("%v must map to LW", m)
		}
	}
	if LegacyMode(LR) != LR {
		t.Error("LR maps to itself")
	}
}

func TestPolicies(t *testing.T) {
	s := SeqDLM()
	if !s.EarlyGrant || !s.EarlyRevocation || !s.Conversion || s.Legacy || !s.CacheLocks {
		t.Errorf("SeqDLM policy wrong: %+v", s)
	}
	b := Basic()
	if b.EarlyGrant || b.EarlyRevocation || b.Conversion || !b.Legacy || !b.CacheLocks {
		t.Errorf("Basic policy wrong: %+v", b)
	}
	l := Lustre()
	if l.Expand != ExpandLustre || l.LustreCapBytes != 32<<20 || l.LustreLockThreshold != 32 {
		t.Errorf("Lustre policy wrong: %+v", l)
	}
	d := Datatype()
	if d.Expand != ExpandNone || d.CacheLocks {
		t.Errorf("Datatype policy wrong: %+v", d)
	}
	if s.MapMode(NBW) != NBW || b.MapMode(NBW) != LW || b.MapMode(PR) != LR {
		t.Error("MapMode wrong")
	}
}

// TestLCMProperties checks structural properties of the compatibility
// matrix across every mode pair:
//  1. monotonicity — entering CANCELING never makes a granted lock MORE
//     restrictive (early grant only ever opens compatibility);
//  2. no two write locks are ever compatible while one is GRANTED;
//  3. a request is never compatible with a granted lock that Covers a
//     mode it conflicts with.
func TestLCMProperties(t *testing.T) {
	all := []Mode{PR, NBW, BW, PW, LR, LW}
	for _, req := range all {
		for _, g := range all {
			if Compatible(req, g, Granted) && !Compatible(req, g, Canceling) {
				t.Errorf("canceling reduced compatibility for (%v, %v)", req, g)
			}
			if req.IsWrite() && g.IsWrite() && Compatible(req, g, Granted) {
				t.Errorf("write-write compatible while granted: (%v, %v)", req, g)
			}
		}
	}
}

// TestUpgradeProperties: the upgrade target covers both inputs, and the
// lattice join is commutative and idempotent.
func TestUpgradeProperties(t *testing.T) {
	seq := []Mode{PR, NBW, BW, PW}
	for _, a := range seq {
		for _, b := range seq {
			u := Upgrade(a, b)
			if !u.Covers(a) || !u.Covers(b) {
				t.Errorf("Upgrade(%v, %v) = %v does not cover both", a, b, u)
			}
			if u != Upgrade(b, a) {
				t.Errorf("Upgrade not commutative for (%v, %v)", a, b)
			}
			if Upgrade(u, u) != u {
				t.Errorf("Upgrade not idempotent at %v", u)
			}
		}
	}
}

// TestCoversTransitive: Covers must be a partial order (reflexive,
// transitive) over each mode family.
func TestCoversTransitive(t *testing.T) {
	all := []Mode{PR, NBW, BW, PW, LR, LW}
	for _, a := range all {
		if !a.Covers(a) {
			t.Errorf("%v does not cover itself", a)
		}
		for _, b := range all {
			for _, c := range all {
				if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
					t.Errorf("Covers not transitive: %v > %v > %v", a, b, c)
				}
			}
		}
	}
}
