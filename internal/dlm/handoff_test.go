package dlm

import (
	"context"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
)

// hoHarness wires a Server and LockClients with the full handoff fast
// path: stamped revocations are delivered into the holder, peer
// transfers route directly between clients, server-sent activations
// arrive through the HandoffNotifier extension, and the conn
// implements HandoffAcker so FlushHandoffAcks can drain.
type hoHarness struct {
	srv     *Server
	flusher *recFlusher
	clients map[ClientID]*LockClient

	mu            sync.Mutex
	dropRevokes   bool // swallow revocations (vanished holder)
	dropTransfers bool // swallow peer transfers (lost handoff message)
	dropLeases    bool // swallow lease propagations (lost tree edges)
}

type hoNotifier struct{ h *hoHarness }

func (n hoNotifier) Revoke(_ context.Context, rv Revocation) {
	h := n.h
	h.mu.Lock()
	drop := h.dropRevokes
	h.mu.Unlock()
	if drop {
		return
	}
	if c, ok := h.clients[rv.Client]; ok {
		c.OnRevokeStamped(rv.Resource, rv.Lock, rv.Handoff)
	}
	h.srv.RevokeAck(rv.Resource, rv.Lock)
}

// Handoff implements HandoffNotifier: the server-sent activation path.
func (n hoNotifier) Handoff(_ context.Context, client ClientID, res ResourceID, id LockID) {
	if c, ok := n.h.clients[client]; ok {
		c.OnHandoff(res, id)
	}
}

// hoConn is directConn plus the standalone delegation-ack path.
type hoConn struct{ srv *Server }

func (d hoConn) Lock(ctx context.Context, req Request) (Grant, error) {
	return d.srv.Lock(ctx, req)
}
func (d hoConn) Release(_ context.Context, res ResourceID, id LockID) error {
	d.srv.Release(res, id)
	return nil
}
func (d hoConn) Downgrade(_ context.Context, res ResourceID, id LockID, m Mode) error {
	return d.srv.Downgrade(res, id, m)
}
func (d hoConn) HandoffAck(_ context.Context, res ResourceID, id LockID) error {
	d.srv.HandoffAck(res, id)
	return nil
}

func newHOHarness(t *testing.T, policy Policy, nclients int, peers bool) *hoHarness {
	t.Helper()
	h := &hoHarness{
		flusher: &recFlusher{},
		clients: make(map[ClientID]*LockClient),
	}
	h.srv = NewServer(policy, nil)
	h.srv.SetNotifier(hoNotifier{h})
	router := func(ResourceID) ServerConn { return hoConn{h.srv} }
	for i := 1; i <= nclients; i++ {
		id := ClientID(i)
		c := NewLockClient(id, policy, router, h.flusher)
		if peers {
			c.SetPeerSender(PeerSenderFunc(func(_ context.Context, peer ClientID, res ResourceID, lid LockID, acks []LockID, bcast *BroadcastStamp) error {
				h.mu.Lock()
				drop := h.dropTransfers
				h.mu.Unlock()
				if drop {
					return nil // accepted, then lost in flight
				}
				h.clients[peer].OnHandoffMsg(res, lid, false, acks, bcast)
				return nil
			}))
		}
		h.clients[id] = c
	}
	t.Cleanup(func() {
		for _, c := range h.clients {
			c.Close()
		}
		h.srv.Shutdown()
	})
	return h
}

func (h *hoHarness) client(i int) *LockClient { return h.clients[ClientID(i)] }

func handoffPolicy() Policy {
	p := SeqDLM()
	p.Handoff = true
	return p
}

// TestHandoffPingPong is the tentpole scenario: two clients alternate
// conflicting whole-range writes. Every exchange after the first must
// delegate client-to-client, SNs must stay strictly monotonic, and the
// per-exchange server cost must be about one lock RPC (the delegation
// ack piggybacks on the next round's request).
func TestHandoffPingPong(t *testing.T) {
	h := newHOHarness(t, handoffPolicy(), 2, true)
	res := ResourceID(1)
	rng := extent.New(0, 4096)
	const rounds = 20

	var lastSN extent.SN
	for i := 0; i < rounds; i++ {
		c := h.client(1 + i%2)
		hd := mustAcquire(t, c, res, NBW, rng)
		if i > 0 && hd.SN() <= lastSN {
			t.Fatalf("round %d: SN %d not greater than previous %d", i, hd.SN(), lastSN)
		}
		lastSN = hd.SN()
		c.Unlock(hd)
	}

	if got, want := h.srv.Stats.Handoffs.Load(), int64(rounds-1); got != want {
		t.Fatalf("Handoffs = %d, want %d", got, want)
	}
	sent := h.client(1).Stats.HandoffsSent.Load() + h.client(2).Stats.HandoffsSent.Load()
	recv := h.client(1).Stats.HandoffsRecv.Load() + h.client(2).Stats.HandoffsRecv.Load()
	if sent != rounds-1 || recv != rounds-1 {
		t.Fatalf("HandoffsSent/Recv = %d/%d, want %d/%d", sent, recv, rounds-1, rounds-1)
	}

	// Drain: confirm the final outstanding delegation, then check the
	// server settled to a single granted lock with no predecessor chain.
	ctx := context.Background()
	h.client(1).FlushHandoffAcks(ctx)
	h.client(2).FlushHandoffAcks(ctx)
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if got := h.srv.GrantedCount(res); got != 1 {
		t.Fatalf("GrantedCount = %d after drain, want 1", got)
	}

	// Server cost: rounds lock RPCs plus at most the final standalone
	// ack — against ~2*rounds for the flush-and-release path.
	ops := h.srv.Stats.LockOps.Load()
	if ops > int64(rounds)+2 {
		t.Fatalf("LockOps = %d for %d exchanges, want about one per exchange", ops, rounds)
	}
	// Every transfer was confirmed exactly once.
	if acks := h.srv.Stats.HandoffAcks.Load(); acks != int64(rounds-1) {
		t.Fatalf("HandoffAcks = %d, want %d", acks, rounds-1)
	}
	if rec := h.srv.Stats.HandoffReclaims.Load(); rec != 0 {
		t.Fatalf("HandoffReclaims = %d, want 0", rec)
	}
}

// TestHandoffFallbackRelease covers the holder without a peer
// transport: the stamped cancel falls back to releasing through the
// server, which resolves the delegation itself and activates the
// successor over the notifier.
func TestHandoffFallbackRelease(t *testing.T) {
	h := newHOHarness(t, handoffPolicy(), 2, false) // no peer senders
	res := ResourceID(7)
	rng := extent.New(0, 4096)

	hd := mustAcquire(t, h.client(1), res, PW, rng)
	h.client(1).Unlock(hd)
	hd2 := mustAcquire(t, h.client(2), res, PW, rng)
	h.client(2).Unlock(hd2)

	if got := h.srv.Stats.Handoffs.Load(); got != 1 {
		t.Fatalf("Handoffs = %d, want 1", got)
	}
	if sent := h.client(1).Stats.HandoffsSent.Load(); sent != 0 {
		t.Fatalf("HandoffsSent = %d without a peer transport, want 0", sent)
	}
	// The fallback release resolved the delegation: nothing to ack, no
	// reclaim, and only client 2's lock remains.
	h.client(2).FlushHandoffAcks(context.Background())
	if got := h.srv.GrantedCount(res); got != 1 {
		t.Fatalf("GrantedCount = %d, want 1", got)
	}
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestHandoffReclaim covers the vanished holder: the stamped
// revocation never reaches it, so the reclaimer first re-revokes
// (also lost) and then force-resolves the delegation, activating the
// parked successor.
func TestHandoffReclaim(t *testing.T) {
	h := newHOHarness(t, handoffPolicy(), 2, true)
	h.srv.SetHandoffTimeout(20 * time.Millisecond)
	res := ResourceID(9)
	rng := extent.New(0, 4096)

	hd := mustAcquire(t, h.client(1), res, PW, rng)
	h.client(1).Unlock(hd)

	h.mu.Lock()
	h.dropRevokes = true
	h.mu.Unlock()

	start := time.Now()
	hd2 := mustAcquire(t, h.client(2), res, PW, rng)
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("delegated acquire completed before the reclaim timeout")
	}
	h.client(2).Unlock(hd2)

	if got := h.srv.Stats.HandoffReclaims.Load(); got != 1 {
		t.Fatalf("HandoffReclaims = %d, want 1", got)
	}
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestHandoffNudgeResolves covers the slow-but-alive holder: the
// transfer is lost, but the reclaimer's plain re-revoke reaches the
// holder, whose normal cancel path releases through the server and
// resolves the delegation — no force reclaim.
func TestHandoffNudgeResolves(t *testing.T) {
	h := newHOHarness(t, handoffPolicy(), 2, true)
	h.srv.SetHandoffTimeout(20 * time.Millisecond)
	res := ResourceID(11)
	rng := extent.New(0, 4096)

	hd := mustAcquire(t, h.client(1), res, PW, rng)
	h.client(1).Unlock(hd)

	h.mu.Lock()
	h.dropTransfers = true // peer send "succeeds" but the message is lost
	h.mu.Unlock()

	hd2 := mustAcquire(t, h.client(2), res, PW, rng)
	h.client(2).Unlock(hd2)

	if got := h.srv.Stats.Handoffs.Load(); got != 1 {
		t.Fatalf("Handoffs = %d, want 1", got)
	}
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestHandoffIneligibleMultipleConflicts: a write conflicting with two
// readers follows the normal revoke path — delegation only fires when
// the conflict is owed to exactly one lock.
func TestHandoffIneligibleMultipleConflicts(t *testing.T) {
	h := newHOHarness(t, handoffPolicy(), 3, true)
	res := ResourceID(13)
	rng := extent.New(0, 4096)

	r1 := mustAcquire(t, h.client(1), res, PR, rng)
	h.client(1).Unlock(r1)
	r2 := mustAcquire(t, h.client(2), res, PR, rng)
	h.client(2).Unlock(r2)

	w := mustAcquire(t, h.client(3), res, PW, rng)
	h.client(3).Unlock(w)

	if got := h.srv.Stats.Handoffs.Load(); got != 0 {
		t.Fatalf("Handoffs = %d with two conflicting readers, want 0", got)
	}
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestHandoffSameClientNotStamped: an upgrade-style conflict with the
// requester's own cached lock must never delegate to itself.
func TestHandoffSameClientNotStamped(t *testing.T) {
	p := handoffPolicy()
	p.Conversion = false // keep the conflict a real conflict
	h := newHOHarness(t, p, 1, true)
	res := ResourceID(15)

	a := mustAcquire(t, h.client(1), res, PW, extent.New(0, 4096))
	h.client(1).Unlock(a)
	b := mustAcquire(t, h.client(1), res, PW, extent.New(0, 4096))
	h.client(1).Unlock(b)

	if got := h.srv.Stats.Handoffs.Load(); got != 0 {
		t.Fatalf("Handoffs = %d for same-client conflict, want 0", got)
	}
}

// TestHandoffDisabledByDefault: none of the stock policies enable the
// fast path, and with it off the engine must never stamp.
func TestHandoffDisabledByDefault(t *testing.T) {
	for _, p := range []Policy{SeqDLM(), Basic(), Lustre(), Datatype()} {
		if p.Handoff {
			t.Fatalf("policy %q enables Handoff by default", p.Name)
		}
	}
	h := newHOHarness(t, SeqDLM(), 2, true)
	res := ResourceID(17)
	rng := extent.New(0, 4096)
	for i := 0; i < 6; i++ {
		c := h.client(1 + i%2)
		hd := mustAcquire(t, c, res, NBW, rng)
		c.Unlock(hd)
	}
	if got := h.srv.Stats.Handoffs.Load(); got != 0 {
		t.Fatalf("Handoffs = %d with Handoff off, want 0", got)
	}
	// The cancels (flush + release) run asynchronously behind the early
	// grants; wait for at least one to land.
	deadline := time.Now().Add(5 * time.Second)
	for h.srv.Stats.Releases.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no Releases recorded — the normal revoke path did not run")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHandoffChainAck: three clients hand the lock around without any
// ack landing (acks are only flushed at the end), building a
// predecessor chain; the final ack must retire the whole chain.
func TestHandoffChainAck(t *testing.T) {
	h := newHOHarness(t, handoffPolicy(), 3, true)
	h.srv.SetHandoffTimeout(time.Hour) // keep the reclaimer out of it
	res := ResourceID(19)
	rng := extent.New(0, 4096)

	// The piggybacked-ack path is per-resource, so ping-pong on one
	// resource drains acks naturally; to build a chain, stop the timer
	// path from firing by flushing through a conn whose acks we hold
	// back: acquire in strict rotation faster than the 20ms flush
	// delay.
	for i := 0; i < 3; i++ {
		c := h.client(1 + i%3)
		hd := mustAcquire(t, c, res, NBW, rng)
		c.Unlock(hd)
	}
	if got := h.srv.Stats.Handoffs.Load(); got != 2 {
		t.Fatalf("Handoffs = %d, want 2", got)
	}

	// Let every queued ack land, then the chain must be fully retired:
	// exactly one granted lock, every transfer confirmed.
	for i := 1; i <= 3; i++ {
		h.client(i).FlushHandoffAcks(context.Background())
	}
	if got := h.srv.GrantedCount(res); got != 1 {
		t.Fatalf("GrantedCount = %d after acks, want 1", got)
	}
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestHandoffFreezeResolvesDelegation: freezing a slot for migration
// with a delegation outstanding (the transfer was lost in flight) must
// force-resolve it — predecessor chain retired, successor activated and
// exported as a plain granted lock — so the importing master never
// sees delegation state it cannot own, and the sequencer stays
// monotonic across the move.
func TestHandoffFreezeResolvesDelegation(t *testing.T) {
	h := newHOHarness(t, handoffPolicy(), 2, true)
	h.srv.SetHandoffTimeout(time.Hour) // the freeze, not the reclaimer, must resolve
	h.mu.Lock()
	h.dropTransfers = true
	h.mu.Unlock()

	res := ridInSlot(t, 25, 0)
	h.srv.SetSlots(1, []partition.Slot{25})
	rng := extent.New(0, 4096)

	hd := mustAcquire(t, h.client(1), res, NBW, rng)
	sn1 := hd.SN()
	h.client(1).Unlock(hd)

	done := make(chan *Handle, 1)
	go func() {
		hd2, err := h.client(2).Acquire(context.Background(), res, NBW, rng)
		if err != nil {
			t.Errorf("delegated acquire: %v", err)
			close(done)
			return
		}
		done <- hd2
	}()
	waitFor(t, "delegation stamped", func() bool { return h.srv.Stats.Handoffs.Load() == 1 })

	exp, err := h.srv.FreezeExportSlot(25)
	if err != nil {
		t.Fatal(err)
	}
	hd2, ok := <-done
	if !ok {
		t.FailNow()
	}
	if hd2.SN() <= sn1 {
		t.Fatalf("delegated SN %d not above predecessor's %d", hd2.SN(), sn1)
	}
	if got := h.srv.Stats.HandoffReclaims.Load(); got != 1 {
		t.Fatalf("HandoffReclaims = %d, want 1 (freeze force-resolve)", got)
	}
	// The export carries exactly the successor, as a plain granted
	// lock; the retired predecessor must not travel.
	if len(exp.Resources) != 1 || len(exp.Resources[0].Locks) != 1 {
		t.Fatalf("export = %+v, want one resource with one lock", exp.Resources)
	}
	rec := exp.Resources[0].Locks[0]
	if rec.Client != 2 || rec.LockID != hd2.ID() {
		t.Fatalf("exported lock %+v, want client 2 lock %d", rec, hd2.ID())
	}

	// Install at the successor master: the sequencer continues above
	// every pre-freeze grant.
	dst := newBareEngine(handoffPolicy())
	if err := dst.InstallSlot(exp, 2); err != nil {
		t.Fatal(err)
	}
	g, err := dst.Lock(context.Background(), Request{
		Resource: res, Client: 3, Mode: NBW, Range: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.SN <= hd2.SN() {
		t.Fatalf("post-install SN %d not above delegated SN %d", g.SN, hd2.SN())
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
