package dlm

import (
	"context"
	"testing"
	"time"

	"ccpfs/internal/extent"
)

func TestExportReportsHeldLocks(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	c := h.client(1)
	a := mustAcquire(t, c, 1, NBW, extent.New(0, 100))
	b := mustAcquire(t, c, 2, PR, extent.New(0, 50))

	recs := c.Export(nil)
	if len(recs) != 2 {
		t.Fatalf("exported %d records, want 2", len(recs))
	}
	recs = c.Export(func(res ResourceID) bool { return res == 1 })
	if len(recs) != 1 || recs[0].Resource != 1 || recs[0].Mode != NBW || recs[0].SN != a.SN() {
		t.Fatalf("filtered export = %+v", recs)
	}
	c.Unlock(a)
	c.Unlock(b)
}

// TestRestoreAfterCrash is the §IV-C2 flow: the engine loses all state,
// clients re-report their locks, and the restored engine must (a) still
// conflict correctly against the restored locks, (b) resume the
// sequencer above every restored SN, and (c) accept releases of the
// restored locks.
func TestRestoreAfterCrash(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	c1, c2 := h.client(1), h.client(2)
	a := mustAcquire(t, c1, 1, NBW, extent.New(0, extent.Inf))
	preSN := a.SN()

	// Crash: the engine forgets everything; the client still holds a.
	h.srv.Reset()
	if h.srv.GrantedCount(1) != 0 {
		t.Fatal("Reset left state")
	}

	// Gather + restore.
	if err := h.srv.Restore(c1.Export(nil)); err != nil {
		t.Fatal(err)
	}
	if h.srv.GrantedCount(1) != 1 {
		t.Fatalf("restored %d locks, want 1", h.srv.GrantedCount(1))
	}

	// (a) A conflicting request must revoke the restored lock and then
	// be granted — the full conflict machinery works on restored state.
	done := make(chan *Handle, 1)
	go func() {
		hd, err := c2.Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
		if err == nil {
			done <- hd
		}
	}()
	var b *Handle
	select {
	case b = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request against restored lock never granted")
	}
	// (b) The sequencer resumed above the restored SN.
	if b.SN() <= preSN {
		t.Fatalf("post-recovery SN %d not above restored SN %d", b.SN(), preSN)
	}
	c2.Unlock(b)

	// (c) The original holder's release drains cleanly.
	c1.Unlock(a)
	c1.ReleaseAll(context.Background())
	c2.ReleaseAll(context.Background())
	waitFor(t, "drain", func() bool { return h.srv.GrantedCount(1) == 0 })
}

func TestRestoreValidation(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	if err := h.srv.Restore([]LockRecord{{Resource: 1, Mode: Mode(99), Range: extent.New(0, 1)}}); err == nil {
		t.Fatal("invalid mode restored")
	}
	if err := h.srv.Restore([]LockRecord{{Resource: 1, Mode: NBW}}); err == nil {
		t.Fatal("empty range restored")
	}
}

func TestRestoreSeedsLockIDs(t *testing.T) {
	h := newHarness(t, SeqDLM(), 1)
	err := h.srv.Restore([]LockRecord{
		{Resource: 1, Client: 1, LockID: 500, Mode: NBW, Range: extent.New(0, 10), SN: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh grant must allocate above the restored ID and SN.
	g, err := h.srv.Lock(context.Background(), Request{Resource: 1, Client: 2, Mode: NBW, Range: extent.New(100000, 100001)})
	if err != nil {
		t.Fatal(err)
	}
	if g.LockID <= 500 {
		t.Fatalf("lock ID %d not above restored 500", g.LockID)
	}
	if g.SN <= 7 {
		t.Fatalf("SN %d not above restored 7", g.SN)
	}
}

func TestRestoreCancelingLockNotReRevoked(t *testing.T) {
	h := newHarness(t, SeqDLM(), 2)
	// A restored CANCELING lock must behave like one: early grant works
	// against it and no new revocation is sent.
	err := h.srv.Restore([]LockRecord{
		{Resource: 1, Client: 1, LockID: 9, Mode: NBW, Range: extent.New(0, extent.Inf), SN: 3, State: Canceling},
	})
	if err != nil {
		t.Fatal(err)
	}
	hd := mustAcquire(t, h.client(2), 1, NBW, extent.New(0, extent.Inf))
	if hd.SN() <= 3 {
		t.Fatalf("SN %d not above restored", hd.SN())
	}
	if h.srv.Stats.Revocations.Load() != 0 {
		t.Fatal("restored canceling lock was revoked again")
	}
	h.client(2).Unlock(hd)
}
