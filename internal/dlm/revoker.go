package dlm

import (
	"context"
	"sync"
)

// DefaultRevokeWorkers caps how many revocation deliveries run
// concurrently. Before the revoker existed, every revocation spawned
// its own goroutine, so a wide conflict (one request revoking thousands
// of holders) meant thousands of simultaneous callback RPCs; the pool
// bounds that fan-out while the per-client coalescing keeps the RPC
// count low (DESIGN.md §9).
const DefaultRevokeWorkers = 8

// BatchNotifier is an optional Notifier extension: implementations
// deliver every pending revocation destined for one client in a single
// callback — one RevokeBatch RPC instead of one RevokeRequest per lock.
// The implementation acknowledges each revocation with Server.RevokeAck
// exactly as it would for individual deliveries; entries for vanished
// holders are acked and force-released the same way. Plain Notifiers
// keep working: the revoker falls back to sequential Revoke calls from
// the same bounded pool.
type BatchNotifier interface {
	Notifier
	RevokeBatch(ctx context.Context, client ClientID, revs []Revocation)
}

// revoker coalesces revocations per destination client and delivers
// them from a bounded, on-demand worker pool. Enqueueing never blocks
// and takes no resource locks, so the grant engine can hand off
// revocations while a delivery's reply (RevokeAck → scan → fire) is
// re-entering the engine on another resource.
//
// Ordering: revocations for one client are delivered in enqueue order,
// and a client has at most one delivery in flight at a time (inflight
// bars a second worker from claiming it; revocations arriving while a
// delivery runs wait for it to finish and ride the next batch), so
// per-client callbacks are serialized. Distinct clients deliver
// concurrently up to the pool bound.
type revoker struct {
	s *Server

	mu       sync.Mutex
	pending  map[ClientID][]Revocation
	inflight map[ClientID]bool
	order    []ClientID // clients with pending revocations, FIFO
	workers  int
	bound    int
}

func (r *revoker) init(s *Server, bound int) {
	r.s = s
	r.pending = make(map[ClientID][]Revocation)
	r.inflight = make(map[ClientID]bool)
	r.bound = bound
}

// SetRevokeWorkers adjusts the revocation worker-pool bound (default
// DefaultRevokeWorkers). Call before the engine sees conflicting
// traffic; n < 1 is clamped to 1.
func (s *Server) SetRevokeWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.revoker.mu.Lock()
	s.revoker.bound = n
	s.revoker.mu.Unlock()
}

// enqueue coalesces revs into the per-client pending lists and makes
// sure enough workers are running to drain them, up to the bound.
// Workers are spawned on demand and exit when the queue is empty, so an
// idle engine holds no revoker goroutines.
func (r *revoker) enqueue(revs []Revocation) {
	r.s.Stats.RevokeQueue.Add(int64(len(revs)))
	r.mu.Lock()
	for _, rv := range revs {
		if len(r.pending[rv.Client]) == 0 && !r.inflight[rv.Client] {
			r.order = append(r.order, rv.Client)
		}
		r.pending[rv.Client] = append(r.pending[rv.Client], rv)
	}
	spawn := min(len(r.order), r.bound) - r.workers
	if spawn < 0 {
		spawn = 0
	}
	r.workers += spawn
	r.mu.Unlock()
	for i := 0; i < spawn; i++ {
		go r.work()
	}
}

// work drains client batches until none are claimable.
func (r *revoker) work() {
	for {
		r.mu.Lock()
		if len(r.order) == 0 {
			r.workers--
			r.mu.Unlock()
			return
		}
		client := r.order[0]
		r.order = r.order[1:]
		batch := r.pending[client]
		delete(r.pending, client)
		r.inflight[client] = true
		r.mu.Unlock()

		// The batch leaves the backlog the moment a worker claims it;
		// delivery time shows up in the notifier's RPC metrics instead.
		r.s.Stats.RevokeQueue.Add(-int64(len(batch)))
		r.deliver(client, batch)

		r.mu.Lock()
		delete(r.inflight, client)
		if len(r.pending[client]) > 0 {
			// Revocations arrived while the delivery ran; put the client
			// back at the tail for the next batch.
			r.order = append(r.order, client)
		}
		r.mu.Unlock()
	}
}

// deliver hands one client's coalesced batch to the notifier. The
// notifier's replies re-enter the engine (RevokeAck/Release → scan →
// fire → enqueue); enqueue never blocks on delivery, so this cannot
// deadlock.
func (r *revoker) deliver(client ClientID, batch []Revocation) {
	s := r.s
	s.Stats.RevokeBatches.Add(1)
	if bn, ok := s.notifier.(BatchNotifier); ok {
		bn.RevokeBatch(s.baseCtx, client, batch)
		return
	}
	for _, rv := range batch {
		s.notifier.Revoke(s.baseCtx, rv)
	}
}
