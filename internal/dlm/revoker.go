package dlm

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultRevokeWorkers caps how many revocation deliveries run
// concurrently. Before the revoker existed, every revocation spawned
// its own goroutine, so a wide conflict (one request revoking thousands
// of holders) meant thousands of simultaneous callback RPCs; the pool
// bounds that fan-out while the per-client coalescing keeps the RPC
// count low (DESIGN.md §9).
const DefaultRevokeWorkers = 8

// BatchNotifier is an optional Notifier extension: implementations
// deliver every pending revocation destined for one client in a single
// callback — one RevokeBatch RPC instead of one RevokeRequest per lock.
// The implementation acknowledges each revocation with Server.RevokeAck
// exactly as it would for individual deliveries; entries for vanished
// holders are acked and force-released the same way. Plain Notifiers
// keep working: the revoker falls back to sequential Revoke calls from
// the same bounded pool.
type BatchNotifier interface {
	Notifier
	RevokeBatch(ctx context.Context, client ClientID, revs []Revocation)
}

// revNode carries one enqueue's revocations for one client through that
// client's MPSC queue.
type revNode struct {
	next atomic.Pointer[revNode]
	revs []Revocation
}

// revQueue is a Vyukov-style intrusive MPSC queue of revNodes: push is
// lock-free from any goroutine (one Swap plus one Store), pop is owned
// by at most one consumer at a time. A producer between its Swap and
// its link Store leaves the queue transiently unreachable past the gap;
// pop then returns nil and the producer's subsequent schedule check
// (the status CAS in revoker.enqueue) guarantees the node is not lost.
type revQueue struct {
	head atomic.Pointer[revNode] // most recently pushed
	// tail is written only by the owning consumer, but read by empty()
	// from whichever goroutine just released ownership — hence atomic.
	tail atomic.Pointer[revNode]
	stub revNode
}

func (q *revQueue) init() {
	q.tail.Store(&q.stub)
	q.head.Store(&q.stub)
}

func (q *revQueue) push(n *revNode) {
	n.next.Store(nil)
	prev := q.head.Swap(n)
	prev.next.Store(n) // linearization: n becomes reachable here
}

// pop returns the oldest node, or nil when the queue is empty or a
// producer is mid-push. Single consumer only.
func (q *revQueue) pop() *revNode {
	tail := q.tail.Load()
	next := tail.next.Load()
	if tail == &q.stub {
		if next == nil {
			return nil
		}
		q.tail.Store(next)
		tail = next
		next = next.next.Load()
	}
	if next != nil {
		q.tail.Store(next)
		return tail
	}
	if tail != q.head.Load() {
		return nil // a producer past tail is mid-push
	}
	// Exactly one node left: re-append the stub so tail can retire.
	q.push(&q.stub)
	if next = tail.next.Load(); next != nil {
		q.tail.Store(next)
		return tail
	}
	return nil // a producer swapped in between; its link is pending
}

// empty reports whether the queue holds no reachable node. It may
// return false while a producer is mid-push — the safe direction: the
// consumer re-schedules and finds the node once linked.
func (q *revQueue) empty() bool {
	t := q.tail.Load()
	return t.next.Load() == nil && t == q.head.Load()
}

// revClient is one destination client's delivery state. status makes
// scheduling exactly-once: a client is pushed onto a worker's ready
// queue only by the winner of the idle→scheduled CAS, and returns to
// idle only after a delivery drained its queue — so a client has at
// most one delivery in flight and sits in at most one ready queue.
type revClient struct {
	id     ClientID
	status atomic.Uint32 // revIdle / revScheduled
	rnext  atomic.Pointer[revClient]
	q      revQueue
}

const (
	revIdle      = 0
	revScheduled = 1
)

// readyQueue is the same MPSC shape as revQueue, intrusive over
// revClients: producers are enqueuers scheduling a client, the consumer
// is the worker owning the slot.
type readyQueue struct {
	head atomic.Pointer[revClient]
	tail atomic.Pointer[revClient]
	stub revClient
}

func (q *readyQueue) init() {
	q.tail.Store(&q.stub)
	q.head.Store(&q.stub)
}

func (q *readyQueue) push(c *revClient) {
	c.rnext.Store(nil)
	prev := q.head.Swap(c)
	prev.rnext.Store(c)
}

func (q *readyQueue) pop() *revClient {
	tail := q.tail.Load()
	next := tail.rnext.Load()
	if tail == &q.stub {
		if next == nil {
			return nil
		}
		q.tail.Store(next)
		tail = next
		next = next.rnext.Load()
	}
	if next != nil {
		q.tail.Store(next)
		return tail
	}
	if tail != q.head.Load() {
		return nil
	}
	q.push(&q.stub)
	if next = tail.rnext.Load(); next != nil {
		q.tail.Store(next)
		return tail
	}
	return nil
}

func (q *readyQueue) empty() bool {
	t := q.tail.Load()
	return t.rnext.Load() == nil && t == q.head.Load()
}

// revSlot is one worker's lane: a ready queue of clients to deliver to
// and a running flag that spawns the worker goroutine on demand. An
// idle engine holds no revoker goroutines.
type revSlot struct {
	ready   readyQueue
	running atomic.Bool
	_       [40]byte // keep slots off each other's cache line
}

// revoker coalesces revocations per destination client and delivers
// them from a bounded, on-demand worker pool. Enqueueing is lock-free
// (per-client MPSC push + a schedule CAS) and never blocks, so the
// grant engine can hand off revocations while a delivery's reply
// (RevokeAck → scan → fire) is re-entering the engine on another
// resource — without the handoff and the delivery contending on a
// revoker mutex.
//
// Ordering: revocations for one client are delivered in enqueue order,
// and a client has at most one delivery in flight at a time (its status
// word bars a second worker from claiming it; revocations arriving
// while a delivery runs ride the next batch), so per-client callbacks
// are serialized. Distinct clients spread round-robin over the slots
// and deliver concurrently up to the pool bound. See DESIGN.md §11.
type revoker struct {
	s *Server

	// clients is the RCU client registry: lookups are lock-free map
	// reads; misses take regMu and publish a copy with the new entry.
	// Clients are never removed, so no reclamation is needed.
	clients atomic.Pointer[map[ClientID]*revClient]
	regMu   sync.Mutex

	// slots holds the worker lanes; its length is the pool bound. Reset
	// only by SetRevokeWorkers, which the engine requires to run before
	// conflicting traffic.
	slots atomic.Pointer[[]revSlot]
	next  atomic.Uint64 // round-robin lane assignment
}

func (r *revoker) init(s *Server, bound int) {
	r.s = s
	m := make(map[ClientID]*revClient)
	r.clients.Store(&m)
	r.setBound(bound)
}

func (r *revoker) setBound(n int) {
	slots := make([]revSlot, n)
	for i := range slots {
		slots[i].ready.init()
	}
	r.slots.Store(&slots)
}

// SetRevokeWorkers adjusts the revocation worker-pool bound (default
// DefaultRevokeWorkers). Call before the engine sees conflicting
// traffic; n < 1 is clamped to 1.
func (s *Server) SetRevokeWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.revoker.setBound(n)
}

// client returns the delivery state for id, creating it on first use.
func (r *revoker) client(id ClientID) *revClient {
	if rc := (*r.clients.Load())[id]; rc != nil {
		return rc
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	m := *r.clients.Load()
	if rc := m[id]; rc != nil {
		return rc
	}
	nm := make(map[ClientID]*revClient, len(m)+1)
	for k, v := range m {
		nm[k] = v
	}
	rc := &revClient{id: id}
	rc.q.init()
	nm[id] = rc
	r.clients.Store(&nm)
	return rc
}

// enqueue hands one grant-scan's revocations to the delivery machinery:
// group them per destination client, push one node per client onto its
// queue, and schedule every client that was idle. No locks, no
// blocking; workers spawn on demand up to the bound.
func (r *revoker) enqueue(revs []Revocation) {
	r.s.Stats.RevokeQueue.Add(int64(len(revs)))
	byClient := make(map[ClientID][]Revocation, 4)
	order := make([]ClientID, 0, 4)
	for _, rv := range revs {
		if _, ok := byClient[rv.Client]; !ok {
			order = append(order, rv.Client)
		}
		byClient[rv.Client] = append(byClient[rv.Client], rv)
	}
	// First-appearance order, not map order: lane assignment below is a
	// shared round-robin counter, so iteration order must be stable for
	// deterministic virtual runs.
	for _, cid := range order {
		list := byClient[cid]
		rc := r.client(cid)
		rc.q.push(&revNode{revs: list})
		// The push strictly precedes this CAS: if a delivery is draining
		// rc right now (status already scheduled), its post-drain
		// recheck sees our node; otherwise we win the transition and
		// schedule rc ourselves.
		if rc.status.CompareAndSwap(revIdle, revScheduled) {
			r.schedule(rc)
		}
	}
}

// schedule assigns rc to a lane round-robin and makes sure the lane's
// worker is running. Callers own the idle→scheduled transition.
func (r *revoker) schedule(rc *revClient) {
	slots := *r.slots.Load()
	sl := &slots[int(r.next.Add(1)%uint64(len(slots)))]
	sl.ready.push(rc)
	if sl.running.CompareAndSwap(false, true) {
		r.s.clk.Go(func() { r.work(sl) })
	}
}

// work drains one lane's ready clients until none are claimable, then
// retires — re-checking after clearing running so a push that raced the
// retirement is never stranded (either this worker wins the flag back
// or the pusher's CAS spawns a fresh one).
func (r *revoker) work(sl *revSlot) {
	for {
		rc := sl.ready.pop()
		if rc == nil {
			sl.running.Store(false)
			if sl.ready.empty() {
				return
			}
			if !sl.running.CompareAndSwap(false, true) {
				return // another worker took the lane
			}
			// pop saw a mid-push gap; yield so the producer can finish
			// its link instead of spinning against it.
			runtime.Gosched()
			continue
		}
		r.deliverClient(rc)
	}
}

// deliverClient drains everything queued for rc into one batch,
// delivers it, and returns rc to idle — re-scheduling it if producers
// queued more while the delivery ran.
func (r *revoker) deliverClient(rc *revClient) {
	var batch []Revocation
	for {
		n := rc.q.pop()
		if n == nil {
			break
		}
		if batch == nil {
			batch = n.revs
		} else {
			batch = append(batch, n.revs...)
		}
	}
	if len(batch) > 0 {
		// The batch leaves the backlog the moment a worker claims it;
		// delivery time shows up in the notifier's RPC metrics instead.
		r.s.Stats.RevokeQueue.Add(-int64(len(batch)))
		r.deliver(rc.id, batch)
	}
	rc.status.Store(revIdle)
	if !rc.q.empty() && rc.status.CompareAndSwap(revIdle, revScheduled) {
		r.schedule(rc)
	}
}

// deliver hands one client's coalesced batch to the notifier. The
// notifier's replies re-enter the engine (RevokeAck/Release → scan →
// fire → enqueue); enqueue never blocks on delivery, so this cannot
// deadlock.
func (r *revoker) deliver(client ClientID, batch []Revocation) {
	s := r.s
	s.Stats.RevokeBatches.Add(1)
	if bn, ok := s.notifier.(BatchNotifier); ok {
		bn.RevokeBatch(s.baseCtx, client, batch)
		return
	}
	for _, rv := range batch {
		s.notifier.Revoke(s.baseCtx, rv)
	}
}
