package dlm

import (
	"context"
	"sync"
	"testing"

	"ccpfs/internal/extent"
)

// benchHarness wires a server and clients without testing.T plumbing.
func benchHarness(policy Policy, nclients int) (*Server, []*LockClient) {
	srv := NewServer(policy, nil)
	clients := make([]*LockClient, nclients)
	byID := make(map[ClientID]*LockClient, nclients)
	srv.SetNotifier(NotifierFunc(func(_ context.Context, rv Revocation) {
		if c, ok := byID[rv.Client]; ok {
			c.OnRevoke(rv.Resource, rv.Lock)
		}
		srv.RevokeAck(rv.Resource, rv.Lock)
	}))
	router := func(ResourceID) ServerConn { return directConn{srv} }
	noFlush := FlusherFunc(func(context.Context, ResourceID, extent.Extent, extent.SN) error { return nil })
	for i := range clients {
		id := ClientID(i + 1)
		clients[i] = NewLockClient(id, policy, router, noFlush)
		byID[id] = clients[i]
	}
	return srv, clients
}

// BenchmarkGrantUncontended measures the pure engine cost of a cached
// grant hit.
func BenchmarkGrantUncontended(b *testing.B) {
	_, clients := benchHarness(SeqDLM(), 1)
	c := clients[0]
	h, err := c.Acquire(context.Background(), 1, NBW, extent.New(0, 100))
	if err != nil {
		b.Fatal(err)
	}
	c.Unlock(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := c.Acquire(context.Background(), 1, NBW, extent.New(0, 100))
		if err != nil {
			b.Fatal(err)
		}
		c.Unlock(h)
	}
}

// BenchmarkGrantFreshResource measures an uncached grant round through
// the engine (no conflicts).
func BenchmarkGrantFreshResource(b *testing.B) {
	srv, _ := benchHarness(SeqDLM(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := srv.Lock(context.Background(), Request{
			Resource: ResourceID(i + 1),
			Client:   1,
			Mode:     NBW,
			Range:    extent.New(0, 100),
		})
		if err != nil {
			b.Fatal(err)
		}
		srv.Release(ResourceID(i+1), g.LockID)
	}
}

// BenchmarkConflictResolutionSeqDLM measures the full early-grant
// conflict round: two clients alternately take the same whole-range NBW
// lock (revocation, ack, early grant, async cancel).
func BenchmarkConflictResolutionSeqDLM(b *testing.B) {
	_, clients := benchHarness(SeqDLM(), 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := clients[i%2]
		h, err := c.Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
		if err != nil {
			b.Fatal(err)
		}
		c.Unlock(h)
	}
	b.StopTimer()
	for _, c := range clients {
		c.ReleaseAll(context.Background())
	}
}

// BenchmarkConflictResolutionBasic is the traditional normal-grant
// equivalent (full release on every handover).
func BenchmarkConflictResolutionBasic(b *testing.B) {
	_, clients := benchHarness(Basic(), 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := clients[i%2]
		h, err := c.Acquire(context.Background(), 1, LW, extent.New(0, extent.Inf))
		if err != nil {
			b.Fatal(err)
		}
		c.Unlock(h)
	}
	b.StopTimer()
	for _, c := range clients {
		c.ReleaseAll(context.Background())
	}
}

// BenchmarkUpgradeRound measures the same-client PR/NBW upgrade cycle.
func BenchmarkUpgradeRound(b *testing.B) {
	_, clients := benchHarness(SeqDLM(), 1)
	c := clients[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ResourceID(i + 1)
		w, err := c.Acquire(context.Background(), res, NBW, extent.New(0, 100))
		if err != nil {
			b.Fatal(err)
		}
		c.Unlock(w)
		r, err := c.Acquire(context.Background(), res, PR, extent.New(0, 100)) // upgrades to PW
		if err != nil {
			b.Fatal(err)
		}
		c.Unlock(r)
	}
}

// BenchmarkContendedParallel measures aggregate grant throughput with
// many clients hammering one resource.
func BenchmarkContendedParallel(b *testing.B) {
	const nclients = 8
	_, clients := benchHarness(SeqDLM(), nclients)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/nclients + 1
	for _, c := range clients {
		wg.Add(1)
		go func(c *LockClient) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h, err := c.Acquire(context.Background(), 1, NBW, extent.New(0, extent.Inf))
				if err != nil {
					b.Error(err)
					return
				}
				c.Unlock(h)
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	for _, c := range clients {
		c.ReleaseAll(context.Background())
	}
}
