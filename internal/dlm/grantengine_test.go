package dlm

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccpfs/internal/extent"
)

// randReq builds a random request for the equivalence tests: usually a
// plain range, sometimes a non-contiguous extent set whose bounds form
// the range (the invariant Lock validation enforces).
func randReq(rng *rand.Rand, client ClientID, mode Mode) Request {
	start := int64(rng.Intn(400))
	length := int64(1 + rng.Intn(80))
	req := Request{Resource: 1, Client: client, Mode: mode, Range: extent.Extent{Start: start, End: start + length}}
	if rng.Intn(4) == 0 {
		// Two disjoint extents inside the range.
		mid := start + 1 + int64(rng.Intn(int(length)))
		a := extent.Extent{Start: start, End: mid}
		b := extent.Extent{Start: mid + int64(rng.Intn(10)), End: start + length}
		set := extent.Set{a}
		if b.Start < b.End {
			set = append(set, b)
		}
		req.Extents = set
		bounds, _ := set.Bounds()
		req.Range = bounds
	}
	return req
}

// TestIndexedMatchesLinearScan is the index property test: on random
// granted sets and queues, the interval-indexed conflicts, MinSN,
// queueConflict, and expandEnd answers must equal the brute-force
// linear-scan baseline (SetIndexed(false)) exactly.
func TestIndexedMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	modes := []Mode{PR, NBW, BW, PW}
	states := []State{Granted, Canceling}

	for trial := 0; trial < 60; trial++ {
		s := NewServer(SeqDLM(), NotifierFunc(func(context.Context, Revocation) {}))
		res := s.resource(1)

		// Random granted population, installed directly so arbitrary
		// (even unreachable) state combinations get covered.
		n := 1 + rng.Intn(120)
		for i := 0; i < n; i++ {
			req := randReq(rng, ClientID(1+rng.Intn(6)), modes[rng.Intn(len(modes))])
			l := &lock{
				id:         LockID(i + 1),
				client:     req.Client,
				mode:       req.Mode,
				rng:        req.Range,
				set:        req.Extents,
				state:      states[rng.Intn(2)],
				sn:         extent.SN(rng.Intn(40)),
				revokeSent: true,
			}
			if l.state == Granted {
				l.revokeSent = rng.Intn(2) == 0
			}
			res.granted.insert(l)
		}
		// Random live queue for queueConflict/expandEnd coverage.
		for i := 0; i < rng.Intn(20); i++ {
			w := &waiter{
				req: randReq(rng, ClientID(1+rng.Intn(6)), modes[rng.Intn(len(modes))]),
				key: res.wseq,
			}
			res.wseq++
			res.queue = append(res.queue, w)
			res.wtree.Insert(w.req.Range, w.key, w)
		}

		for q := 0; q < 40; q++ {
			mode := modes[rng.Intn(len(modes))]
			probe := &waiter{req: randReq(rng, ClientID(1+rng.Intn(6)), mode)}

			s.SetIndexed(true)
			fast := s.conflicts(res, probe, mode)
			s.SetIndexed(false)
			slow := s.conflicts(res, probe, mode)
			if len(fast) != len(slow) {
				t.Fatalf("conflicts size: indexed %d vs linear %d (req %+v)", len(fast), len(slow), probe.req)
			}
			got := map[LockID]bool{}
			for _, l := range fast {
				got[l.id] = true
			}
			for _, l := range slow {
				if !got[l.id] {
					t.Fatalf("conflicts: linear found lock %d the index missed (req %+v)", l.id, probe.req)
				}
			}

			pstart := int64(rng.Intn(450))
			e := extent.Extent{Start: pstart, End: pstart + 1 + int64(rng.Intn(60))}
			s.SetIndexed(true)
			fsn, fok := s.MinSN(1, e)
			s.SetIndexed(false)
			ssn, sok := s.MinSN(1, e)
			if fsn != ssn || fok != sok {
				t.Fatalf("MinSN(%v): indexed (%d,%v) vs linear (%d,%v)", e, fsn, fok, ssn, sok)
			}

			s.SetIndexed(true)
			res.mu.Lock()
			fqc := s.queueConflict(res, probe, mode, e)
			fend := s.expandEnd(res, probe, mode, e)
			res.mu.Unlock()
			s.SetIndexed(false)
			res.mu.Lock()
			sqc := s.queueConflict(res, probe, mode, e)
			send := s.expandEnd(res, probe, mode, e)
			res.mu.Unlock()
			if fqc != sqc {
				t.Fatalf("queueConflict(%v, %v): indexed %v vs linear %v", mode, e, fqc, sqc)
			}
			if fend != send {
				t.Fatalf("expandEnd(%v, %v): indexed %d vs linear %d", mode, e, fend, send)
			}
		}
	}
}

// tiledPolicy turns off range expansion so distinct clients can hold
// adjacent tiles without the first grant swallowing the keyspace.
func tiledPolicy() Policy {
	p := SeqDLM()
	p.Expand = ExpandNone
	return p
}

// grantTiles grants count adjacent NBW tiles of width w on res, one per
// distinct client starting at firstClient, and returns the lock IDs.
func grantTiles(t testing.TB, s *Server, res ResourceID, count int, w int64, firstClient ClientID) []LockID {
	t.Helper()
	ids := make([]LockID, count)
	for i := 0; i < count; i++ {
		g, err := s.Lock(context.Background(), Request{
			Resource: res,
			Client:   firstClient + ClientID(i),
			Mode:     NBW,
			Range:    extent.Extent{Start: int64(i) * w, End: int64(i+1) * w},
		})
		if err != nil {
			t.Fatalf("tile %d: %v", i, err)
		}
		ids[i] = g.LockID
	}
	return ids
}

// TestReleaseManyLocksNotQuadratic guards the LockID→lock map: releasing
// a large granted set must scale near-linearly. A quadratic release
// (the old linear find + slice splice) grows per-op cost ~16x from 2k
// to 32k locks; the map keeps the ratio near 1, and even heavy timer
// noise stays far below the 8x failure threshold.
func TestReleaseManyLocksNotQuadratic(t *testing.T) {
	perOp := func(n int) time.Duration {
		s := NewServer(tiledPolicy(), NotifierFunc(func(context.Context, Revocation) {}))
		ids := grantTiles(t, s, 1, n, 64, 2)
		rng := rand.New(rand.NewSource(int64(n)))
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		start := time.Now()
		for _, id := range ids {
			s.Release(1, id)
		}
		elapsed := time.Since(start)
		if got := s.GrantedCount(1); got != 0 {
			t.Fatalf("granted after release-all = %d", got)
		}
		return elapsed / time.Duration(n)
	}
	small := perOp(2_000)
	big := perOp(32_000)
	if small <= 0 {
		small = time.Nanosecond
	}
	if ratio := float64(big) / float64(small); ratio > 8 {
		t.Fatalf("release per-op grew %.1fx from 2k to 32k locks (%v -> %v): quadratic", ratio, small, big)
	}
}

// TestRevocationFanOutBounded asserts the revoker's worker-pool bound:
// a conflict revoking many distinct holders must never run more
// concurrent notifier deliveries than the configured pool size.
func TestRevocationFanOutBounded(t *testing.T) {
	const holders = 64
	const bound = 4
	var (
		cur, peak atomic.Int64
		gate      = make(chan struct{})
	)
	s := NewServer(tiledPolicy(), nil)
	s.SetRevokeWorkers(bound)
	s.SetNotifier(NotifierFunc(func(_ context.Context, rv Revocation) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		<-gate
		cur.Add(-1)
		s.RevokeAck(rv.Resource, rv.Lock)
		s.Release(rv.Resource, rv.Lock)
	}))
	grantTiles(t, s, 1, holders, 64, 2)

	done := make(chan error, 1)
	go func() {
		_, err := s.Lock(context.Background(), Request{
			Resource: 1, Client: 1, Mode: PW,
			Range: extent.Extent{Start: 0, End: holders * 64},
		})
		done <- err
	}()
	// The pool must saturate at exactly the bound and go no further.
	waitFor(t, "pool saturation", func() bool { return cur.Load() == bound })
	time.Sleep(20 * time.Millisecond) // give an unbounded pool time to overshoot
	if p := peak.Load(); p != bound {
		t.Fatalf("peak concurrent deliveries = %d, want exactly %d", p, bound)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > bound {
		t.Fatalf("peak concurrent deliveries = %d, exceeded bound %d", p, bound)
	}
	if got := s.Stats.Revocations.Load(); got != holders {
		t.Fatalf("revocations = %d, want %d", got, holders)
	}
}

// countingBatchNotifier acks and force-releases every revocation (an
// in-process stand-in for the data server's vanished-holder path) while
// counting individual revocations and batched deliveries.
type countingBatchNotifier struct {
	s       *Server
	batches atomic.Int64
	revs    atomic.Int64
}

func (n *countingBatchNotifier) Revoke(_ context.Context, rv Revocation) {
	n.revs.Add(1)
	n.s.RevokeAck(rv.Resource, rv.Lock)
	n.s.Release(rv.Resource, rv.Lock)
}

func (n *countingBatchNotifier) RevokeBatch(_ context.Context, _ ClientID, revs []Revocation) {
	n.batches.Add(1)
	n.revs.Add(int64(len(revs)))
	for _, rv := range revs {
		n.s.RevokeAck(rv.Resource, rv.Lock)
		n.s.Release(rv.Resource, rv.Lock)
	}
}

// TestRevocationsBatchedPerClient verifies the batching factor: a
// conflict revoking many locks of ONE client coalesces into a single
// notifier send carrying all of them, and the engine's counters agree
// (Revocations = locks, RevokeBatches = deliveries).
func TestRevocationsBatchedPerClient(t *testing.T) {
	const locks = 100
	s := NewServer(tiledPolicy(), nil)
	n := &countingBatchNotifier{s: s}
	s.SetNotifier(n)

	// One client holds every tile. Same-client tiles do not upgrade into
	// one lock here because conversion only merges on conflict, and
	// non-overlapping tiles never conflict.
	for i := 0; i < locks; i++ {
		if _, err := s.Lock(context.Background(), Request{
			Resource: 1, Client: 9, Mode: NBW,
			Range: extent.Extent{Start: int64(i) * 64, End: int64(i+1) * 64},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Lock(context.Background(), Request{
		Resource: 1, Client: 1, Mode: PW,
		Range: extent.Extent{Start: 0, End: locks * 64},
	}); err != nil {
		t.Fatal(err)
	}
	if got := n.revs.Load(); got != locks {
		t.Fatalf("delivered revocations = %d, want %d", got, locks)
	}
	if got := n.batches.Load(); got != 1 {
		t.Fatalf("notifier sends = %d, want 1 (batching factor %d lost)", got, locks)
	}
	if got := s.Stats.Revocations.Load(); got != locks {
		t.Fatalf("Stats.Revocations = %d, want %d", got, locks)
	}
	if got := s.Stats.RevokeBatches.Load(); got != 1 {
		t.Fatalf("Stats.RevokeBatches = %d, want 1", got)
	}
}

// TestHotResourceChurnStress hammers one resource with concurrent
// Acquire/Unlock churn across modes — driving Lock, Downgrade, Release,
// and RevokeAck through the real client cancel path — while a
// cleanup-daemon-style poller queries MinSN and the invariant checker
// in a loop. Run under -race this is the engine's memory-model test.
func TestHotResourceChurnStress(t *testing.T) {
	const (
		workers = 8
		opsEach = 250
		res     = ResourceID(1)
	)
	h := newHarness(t, SeqDLM(), workers)

	stop := make(chan struct{})
	var daemon sync.WaitGroup
	daemon.Add(1)
	go func() {
		defer daemon.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			off := int64(rng.Intn(1 << 14))
			h.srv.MinSN(res, extent.Extent{Start: off, End: off + 4096})
			if err := h.srv.CheckInvariants(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	modes := []Mode{PR, NBW, BW}
	for wk := 1; wk <= workers; wk++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			c := h.client(id)
			for i := 0; i < opsEach; i++ {
				mode := modes[rng.Intn(len(modes))]
				off := int64(rng.Intn(1<<14)) &^ 511
				hd, err := c.Acquire(context.Background(), res, mode, extent.Extent{Start: off, End: off + 512})
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				c.Unlock(hd)
				if rng.Intn(16) == 0 {
					c.ReleaseAll(context.Background())
				}
			}
		}(wk)
	}
	wg.Wait()
	close(stop)
	daemon.Wait()

	for i := 1; i <= workers; i++ {
		h.client(i).ReleaseAll(context.Background())
	}
	waitFor(t, "granted set to drain", func() bool { return h.srv.GrantedCount(res) == 0 })
	if err := h.srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
