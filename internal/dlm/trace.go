package dlm

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ccpfs/internal/extent"
	"ccpfs/internal/sim"
)

// EventKind labels a protocol event recorded by the Tracer.
type EventKind uint8

// Protocol events.
const (
	EvRequest EventKind = iota
	EvGrant
	EvEarlyRevocation
	EvRevokeSent
	EvRevokeAck
	EvDowngrade
	EvRelease
	EvUpgrade
)

func (k EventKind) String() string {
	switch k {
	case EvRequest:
		return "request"
	case EvGrant:
		return "grant"
	case EvEarlyRevocation:
		return "early-revocation"
	case EvRevokeSent:
		return "revoke-sent"
	case EvRevokeAck:
		return "revoke-ack"
	case EvDowngrade:
		return "downgrade"
	case EvRelease:
		return "release"
	case EvUpgrade:
		return "upgrade"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one recorded protocol step.
type Event struct {
	At       time.Time
	Kind     EventKind
	Resource ResourceID
	Client   ClientID
	Lock     LockID
	Mode     Mode
	Range    extent.Extent
	SN       extent.SN
}

func (e Event) String() string {
	return fmt.Sprintf("%s res=%d client=%d lock=%d %v %v sn=%d",
		e.Kind, e.Resource, e.Client, e.Lock, e.Mode, e.Range, e.SN)
}

// Tracer is a bounded ring buffer of protocol events, attachable to a
// Server for debugging and for asserting protocol sequences in tests.
// It is safe for concurrent use. A nil *Tracer is a no-op.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total int
	clk   sim.Clock
}

// NewTracer returns a tracer keeping the last n events (n >= 1).
func NewTracer(n int) *Tracer {
	if n < 1 {
		n = 1
	}
	return &Tracer{ring: make([]Event, n)}
}

func (t *Tracer) record(ev Event) {
	if t == nil {
		return
	}
	ev.At = t.clk.Now()
	t.mu.Lock()
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]Event, 0, n)
	start := (t.next - n + len(t.ring)) % len(t.ring)
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Total returns how many events were recorded (including evicted ones).
func (t *Tracer) Total() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dump renders the buffered events one per line.
func (t *Tracer) Dump() string {
	evs := t.Events()
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Kinds returns just the event kinds in order, convenient for sequence
// assertions.
func (t *Tracer) Kinds() []EventKind {
	evs := t.Events()
	out := make([]EventKind, len(evs))
	for i, e := range evs {
		out[i] = e.Kind
	}
	return out
}

// SetTracer attaches a tracer to the server (nil detaches). Attach
// before traffic; the pointer is read without synchronization on hot
// paths.
func (s *Server) SetTracer(t *Tracer) {
	if t != nil {
		t.clk = s.clk
	}
	s.tracer = t
}
