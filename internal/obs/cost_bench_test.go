// Primitive-cost benchmarks. These exist to keep the numbers behind
// the instrumentation design honest on whatever hardware runs them:
// Now vs time.Now shows what the monotonic-clock shortcut saves and
// what a clock read still costs (the reason rpc latency timing is
// sampled), Record and CounterAdd bound the per-instrument price.
package obs

import (
	"testing"
	"time"
)

func BenchmarkNow(b *testing.B) {
	var s int64
	for i := 0; i < b.N; i++ {
		s += Now()
	}
	_ = s
}

func BenchmarkTimeNow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = time.Now()
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(int64(i&1023) + 1000)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
