package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// HistSnapshot is a point-in-time copy of a Histogram. Snapshots from
// different registries (one per data server) merge additively, which
// is exact for count/sum/buckets and conservative (max of maxes) for
// the maximum.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [numBuckets]int64
}

// Merge folds o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-th quantile (0 < q <= 1) by locating the
// bucket containing the target rank and interpolating linearly within
// its [2^(i-1), 2^i) range. Returns 0 for an empty snapshot. The
// estimate never exceeds the observed Max.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum < target {
			continue
		}
		if i == 0 {
			return 0
		}
		lo := int64(1) << (i - 1)
		hi := int64(1) << i
		if i >= 63 {
			hi = s.Max
		}
		// Position of the target rank inside this bucket.
		frac := float64(target-(cum-n)) / float64(n)
		v := lo + int64(frac*float64(hi-lo))
		if v > s.Max && s.Max > 0 {
			v = s.Max
		}
		return v
	}
	return s.Max
}

// Mean returns the average recorded value, or 0 when empty.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// histJSON is the wire shape of a histogram snapshot: summary
// statistics plus the sparse non-empty buckets, so merged snapshots
// can be reconstructed from JSON if needed.
type histJSON struct {
	Count   int64            `json:"count"`
	SumNs   int64            `json:"sum_ns"`
	AvgNs   int64            `json:"avg_ns"`
	P50Ns   int64            `json:"p50_ns"`
	P90Ns   int64            `json:"p90_ns"`
	P99Ns   int64            `json:"p99_ns"`
	MaxNs   int64            `json:"max_ns"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// MarshalJSON emits summary statistics (percentiles in nanoseconds)
// plus the sparse bucket counts.
func (s HistSnapshot) MarshalJSON() ([]byte, error) {
	j := histJSON{
		Count: s.Count,
		SumNs: s.Sum,
		AvgNs: s.Mean(),
		P50Ns: s.Quantile(0.50),
		P90Ns: s.Quantile(0.90),
		P99Ns: s.Quantile(0.99),
		MaxNs: s.Max,
	}
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if j.Buckets == nil {
			j.Buckets = map[string]int64{}
		}
		j.Buckets[fmt.Sprintf("%d", i)] = n
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a snapshot from its JSON form. Summary
// fields other than count/sum/max are derived, so only the buckets
// and totals are read back.
func (s *HistSnapshot) UnmarshalJSON(data []byte) error {
	var j histJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = HistSnapshot{Count: j.Count, Sum: j.SumNs, Max: j.MaxNs}
	for k, n := range j.Buckets {
		var i int
		if _, err := fmt.Sscanf(k, "%d", &i); err != nil || i < 0 || i >= numBuckets {
			continue
		}
		s.Buckets[i] = n
	}
	return nil
}

// Snapshot is a point-in-time copy of a whole registry. The zero
// value is not usable; construct with NewSnapshot.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// NewSnapshot returns an empty snapshot ready for merging.
func NewSnapshot() Snapshot {
	return Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
}

// Merge folds o into s: counters and gauges add (a summed gauge reads
// as cluster-wide total, e.g. total dirty bytes), histograms merge
// bucket-wise.
func (s Snapshot) Merge(o Snapshot) {
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	for name, h := range o.Histograms {
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

// Hist returns the named histogram snapshot (zero-valued when absent).
func (s Snapshot) Hist(name string) HistSnapshot { return s.Histograms[name] }

// WriteTable renders the snapshot as aligned text, sorted by name
// within each section — the human-facing form used by seqbench and
// /debug/metrics?format=text.
func (s Snapshot) WriteTable(w io.Writer) {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-40s %12d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-40s %12d (gauge)\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(w, "%-40s n=%-9d p50=%-11s p90=%-11s p99=%-11s max=%s\n",
			name, h.Count,
			fmtNs(h.Quantile(0.50)), fmtNs(h.Quantile(0.90)),
			fmtNs(h.Quantile(0.99)), fmtNs(h.Max))
	}
}

// fmtNs renders nanoseconds at a human scale.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
