package obs

import (
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("hits") != c {
		t.Fatal("Counter not idempotent by name")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	r.Func("sampled", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["hits"] != 5 || s.Gauges["depth"] != 7 || s.Gauges["sampled"] != 42 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// Uniform 1..1000: p50 should land near 500, p99 near 990,
	// both within the 2x bound of a log2 bucket plus interpolation.
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 500500 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d", s.Max)
	}
	p50 := s.Quantile(0.50)
	if p50 < 256 || p50 > 1000 {
		t.Fatalf("p50 = %d, want within [256,1000]", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 512 || p99 > 1000 {
		t.Fatalf("p99 = %d, want within [512,1000]", p99)
	}
	if q := s.Quantile(1.0); q > s.Max {
		t.Fatalf("p100 = %d beyond max %d", q, s.Max)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	h.Record(-5) // clamps to 0
	h.Record(0)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 0 || s.Buckets[0] != 2 {
		t.Fatalf("zero handling: %+v", s)
	}
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("all-zero p99 = %d", got)
	}
	h.Observe(3 * time.Millisecond)
	if got := h.Sum(); got != 3e6 {
		t.Fatalf("Observe sum = %d", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d", sa.Count)
	}
	if sa.Sum != 100*10+100*1000 {
		t.Fatalf("merged sum = %d", sa.Sum)
	}
	if sa.Max != 1000 {
		t.Fatalf("merged max = %d", sa.Max)
	}
	// Median of a 50/50 mix of 10s and 1000s sits at the boundary;
	// p90 must come from the high population.
	if p90 := sa.Quantile(0.90); p90 < 512 {
		t.Fatalf("merged p90 = %d, want >= 512", p90)
	}
}

func TestSnapshotMergeAndJSON(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("ops").Add(3)
	r2.Counter("ops").Add(4)
	r1.Gauge("depth").Set(1)
	r2.Gauge("depth").Set(2)
	r1.Histogram("lat").Record(100)
	r2.Histogram("lat").Record(200)

	s := NewSnapshot()
	s.Merge(r1.Snapshot())
	s.Merge(r2.Snapshot())
	if s.Counters["ops"] != 7 || s.Gauges["depth"] != 3 {
		t.Fatalf("merged scalars: %+v", s)
	}
	if h := s.Hist("lat"); h.Count != 2 || h.Sum != 300 {
		t.Fatalf("merged hist: %+v", h)
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p50_ns"`, `"p99_ns"`, `"max_ns"`, `"ops":7`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %s: %s", want, data)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if h := back.Hist("lat"); h.Count != 2 || h.Sum != 300 || h.Max != 200 {
		t.Fatalf("JSON round trip hist: %+v", h)
	}

	var buf strings.Builder
	s.WriteTable(&buf)
	if !strings.Contains(buf.String(), "lat") || !strings.Contains(buf.String(), "p99=") {
		t.Fatalf("table output: %q", buf.String())
	}
}

// TestHistogramRaceStress hammers a histogram and a registry from many
// goroutines — concurrent record, snapshot, and merge — and checks the
// final totals. Run under -race in CI.
func TestHistogramRaceStress(t *testing.T) {
	const (
		writers    = 8
		perWriter  = 5000
		snapshoter = 4
	)
	r := NewRegistry()
	h := r.Histogram("stress")
	c := r.Counter("stress_ops")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < snapshoter; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			merged := NewSnapshot()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				merged.Merge(s)
				// Quantiles over a torn-but-valid snapshot must not
				// panic or exceed the recorded range.
				if q := s.Hist("stress").Quantile(rng.Float64()); q < 0 {
					panic("negative quantile")
				}
			}
		}(int64(i))
	}
	var writerWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writerWG.Add(1)
		go func(seed int64) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < perWriter; j++ {
				h.Record(rng.Int63n(1 << 30))
				c.Inc()
			}
		}(int64(i) + 100)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	s := r.Snapshot()
	if got := s.Hist("stress").Count; got != writers*perWriter {
		t.Fatalf("final count = %d, want %d", got, writers*perWriter)
	}
	if got := s.Counters["stress_ops"]; got != writers*perWriter {
		t.Fatalf("final counter = %d, want %d", got, writers*perWriter)
	}
	var total int64
	for _, n := range s.Hist("stress").Buckets {
		total += n
	}
	if total != writers*perWriter {
		t.Fatalf("bucket total = %d, want %d", total, writers*perWriter)
	}
}
