// Package obs is the repo-wide observability layer: a dependency-free
// metrics registry built from atomic counters, gauges, and log-bucketed
// latency histograms.
//
// Design rules (see DESIGN.md §10):
//
//   - The fast path is allocation-free. Recording into any instrument is
//     a handful of atomic adds on preallocated storage — no maps, no
//     locks, no interface boxing. Registration (which does take a lock)
//     happens once at setup time, never per operation.
//   - Every instrument is usable as a zero value, so components can
//     embed histograms directly in their stats structs and register the
//     pointers into a Registry later (or never, for tests).
//   - Snapshots are plain values: mergeable across registries (one per
//     data server in a cluster), JSON-marshalable for the /debug/metrics
//     endpoint, and renderable as an aligned text table for seqbench.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// base anchors Now's monotonic clock. time.Since on a time that
// carries a monotonic reading skips the wall-clock read that time.Now
// performs, leaving a single runtime clock read (~30ns on this class
// of hardware — which is why latency instrumentation on the RPC fast
// path samples its clock reads instead of timing every call).
var base = time.Now()

// Now returns a monotonic timestamp in nanoseconds for latency
// measurement: pair two calls and Record their difference. It is
// meaningful only relative to other Now values in the same process.
func Now() int64 { return int64(time.Since(base)) }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n and returns the new value, so a call
// site can count and make a sampling decision with one atomic op.
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Inc increments the counter by one and returns the new value.
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that can move both ways
// (in-flight requests, queue depth, dirty bytes).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// numBuckets is the number of log2 histogram buckets. Bucket i counts
// values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i); bucket 0
// holds exact zeros. 64 buckets cover the full int64 range, so a
// nanosecond histogram spans sub-ns to ~292 years with one atomic add
// per record and ≤2x quantization error before interpolation.
const numBuckets = 65

// Histogram is a log2-bucketed distribution with preallocated atomic
// buckets. The zero value is ready to use. Record is wait-free apart
// from a rarely-contended CAS loop maintaining the max.
type Histogram struct {
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Record adds one observation. Negative values are clamped to zero
// (they only arise from clock anomalies in latency measurement).
// The count is not maintained separately — Count sums the buckets —
// keeping the fast path at two atomic adds plus a usually-failing
// max check.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe records a duration in nanoseconds.
func (h *Histogram) Observe(d time.Duration) { h.Record(d.Nanoseconds()) }

// Since records the elapsed time from t to now, in nanoseconds.
func (h *Histogram) Since(t time.Time) { h.Record(time.Since(t).Nanoseconds()) }

// Count returns the number of recorded observations (a sum over the
// bucket array; cheap enough for snapshot paths, not meant per-op).
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the running total of all recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot returns a point-in-time copy of the distribution. Buckets
// are read without a global lock, so a snapshot taken concurrently
// with Record may be slightly torn between fields (count vs buckets);
// each individual field is still a valid atomic read, which is all the
// quantile math needs.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	return s
}

// Registry is a named collection of instruments. All methods are safe
// for concurrent use; the intended pattern is get-or-create / register
// at setup time and lock-free recording thereafter.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	funcs      map[string]func() int64
	hists      map[string]*Histogram
	collectors []Collector
}

// Collector contributes dynamically named instruments to a snapshot
// (e.g. per-RPC-method histograms that only exist once a method has
// seen traffic). Collect is called under no registry lock and must add
// entries to the snapshot maps directly.
type Collector interface {
	Collect(s *Snapshot)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		funcs:    map[string]func() int64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func registers a sampling function reported as a gauge at snapshot
// time. Used to surface values a component already maintains (dirty
// bytes, extent-cache entries) without double counting.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// RegisterHistogram exposes a histogram owned by another struct (e.g.
// dlm.Stats wait histograms) under the given name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}

// RegisterCounter exposes an externally owned counter.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// RegisterGauge exposes an externally owned gauge.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = g
}

// RegisterCollector adds a dynamic instrument source.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Snapshot captures every registered instrument. Sampling functions
// and collectors run outside the registry lock so they may take their
// own locks freely.
func (r *Registry) Snapshot() Snapshot {
	s := NewSnapshot()
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	for name, fn := range funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range hists {
		s.Histograms[name] = h.Snapshot()
	}
	for _, c := range collectors {
		c.Collect(&s)
	}
	return s
}
