package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestBandwidth(t *testing.T) {
	cases := map[float64]string{
		2.5 * (1 << 30): "2.50 GB/s",
		33 * (1 << 20):  "33.00 MB/s",
		1.5 * (1 << 10): "1.50 KB/s",
		12:              "12.00 B/s",
		// The scale is binary, like Size: 1e9 B/s is still MB/s territory.
		1e9: "953.67 MB/s",
	}
	for in, want := range cases {
		if got := Bandwidth(in); got != want {
			t.Errorf("Bandwidth(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSize(t *testing.T) {
	cases := map[int64]string{
		64 << 10: "64KB",
		1 << 20:  "1024KB",
		1 << 30:  "1GB",
		47008:    "47008B",
	}
	for in, want := range cases {
		if got := Size(in); got != want {
			t.Errorf("Size(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSecondsAndRatio(t *testing.T) {
	if got := Seconds(1500 * time.Millisecond); got != "1.50s" {
		t.Fatalf("Seconds = %q", got)
	}
	if got := Ratio(18.06); got != "18.1x" {
		t.Fatalf("Ratio = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("DLM", "Bandwidth", "Time")
	tb.Row("SeqDLM", "33.2 GB/s", 18.1)
	tb.Row("DLM-basic", "33.8 GB/s", 19.1)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: "Bandwidth" starts at the same offset everywhere.
	idx := strings.Index(lines[0], "Bandwidth")
	if !strings.HasPrefix(lines[2][idx:], "33.2") || !strings.HasPrefix(lines[3][idx:], "33.8") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	tb := NewTable("A")
	if out := tb.String(); !strings.Contains(out, "A") {
		t.Fatalf("header missing: %q", out)
	}
}
