// Package metrics provides the small formatting and tabulation helpers
// the benchmark harness uses to print paper-style tables and series.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Bandwidth formats bytes/second on the same 1,024-based scale as Size,
// matching how the paper quotes both write sizes and throughput (64KB,
// 2.5 GB/s). Earlier versions used decimal (1e9) thresholds here while
// Size used binary, so a rate and the size that produced it could
// disagree by 7% in print.
func Bandwidth(bps float64) string {
	switch {
	case bps >= 1<<30:
		return fmt.Sprintf("%.2f GB/s", bps/(1<<30))
	case bps >= 1<<20:
		return fmt.Sprintf("%.2f MB/s", bps/(1<<20))
	case bps >= 1<<10:
		return fmt.Sprintf("%.2f KB/s", bps/(1<<10))
	}
	return fmt.Sprintf("%.2f B/s", bps)
}

// Size formats a byte count (1,024-based, as write sizes are quoted in
// the paper: 64KB, 1,024KB, ...).
func Size(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// Seconds formats a duration in seconds with two decimals.
func Seconds(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }

// Ratio formats a speedup factor.
func Ratio(x float64) string { return fmt.Sprintf("%.1fx", x) }

// Table accumulates rows and renders them with aligned columns, the
// output format of the seqbench tool and the benchmark logs.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with a header row.
func NewTable(cols ...string) *Table { return &Table{header: cols} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		row[i] = fmt.Sprintf("%v", v)
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
