package rpc

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the lock-free replacement for the endpoint's old
// mu-guarded pending/active maps. Sharding (PR 2) pushed every other
// hot-path lock off the RPC round trip, but the per-endpoint ep.mu
// remained: registering, completing, and cancelling a call all
// serialized on it, and under b.RunParallel the parallel round trip ran
// *slower* than serial. callTable removes that point entirely — issue,
// complete, and forget are now a handful of CAS/load/store operations
// on disjoint cache lines.
//
// Layout: a fixed power-of-two array of slots, open-addressed by a
// Fibonacci hash of the call ID with a short linear probe window, plus
// a mutex-guarded overflow map for bursts that exceed the window (e.g.
// a 512-call CallBatch whose IDs collide). Call IDs come from a
// monotonically increasing counter and are never reused, which is what
// makes the slot protocol ABA-free.
//
// Slot state machine, entirely on the slot's id word:
//
//	0 ──CAS──▶ slotClaim ──Store(id)──▶ id ──CAS──▶ slotClaim ──Store(0)──▶ 0
//	   (register claims)  (publish)        (take claims)      (recycle)
//
// The val field is written only between a successful claim CAS and the
// publishing store, and read only between a successful take CAS and the
// clearing store — the id word's acquire/release ordering brackets
// every val access, so vals need no atomics of their own. The take CAS
// succeeds for exactly one caller per registered id, which is the
// single-sender guarantee the reply-channel recycling (chanPool)
// depends on.

const (
	// tableBits sizes the slot array: 1<<tableBits slots per table, two
	// tables (pending + active) per endpoint — 16 KiB each at 16 bytes
	// per slot. Sized so the steady-state in-flight load of the wide
	// flush path (512-call batches) fits without spilling to overflow.
	tableBits   = 10
	tableSize   = 1 << tableBits
	tableMask   = tableSize - 1
	probeWindow = 32

	// slotClaim marks a slot mid-transition. Call IDs start at 1 and
	// increment, so neither 0 (free) nor ^0 can collide with a real id.
	slotClaim = ^uint64(0)
)

// tableHash spreads sequential call IDs across the table (Fibonacci
// hashing): adjacent IDs — the common case, one goroutine issuing
// back-to-back calls — land on distant cache lines.
func tableHash(id uint64) uint64 {
	return (id * 0x9E3779B97F4A7C15) >> (64 - tableBits)
}

// callSlot is one open-addressed entry. Slots are deliberately not
// cache-line padded: the hash already scatters concurrent IDs, and
// padding would quadruple the table to 64 KiB per direction per
// endpoint (simulations run hundreds of endpoints).
type callSlot[V any] struct {
	id  atomic.Uint64
	val V
}

// callTable maps in-flight call IDs to per-call state (reply channels
// on the outbound side, cancelable contexts on the inbound side)
// without a lock on any fast path.
type callTable[V any] struct {
	count  atomic.Int64
	closed atomic.Bool
	slots  [tableSize]callSlot[V]

	// Overflow for probe-window misses. Reaching it means >probeWindow
	// in-flight IDs hashed into one neighborhood — rare by construction,
	// so a mutex here costs the fast path nothing.
	mu       sync.Mutex
	overflow map[uint64]V
}

// register publishes v under id. It returns false when the table is
// closed — including when close raced the registration, in which case
// either this call withdrew the entry (as if never registered) or the
// drain took it (and its ErrClosed delivery is in flight); both sides
// of that race agree via the take CAS, so exactly one of them owns the
// entry.
func (t *callTable[V]) register(id uint64, v V) bool {
	if t.closed.Load() {
		return false
	}
	h := tableHash(id)
	for i := uint64(0); i < probeWindow; i++ {
		s := &t.slots[(h+i)&tableMask]
		if s.id.Load() == 0 && s.id.CompareAndSwap(0, slotClaim) {
			s.val = v
			s.id.Store(id)
			t.count.Add(1)
			// Re-check closed now that the entry is visible: the drain
			// sweep may already have passed this slot. If so, withdraw
			// the entry ourselves; losing the withdraw race means the
			// drain owns it and will deliver the close error.
			if t.closed.Load() {
				if _, ok := t.take(id); ok {
					return false
				}
			}
			return true
		}
	}
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		return false
	}
	if t.overflow == nil {
		t.overflow = make(map[uint64]V)
	}
	t.overflow[id] = v
	t.count.Add(1)
	t.mu.Unlock()
	return true
}

// take removes and returns the entry for id. Exactly one taker wins per
// registered id (complete, forget, cancel, and drain all funnel through
// the same claim CAS); the rest see ok=false.
func (t *callTable[V]) take(id uint64) (V, bool) {
	var zero V
	h := tableHash(id)
	for i := uint64(0); i < probeWindow; i++ {
		s := &t.slots[(h+i)&tableMask]
		if s.id.Load() == id {
			if s.id.CompareAndSwap(id, slotClaim) {
				v := s.val
				s.val = zero
				s.id.Store(0)
				t.count.Add(-1)
				return v, true
			}
			// Another taker claimed it first. IDs are never reused, so
			// there is no entry left to find.
			return zero, false
		}
	}
	t.mu.Lock()
	if v, ok := t.overflow[id]; ok {
		delete(t.overflow, id)
		t.count.Add(-1)
		t.mu.Unlock()
		return v, true
	}
	t.mu.Unlock()
	return zero, false
}

// length returns the number of registered entries (tests, metrics).
func (t *callTable[V]) length() int {
	// The counter can be transiently negative mid-claim; clamp for
	// display.
	if n := t.count.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// closeAndDrain marks the table closed and removes every entry,
// returning them. Only the first caller drains (first=true); later
// calls are no-ops. After closeAndDrain, register returns false, so the
// caller owns delivering a close error to each drained entry and no
// entry can be lost: registrations concurrent with the sweep either
// self-withdraw or are swept.
func (t *callTable[V]) closeAndDrain() (items []V, first bool) {
	if !t.closed.CompareAndSwap(false, true) {
		return nil, false
	}
	var zero V
	for i := range t.slots {
		s := &t.slots[i]
		for {
			w := s.id.Load()
			if w == 0 || w == slotClaim {
				// Free, or mid-register: the registrar re-checks closed
				// after publishing and withdraws its own entry.
				break
			}
			if s.id.CompareAndSwap(w, slotClaim) {
				items = append(items, s.val)
				s.val = zero
				s.id.Store(0)
				t.count.Add(-1)
				break
			}
		}
	}
	t.mu.Lock()
	for id, v := range t.overflow {
		items = append(items, v)
		delete(t.overflow, id)
		t.count.Add(-1)
	}
	t.mu.Unlock()
	return items, true
}

// callCtx is the per-inbound-request context. The old implementation
// used context.WithCancel(baseCtx), which registers every call with the
// parent cancelCtx under the *parent's* mutex — one more lock every
// dispatch and un-dispatch serialized on. callCtx keeps the same
// observable contract (canceled by a peer cancel frame and by endpoint
// teardown, Value/Deadline delegate to the base context) without
// touching the parent: teardown cancels each live callCtx explicitly
// when it drains the active table. The Done channel is allocated lazily
// on first use, so handlers that never block skip the allocation
// entirely.
type callCtx struct {
	base     context.Context
	done     atomic.Pointer[chan struct{}]
	canceled atomic.Bool
	closing  atomic.Bool // arbitration for close(done) between Done and cancel
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func (c *callCtx) Deadline() (time.Time, bool) { return c.base.Deadline() }

func (c *callCtx) Value(key any) any { return c.base.Value(key) }

func (c *callCtx) Err() error {
	if c.canceled.Load() {
		return context.Canceled
	}
	return c.base.Err()
}

func (c *callCtx) Done() <-chan struct{} {
	if c.canceled.Load() && c.done.Load() == nil {
		// Already canceled with no channel published: every waiter can
		// share the one permanently-closed channel.
		return closedChan
	}
	ch := c.done.Load()
	if ch == nil {
		n := make(chan struct{})
		if c.done.CompareAndSwap(nil, &n) {
			ch = &n
		} else {
			ch = c.done.Load()
		}
		// cancel may have run between the canceled check above and the
		// publish; it would have seen done==nil and skipped the close,
		// so finish the job here. closing arbitrates the close between
		// this path and cancel.
		if c.canceled.Load() && c.closing.CompareAndSwap(false, true) {
			close(*ch)
		}
	}
	return *ch
}

// cancel fires the context. Idempotent and safe to race with Done.
func (c *callCtx) cancel() {
	c.canceled.Store(true)
	if ch := c.done.Load(); ch != nil && c.closing.CompareAndSwap(false, true) {
		close(*ch)
	}
}
