package rpc

import (
	"context"
	"testing"
	"time"

	"ccpfs/internal/obs"
	"ccpfs/internal/sim"
	"ccpfs/internal/transport/memnet"
	"ccpfs/internal/wire"
)

// waitForCount polls an asynchronously-updated instrument until it
// reaches want (counters recorded after the reply frame is sent can
// trail the client's view of the call).
func waitForCount(t *testing.T, what string, want int64, get func() int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := get(); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", what, get(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMetricsRoundTrip drives instrumented endpoints on both sides and
// checks the per-method counters, histograms, in-flight derivation,
// and byte counters move. Sampling is set to 1 so every call is timed
// and the histogram counts are deterministic.
func TestMetricsRoundTrip(t *testing.T) {
	net := memnet.New(sim.Fast())
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srvM := NewMetrics()
	srvM.SetSampleInterval(1)
	srv := NewServer(l, Options{Metrics: srvM}, func(ep *Endpoint) {
		ep.Handle(wire.MHello, func(_ context.Context, p []byte) (wire.Msg, error) {
			var req wire.HelloRequest
			if err := wire.Unmarshal(p, &req); err != nil {
				return nil, err
			}
			return &wire.HelloReply{ClientID: req.ClientID + 1}, nil
		})
		ep.Handle(wire.MRelease, func(_ context.Context, p []byte) (wire.Msg, error) {
			return &wire.Ack{}, nil
		})
	})
	go srv.Serve()
	conn, err := net.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	cliM := NewMetrics()
	cliM.SetSampleInterval(1)
	cli := NewEndpoint(conn, Options{Metrics: cliM})
	cli.Start()
	defer func() {
		cli.Close()
		srv.Close()
	}()

	const calls = 10
	for i := 0; i < calls; i++ {
		var rep wire.HelloReply
		if err := cli.Call(context.Background(), wire.MHello, &wire.HelloRequest{NodeName: "c", ClientID: 1}, &rep); err != nil {
			t.Fatal(err)
		}
	}
	batch := []BatchCall{
		{Method: wire.MRelease, Req: &wire.ReleaseRequest{}, Reply: &wire.Ack{}},
		{Method: wire.MRelease, Req: &wire.ReleaseRequest{}, Reply: &wire.Ack{}},
	}
	if err := cli.CallBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}

	if got := cliM.Calls(wire.MHello); got != calls {
		t.Fatalf("client Hello calls = %d, want %d", got, calls)
	}
	if got := cliM.CallHist(wire.MHello).Count(); got != calls {
		t.Fatalf("client Hello round trips timed = %d, want %d", got, calls)
	}
	if got := cliM.Calls(wire.MRelease); got != 2 {
		t.Fatalf("client Release calls = %d, want 2", got)
	}
	if got := cliM.CallHist(wire.MRelease).Count(); got != 2 {
		t.Fatalf("client Release round trips timed = %d, want 2", got)
	}
	// Handler runs are counted after the reply frame is sent, so the
	// last increment may still be in flight when the client's Call
	// returns; wait for convergence rather than racing it.
	waitForCount(t, "server Hello handles", calls, func() int64 { return srvM.Handles(wire.MHello) })
	waitForCount(t, "server Hello handles timed", calls, func() int64 { return srvM.HandleHist(wire.MHello).Count() })
	if cliM.BytesOut.Load() == 0 || cliM.BytesIn.Load() == 0 {
		t.Fatalf("client bytes in/out = %d/%d, want > 0", cliM.BytesIn.Load(), cliM.BytesOut.Load())
	}
	if out, in := cliM.InFlight(); out != 0 || in != 0 {
		t.Fatalf("client in-flight not back to zero: out=%d in=%d", out, in)
	}
	// The server's active-table entry is dropped after the reply frame
	// is sent, concurrently with the client processing the reply.
	waitForCount(t, "server in-flight out", 0, func() int64 { out, _ := srvM.InFlight(); return int64(out) })
	waitForCount(t, "server in-flight in", 0, func() int64 { _, in := srvM.InFlight(); return int64(in) })

	// Collector output: only methods with traffic appear, named by the
	// wire method, and two Metrics can feed one snapshot additively.
	s := obs.NewSnapshot()
	cliM.Collect(&s)
	srvM.Collect(&s)
	if h := s.Hist("rpc.call.Hello"); h.Count != calls {
		t.Fatalf("rpc.call.Hello count = %d, want %d", h.Count, calls)
	}
	if h := s.Hist("rpc.handle.Hello"); h.Count != calls {
		t.Fatalf("rpc.handle.Hello count = %d, want %d", h.Count, calls)
	}
	if got := s.Counters["rpc.calls.Hello"]; got != calls {
		t.Fatalf("rpc.calls.Hello = %d, want %d", got, calls)
	}
	if _, ok := s.Histograms["rpc.call.Flush"]; ok {
		t.Fatal("method with no traffic leaked into snapshot")
	}
	if s.Counters["rpc.bytes_out"] != cliM.BytesOut.Load()+srvM.BytesOut.Load() {
		t.Fatal("bytes_out did not accumulate across collectors")
	}
}

// TestMetricsSampling checks the default sampling behavior: counts are
// exact, the first call per method is always timed, and thereafter one
// in every interval is.
func TestMetricsSampling(t *testing.T) {
	net := memnet.New(sim.Fast())
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, Options{}, func(ep *Endpoint) {
		ep.Handle(wire.MRelease, func(_ context.Context, p []byte) (wire.Msg, error) {
			return &wire.Ack{}, nil
		})
	})
	go srv.Serve()
	conn, err := net.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	m.SetSampleInterval(8) // pinned so the test is independent of the default
	cli := NewEndpoint(conn, Options{Metrics: m})
	cli.Start()
	defer func() {
		cli.Close()
		srv.Close()
	}()

	const calls = 20 // samples at call 1, 9, 17 → 3
	for i := 0; i < calls; i++ {
		if err := cli.Call(context.Background(), wire.MRelease, &wire.ReleaseRequest{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Calls(wire.MRelease); got != calls {
		t.Fatalf("calls = %d, want %d (counts are exact)", got, calls)
	}
	if got := m.CallHist(wire.MRelease).Count(); got != 3 {
		t.Fatalf("timed samples = %d, want 3 (1st, 9th, 17th)", got)
	}
}
