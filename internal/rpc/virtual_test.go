package rpc

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ccpfs/internal/sim"
	"ccpfs/internal/transport/memnet"
	"ccpfs/internal/wire"
)

// virtualEcho runs a seeded client/server exchange under a virtual
// clock and returns a trace of (caller, virtual-time) completions.
func virtualEcho(t *testing.T, seed int64, callers, calls int) (trace string, virtualElapsed, wallElapsed time.Duration) {
	t.Helper()
	v := sim.NewVClock(seed)
	clk := sim.Virtual(v)
	hw := sim.Hardware{RTT: 10 * time.Microsecond, NetBandwidth: 12.5e9, Clock: clk}
	wallStart := time.Now()
	v.Run(func() {
		start := clk.Now()
		net := memnet.New(hw)
		l, err := net.Listen("srv")
		if err != nil {
			t.Error(err)
			return
		}
		srv := NewServer(l, Options{Clock: clk}, func(ep *Endpoint) {
			ep.Handle(wire.MHello, func(ctx context.Context, payload []byte) (wire.Msg, error) {
				return &wire.HelloReply{}, nil
			})
		})
		clk.Go(srv.Serve)
		defer srv.Close()

		g := sim.NewGroup(clk)
		results := make([]string, callers)
		for i := 0; i < callers; i++ {
			i := i
			g.Go(func() {
				conn, err := net.Dial("srv")
				if err != nil {
					t.Error(err)
					return
				}
				ep := NewEndpoint(conn, Options{Clock: clk})
				ep.Start()
				defer ep.Close()
				for j := 0; j < calls; j++ {
					if err := ep.Call(context.Background(), wire.MHello, &wire.HelloRequest{}, &wire.HelloReply{}); err != nil {
						t.Errorf("caller %d call %d: %v", i, j, err)
						return
					}
				}
				results[i] = fmt.Sprintf("%d@%v;", i, clk.Since(start))
			})
		}
		g.Wait()
		for _, r := range results {
			trace += r
		}
		virtualElapsed = clk.Since(start)
	})
	return trace, virtualElapsed, time.Since(wallStart)
}

// TestVirtualRPCRoundTrips: a full client/server RPC exchange runs on
// the virtual clock: round trips cost RTT in virtual time, near zero
// wall time, and identical seeds give identical traces.
func TestVirtualRPCRoundTrips(t *testing.T) {
	trace1, virt, wall := virtualEcho(t, 42, 4, 50)
	if virt < 50*10*time.Microsecond {
		t.Errorf("virtual elapsed %v, want >= 50 RTTs (500µs)", virt)
	}
	if virt > 200*50*10*time.Microsecond {
		t.Errorf("virtual elapsed %v, implausibly large", virt)
	}
	if wall > 30*time.Second {
		t.Errorf("wall time %v for a virtual exchange", wall)
	}
	trace2, _, _ := virtualEcho(t, 42, 4, 50)
	if trace1 != trace2 {
		t.Fatalf("same-seed runs diverged:\n%s\nvs\n%s", trace1, trace2)
	}
}
