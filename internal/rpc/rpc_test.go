package rpc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/sim"
	"ccpfs/internal/transport"
	"ccpfs/internal/transport/memnet"
	"ccpfs/internal/wire"
)

// newPair returns connected client endpoint and a server whose endpoints
// are configured by setup.
func newPair(t *testing.T, setup func(*Endpoint)) (*Endpoint, *Server) {
	t.Helper()
	return newPairHW(t, sim.Fast(), setup)
}

func newPairHW(t *testing.T, hw sim.Hardware, setup func(*Endpoint)) (*Endpoint, *Server) {
	t.Helper()
	net := memnet.New(hw)
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, Options{}, setup)
	go srv.Serve()
	conn, err := net.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewEndpoint(conn, Options{})
	cli.Start()
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return cli, srv
}

func bg() context.Context { return context.Background() }

func TestCallRoundTrip(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MHello, func(_ context.Context, p []byte) (wire.Msg, error) {
			var req wire.HelloRequest
			if err := wire.Unmarshal(p, &req); err != nil {
				return nil, err
			}
			return &wire.HelloReply{ClientID: req.ClientID + 1}, nil
		})
	})
	var rep wire.HelloReply
	if err := cli.Call(bg(), wire.MHello, &wire.HelloRequest{NodeName: "c", ClientID: 41}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ClientID != 42 {
		t.Fatalf("ClientID = %d, want 42", rep.ClientID)
	}
}

func TestRemoteError(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MOpen, func(_ context.Context, p []byte) (wire.Msg, error) {
			return nil, errors.New("no such file")
		})
	})
	err := cli.Call(bg(), wire.MOpen, &wire.OpenRequest{Path: "/x"}, &wire.FileReply{})
	var we *wire.Error
	if !errors.As(err, &we) || we.Msg != "no such file" {
		t.Fatalf("err = %v, want wire.Error(no such file)", err)
	}
}

func TestTypedErrorCodeSurvivesWire(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MLock, func(_ context.Context, p []byte) (wire.Msg, error) {
			return nil, wire.ErrShuttingDown
		})
		ep.Handle(wire.MRelease, func(_ context.Context, p []byte) (wire.Msg, error) {
			return nil, wire.Errorf(wire.CodeNotOwner, "lock 9 is not yours")
		})
	})
	err := cli.Call(bg(), wire.MLock, &wire.LockRequest{}, nil)
	if !errors.Is(err, wire.ErrShuttingDown) {
		t.Fatalf("err = %v, want ErrShuttingDown across the wire", err)
	}
	err = cli.Call(bg(), wire.MRelease, &wire.ReleaseRequest{}, nil)
	if !errors.Is(err, wire.ErrNotOwner) || wire.CodeOf(err) != wire.CodeNotOwner {
		t.Fatalf("err = %v (code %v), want CodeNotOwner", err, wire.CodeOf(err))
	}
}

func TestUnknownMethod(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {})
	err := cli.Call(bg(), wire.MRead, &wire.ReadRequest{}, nil)
	if err == nil {
		t.Fatal("call to unregistered method succeeded")
	}
	if wire.CodeOf(err) != wire.CodeInvalid {
		t.Fatalf("unknown method error code = %v, want CodeInvalid", wire.CodeOf(err))
	}
}

func TestConcurrentCalls(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MHello, func(_ context.Context, p []byte) (wire.Msg, error) {
			var req wire.HelloRequest
			if err := wire.Unmarshal(p, &req); err != nil {
				return nil, err
			}
			return &wire.HelloReply{ClientID: req.ClientID * 2}, nil
		})
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i uint32) {
			defer wg.Done()
			var rep wire.HelloReply
			if err := cli.Call(bg(), wire.MHello, &wire.HelloRequest{ClientID: i}, &rep); err != nil {
				errs <- err
				return
			}
			if rep.ClientID != i*2 {
				errs <- fmt.Errorf("call %d: got %d", i, rep.ClientID)
			}
		}(uint32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBlockedHandlerDoesNotStallOthers(t *testing.T) {
	release := make(chan struct{})
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MLock, func(_ context.Context, p []byte) (wire.Msg, error) {
			<-release // simulates a lock request waiting for conflict resolution
			return &wire.Ack{}, nil
		})
		ep.Handle(wire.MHello, func(_ context.Context, p []byte) (wire.Msg, error) {
			return &wire.HelloReply{}, nil
		})
	})
	slow := make(chan error, 1)
	go func() {
		slow <- cli.Call(bg(), wire.MLock, &wire.LockRequest{}, nil)
	}()
	// The fast call must complete while the slow one is still blocked.
	done := make(chan error, 1)
	go func() { done <- cli.Call(bg(), wire.MHello, &wire.HelloRequest{}, nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fast call stalled behind blocked handler")
	}
	close(release)
	if err := <-slow; err != nil {
		t.Fatal(err)
	}
}

func TestServerCallbackToClient(t *testing.T) {
	// Server calls MRevoke back into the client over the same connection
	// while handling the client's request — the revocation pattern.
	revoked := make(chan uint64, 1)
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MLock, func(ctx context.Context, p []byte) (wire.Msg, error) {
			if err := ep.Call(ctx, wire.MRevoke, &wire.RevokeRequest{LockID: 7}, nil); err != nil {
				return nil, err
			}
			return &wire.Ack{}, nil
		})
	})
	cli.Handle(wire.MRevoke, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.RevokeRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		revoked <- req.LockID
		return &wire.Ack{}, nil
	})
	if err := cli.Call(bg(), wire.MLock, &wire.LockRequest{}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-revoked:
		if id != 7 {
			t.Fatalf("revoked lock %d, want 7", id)
		}
	default:
		t.Fatal("callback did not reach client")
	}
}

func TestCallAfterCloseFails(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {})
	cli.Close()
	time.Sleep(10 * time.Millisecond)
	if err := cli.Call(bg(), wire.MHello, &wire.HelloRequest{}, nil); err == nil {
		t.Fatal("call on closed endpoint succeeded")
	}
}

func TestPendingCallsFailOnPeerClose(t *testing.T) {
	started := make(chan struct{})
	var srvEp *Endpoint
	var mu sync.Mutex
	cli, srv := newPair(t, func(ep *Endpoint) {
		mu.Lock()
		srvEp = ep
		mu.Unlock()
		ep.Handle(wire.MLock, func(ctx context.Context, p []byte) (wire.Msg, error) {
			close(started)
			<-ctx.Done() // aborts when the endpoint tears down
			return nil, ctx.Err()
		})
	})
	errc := make(chan error, 1)
	go func() {
		errc <- cli.Call(bg(), wire.MLock, &wire.LockRequest{}, nil)
	}()
	<-started
	mu.Lock()
	srvEp.Close()
	mu.Unlock()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("pending call survived peer close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not failed after peer close")
	}
	srv.Close()
}

func TestOnCloseRuns(t *testing.T) {
	closed := make(chan struct{})
	net := memnet.New(sim.Fast())
	l, _ := net.Listen("s")
	srv := NewServer(l, Options{}, func(ep *Endpoint) {})
	go srv.Serve()
	conn, err := net.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewEndpoint(conn, Options{OnClose: func(*Endpoint) { close(closed) }})
	cli.Start()
	cli.Close()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("OnClose never ran")
	}
	srv.Close()
}

func TestServerLimiterThrottles(t *testing.T) {
	net := memnet.New(sim.Fast())
	l, _ := net.Listen("s")
	srv := NewServer(l, Options{Limiter: sim.NewRateLimiter(1000)}, func(ep *Endpoint) {
		ep.Handle(wire.MHello, func(_ context.Context, p []byte) (wire.Msg, error) {
			return &wire.HelloReply{}, nil
		})
	})
	go srv.Serve()
	defer srv.Close()
	conn, err := net.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewEndpoint(conn, Options{})
	cli.Start()
	defer cli.Close()
	start := time.Now()
	for i := 0; i < 30; i++ {
		if err := cli.Call(bg(), wire.MHello, &wire.HelloRequest{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("30 calls at 1000 op/s finished in %v", elapsed)
	}
}

func TestEndpointTag(t *testing.T) {
	var ep Endpoint
	ep.Tag.Store("session-7")
	if got := ep.Tag.Load(); got != "session-7" {
		t.Fatalf("Tag = %v", got)
	}
}

// TestCancelBlockedCall: a call whose handler never replies must return
// promptly when its context is canceled, with no pending entry left
// behind, and the connection must remain usable for later calls. Run
// with simulated latency so cancellation races real in-flight delivery.
func TestCancelBlockedCall(t *testing.T) {
	release := make(chan struct{})
	cli, _ := newPairHW(t, sim.Hardware{RTT: 2 * time.Millisecond}, func(ep *Endpoint) {
		ep.Handle(wire.MLock, func(ctx context.Context, p []byte) (wire.Msg, error) {
			select {
			case <-release:
				return &wire.Ack{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
		ep.Handle(wire.MHello, func(_ context.Context, p []byte) (wire.Msg, error) {
			return &wire.HelloReply{}, nil
		})
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- cli.Call(ctx, wire.MLock, &wire.LockRequest{}, nil) }()
	time.Sleep(5 * time.Millisecond) // let the request reach the handler
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) || !errors.Is(err, wire.ErrCanceled) {
			t.Fatalf("canceled call error = %v, want context.Canceled/wire.ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled call did not return promptly")
	}
	if n := cli.Pending(); n != 0 {
		t.Fatalf("%d pending entries after cancel, want 0", n)
	}
	// The connection survives a canceled call.
	if err := cli.Call(bg(), wire.MHello, &wire.HelloRequest{}, nil); err != nil {
		t.Fatalf("call after cancel failed: %v", err)
	}
	close(release)
}

// TestCancelPropagatesToHandler: abandoning a call sends a cancel frame
// that fires the handler's per-request context, so server-side work
// (a queued lock waiter, a stalled IO) is withdrawn instead of running
// headless until connection teardown.
func TestCancelPropagatesToHandler(t *testing.T) {
	handlerDone := make(chan error, 1)
	cli, _ := newPairHW(t, sim.Hardware{RTT: 2 * time.Millisecond}, func(ep *Endpoint) {
		ep.Handle(wire.MLock, func(ctx context.Context, p []byte) (wire.Msg, error) {
			select {
			case <-ctx.Done():
				handlerDone <- ctx.Err()
				return nil, wire.FromContext(ctx.Err())
			case <-time.After(10 * time.Second):
				handlerDone <- nil
				return &wire.Ack{}, nil
			}
		})
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- cli.Call(ctx, wire.MLock, &wire.LockRequest{}, nil) }()
	time.Sleep(5 * time.Millisecond) // let the request reach the handler
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled call error = %v, want context.Canceled", err)
	}
	select {
	case err := <-handlerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("handler observed %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel frame never reached the handler")
	}
}

// TestCallDeadlineExceeded: an expired deadline surfaces as a timeout
// error matching both context.DeadlineExceeded and wire.ErrTimeout.
func TestCallDeadlineExceeded(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MLock, func(ctx context.Context, p []byte) (wire.Msg, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := cli.Call(ctx, wire.MLock, &wire.LockRequest{}, nil)
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, wire.ErrTimeout) {
		t.Fatalf("err = %v, want DeadlineExceeded/ErrTimeout", err)
	}
	if n := cli.Pending(); n != 0 {
		t.Fatalf("%d pending entries after deadline, want 0", n)
	}
}

// TestPendingCleanupOnSendFailure: when the transport rejects the send,
// Call must deregister its pending entry so a flaky link cannot grow the
// map without bound.
func TestPendingCleanupOnSendFailure(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {})
	cli.conn.Close() // poison the transport underneath the endpoint
	for i := 0; i < 50; i++ {
		if err := cli.Call(bg(), wire.MHello, &wire.HelloRequest{}, nil); err == nil {
			t.Fatal("call over closed transport succeeded")
		}
	}
	if n := cli.Pending(); n != 0 {
		t.Fatalf("%d pending entries leaked after send failures, want 0", n)
	}
}

// TestPreCanceledCallFailsFast: a context canceled before Call never
// touches the transport and leaves no state behind.
func TestPreCanceledCallFailsFast(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cli.Call(ctx, wire.MHello, &wire.HelloRequest{}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := cli.Pending(); n != 0 {
		t.Fatalf("%d pending entries, want 0", n)
	}
}

// TestDrainWaitsForHandlers: Drain returns only after in-flight handlers
// complete, and respects its own context when they do not.
func TestDrainWaitsForHandlers(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var srvEp *Endpoint
	var mu sync.Mutex
	cli, _ := newPair(t, func(ep *Endpoint) {
		mu.Lock()
		srvEp = ep
		mu.Unlock()
		ep.Handle(wire.MLock, func(_ context.Context, p []byte) (wire.Msg, error) {
			started <- struct{}{}
			<-release
			return &wire.Ack{}, nil
		})
	})
	go cli.Call(bg(), wire.MLock, &wire.LockRequest{}, nil)
	<-started
	mu.Lock()
	ep := srvEp
	mu.Unlock()

	// Drain with a short deadline fails while the handler is stuck.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	err := ep.Drain(ctx)
	cancel()
	if !errors.Is(err, wire.ErrTimeout) {
		t.Fatalf("Drain with stuck handler = %v, want ErrTimeout", err)
	}
	close(release)
	if err := ep.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after release = %v", err)
	}
}

// TestServerShutdownDrains: Shutdown completes in-flight handlers before
// closing endpoints — the reply reaches the caller.
func TestServerShutdownDrains(t *testing.T) {
	proceed := make(chan struct{})
	started := make(chan struct{}, 1)
	net := memnet.New(sim.Fast())
	l, _ := net.Listen("s")
	srv := NewServer(l, Options{}, func(ep *Endpoint) {
		ep.Handle(wire.MFlush, func(_ context.Context, p []byte) (wire.Msg, error) {
			started <- struct{}{}
			<-proceed
			return &wire.Ack{}, nil
		})
	})
	go srv.Serve()
	conn, err := net.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewEndpoint(conn, Options{})
	cli.Start()
	defer cli.Close()
	errc := make(chan error, 1)
	go func() { errc <- cli.Call(bg(), wire.MFlush, &wire.FlushRequest{}, &wire.Ack{}) }()
	<-started
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(proceed) // unwedge the in-flight flush while Shutdown drains
	}()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("in-flight call during graceful shutdown = %v", err)
	}
}

// TestServerCloseAcceptRace: closing the server while dials are racing
// the accept loop must not leak endpoint read-loop goroutines. This is
// a goleak-style check: goroutine count returns to baseline.
func TestServerCloseAcceptRace(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for iter := 0; iter < 50; iter++ {
		net := memnet.New(sim.Fast())
		l, _ := net.Listen("s")
		srv := NewServer(l, Options{}, func(ep *Endpoint) {})
		go srv.Serve()
		var conns []transport.Conn
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if c, err := net.Dial("s"); err == nil {
					mu.Lock()
					conns = append(conns, c)
					mu.Unlock()
				}
			}()
		}
		srv.Close() // races the dials above
		wg.Wait()
		for _, c := range conns {
			c.Close()
		}
	}
	// Give exiting read loops a moment, then compare against baseline
	// with slack for runtime background goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

var _ transport.Conn = (transport.Conn)(nil) // interface sanity

// TestPooledReuseStress hammers the pooled fast path — encoder frames,
// reply channels — with concurrent calls, per-call cancellations, and a
// mid-stress Close, under -race in CI. Every completed echo must return
// exactly the payload it sent: a recycled buffer or reply channel that
// leaks between calls shows up as a cross-call payload mismatch (or as
// a race report).
func TestPooledReuseStress(t *testing.T) {
	echo := func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.FlushRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		return &wire.ReadReply{Blocks: req.Blocks}, nil
	}
	cli, _ := newPair(t, func(ep *Endpoint) { ep.Handle(wire.MFlush, echo) })
	const workers = 16
	const callsPer = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := make([]byte, 64+w*17)
			for i := range data {
				data[i] = byte(w)
			}
			req := &wire.FlushRequest{Client: uint32(w), Blocks: []wire.Block{{SN: uint64(w), Data: data}}}
			for i := 0; i < callsPer; i++ {
				ctx := bg()
				var cancel context.CancelFunc
				switch i % 5 {
				case 1:
					// A deadline that usually fires mid-call.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%7)*10*time.Microsecond)
				case 3:
					ctx, cancel = context.WithCancel(ctx)
					go cancel() // racing cancel
				}
				var reply wire.ReadReply
				err := cli.Call(ctx, wire.MFlush, req, &reply)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					continue // canceled/timed out: only integrity of completed calls matters
				}
				if len(reply.Blocks) != 1 || reply.Blocks[0].SN != uint64(w) {
					t.Errorf("worker %d: echo header corrupted: %+v", w, reply.Blocks)
					return
				}
				got := reply.Blocks[0].Data
				if len(got) != len(data) {
					t.Errorf("worker %d: echo length %d, want %d", w, len(got), len(data))
					return
				}
				for j := range got {
					if got[j] != byte(w) {
						t.Errorf("worker %d: byte %d leaked from another call: %d", w, j, got[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Close with no calls in flight, then verify pooled state didn't keep
	// the endpoint artificially alive.
	cli.Close()
	if err := cli.Call(bg(), wire.MFlush, &wire.FlushRequest{}, nil); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("call after close: %v, want ErrClosed", err)
	}
}

// TestPooledReuseStressWithClose races Close against in-flight pooled
// calls: every call must settle (reply, typed error, or ErrClosed) and
// no pending entry may leak.
func TestPooledReuseStressWithClose(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MRelease, func(context.Context, []byte) (wire.Msg, error) {
			return &wire.Ack{}, nil
		})
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &wire.ReleaseRequest{Resource: 1, LockID: 2}
			for i := 0; i < 200; i++ {
				cli.Call(bg(), wire.MRelease, req, nil)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	cli.Close()
	wg.Wait()
	if n := cli.Pending(); n != 0 {
		var ids []uint64
		for i := range cli.pending.slots {
			if w := cli.pending.slots[i].id.Load(); w != 0 {
				ids = append(ids, w)
			}
		}
		cli.pending.mu.Lock()
		of := len(cli.pending.overflow)
		cli.pending.mu.Unlock()
		t.Fatalf("%d pending entries leaked through close (slots=%v overflow=%d count=%d closed=%v)",
			n, ids, of, cli.pending.count.Load(), cli.pending.closed.Load())
	}
}
