package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/sim"
	"ccpfs/internal/transport"
	"ccpfs/internal/transport/memnet"
	"ccpfs/internal/wire"
)

// newPair returns connected client endpoint and a server whose endpoints
// are configured by setup.
func newPair(t *testing.T, setup func(*Endpoint)) (*Endpoint, *Server) {
	t.Helper()
	net := memnet.New(sim.Fast())
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, Options{}, setup)
	go srv.Serve()
	conn, err := net.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewEndpoint(conn, Options{})
	cli.Start()
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return cli, srv
}

func TestCallRoundTrip(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MHello, func(p []byte) (wire.Msg, error) {
			var req wire.HelloRequest
			if err := wire.Unmarshal(p, &req); err != nil {
				return nil, err
			}
			return &wire.HelloReply{ClientID: req.ClientID + 1}, nil
		})
	})
	var rep wire.HelloReply
	if err := cli.Call(wire.MHello, &wire.HelloRequest{NodeName: "c", ClientID: 41}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ClientID != 42 {
		t.Fatalf("ClientID = %d, want 42", rep.ClientID)
	}
}

func TestRemoteError(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MOpen, func(p []byte) (wire.Msg, error) {
			return nil, errors.New("no such file")
		})
	})
	err := cli.Call(wire.MOpen, &wire.OpenRequest{Path: "/x"}, &wire.FileReply{})
	var re RemoteError
	if !errors.As(err, &re) || re.Error() != "no such file" {
		t.Fatalf("err = %v, want RemoteError(no such file)", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {})
	err := cli.Call(wire.MRead, &wire.ReadRequest{}, nil)
	if err == nil {
		t.Fatal("call to unregistered method succeeded")
	}
}

func TestConcurrentCalls(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MHello, func(p []byte) (wire.Msg, error) {
			var req wire.HelloRequest
			if err := wire.Unmarshal(p, &req); err != nil {
				return nil, err
			}
			return &wire.HelloReply{ClientID: req.ClientID * 2}, nil
		})
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i uint32) {
			defer wg.Done()
			var rep wire.HelloReply
			if err := cli.Call(wire.MHello, &wire.HelloRequest{ClientID: i}, &rep); err != nil {
				errs <- err
				return
			}
			if rep.ClientID != i*2 {
				errs <- fmt.Errorf("call %d: got %d", i, rep.ClientID)
			}
		}(uint32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBlockedHandlerDoesNotStallOthers(t *testing.T) {
	release := make(chan struct{})
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MLock, func(p []byte) (wire.Msg, error) {
			<-release // simulates a lock request waiting for conflict resolution
			return &wire.Ack{}, nil
		})
		ep.Handle(wire.MHello, func(p []byte) (wire.Msg, error) {
			return &wire.HelloReply{}, nil
		})
	})
	slow := make(chan error, 1)
	go func() {
		slow <- cli.Call(wire.MLock, &wire.LockRequest{}, nil)
	}()
	// The fast call must complete while the slow one is still blocked.
	done := make(chan error, 1)
	go func() { done <- cli.Call(wire.MHello, &wire.HelloRequest{}, nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fast call stalled behind blocked handler")
	}
	close(release)
	if err := <-slow; err != nil {
		t.Fatal(err)
	}
}

func TestServerCallbackToClient(t *testing.T) {
	// Server calls MRevoke back into the client over the same connection
	// while handling the client's request — the revocation pattern.
	revoked := make(chan uint64, 1)
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MLock, func(p []byte) (wire.Msg, error) {
			if err := ep.Call(wire.MRevoke, &wire.RevokeRequest{LockID: 7}, nil); err != nil {
				return nil, err
			}
			return &wire.Ack{}, nil
		})
	})
	cli.Handle(wire.MRevoke, func(p []byte) (wire.Msg, error) {
		var req wire.RevokeRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		revoked <- req.LockID
		return &wire.Ack{}, nil
	})
	if err := cli.Call(wire.MLock, &wire.LockRequest{}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-revoked:
		if id != 7 {
			t.Fatalf("revoked lock %d, want 7", id)
		}
	default:
		t.Fatal("callback did not reach client")
	}
}

func TestCallAfterCloseFails(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {})
	cli.Close()
	time.Sleep(10 * time.Millisecond)
	if err := cli.Call(wire.MHello, &wire.HelloRequest{}, nil); err == nil {
		t.Fatal("call on closed endpoint succeeded")
	}
}

func TestPendingCallsFailOnPeerClose(t *testing.T) {
	started := make(chan struct{})
	var srvEp *Endpoint
	var mu sync.Mutex
	cli, srv := newPair(t, func(ep *Endpoint) {
		mu.Lock()
		srvEp = ep
		mu.Unlock()
		ep.Handle(wire.MLock, func(p []byte) (wire.Msg, error) {
			close(started)
			select {} // never replies
		})
	})
	errc := make(chan error, 1)
	go func() {
		errc <- cli.Call(wire.MLock, &wire.LockRequest{}, nil)
	}()
	<-started
	mu.Lock()
	srvEp.Close()
	mu.Unlock()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("pending call survived peer close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not failed after peer close")
	}
	srv.Close()
}

func TestOnCloseRuns(t *testing.T) {
	closed := make(chan struct{})
	net := memnet.New(sim.Fast())
	l, _ := net.Listen("s")
	srv := NewServer(l, Options{}, func(ep *Endpoint) {})
	go srv.Serve()
	conn, err := net.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewEndpoint(conn, Options{OnClose: func(*Endpoint) { close(closed) }})
	cli.Start()
	cli.Close()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("OnClose never ran")
	}
	srv.Close()
}

func TestServerLimiterThrottles(t *testing.T) {
	net := memnet.New(sim.Fast())
	l, _ := net.Listen("s")
	srv := NewServer(l, Options{Limiter: sim.NewRateLimiter(1000)}, func(ep *Endpoint) {
		ep.Handle(wire.MHello, func(p []byte) (wire.Msg, error) {
			return &wire.HelloReply{}, nil
		})
	})
	go srv.Serve()
	defer srv.Close()
	conn, err := net.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewEndpoint(conn, Options{})
	cli.Start()
	defer cli.Close()
	start := time.Now()
	for i := 0; i < 30; i++ {
		if err := cli.Call(wire.MHello, &wire.HelloRequest{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("30 calls at 1000 op/s finished in %v", elapsed)
	}
}

func TestEndpointTag(t *testing.T) {
	var ep Endpoint
	ep.Tag.Store("session-7")
	if got := ep.Tag.Load(); got != "session-7" {
		t.Fatalf("Tag = %v", got)
	}
}

var _ transport.Conn = (transport.Conn)(nil) // interface sanity
