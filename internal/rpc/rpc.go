// Package rpc provides a bidirectional request/response protocol on top
// of a transport.Conn. Both ends of a connection can originate calls:
// ccPFS clients call lock and IO methods on servers, and lock servers
// call revocation callbacks back into clients over the same connection —
// mirroring how the paper's prototype uses CaRT's client/server RPC in
// both directions.
//
// Inbound requests are dispatched each in its own goroutine, so a lock
// request that blocks inside the server (waiting for conflict resolution)
// never stalls an unrelated message on the same connection.
//
// Every call carries a context: cancellation or deadline expiry unblocks
// the waiter promptly, deregisters the pending-call entry (a late reply
// is dropped as stale), and surfaces as a typed wire error
// (wire.ErrTimeout / wire.ErrCanceled). An abandoned call additionally
// sends a best-effort cancel frame so the peer withdraws the server-side
// work (e.g. a queued lock waiter). Handlers receive a per-call context
// that is canceled by that frame and by connection teardown, so
// server-side work aborts instead of running headless.
package rpc

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"ccpfs/internal/obs"
	"ccpfs/internal/sim"
	"ccpfs/internal/transport"
	"ccpfs/internal/wire"
)

// Handler serves one method. It receives a per-call context — canceled
// when the caller abandons the call or the connection closes — and the
// request payload, and returns the reply message. Returning an error
// sends a typed wire.Error back to the caller instead.
type Handler func(ctx context.Context, payload []byte) (wire.Msg, error)

const (
	kindRequest  = 0
	kindResponse = 1
	kindCancel   = 2

	statusOK  = 0
	statusErr = 1

	headerLen = 1 + 8 + 1 + 1 // kind, id, method, status
)

// Endpoint is one end of an RPC connection.
type Endpoint struct {
	conn     transport.Conn
	clk      sim.Clock
	limiter  *sim.RateLimiter
	handlers map[wire.Method]Handler
	// metrics, when non-nil, instruments this endpoint (see Metrics).
	// Written only before Start, so the read loop and callers see a
	// stable pointer without synchronization.
	metrics *Metrics

	// baseCtx is the endpoint's lifecycle: handlers run under it and it
	// is canceled when the read loop exits, aborting abandoned work.
	baseCtx context.Context
	cancel  context.CancelFunc

	nextID atomic.Uint64
	// pending (outbound calls awaiting replies) and active (inbound
	// requests, for cancel frames) are lock-free call tables — see
	// pending.go for the slot protocol. Issue/complete/forget/cancel
	// never serialize on an endpoint-wide lock.
	pending   callTable[chan response]
	active    callTable[*callCtx]
	onClose   func(*Endpoint)
	startOnce sync.Once

	// inflight tracks dispatched handler goroutines for Drain;
	// inflightN mirrors its count so a virtual-time Drain can park on
	// it instead of blocking in WaitGroup.Wait.
	inflight  sync.WaitGroup
	inflightN atomic.Int64

	// Tag carries endpoint-scoped state for handlers, e.g. the client
	// session a server associates with this connection.
	Tag atomic.Value
}

type response struct {
	payload []byte
	err     error
}

// chanPool recycles the single-slot reply channels Call blocks on.
// Recycling is safe only on paths where Call has RECEIVED from the
// channel: the pending-table entry is claimed by a CAS that exactly one
// of complete/forget/shutdown-drain wins before sending, so each
// registered channel sees at most one send, and a receive proves that
// send already happened. On the abandon paths (context fired with no
// reply yet, send failure) a late sender may still hold the channel, so
// it is leaked to the GC instead — pooling it would let a stale reply
// surface on an unrelated call.
var chanPool = sync.Pool{New: func() any { return make(chan response, 1) }}

// Options configure an endpoint.
type Options struct {
	// Limiter, when non-nil, caps the rate at which inbound requests are
	// admitted — the lock server's OPS bound from Table I.
	Limiter *sim.RateLimiter
	// OnClose runs once when the endpoint's read loop exits.
	OnClose func(*Endpoint)
	// Metrics, when non-nil, instruments every endpoint built with these
	// options. Safe to share across endpoints (all fields are atomic).
	Metrics *Metrics
	// Clock is the endpoint's time source. Virtual clocks serialize the
	// read loop, handlers, and reply waits deterministically; the zero
	// value is ordinary wall-clock execution.
	Clock sim.Clock
}

// NewEndpoint wraps conn. Register handlers with Handle, then call Start
// to begin serving. Handle must not be called after Start.
func NewEndpoint(conn transport.Conn, opts Options) *Endpoint {
	ctx, cancel := context.WithCancel(context.Background())
	ep := &Endpoint{
		conn:     conn,
		clk:      opts.Clock,
		limiter:  opts.Limiter,
		handlers: make(map[wire.Method]Handler),
		baseCtx:  ctx,
		cancel:   cancel,
		onClose:  opts.OnClose,
		metrics:  opts.Metrics,
	}
	if ep.metrics != nil {
		ep.metrics.attach(ep)
	}
	return ep
}

// Handle registers a handler for method.
func (ep *Endpoint) Handle(method wire.Method, h Handler) {
	ep.handlers[method] = h
}

// SetMetrics attaches an instrument set. Like Handle, it must be
// called before Start.
func (ep *Endpoint) SetMetrics(m *Metrics) {
	ep.metrics = m
	m.attach(ep)
}

// Start launches the read loop. It is idempotent: extra calls are
// no-ops, so a setup callback and its server can both call it safely
// without racing two read loops on one connection.
func (ep *Endpoint) Start() {
	ep.startOnce.Do(func() { ep.clk.Go(ep.readLoop) })
}

// Close tears down the connection; in-flight calls fail with ErrClosed.
func (ep *Endpoint) Close() error { return ep.conn.Close() }

// Context returns the endpoint's lifecycle context, canceled when the
// connection tears down.
func (ep *Endpoint) Context() context.Context { return ep.baseCtx }

// Pending returns the number of registered in-flight outbound calls
// (tests and introspection: a canceled call must not leave an entry).
func (ep *Endpoint) Pending() int {
	return ep.pending.length()
}

// Drain blocks until every dispatched inbound handler has completed, or
// ctx fires. It does not stop new requests from arriving; callers stop
// admission first (close the listener, set a draining flag), then drain.
func (ep *Endpoint) Drain(ctx context.Context) error {
	if v := ep.clk.V(); v != nil {
		for ep.inflightN.Load() > 0 {
			if err := ctx.Err(); err != nil {
				return wire.FromContext(err)
			}
			if v.WaitOn(&ep.inflightN) == sim.WakeExited {
				goto real
			}
		}
		return nil
	}
real:
	done := make(chan struct{})
	go func() {
		ep.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return wire.FromContext(ctx.Err())
	}
}

// handlerStart/handlerDone bracket a dispatched handler for Drain.
func (ep *Endpoint) handlerStart() {
	ep.inflight.Add(1)
	ep.inflightN.Add(1)
}

func (ep *Endpoint) handlerDone() {
	if ep.inflightN.Add(-1) == 0 {
		ep.clk.Wakeup(&ep.inflightN)
	}
	ep.inflight.Done()
}

// Call sends a request and blocks until the reply arrives, ctx fires, or
// the connection closes, decoding the reply into reply (which may be nil
// to discard the payload). A fired context returns wire.ErrTimeout or
// wire.ErrCanceled and guarantees the pending-call entry is gone; the
// eventual late reply, if any, is dropped as stale.
func (ep *Endpoint) Call(ctx context.Context, method wire.Method, req wire.Msg, reply wire.Msg) error {
	m := ep.metrics
	if m == nil {
		return ep.call(ctx, method, req, reply)
	}
	// Straight-line instrumentation (no defer). The sampling decision is
	// a plain load — the count itself is bumped inside call, after the
	// request frame is on the wire, where the atomic overlaps with the
	// server working. Every sampleMask+1-th call per method — starting
	// with the first, so a lightly used method still shows a latency —
	// also pays two monotonic clock reads and a histogram record.
	if (m.calls[method].Load()+1)&m.sampleMask != 1&m.sampleMask {
		return ep.call(ctx, method, req, reply)
	}
	start := obs.Now()
	err := ep.call(ctx, method, req, reply)
	m.callLat[method].Record(obs.Now() - start)
	return err
}

func (ep *Endpoint) call(ctx context.Context, method wire.Method, req wire.Msg, reply wire.Msg) error {
	if err := ctx.Err(); err != nil {
		return wire.FromContext(err)
	}
	id := ep.nextID.Add(1)
	ch := chanPool.Get().(chan response)

	if !ep.pending.register(id, ch) {
		chanPool.Put(ch)
		return transport.ErrClosed
	}

	sendErr := ep.send(ctx, kindRequest, id, method, statusOK, req)
	if m := ep.metrics; m != nil {
		// Counts attempts (send failures included), bumped after the
		// request frame is handed off so the atomic overlaps with the
		// server starting on it rather than delaying the wait.
		m.calls[method].Inc()
	}
	if sendErr != nil {
		// The send failed: deregister so the pending map cannot grow
		// unboundedly under a flaky transport. The entry may already be
		// gone if shutdown raced us (and a sender may then still hold
		// the channel, so it is not recycled). Delete is idempotent.
		ep.forget(id)
		return sendErr
	}
	var resp response
	gotV := false
	if v := ep.clk.V(); v != nil {
		r, got, handled := ep.waitReplyVirtual(v, ctx, id, method, ch)
		if handled && !got {
			return wire.FromContext(ctx.Err())
		}
		resp, gotV = r, handled
	}
	if !gotV {
		select {
		case resp = <-ch:
			chanPool.Put(ch)
		case <-ctx.Done():
			ep.forget(id)
			// The response may have been delivered between the ctx firing
			// and the forget; prefer it — the call did complete.
			select {
			case resp = <-ch:
				chanPool.Put(ch)
			default:
				// Abandoned for good: tell the peer so it withdraws the
				// server-side work (a queued lock waiter, a stalled flush).
				// Best effort under the endpoint's lifecycle context — if
				// the frame is lost to teardown, teardown cancels the
				// handler anyway. The channel is NOT recycled: complete may
				// have claimed it before forget and be about to send.
				go ep.send(ep.baseCtx, kindCancel, id, method, statusOK, nil)
				return wire.FromContext(ctx.Err())
			}
		}
	}
	if resp.err != nil {
		return resp.err
	}
	if reply == nil {
		return nil
	}
	if err := wire.Unmarshal(resp.payload, reply); err != nil {
		return fmt.Errorf("rpc: decoding %T reply: %w", reply, err)
	}
	return nil
}

// BatchCall describes one call of a CallBatch. Reply may be nil to
// discard the payload; Err receives the per-call outcome.
type BatchCall struct {
	Method wire.Method
	Req    wire.Msg
	Reply  wire.Msg
	Err    error
}

// CallBatch issues several requests whose frames leave as one coalesced
// transport batch (transport.SendBatch: one writev group commit on
// tcpnet, one bandwidth charge on memnet) and waits for all replies —
// the control-plane analogue of the windowed flush path. Each call's
// outcome lands in calls[i].Err; the returned error is the first
// failure, nil when every call succeeded. A fired context abandons the
// not-yet-answered calls exactly like Call: entries are deregistered,
// best-effort cancel frames are sent, and late replies are dropped.
func (ep *Endpoint) CallBatch(ctx context.Context, calls []BatchCall) error {
	m := ep.metrics
	if m == nil {
		return ep.callBatch(ctx, calls)
	}
	// Batches are already coalesced work, so the clock pair amortizes
	// over the batch: count every call exactly, time the batch once,
	// and record the shared round-trip for each sampled call.
	start := obs.Now()
	err := ep.callBatch(ctx, calls)
	elapsed := obs.Now() - start
	for i := range calls {
		if m.calls[calls[i].Method].Inc()&m.sampleMask == 1&m.sampleMask {
			m.callLat[calls[i].Method].Record(elapsed)
		}
	}
	return err
}

func (ep *Endpoint) callBatch(ctx context.Context, calls []BatchCall) error {
	if len(calls) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return wire.FromContext(err)
	}
	ids := make([]uint64, len(calls))
	chs := make([]chan response, len(calls))
	for i := range calls {
		ids[i] = ep.nextID.Add(1)
		ch := chanPool.Get().(chan response)
		if !ep.pending.register(ids[i], ch) {
			// Closed mid-batch: withdraw what we registered (a drain may
			// have claimed some — those channels are owned by it and not
			// recycled) and fail the whole batch.
			chanPool.Put(ch)
			for j := 0; j < i; j++ {
				if _, ok := ep.pending.take(ids[j]); ok {
					chanPool.Put(chs[j])
				}
			}
			for j := range calls {
				calls[j].Err = transport.ErrClosed
			}
			return transport.ErrClosed
		}
		chs[i] = ch
	}

	// Encode every frame, hand them to the transport as one batch, then
	// recycle the encoders — transports must not retain frames after
	// SendBatch returns (the transport.Conn ownership contract).
	encs := make([]*wire.Encoder, len(calls))
	frames := make([][]byte, len(calls))
	for i := range calls {
		enc := wire.GetEncoder(headerLen + 64)
		enc.U8(kindRequest)
		enc.U64(ids[i])
		enc.U8(uint8(calls[i].Method))
		enc.U8(statusOK)
		if calls[i].Req != nil {
			calls[i].Req.Encode(enc)
		}
		encs[i] = enc
		frames[i] = enc.Bytes()
	}
	sendErr := transport.SendBatch(ctx, ep.conn, frames)
	if m := ep.metrics; m != nil {
		// Attempted bytes, counted after the batch is handed to the
		// transport (overlapping the peer's read) — errors still count.
		var total int64
		for _, f := range frames {
			total += int64(len(f))
		}
		m.BytesOut.Add(total)
	}
	for _, enc := range encs {
		wire.PutEncoder(enc)
	}
	if sendErr != nil {
		// Deregister everything; frames that did go out may still be
		// answered, and those late replies are dropped as stale — the
		// same contract as a failed single Call.
		for i := range calls {
			ep.forget(ids[i])
			calls[i].Err = sendErr
		}
		return sendErr
	}

	var firstErr error
	for i := range calls {
		var resp response
		got := false
		handledV := false
		if v := ep.clk.V(); v != nil {
			if r, g, handled := ep.waitReplyVirtual(v, ctx, ids[i], calls[i].Method, chs[i]); handled {
				resp, got, handledV = r, g, true
				if !g {
					calls[i].Err = wire.FromContext(ctx.Err())
				}
			}
		}
		if !handledV {
			select {
			case resp = <-chs[i]:
				chanPool.Put(chs[i])
				got = true
			case <-ctx.Done():
				ep.forget(ids[i])
				// Prefer a reply that raced the cancellation (see Call).
				select {
				case resp = <-chs[i]:
					chanPool.Put(chs[i])
					got = true
				default:
					// Abandoned: cancel the server-side work. The channel is
					// not recycled — a late complete may still send on it.
					go ep.send(ep.baseCtx, kindCancel, ids[i], calls[i].Method, statusOK, nil)
					calls[i].Err = wire.FromContext(ctx.Err())
				}
			}
		}
		if got {
			switch {
			case resp.err != nil:
				calls[i].Err = resp.err
			case calls[i].Reply != nil:
				if err := wire.Unmarshal(resp.payload, calls[i].Reply); err != nil {
					calls[i].Err = fmt.Errorf("rpc: decoding %T reply: %w", calls[i].Reply, err)
				}
			}
		}
		if calls[i].Err != nil && firstErr == nil {
			firstErr = calls[i].Err
		}
	}
	return firstErr
}

// waitReplyVirtual blocks for one reply under a virtual clock, parked
// on the reply channel until complete (or the shutdown drain) wakes
// it. handled=false means the virtual run ended mid-wait and the
// caller must fall back to its real-time select; got=false (with
// handled=true) means ctx fired and the call was abandoned — the
// pending entry is forgotten and a cancel frame is on its way.
func (ep *Endpoint) waitReplyVirtual(v *sim.VClock, ctx context.Context, id uint64, method wire.Method, ch chan response) (resp response, got, handled bool) {
	for {
		select {
		case resp = <-ch:
			chanPool.Put(ch)
			return resp, true, true
		default:
		}
		if ctx.Err() != nil {
			ep.forget(id)
			select {
			case resp = <-ch:
				chanPool.Put(ch)
				return resp, true, true
			default:
			}
			ep.clk.Go(func() { ep.send(ep.baseCtx, kindCancel, id, method, statusOK, nil) })
			return response{}, false, true
		}
		if v.WaitOn(ch) == sim.WakeExited {
			return response{}, false, false
		}
	}
}

// forget deregisters a pending call entry. A miss is normal: complete
// or the shutdown drain may have claimed the entry first (and then owns
// the reply channel).
func (ep *Endpoint) forget(id uint64) {
	ep.pending.take(id)
}

func (ep *Endpoint) send(ctx context.Context, kind byte, id uint64, method wire.Method, status byte, m wire.Msg) error {
	// The encoder is recycled as soon as Send returns: transports must
	// not retain the frame afterwards (see the transport.Conn contract).
	enc := wire.GetEncoder(headerLen + 64)
	enc.U8(kind)
	enc.U64(id)
	enc.U8(uint8(method))
	enc.U8(status)
	if m != nil {
		m.Encode(enc)
	}
	n := int64(len(enc.Bytes()))
	err := ep.conn.Send(ctx, enc.Bytes())
	wire.PutEncoder(enc)
	if m := ep.metrics; m != nil {
		// Counted after Send: the peer is already consuming the frame,
		// so this atomic overlaps with remote work instead of stretching
		// the round-trip chain. BytesOut lags the wire by one frame.
		m.BytesOut.Add(n)
	}
	return err
}

func (ep *Endpoint) sendErr(ctx context.Context, id uint64, method wire.Method, err error) error {
	enc := wire.GetEncoder(headerLen + len(err.Error()) + 1)
	enc.U8(kindResponse)
	enc.U64(id)
	enc.U8(uint8(method))
	enc.U8(statusErr)
	wire.EncodeError(enc, err)
	n := int64(len(enc.Bytes()))
	serr := ep.conn.Send(ctx, enc.Bytes())
	wire.PutEncoder(enc)
	if m := ep.metrics; m != nil {
		m.BytesOut.Add(n)
	}
	return serr
}

func (ep *Endpoint) readLoop() {
	// The read loop itself is bounded by connection close, not by a
	// context: Close unblocks Recv with ErrClosed on every transport.
	var err error
	for {
		var frame []byte
		frame, err = ep.conn.Recv(context.Background())
		if err != nil {
			break
		}
		if len(frame) < headerLen {
			err = fmt.Errorf("rpc: short frame (%d bytes)", len(frame))
			break
		}
		kind := frame[0]
		id := binary.LittleEndian.Uint64(frame[1:9])
		method := wire.Method(frame[9])
		status := frame[10]
		payload := frame[headerLen:]

		switch kind {
		case kindRequest:
			ep.dispatch(id, method, payload)
		case kindResponse:
			ep.complete(id, status, payload)
		case kindCancel:
			ep.cancelInbound(id)
		default:
			err = fmt.Errorf("rpc: unknown frame kind %d", kind)
		}
		if m := ep.metrics; m != nil {
			// Counted after the frame is acted on: delivering a response
			// (or dispatching a request) wakes another goroutine, and the
			// atomic add overlaps with that work instead of delaying it.
			m.BytesIn.Add(int64(len(frame)))
		}
		if err != nil {
			break
		}
	}
	ep.shutdown()
}

func (ep *Endpoint) dispatch(id uint64, method wire.Method, payload []byte) {
	h, ok := ep.handlers[method]
	if !ok {
		ep.handlerStart()
		ep.clk.Go(func() {
			defer ep.handlerDone()
			ep.sendErr(ep.baseCtx, id, method, wire.Errorf(wire.CodeInvalid, "rpc: no handler for method %d", method))
		})
		return
	}
	if ep.limiter != nil {
		ep.limiter.Wait()
	}
	// Each request gets its own cancelable context, registered before the
	// next frame is read so a cancel frame can never race ahead of its
	// request on this ordered connection. callCtx does not attach to
	// baseCtx's child list (that registration is a mutex the old code
	// took twice per request); teardown instead cancels it explicitly
	// when the active table drains.
	cc := &callCtx{base: ep.baseCtx}
	if !ep.active.register(id, cc) {
		// Teardown already drained the table; run the handler with the
		// context pre-canceled so it aborts promptly.
		cc.cancel()
	}
	ep.handlerStart()
	ep.clk.Go(func() {
		defer ep.handlerDone()
		defer func() {
			// A miss means a cancel frame or the shutdown drain claimed
			// the entry (and called cancel); either way the entry is gone.
			ep.active.take(id)
			cc.cancel()
		}()
		ctx := context.Context(cc)
		// The sampling decision reads the counter (a plain load) up front;
		// the count itself is bumped after the reply frame is on the wire,
		// where the atomic overlaps with the peer processing the reply.
		// Under concurrent handlers the load-based decision may time a
		// neighbor of the exact n-th run — sampling is statistical anyway.
		m := ep.metrics
		var start, elapsed int64
		timed := false
		if m != nil && (m.handles[method].Load()+1)&m.sampleMask == 1&m.sampleMask {
			timed = true
			start = obs.Now()
		}
		reply, err := h(ctx, payload)
		if timed {
			elapsed = obs.Now() - start
		}
		if err != nil {
			ep.sendErr(ep.baseCtx, id, method, err)
		} else {
			ep.send(ep.baseCtx, kindResponse, id, method, statusOK, reply)
			// A reply whose payload rides in a pooled buffer (e.g. a read
			// served from a pooled block) is returned to its pool now that
			// the encoded frame is on the wire.
			if r, ok := reply.(wire.Recycler); ok {
				r.Recycle()
			}
		}
		if m != nil {
			m.handles[method].Inc()
			if timed {
				m.handleLat[method].Record(elapsed)
			}
		}
	})
}

// cancelInbound handles a peer's cancel frame: the named request's
// context fires, unwedging whatever the handler is blocked on. A miss is
// normal — the handler already completed. The entry is taken, not
// peeked: the claim CAS is what makes firing the context race-free
// against the handler's own deregistration, and cancel frames are
// one-shot per id so nothing is lost.
func (ep *Endpoint) cancelInbound(id uint64) {
	if cc, ok := ep.active.take(id); ok {
		cc.cancel()
	}
}

func (ep *Endpoint) complete(id uint64, status byte, payload []byte) {
	ch, ok := ep.pending.take(id)
	if !ok {
		return // stale (canceled) or duplicate response
	}
	if status == statusErr {
		ch <- response{err: wire.DecodeError(wire.NewDecoder(payload))}
		ep.clk.Wakeup(ch)
		return
	}
	// The payload aliases the frame, which is private to this endpoint
	// after Recv; handing it to the caller is safe.
	ch <- response{payload: payload}
	ep.clk.Wakeup(ch)
}

func (ep *Endpoint) shutdown() {
	pend, first := ep.pending.closeAndDrain()
	if !first {
		return
	}
	for _, ch := range pend {
		ch <- response{err: transport.ErrClosed}
		ep.clk.Wakeup(ch)
	}
	ep.conn.Close()
	// Cancel the lifecycle context so handlers still running for this
	// connection observe the teardown and can abort, and fire every
	// live per-call context (callCtx does not chain off baseCtx, so the
	// drain is what delivers teardown to blocked handlers).
	ep.cancel()
	ccs, _ := ep.active.closeAndDrain()
	for _, cc := range ccs {
		cc.cancel()
	}
	if ep.metrics != nil {
		// Stop contributing to the in-flight derivation; the scalar
		// counters the endpoint already recorded stay in the Metrics.
		ep.metrics.detach(ep)
	}
	if ep.onClose != nil {
		ep.onClose(ep)
	}
}

// Server accepts connections from a listener and builds an endpoint for
// each via a setup callback that registers the handlers.
type Server struct {
	listener transport.Listener
	setup    func(*Endpoint)
	opts     Options

	mu     sync.Mutex
	eps    map[*Endpoint]struct{}
	closed bool
	done   chan struct{}
}

// NewServer returns a server that will accept on l, configuring every
// inbound endpoint with setup before starting it.
func NewServer(l transport.Listener, opts Options, setup func(*Endpoint)) *Server {
	return &Server{
		listener: l,
		setup:    setup,
		opts:     opts,
		eps:      make(map[*Endpoint]struct{}),
		done:     make(chan struct{}),
	}
}

// waitDone blocks until the accept loop has exited, mediated when the
// server runs on a virtual clock.
func (s *Server) waitDone() {
	if v := s.opts.Clock.V(); v != nil {
		for {
			select {
			case <-s.done:
				return
			default:
			}
			if v.WaitOn(s.done) == sim.WakeExited {
				break
			}
		}
	}
	<-s.done
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve() {
	defer func() {
		close(s.done)
		s.opts.Clock.Wakeup(s.done)
	}()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		opts := s.opts
		userClose := opts.OnClose
		opts.OnClose = func(ep *Endpoint) {
			s.mu.Lock()
			delete(s.eps, ep)
			s.mu.Unlock()
			if userClose != nil {
				userClose(ep)
			}
		}
		ep := NewEndpoint(conn, opts)
		// Register before setup/Start so a concurrent Close cannot miss
		// the endpoint; if Close already ran, drop the connection instead
		// of leaking a read loop it will never tear down.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.eps[ep] = struct{}{}
		s.mu.Unlock()
		s.setup(ep)
		ep.Start()
	}
}

// snapshot marks the server closed and returns the live endpoints.
func (s *Server) snapshot() []*Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	eps := make([]*Endpoint, 0, len(s.eps))
	for ep := range s.eps {
		eps = append(eps, ep)
	}
	return eps
}

// Shutdown drains the server: it stops accepting, waits for every
// in-flight handler on every endpoint to complete (bounded by ctx), then
// closes the endpoints. Blocked handlers must be unwedged by the caller
// first (e.g. failing queued lock waiters) or Shutdown falls back to a
// hard close when ctx fires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.listener.Close()
	eps := s.snapshot()
	s.waitDone() // the accept loop has exited; no new endpoints can appear
	var err error
	for _, ep := range eps {
		if e := ep.Drain(ctx); e != nil && err == nil {
			err = e
		}
	}
	for _, ep := range eps {
		ep.Close()
	}
	return err
}

// Close stops accepting and closes all live endpoints immediately,
// without draining.
func (s *Server) Close() {
	s.listener.Close()
	eps := s.snapshot()
	for _, ep := range eps {
		ep.Close()
	}
	s.waitDone()
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.listener.Addr() }
