// Package rpc provides a bidirectional request/response protocol on top
// of a transport.Conn. Both ends of a connection can originate calls:
// ccPFS clients call lock and IO methods on servers, and lock servers
// call revocation callbacks back into clients over the same connection —
// mirroring how the paper's prototype uses CaRT's client/server RPC in
// both directions.
//
// Inbound requests are dispatched each in its own goroutine, so a lock
// request that blocks inside the server (waiting for conflict resolution)
// never stalls an unrelated message on the same connection.
package rpc

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"ccpfs/internal/sim"
	"ccpfs/internal/transport"
	"ccpfs/internal/wire"
)

// RemoteError is an error returned by the remote handler, carried back
// to the caller as a string.
type RemoteError string

func (e RemoteError) Error() string { return string(e) }

// Handler serves one method. It receives the request payload and returns
// the reply message. Returning an error sends a RemoteError instead.
type Handler func(payload []byte) (wire.Msg, error)

const (
	kindRequest  = 0
	kindResponse = 1

	statusOK  = 0
	statusErr = 1

	headerLen = 1 + 8 + 1 + 1 // kind, id, method, status
)

// Endpoint is one end of an RPC connection.
type Endpoint struct {
	conn     transport.Conn
	limiter  *sim.RateLimiter
	handlers map[wire.Method]Handler

	nextID  atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan response
	closed  bool
	onClose func(*Endpoint)

	// Tag carries endpoint-scoped state for handlers, e.g. the client
	// session a server associates with this connection.
	Tag atomic.Value
}

type response struct {
	payload []byte
	err     error
}

// Options configure an endpoint.
type Options struct {
	// Limiter, when non-nil, caps the rate at which inbound requests are
	// admitted — the lock server's OPS bound from Table I.
	Limiter *sim.RateLimiter
	// OnClose runs once when the endpoint's read loop exits.
	OnClose func(*Endpoint)
}

// NewEndpoint wraps conn. Register handlers with Handle, then call Start
// to begin serving. Handle must not be called after Start.
func NewEndpoint(conn transport.Conn, opts Options) *Endpoint {
	return &Endpoint{
		conn:     conn,
		limiter:  opts.Limiter,
		handlers: make(map[wire.Method]Handler),
		pending:  make(map[uint64]chan response),
		onClose:  opts.OnClose,
	}
}

// Handle registers a handler for method.
func (ep *Endpoint) Handle(method wire.Method, h Handler) {
	ep.handlers[method] = h
}

// Start launches the read loop.
func (ep *Endpoint) Start() {
	go ep.readLoop()
}

// Close tears down the connection; in-flight calls fail with ErrClosed.
func (ep *Endpoint) Close() error { return ep.conn.Close() }

// Call sends a request and blocks until the reply arrives, decoding it
// into reply (which may be nil to discard the payload).
func (ep *Endpoint) Call(method wire.Method, req wire.Msg, reply wire.Msg) error {
	id := ep.nextID.Add(1)
	ch := make(chan response, 1)

	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return transport.ErrClosed
	}
	ep.pending[id] = ch
	ep.mu.Unlock()

	if err := ep.send(kindRequest, id, method, statusOK, req); err != nil {
		ep.mu.Lock()
		delete(ep.pending, id)
		ep.mu.Unlock()
		return err
	}
	resp := <-ch
	if resp.err != nil {
		return resp.err
	}
	if reply == nil {
		return nil
	}
	if err := wire.Unmarshal(resp.payload, reply); err != nil {
		return fmt.Errorf("rpc: decoding %T reply: %w", reply, err)
	}
	return nil
}

func (ep *Endpoint) send(kind byte, id uint64, method wire.Method, status byte, m wire.Msg) error {
	enc := wire.NewEncoder(headerLen + 64)
	enc.U8(kind)
	enc.U64(id)
	enc.U8(uint8(method))
	enc.U8(status)
	if m != nil {
		m.Encode(enc)
	}
	return ep.conn.Send(enc.Bytes())
}

func (ep *Endpoint) sendErr(id uint64, method wire.Method, err error) error {
	enc := wire.NewEncoder(headerLen + len(err.Error()))
	enc.U8(kindResponse)
	enc.U64(id)
	enc.U8(uint8(method))
	enc.U8(statusErr)
	enc.String(err.Error())
	return ep.conn.Send(enc.Bytes())
}

func (ep *Endpoint) readLoop() {
	var err error
	for {
		var frame []byte
		frame, err = ep.conn.Recv()
		if err != nil {
			break
		}
		if len(frame) < headerLen {
			err = fmt.Errorf("rpc: short frame (%d bytes)", len(frame))
			break
		}
		kind := frame[0]
		id := binary.LittleEndian.Uint64(frame[1:9])
		method := wire.Method(frame[9])
		status := frame[10]
		payload := frame[headerLen:]

		switch kind {
		case kindRequest:
			ep.dispatch(id, method, payload)
		case kindResponse:
			ep.complete(id, status, payload)
		default:
			err = fmt.Errorf("rpc: unknown frame kind %d", kind)
		}
		if err != nil {
			break
		}
	}
	ep.shutdown()
}

func (ep *Endpoint) dispatch(id uint64, method wire.Method, payload []byte) {
	h, ok := ep.handlers[method]
	if !ok {
		go ep.sendErr(id, method, fmt.Errorf("rpc: no handler for method %d", method))
		return
	}
	if ep.limiter != nil {
		ep.limiter.Wait()
	}
	go func() {
		reply, err := h(payload)
		if err != nil {
			ep.sendErr(id, method, err)
			return
		}
		ep.send(kindResponse, id, method, statusOK, reply)
	}()
}

func (ep *Endpoint) complete(id uint64, status byte, payload []byte) {
	ep.mu.Lock()
	ch, ok := ep.pending[id]
	delete(ep.pending, id)
	ep.mu.Unlock()
	if !ok {
		return // stale or duplicate response
	}
	if status == statusErr {
		d := wire.NewDecoder(payload)
		msg := d.String()
		if d.Err() != nil {
			msg = "malformed remote error"
		}
		ch <- response{err: RemoteError(msg)}
		return
	}
	// The payload aliases the frame, which is private to this endpoint
	// after Recv; handing it to the caller is safe.
	ch <- response{payload: payload}
}

func (ep *Endpoint) shutdown() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	pend := ep.pending
	ep.pending = map[uint64]chan response{}
	ep.mu.Unlock()
	for _, ch := range pend {
		ch <- response{err: transport.ErrClosed}
	}
	ep.conn.Close()
	if ep.onClose != nil {
		ep.onClose(ep)
	}
}

// Server accepts connections from a listener and builds an endpoint for
// each via a setup callback that registers the handlers.
type Server struct {
	listener transport.Listener
	setup    func(*Endpoint)
	opts     Options

	mu   sync.Mutex
	eps  map[*Endpoint]struct{}
	done chan struct{}
}

// NewServer returns a server that will accept on l, configuring every
// inbound endpoint with setup before starting it.
func NewServer(l transport.Listener, opts Options, setup func(*Endpoint)) *Server {
	return &Server{
		listener: l,
		setup:    setup,
		opts:     opts,
		eps:      make(map[*Endpoint]struct{}),
		done:     make(chan struct{}),
	}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve() {
	defer close(s.done)
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		opts := s.opts
		userClose := opts.OnClose
		opts.OnClose = func(ep *Endpoint) {
			s.mu.Lock()
			delete(s.eps, ep)
			s.mu.Unlock()
			if userClose != nil {
				userClose(ep)
			}
		}
		ep := NewEndpoint(conn, opts)
		s.setup(ep)
		s.mu.Lock()
		s.eps[ep] = struct{}{}
		s.mu.Unlock()
		ep.Start()
	}
}

// Close stops accepting and closes all live endpoints.
func (s *Server) Close() {
	s.listener.Close()
	s.mu.Lock()
	eps := make([]*Endpoint, 0, len(s.eps))
	for ep := range s.eps {
		eps = append(eps, ep)
	}
	s.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	<-s.done
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.listener.Addr() }
