package rpc

import (
	"sync"

	"ccpfs/internal/obs"
	"ccpfs/internal/wire"
)

// defaultSampleInterval is the fraction of calls whose latency is
// clock-timed (1 in 16). Counting is always exact — every call bumps
// its per-method counter — but a monotonic clock read costs ~30ns and
// a round trip needs two, so timing every call would dominate the
// instrumentation budget (benchcheck gates the instrumented round trip
// at +5%). Uniform sampling keeps the percentiles honest while the
// amortized clock cost drops below the counters'.
const defaultSampleInterval = 16

// Metrics instruments one or more endpoints: per-method call/handle
// counts (exact), per-method round-trip latency for outbound calls and
// service time for inbound handlers (sampled), in-flight gauges for
// both directions (derived from the endpoints' pending/active tables
// at snapshot time — zero fast-path cost), and frame bytes in/out. One
// Metrics is shared by all endpoints of a component (a client shares
// one across its per-server connections, a data server across its
// per-client connections) so the numbers aggregate naturally. All hot
// instruments are atomics on preallocated storage — the per-method
// arrays are indexed by the raw wire.Method byte — so recording is
// allocation-free.
//
// Attach with Options.Metrics or Endpoint.SetMetrics before Start;
// a nil Metrics keeps every instrument point a single pointer check.
type Metrics struct {
	// BytesIn and BytesOut are touched by different goroutines (the
	// read loop vs. callers); the pads keep each on its own cache line.
	BytesIn  obs.Counter
	_        [56]byte
	BytesOut obs.Counter
	_        [56]byte

	// sampleMask selects which calls get clock-timed: those whose
	// per-method count satisfies count&sampleMask == 0. Written only
	// before traffic (SetSampleInterval), read without synchronization.
	sampleMask int64

	calls     [256]obs.Counter   // outbound calls by method (exact)
	handles   [256]obs.Counter   // inbound handler runs by method (exact)
	callLat   [256]obs.Histogram // outbound round-trip ns by method (sampled)
	handleLat [256]obs.Histogram // inbound handler service ns by method (sampled)

	// eps tracks the live endpoints this Metrics instruments, for the
	// snapshot-time in-flight derivation. Guarded by mu; endpoints
	// detach on teardown.
	mu  sync.Mutex
	eps map[*Endpoint]struct{}
}

// NewMetrics returns an instrument set with the default latency
// sampling interval.
func NewMetrics() *Metrics {
	return &Metrics{
		sampleMask: defaultSampleInterval - 1,
		eps:        map[*Endpoint]struct{}{},
	}
}

// SetSampleInterval sets how often call/handle latencies are
// clock-timed: every n-th operation per method. n must be a power of
// two; 1 times every operation (tests use this for determinism).
// Call before the endpoints see traffic.
func (m *Metrics) SetSampleInterval(n int) {
	if n < 1 || n&(n-1) != 0 {
		panic("rpc: sample interval must be a power of two >= 1")
	}
	m.sampleMask = int64(n - 1)
}

func (m *Metrics) attach(ep *Endpoint) {
	m.mu.Lock()
	m.eps[ep] = struct{}{}
	m.mu.Unlock()
}

func (m *Metrics) detach(ep *Endpoint) {
	m.mu.Lock()
	delete(m.eps, ep)
	m.mu.Unlock()
}

// InFlight returns the instantaneous number of outbound calls awaiting
// replies and inbound handlers running, summed over the attached
// endpoints' pending/active tables. The endpoints already maintain
// those tables for call matching and cancellation, so in-flight
// tracking costs the fast path nothing.
func (m *Metrics) InFlight() (out, in int) {
	m.mu.Lock()
	eps := make([]*Endpoint, 0, len(m.eps))
	for ep := range m.eps {
		eps = append(eps, ep)
	}
	m.mu.Unlock()
	for _, ep := range eps {
		out += ep.pending.length()
		in += ep.active.length()
	}
	return out, in
}

// Calls returns the exact number of outbound calls issued for method.
func (m *Metrics) Calls(method wire.Method) int64 { return m.calls[method].Load() }

// Handles returns the exact number of inbound handler runs for method,
// counted as each run completes (after its reply frame is sent).
func (m *Metrics) Handles(method wire.Method) int64 { return m.handles[method].Load() }

// CallHist returns the outbound round-trip histogram for method. Its
// count is the number of sampled observations, not the call count —
// see Calls.
func (m *Metrics) CallHist(method wire.Method) *obs.Histogram {
	return &m.callLat[method]
}

// HandleHist returns the inbound service-time histogram for method.
func (m *Metrics) HandleHist(method wire.Method) *obs.Histogram {
	return &m.handleLat[method]
}

// Collect implements obs.Collector: scalar instruments accumulate (so
// several Metrics can feed one registry) and only methods that saw
// traffic contribute, as rpc.calls.<Method> / rpc.handles.<Method>
// counters and rpc.call.<Method> / rpc.handle.<Method> latency
// histograms.
func (m *Metrics) Collect(s *obs.Snapshot) {
	out, in := m.InFlight()
	s.Gauges["rpc.inflight_out"] += int64(out)
	s.Gauges["rpc.inflight_in"] += int64(in)
	s.Counters["rpc.bytes_in"] += m.BytesIn.Load()
	s.Counters["rpc.bytes_out"] += m.BytesOut.Load()
	for i := range m.calls {
		if n := m.calls[i].Load(); n > 0 {
			s.Counters["rpc.calls."+wire.Method(i).String()] += n
		}
		if n := m.handles[i].Load(); n > 0 {
			s.Counters["rpc.handles."+wire.Method(i).String()] += n
		}
		if m.callLat[i].Count() > 0 {
			name := "rpc.call." + wire.Method(i).String()
			h := s.Histograms[name]
			h.Merge(m.callLat[i].Snapshot())
			s.Histograms[name] = h
		}
		if m.handleLat[i].Count() > 0 {
			name := "rpc.handle." + wire.Method(i).String()
			h := s.Histograms[name]
			h.Merge(m.handleLat[i].Snapshot())
			s.Histograms[name] = h
		}
	}
}
