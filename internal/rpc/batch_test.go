package rpc

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ccpfs/internal/wire"
)

// TestCallBatchRoundTrip: every call in a batch gets its own decoded
// reply, and the batch returns nil when all succeed.
func TestCallBatchRoundTrip(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MHello, func(_ context.Context, p []byte) (wire.Msg, error) {
			var req wire.HelloRequest
			if err := wire.Unmarshal(p, &req); err != nil {
				return nil, err
			}
			return &wire.HelloReply{ClientID: req.ClientID * 2}, nil
		})
	})
	const n = 16
	calls := make([]BatchCall, n)
	for i := range calls {
		calls[i] = BatchCall{
			Method: wire.MHello,
			Req:    &wire.HelloRequest{NodeName: "c", ClientID: uint32(i + 1)},
			Reply:  &wire.HelloReply{},
		}
	}
	if err := cli.CallBatch(bg(), calls); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if calls[i].Err != nil {
			t.Fatalf("call %d: %v", i, calls[i].Err)
		}
		if got := calls[i].Reply.(*wire.HelloReply).ClientID; got != uint32(i+1)*2 {
			t.Fatalf("call %d reply = %d, want %d", i, got, (i+1)*2)
		}
	}
	if p := cli.Pending(); p != 0 {
		t.Fatalf("pending after batch = %d, want 0", p)
	}
}

// TestCallBatchPartialError: one failing call does not poison its
// batchmates; the batch error is the first per-call failure.
func TestCallBatchPartialError(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MOpen, func(_ context.Context, p []byte) (wire.Msg, error) {
			var req wire.OpenRequest
			if err := wire.Unmarshal(p, &req); err != nil {
				return nil, err
			}
			if req.Path == "/bad" {
				return nil, fmt.Errorf("no such file")
			}
			return &wire.FileReply{}, nil
		})
	})
	calls := []BatchCall{
		{Method: wire.MOpen, Req: &wire.OpenRequest{Path: "/ok"}, Reply: &wire.FileReply{}},
		{Method: wire.MOpen, Req: &wire.OpenRequest{Path: "/bad"}, Reply: &wire.FileReply{}},
		{Method: wire.MOpen, Req: &wire.OpenRequest{Path: "/ok"}, Reply: &wire.FileReply{}},
	}
	err := cli.CallBatch(bg(), calls)
	if err == nil {
		t.Fatal("batch with a failing call returned nil")
	}
	if calls[0].Err != nil || calls[2].Err != nil {
		t.Fatalf("healthy calls failed: %v / %v", calls[0].Err, calls[2].Err)
	}
	var we *wire.Error
	if !errors.As(calls[1].Err, &we) || we.Msg != "no such file" {
		t.Fatalf("calls[1].Err = %v, want wire.Error(no such file)", calls[1].Err)
	}
}

// TestCallBatchCancel: a fired context abandons unanswered calls,
// deregisters their pending entries, and surfaces a typed error.
func TestCallBatchCancel(t *testing.T) {
	block := make(chan struct{})
	cli, _ := newPair(t, func(ep *Endpoint) {
		ep.Handle(wire.MFlush, func(ctx context.Context, p []byte) (wire.Msg, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return &wire.Ack{}, nil
		})
	})
	defer close(block)
	ctx, cancel := context.WithTimeout(bg(), 50*time.Millisecond)
	defer cancel()
	calls := []BatchCall{
		{Method: wire.MFlush, Req: &wire.FlushRequest{Resource: 1}},
		{Method: wire.MFlush, Req: &wire.FlushRequest{Resource: 2}},
	}
	err := cli.CallBatch(ctx, calls)
	if !errors.Is(err, wire.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	for i := range calls {
		if !errors.Is(calls[i].Err, wire.ErrTimeout) {
			t.Fatalf("calls[%d].Err = %v, want ErrTimeout", i, calls[i].Err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for cli.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d after cancel, want 0", cli.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCallBatchEmpty: a zero-length batch is a no-op.
func TestCallBatchEmpty(t *testing.T) {
	cli, _ := newPair(t, func(ep *Endpoint) {})
	if err := cli.CallBatch(bg(), nil); err != nil {
		t.Fatal(err)
	}
}
