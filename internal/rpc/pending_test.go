package rpc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccpfs/internal/sim"
	"ccpfs/internal/transport/memnet"
	"ccpfs/internal/wire"
)

func TestCallTableRegisterTake(t *testing.T) {
	var tab callTable[int]
	if !tab.register(1, 10) {
		t.Fatal("register failed on open table")
	}
	if !tab.register(2, 20) {
		t.Fatal("register failed on open table")
	}
	if n := tab.length(); n != 2 {
		t.Fatalf("length = %d, want 2", n)
	}
	if v, ok := tab.take(1); !ok || v != 10 {
		t.Fatalf("take(1) = %d, %v; want 10, true", v, ok)
	}
	if _, ok := tab.take(1); ok {
		t.Fatal("second take(1) succeeded; entries must be taken exactly once")
	}
	if _, ok := tab.take(99); ok {
		t.Fatal("take of unregistered id succeeded")
	}
	if v, ok := tab.take(2); !ok || v != 20 {
		t.Fatalf("take(2) = %d, %v; want 20, true", v, ok)
	}
	if n := tab.length(); n != 0 {
		t.Fatalf("length = %d after all takes, want 0", n)
	}
}

// collidingIDs returns n distinct ids that all hash to the same slot,
// forcing probe-window spill into the overflow shard.
func collidingIDs(n int) []uint64 {
	ids := make([]uint64, 0, n)
	want := tableHash(1)
	for id := uint64(1); len(ids) < n; id++ {
		if tableHash(id) == want {
			ids = append(ids, id)
		}
	}
	return ids
}

func TestCallTableOverflow(t *testing.T) {
	var tab callTable[uint64]
	ids := collidingIDs(probeWindow + 8)
	for _, id := range ids {
		if !tab.register(id, id) {
			t.Fatalf("register(%d) failed", id)
		}
	}
	if tab.overflow == nil || len(tab.overflow) == 0 {
		t.Fatalf("expected probe-window spill into overflow, overflow has %d entries", len(tab.overflow))
	}
	if n := tab.length(); n != len(ids) {
		t.Fatalf("length = %d, want %d", n, len(ids))
	}
	// Every entry — slot-resident or overflowed — must come back exactly
	// once.
	for _, id := range ids {
		if v, ok := tab.take(id); !ok || v != id {
			t.Fatalf("take(%d) = %d, %v; want %d, true", id, v, ok, id)
		}
	}
	if n := tab.length(); n != 0 {
		t.Fatalf("length = %d after takes, want 0", n)
	}
}

func TestCallTableCloseDrain(t *testing.T) {
	var tab callTable[uint64]
	ids := collidingIDs(probeWindow + 4) // cover slots and overflow
	for _, id := range ids {
		tab.register(id, id)
	}
	items, first := tab.closeAndDrain()
	if !first {
		t.Fatal("first closeAndDrain reported first=false")
	}
	if len(items) != len(ids) {
		t.Fatalf("drained %d items, want %d", len(items), len(ids))
	}
	if _, again := tab.closeAndDrain(); again {
		t.Fatal("second closeAndDrain reported first=true")
	}
	if tab.register(12345, 1) {
		t.Fatal("register succeeded on closed table")
	}
	if n := tab.length(); n != 0 {
		t.Fatalf("length = %d after drain, want 0", n)
	}
}

// TestCallTableStress hammers the exactly-one-taker guarantee: many
// producers register entries while takers race to claim them (some via
// the producer itself — the forget path — some via a separate goroutine
// — the complete path) and a closer drains the table mid-run. Every id
// whose registration succeeded must be taken exactly once, by exactly
// one of forget/complete/drain; no id may ever be taken twice. Run with
// -race.
func TestCallTableStress(t *testing.T) {
	const (
		producers = 8
		opsPer    = 3000
	)
	var tab callTable[uint64]
	var nextID atomic.Uint64

	type record struct {
		registered bool
		id         uint64
	}
	attempts := make(chan record, producers*opsPer)
	taken := make(chan uint64, producers*opsPer+16)
	feed := make(chan uint64, 256)

	var consumers sync.WaitGroup
	for c := 0; c < 2; c++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for id := range feed {
				if v, ok := tab.take(id); ok {
					if v != id {
						t.Errorf("take(%d) returned value %d", id, v)
					}
					taken <- id
				}
			}
		}()
	}

	var prods sync.WaitGroup
	for p := 0; p < producers; p++ {
		prods.Add(1)
		go func() {
			defer prods.Done()
			for i := 0; i < opsPer; i++ {
				id := nextID.Add(1)
				ok := tab.register(id, id)
				attempts <- record{registered: ok, id: id}
				if !ok {
					continue
				}
				// Pseudo-randomly forget half ourselves, hand the rest
				// to the completers.
				if id*0x9E3779B9%2 == 0 {
					if v, tok := tab.take(id); tok {
						if v != id {
							t.Errorf("forget take(%d) returned %d", id, v)
						}
						taken <- id
					}
				} else {
					feed <- id
				}
			}
		}()
	}

	// Close the table while traffic is in full flight.
	time.Sleep(2 * time.Millisecond)
	drained, first := tab.closeAndDrain()
	if !first {
		t.Fatal("closer was not first to close")
	}
	for _, id := range drained {
		taken <- id
	}

	prods.Wait()
	close(feed)
	consumers.Wait()
	close(attempts)
	close(taken)

	registered := make(map[uint64]bool)
	attempted := make(map[uint64]bool)
	for r := range attempts {
		attempted[r.id] = true
		if r.registered {
			registered[r.id] = true
		}
	}
	takenOnce := make(map[uint64]bool)
	for id := range taken {
		if takenOnce[id] {
			t.Fatalf("id %d taken twice", id)
		}
		takenOnce[id] = true
		if !attempted[id] {
			t.Fatalf("id %d taken but never attempted", id)
		}
	}
	for id := range registered {
		if !takenOnce[id] {
			t.Fatalf("id %d registered but never taken (leaked entry)", id)
		}
	}
	if n := tab.length(); n != 0 {
		t.Fatalf("table length = %d after stress, want 0", n)
	}
}

// TestCallCancelCloseInterleaving drives real endpoints through the
// three-way race the pending table must survive: calls completing,
// callers abandoning via context, and the connection closing, all
// concurrently. Every Call must return (no hang), and afterwards the
// pending table must be empty. Run with -race.
func TestCallCancelCloseInterleaving(t *testing.T) {
	net := memnet.New(sim.Hardware{})
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, Options{}, func(ep *Endpoint) {
		ep.Handle(wire.MRelease, func(ctx context.Context, payload []byte) (wire.Msg, error) {
			var req wire.ReleaseRequest
			if err := wire.Unmarshal(payload, &req); err != nil {
				return nil, err
			}
			return &wire.Ack{}, nil
		})
	})
	go srv.Serve()
	defer srv.Close()

	conn, err := net.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	ep := NewEndpoint(conn, Options{})
	ep.Start()

	const callers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				ctx := context.Background()
				var cancel context.CancelFunc
				switch (seed + i) % 3 {
				case 0:
					// Abandon race: context that may fire mid-call.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%7)*time.Microsecond)
				case 1:
					// Pre-canceled.
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				}
				var resp wire.Ack
				ep.Call(ctx, wire.MRelease, &wire.ReleaseRequest{}, &resp) // all errors legal here
				if cancel != nil {
					cancel()
				}
			}
		}(c)
	}

	time.Sleep(5 * time.Millisecond)
	ep.Close() // tear down mid-traffic: remaining calls fail with ErrClosed
	close(stop)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("callers hung after close — lost pending entry")
	}

	// Late abandon paths may still be unwinding; the table must converge
	// to empty.
	deadline := time.Now().Add(5 * time.Second)
	for ep.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Pending() = %d after close and quiesce, want 0", ep.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCallCtxCancelSemantics(t *testing.T) {
	base := context.Background()

	// Cancel before Done: waiters get an already-closed channel.
	cc := &callCtx{base: base}
	cc.cancel()
	select {
	case <-cc.Done():
	default:
		t.Fatal("Done() not closed after cancel")
	}
	if cc.Err() != context.Canceled {
		t.Fatalf("Err() = %v, want context.Canceled", cc.Err())
	}

	// Done before cancel: the published channel closes on cancel.
	cc = &callCtx{base: base}
	ch := cc.Done()
	select {
	case <-ch:
		t.Fatal("Done() closed before cancel")
	default:
	}
	if cc.Err() != nil {
		t.Fatalf("Err() = %v before cancel, want nil", cc.Err())
	}
	cc.cancel()
	cc.cancel() // idempotent
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Done() channel did not close on cancel")
	}
}

// TestCallCtxDoneCancelRace races lazy Done publication against cancel;
// every waiter must observe the close. Run with -race.
func TestCallCtxDoneCancelRace(t *testing.T) {
	for i := 0; i < 2000; i++ {
		cc := &callCtx{base: context.Background()}
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-cc.Done()
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc.cancel()
		}()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("a Done() waiter missed the cancel")
		}
	}
}
