package epoch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGracePeriod checks the core EBR contract: a free retired while a
// reader is pinned must not run until two epoch advances after the
// reader unpins.
func TestGracePeriod(t *testing.T) {
	var d Domain
	g := d.Pin()

	freed := false
	d.Retire(func() { freed = true })

	// The pinned reader blocks the second advance (it announced the
	// epoch current at pin time, so at most one advance can pass it).
	for i := 0; i < 4; i++ {
		d.TryAdvance()
	}
	d.Reap()
	if freed {
		t.Fatal("free ran while a reader from the retire epoch was still pinned")
	}

	g.Unpin()
	d.Barrier()
	if !freed {
		t.Fatal("free did not run after unpin + barrier")
	}
}

// TestPinUnpinReuseSlots checks that sequential pin/unpin cycles do not
// leak slots and that nested pins take distinct slots.
func TestPinUnpinReuseSlots(t *testing.T) {
	var d Domain
	for i := 0; i < 10*slotCount; i++ {
		g := d.Pin()
		g.Unpin()
	}
	if n := d.Pinned(); n != 0 {
		t.Fatalf("Pinned() = %d after all unpins, want 0", n)
	}
	g1 := d.Pin()
	g2 := d.Pin()
	if g1.s == g2.s {
		t.Fatal("nested pins shared a slot")
	}
	if n := d.Pinned(); n != 2 {
		t.Fatalf("Pinned() = %d with two guards held, want 2", n)
	}
	g1.Unpin()
	g2.Unpin()
}

// TestPinAllocFree locks in that the fast path allocates nothing — the
// dlm cached-hit benchmark is gated at 0 allocs/op and pins around
// every lookup.
func TestPinAllocFree(t *testing.T) {
	var d Domain
	n := testing.AllocsPerRun(1000, func() {
		g := d.Pin()
		g.Unpin()
	})
	if n != 0 {
		t.Fatalf("Pin/Unpin allocates %.1f times per op, want 0", n)
	}
}

// TestNoUseAfterFree is the reclamation property test. Writers publish
// successive versions of a payload through an atomic pointer, retiring
// each replaced version into a reuse pool that poisons it first — the
// exact reuse pattern the extent-tree node pool and the dlm handle-list
// pool depend on. Readers pin, load, and verify the payload is
// internally consistent (seq stamped at both ends, never poisoned). If
// an object were recycled while still visible to a pinned reader, the
// reader would observe the poison or a torn pair.
func TestNoUseAfterFree(t *testing.T) {
	const (
		writers = 2
		readers = 4
		rounds  = 4000
		poison  = ^uint64(0)
	)

	type payload struct {
		lo uint64
		_  [48]byte // keep lo/hi apart so tearing is observable
		hi uint64
	}

	var d Domain
	var cur atomic.Pointer[payload]
	pool := sync.Pool{New: func() any { return new(payload) }}

	first := pool.Get().(*payload)
	first.lo, first.hi = 1, 1
	cur.Store(first)

	var seq atomic.Uint64
	seq.Store(1)
	var wwg, rwg sync.WaitGroup
	stop := make(chan struct{})

	var fail atomic.Value // stores string

	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for i := 0; i < rounds; i++ {
				n := seq.Add(1)
				p := pool.Get().(*payload)
				if p.lo == poison {
					p.lo, p.hi = 0, 0
				}
				p.lo, p.hi = n, n
				old := cur.Swap(p)
				d.Retire(func() {
					old.lo, old.hi = poison, poison
					pool.Put(old)
				})
			}
		}()
	}

	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := d.Pin()
				p := cur.Load()
				lo := p.lo
				runtime.Gosched() // widen the race window
				hi := p.hi
				g.Unpin()
				if lo == poison || hi == poison {
					fail.Store("reader observed poisoned (recycled) payload")
					return
				}
				if lo != hi {
					fail.Store("reader observed torn payload")
					return
				}
			}
		}()
	}

	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		wwg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
		default:
			if fail.Load() != nil {
				t.Fatal(fail.Load())
			}
			runtime.Gosched()
			continue
		}
		break
	}
	close(stop)
	rwg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	d.Barrier()
}

// TestDeferredGrowthBounded checks that when readers unpin promptly —
// so epoch advancement can always make progress — the deferred-free
// list stays bounded by the reclaim batching, not by the total retire
// count. The read traffic here is interleaved on the same goroutine to
// make the bound deterministic: a reader parked *while pinned* (e.g.
// preempted mid-lookup) is allowed to grow the list, which is exactly
// why pins must not be held across blocking operations.
func TestDeferredGrowthBounded(t *testing.T) {
	var d Domain
	const retires = 20000
	max := 0
	for i := 0; i < retires; i++ {
		g := d.Pin()
		_ = d.Epoch()
		g.Unpin()
		d.Retire(func() {})
		if n := d.Deferred(); n > max {
			max = n
		}
	}

	// Between reclaim passes up to reclaimEvery items accumulate, and a
	// pass can strand up to two epochs' worth; 4x is a generous bound
	// that still catches unbounded growth (which would reach ~retires).
	if max > 4*reclaimEvery {
		t.Fatalf("deferred list peaked at %d entries, want <= %d", max, 4*reclaimEvery)
	}
	d.Barrier()
	if n := d.Deferred(); n != 0 {
		t.Fatalf("Deferred() = %d after Barrier, want 0", n)
	}
}

// TestRetireWithoutReaders checks frees flow promptly with no readers.
func TestRetireWithoutReaders(t *testing.T) {
	var d Domain
	var freed atomic.Int64
	const n = 1000
	for i := 0; i < n; i++ {
		d.Retire(func() { freed.Add(1) })
	}
	d.Barrier()
	if got := freed.Load(); got != n {
		t.Fatalf("freed %d of %d after Barrier", got, n)
	}
}

func BenchmarkPinUnpin(b *testing.B) {
	var d Domain
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g := d.Pin()
			g.Unpin()
		}
	})
}
