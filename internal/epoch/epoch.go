// Package epoch implements epoch-based reclamation (EBR), the grace
// period primitive behind the repo's lock-free hot paths: RCU snapshot
// readers pin the current epoch before walking an atomically published
// structure, and writers that unlink a node (or replace a slice) hand
// it to Retire instead of a pool. The deferred free runs only after
// every reader that could still hold a reference has unpinned, which is
// what makes it safe to *reuse* retired memory — plain Go GC already
// keeps stale snapshots alive, but it cannot stop a pool from handing a
// slice to a writer while a reader is still iterating it.
//
// The scheme is the classic three-epoch design (Fraser; crossbeam): a
// global epoch counter advances only when every pinned reader has
// announced the current epoch, and an object retired in epoch E is
// freed once the global epoch reaches E+2 — by then, every reader that
// could have acquired a reference has unpinned.
//
//	g := d.Pin()          // announce: "I am reading at epoch e"
//	node := root.Load()   // walk the published snapshot
//	...
//	g.Unpin()
//
//	// writer, after unlinking old from the published structure:
//	d.Retire(func() { freelist.Put(old) })
//
// Reader slots are striped and cache-line padded, so Pin/Unpin is two
// uncontended atomic operations in the common case; goroutines pick a
// starting slot from a stack-address hash and probe on collision.
// Retire appends to a mutex-guarded deferred list (writers are the slow
// path by construction) and amortizes epoch advancement: every
// reclaimEvery retirements it tries to advance the epoch twice and runs
// the frees that have cleared their grace period.
package epoch

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	// slotCount is the number of striped reader slots per domain. It
	// bounds concurrent pins only softly: Pin spins until a slot frees,
	// which with slots ≫ GOMAXPROCS it effectively never does.
	slotCount = 32
	slotMask  = slotCount - 1

	// reclaimEvery is how many Retire calls elapse between amortized
	// advance+reap passes. It bounds deferred-list growth at roughly
	// 2*reclaimEvery items when readers pin and unpin promptly.
	reclaimEvery = 64
)

// slot is one reader announcement, alone on its cache line. The word is
// 0 when inactive, otherwise (epoch<<1)|1.
type slot struct {
	word atomic.Uint64
	_    [56]byte
}

type retired struct {
	epoch uint64
	free  func()
}

// Domain is one reclamation scope: a set of reader slots, a global
// epoch, and the deferred free lists. Structures that retire
// independently should use separate domains (a stalled reader in one
// domain then cannot pin garbage in another). The zero value is ready
// to use.
type Domain struct {
	global atomic.Uint64 // current epoch
	slots  [slotCount]slot

	// Deferred frees, guarded by mu. Retiring is the writer side of
	// every structure built on this package, and writers are already
	// serialized per shard/stripe, so a short critical section here is
	// off the contended path by construction.
	mu      sync.Mutex
	defers  []retired
	pending int // Retire calls since the last reclaim pass
}

// Guard is an active pin. It is returned by value and holds no heap
// state, so pinning allocates nothing.
type Guard struct {
	s *slot
}

// gHint derives a per-goroutine starting slot from the address of a
// stack variable: distinct goroutines run on distinct stacks, so their
// hints scatter, and a collision only costs a probe step. The address
// is degraded to an integer immediately and never dereferenced.
//
//go:nosplit
func gHint() uint64 {
	var x byte
	p := uintptr(unsafe.Pointer(&x))
	return uint64(p>>4) * 0x9E3779B97F4A7C15 >> 56
}

// Pin announces the caller as a reader at the current epoch and returns
// the guard to Unpin when done. Objects reachable from snapshots loaded
// between Pin and Unpin are not reused until after Unpin. Pins may
// nest (each takes its own slot) but must not be held across blocking
// operations — a parked reader stalls reclamation for its domain.
func (d *Domain) Pin() Guard {
	i := gHint()
	for n := uint64(0); ; n++ {
		s := &d.slots[(i+n)&slotMask]
		w := s.word.Load()
		if w&1 == 0 {
			// Announce the epoch read *now*; if the global has already
			// moved on, the stale announcement is merely conservative
			// (it blocks advancement until this reader unpins).
			if s.word.CompareAndSwap(w, d.global.Load()<<1|1) {
				return Guard{s}
			}
		}
	}
}

// Unpin releases the guard. It must be called exactly once.
func (g Guard) Unpin() {
	g.s.word.Store(0)
}

// Epoch returns the current global epoch (tests and introspection).
func (d *Domain) Epoch() uint64 { return d.global.Load() }

// Pinned returns the number of currently active reader slots
// (introspection; inherently racy).
func (d *Domain) Pinned() int {
	n := 0
	for i := range d.slots {
		if d.slots[i].word.Load()&1 == 1 {
			n++
		}
	}
	return n
}

// Retire schedules free to run once no reader pinned at or before the
// current epoch can still hold a reference — i.e. after two epoch
// advances. The caller must already have unlinked the object from every
// published snapshot; Retire is the fence between "unreachable for new
// readers" and "reusable". Reclamation is amortized: every
// reclaimEvery retirements, Retire tries to advance the epoch and runs
// the frees whose grace period has passed.
func (d *Domain) Retire(free func()) {
	d.mu.Lock()
	d.defers = append(d.defers, retired{epoch: d.global.Load(), free: free})
	d.pending++
	reap := d.pending >= reclaimEvery
	if reap {
		d.pending = 0
	}
	d.mu.Unlock()
	if reap {
		d.TryAdvance()
		d.TryAdvance()
		d.Reap()
	}
}

// TryAdvance moves the global epoch forward by one if every active
// reader has announced the current epoch. It reports whether the epoch
// advanced. A reader pinned at an older epoch blocks advancement — that
// is the grace-period guarantee.
func (d *Domain) TryAdvance() bool {
	g := d.global.Load()
	for i := range d.slots {
		w := d.slots[i].word.Load()
		if w&1 == 1 && w>>1 != g {
			return false
		}
	}
	return d.global.CompareAndSwap(g, g+1)
}

// Reap runs every deferred free whose grace period has passed (retired
// at epoch ≤ global-2) and returns how many ran. The frees run outside
// the domain lock.
func (d *Domain) Reap() int {
	g := d.global.Load()
	if g < 2 {
		return 0
	}
	limit := g - 2
	var run []retired
	d.mu.Lock()
	keep := d.defers[:0]
	for _, r := range d.defers {
		if r.epoch <= limit {
			run = append(run, r)
		} else {
			keep = append(keep, r)
		}
	}
	// Clear the tail so freed closures do not linger in the backing
	// array.
	for i := len(keep); i < len(d.defers); i++ {
		d.defers[i] = retired{}
	}
	d.defers = keep
	d.mu.Unlock()
	for _, r := range run {
		r.free()
	}
	return len(run)
}

// Deferred returns the number of retirements still awaiting their grace
// period (tests: bounded-growth property).
func (d *Domain) Deferred() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.defers)
}

// Barrier advances the epoch past every retirement made so far and
// reaps. It only completes while no reader stays pinned, so it is a
// shutdown/test helper, not a hot-path operation: after Barrier
// returns, every free retired before the call has run.
func (d *Domain) Barrier() {
	for i := 0; i < 2; {
		if d.TryAdvance() {
			i++
		}
	}
	d.Reap()
}
