package analysis

import (
	"math"
	"testing"
)

// TestTableIBottleneck reproduces the §II-C numerical evaluation: with
// D = 1e6 bytes, ① ≈ 1.0e-13, ② ≈ 1.0e-12, ③ ≈ 4.1e-10 s/B, and data
// flushing dominates.
func TestTableIBottleneck(t *testing.T) {
	p := TableI(16, 1e6)
	t1, t2, t3 := p.Terms()
	approx := func(got, want float64) bool {
		return math.Abs(got-want)/want < 0.05
	}
	if !approx(t1, 1.0e-13) {
		t.Fatalf("term ① = %.3e, want ~1.0e-13", t1)
	}
	if !approx(t2, 1.0e-12) {
		t.Fatalf("term ② = %.3e, want ~1.0e-12", t2)
	}
	if !approx(t3, 4.1e-10) {
		t.Fatalf("term ③ = %.3e, want ~4.1e-10", t3)
	}
	if p.Bottleneck() != "data flushing" {
		t.Fatalf("bottleneck = %s, want data flushing", p.Bottleneck())
	}
}

func TestBFlush(t *testing.T) {
	p := TableI(16, 1e6)
	want := 12.5e9 * 3e9 / (12.5e9 + 3e9)
	if math.Abs(p.BFlush()-want) > 1 {
		t.Fatalf("BFlush = %e, want %e", p.BFlush(), want)
	}
	// Flush bandwidth is below both component bandwidths.
	if p.BFlush() >= p.BDisk || p.BFlush() >= p.BNet {
		t.Fatal("serialized flush bandwidth must be below both links")
	}
}

// TestRemovingFlushShiftsBottleneck verifies the §II-C observation that
// once flushing is removed, revocation becomes the bottleneck — each
// removal must raise the modelled bandwidth substantially.
func TestRemovingFlushShiftsBottleneck(t *testing.T) {
	p := TableI(16, 1e6)
	b0 := p.BTotal()
	b1 := p.WithoutFlush()
	b2 := p.WithoutFlushAndRevocation()
	if !(b0 < b1 && b1 < b2) {
		t.Fatalf("bandwidth ordering wrong: %e, %e, %e", b0, b1, b2)
	}
	if b1/b0 < 10 {
		t.Fatalf("removing flush only gained %.1fx; the model says it dominates", b1/b0)
	}
	// With flushing gone, the RTT term should dominate the OPS term.
	t1, t2, _ := p.Terms()
	if t2 <= t1 {
		t.Fatal("revocation term does not dominate OPS term")
	}
}

// TestBandwidthGrowsWithWriteSize: under the model, larger writes
// amortize the per-operation costs but converge to B_flush.
func TestBandwidthGrowsWithWriteSize(t *testing.T) {
	prev := 0.0
	for _, d := range []float64{16e3, 64e3, 256e3, 1e6, 4e6} {
		b := TableI(16, d).BTotal()
		if b <= prev {
			t.Fatalf("bandwidth not increasing at D=%.0f: %e <= %e", d, b, prev)
		}
		prev = b
	}
	// The asymptote is N/(N-1) · B_flush: N writes but only N-1
	// serialized flushes (the last one stays cached).
	p := TableI(16, 1e9)
	if limit := p.BTotal(); limit > 16.0/15.0*p.BFlush()*1.001 {
		t.Fatalf("bandwidth %e exceeded the model's flush asymptote", limit)
	}
}

func TestDegenerateInputs(t *testing.T) {
	p := Params{N: 1, D: 1, OPS: 1, RTT: 0, BNet: 1, BDisk: 1}
	if b := p.BTotal(); b <= 0 {
		t.Fatalf("BTotal = %e", b)
	}
	if p.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestSmallWritesBottleneckCanShift(t *testing.T) {
	// With tiny writes and huge flush bandwidth, OPS dominates.
	p := Params{N: 100, D: 1, OPS: 1e3, RTT: 1e-9, BNet: 1e12, BDisk: 1e12}
	if p.Bottleneck() != "lock server OPS" {
		t.Fatalf("bottleneck = %s", p.Bottleneck())
	}
	p.RTT = 1
	if p.Bottleneck() != "lock revocation" {
		t.Fatalf("bottleneck = %s", p.Bottleneck())
	}
}
