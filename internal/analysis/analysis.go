// Package analysis implements the lock conflict resolution overhead
// model of §II-C: Equations (1) and (2) and the three bottleneck terms
// ① 1/(OPS·D), ② RTT/D, ③ 1/B_flush, evaluated with the Table I
// hardware parameters. The model predicts that data flushing (term ③)
// dominates the bandwidth of N totally-conflicting writes, and that once
// flushing is removed from the critical path (early grant), revocation
// (term ②) becomes the next bottleneck — the two observations SeqDLM's
// design is built on.
package analysis

import "fmt"

// Params are the model inputs.
type Params struct {
	// N is the number of conflicting writes.
	N float64
	// D is the write size in bytes.
	D float64
	// OPS is the lock server's RPC processing rate (op/s).
	OPS float64
	// RTT is the network round-trip time in seconds.
	RTT float64
	// BNet is the network bandwidth (B/s).
	BNet float64
	// BDisk is the disk bandwidth (B/s).
	BDisk float64
}

// TableI returns the paper's Table I parameters with the given write
// size and write count.
func TableI(n, d float64) Params {
	return Params{
		N:     n,
		D:     d,
		OPS:   1e7,
		RTT:   1e-6,
		BNet:  12.5e9,
		BDisk: 3e9,
	}
}

// BFlush evaluates Equation (2): the serialized flush bandwidth through
// the network and the disk.
func (p Params) BFlush() float64 {
	return p.BNet * p.BDisk / (p.BNet + p.BDisk)
}

// BTotal evaluates Equation (1): the aggregate bandwidth of N
// conflicting writes of size D under a traditional DLM.
func (p Params) BTotal() float64 {
	t := p.N/p.OPS + (p.N-1)*p.RTT + (p.N-1)*p.D/p.BFlush()
	if t <= 0 {
		return 0
	}
	return p.N * p.D / t
}

// Terms returns the three per-byte cost terms of the simplified
// Equation (1): ① 1/(OPS·D), ② RTT/D, ③ 1/B_flush, in seconds per byte.
func (p Params) Terms() (t1, t2, t3 float64) {
	return 1 / (p.OPS * p.D), p.RTT / p.D, 1 / p.BFlush()
}

// Bottleneck names the dominating term.
func (p Params) Bottleneck() string {
	t1, t2, t3 := p.Terms()
	switch {
	case t3 >= t1 && t3 >= t2:
		return "data flushing"
	case t2 >= t1:
		return "lock revocation"
	default:
		return "lock server OPS"
	}
}

// WithoutFlush evaluates Equation (1) with term ③ removed — the model
// of early grant decoupling data flushing from conflict resolution.
func (p Params) WithoutFlush() float64 {
	t := p.N/p.OPS + (p.N-1)*p.RTT
	if t <= 0 {
		return 0
	}
	return p.N * p.D / t
}

// WithoutFlushAndRevocation also removes the revocation RTT — the model
// of early grant plus early revocation, leaving only the OPS bound.
func (p Params) WithoutFlushAndRevocation() float64 {
	t := p.N / p.OPS
	if t <= 0 {
		return 0
	}
	return p.N * p.D / t
}

// String summarizes the model evaluation.
func (p Params) String() string {
	t1, t2, t3 := p.Terms()
	return fmt.Sprintf(
		"N=%.0f D=%.0fB: ①=%.2e ②=%.2e ③=%.2e s/B, bottleneck=%s, Btotal=%.2f MB/s",
		p.N, p.D, t1, t2, t3, p.Bottleneck(), p.BTotal()/1e6)
}
