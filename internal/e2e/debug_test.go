// The /debug endpoint smoke test: start a real ccpfs-server with
// -debug, push traffic through it with ccpfs-cli (locks, writes,
// flushes), and scrape /debug/metrics the way an operator would with
// curl. This is the acceptance check for the observability layer: the
// JSON must carry the DLM grant-wait percentiles and the per-method
// RPC latency histograms, and the counters must have moved.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestDebugEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	server := build(t, dir, "./cmd/ccpfs-server", "ccpfs-server")
	cli := build(t, dir, "./cmd/ccpfs-cli", "ccpfs-cli")

	addr, debugAddr := freePort(t), freePort(t)
	srv := exec.Command(server,
		"-listen", addr, "-meta", "-data", filepath.Join(dir, "data"),
		"-debug", debugAddr)
	srv.Stdout, srv.Stderr = os.Stderr, os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitListening(t, addr)
	waitListening(t, debugAddr)

	// Generate traffic: a put takes locks, writes blocks, and flushes.
	local := filepath.Join(dir, "payload.bin")
	if err := os.WriteFile(local, bytes.Repeat([]byte("obs"), 100_000), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, args := range [][]string{
		{"put", local, "/payload"},
		{"get", "/payload", filepath.Join(dir, "copy.bin")},
	} {
		full := append([]string{"-servers", addr, "-id", fmt.Sprint(201 + i)}, args...)
		if out, err := exec.Command(cli, full...).CombinedOutput(); err != nil {
			t.Fatalf("ccpfs-cli %v: %v\n%s", args, err, out)
		}
	}

	resp, err := http.Get("http://" + debugAddr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/metrics: %s\n%s", resp.Status, body)
	}

	var snap struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics endpoint returned invalid JSON: %v\n%s", err, body)
	}

	// The lock path ran: grants counted, and the grant-wait histogram is
	// present with percentile fields (it may be all zeros if every grant
	// was immediate — presence and shape are the contract).
	if snap.Gauges["dlm.grants"] == 0 {
		t.Fatalf("dlm.grants did not move:\n%s", body)
	}
	gw, ok := snap.Histograms["dlm.grant_wait"]
	if !ok {
		t.Fatalf("dlm.grant_wait histogram missing:\n%s", body)
	}
	for _, field := range []string{"p50_ns", "p90_ns", "p99_ns"} {
		if !strings.Contains(string(gw), field) {
			t.Fatalf("dlm.grant_wait missing %s:\n%s", field, gw)
		}
	}

	// The rpc layer saw traffic: per-method handle counters and at least
	// one per-method latency histogram (the first call of every method
	// is always clock-timed, whatever the sampling interval).
	var handled, timed bool
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "rpc.handles.") && v > 0 {
			handled = true
		}
	}
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "rpc.handle.") {
			timed = true
		}
	}
	if !handled || !timed {
		t.Fatalf("rpc per-method metrics missing (handled=%v timed=%v):\n%s", handled, timed, body)
	}
	if snap.Counters["rpc.bytes_in"] == 0 || snap.Counters["rpc.bytes_out"] == 0 {
		t.Fatalf("rpc byte counters did not move:\n%s", body)
	}

	// The write path ran through the extent cache.
	if snap.Gauges["extcache.inserts"] == 0 {
		t.Fatalf("extcache.inserts did not move:\n%s", body)
	}

	// The text rendering works too (operators use ?format=text).
	tr, err := http.Get("http://" + debugAddr + "/debug/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(tr.Body)
	tr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "dlm.grant_wait") {
		t.Fatalf("text rendering missing dlm.grant_wait:\n%s", text)
	}
}
