// Package e2e builds the real ccpfs-server and ccpfs-cli binaries and
// drives them as a user would: start two servers over TCP, put, ls,
// stat, get, verify, bench, rm.
package e2e

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// build compiles a command into dir and returns the binary path.
func build(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/e2e -> repo root
}

// freePort grabs an ephemeral TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", addr)
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	server := build(t, dir, "./cmd/ccpfs-server", "ccpfs-server")
	cli := build(t, dir, "./cmd/ccpfs-cli", "ccpfs-cli")

	addr0, addr1 := freePort(t), freePort(t)
	data0 := filepath.Join(dir, "data0")
	data1 := filepath.Join(dir, "data1")

	srv0 := exec.Command(server, "-listen", addr0, "-meta", "-data", data0, "-extent-log")
	srv1 := exec.Command(server, "-listen", addr1, "-data", data1)
	for _, s := range []*exec.Cmd{srv0, srv1} {
		s.Stdout, s.Stderr = os.Stderr, os.Stderr
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer func(s *exec.Cmd) {
			s.Process.Kill()
			s.Wait()
		}(s)
	}
	waitListening(t, addr0)
	waitListening(t, addr1)
	servers := addr0 + "," + addr1

	run := func(id int, args ...string) string {
		t.Helper()
		full := append([]string{"-servers", servers, "-id", fmt.Sprint(id)}, args...)
		out, err := exec.Command(cli, full...).CombinedOutput()
		if err != nil {
			t.Fatalf("ccpfs-cli %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// put a file with distinctive content spanning both stripes.
	local := filepath.Join(dir, "payload.bin")
	payload := bytes.Repeat([]byte("ccpfs end to end "), 200_000) // ~3.4 MB
	if err := os.WriteFile(local, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	run(101, "put", local, "/payload")

	if out := run(102, "ls"); !strings.Contains(out, "/payload") {
		t.Fatalf("ls output missing file:\n%s", out)
	}
	if out := run(103, "stat", "/payload"); !strings.Contains(out, fmt.Sprintf("size=%d", len(payload))) {
		t.Fatalf("stat output wrong:\n%s", out)
	}

	// get from a different client identity and verify bytes.
	copyPath := filepath.Join(dir, "copy.bin")
	run(104, "get", "/payload", copyPath)
	got, err := os.ReadFile(copyPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip corrupted: %d bytes vs %d", len(got), len(payload))
	}

	if out := run(105, "bench", "64KB", "20"); !strings.Contains(out, "PIO") {
		t.Fatalf("bench output wrong:\n%s", out)
	}

	run(106, "rm", "/payload")
	if out := run(107, "ls"); strings.Contains(out, "/payload") {
		t.Fatalf("file survived rm:\n%s", out)
	}

	// The data directories and the extent log exist on disk.
	if _, err := os.Stat(filepath.Join(data0, "extent.log")); err != nil {
		t.Fatalf("extent log not persisted: %v", err)
	}
}
