// Package shard provides the shared shard-count and hash used by every
// node-local structure that splits a single hot mutex into per-stripe /
// per-resource locking (extent cache, stripe store, page cache, lock
// client, lock server). One place to tune keeps the lock hierarchy
// documented in DESIGN.md honest.
package shard

// Count is the number of shards each sharded map uses. A power of two
// so the hash reduces with a shift; 64 keeps collisions rare for the
// stripe counts the benchmarks and experiments run while costing only a
// few KB per structure.
const Count = 64

// countBits is log2(Count), used to reduce the 64-bit hash by shift.
const countBits = 6

// Of maps a stripe / resource identifier to its shard index.
// Fibonacci hashing: multiply by 2^64/phi and keep the top bits, which
// spreads the sequential IDs meta.ResourceID produces evenly.
func Of(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> (64 - countBits))
}
