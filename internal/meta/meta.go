// Package meta implements the ccPFS namespace service. The paper's
// prototype delegates naming to an external file system (NFS or Lustre)
// and uses the inode number as the FID; this reproduction provides an
// equivalent in-process register: path → (FID, size, stripe layout),
// with a monotonic size watermark updated by client flushes and exact
// updates for truncate.
package meta

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the service.
var (
	ErrExists   = errors.New("meta: file exists")
	ErrNotFound = errors.New("meta: no such file")
)

// File describes one file.
type File struct {
	FID         uint64
	Path        string
	Size        int64
	StripeSize  int64
	StripeCount uint32
}

// Service is the namespace register. It is safe for concurrent use.
type Service struct {
	mu      sync.Mutex
	byPath  map[string]*File
	byFID   map[uint64]*File
	nextFID uint64
}

// NewService returns an empty namespace.
func NewService() *Service {
	return &Service{
		byPath: make(map[string]*File),
		byFID:  make(map[uint64]*File),
	}
}

// Create registers a file with the given stripe layout.
func (s *Service) Create(path string, stripeSize int64, stripeCount uint32) (File, error) {
	if path == "" {
		return File{}, fmt.Errorf("meta: empty path")
	}
	if stripeSize <= 0 || stripeCount == 0 {
		return File{}, fmt.Errorf("meta: invalid layout %d x %d", stripeSize, stripeCount)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byPath[path]; ok {
		return File{}, ErrExists
	}
	s.nextFID++
	f := &File{
		FID:         s.nextFID,
		Path:        path,
		StripeSize:  stripeSize,
		StripeCount: stripeCount,
	}
	s.byPath[path] = f
	s.byFID[f.FID] = f
	return *f, nil
}

// Open returns a file by path.
func (s *Service) Open(path string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byPath[path]
	if !ok {
		return File{}, ErrNotFound
	}
	return *f, nil
}

// Stat returns a file by FID.
func (s *Service) Stat(fid uint64) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byFID[fid]
	if !ok {
		return File{}, ErrNotFound
	}
	return *f, nil
}

// SetSize updates a file's size register. With truncate false the size
// only grows (flushes from concurrent writers race benignly: the max
// wins); with truncate true the size is set exactly.
func (s *Service) SetSize(fid uint64, size int64, truncate bool) (int64, error) {
	if size < 0 {
		return 0, fmt.Errorf("meta: negative size %d", size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byFID[fid]
	if !ok {
		return 0, ErrNotFound
	}
	if truncate || size > f.Size {
		f.Size = size
	}
	return f.Size, nil
}

// Reserve atomically reserves n bytes at the end of the file and
// returns the reserved starting offset — the size read-and-bump that
// makes append atomic across clients.
func (s *Service) Reserve(fid uint64, n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("meta: negative reservation %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byFID[fid]
	if !ok {
		return 0, ErrNotFound
	}
	off := f.Size
	f.Size += n
	return off, nil
}

// Remove deletes a file from the namespace.
func (s *Service) Remove(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byPath[path]
	if !ok {
		return ErrNotFound
	}
	delete(s.byPath, path)
	delete(s.byFID, f.FID)
	return nil
}

// List returns all paths (diagnostics and the CLI's ls).
func (s *Service) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byPath))
	for p := range s.byPath {
		out = append(out, p)
	}
	return out
}
