package meta

import (
	"errors"
	"sync"
	"testing"
)

func TestCreateOpenStat(t *testing.T) {
	s := NewService()
	f, err := s.Create("/a", 1<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.FID == 0 || f.StripeCount != 4 || f.StripeSize != 1<<20 || f.Size != 0 {
		t.Fatalf("created = %+v", f)
	}
	g, err := s.Open("/a")
	if err != nil || g != f {
		t.Fatalf("Open = %+v, %v", g, err)
	}
	h, err := s.Stat(f.FID)
	if err != nil || h != f {
		t.Fatalf("Stat = %+v, %v", h, err)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	s := NewService()
	s.Create("/a", 4096, 1)
	if _, err := s.Create("/a", 4096, 1); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestCreateValidation(t *testing.T) {
	s := NewService()
	if _, err := s.Create("", 4096, 1); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := s.Create("/b", 0, 1); err == nil {
		t.Fatal("zero stripe size accepted")
	}
	if _, err := s.Create("/b", 4096, 0); err == nil {
		t.Fatal("zero stripe count accepted")
	}
}

func TestOpenMissing(t *testing.T) {
	s := NewService()
	if _, err := s.Open("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := s.Stat(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestSetSizeWatermark(t *testing.T) {
	s := NewService()
	f, _ := s.Create("/a", 4096, 1)
	if sz, _ := s.SetSize(f.FID, 100, false); sz != 100 {
		t.Fatalf("size = %d", sz)
	}
	// Smaller watermark updates lose.
	if sz, _ := s.SetSize(f.FID, 50, false); sz != 100 {
		t.Fatalf("size = %d, want 100 (watermark)", sz)
	}
	// Truncate sets exactly.
	if sz, _ := s.SetSize(f.FID, 50, true); sz != 50 {
		t.Fatalf("size = %d, want 50 after truncate", sz)
	}
	if _, err := s.SetSize(f.FID, -1, false); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := s.SetSize(12345, 1, false); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown FID accepted")
	}
}

func TestRemove(t *testing.T) {
	s := NewService()
	f, _ := s.Create("/a", 4096, 1)
	if err := s.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("file survived Remove")
	}
	if _, err := s.Stat(f.FID); !errors.Is(err, ErrNotFound) {
		t.Fatal("FID survived Remove")
	}
	if err := s.Remove("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("double remove succeeded")
	}
}

func TestList(t *testing.T) {
	s := NewService()
	s.Create("/a", 4096, 1)
	s.Create("/b", 4096, 1)
	if got := s.List(); len(got) != 2 {
		t.Fatalf("List = %v", got)
	}
}

func TestConcurrentSizeUpdates(t *testing.T) {
	s := NewService()
	f, _ := s.Create("/a", 4096, 1)
	var wg sync.WaitGroup
	for g := 1; g <= 16; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			for i := int64(1); i <= 100; i++ {
				s.SetSize(f.FID, g*i, false)
			}
		}(int64(g))
	}
	wg.Wait()
	got, _ := s.Stat(f.FID)
	if got.Size != 1600 {
		t.Fatalf("size = %d, want 1600 (max watermark)", got.Size)
	}
}

func TestFIDsAreUnique(t *testing.T) {
	s := NewService()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		f, err := s.Create(string(rune('a'+i%26))+string(rune('0'+i/26)), 4096, 1)
		if err != nil {
			t.Fatal(err)
		}
		if seen[f.FID] {
			t.Fatalf("duplicate FID %d", f.FID)
		}
		seen[f.FID] = true
	}
}
