package meta

import (
	"testing"
	"testing/quick"
)

func TestResourceIDRoundTrip(t *testing.T) {
	fid, stripe := SplitResource(ResourceID(42, 7))
	if fid != 42 || stripe != 7 {
		t.Fatalf("round trip = %d, %d", fid, stripe)
	}
}

func TestQuickResourceIDRoundTrip(t *testing.T) {
	f := func(fid uint32, stripe uint16) bool {
		g, s := SplitResource(ResourceID(uint64(fid), uint32(stripe)))
		return g == uint64(fid) && s == uint32(stripe)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceStripeBounds(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for rid := uint64(0); rid < 1000; rid++ {
			p := PlaceStripe(rid, n)
			if p < 0 || p >= n {
				t.Fatalf("PlaceStripe(%d, %d) = %d out of range", rid, n, p)
			}
		}
	}
	if PlaceStripe(123, 0) != 0 {
		t.Fatal("degenerate server count must map to 0")
	}
}

func TestPlaceStripeSpreads(t *testing.T) {
	// Consecutive stripes of one file should not all land on one server.
	counts := map[int]int{}
	for stripe := uint32(0); stripe < 16; stripe++ {
		counts[PlaceStripe(ResourceID(1, stripe), 4)]++
	}
	if len(counts) < 3 {
		t.Fatalf("16 stripes landed on only %d of 4 servers: %v", len(counts), counts)
	}
}

func TestSplitRangeSingleStripe(t *testing.T) {
	segs := SplitRange(100, 50, 1<<20, 1)
	if len(segs) != 1 || segs[0] != (Segment{Stripe: 0, Off: 100, FileOff: 100, Len: 50}) {
		t.Fatalf("segs = %+v", segs)
	}
	if SplitRange(0, 0, 1<<20, 1) != nil {
		t.Fatal("empty range produced segments")
	}
}

func TestSplitRangeRoundRobin(t *testing.T) {
	// stripeSize 100, 4 stripes: file bytes 0-99 → stripe 0 local 0-99,
	// 100-199 → stripe 1 local 0-99, ..., 400-499 → stripe 0 local
	// 100-199.
	segs := SplitRange(50, 500, 100, 4)
	want := []Segment{
		{Stripe: 0, Off: 50, FileOff: 50, Len: 50},
		{Stripe: 1, Off: 0, FileOff: 100, Len: 100},
		{Stripe: 2, Off: 0, FileOff: 200, Len: 100},
		{Stripe: 3, Off: 0, FileOff: 300, Len: 100},
		{Stripe: 0, Off: 100, FileOff: 400, Len: 100},
		{Stripe: 1, Off: 100, FileOff: 500, Len: 50},
	}
	if len(segs) != len(want) {
		t.Fatalf("segs = %+v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("seg %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
}

// TestQuickSplitRangeInvariants checks, for arbitrary layouts and
// ranges: segments cover the file range exactly and in order, segment
// lengths sum to n, no segment crosses a stripe boundary, and the
// (stripe, local offset) mapping is injective.
func TestQuickSplitRangeInvariants(t *testing.T) {
	f := func(off32 uint32, n16, ss16 uint16, sc8 uint8) bool {
		off := int64(off32 % 100000)
		n := int64(n16%5000) + 1
		stripeSize := int64(ss16%512) + 1
		stripeCount := uint32(sc8%8) + 1
		segs := SplitRange(off, n, stripeSize, stripeCount)

		fileOff := off
		type key struct {
			stripe uint32
			local  int64
		}
		seen := map[key]bool{}
		for _, s := range segs {
			if s.FileOff != fileOff || s.Len <= 0 {
				return false
			}
			if s.Stripe >= stripeCount {
				return false
			}
			if stripeCount > 1 {
				// A segment must not cross a stripe-size boundary in
				// local offsets.
				if s.Off/stripeSize != (s.Off+s.Len-1)/stripeSize {
					return false
				}
				// Verify the byte-level mapping at segment start.
				chunk := s.FileOff / stripeSize
				if uint32(chunk%int64(stripeCount)) != s.Stripe {
					return false
				}
				wantLocal := (chunk/int64(stripeCount))*stripeSize + s.FileOff%stripeSize
				if wantLocal != s.Off {
					return false
				}
			}
			k := key{s.Stripe, s.Off}
			if seen[k] {
				return false
			}
			seen[k] = true
			fileOff += s.Len
		}
		return fileOff == off+n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStripesOfSortedUnique(t *testing.T) {
	segs := SplitRange(0, 1000, 100, 4)
	stripes := StripesOf(segs)
	for i := 1; i < len(stripes); i++ {
		if stripes[i] <= stripes[i-1] {
			t.Fatalf("stripes not sorted/unique: %v", stripes)
		}
	}
	if len(stripes) != 4 {
		t.Fatalf("stripes = %v, want all 4", stripes)
	}
}

func TestStripeRange(t *testing.T) {
	segs := SplitRange(50, 500, 100, 4)
	lo, hi, ok := StripeRange(segs, 0)
	if !ok || lo != 50 || hi != 200 {
		t.Fatalf("stripe 0 range = [%d, %d), %v", lo, hi, ok)
	}
	if _, _, ok := StripeRange(segs, 9); ok {
		t.Fatal("untouched stripe reported a range")
	}
}
