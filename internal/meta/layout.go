package meta

// This file defines the stripe layout conventions shared by clients and
// data servers: how file bytes map onto stripes, how a stripe maps onto
// a lock resource, and how resources are placed on servers by hashing
// their IDs (§IV of the paper).

// ResourceID packs (FID, stripe index) into the identifier shared by a
// stripe and its lock resource. Stripe indexes are bounded well below
// 2^16 in practice (the paper evaluates up to 16).
func ResourceID(fid uint64, stripe uint32) uint64 {
	return fid<<16 | uint64(stripe&0xFFFF)
}

// SplitResource is the inverse of ResourceID.
func SplitResource(rid uint64) (fid uint64, stripe uint32) {
	return rid >> 16, uint32(rid & 0xFFFF)
}

// PlaceStripe maps a resource to one of n data servers by hashing the
// ID, as ccPFS distributes stripes (and their lock resources) among
// servers.
func PlaceStripe(rid uint64, n int) int {
	if n <= 1 {
		return 0
	}
	// Fibonacci hashing spreads consecutive stripe indexes of one file
	// across servers.
	h := rid * 0x9E3779B97F4A7C15
	return int(h % uint64(n))
}

// Segment is a contiguous piece of a file-level byte range mapped onto
// one stripe.
type Segment struct {
	Stripe uint32
	// Off is the stripe-local offset; locks and storage are addressed in
	// stripe-local bytes.
	Off int64
	// FileOff is the original file-level offset of this piece.
	FileOff int64
	// Len is the piece length in bytes.
	Len int64
}

// SplitRange maps the file-level range [off, off+n) onto stripe-local
// segments under the round-robin striping layout: file byte b lives in
// stripe (b/stripeSize) mod stripeCount at stripe-local offset
// (b/(stripeSize*stripeCount))*stripeSize + b mod stripeSize.
// Segments are returned in ascending file offset order.
func SplitRange(off, n, stripeSize int64, stripeCount uint32) []Segment {
	if n <= 0 {
		return nil
	}
	if stripeCount <= 1 {
		return []Segment{{Stripe: 0, Off: off, FileOff: off, Len: n}}
	}
	var segs []Segment
	sc := int64(stripeCount)
	for n > 0 {
		chunk := off / stripeSize // global chunk index
		stripe := uint32(chunk % sc)
		local := (chunk/sc)*stripeSize + off%stripeSize
		l := stripeSize - off%stripeSize
		if l > n {
			l = n
		}
		segs = append(segs, Segment{Stripe: stripe, Off: local, FileOff: off, Len: l})
		off += l
		n -= l
	}
	return segs
}

// StripesOf returns the distinct stripes touched by the segments, in
// ascending stripe order — the lock acquisition order that avoids
// deadlocks for multi-stripe writes.
func StripesOf(segs []Segment) []uint32 {
	seen := make(map[uint32]bool, 2)
	var out []uint32
	for _, s := range segs {
		if !seen[s.Stripe] {
			seen[s.Stripe] = true
			out = append(out, s.Stripe)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// StripeRange returns the smallest stripe-local range covering every
// segment of the given stripe.
func StripeRange(segs []Segment, stripe uint32) (start, end int64, ok bool) {
	for _, s := range segs {
		if s.Stripe != stripe {
			continue
		}
		if !ok {
			start, end, ok = s.Off, s.Off+s.Len, true
			continue
		}
		if s.Off < start {
			start = s.Off
		}
		if s.Off+s.Len > end {
			end = s.Off + s.Len
		}
	}
	return start, end, ok
}
