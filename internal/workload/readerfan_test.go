package workload

import (
	"testing"

	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/sim"
)

// TestRunReaderFan drives the write-then-fan-out rotation through the
// full client/cluster stack with the fan path on and off, and checks
// the economy the experiment reports: with ReaderFanout the rotation
// must ride gathers and propagated leases and spend strictly fewer
// server RPCs per reader-round than the server grant path.
func TestRunReaderFan(t *testing.T) {
	cfg := ReaderFanConfig{Readers: 4, Rounds: 16, WriteSize: 16 << 10, StripeSize: 256 << 10}

	run := func(fan bool) ReaderFanStats {
		t.Helper()
		c, err := cluster.New(cluster.Options{
			Servers:      1,
			Policy:       dlm.SeqDLM(),
			Hardware:     sim.Fast(),
			Handoff:      fan,
			ReaderFanout: fan,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		st, err := RunReaderFan(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	server := run(false)
	fan := run(true)

	if server.DLM.Gathers != 0 || server.DLM.LeaseGrants != 0 {
		t.Fatalf("server path ran fan machinery: %+v", server.DLM)
	}
	// Every reader-round costs at least a lock RPC on the server path.
	if server.ServerRPCsPerReader < 1 {
		t.Fatalf("server path RPCs/reader = %.2f, want >= 1", server.ServerRPCsPerReader)
	}
	// The fan path must carry the steady-state rotation: most rounds
	// gather the cohort back, and the displaced cohort's leases arrive
	// without reader lock RPCs.
	if fan.DLM.Gathers < int64(cfg.Rounds/2) {
		t.Fatalf("fan path gathers = %d, want >= %d", fan.DLM.Gathers, cfg.Rounds/2)
	}
	if fan.DLM.LeaseGrants < int64(cfg.Rounds/2*cfg.Readers) {
		t.Fatalf("fan path lease grants = %d, want >= %d", fan.DLM.LeaseGrants, cfg.Rounds/2*cfg.Readers)
	}
	if fan.ServerRPCsPerReader >= server.ServerRPCsPerReader {
		t.Fatalf("fan path RPCs/reader = %.2f, server path = %.2f; no economy",
			fan.ServerRPCsPerReader, server.ServerRPCsPerReader)
	}
}
