package workload

import (
	"fmt"

	"ccpfs/internal/client"
	"ccpfs/internal/cluster"
	"ccpfs/internal/sim"
)

// VPICConfig parameterizes the VPIC-IO / h5bench workload (§V-E):
// processes write particles into a shared file over several iterations.
// Each particle has Variables variables of ElementSize bytes; within one
// iteration each variable's data is contiguous in the file and the
// processes' chunks for one variable are laid out back to back (N-1
// segmented per variable, strided across variables and iterations).
type VPICConfig struct {
	// ClientNodes is the number of ccPFS clients (the paper's 80 client
	// nodes, each running an IO-forwarding daemon).
	ClientNodes int
	// ProcsPerNode is the number of application processes whose IO is
	// shipped to each node's client (16 in the paper).
	ProcsPerNode int
	// ParticlesPerIter is the number of particles each process writes
	// per iteration (65,536 or 262,144 in the paper).
	ParticlesPerIter int
	// Iterations is the number of write iterations (128 or 32).
	Iterations int
	// Variables per particle (8 in the paper).
	Variables int
	// ElementSize is bytes per variable (4).
	ElementSize int
	StripeSize  int64
	StripeCount uint32
}

// chunkBytes is the write size of one (proc, var, iter) chunk.
func (cfg VPICConfig) chunkBytes() int64 {
	return int64(cfg.ParticlesPerIter) * int64(cfg.ElementSize)
}

// TotalBytes is the volume written by the whole job.
func (cfg VPICConfig) TotalBytes() int64 {
	procs := int64(cfg.ClientNodes * cfg.ProcsPerNode)
	return procs * int64(cfg.Iterations) * int64(cfg.Variables) * cfg.chunkBytes()
}

// offset places chunk (iter, v, proc): variables are contiguous per
// iteration, processes back to back within a variable.
func (cfg VPICConfig) offset(iter, v, proc int) int64 {
	procs := int64(cfg.ClientNodes * cfg.ProcsPerNode)
	varBlock := procs * cfg.chunkBytes()
	return (int64(iter)*int64(cfg.Variables)+int64(v))*varBlock + int64(proc)*cfg.chunkBytes()
}

// RunVPIC executes the particle write phases: phase 2 (parallel writes,
// PIO) and phase 3 (flush to disk, F).
func RunVPIC(c *cluster.Cluster, cfg VPICConfig) (Result, error) {
	clients, err := c.Clients(cfg.ClientNodes, "vpic")
	if err != nil {
		return Result{}, err
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	files := make([]*client.File, cfg.ClientNodes)
	for i, cl := range clients {
		f, err := cl.OpenOrCreate("/vpic.h5", cfg.StripeSize, cfg.StripeCount)
		if err != nil {
			return Result{}, err
		}
		files[i] = f
	}

	clk := c.Clock()
	errs := make(chan error, cfg.ClientNodes*cfg.ProcsPerNode)
	grp := sim.NewGroup(clk)
	start := clk.Now()
	for node := 0; node < cfg.ClientNodes; node++ {
		for p := 0; p < cfg.ProcsPerNode; p++ {
			grp.Go(func() {
				proc := node*cfg.ProcsPerNode + p
				buf := make([]byte, cfg.chunkBytes())
				for i := range buf {
					buf[i] = byte(proc + i)
				}
				f := files[node]
				for iter := 0; iter < cfg.Iterations; iter++ {
					for v := 0; v < cfg.Variables; v++ {
						if _, err := f.WriteAt(buf, cfg.offset(iter, v, proc)); err != nil {
							errs <- fmt.Errorf("proc %d iter %d var %d: %w", proc, iter, v, err)
							return
						}
					}
				}
			})
		}
	}
	grp.Wait()
	pio := clk.Since(start)
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}
	flush := drain(clk, clients, files)
	procs := int64(cfg.ClientNodes * cfg.ProcsPerNode)
	return Result{
		PIO:   pio,
		Flush: flush,
		Bytes: cfg.TotalBytes(),
		Ops:   procs * int64(cfg.Iterations) * int64(cfg.Variables),
	}, nil
}
