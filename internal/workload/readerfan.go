package workload

import (
	"context"
	"sync"

	"ccpfs/internal/client"
	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/sim"
)

// ReaderFanConfig parameterizes the write-then-fan-out rotation
// (DESIGN.md §14): one writer updates a shared region, then N readers
// re-read it, round after round — the producer-broadcast pattern whose
// read side the batched fan-out grant and the peer-to-peer lease
// propagation tree target. On the server path every round costs at
// least one lock RPC per reader; with ReaderFanout on, the whole
// cohort's leases ride one batched grant (round one) and afterwards
// propagate client-to-client, so the per-round server cost stays near
// the writer's single lock RPC regardless of reader count.
type ReaderFanConfig struct {
	// Readers is the fan-out width N; Rounds how many write-then-read
	// cycles run.
	Readers int
	Rounds  int
	// WriteSize is the writer's update (and the readers' read) size.
	WriteSize  int64
	StripeSize int64
}

// ReaderFanStats extends Result with the rotation's lock accounting.
type ReaderFanStats struct {
	Result
	// DLM is the windowed counter delta of the run: Broadcasts and
	// Gathers say how many rounds the fan-out path carried, LeaseGrants
	// how many read leases were installed without a reader lock RPC.
	DLM dlm.Snapshot
	// ServerRPCsPerReader is LockOps per reader-round — the headline
	// economy: ≥1 on the server path, fractional once leases propagate
	// peer-to-peer (one writer RPC amortized over the cohort).
	ServerRPCsPerReader float64
}

// RunReaderFan executes the write-then-fan-out rotation and returns
// timings plus fan-out accounting. Reads hit the readers' page caches
// after the first fetch; the interesting cost is the lock traffic, not
// the data movement.
func RunReaderFan(c *cluster.Cluster, cfg ReaderFanConfig) (ReaderFanStats, error) {
	if cfg.Readers < 1 {
		cfg.Readers = 1
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	clients, err := c.Clients(1+cfg.Readers, "fan")
	if err != nil {
		return ReaderFanStats{}, err
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	files := make([]*client.File, len(clients))
	for i, cl := range clients {
		f, err := cl.OpenOrCreate("/readerfan", cfg.StripeSize, 1)
		if err != nil {
			return ReaderFanStats{}, err
		}
		files[i] = f
	}

	before := c.DLMStats()
	buf := make([]byte, cfg.WriteSize)
	rbufs := make([][]byte, cfg.Readers)
	for i := range rbufs {
		rbufs[i] = make([]byte, cfg.WriteSize)
	}
	clk := c.Clock()
	ctx := context.Background()
	start := clk.Now()
	for r := 0; r < cfg.Rounds; r++ {
		// The writer locks the whole stripe in NBW so its lock conflicts
		// with every reader lease — the displacement that arms the next
		// broadcast.
		if _, err := files[0].WriteAtOpts(ctx, buf, 0, client.WriteOptions{
			Mode:            dlm.NBW,
			LockWholeStripe: true,
		}); err != nil {
			return ReaderFanStats{}, err
		}
		grp := sim.NewGroup(clk)
		var errMu sync.Mutex
		var readErr error
		for i := 0; i < cfg.Readers; i++ {
			grp.Go(func() {
				if _, err := files[1+i].ReadAtContext(ctx, rbufs[i], 0); err != nil {
					errMu.Lock()
					if readErr == nil {
						readErr = err
					}
					errMu.Unlock()
				}
			})
		}
		grp.Wait()
		if readErr != nil {
			return ReaderFanStats{}, readErr
		}
	}
	pio := clk.Since(start)
	flush := drain(clk, clients, files)

	st := ReaderFanStats{Result: Result{
		PIO:   pio,
		Flush: flush,
		Bytes: int64(cfg.Rounds) * int64(cfg.Readers) * cfg.WriteSize,
		Ops:   int64(cfg.Rounds) * int64(cfg.Readers),
	}}
	st.DLM = c.DLMStats().Sub(before)
	if st.Ops > 0 {
		st.ServerRPCsPerReader = float64(st.DLM.LockOps) / float64(st.Ops)
	}
	return st, nil
}
