// Package workload generates the IO patterns of the paper's evaluation —
// IOR-like N-N / N-1 segmented / N-1 strided, the totally-conflicting
// sequential and parallel microbenchmarks of Fig. 16, the Tile-IO
// non-contiguous atomic writes, and the VPIC-IO particle workload — and
// runs them against an in-process cluster, reporting the PIO (parallel
// IO) and F (flush) times the paper's figures are built from.
package workload

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"ccpfs/internal/client"
	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/sim"
)

// Pattern is a parallel IO access pattern (Fig. 2).
type Pattern int

// Access patterns.
const (
	// NN is file-per-process: each client writes its own file.
	NN Pattern = iota
	// N1Segmented is shared-file with one contiguous segment per client.
	N1Segmented
	// N1Strided is shared-file with interleaved blocks per iteration —
	// the high-contention pattern that breaks traditional DLMs.
	N1Strided
)

func (p Pattern) String() string {
	switch p {
	case NN:
		return "N-N"
	case N1Segmented:
		return "N-1 segmented"
	case N1Strided:
		return "N-1 strided"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Result reports one run. The paper records the time spent inside write
// calls as PIO (what applications see, data landing in client caches)
// and the tail drain to data servers as F.
type Result struct {
	// PIO is the parallel-IO wall time of the write phase.
	PIO time.Duration
	// Flush is the drain wall time (fsync + lock release at the end).
	Flush time.Duration
	// Bytes is the total data written.
	Bytes int64
	// Ops is the total write operations issued.
	Ops int64
}

// Total returns PIO + Flush.
func (r Result) Total() time.Duration { return r.PIO + r.Flush }

// BandwidthPIO returns bytes per second over the PIO time — the paper's
// headline "bandwidth calculated using the PIO time".
func (r Result) BandwidthPIO() float64 {
	if r.PIO <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.PIO.Seconds()
}

// BandwidthTotal returns bytes per second over the total IO time.
func (r Result) BandwidthTotal() float64 {
	if r.Total() <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Total().Seconds()
}

// Throughput returns write operations per second over the PIO time.
func (r Result) Throughput() float64 {
	if r.PIO <= 0 {
		return 0
	}
	return float64(r.Ops) / r.PIO.Seconds()
}

// IORConfig parameterizes an IOR-like run.
type IORConfig struct {
	Pattern         Pattern
	Clients         int
	WriteSize       int64
	WritesPerClient int
	StripeSize      int64
	StripeCount     uint32
	// Path names the shared file (or the per-client file prefix for NN).
	Path string
	// Mode forces a lock mode; zero follows the selection rules.
	Mode dlm.Mode
	// Verify reads every block back from a fresh client after the drain
	// and checks it against the writer's pattern — the IO500-style
	// correctness pass. Verification time is not part of the Result.
	Verify bool
}

// offset returns the file offset of iteration k for rank i.
func (cfg IORConfig) offset(rank, k int) int64 {
	switch cfg.Pattern {
	case NN, N1Segmented:
		base := int64(0)
		if cfg.Pattern == N1Segmented {
			base = int64(rank) * cfg.WriteSize * int64(cfg.WritesPerClient)
		}
		return base + int64(k)*cfg.WriteSize
	default: // N1Strided
		return int64(k*cfg.Clients+rank) * cfg.WriteSize
	}
}

// RunIOR executes the workload on fresh clients of c and returns the
// timing. Each client writes WritesPerClient × WriteSize bytes; the
// drain phase then flushes all dirty data and releases all locks.
func RunIOR(c *cluster.Cluster, cfg IORConfig) (Result, error) {
	if cfg.Path == "" {
		cfg.Path = "/ior"
	}
	clients, err := c.Clients(cfg.Clients, "ior")
	if err != nil {
		return Result{}, err
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	files := make([]*client.File, cfg.Clients)
	for i, cl := range clients {
		path := cfg.Path
		if cfg.Pattern == NN {
			path = fmt.Sprintf("%s-%d", cfg.Path, i)
		}
		f, err := cl.OpenOrCreate(path, cfg.StripeSize, cfg.StripeCount)
		if err != nil {
			return Result{}, err
		}
		files[i] = f
	}

	var res Result
	res.Ops = int64(cfg.Clients * cfg.WritesPerClient)
	res.Bytes = res.Ops * cfg.WriteSize

	clk := c.Clock()
	errs := make(chan error, cfg.Clients)
	grp := sim.NewGroup(clk)
	start := clk.Now()
	for i := range clients {
		grp.Go(func() {
			buf := make([]byte, cfg.WriteSize)
			for b := range buf {
				buf[b] = byte(i + b)
			}
			f := files[i]
			for k := 0; k < cfg.WritesPerClient; k++ {
				if _, err := f.WriteAtOpts(context.Background(), buf, cfg.offset(i, k), client.WriteOptions{Mode: cfg.Mode}); err != nil {
					errs <- fmt.Errorf("rank %d write %d: %w", i, k, err)
					return
				}
			}
		})
	}
	grp.Wait()
	res.PIO = clk.Since(start)
	select {
	case err := <-errs:
		return res, err
	default:
	}

	res.Flush = drain(clk, clients, files)
	if cfg.Verify {
		if err := verifyIOR(c, cfg); err != nil {
			return res, err
		}
	}
	return res, nil
}

// verifyIOR reads every block back from a fresh client and checks the
// deterministic rank pattern.
func verifyIOR(c *cluster.Cluster, cfg IORConfig) error {
	cl, err := c.NewClient("ior-verify")
	if err != nil {
		return err
	}
	defer cl.Close()
	buf := make([]byte, cfg.WriteSize)
	want := make([]byte, cfg.WriteSize)
	var f *client.File
	for i := 0; i < cfg.Clients; i++ {
		path := cfg.Path
		if cfg.Pattern == NN {
			path = fmt.Sprintf("%s-%d", cfg.Path, i)
			f = nil
		}
		if f == nil || cfg.Pattern == NN {
			if f, err = cl.Open(path); err != nil {
				return err
			}
		}
		for b := range want {
			want[b] = byte(i + b)
		}
		for k := 0; k < cfg.WritesPerClient; k++ {
			off := cfg.offset(i, k)
			if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
				return fmt.Errorf("verify rank %d iter %d: %w", i, k, err)
			}
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("verify rank %d iter %d at offset %d: data mismatch", i, k, off)
			}
		}
	}
	return nil
}

// drain flushes every client's dirty data and releases all locks,
// returning the wall time — the paper's F time.
func drain(clk sim.Clock, clients []*client.Client, files []*client.File) time.Duration {
	start := clk.Now()
	grp := sim.NewGroup(clk)
	for i := range clients {
		grp.Go(func() {
			if files[i] != nil {
				files[i].Fsync()
			}
			clients[i].Locks().ReleaseAll(context.Background())
		})
	}
	grp.Wait()
	return clk.Since(start)
}

// SequentialConfig parameterizes the totally-conflicting sequential
// write sequence of Fig. 16(a): clients write to a shared file strictly
// in round-robin order, each write locking the whole stripe range.
type SequentialConfig struct {
	Clients     int
	Writes      int // total writes across all clients
	WriteSize   int64
	StripeSize  int64
	StripeCount uint32
	Mode        dlm.Mode // NBW vs PW is the Fig. 17 comparison
}

// Breakdown splits the total time of a sequential run into the paper's
// three parts: ① lock revocation, ② lock cancel (data flushing + lock
// release), ③ everything else (requests, grant replies, cache copies).
type Breakdown struct {
	Revocation time.Duration
	Cancel     time.Duration
	Other      time.Duration
	Total      time.Duration
}

// RunSequential executes the round-robin conflicting sequence and
// returns the result with the server-attributed time breakdown.
func RunSequential(c *cluster.Cluster, cfg SequentialConfig) (Result, Breakdown, error) {
	clients, err := c.Clients(cfg.Clients, "seq")
	if err != nil {
		return Result{}, Breakdown{}, err
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	files := make([]*client.File, cfg.Clients)
	for i, cl := range clients {
		f, err := cl.OpenOrCreate("/seq", cfg.StripeSize, cfg.StripeCount)
		if err != nil {
			return Result{}, Breakdown{}, err
		}
		files[i] = f
	}

	clk := c.Clock()
	before := c.DLMStats()
	buf := make([]byte, cfg.WriteSize)
	start := clk.Now()
	// The MPI_Send/MPI_Recv token ring of the paper, as a channel chain.
	for k := 0; k < cfg.Writes; k++ {
		i := k % cfg.Clients
		if _, err := files[i].WriteAtOpts(context.Background(), buf, 0, client.WriteOptions{
			Mode:            cfg.Mode,
			LockWholeStripe: true,
		}); err != nil {
			return Result{}, Breakdown{}, err
		}
	}
	pio := clk.Since(start)
	flush := drain(clk, clients, files)

	res := Result{
		PIO:   pio,
		Flush: flush,
		Bytes: int64(cfg.Writes) * cfg.WriteSize,
		Ops:   int64(cfg.Writes),
	}
	d := c.DLMStats().Sub(before)
	bd := Breakdown{
		Revocation: d.RevocationWait,
		Cancel:     d.CancelWait,
		Total:      pio + flush,
	}
	bd.Other = bd.Total - bd.Revocation - bd.Cancel
	if bd.Other < 0 {
		bd.Other = 0
	}
	return res, bd, nil
}

// ParallelConfig parameterizes the Fig. 16(b) throughput test: clients
// independently hammer one lock resource, each write locking the whole
// range, so conflicting requests pile up at the server and early
// revocation has work to do.
type ParallelConfig struct {
	Clients         int
	WritesPerClient int
	WriteSize       int64
	StripeSize      int64
	StripeCount     uint32
	Mode            dlm.Mode
}

// ParallelStats extends Result with the locking/IO time ratio of
// Fig. 18(b), measured on client 0 as in the paper.
type ParallelStats struct {
	Result
	// LockRatio is locking time / total IO time on one client.
	LockRatio float64
}

// RunParallel executes the independent-writers throughput test.
func RunParallel(c *cluster.Cluster, cfg ParallelConfig) (ParallelStats, error) {
	clients, err := c.Clients(cfg.Clients, "par")
	if err != nil {
		return ParallelStats{}, err
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	files := make([]*client.File, cfg.Clients)
	for i, cl := range clients {
		f, err := cl.OpenOrCreate("/par", cfg.StripeSize, cfg.StripeCount)
		if err != nil {
			return ParallelStats{}, err
		}
		files[i] = f
	}

	clk := c.Clock()
	errs := make(chan error, cfg.Clients)
	grp := sim.NewGroup(clk)
	start := clk.Now()
	for i := range clients {
		grp.Go(func() {
			buf := make([]byte, cfg.WriteSize)
			for k := 0; k < cfg.WritesPerClient; k++ {
				if _, err := files[i].WriteAtOpts(context.Background(), buf, 0, client.WriteOptions{
					Mode:            cfg.Mode,
					LockWholeStripe: true,
				}); err != nil {
					errs <- err
					return
				}
			}
		})
	}
	grp.Wait()
	pio := clk.Since(start)
	select {
	case err := <-errs:
		return ParallelStats{}, err
	default:
	}
	flush := drain(clk, clients, files)

	st := ParallelStats{Result: Result{
		PIO:   pio,
		Flush: flush,
		Bytes: int64(cfg.Clients*cfg.WritesPerClient) * cfg.WriteSize,
		Ops:   int64(cfg.Clients * cfg.WritesPerClient),
	}}
	lock := clients[0].Stats.LockNs.Load()
	io := clients[0].Stats.IONs.Load()
	if io > 0 {
		st.LockRatio = float64(lock) / float64(io)
	}
	return st, nil
}

// MixedConfig parameterizes the Fig. 19(a) lock-upgrading test: one
// client interleaves writes and reads on a single-striped file.
type MixedConfig struct {
	Ops        int // total operations (alternating write, read)
	Size       int64
	StripeSize int64
	WriteMode  dlm.Mode // PW or NBW; reads always use PR
}

// RunMixed executes the interleaved read/write sequence and returns the
// operation throughput.
func RunMixed(c *cluster.Cluster, cfg MixedConfig) (Result, error) {
	cl, err := c.NewClient("mixed")
	if err != nil {
		return Result{}, err
	}
	defer cl.Close()
	f, err := cl.OpenOrCreate("/mixed", cfg.StripeSize, 1)
	if err != nil {
		return Result{}, err
	}
	buf := make([]byte, cfg.Size)
	// Prime the file so reads have data.
	if _, err := f.WriteAtOpts(context.Background(), buf, 0, client.WriteOptions{Mode: cfg.WriteMode}); err != nil {
		return Result{}, err
	}
	clk := c.Clock()
	start := clk.Now()
	for k := 0; k < cfg.Ops; k++ {
		if k%2 == 0 {
			if _, err := f.WriteAtOpts(context.Background(), buf, 0, client.WriteOptions{Mode: cfg.WriteMode}); err != nil {
				return Result{}, err
			}
		} else {
			if _, err := f.ReadAt(buf, 0); err != nil {
				return Result{}, err
			}
		}
	}
	pio := clk.Since(start)
	flush := drain(clk, []*client.Client{cl}, []*client.File{f})
	return Result{PIO: pio, Flush: flush, Ops: int64(cfg.Ops), Bytes: int64(cfg.Ops/2) * cfg.Size}, nil
}

// SpanConfig parameterizes the Fig. 19(b) lock-downgrading test: every
// write spans two stripes, so each needs both stripes' write locks
// simultaneously.
type SpanConfig struct {
	Clients         int
	WritesPerClient int
	WriteSize       int64
	StripeSize      int64
	Mode            dlm.Mode // BW or PW
}

// RunSpan executes the two-stripe spanning write test.
func RunSpan(c *cluster.Cluster, cfg SpanConfig) (Result, error) {
	clients, err := c.Clients(cfg.Clients, "span")
	if err != nil {
		return Result{}, err
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	files := make([]*client.File, cfg.Clients)
	for i, cl := range clients {
		f, err := cl.OpenOrCreate("/span", cfg.StripeSize, 2)
		if err != nil {
			return Result{}, err
		}
		files[i] = f
	}
	// A write centred on the stripe boundary spans both stripes.
	off := cfg.StripeSize - cfg.WriteSize/2
	if off < 0 {
		off = 0
	}

	clk := c.Clock()
	errs := make(chan error, cfg.Clients)
	grp := sim.NewGroup(clk)
	start := clk.Now()
	for i := range clients {
		grp.Go(func() {
			buf := make([]byte, cfg.WriteSize)
			for k := 0; k < cfg.WritesPerClient; k++ {
				if _, err := files[i].WriteAtOpts(context.Background(), buf, off, client.WriteOptions{Mode: cfg.Mode}); err != nil {
					errs <- err
					return
				}
			}
		})
	}
	grp.Wait()
	pio := clk.Since(start)
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}
	flush := drain(clk, clients, files)
	return Result{
		PIO:   pio,
		Flush: flush,
		Bytes: int64(cfg.Clients*cfg.WritesPerClient) * cfg.WriteSize,
		Ops:   int64(cfg.Clients * cfg.WritesPerClient),
	}, nil
}
