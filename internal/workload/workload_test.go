package workload

import (
	"bytes"
	"io"
	"testing"

	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/sim"
)

func fastCluster(t *testing.T, servers int, pol dlm.Policy) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Options{Servers: servers, Policy: pol, Hardware: sim.Fast()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPatternOffsets(t *testing.T) {
	cfg := IORConfig{Pattern: N1Strided, Clients: 4, WriteSize: 100, WritesPerClient: 3}
	// Rank 1, iteration 2: block index 2*4+1 = 9.
	if off := cfg.offset(1, 2); off != 900 {
		t.Fatalf("strided offset = %d, want 900", off)
	}
	cfg.Pattern = N1Segmented
	// Rank 1 owns [300, 600); iteration 2 at 300+200.
	if off := cfg.offset(1, 2); off != 500 {
		t.Fatalf("segmented offset = %d, want 500", off)
	}
	cfg.Pattern = NN
	if off := cfg.offset(1, 2); off != 200 {
		t.Fatalf("NN offset = %d, want 200", off)
	}
}

func TestPatternStrings(t *testing.T) {
	if NN.String() != "N-N" || N1Segmented.String() != "N-1 segmented" || N1Strided.String() != "N-1 strided" {
		t.Fatal("pattern names wrong")
	}
}

func TestRunIORAllPatterns(t *testing.T) {
	for _, pat := range []Pattern{NN, N1Segmented, N1Strided} {
		t.Run(pat.String(), func(t *testing.T) {
			c := fastCluster(t, 2, dlm.SeqDLM())
			res, err := RunIOR(c, IORConfig{
				Pattern:         pat,
				Clients:         4,
				WriteSize:       8 << 10,
				WritesPerClient: 6,
				StripeSize:      64 << 10,
				StripeCount:     2,
			})
			if err != nil {
				t.Fatal(err)
			}
			wantBytes := int64(4 * 6 * (8 << 10))
			if res.Bytes != wantBytes || res.Ops != 24 {
				t.Fatalf("res = %+v", res)
			}
			if res.PIO <= 0 {
				t.Fatal("no PIO time recorded")
			}
			// Everything written must eventually land on servers.
			if got := c.FlushedBytes() + c.DiscardedBytes(); got < wantBytes {
				t.Fatalf("servers received %d bytes, want >= %d", got, wantBytes)
			}
			if res.BandwidthPIO() <= 0 || res.Throughput() <= 0 || res.BandwidthTotal() <= 0 {
				t.Fatal("derived metrics not positive")
			}
		})
	}
}

func TestRunIORDataIntact(t *testing.T) {
	c := fastCluster(t, 1, dlm.SeqDLM())
	cfg := IORConfig{
		Pattern:         N1Strided,
		Clients:         3,
		WriteSize:       4096 + 32, // unaligned: adjacent writes conflict
		WritesPerClient: 5,
		StripeSize:      1 << 20,
		StripeCount:     1,
		Path:            "/intact",
	}
	if _, err := RunIOR(c, cfg); err != nil {
		t.Fatal(err)
	}
	// Verify the strided content from a fresh client.
	cl, err := c.NewClient("verify")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Open("/intact")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, cfg.WriteSize)
	want := make([]byte, cfg.WriteSize)
	for i := 0; i < cfg.Clients; i++ {
		for k := 0; k < cfg.WritesPerClient; k++ {
			if _, err := f.ReadAt(buf, cfg.offset(i, k)); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			for b := range want {
				want[b] = byte(i + b)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("rank %d iteration %d corrupted", i, k)
			}
		}
	}
}

func TestRunSequentialBreakdown(t *testing.T) {
	c := fastCluster(t, 1, dlm.SeqDLM())
	res, bd, err := RunSequential(c, SequentialConfig{
		Clients:     4,
		Writes:      40,
		WriteSize:   16 << 10,
		StripeSize:  1 << 20,
		StripeCount: 1,
		Mode:        dlm.NBW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 40 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if bd.Total <= 0 || bd.Other < 0 {
		t.Fatalf("breakdown = %+v", bd)
	}
	if bd.Revocation+bd.Cancel > bd.Total {
		t.Fatalf("breakdown parts exceed total: %+v", bd)
	}
}

// TestSequentialPWvsNBWConflictResolution checks the Fig. 17 claim
// structurally: under PW the conflict resolution (revocation + cancel)
// is a large share of total time once flushing is slow; under NBW the
// cancel wait collapses because early grant decouples flushing.
func TestSequentialPWvsNBWConflictResolution(t *testing.T) {
	hw := sim.Hardware{DiskBandwidth: 100e6, RTT: 200e3} // 100 MB/s disk, 200 µs RTT
	mk := func() *cluster.Cluster {
		c, err := cluster.New(cluster.Options{Servers: 1, Policy: dlm.SeqDLM(), Hardware: hw})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	cfg := SequentialConfig{
		Clients:     4,
		Writes:      24,
		WriteSize:   256 << 10,
		StripeSize:  1 << 20,
		StripeCount: 1,
	}
	cfg.Mode = dlm.PW
	_, bdPW, err := RunSequential(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = dlm.NBW
	_, bdNBW, err := RunSequential(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bdPW.Cancel <= bdNBW.Cancel {
		t.Fatalf("PW cancel wait (%v) must exceed NBW's (%v): early grant not effective",
			bdPW.Cancel, bdNBW.Cancel)
	}
	if bdNBW.Total >= bdPW.Total {
		t.Fatalf("NBW total (%v) must beat PW total (%v)", bdNBW.Total, bdPW.Total)
	}
}

func TestRunParallel(t *testing.T) {
	c := fastCluster(t, 1, dlm.SeqDLM())
	st, err := RunParallel(c, ParallelConfig{
		Clients:         4,
		WritesPerClient: 10,
		WriteSize:       8 << 10,
		StripeSize:      1 << 20,
		StripeCount:     1,
		Mode:            dlm.NBW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 40 || st.Throughput() <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LockRatio < 0 || st.LockRatio > 1 {
		t.Fatalf("lock ratio = %f", st.LockRatio)
	}
}

func TestRunMixed(t *testing.T) {
	c := fastCluster(t, 1, dlm.SeqDLM())
	res, err := RunMixed(c, MixedConfig{
		Ops:        20,
		Size:       4 << 10,
		StripeSize: 1 << 20,
		WriteMode:  dlm.NBW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 20 || res.PIO <= 0 {
		t.Fatalf("res = %+v", res)
	}
	// With conversion on, the same-client read/write conflict upgrades
	// instead of revoking round trips.
	if c.DLMStats().Upgrades == 0 {
		t.Fatal("mixed workload triggered no lock upgrading")
	}
}

func TestRunSpan(t *testing.T) {
	c := fastCluster(t, 2, dlm.SeqDLM())
	res, err := RunSpan(c, SpanConfig{
		Clients:         4,
		WritesPerClient: 5,
		WriteSize:       32 << 10,
		StripeSize:      64 << 10,
		Mode:            dlm.BW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 20 {
		t.Fatalf("res = %+v", res)
	}
	// Spanning BW writes under contention must trigger downgrades.
	if c.DLMStats().Downgrades == 0 {
		t.Fatal("spanning BW writes triggered no lock downgrading")
	}
}

func TestTileConfigGeometry(t *testing.T) {
	cfg := TileConfig{TilesX: 3, TilesY: 2, TileDim: 100, OverlapPx: 10, ElementSize: 4}
	w, h := cfg.ArrayDim()
	if w != 90*2+100 || h != 90*1+100 {
		t.Fatalf("array dim = %dx%d", w, h)
	}
	if cfg.TileBytes() != 100*100*4 {
		t.Fatalf("tile bytes = %d", cfg.TileBytes())
	}
	ops := cfg.tileOps(1, 1, 7)
	if len(ops) != 100 {
		t.Fatalf("tile rows = %d", len(ops))
	}
	// Row r of tile (1,1) starts at ((90 + r) * w + 90) * 4.
	if ops[0].Off != (90*w+90)*4 {
		t.Fatalf("first row offset = %d", ops[0].Off)
	}
	if int64(len(ops[0].Data)) != 400 {
		t.Fatalf("row length = %d", len(ops[0].Data))
	}
}

func TestRunTileIOBothPolicies(t *testing.T) {
	for _, pol := range []dlm.Policy{dlm.SeqDLM(), dlm.Datatype()} {
		t.Run(pol.Name, func(t *testing.T) {
			c := fastCluster(t, 2, pol)
			cfg := TileConfig{
				TilesX: 2, TilesY: 2,
				TileDim:     32,
				OverlapPx:   4,
				ElementSize: 4,
				StripeSize:  4 << 10,
				StripeCount: 2,
			}
			res, err := RunTileIO(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 4 || res.Bytes != 4*cfg.TileBytes() {
				t.Fatalf("res = %+v", res)
			}
		})
	}
}

func TestVPICOffsetsDisjoint(t *testing.T) {
	cfg := VPICConfig{
		ClientNodes: 2, ProcsPerNode: 2,
		ParticlesPerIter: 100, Iterations: 2, Variables: 3, ElementSize: 4,
	}
	seen := map[int64]bool{}
	for iter := 0; iter < cfg.Iterations; iter++ {
		for v := 0; v < cfg.Variables; v++ {
			for p := 0; p < 4; p++ {
				off := cfg.offset(iter, v, p)
				if seen[off] {
					t.Fatalf("duplicate offset %d", off)
				}
				seen[off] = true
				if off%cfg.chunkBytes() != 0 {
					t.Fatalf("offset %d not chunk aligned", off)
				}
			}
		}
	}
	if cfg.TotalBytes() != int64(len(seen))*cfg.chunkBytes() {
		t.Fatal("TotalBytes inconsistent with offset count")
	}
}

func TestRunVPIC(t *testing.T) {
	c := fastCluster(t, 2, dlm.SeqDLM())
	cfg := VPICConfig{
		ClientNodes:      2,
		ProcsPerNode:     2,
		ParticlesPerIter: 512,
		Iterations:       2,
		Variables:        4,
		ElementSize:      4,
		StripeSize:       64 << 10,
		StripeCount:      2,
	}
	res, err := RunVPIC(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != cfg.TotalBytes() {
		t.Fatalf("bytes = %d, want %d", res.Bytes, cfg.TotalBytes())
	}
	if got := c.FlushedBytes() + c.DiscardedBytes(); got < res.Bytes {
		t.Fatalf("servers received %d, want >= %d", got, res.Bytes)
	}
}

// TestRunIORVerifyMode exercises the built-in readback verification on
// every pattern and both major policies — the IO500-style check wired
// into the harness itself.
func TestRunIORVerifyMode(t *testing.T) {
	for _, pol := range []dlm.Policy{dlm.SeqDLM(), dlm.Basic()} {
		for _, pat := range []Pattern{NN, N1Segmented, N1Strided} {
			t.Run(pol.Name+"/"+pat.String(), func(t *testing.T) {
				c := fastCluster(t, 2, pol)
				_, err := RunIOR(c, IORConfig{
					Pattern:         pat,
					Clients:         3,
					WriteSize:       4096 + 16, // unaligned
					WritesPerClient: 5,
					StripeSize:      64 << 10,
					StripeCount:     2,
					Verify:          true,
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestRunCheckpointRestart(t *testing.T) {
	for _, pol := range []dlm.Policy{dlm.SeqDLM(), dlm.Lustre()} {
		t.Run(pol.Name, func(t *testing.T) {
			c := fastCluster(t, 2, pol)
			res, err := RunCheckpoint(c, CheckpointConfig{
				Ranks:       4,
				BlockSize:   9000, // unaligned
				BlocksEach:  6,
				StripeSize:  64 << 10,
				StripeCount: 2,
				Restart:     true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes != 4*6*9000 {
				t.Fatalf("bytes = %d", res.Bytes)
			}
			if res.Write <= 0 || res.Restart <= 0 {
				t.Fatalf("phases not timed: %+v", res)
			}
		})
	}
}
