package workload

import (
	"fmt"

	"ccpfs/internal/client"
	"ccpfs/internal/cluster"
	"ccpfs/internal/sim"
)

// TileConfig parameterizes the Tile-IO workload (§V-D): a grid of
// TilesX × TilesY tiles stored in one shared file as a row-major 2-D
// array of pixels, with OverlapPx of overlap between neighbouring tiles.
// Each client writes one tile — TileDim non-contiguous row writes —
// atomically, and tiles of neighbouring clients overlap, which is what
// exercises atomic non-contiguous writes.
type TileConfig struct {
	TilesX, TilesY int
	// TileDim is the tile edge in pixels (the paper uses 20,480; scaled
	// runs use less).
	TileDim int
	// OverlapPx is the overlap between adjacent tiles (100 in the paper).
	OverlapPx int
	// ElementSize is bytes per pixel (4 in the paper).
	ElementSize int
	StripeSize  int64
	StripeCount uint32
}

// ArrayDim returns the global array dimensions in pixels.
func (cfg TileConfig) ArrayDim() (w, h int64) {
	step := int64(cfg.TileDim - cfg.OverlapPx)
	w = step*int64(cfg.TilesX-1) + int64(cfg.TileDim)
	h = step*int64(cfg.TilesY-1) + int64(cfg.TileDim)
	return w, h
}

// TileBytes returns the bytes one client writes.
func (cfg TileConfig) TileBytes() int64 {
	return int64(cfg.TileDim) * int64(cfg.TileDim) * int64(cfg.ElementSize)
}

// tileOps builds the non-contiguous write list for tile (tx, ty).
func (cfg TileConfig) tileOps(tx, ty int, fillByte byte) []client.WriteOp {
	w, _ := cfg.ArrayDim()
	step := int64(cfg.TileDim - cfg.OverlapPx)
	es := int64(cfg.ElementSize)
	rowBytes := int64(cfg.TileDim) * es
	x0 := step * int64(tx)
	y0 := step * int64(ty)
	ops := make([]client.WriteOp, 0, cfg.TileDim)
	row := make([]byte, rowBytes)
	for i := range row {
		row[i] = fillByte
	}
	for r := 0; r < cfg.TileDim; r++ {
		off := ((y0 + int64(r)) * w * es) + x0*es
		ops = append(ops, client.WriteOp{Off: off, Data: row})
	}
	return ops
}

// RunTileIO writes the full tile grid, one client per tile, each tile an
// atomic non-contiguous write batch. Under SeqDLM each client locks the
// minimum covering range per stripe; under DLM-datatype it locks the
// exact extent list (the §V-D comparison).
func RunTileIO(c *cluster.Cluster, cfg TileConfig) (Result, error) {
	n := cfg.TilesX * cfg.TilesY
	clients, err := c.Clients(n, "tile")
	if err != nil {
		return Result{}, err
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	files := make([]*client.File, n)
	for i, cl := range clients {
		f, err := cl.OpenOrCreate("/tile", cfg.StripeSize, cfg.StripeCount)
		if err != nil {
			return Result{}, err
		}
		files[i] = f
	}

	clk := c.Clock()
	errs := make(chan error, n)
	grp := sim.NewGroup(clk)
	start := clk.Now()
	for i := 0; i < n; i++ {
		grp.Go(func() {
			ops := cfg.tileOps(i%cfg.TilesX, i/cfg.TilesX, byte(i+1))
			if err := files[i].WriteMulti(ops); err != nil {
				errs <- fmt.Errorf("tile %d: %w", i, err)
			}
		})
	}
	grp.Wait()
	pio := clk.Since(start)
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}
	flush := drain(clk, clients, files)
	return Result{
		PIO:   pio,
		Flush: flush,
		Bytes: int64(n) * cfg.TileBytes(),
		Ops:   int64(n),
	}, nil
}
