package workload

import (
	"context"

	"ccpfs/internal/client"
	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/obs"
)

// PingPongConfig parameterizes the producer-consumer exchange pattern
// (DESIGN.md §13): two clients alternate whole-stripe writes over one
// stripe set, so every stripe's write lock ping-pongs between them —
// the stable two-party conflict the handoff fast path targets. Run it
// on a cluster built with Options.Handoff on and off to measure the
// before/after (seqbench -exp pingpong does both).
type PingPongConfig struct {
	// Exchanges is the number of ownership swaps of the stripe set;
	// each exchange writes one block on every stripe.
	Exchanges   int
	WriteSize   int64
	StripeSize  int64
	StripeCount uint32
	// Mode forces a lock mode; zero means NBW, the mode the selection
	// rules pick for non-whole-stripe writes and the one whose missing
	// implicit read makes delegation chains possible.
	Mode dlm.Mode
}

// PingPongStats extends Result with the run's lock-protocol accounting.
type PingPongStats struct {
	Result
	// DLM is the windowed counter delta of the run: Handoffs says how
	// many lock exchanges the fast path delegated, LockOps what the run
	// cost in server RPCs.
	DLM dlm.Snapshot
	// ServerRPCsPerExchange is LockOps per per-stripe lock exchange:
	// ~2 on the classic revoke path (Lock + Release), ~1 once handoff
	// delegates the transfer and its ack piggybacks.
	ServerRPCsPerExchange float64
	// GrantWait is the cluster-merged grant-wait histogram at the end
	// of the run — the Fig. 17-style wait distribution. It covers the
	// cluster's whole lifetime, so use a fresh cluster per run (as
	// seqbench does) when comparing distributions.
	GrantWait obs.HistSnapshot
}

// RunPingPong executes the alternating producer-consumer sequence and
// returns timings plus handoff accounting.
func RunPingPong(c *cluster.Cluster, cfg PingPongConfig) (PingPongStats, error) {
	if cfg.Mode == 0 {
		cfg.Mode = dlm.NBW
	}
	clients, err := c.Clients(2, "pp")
	if err != nil {
		return PingPongStats{}, err
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	files := make([]*client.File, len(clients))
	for i, cl := range clients {
		f, err := cl.OpenOrCreate("/pingpong", cfg.StripeSize, cfg.StripeCount)
		if err != nil {
			return PingPongStats{}, err
		}
		files[i] = f
	}

	clk := c.Clock()
	before := c.DLMStats()
	buf := make([]byte, cfg.WriteSize)
	start := clk.Now()
	// The producer/consumer token ring: the active side writes every
	// stripe of the set, then ownership swaps — as with the paper's
	// MPI_Send/MPI_Recv sequential test, the turn-taking itself is the
	// workload.
	for k := 0; k < cfg.Exchanges; k++ {
		f := files[k%2]
		for s := int64(0); s < int64(cfg.StripeCount); s++ {
			if _, err := f.WriteAtOpts(context.Background(), buf, s*cfg.StripeSize, client.WriteOptions{
				Mode:            cfg.Mode,
				LockWholeStripe: true,
			}); err != nil {
				return PingPongStats{}, err
			}
		}
	}
	pio := clk.Since(start)
	flush := drain(clk, clients, files)

	st := PingPongStats{Result: Result{
		PIO:   pio,
		Flush: flush,
		Bytes: int64(cfg.Exchanges) * int64(cfg.StripeCount) * cfg.WriteSize,
		Ops:   int64(cfg.Exchanges) * int64(cfg.StripeCount),
	}}
	st.DLM = c.DLMStats().Sub(before)
	if st.Ops > 0 {
		st.ServerRPCsPerExchange = float64(st.DLM.LockOps) / float64(st.Ops)
	}
	st.GrantWait = c.DLMStatsBreakdown().GrantWait
	return st, nil
}
