package workload

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"ccpfs/internal/client"
	"ccpfs/internal/cluster"
	"ccpfs/internal/sim"
)

// CheckpointConfig parameterizes a checkpoint/restart cycle — the
// scientific-application IO the paper's introduction motivates (PLFS's
// N-1 checkpoints, read back on restart). The write phase is an N-1
// strided checkpoint of every rank's state; the restart phase reads the
// checkpoint back from a *different* rank mapping (the classic restart-
// with-different-decomposition case), verifying content.
type CheckpointConfig struct {
	Ranks       int
	BlockSize   int64
	BlocksEach  int
	StripeSize  int64
	StripeCount uint32
	// Restart additionally runs the read-back phase.
	Restart bool
}

// TotalBytes is the checkpoint volume.
func (cfg CheckpointConfig) TotalBytes() int64 {
	return int64(cfg.Ranks*cfg.BlocksEach) * cfg.BlockSize
}

// CheckpointResult reports the phase timings.
type CheckpointResult struct {
	// Write is the checkpoint (PIO) wall time.
	Write time.Duration
	// Drain is the post-checkpoint flush (F) wall time.
	Drain time.Duration
	// Restart is the read-back wall time (zero unless enabled).
	Restart time.Duration
	Bytes   int64
}

// rankBlock returns the deterministic content of (rank, block).
func rankBlock(rank, block int, size int64) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(rank*37 + block*11 + i)
	}
	return out
}

// RunCheckpoint executes the checkpoint (and optional restart) cycle.
func RunCheckpoint(c *cluster.Cluster, cfg CheckpointConfig) (CheckpointResult, error) {
	clients, err := c.Clients(cfg.Ranks, "ckpt")
	if err != nil {
		return CheckpointResult{}, err
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	files := make([]*client.File, cfg.Ranks)
	for i, cl := range clients {
		f, err := cl.OpenOrCreate("/checkpoint", cfg.StripeSize, cfg.StripeCount)
		if err != nil {
			return CheckpointResult{}, err
		}
		files[i] = f
	}

	res := CheckpointResult{Bytes: cfg.TotalBytes()}
	errs := make(chan error, cfg.Ranks)

	// Phase 1: N-1 strided checkpoint write.
	clk := c.Clock()
	grp := sim.NewGroup(clk)
	start := clk.Now()
	for r := 0; r < cfg.Ranks; r++ {
		grp.Go(func() {
			for b := 0; b < cfg.BlocksEach; b++ {
				off := int64(b*cfg.Ranks+r) * cfg.BlockSize
				if _, err := files[r].WriteAt(rankBlock(r, b, cfg.BlockSize), off); err != nil {
					errs <- fmt.Errorf("rank %d block %d: %w", r, b, err)
					return
				}
			}
		})
	}
	grp.Wait()
	res.Write = clk.Since(start)
	select {
	case err := <-errs:
		return res, err
	default:
	}

	// Phase 2: drain to the data servers (the checkpoint must be durable
	// before the job exits).
	res.Drain = drain(clk, clients, files)

	if !cfg.Restart {
		return res, nil
	}

	// Phase 3: restart — every rank reads blocks written by OTHER ranks
	// (shifted mapping) and verifies them.
	start = clk.Now()
	rgrp := sim.NewGroup(clk)
	for r := 0; r < cfg.Ranks; r++ {
		rgrp.Go(func() {
			buf := make([]byte, cfg.BlockSize)
			src := (r + 1) % cfg.Ranks // different decomposition on restart
			for b := 0; b < cfg.BlocksEach; b++ {
				off := int64(b*cfg.Ranks+src) * cfg.BlockSize
				if _, err := files[r].ReadAt(buf, off); err != nil && err != io.EOF {
					errs <- fmt.Errorf("restart rank %d block %d: %w", r, b, err)
					return
				}
				if !bytes.Equal(buf, rankBlock(src, b, cfg.BlockSize)) {
					errs <- fmt.Errorf("restart rank %d: block %d of rank %d corrupted", r, b, src)
					return
				}
			}
		})
	}
	rgrp.Wait()
	res.Restart = clk.Since(start)
	select {
	case err := <-errs:
		return res, err
	default:
	}
	return res, nil
}
