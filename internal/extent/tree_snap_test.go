package extent

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ccpfs/internal/epoch"
)

// TestSnapshotEquivalence drives a snapshot-enabled tree through random
// mutation batches and checks after every Publish that SnapMaxSN agrees
// exactly with the locked MaxSNOverlapping for a spread of probe
// ranges, including empty, point, spanning, and miss probes.
func TestSnapshotEquivalence(t *testing.T) {
	var dom epoch.Domain
	var tr Tree
	tr.EnableSnapshots(&dom)
	rng := rand.New(rand.NewSource(42))

	probe := func() {
		for i := 0; i < 40; i++ {
			start := rng.Int63n(4096) - 64
			length := rng.Int63n(512)
			e := Extent{start, start + length}
			gotSN, gotOK := tr.SnapMaxSN(e)
			wantSN, wantOK := tr.MaxSNOverlapping(e)
			if gotSN != wantSN || gotOK != wantOK {
				t.Fatalf("probe %v: SnapMaxSN = (%d,%v), MaxSNOverlapping = (%d,%v)",
					e, gotSN, gotOK, wantSN, wantOK)
			}
		}
	}

	for batch := 0; batch < 300; batch++ {
		// A batch of a few mutations, like one Apply round.
		for m := 0; m < 1+rng.Intn(3); m++ {
			start := rng.Int63n(4096)
			e := Extent{start, start + 1 + rng.Int63n(256)}
			switch rng.Intn(10) {
			case 8:
				if ents := tr.Overlapping(e); len(ents) > 0 {
					tr.RemoveLE(ents[:1], ents[0].SN)
				}
			case 9:
				if batch%97 == 0 {
					tr.Clear()
				}
			default:
				tr.Insert(e, SN(1+rng.Intn(64)))
			}
		}
		tr.Publish()
		if err := tr.check(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		probe()
	}
}

// TestSnapshotProbeAllocFree locks in the wait-free read's allocation
// profile: the conflict probe on the flush hot path must not allocate.
func TestSnapshotProbeAllocFree(t *testing.T) {
	var dom epoch.Domain
	var tr Tree
	tr.EnableSnapshots(&dom)
	for i := int64(0); i < 256; i++ {
		tr.Insert(Extent{i * 8, i*8 + 8}, SN(i+1))
	}
	tr.Publish()
	n := testing.AllocsPerRun(500, func() {
		tr.SnapMaxSN(Extent{100, 900})
	})
	if n != 0 {
		t.Fatalf("SnapMaxSN allocates %.1f times per op, want 0", n)
	}
}

// TestSnapshotConcurrentChurn races SnapMaxSN readers against a
// serialized writer that inserts, deletes, clears, and publishes —
// with node recycling through the epoch domain, so a reclamation bug
// shows up as a torn read, a bogus SN, or a race report. Two
// invariants are checked from the readers' side:
//
//  1. A fixed "beacon" range is only ever rewritten with increasing
//     SNs, so the SN a reader observes there must be non-decreasing
//     over that reader's lifetime (snapshot ordering).
//  2. Any SN observed anywhere must be one the writer has already
//     handed out (no garbage from recycled nodes).
//
// Run with -race.
func TestSnapshotConcurrentChurn(t *testing.T) {
	var dom epoch.Domain
	var tr Tree
	tr.EnableSnapshots(&dom)

	const beacon = int64(1 << 20) // far from the churn region
	var mu sync.Mutex             // writer serialization, as extcache's stripe mutex
	var issued atomic.Uint64      // highest SN the writer has published

	mu.Lock()
	tr.Insert(Extent{beacon, beacon + 64}, 1)
	tr.Publish()
	issued.Store(1)
	mu.Unlock()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastBeacon SN
			for {
				select {
				case <-stop:
					return
				default:
				}
				if sn, ok := tr.SnapMaxSN(Extent{beacon, beacon + 64}); ok {
					if sn < lastBeacon {
						t.Errorf("beacon SN went backwards: %d after %d", sn, lastBeacon)
						return
					}
					lastBeacon = sn
				}
				start := rng.Int63n(8192)
				if sn, ok := tr.SnapMaxSN(Extent{start, start + 1 + rng.Int63n(512)}); ok {
					if hi := SN(issued.Load()); sn > hi {
						t.Errorf("observed SN %d never issued (max %d) — recycled node leak", sn, hi)
						return
					}
				}
			}
		}(int64(r) + 100)
	}

	wrng := rand.New(rand.NewSource(7))
	for i := 0; i < 6000; i++ {
		mu.Lock()
		sn := SN(i + 2)
		switch wrng.Intn(12) {
		case 10:
			if ents := tr.Overlapping(Extent{0, 8192}); len(ents) > 0 {
				tr.RemoveLE(ents[:1], ents[0].SN)
			}
		case 11:
			if i%997 == 0 {
				tr.Clear()
				tr.Insert(Extent{beacon, beacon + 64}, sn)
			}
		default:
			start := wrng.Int63n(8192)
			tr.Insert(Extent{start, start + 1 + wrng.Int63n(512)}, sn)
			if i%5 == 0 {
				tr.Insert(Extent{beacon, beacon + 64}, sn)
			}
		}
		// Make the new SN "issued" before readers can see it: store
		// before Publish.
		issued.Store(uint64(sn))
		tr.Publish()
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	dom.Barrier()
}
