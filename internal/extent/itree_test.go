package extent

import (
	"math/rand"
	"testing"
)

// itreeEntry mirrors a tree entry for the brute-force model.
type itreeEntry struct {
	ext Extent
	key uint64
}

// checkITree validates AVL balance and max-End augmentation.
func checkITree(t *testing.T, n *inode[int]) (h int, maxEnd int64) {
	t.Helper()
	if n == nil {
		return 0, minInt64
	}
	lh, lm := checkITree(t, n.left)
	rh, rm := checkITree(t, n.right)
	if bf := lh - rh; bf < -1 || bf > 1 {
		t.Fatalf("unbalanced node (bf=%d)", bf)
	}
	h = 1 + max(lh, rh)
	if n.height != h {
		t.Fatalf("height mismatch: %d != %d", n.height, h)
	}
	maxEnd = max(n.ext.End, max(lm, rm))
	if n.maxEnd != maxEnd {
		t.Fatalf("maxEnd mismatch: %d != %d", n.maxEnd, maxEnd)
	}
	if n.left != nil && !n.left.less(n.ext.Start, n.key) {
		// The left child itself may be fine, but its subtree maximum is
		// checked transitively by recursion; spot-check the child.
		t.Fatalf("order violation left")
	}
	return h, maxEnd
}

// TestITreeRandomized drives random inserts/deletes and compares every
// query against a brute-force slice model.
func TestITreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr ITree[int]
	model := map[uint64]itreeEntry{}
	nextKey := uint64(0)

	randExtent := func() Extent {
		start := int64(rng.Intn(200))
		length := int64(1 + rng.Intn(50))
		if rng.Intn(16) == 0 {
			return Extent{Start: start, End: Inf}
		}
		return Extent{Start: start, End: start + length}
	}

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(model) == 0:
			e := randExtent()
			nextKey++
			tr.Insert(e, nextKey, int(nextKey))
			model[nextKey] = itreeEntry{ext: e, key: nextKey}
		default:
			// Delete a random live entry (plus occasionally a miss).
			if rng.Intn(8) == 0 {
				if tr.Delete(int64(rng.Intn(200)), nextKey+1000) {
					t.Fatal("deleted a key that was never inserted")
				}
				continue
			}
			var victim itreeEntry
			for _, v := range model {
				victim = v
				break
			}
			if !tr.Delete(victim.ext.Start, victim.key) {
				t.Fatalf("delete miss for live entry %+v", victim)
			}
			delete(model, victim.key)
		}

		if tr.Len() != len(model) {
			t.Fatalf("len %d != model %d", tr.Len(), len(model))
		}
		if step%50 == 0 {
			checkITree(t, tr.root)
		}

		// Overlap query vs brute force.
		probe := randExtent()
		got := map[uint64]bool{}
		prevStart, prevKey := int64(minInt64), uint64(0)
		tr.VisitOverlap(probe, func(e Extent, key uint64, v int) bool {
			if e.Start < prevStart || (e.Start == prevStart && key <= prevKey) {
				t.Fatalf("VisitOverlap out of order at (%d,%d)", e.Start, key)
			}
			prevStart, prevKey = e.Start, key
			got[key] = true
			return true
		})
		for key, ent := range model {
			if ent.ext.Overlaps(probe) != got[key] {
				t.Fatalf("overlap mismatch for %+v vs probe %v: got %v", ent, probe, got[key])
			}
		}

		// VisitFrom vs brute force.
		from := int64(rng.Intn(250))
		n := 0
		tr.VisitFrom(from, func(e Extent, key uint64, v int) bool {
			if e.Start < from {
				t.Fatalf("VisitFrom returned Start %d < from %d", e.Start, from)
			}
			n++
			return true
		})
		want := 0
		for _, ent := range model {
			if ent.ext.Start >= from {
				want++
			}
		}
		if n != want {
			t.Fatalf("VisitFrom count %d != %d", n, want)
		}
	}
}

// TestITreeVisitStops verifies early termination from the visitors.
func TestITreeVisitStops(t *testing.T) {
	var tr ITree[int]
	for i := 0; i < 100; i++ {
		tr.Insert(Extent{Start: int64(i), End: int64(i) + 10}, uint64(i), i)
	}
	calls := 0
	tr.VisitOverlap(Extent{Start: 0, End: 1000}, func(Extent, uint64, int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("VisitOverlap did not stop: %d calls", calls)
	}
	calls = 0
	tr.Visit(func(Extent, uint64, int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("Visit did not stop: %d calls", calls)
	}
}
