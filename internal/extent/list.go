package extent

import "sort"

// List is a small, sorted, non-overlapping sequence of SN-tagged extents.
// It is the structure each client-cache page keeps to track which byte
// ranges of the page hold valid data and under which lock sequence number
// they were written (§IV-A of the paper). It is optimized for the handful
// of entries a 4 KB page accumulates, not for the data server's much
// larger per-stripe extent cache (see Tree for that).
//
// The zero value is an empty, ready-to-use list.
type List struct {
	ents []SNExtent
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.ents) }

// Entries returns the entries in ascending Start order. The returned
// slice aliases internal storage and must not be mutated.
func (l *List) Entries() []SNExtent { return l.ents }

// Clone returns a deep copy of the list.
func (l *List) Clone() *List {
	c := &List{ents: make([]SNExtent, len(l.ents))}
	copy(c.ents, l.ents)
	return c
}

// Reset removes all entries.
func (l *List) Reset() { l.ents = l.ents[:0] }

// Insert records that e was written under sequence number sn. Where e
// overlaps existing entries, the write with the larger sequence number
// wins; an incoming write with a sequence number equal to the existing
// entry also wins, because only the current lock holder can carry that SN
// and its operations are locally ordered. Insert returns the sub-extents
// of e that actually took effect (the update set), merged and in order.
func (l *List) Insert(e Extent, sn SN) []SNExtent {
	return l.insert(e, sn, false)
}

// InsertNewer is Insert with the opposite tie rule: existing entries
// with an equal SN win. It is used for clean fills from a data server —
// the locally cached copy of an equal-SN byte is at least as new as the
// server's, so a fill must never replace it.
func (l *List) InsertNewer(e Extent, sn SN) []SNExtent {
	return l.insert(e, sn, true)
}

func (l *List) insert(e Extent, sn SN, oldWinsTies bool) []SNExtent {
	if e.Empty() {
		return nil
	}
	oldWins := func(old SN) bool {
		if oldWinsTies {
			return old >= sn
		}
		return old > sn
	}
	var out []SNExtent // rebuilt entry list
	var won []SNExtent // update set
	pend := SNExtent{Extent: e, SN: sn}
	consumed := false
	for _, old := range l.ents {
		if !consumed && old.Start >= pend.End {
			// Flush the remaining incoming range before entries that lie
			// wholly beyond it, to keep the rebuilt list sorted.
			out = appendMerge(out, pend)
			won = appendMergeSet(won, pend)
			consumed = true
		}
		if consumed || !old.Overlaps(e) {
			out = appendMerge(out, old)
			continue
		}
		if oldWins(old.SN) {
			// The existing data is newer: the incoming write only takes
			// effect outside this entry.
			if pend.Start < old.Start {
				seg := SNExtent{Extent: Extent{pend.Start, old.Start}, SN: sn}
				out = appendMerge(out, seg)
				won = appendMergeSet(won, seg)
			}
			out = appendMerge(out, old)
			if old.End >= pend.End {
				consumed = true
			} else {
				pend.Start = old.End
			}
			continue
		}
		// The incoming write is at least as new: keep the parts of the
		// old entry outside e, and let the incoming range flow through.
		if old.Start < e.Start {
			out = appendMerge(out, SNExtent{Extent: Extent{old.Start, e.Start}, SN: old.SN})
		}
		if old.End > e.End {
			// Emit the incoming remainder first to keep order.
			seg := SNExtent{Extent: Extent{pend.Start, e.End}, SN: sn}
			out = appendMerge(out, seg)
			won = appendMergeSet(won, seg)
			out = appendMerge(out, SNExtent{Extent: Extent{e.End, old.End}, SN: old.SN})
			consumed = true
		}
	}
	if !consumed && !pend.Empty() {
		out = appendMerge(out, pend)
		won = appendMergeSet(won, pend)
	}
	l.ents = out
	return won
}

// appendMerge appends seg to out, coalescing with the previous entry when
// they are adjacent and carry the same SN. Entries must arrive in order.
func appendMerge(out []SNExtent, seg SNExtent) []SNExtent {
	if seg.Empty() {
		return out
	}
	if n := len(out); n > 0 {
		last := &out[n-1]
		if last.SN == seg.SN && last.End == seg.Start {
			last.End = seg.End
			return out
		}
	}
	return append(out, seg)
}

// appendMergeSet merges update-set segments that are adjacent regardless
// of interior splits, since they all carry the incoming SN.
func appendMergeSet(out []SNExtent, seg SNExtent) []SNExtent {
	return appendMerge(out, seg)
}

// Covered reports whether every byte of e is present in the list.
func (l *List) Covered(e Extent) bool {
	if e.Empty() {
		return true
	}
	need := e.Start
	for _, ent := range l.ents {
		if ent.End <= need {
			continue
		}
		if ent.Start > need {
			return false
		}
		need = ent.End
		if need >= e.End {
			return true
		}
	}
	return false
}

// Overlapping returns the entries that overlap e, clipped to e.
func (l *List) Overlapping(e Extent) []SNExtent {
	var out []SNExtent
	for _, ent := range l.ents {
		if iv, ok := ent.Intersect(e); ok {
			out = append(out, SNExtent{Extent: iv, SN: ent.SN})
		}
		if ent.Start >= e.End {
			break
		}
	}
	return out
}

// Remove deletes coverage of e from the list, splitting entries that
// straddle its boundaries.
func (l *List) Remove(e Extent) {
	if e.Empty() {
		return
	}
	var out []SNExtent
	for _, ent := range l.ents {
		if !ent.Overlaps(e) {
			out = append(out, ent)
			continue
		}
		for _, rem := range ent.Sub(e) {
			out = append(out, SNExtent{Extent: rem, SN: ent.SN})
		}
	}
	l.ents = out
}

// RemoveLE deletes coverage of e restricted to entries whose SN is at
// most max, splitting straddlers. Entries with newer SNs keep their
// data — the rule that makes canceling one lock safe while a newer lock
// of the same client still protects overlapping bytes.
func (l *List) RemoveLE(e Extent, max SN) {
	if e.Empty() {
		return
	}
	var out []SNExtent
	for _, ent := range l.ents {
		if !ent.Overlaps(e) || ent.SN > max {
			out = append(out, ent)
			continue
		}
		for _, rem := range ent.Sub(e) {
			out = append(out, SNExtent{Extent: rem, SN: ent.SN})
		}
	}
	l.ents = out
}

// MaxSN returns the largest SN present in the list and true, or 0 and
// false when the list is empty.
func (l *List) MaxSN() (SN, bool) {
	if len(l.ents) == 0 {
		return 0, false
	}
	var m SN
	for _, ent := range l.ents {
		if ent.SN > m {
			m = ent.SN
		}
	}
	return m, true
}

// Set is an ordered collection of plain extents used for non-contiguous
// lock ranges in the DLM-datatype baseline (Ching et al.'s datatype
// locking describes a lock's range as a list of extents instead of one
// expanded interval).
type Set []Extent

// NewSet returns a normalized set: sorted, with overlapping or adjacent
// extents merged.
func NewSet(exts ...Extent) Set {
	s := make(Set, 0, len(exts))
	for _, e := range exts {
		if !e.Empty() {
			s = append(s, e)
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	out := s[:0]
	for _, e := range s {
		if n := len(out); n > 0 && out[n-1].End >= e.Start {
			if e.End > out[n-1].End {
				out[n-1].End = e.End
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// Overlaps reports whether any extent of s overlaps any extent of other.
// Both sets must be normalized (sorted, non-overlapping).
func (s Set) Overlaps(other Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		if s[i].Overlaps(other[j]) {
			return true
		}
		if s[i].End <= other[j].Start {
			i++
		} else {
			j++
		}
	}
	return false
}

// OverlapsExtent reports whether any extent of s overlaps e.
func (s Set) OverlapsExtent(e Extent) bool {
	for _, x := range s {
		if x.Overlaps(e) {
			return true
		}
		if x.Start >= e.End {
			break
		}
	}
	return false
}

// Bounds returns the smallest single extent covering the whole set.
func (s Set) Bounds() (Extent, bool) {
	if len(s) == 0 {
		return Extent{}, false
	}
	return Extent{Start: s[0].Start, End: s[len(s)-1].End}, true
}
