// Package extent provides byte-range extents and the sequence-numbered
// interval structures that back both the lock manager's range bookkeeping
// and the data server's extent cache in ccPFS.
//
// All extents are half-open intervals [Start, End) over int64 byte
// offsets. The sentinel Inf represents "end of file" for lock ranges that
// have been expanded to EOF (the paper expands only the end of a lock
// range, following the Lustre convention).
package extent

import (
	"fmt"
	"math"
)

// Inf is the +infinity end sentinel used for lock ranges expanded to EOF.
const Inf int64 = math.MaxInt64

// Extent is a half-open byte range [Start, End).
type Extent struct {
	Start int64
	End   int64
}

// New returns the extent [start, end). It panics if end < start, which is
// always a programming error in this codebase.
func New(start, end int64) Extent {
	if end < start {
		panic(fmt.Sprintf("extent: invalid range [%d, %d)", start, end))
	}
	return Extent{Start: start, End: end}
}

// Span returns the extent starting at off with length n.
func Span(off, n int64) Extent { return New(off, off+n) }

// Len returns the length of the extent. An extent ending at Inf has
// effectively unbounded length; Len saturates instead of overflowing.
func (e Extent) Len() int64 {
	if e.End == Inf {
		return Inf - e.Start
	}
	return e.End - e.Start
}

// Empty reports whether the extent covers no bytes.
func (e Extent) Empty() bool { return e.End <= e.Start }

// Contains reports whether other lies entirely within e.
func (e Extent) Contains(other Extent) bool {
	return e.Start <= other.Start && other.End <= e.End
}

// ContainsOff reports whether the byte offset off lies within e.
func (e Extent) ContainsOff(off int64) bool {
	return e.Start <= off && off < e.End
}

// Overlaps reports whether e and other share at least one byte.
func (e Extent) Overlaps(other Extent) bool {
	return e.Start < other.End && other.Start < e.End
}

// Adjacent reports whether e and other touch without overlapping.
func (e Extent) Adjacent(other Extent) bool {
	return e.End == other.Start || other.End == e.Start
}

// Intersect returns the overlap of e and other. The boolean is false when
// they do not overlap, in which case the returned extent is empty.
func (e Extent) Intersect(other Extent) (Extent, bool) {
	start := max(e.Start, other.Start)
	end := min(e.End, other.End)
	if end <= start {
		return Extent{}, false
	}
	return Extent{Start: start, End: end}, true
}

// Union returns the smallest extent covering both e and other. It is only
// meaningful when the two overlap or are adjacent.
func (e Extent) Union(other Extent) Extent {
	return Extent{Start: min(e.Start, other.Start), End: max(e.End, other.End)}
}

// Sub returns the parts of e not covered by other: up to two extents
// (left and right remainders). Empty remainders are omitted.
func (e Extent) Sub(other Extent) []Extent {
	if !e.Overlaps(other) {
		return []Extent{e}
	}
	var out []Extent
	if e.Start < other.Start {
		out = append(out, Extent{Start: e.Start, End: other.Start})
	}
	if other.End < e.End {
		out = append(out, Extent{Start: other.End, End: e.End})
	}
	return out
}

func (e Extent) String() string {
	if e.End == Inf {
		return fmt.Sprintf("[%d, EOF)", e.Start)
	}
	return fmt.Sprintf("[%d, %d)", e.Start, e.End)
}

// SN is a lock-resource sequence number. Zero is a valid (first) sequence
// number; ordering is plain integer ordering and never wraps in practice.
type SN = uint64

// SNExtent is an extent tagged with the sequence number of the write lock
// under which its data was produced.
type SNExtent struct {
	Extent
	SN SN
}

func (s SNExtent) String() string {
	return fmt.Sprintf("%v@%d", s.Extent, s.SN)
}

// AlignDown rounds off down to a multiple of align.
func AlignDown(off, align int64) int64 { return off - off%align }

// AlignUp rounds off up to a multiple of align, saturating at Inf.
func AlignUp(off, align int64) int64 {
	if off > Inf-align {
		return Inf
	}
	if r := off % align; r != 0 {
		return off + align - r
	}
	return off
}
