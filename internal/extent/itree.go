package extent

// ITree is a balanced (AVL) interval tree that, unlike Tree, permits
// overlapping entries: it indexes a set of possibly-overlapping extents
// keyed by (Start, key), where key is a caller-supplied unique
// discriminator (a lock ID, a waiter sequence number). Every node is
// augmented with the maximum End in its subtree, so a stabbing query
// visits only the O(log n + k) nodes whose subtrees can overlap the
// probe. It is the index behind the DLM server's sublinear grant engine
// (DESIGN.md §9): conflict detection, queue-conflict checks, and mSN
// queries over a resource's granted set.
//
// ITree is not safe for concurrent use; callers synchronize externally.
type ITree[V any] struct {
	root *inode[V]
	size int
}

type inode[V any] struct {
	ext         Extent
	key         uint64
	val         V
	left, right *inode[V]
	height      int
	maxEnd      int64
}

// Len returns the number of entries.
func (t *ITree[V]) Len() int { return t.size }

// Clear removes all entries.
func (t *ITree[V]) Clear() { t.root, t.size = nil, 0 }

func iheight[V any](n *inode[V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func imaxEnd[V any](n *inode[V]) int64 {
	if n == nil {
		return minInt64
	}
	return n.maxEnd
}

// less orders nodes by (Start, key); key uniqueness makes the order
// total, which is what lets equal-Start (and fully equal) extents
// coexist in one tree.
func (n *inode[V]) less(start int64, key uint64) bool {
	if n.ext.Start != start {
		return n.ext.Start < start
	}
	return n.key < key
}

// fix recomputes the node's augmentation and rebalances, mirroring the
// AVL discipline of Tree.fix.
func (n *inode[V]) fix() *inode[V] {
	n.update()
	switch bf := iheight(n.left) - iheight(n.right); {
	case bf > 1:
		if iheight(n.left.left) < iheight(n.left.right) {
			n.left = n.left.rotateLeft()
		}
		return n.rotateRight()
	case bf < -1:
		if iheight(n.right.right) < iheight(n.right.left) {
			n.right = n.right.rotateRight()
		}
		return n.rotateLeft()
	}
	return n
}

func (n *inode[V]) update() {
	n.height = 1 + max(iheight(n.left), iheight(n.right))
	n.maxEnd = max(n.ext.End, max(imaxEnd(n.left), imaxEnd(n.right)))
}

func (n *inode[V]) rotateRight() *inode[V] {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func (n *inode[V]) rotateLeft() *inode[V] {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

// Insert adds (ext, key) → val. The caller guarantees key is unique
// among live entries; duplicate keys would make Delete ambiguous.
func (t *ITree[V]) Insert(ext Extent, key uint64, val V) {
	t.root = insertINode(t.root, ext, key, val)
	t.size++
}

func insertINode[V any](n *inode[V], ext Extent, key uint64, val V) *inode[V] {
	if n == nil {
		return &inode[V]{ext: ext, key: key, val: val, height: 1, maxEnd: ext.End}
	}
	if n.less(ext.Start, key) {
		n.right = insertINode(n.right, ext, key, val)
	} else {
		n.left = insertINode(n.left, ext, key, val)
	}
	return n.fix()
}

// Delete removes the entry with the given Start and key, reporting
// whether it was present.
func (t *ITree[V]) Delete(start int64, key uint64) bool {
	var deleted bool
	t.root, deleted = deleteINode(t.root, start, key)
	if deleted {
		t.size--
	}
	return deleted
}

func deleteINode[V any](n *inode[V], start int64, key uint64) (*inode[V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case n.less(start, key):
		n.right, deleted = deleteINode(n.right, start, key)
	case n.ext.Start != start || n.key != key:
		n.left, deleted = deleteINode(n.left, start, key)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.ext, n.key, n.val = succ.ext, succ.key, succ.val
		n.right, _ = deleteINode(n.right, succ.ext.Start, succ.key)
	}
	return n.fix(), deleted
}

// VisitOverlap calls fn for every entry whose extent overlaps e, in
// ascending (Start, key) order. Returning false stops the walk. The
// max-End augmentation prunes subtrees that end at or before e.Start,
// and the BST order prunes subtrees starting at or after e.End, so the
// visit is O(log n + k) for k reported entries.
func (t *ITree[V]) VisitOverlap(e Extent, fn func(Extent, uint64, V) bool) {
	if e.Empty() {
		return
	}
	t.root.visitOverlap(e, fn)
}

func (n *inode[V]) visitOverlap(e Extent, fn func(Extent, uint64, V) bool) bool {
	if n == nil || n.maxEnd <= e.Start {
		return true
	}
	if !n.left.visitOverlap(e, fn) {
		return false
	}
	if n.ext.Start >= e.End {
		// Everything in the right subtree starts even later; only the
		// left subtree (already visited) can overlap.
		return true
	}
	if n.ext.Overlaps(e) && !fn(n.ext, n.key, n.val) {
		return false
	}
	return n.right.visitOverlap(e, fn)
}

// Visit calls fn for every entry in ascending (Start, key) order.
// Returning false stops the walk.
func (t *ITree[V]) Visit(fn func(Extent, uint64, V) bool) {
	t.VisitFrom(minInt64, fn)
}

// VisitFrom calls fn for every entry whose Start >= from, in ascending
// (Start, key) order. Returning false stops the walk.
func (t *ITree[V]) VisitFrom(from int64, fn func(Extent, uint64, V) bool) {
	var stack []*inode[V]
	n := t.root
	for n != nil || len(stack) > 0 {
		for n != nil {
			if n.ext.Start >= from {
				stack = append(stack, n)
				n = n.left
			} else {
				n = n.right
			}
		}
		if len(stack) == 0 {
			return
		}
		n = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(n.ext, n.key, n.val) {
			return
		}
		n = n.right
	}
}
