package extent

import (
	"sync"
	"sync/atomic"

	"ccpfs/internal/epoch"
)

// Tree is a balanced (AVL) interval tree of non-overlapping SN-tagged
// extents, keyed by extent start. It implements the data server's extent
// cache from §IV-B of the paper: each entry records the newest sequence
// number seen for a byte range, overlapping inserts keep the larger SN,
// continuous extents with the same SN are merged, and inserts report the
// update set — the sub-ranges where the incoming write won and must be
// applied to the storage device.
//
// Entries are approximately 48 bytes each (the paper's figure); EntryBytes
// reports the modelled footprint.
//
// Tree is not safe for concurrent use; callers synchronize externally.
// The one exception is the Snap* read path: after EnableSnapshots,
// mutators become path-copying (persistent) — each mutation copies the
// nodes on its root-to-leaf path instead of editing them — and Publish
// atomically swaps in the new root. Snap* methods then run lock-free
// against the last published root under an epoch pin, while mutators
// stay externally serialized as before. Version stamping keeps the
// copying cheap: every node carries the mutation batch that created it,
// and a batch copies each distinct path node once no matter how many
// elementary steps (delete, rebalance, re-insert) touch it. Displaced
// nodes are retired to the epoch domain and recycled through a pool
// once no pinned reader can still reach them.
type Tree struct {
	root *node
	size int

	// Snapshot state; zero/nil until EnableSnapshots.
	cow     bool
	ver     uint64 // current mutation batch, stamped into new/copied nodes
	snap    atomic.Pointer[node]
	dom     *epoch.Domain
	scratch []*node // published nodes displaced since the last retire handoff
	free    []*node // never-published discards, reusable without a grace period
}

// EntrySize is the modelled per-entry footprint in bytes (paper §IV-B:
// "each entry ... has a size of 48 bytes").
const EntrySize = 48

type node struct {
	ent         SNExtent
	left, right *node
	height      int
	ver         uint64 // mutation batch that created this node (cow mode)
}

// chunkPool recycles displaced nodes of snapshot-enabled trees in bulk:
// a retired batch's slice — nodes and all — becomes a refill chunk for
// some tree's freelist. Chunks enter the pool only from epoch-deferred
// frees, so every node in a chunk is guaranteed unreachable from any
// published snapshot a reader could still be pinning. Bulk transfer
// keeps the global pool off the per-mutation path: one Get/Put pair
// moves up to retireBatch nodes, where a per-node pool cost two
// synchronized pool operations per path copy.
var chunkPool sync.Pool // holds non-empty []*node

// EnableSnapshots switches the tree to path-copying mutation with
// lock-free Snap* reads, retiring displaced nodes through d. Call once,
// before concurrent readers exist; mutators remain externally
// serialized. Publish must be called after each batch of mutations to
// make them visible to Snap* readers.
func (t *Tree) EnableSnapshots(d *epoch.Domain) {
	t.cow = true
	t.dom = d
	t.ver = 1
	t.snap.Store(t.root)
}

// retireBatch is how many displaced nodes accumulate before Publish
// hands them to the epoch domain. One closure allocation and one Retire
// call then amortize over the batch; per-mutation handoffs made the
// closure, its slice, and the domain mutex the dominant cost of the
// write path.
const retireBatch = 64

// scratchPool recycles the displaced-node buffers that cycle through
// retire closures, so a steady mutation load reuses two or three
// backing arrays instead of growing a fresh one after every handoff.
var scratchPool = sync.Pool{New: func() any { return make([]*node, 0, retireBatch+16) }}

// Publish atomically exposes the current root to Snap* readers and,
// once enough displaced nodes have accumulated, retires them: once
// every reader pinned before this point unpins, they return to the node
// pool. Call under the same external serialization as the mutators.
func (t *Tree) Publish() {
	if !t.cow {
		return
	}
	t.snap.Store(t.root)
	t.ver++
	if len(t.scratch) >= retireBatch {
		batch := t.scratch
		t.scratch = scratchPool.Get().([]*node)
		t.dom.Retire(func() {
			// Cleared so a parked chunk cannot transitively pin the dead
			// tree its nodes used to link; the slice itself, still full of
			// (cleared) nodes, becomes a freelist refill chunk.
			for _, n := range batch {
				*n = node{}
			}
			chunkPool.Put(batch)
		})
	}
}

// newNode returns a node ready for full initialization (both callers
// assign every field, so freelist nodes are handed back dirty). In cow
// mode the tree-local freelist is tried first: it holds never-published
// discards, which need no grace period and no pool round trip.
func (t *Tree) newNode() *node {
	if !t.cow {
		return new(node)
	}
	if i := len(t.free) - 1; i >= 0 {
		nd := t.free[i]
		t.free[i] = nil
		t.free = t.free[:i]
		return nd
	}
	// Freelist dry: pull a whole retired chunk, keep one node, stash the
	// rest, and recycle the emptied backing array as a future scratch
	// buffer — the full closed loop is scratch → retire → chunk →
	// freelist → scratch.
	if c, _ := chunkPool.Get().([]*node); len(c) > 0 {
		nd := c[len(c)-1]
		t.free = append(t.free, c[:len(c)-1]...)
		for i := range c {
			c[i] = nil
		}
		scratchPool.Put(c[:0])
		return nd
	}
	return new(node)
}

// mut returns a node safe to edit in the current mutation batch: the
// node itself if this batch already owns it, otherwise a copy stamped
// with the current version, with the original queued for retirement.
// This is the path-copying step — published snapshots keep the
// original, the tree under mutation adopts the copy.
func (t *Tree) mut(n *node) *node {
	if !t.cow || n.ver == t.ver {
		return n
	}
	c := t.newNode()
	*c = *n
	c.ver = t.ver
	t.scratch = append(t.scratch, n)
	return c
}

// drop disposes of a node removed from the tree. A node stamped with
// the current batch version was created after the last Publish, so no
// published snapshot can reach it — it goes straight back to the
// freelist. Anything older may still be pinned by a reader and queues
// for epoch retirement.
func (t *Tree) drop(n *node) {
	if !t.cow {
		return
	}
	if n.ver == t.ver {
		t.free = append(t.free, n)
		return
	}
	t.scratch = append(t.scratch, n)
}

// Len returns the number of entries in the tree.
func (t *Tree) Len() int { return t.size }

// EntryBytes returns the modelled memory footprint of the cache.
func (t *Tree) EntryBytes() int { return t.size * EntrySize }

// Clear removes all entries. In cow mode the dropped nodes are retired
// (Publish makes the emptiness visible to Snap* readers).
func (t *Tree) Clear() {
	if t.cow {
		var drop func(n *node)
		drop = func(n *node) {
			if n == nil {
				return
			}
			drop(n.left)
			drop(n.right)
			t.drop(n)
		}
		drop(t.root)
	}
	t.root, t.size = nil, 0
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

// fix rebalances n (which must already be owned by the current mutation
// batch — callers pass nodes through mut first). Rotations pull a child
// up into the copied path, so the child is mut'd before it is edited.
func (t *Tree) fix(n *node) *node {
	n.height = 1 + max(height(n.left), height(n.right))
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = t.rotateLeft(t.mut(n.left))
		}
		return t.rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = t.rotateRight(t.mut(n.right))
		}
		return t.rotateLeft(n)
	}
	return n
}

func (t *Tree) rotateRight(n *node) *node {
	l := t.mut(n.left)
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

func (t *Tree) rotateLeft(n *node) *node {
	r := t.mut(n.right)
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

func (t *Tree) insertRaw(ent SNExtent) {
	if ent.Empty() {
		return
	}
	t.root = t.insertNode(t.root, ent)
	t.size++
}

func (t *Tree) insertNode(n *node, ent SNExtent) *node {
	if n == nil {
		nn := t.newNode()
		nn.ent, nn.left, nn.right, nn.height, nn.ver = ent, nil, nil, 1, t.ver
		return nn
	}
	n = t.mut(n)
	if ent.Start < n.ent.Start {
		n.left = t.insertNode(n.left, ent)
	} else {
		n.right = t.insertNode(n.right, ent)
	}
	return t.fix(n)
}

func (t *Tree) deleteStart(start int64) bool {
	var deleted bool
	t.root, deleted = t.deleteNode(t.root, start)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree) deleteNode(n *node, start int64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	switch {
	case start < n.ent.Start:
		nl, deleted := t.deleteNode(n.left, start)
		if !deleted {
			return n, false
		}
		n = t.mut(n)
		n.left = nl
	case start > n.ent.Start:
		nr, deleted := t.deleteNode(n.right, start)
		if !deleted {
			return n, false
		}
		n = t.mut(n)
		n.right = nr
	default:
		if n.left == nil {
			t.drop(n)
			return n.right, true
		}
		if n.right == nil {
			t.drop(n)
			return n.left, true
		}
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n = t.mut(n)
		n.ent = succ.ent
		n.right, _ = t.deleteNode(n.right, succ.ent.Start)
	}
	return t.fix(n), true
}

// Visit calls fn for every entry in ascending order. Returning false from
// fn stops the walk.
func (t *Tree) Visit(fn func(SNExtent) bool) {
	t.visitFrom(minInt64, fn)
}

// VisitFrom calls fn for every entry whose Start >= from, in ascending
// order. Returning false from fn stops the walk.
func (t *Tree) VisitFrom(from int64, fn func(SNExtent) bool) {
	t.visitFrom(from, fn)
}

const minInt64 = -1 << 63

func (t *Tree) visitFrom(from int64, fn func(SNExtent) bool) {
	// Iterative in-order traversal skipping subtrees entirely before from.
	var stack []*node
	n := t.root
	for n != nil || len(stack) > 0 {
		for n != nil {
			if n.ent.Start >= from {
				stack = append(stack, n)
				n = n.left
			} else {
				n = n.right
			}
		}
		if len(stack) == 0 {
			return
		}
		n = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(n.ent) {
			return
		}
		n = n.right
	}
}

// overlapping returns the entries overlapping e in ascending order.
func (t *Tree) overlapping(e Extent) []SNExtent {
	var out []SNExtent
	// An overlapping entry can start before e.Start (it must then end
	// after it). Find the rightmost entry starting at or before e.Start
	// first, then ascend.
	from := e.Start
	if p, ok := t.floorStart(e.Start); ok && p.End > e.Start {
		from = p.Start
	}
	t.visitFrom(from, func(ent SNExtent) bool {
		if ent.Start >= e.End {
			return false
		}
		if ent.Overlaps(e) {
			out = append(out, ent)
		}
		return true
	})
	return out
}

// floorStart returns the entry with the greatest Start <= start.
func (t *Tree) floorStart(start int64) (SNExtent, bool) {
	return floorStartN(t.root, start)
}

func floorStartN(n *node, start int64) (SNExtent, bool) {
	var best SNExtent
	found := false
	for n != nil {
		if n.ent.Start <= start {
			best, found = n.ent, true
			n = n.right
		} else {
			n = n.left
		}
	}
	return best, found
}

// Insert merges the write (e, sn) into the cache following the paper's
// rule: for overlapping parts the larger SN wins, with ties going to the
// incoming write. It returns the update set — the sub-ranges of e where
// the incoming data is newest and must be written to the device — merged
// and in ascending order. Sub-ranges of e that lost to newer cached data
// are absent from the update set and the caller discards those bytes.
func (t *Tree) Insert(e Extent, sn SN) []SNExtent {
	if e.Empty() {
		return nil
	}
	olds := t.overlapping(e)
	for _, o := range olds {
		t.deleteStart(o.Start)
	}

	var pieces []SNExtent // replacement entries covering the affected span
	var won []SNExtent    // update set
	pend := SNExtent{Extent: e, SN: sn}
	consumed := false
	for _, old := range olds {
		if old.SN > sn {
			if !consumed && pend.Start < old.Start {
				seg := SNExtent{Extent: Extent{pend.Start, old.Start}, SN: sn}
				pieces = appendMerge(pieces, seg)
				won = appendMerge(won, seg)
			}
			pieces = appendMerge(pieces, old)
			if old.End >= pend.End {
				consumed = true
			} else if !consumed {
				pend.Start = old.End
			}
			continue
		}
		if old.Start < e.Start {
			pieces = appendMerge(pieces, SNExtent{Extent: Extent{old.Start, e.Start}, SN: old.SN})
		}
		if old.End > e.End {
			seg := SNExtent{Extent: Extent{pend.Start, e.End}, SN: sn}
			pieces = appendMerge(pieces, seg)
			won = appendMerge(won, seg)
			pieces = appendMerge(pieces, SNExtent{Extent: Extent{e.End, old.End}, SN: old.SN})
			consumed = true
		}
	}
	if !consumed && !pend.Empty() {
		pieces = appendMerge(pieces, pend)
		won = appendMerge(won, pend)
	}

	// Coalesce with untouched neighbors sharing an SN at the span edges.
	if len(pieces) > 0 {
		first := &pieces[0]
		if p, ok := t.floorStart(first.Start - 1); ok && p.End == first.Start && p.SN == first.SN {
			t.deleteStart(p.Start)
			first.Start = p.Start
		}
		last := &pieces[len(pieces)-1]
		if s, ok := t.ceilStart(last.End); ok && s.Start == last.End && s.SN == last.SN {
			t.deleteStart(s.Start)
			last.End = s.End
		}
	}
	for _, p := range pieces {
		t.insertRaw(p)
	}
	return won
}

// ceilStart returns the entry with the smallest Start >= start.
func (t *Tree) ceilStart(start int64) (SNExtent, bool) {
	var best SNExtent
	found := false
	n := t.root
	for n != nil {
		if n.ent.Start >= start {
			best, found = n.ent, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return best, found
}

// MaxSNOverlapping returns the largest SN among entries overlapping e,
// or (0, false) when nothing overlaps.
func (t *Tree) MaxSNOverlapping(e Extent) (SN, bool) {
	var m SN
	found := false
	for _, ent := range t.overlapping(e) {
		found = true
		if ent.SN > m {
			m = ent.SN
		}
	}
	return m, found
}

// SnapMaxSN is the lock-free MaxSNOverlapping: it answers from the last
// published snapshot, without the caller's lock and without allocating.
// This is the data server's conflict-probe read (is any cached SN newer
// than this lock's?) — the hottest read in the flush path, now wait-free
// with respect to concurrent Apply batches. Requires EnableSnapshots;
// the answer may trail the newest unpublished mutations, which is the
// same staleness a reader arriving just before those mutations would
// have seen under the lock.
func (t *Tree) SnapMaxSN(e Extent) (SN, bool) {
	g := t.dom.Pin()
	root := t.snap.Load()
	// Entries never overlap each other, so everything overlapping e
	// starts in [floor(e.Start), e.End): only the floor entry can start
	// before e.Start and still reach into e.
	from := e.Start
	if p, ok := floorStartN(root, e.Start); ok && p.End > e.Start && p.Start < from {
		from = p.Start
	}
	m, found := maxSNIn(root, from, e.End, e.Start, 0, false)
	g.Unpin()
	return m, found
}

// maxSNIn folds the max SN over entries with Start in [from, to) and
// End > minEnd, by in-order pruned traversal. Plain recursion with
// value accumulators: no closures, no stack slice, no allocation.
func maxSNIn(n *node, from, to, minEnd int64, best SN, found bool) (SN, bool) {
	for n != nil {
		if n.ent.Start < from {
			// Left subtree starts even earlier; everything relevant is
			// to the right.
			n = n.right
			continue
		}
		if n.ent.Start >= to {
			n = n.left
			continue
		}
		best, found = maxSNIn(n.left, from, to, minEnd, best, found)
		if n.ent.End > minEnd {
			if !found || n.ent.SN > best {
				best = n.ent.SN
			}
			found = true
		}
		n = n.right
	}
	return best, found
}

// Overlapping returns the entries overlapping e, clipped to e, in order.
func (t *Tree) Overlapping(e Extent) []SNExtent {
	ents := t.overlapping(e)
	out := ents[:0]
	for _, ent := range ents {
		if iv, ok := ent.Intersect(e); ok {
			out = append(out, SNExtent{Extent: iv, SN: ent.SN})
		}
	}
	return out
}

// PickBatch returns up to n entries whose Start >= from, together with
// the start cursor to resume from next time (one past the last returned
// entry). It is the scan primitive behind the cleanup task, which
// processes at most 1,024 entries per round.
func (t *Tree) PickBatch(from int64, n int) (batch []SNExtent, next int64) {
	next = from
	t.visitFrom(from, func(ent SNExtent) bool {
		if len(batch) >= n {
			return false
		}
		batch = append(batch, ent)
		next = ent.Start + 1
		return true
	})
	return batch, next
}

// RemoveLE deletes the given entries from the tree when their SN is no
// larger than msn and they are still present verbatim. It returns the
// number of entries removed. This is the cleanup rule of §IV-B: entries
// whose SN <= mSN (the minimum SN of unreleased write locks overlapping
// them) can never be superseded by in-flight data and are dropped.
func (t *Tree) RemoveLE(ents []SNExtent, msn SN) int {
	removed := 0
	for _, ent := range ents {
		if ent.SN > msn {
			continue
		}
		if cur, ok := t.floorStart(ent.Start); ok && cur == ent {
			t.deleteStart(ent.Start)
			removed++
		}
	}
	return removed
}

// check verifies structural invariants (used by tests).
func (t *Tree) check() error {
	var prev *SNExtent
	var err error
	count := 0
	t.Visit(func(ent SNExtent) bool {
		count++
		if ent.Empty() {
			err = errEmptyEntry
			return false
		}
		if prev != nil && prev.End > ent.Start {
			err = errOverlapEntry
			return false
		}
		prev = &SNExtent{Extent: ent.Extent, SN: ent.SN}
		return true
	})
	if err == nil && count != t.size {
		err = errSizeMismatch
	}
	return err
}

type treeError string

func (e treeError) Error() string { return string(e) }

const (
	errEmptyEntry   = treeError("extent: empty entry in tree")
	errOverlapEntry = treeError("extent: overlapping entries in tree")
	errSizeMismatch = treeError("extent: size counter mismatch")
)
