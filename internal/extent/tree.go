package extent

// Tree is a balanced (AVL) interval tree of non-overlapping SN-tagged
// extents, keyed by extent start. It implements the data server's extent
// cache from §IV-B of the paper: each entry records the newest sequence
// number seen for a byte range, overlapping inserts keep the larger SN,
// continuous extents with the same SN are merged, and inserts report the
// update set — the sub-ranges where the incoming write won and must be
// applied to the storage device.
//
// Entries are approximately 48 bytes each (the paper's figure); EntryBytes
// reports the modelled footprint.
//
// Tree is not safe for concurrent use; callers synchronize externally.
type Tree struct {
	root *node
	size int
}

// EntrySize is the modelled per-entry footprint in bytes (paper §IV-B:
// "each entry ... has a size of 48 bytes").
const EntrySize = 48

type node struct {
	ent         SNExtent
	left, right *node
	height      int
}

// Len returns the number of entries in the tree.
func (t *Tree) Len() int { return t.size }

// EntryBytes returns the modelled memory footprint of the cache.
func (t *Tree) EntryBytes() int { return t.size * EntrySize }

// Clear removes all entries.
func (t *Tree) Clear() { t.root, t.size = nil, 0 }

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node) fix() *node {
	n.height = 1 + max(height(n.left), height(n.right))
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = n.left.rotateLeft()
		}
		return n.rotateRight()
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = n.right.rotateRight()
		}
		return n.rotateLeft()
	}
	return n
}

func (n *node) rotateRight() *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

func (n *node) rotateLeft() *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

func (t *Tree) insertRaw(ent SNExtent) {
	if ent.Empty() {
		return
	}
	t.root = insertNode(t.root, ent)
	t.size++
}

func insertNode(n *node, ent SNExtent) *node {
	if n == nil {
		return &node{ent: ent, height: 1}
	}
	if ent.Start < n.ent.Start {
		n.left = insertNode(n.left, ent)
	} else {
		n.right = insertNode(n.right, ent)
	}
	return n.fix()
}

func (t *Tree) deleteStart(start int64) bool {
	var deleted bool
	t.root, deleted = deleteNode(t.root, start)
	if deleted {
		t.size--
	}
	return deleted
}

func deleteNode(n *node, start int64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case start < n.ent.Start:
		n.left, deleted = deleteNode(n.left, start)
	case start > n.ent.Start:
		n.right, deleted = deleteNode(n.right, start)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.ent = succ.ent
		n.right, _ = deleteNode(n.right, succ.ent.Start)
	}
	return n.fix(), deleted
}

// Visit calls fn for every entry in ascending order. Returning false from
// fn stops the walk.
func (t *Tree) Visit(fn func(SNExtent) bool) {
	t.visitFrom(minInt64, fn)
}

// VisitFrom calls fn for every entry whose Start >= from, in ascending
// order. Returning false from fn stops the walk.
func (t *Tree) VisitFrom(from int64, fn func(SNExtent) bool) {
	t.visitFrom(from, fn)
}

const minInt64 = -1 << 63

func (t *Tree) visitFrom(from int64, fn func(SNExtent) bool) {
	// Iterative in-order traversal skipping subtrees entirely before from.
	var stack []*node
	n := t.root
	for n != nil || len(stack) > 0 {
		for n != nil {
			if n.ent.Start >= from {
				stack = append(stack, n)
				n = n.left
			} else {
				n = n.right
			}
		}
		if len(stack) == 0 {
			return
		}
		n = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(n.ent) {
			return
		}
		n = n.right
	}
}

// overlapping returns the entries overlapping e in ascending order.
func (t *Tree) overlapping(e Extent) []SNExtent {
	var out []SNExtent
	// An overlapping entry can start before e.Start (it must then end
	// after it). Find the rightmost entry starting at or before e.Start
	// first, then ascend.
	from := e.Start
	if p, ok := t.floorStart(e.Start); ok && p.End > e.Start {
		from = p.Start
	}
	t.visitFrom(from, func(ent SNExtent) bool {
		if ent.Start >= e.End {
			return false
		}
		if ent.Overlaps(e) {
			out = append(out, ent)
		}
		return true
	})
	return out
}

// floorStart returns the entry with the greatest Start <= start.
func (t *Tree) floorStart(start int64) (SNExtent, bool) {
	var best SNExtent
	found := false
	n := t.root
	for n != nil {
		if n.ent.Start <= start {
			best, found = n.ent, true
			n = n.right
		} else {
			n = n.left
		}
	}
	return best, found
}

// Insert merges the write (e, sn) into the cache following the paper's
// rule: for overlapping parts the larger SN wins, with ties going to the
// incoming write. It returns the update set — the sub-ranges of e where
// the incoming data is newest and must be written to the device — merged
// and in ascending order. Sub-ranges of e that lost to newer cached data
// are absent from the update set and the caller discards those bytes.
func (t *Tree) Insert(e Extent, sn SN) []SNExtent {
	if e.Empty() {
		return nil
	}
	olds := t.overlapping(e)
	for _, o := range olds {
		t.deleteStart(o.Start)
	}

	var pieces []SNExtent // replacement entries covering the affected span
	var won []SNExtent    // update set
	pend := SNExtent{Extent: e, SN: sn}
	consumed := false
	for _, old := range olds {
		if old.SN > sn {
			if !consumed && pend.Start < old.Start {
				seg := SNExtent{Extent: Extent{pend.Start, old.Start}, SN: sn}
				pieces = appendMerge(pieces, seg)
				won = appendMerge(won, seg)
			}
			pieces = appendMerge(pieces, old)
			if old.End >= pend.End {
				consumed = true
			} else if !consumed {
				pend.Start = old.End
			}
			continue
		}
		if old.Start < e.Start {
			pieces = appendMerge(pieces, SNExtent{Extent: Extent{old.Start, e.Start}, SN: old.SN})
		}
		if old.End > e.End {
			seg := SNExtent{Extent: Extent{pend.Start, e.End}, SN: sn}
			pieces = appendMerge(pieces, seg)
			won = appendMerge(won, seg)
			pieces = appendMerge(pieces, SNExtent{Extent: Extent{e.End, old.End}, SN: old.SN})
			consumed = true
		}
	}
	if !consumed && !pend.Empty() {
		pieces = appendMerge(pieces, pend)
		won = appendMerge(won, pend)
	}

	// Coalesce with untouched neighbors sharing an SN at the span edges.
	if len(pieces) > 0 {
		first := &pieces[0]
		if p, ok := t.floorStart(first.Start - 1); ok && p.End == first.Start && p.SN == first.SN {
			t.deleteStart(p.Start)
			first.Start = p.Start
		}
		last := &pieces[len(pieces)-1]
		if s, ok := t.ceilStart(last.End); ok && s.Start == last.End && s.SN == last.SN {
			t.deleteStart(s.Start)
			last.End = s.End
		}
	}
	for _, p := range pieces {
		t.insertRaw(p)
	}
	return won
}

// ceilStart returns the entry with the smallest Start >= start.
func (t *Tree) ceilStart(start int64) (SNExtent, bool) {
	var best SNExtent
	found := false
	n := t.root
	for n != nil {
		if n.ent.Start >= start {
			best, found = n.ent, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return best, found
}

// MaxSNOverlapping returns the largest SN among entries overlapping e,
// or (0, false) when nothing overlaps.
func (t *Tree) MaxSNOverlapping(e Extent) (SN, bool) {
	var m SN
	found := false
	for _, ent := range t.overlapping(e) {
		found = true
		if ent.SN > m {
			m = ent.SN
		}
	}
	return m, found
}

// Overlapping returns the entries overlapping e, clipped to e, in order.
func (t *Tree) Overlapping(e Extent) []SNExtent {
	ents := t.overlapping(e)
	out := ents[:0]
	for _, ent := range ents {
		if iv, ok := ent.Intersect(e); ok {
			out = append(out, SNExtent{Extent: iv, SN: ent.SN})
		}
	}
	return out
}

// PickBatch returns up to n entries whose Start >= from, together with
// the start cursor to resume from next time (one past the last returned
// entry). It is the scan primitive behind the cleanup task, which
// processes at most 1,024 entries per round.
func (t *Tree) PickBatch(from int64, n int) (batch []SNExtent, next int64) {
	next = from
	t.visitFrom(from, func(ent SNExtent) bool {
		if len(batch) >= n {
			return false
		}
		batch = append(batch, ent)
		next = ent.Start + 1
		return true
	})
	return batch, next
}

// RemoveLE deletes the given entries from the tree when their SN is no
// larger than msn and they are still present verbatim. It returns the
// number of entries removed. This is the cleanup rule of §IV-B: entries
// whose SN <= mSN (the minimum SN of unreleased write locks overlapping
// them) can never be superseded by in-flight data and are dropped.
func (t *Tree) RemoveLE(ents []SNExtent, msn SN) int {
	removed := 0
	for _, ent := range ents {
		if ent.SN > msn {
			continue
		}
		if cur, ok := t.floorStart(ent.Start); ok && cur == ent {
			t.deleteStart(ent.Start)
			removed++
		}
	}
	return removed
}

// check verifies structural invariants (used by tests).
func (t *Tree) check() error {
	var prev *SNExtent
	var err error
	count := 0
	t.Visit(func(ent SNExtent) bool {
		count++
		if ent.Empty() {
			err = errEmptyEntry
			return false
		}
		if prev != nil && prev.End > ent.Start {
			err = errOverlapEntry
			return false
		}
		prev = &SNExtent{Extent: ent.Extent, SN: ent.SN}
		return true
	})
	if err == nil && count != t.size {
		err = errSizeMismatch
	}
	return err
}

type treeError string

func (e treeError) Error() string { return string(e) }

const (
	errEmptyEntry   = treeError("extent: empty entry in tree")
	errOverlapEntry = treeError("extent: overlapping entries in tree")
	errSizeMismatch = treeError("extent: size counter mismatch")
)
