package extent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtentBasics(t *testing.T) {
	e := New(10, 30)
	if e.Len() != 20 {
		t.Fatalf("Len = %d, want 20", e.Len())
	}
	if e.Empty() {
		t.Fatal("non-empty extent reported empty")
	}
	if !e.ContainsOff(10) || e.ContainsOff(30) {
		t.Fatal("half-open containment wrong")
	}
	if !e.Contains(New(10, 30)) || !e.Contains(New(15, 20)) || e.Contains(New(5, 20)) {
		t.Fatal("Contains wrong")
	}
	if (Extent{0, 0}).Empty() != true {
		t.Fatal("empty extent not empty")
	}
}

func TestExtentSpan(t *testing.T) {
	e := Span(100, 50)
	if e.Start != 100 || e.End != 150 {
		t.Fatalf("Span = %v", e)
	}
}

func TestExtentNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(5, 3) did not panic")
		}
	}()
	New(5, 3)
}

func TestExtentOverlapAdjacent(t *testing.T) {
	a, b, c := New(0, 10), New(10, 20), New(5, 15)
	if a.Overlaps(b) {
		t.Fatal("adjacent extents reported overlapping")
	}
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Fatal("adjacent not detected")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Fatal("overlap not detected")
	}
}

func TestExtentIntersect(t *testing.T) {
	iv, ok := New(0, 10).Intersect(New(5, 15))
	if !ok || iv != New(5, 10) {
		t.Fatalf("Intersect = %v, %v", iv, ok)
	}
	if _, ok := New(0, 5).Intersect(New(5, 10)); ok {
		t.Fatal("adjacent extents intersected")
	}
}

func TestExtentSub(t *testing.T) {
	cases := []struct {
		e, cut Extent
		want   []Extent
	}{
		{New(0, 10), New(3, 7), []Extent{New(0, 3), New(7, 10)}},
		{New(0, 10), New(0, 10), nil},
		{New(0, 10), New(20, 30), []Extent{New(0, 10)}},
		{New(0, 10), New(0, 5), []Extent{New(5, 10)}},
		{New(0, 10), New(5, 10), []Extent{New(0, 5)}},
		{New(5, 10), New(0, 100), nil},
	}
	for _, c := range cases {
		got := c.e.Sub(c.cut)
		if len(got) != len(c.want) {
			t.Fatalf("%v.Sub(%v) = %v, want %v", c.e, c.cut, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%v.Sub(%v) = %v, want %v", c.e, c.cut, got, c.want)
			}
		}
	}
}

func TestExtentInfLen(t *testing.T) {
	e := Extent{Start: 100, End: Inf}
	if e.Len() <= 0 {
		t.Fatal("EOF extent has non-positive length")
	}
	if e.String() != "[100, EOF)" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestAlign(t *testing.T) {
	if AlignDown(4097, 4096) != 4096 || AlignDown(4096, 4096) != 4096 {
		t.Fatal("AlignDown wrong")
	}
	if AlignUp(4097, 4096) != 8192 || AlignUp(4096, 4096) != 4096 {
		t.Fatal("AlignUp wrong")
	}
	if AlignUp(Inf-1, 4096) != Inf {
		t.Fatal("AlignUp must saturate at Inf")
	}
}

func TestListInsertDisjoint(t *testing.T) {
	var l List
	l.Insert(New(0, 10), 1)
	l.Insert(New(20, 30), 2)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if !l.Covered(New(0, 10)) || !l.Covered(New(20, 30)) || l.Covered(New(0, 30)) {
		t.Fatal("coverage wrong")
	}
}

func TestListInsertNewerWins(t *testing.T) {
	var l List
	l.Insert(New(0, 100), 1)
	won := l.Insert(New(40, 60), 5)
	if len(won) != 1 || won[0] != (SNExtent{New(40, 60), 5}) {
		t.Fatalf("update set = %v", won)
	}
	ents := l.Entries()
	want := []SNExtent{{New(0, 40), 1}, {New(40, 60), 5}, {New(60, 100), 1}}
	if len(ents) != len(want) {
		t.Fatalf("entries = %v, want %v", ents, want)
	}
	for i := range want {
		if ents[i] != want[i] {
			t.Fatalf("entries = %v, want %v", ents, want)
		}
	}
}

func TestListInsertOlderLoses(t *testing.T) {
	var l List
	l.Insert(New(0, 100), 5)
	won := l.Insert(New(40, 60), 1)
	if len(won) != 0 {
		t.Fatalf("stale write produced update set %v", won)
	}
	if l.Len() != 1 || l.Entries()[0] != (SNExtent{New(0, 100), 5}) {
		t.Fatalf("entries = %v", l.Entries())
	}
}

func TestListInsertEqualSNWins(t *testing.T) {
	var l List
	l.Insert(New(0, 100), 5)
	won := l.Insert(New(40, 60), 5)
	if len(won) != 1 {
		t.Fatalf("equal-SN rewrite must win, update set = %v", won)
	}
	// Equal SNs merge back into one entry.
	if l.Len() != 1 {
		t.Fatalf("entries = %v, want single merged entry", l.Entries())
	}
}

func TestListInsertStraddleNewerIsland(t *testing.T) {
	var l List
	l.Insert(New(20, 40), 9)
	won := l.Insert(New(0, 60), 3)
	want := []SNExtent{{New(0, 20), 3}, {New(40, 60), 3}}
	if len(won) != 2 || won[0] != want[0] || won[1] != want[1] {
		t.Fatalf("update set = %v, want %v", won, want)
	}
	if !l.Covered(New(0, 60)) {
		t.Fatal("list must cover whole range")
	}
}

func TestListRemove(t *testing.T) {
	var l List
	l.Insert(New(0, 100), 1)
	l.Remove(New(30, 50))
	if l.Covered(New(30, 50)) || !l.Covered(New(0, 30)) || !l.Covered(New(50, 100)) {
		t.Fatal("Remove left wrong coverage")
	}
}

func TestListOverlappingClips(t *testing.T) {
	var l List
	l.Insert(New(0, 50), 1)
	l.Insert(New(50, 100), 2)
	got := l.Overlapping(New(25, 75))
	want := []SNExtent{{New(25, 50), 1}, {New(50, 75), 2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Overlapping = %v, want %v", got, want)
	}
}

func TestListMaxSN(t *testing.T) {
	var l List
	if _, ok := l.MaxSN(); ok {
		t.Fatal("empty list reported MaxSN")
	}
	l.Insert(New(0, 10), 3)
	l.Insert(New(20, 30), 7)
	if sn, ok := l.MaxSN(); !ok || sn != 7 {
		t.Fatalf("MaxSN = %d, %v", sn, ok)
	}
}

func TestSetNormalize(t *testing.T) {
	s := NewSet(New(10, 20), New(0, 5), New(18, 30), New(5, 7))
	// [0,5) [5,7) merge to [0,7); [10,20)+[18,30) merge to [10,30).
	if len(s) != 2 || s[0] != New(0, 7) || s[1] != New(10, 30) {
		t.Fatalf("NewSet = %v", s)
	}
}

func TestSetOverlaps(t *testing.T) {
	a := NewSet(New(0, 10), New(20, 30))
	b := NewSet(New(10, 20))
	c := NewSet(New(25, 26))
	if a.Overlaps(b) {
		t.Fatal("disjoint sets reported overlapping")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Fatal("overlap missed")
	}
	if !a.OverlapsExtent(New(5, 6)) || a.OverlapsExtent(New(10, 20)) {
		t.Fatal("OverlapsExtent wrong")
	}
}

func TestSetBounds(t *testing.T) {
	s := NewSet(New(10, 20), New(50, 60))
	b, ok := s.Bounds()
	if !ok || b != New(10, 60) {
		t.Fatalf("Bounds = %v, %v", b, ok)
	}
	if _, ok := (Set{}).Bounds(); ok {
		t.Fatal("empty set has bounds")
	}
}

// byteModel is a brute-force oracle: one SN per byte (0 = unwritten).
type byteModel []SN

func (m byteModel) insert(e Extent, sn SN) (won []SNExtent) {
	var cur *SNExtent
	for off := e.Start; off < e.End; off++ {
		if sn >= m[off] {
			m[off] = sn
			if cur != nil && cur.End == off {
				cur.End = off + 1
			} else {
				won = append(won, SNExtent{Extent{off, off + 1}, sn})
				cur = &won[len(won)-1]
			}
		} else {
			cur = nil
		}
	}
	return won
}

func sameSets(a, b []SNExtent) bool {
	// Compare per-byte expansion, since segmentation may differ.
	flat := func(s []SNExtent) map[int64]SN {
		m := map[int64]SN{}
		for _, e := range s {
			for off := e.Start; off < e.End; off++ {
				m[off] = e.SN
			}
		}
		return m
	}
	fa, fb := flat(a), flat(b)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

func TestTreeInsertMatchesModel(t *testing.T) {
	const space = 256
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var tr Tree
		model := make(byteModel, space)
		for op := 0; op < 40; op++ {
			start := rng.Int63n(space - 1)
			end := start + 1 + rng.Int63n(space-start-1)
			sn := SN(rng.Intn(8) + 1)
			gotWon := tr.Insert(Extent{start, end}, sn)
			wantWon := model.insert(Extent{start, end}, sn)
			if !sameSets(gotWon, wantWon) {
				t.Fatalf("trial %d op %d: update set mismatch\n got %v\nwant %v", trial, op, gotWon, wantWon)
			}
			if err := tr.check(); err != nil {
				t.Fatalf("trial %d op %d: invariant: %v", trial, op, err)
			}
		}
		// Final state must match byte-for-byte.
		for off := int64(0); off < space; off++ {
			got, _ := tr.MaxSNOverlapping(Extent{off, off + 1})
			if got != model[off] {
				t.Fatalf("trial %d: byte %d: tree SN %d, model %d", trial, off, got, model[off])
			}
		}
	}
}

func TestTreeCoalescing(t *testing.T) {
	var tr Tree
	tr.Insert(New(0, 10), 4)
	tr.Insert(New(10, 20), 4)
	if tr.Len() != 1 {
		t.Fatalf("adjacent same-SN entries not merged: %d entries", tr.Len())
	}
	tr.Insert(New(20, 30), 5)
	if tr.Len() != 2 {
		t.Fatalf("different-SN entries wrongly merged: %d entries", tr.Len())
	}
	// Overwriting the middle with the higher SN bridges to the right
	// neighbor.
	tr.Insert(New(5, 20), 5)
	var ents []SNExtent
	tr.Visit(func(e SNExtent) bool { ents = append(ents, e); return true })
	want := []SNExtent{{New(0, 5), 4}, {New(5, 30), 5}}
	if len(ents) != 2 || ents[0] != want[0] || ents[1] != want[1] {
		t.Fatalf("entries = %v, want %v", ents, want)
	}
}

func TestTreePickBatchAndRemoveLE(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 10; i++ {
		tr.Insert(Extent{i * 100, i*100 + 50}, SN(i+1))
	}
	batch, next := tr.PickBatch(0, 4)
	if len(batch) != 4 {
		t.Fatalf("batch len = %d", len(batch))
	}
	batch2, _ := tr.PickBatch(next, 100)
	if len(batch2) != 6 {
		t.Fatalf("second batch len = %d", len(batch2))
	}
	// Entries with SN <= 3 are removable.
	all, _ := tr.PickBatch(0, 100)
	removed := tr.RemoveLE(all, 3)
	if removed != 3 || tr.Len() != 7 {
		t.Fatalf("removed %d, len %d", removed, tr.Len())
	}
	// Stale descriptors (already removed) are skipped silently.
	if tr.RemoveLE(all, 3) != 0 {
		t.Fatal("second RemoveLE removed entries twice")
	}
}

func TestTreeEntryBytes(t *testing.T) {
	var tr Tree
	tr.Insert(New(0, 10), 1)
	tr.Insert(New(100, 110), 2)
	if tr.EntryBytes() != 2*EntrySize {
		t.Fatalf("EntryBytes = %d", tr.EntryBytes())
	}
}

func TestTreeVisitFromStops(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 20; i++ {
		tr.Insert(Extent{i * 10, i*10 + 5}, SN(i%3)+1)
	}
	count := 0
	tr.VisitFrom(100, func(e SNExtent) bool {
		if e.Start < 100 {
			t.Fatalf("VisitFrom returned entry before cursor: %v", e)
		}
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d entries, want 3", count)
	}
}

func TestTreeClear(t *testing.T) {
	var tr Tree
	tr.Insert(New(0, 100), 1)
	tr.Clear()
	if tr.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	if _, ok := tr.MaxSNOverlapping(New(0, 100)); ok {
		t.Fatal("Clear left overlapping data")
	}
}

// Property: List.Insert and Tree.Insert agree with each other on identical
// operation sequences.
func TestQuickListTreeAgree(t *testing.T) {
	type op struct {
		Start uint16
		Len   uint8
		SN    uint8
	}
	f := func(ops []op) bool {
		var l List
		var tr Tree
		for _, o := range ops {
			start := int64(o.Start % 512)
			length := int64(o.Len%64) + 1
			sn := SN(o.SN%16) + 1
			e := Extent{start, start + length}
			wonL := l.Insert(e, sn)
			wonT := tr.Insert(e, sn)
			if !sameSets(wonL, wonT) {
				return false
			}
		}
		if err := tr.check(); err != nil {
			return false
		}
		// Final coverage must agree.
		for off := int64(0); off < 600; off++ {
			le := l.Overlapping(Extent{off, off + 1})
			te := tr.Overlapping(Extent{off, off + 1})
			if len(le) != len(te) {
				return false
			}
			if len(le) == 1 && le[0].SN != te[0].SN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: coverage reported by Covered matches the union of entries.
func TestQuickListCovered(t *testing.T) {
	f := func(starts []uint8, q uint8) bool {
		var l List
		for i, s := range starts {
			st := int64(s)
			l.Insert(Extent{st, st + 10}, SN(i+1))
		}
		off := int64(q)
		want := false
		for _, e := range l.Entries() {
			if e.ContainsOff(off) {
				want = true
			}
		}
		return l.Covered(Extent{off, off + 1}) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeInsertSequential(b *testing.B) {
	var tr Tree
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := int64(i%100000) * 4096
		tr.Insert(Extent{off, off + 4096}, SN(i))
	}
}

func BenchmarkTreeInsertRandom(b *testing.B) {
	var tr Tree
	rng := rand.New(rand.NewSource(42))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := rng.Int63n(1 << 30)
		tr.Insert(Extent{off, off + 47008}, SN(i))
	}
}
