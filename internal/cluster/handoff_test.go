package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/client"
	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
)

// TestClusterHandoffMigrationRace races the handoff fast path against
// online slot migration: two clients ping-pong a hot lock (so nearly
// every exchange delegates client-to-client) while the slot's
// mastership moves between servers. The freeze must reclaim any
// delegation outstanding at the cut, no acquire may be lost or fail,
// and SNs must stay globally unique across both masters. Run under
// -race in CI.
func TestClusterHandoffMigrationRace(t *testing.T) {
	c := newCluster(t, Options{
		Servers:   2,
		Policy:    dlm.SeqDLM(),
		Partition: true,
		Handoff:   true,
		LeaseTTL:  time.Second,
	})
	cls := newClients(t, c, 2)
	ctx := context.Background()

	hot := dlm.ResourceID(findResourceOwnedBy(t, c, 0, 0))
	slot := partition.SlotOf(uint64(hot))

	type rec struct {
		id dlm.LockID
		sn extent.SN
	}
	var mu sync.Mutex
	var recs []rec
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, cl := range cls {
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := cl.Locks().Acquire(ctx, hot, dlm.NBW, extent.New(0, 4096))
				if err != nil {
					t.Errorf("client op failed during migration: %v", err)
					return
				}
				mu.Lock()
				recs = append(recs, rec{h.ID(), h.SN()})
				mu.Unlock()
				cl.Locks().Unlock(h)
			}
		}(cl)
	}

	handoffs := func() int64 {
		var n int64
		for _, s := range c.Servers {
			n += s.DLM.Stats.Handoffs.Load()
		}
		return n
	}
	distinctGrants := func() int {
		mu.Lock()
		defer mu.Unlock()
		seen := make(map[extent.SN]bool)
		n := 0
		for _, r := range recs {
			if !seen[r.sn] {
				seen[r.sn] = true
				n++
			}
		}
		return n
	}
	waitProgress := func(minGrants int, minHandoffs int64) {
		deadline := time.Now().Add(15 * time.Second)
		for (distinctGrants() < minGrants || handoffs() < minHandoffs) && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
	}
	migrate := func(from, to int) {
		mctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := c.MigrateSlot(mctx, slot, from, to); err != nil {
			t.Fatalf("migrate slot %d %d->%d: %v", slot, from, to, err)
		}
	}

	// Each migration cuts in with delegation traffic demonstrably in
	// flight, so the freeze races real outstanding handoffs.
	waitProgress(5, 2)
	migrate(0, 1)
	waitProgress(12, 4)
	migrate(1, 0)
	waitProgress(20, 6)
	close(stop)
	wg.Wait()

	// No op was lost and no SN was issued twice across the two masters
	// (same lock ID re-reporting an SN is a client cache hit).
	byID := make(map[extent.SN]dlm.LockID)
	for _, r := range recs {
		if prev, ok := byID[r.sn]; ok && prev != r.id {
			t.Fatalf("SN %d issued to two locks (%d and %d)", r.sn, prev, r.id)
		}
		byID[r.sn] = r.id
	}
	if grants := distinctGrants(); grants < 20 {
		t.Fatalf("only %d distinct grants recorded; workers were starved", grants)
	}
	if handoffs() < 6 {
		t.Fatalf("only %d handoffs across the run; the fast path never engaged", handoffs())
	}

	// Drain the clients, then every delegation must be resolved: each
	// engine consistent, the slot home, and no delegated residue (a
	// single granted lock at most on the hot resource).
	for _, cl := range cls {
		if err := cl.Shutdown(ctx); err != nil {
			t.Fatalf("client shutdown: %v", err)
		}
	}
	for i, s := range c.Servers {
		if s.DLM.Stats.SlotMigrationsOut.Load() < 1 || s.DLM.Stats.SlotMigrationsIn.Load() < 1 {
			t.Fatalf("server %d migrations in/out = %d/%d, want >= 1 each",
				i, s.DLM.Stats.SlotMigrationsIn.Load(), s.DLM.Stats.SlotMigrationsOut.Load())
		}
		if err := s.DLM.CheckInvariants(); err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}
	if err := c.Servers[0].DLM.CheckMaster(hot); err != nil {
		t.Fatalf("slot %d not back home on server 0: %v", slot, err)
	}
}
