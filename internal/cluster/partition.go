package cluster

import (
	"context"
	"fmt"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
	"ccpfs/internal/wire"
)

// This file is the cluster's partition control plane (DESIGN.md §12):
// the kill-one failover entry point and the online slot-migration
// orchestrator (freeze at the source → lease transfer → install at the
// destination), plus the remote routing hooks the servers' extent-cache
// cleanup daemons use once lock mastership and data placement diverge.

// lockMasterFor resolves the index of the server currently mastering a
// stripe's slot; ok is false when the slot is unowned (or its recorded
// holder is out of range).
func (c *Cluster) lockMasterFor(stripe uint64) (int, bool) {
	if c.Coord == nil {
		return 0, false
	}
	owner := c.Coord.Snapshot().OwnerOf(stripe)
	if owner < 0 || int(owner) >= len(c.Servers) {
		return 0, false
	}
	return int(owner), true
}

// remoteMinSN answers a storing server's min-SN query at the stripe's
// current lock master. In-process call: the cluster stands in for the
// server-to-server RPC the paper's deployment would use.
func (c *Cluster) remoteMinSN(stripe uint64, rng extent.Extent) (extent.SN, bool) {
	idx, ok := c.lockMasterFor(stripe)
	if !ok {
		return 0, false
	}
	return c.Servers[idx].DLM.MinSN(dlm.ResourceID(stripe), rng)
}

// remoteForceSync reclaims a stripe's outstanding write locks at its
// current lock master: a whole-range read lock as the server-local
// client 0, immediately released — the same probe the master would run
// locally.
func (c *Cluster) remoteForceSync(stripe uint64) {
	idx, ok := c.lockMasterFor(stripe)
	if !ok {
		return
	}
	srv := c.Servers[idx]
	mode := c.opts.Policy.MapMode(dlm.PR)
	g, err := srv.DLM.Lock(context.Background(), dlm.Request{
		Resource: dlm.ResourceID(stripe),
		Client:   0,
		Mode:     mode,
		Range:    extent.New(0, extent.Inf),
	})
	if err != nil {
		return
	}
	srv.DLM.Release(dlm.ResourceID(stripe), g.LockID)
}

// KillServer abruptly stops server i — the kill-one-of-N failover
// scenario. The dead server stops renewing its slot leases; once they
// lapse, a surviving server's lease daemon claims the slots, bumps the
// epoch, and rebuilds their lock tables from slot-filtered client
// replay. The server stays in Servers (indices are partition-map
// identities) but serves nothing. Idempotent.
func (c *Cluster) KillServer(i int) {
	if c.admin != nil {
		c.admin[i].Close()
	}
	c.Servers[i].Close()
}

// MigrateSlot moves one hash slot's mastership between two live
// servers while the cluster serves traffic: freeze-and-export at the
// source (new requests refused with ErrNotOwner from here on), lease
// transfer at the coordinator (epoch bump), install at the destination
// (exact sequencer and granted-lock transfer, so SNs issued by the new
// master continue the old master's sequence). Clients retry redirected
// RPCs transparently; no operation fails.
//
// A freeze that succeeds but whose transfer or install fails leaves
// the slot mastered by nobody — the failover path (lease expiry +
// takeover replay) then recovers it, so the error is returned rather
// than rolled back.
func (c *Cluster) MigrateSlot(ctx context.Context, slot partition.Slot, from, to int) error {
	if c.Coord == nil {
		return fmt.Errorf("cluster: not partitioned")
	}
	if from < 0 || from >= len(c.Servers) || to < 0 || to >= len(c.Servers) || from == to {
		return fmt.Errorf("cluster: migrate slot %d: bad servers %d -> %d", slot, from, to)
	}
	var st wire.SlotState
	if err := c.admin[from].Call(ctx, wire.MSlotFreeze, &wire.SlotFreezeRequest{Slot: uint32(slot)}, &st); err != nil {
		return fmt.Errorf("cluster: freeze slot %d at server %d: %w", slot, from, err)
	}
	epoch, _, err := c.Coord.Transfer(slot, int32(from), int32(to))
	if err != nil {
		return fmt.Errorf("cluster: transfer slot %d: %w", slot, err)
	}
	if err := c.admin[to].Call(ctx, wire.MSlotInstall, &wire.SlotInstall{Epoch: epoch, State: st}, nil); err != nil {
		return fmt.Errorf("cluster: install slot %d at server %d: %w", slot, to, err)
	}
	return nil
}
