package cluster

import (
	"bytes"
	"context"
	"io"
	"testing"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extcache"
	"ccpfs/internal/extent"
)

// TestServerRecoveryEndToEnd drives the full §IV-C2 flow over the real
// RPC path: clients hold locks with dirty data, the data server's DLM
// crashes (state wiped), Recover() gathers lock records from the
// connected clients and restores them, the extent log rebuilds a fresh
// extent cache, and IO continues correctly afterwards.
func TestServerRecoveryEndToEnd(t *testing.T) {
	c := newCluster(t, Options{Servers: 1, Policy: dlm.SeqDLM(), ExtentLog: true})
	cls := newClients(t, c, 2)
	srv := c.Servers[0]

	f0, err := cls[0].Create("/rec", 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Client 0 writes and flushes some data (populating the extent log);
	// client 1 also writes, leaving its lock cached and data dirty.
	data0 := pattern(1, 40_000)
	if _, err := f0.WriteAt(data0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f0.Fsync(); err != nil {
		t.Fatal(err)
	}
	f1, err := cls[1].Open("/rec")
	if err != nil {
		t.Fatal(err)
	}
	data1 := pattern(2, 40_000)
	if _, err := f1.WriteAt(data1, 40_000); err != nil {
		t.Fatal(err)
	}

	rid := uint64(f0.Resource(0))
	liveSN, _ := srv.Cache.MaxSN(rid, extent.New(0, 40_000))
	log := srv.Cache.Log(rid)
	if len(log) == 0 {
		t.Fatal("extent log empty before crash")
	}

	// --- crash: the DLM and extent cache lose all state.
	srv.DLM.Reset()
	srv.Cache.Replay(rid, nil) // wiped
	if srv.DLM.GrantedCount(f0.Resource(0)) != 0 {
		t.Fatal("reset incomplete")
	}

	// --- recovery: gather lock records from clients, replay the log.
	if err := srv.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Cache.Replay(rid, log)

	if got := srv.DLM.GrantedCount(f0.Resource(0)); got == 0 {
		t.Fatal("no locks restored")
	}
	if sn, ok := srv.Cache.MaxSN(rid, extent.New(0, 40_000)); !ok || sn != liveSN {
		t.Fatalf("replayed extent cache SN = %d, want %d", sn, liveSN)
	}

	// --- life goes on: client 1's dirty data flushes under its restored
	// lock when a reader forces it, and both regions read back intact.
	got := make([]byte, 40_000)
	if _, err := f0.ReadAt(got, 40_000); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data1) {
		t.Fatal("client 1's post-recovery flush corrupted")
	}
	if _, err := f0.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data0) {
		t.Fatal("pre-crash flushed data lost")
	}
}

// TestExtentLogRebuildMatchesLiveCache replays a stripe's extent log
// into a fresh cache and compares against the live one across the whole
// written range — recovery must reconstruct ordering state exactly.
func TestExtentLogRebuildMatchesLiveCache(t *testing.T) {
	c := newCluster(t, Options{Servers: 1, Policy: dlm.SeqDLM(), ExtentLog: true})
	cls := newClients(t, c, 3)
	if _, err := cls[0].Create("/log", 1<<20, 1); err != nil {
		t.Fatal(err)
	}
	// Conflicting unaligned writes from three clients create a messy,
	// multi-SN extent cache.
	for k := 0; k < 6; k++ {
		for i, cl := range cls {
			f, err := cl.Open("/log")
			if err != nil {
				t.Fatal(err)
			}
			off := int64(k*3+i) * 5000
			if _, err := f.WriteAt(pattern(byte(i+1), 6000), off); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, cl := range cls {
		cl.Locks().ReleaseAll(context.Background())
	}

	srv := c.Servers[0]
	f, _ := cls[0].Open("/log")
	rid := uint64(f.Resource(0))
	rebuilt := extcache.New(0, false)
	rebuilt.Replay(rid, srv.Cache.Log(rid))
	for off := int64(0); off < 120_000; off += 1000 {
		want, okW := srv.Cache.MaxSN(rid, extent.Span(off, 1000))
		got, okG := rebuilt.MaxSN(rid, extent.Span(off, 1000))
		if okW != okG || want != got {
			t.Fatalf("offset %d: rebuilt SN %d/%v, live %d/%v", off, got, okG, want, okW)
		}
	}
}
