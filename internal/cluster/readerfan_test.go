package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccpfs/internal/client"
	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
)

// TestClusterReaderFanMigrationRace races the reader fan-out path
// against online slot migration: one writer and four readers rotate a
// hot resource (writer displaces the cohort with a gather, the cohort
// re-forms from pre-armed handback leases propagated peer-to-peer)
// while the slot's mastership moves between servers. The freeze must
// force-resolve every broadcast delegation outstanding at the cut — a
// cohort is up to five in-flight delegations at once, not the single
// successor the plain handoff test races — no acquire may be lost or
// fail, writer SNs must stay strictly increasing across both masters,
// and every reader grant must carry the SN order of the writer grant
// it followed. Run under -race in CI.
func TestClusterReaderFanMigrationRace(t *testing.T) {
	const readers = 4
	c := newCluster(t, Options{
		Servers:      2,
		Policy:       dlm.SeqDLM(),
		Partition:    true,
		Handoff:      true,
		ReaderFanout: true,
		LeaseTTL:     time.Second,
	})
	cls := newClients(t, c, 1+readers)
	ctx := context.Background()

	hot := dlm.ResourceID(findResourceOwnedBy(t, c, 0, 0))
	slot := partition.SlotOf(uint64(hot))
	rng := extent.New(0, 4096)

	type rec struct {
		id dlm.LockID
		sn extent.SN
	}
	var mu sync.Mutex
	var writerRecs []rec
	var rounds atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		writer := cls[0]
		for {
			select {
			case <-stop:
				return
			default:
			}
			h, err := writer.Locks().Acquire(ctx, hot, dlm.NBW, rng)
			if err != nil {
				t.Errorf("writer acquire failed during migration: %v", err)
				return
			}
			mu.Lock()
			writerRecs = append(writerRecs, rec{h.ID(), h.SN()})
			mu.Unlock()
			writer.Locks().Unlock(h)
			rounds.Add(1)
		}
	}()
	for _, cl := range cls[1:] {
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := cl.Locks().Acquire(ctx, hot, dlm.PR, rng)
				if err != nil {
					t.Errorf("reader acquire failed during migration: %v", err)
					return
				}
				cl.Locks().Unlock(h)
			}
		}(cl)
	}

	fanTraffic := func() (gathers, leases int64) {
		for _, s := range c.Servers {
			gathers += s.DLM.Stats.Gathers.Load()
			leases += s.DLM.Stats.LeaseGrants.Load()
		}
		return
	}
	waitProgress := func(minRounds, minGathers int64) {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			g, _ := fanTraffic()
			if rounds.Load() >= minRounds && g >= minGathers {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	migrate := func(from, to int) {
		mctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := c.MigrateSlot(mctx, slot, from, to); err != nil {
			t.Fatalf("migrate slot %d %d->%d: %v", slot, from, to, err)
		}
	}

	// Each migration cuts in with fan delegations demonstrably in
	// flight, so the freeze races whole cohorts, not lone successors.
	waitProgress(5, 2)
	migrate(0, 1)
	waitProgress(12, 5)
	migrate(1, 0)
	waitProgress(20, 8)
	close(stop)
	wg.Wait()

	// Writer grants serialize the rotation: their SNs must never
	// regress across the migration cuts, and a repeated SN is legal only
	// as a cache hit on the same lock (a repeat under a fresh lock ID
	// means the importing master re-issued sequencer state).
	mu.Lock()
	for i := 1; i < len(writerRecs); i++ {
		prev, cur := writerRecs[i-1], writerRecs[i]
		if cur.sn < prev.sn || (cur.sn == prev.sn && cur.id != prev.id) {
			t.Fatalf("writer SN %d (lock %d) after SN %d (lock %d) at round %d",
				cur.sn, cur.id, prev.sn, prev.id, i)
		}
	}
	nRounds := len(writerRecs)
	mu.Unlock()
	if nRounds < 20 {
		t.Fatalf("only %d writer rounds; the rotation starved", nRounds)
	}
	if g, l := fanTraffic(); g < 8 || l < 8 {
		t.Fatalf("gathers=%d leaseGrants=%d across the run; the fan path never engaged", g, l)
	}

	// Drain the clients, then every delegation — including cohorts the
	// freezes force-resolved — must be settled: engines consistent, the
	// slot back home, migrations seen on both servers.
	for _, cl := range cls {
		if err := cl.Shutdown(ctx); err != nil {
			t.Fatalf("client shutdown: %v", err)
		}
	}
	for i, s := range c.Servers {
		if s.DLM.Stats.SlotMigrationsOut.Load() < 1 || s.DLM.Stats.SlotMigrationsIn.Load() < 1 {
			t.Fatalf("server %d migrations in/out = %d/%d, want >= 1 each",
				i, s.DLM.Stats.SlotMigrationsIn.Load(), s.DLM.Stats.SlotMigrationsOut.Load())
		}
		if err := s.DLM.CheckInvariants(); err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}
	if err := c.Servers[0].DLM.CheckMaster(hot); err != nil {
		t.Fatalf("slot %d not back home on server 0: %v", slot, err)
	}
}
