package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/sim"
	"ccpfs/internal/wire"
)

// TestClientShutdownFlushesDirtyPages: a graceful client Shutdown writes
// back every dirty page and publishes the file size, so a second client
// observes the data without the writer ever calling Fsync.
func TestClientShutdownFlushesDirtyPages(t *testing.T) {
	c := newCluster(t, Options{Servers: 2, Policy: dlm.SeqDLM()})
	w, err := c.NewClient("writer")
	if err != nil {
		t.Fatal(err)
	}
	f, err := w.Create("/drain", 64<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(9, 200_000) // spans both stripes
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// No Fsync: the data is dirty in the writer's cache. Shutdown must
	// flush it, release the cached locks, and push the size register.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}

	r, err := c.NewClient("reader")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g, err := r.Open("/drain")
	if err != nil {
		t.Fatal(err)
	}
	if sz, err := g.Size(); err != nil || sz != int64(len(data)) {
		t.Fatalf("Size = %d, %v; want %d (size not pushed at drain)", sz, err, len(data))
	}
	got := make([]byte, len(data))
	if _, err := g.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatch after writer drain")
	}
}

// TestClusterShutdownGraceful: draining the whole cluster after clients
// detach returns cleanly within its budget.
func TestClusterShutdownGraceful(t *testing.T) {
	c := newCluster(t, Options{Servers: 2, Policy: dlm.SeqDLM()})
	cl, err := c.NewClient("writer")
	if err != nil {
		t.Fatal(err)
	}
	f, err := cl.Create("/g", 64<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pattern(3, 100_000), 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Shutdown(ctx); err != nil {
		t.Fatalf("client Shutdown = %v", err)
	}
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("cluster Shutdown = %v", err)
	}
}

// TestCancelBlockedAcquireWithLatency is the issue's acceptance
// scenario: over a fabric with simulated latency, a blocked lock acquire
// whose context expires returns promptly (not after the conflicting
// holder gives the lock up), matches the typed timeout, leaves no zombie
// queue entry, and a subsequent acquire succeeds once the holder
// releases.
func TestCancelBlockedAcquireWithLatency(t *testing.T) {
	c := newCluster(t, Options{
		Servers:  1,
		Policy:   dlm.SeqDLM(),
		Hardware: sim.Hardware{RTT: 2 * time.Millisecond},
	})
	cls := newClients(t, c, 3)
	res := dlm.ResourceID(7)
	whole := extent.New(0, extent.Inf)

	// Client 0 holds a PW lock pinned (no Unlock), so the revocation the
	// blocked request triggers cannot complete; PW admits no early grant,
	// so the waiter stays queued until its deadline.
	h0, err := cls[0].Locks().Acquire(context.Background(), res, dlm.PW, whole)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cls[1].Locks().Acquire(ctx, res, dlm.PW, whole)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Acquire = %v, want context.DeadlineExceeded", err)
	}
	if !errors.Is(err, wire.ErrTimeout) {
		t.Fatalf("blocked Acquire = %v, want wire.ErrTimeout match", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("blocked Acquire returned after %v, want within the deadline's order", elapsed)
	}

	// No zombie entry server-side: the withdrawal raced only network
	// latency, so poll briefly.
	srv := c.Servers[0]
	deadline := time.Now().Add(2 * time.Second)
	for srv.DLM.QueueLen(res) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue has %d entries after cancellation, want 0", srv.DLM.QueueLen(res))
		}
		time.Sleep(time.Millisecond)
	}

	// Release the pin; the deferred revocation cancels the lock, and a
	// fresh acquire by a third client succeeds.
	cls[0].Locks().Unlock(h0)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	h2, err := cls[2].Locks().Acquire(ctx2, res, dlm.PW, whole)
	if err != nil {
		t.Fatalf("acquire after release = %v", err)
	}
	cls[2].Locks().Unlock(h2)
}
