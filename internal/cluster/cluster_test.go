package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/client"
	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/pagecache"
	"ccpfs/internal/sim"
)

func newCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	if opts.Hardware == (sim.Hardware{}) {
		opts.Hardware = sim.Fast()
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func newClients(t *testing.T, c *Cluster, n int) []*client.Client {
	t.Helper()
	cls, err := c.Clients(n, "client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, cl := range cls {
			cl.Close()
		}
	})
	return cls
}

// pattern produces deterministic content distinguishable by seed.
func pattern(seed byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seed ^ byte(i*7)
	}
	return out
}

func TestWriteReadSingleClient(t *testing.T) {
	for _, pol := range []dlm.Policy{dlm.SeqDLM(), dlm.Basic(), dlm.Lustre()} {
		t.Run(pol.Name, func(t *testing.T) {
			c := newCluster(t, Options{Servers: 2, Policy: pol})
			cl := newClients(t, c, 1)[0]
			f, err := cl.Create("/f", 64<<10, 2)
			if err != nil {
				t.Fatal(err)
			}
			data := pattern(1, 200_000) // spans both stripes
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("read back mismatch (same client, cached)")
			}
			if sz, _ := f.Size(); sz != 0 {
				// Size is published at flush time; before any flush the
				// register may still be zero — that's the documented
				// client-cache visibility rule. Force it now.
				if err := f.Fsync(); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Fsync(); err != nil {
				t.Fatal(err)
			}
			if sz, _ := f.Size(); sz != int64(len(data)) {
				t.Fatalf("size = %d, want %d", sz, len(data))
			}
		})
	}
}

func TestCoherenceAcrossClients(t *testing.T) {
	for _, pol := range []dlm.Policy{dlm.SeqDLM(), dlm.Basic()} {
		t.Run(pol.Name, func(t *testing.T) {
			c := newCluster(t, Options{Servers: 2, Policy: pol})
			cls := newClients(t, c, 2)
			a, b := cls[0], cls[1]
			fa, err := a.Create("/shared", 64<<10, 1)
			if err != nil {
				t.Fatal(err)
			}
			data := pattern(9, 100_000)
			if _, err := fa.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			// No fsync: B's read lock must force A's flush (coherence via
			// the DLM, the whole point of the system).
			fb, err := b.Open("/shared")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			n, err := fb.ReadAt(got, 0)
			if err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if n != len(data) || !bytes.Equal(got[:n], data) {
				t.Fatalf("cross-client read: n=%d, mismatch=%v", n, !bytes.Equal(got[:n], data[:n]))
			}
		})
	}
}

// TestDataSafetyOverlap is the paper's §V-B1 overlapping-writes check
// (Fig. 7 workload): every client performs two full-range writes with
// distinct contents; after a barrier, every client reads the range back.
// All reads must agree, and the winning content must be some client's
// SECOND write — the traditional lock semantics SeqDLM promises to keep.
func TestDataSafetyOverlap(t *testing.T) {
	cases := []struct {
		name    string
		stripes uint32
	}{
		{"1stripe_NBW", 1},
		{"2stripes_BW_conversion", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const nclients = 8
			const size = 128 << 10
			c := newCluster(t, Options{Servers: int(tc.stripes), Policy: dlm.SeqDLM()})
			cls := newClients(t, c, nclients)
			f0, err := cls[0].Create("/overlap", 64<<10, tc.stripes)
			if err != nil {
				t.Fatal(err)
			}
			_ = f0
			var wg sync.WaitGroup
			for i, cl := range cls {
				wg.Add(1)
				go func(i int, cl *client.Client) {
					defer wg.Done()
					f, err := cl.Open("/overlap")
					if err != nil {
						t.Errorf("open: %v", err)
						return
					}
					for w := 0; w < 2; w++ {
						// Seed encodes (client, write index); second writes
						// have odd seeds.
						seed := byte(i*2 + w + 1)
						if _, err := f.WriteAt(pattern(seed, size), 0); err != nil {
							t.Errorf("write: %v", err)
							return
						}
					}
				}(i, cl)
			}
			wg.Wait() // the MPI_Barrier of the paper's test

			var first []byte
			for i, cl := range cls {
				f, err := cl.Open("/overlap")
				if err != nil {
					t.Fatal(err)
				}
				got := make([]byte, size)
				n, err := f.ReadAt(got, 0)
				if err != nil && err != io.EOF {
					t.Fatal(err)
				}
				if n != size {
					t.Fatalf("client %d read %d bytes, want %d", i, n, size)
				}
				if first == nil {
					first = got
					continue
				}
				if !bytes.Equal(first, got) {
					t.Fatalf("client %d read different content than client 0", i)
				}
			}
			// The winner must be some client's second write (seed odd →
			// seeds 2,4,...  are w=1: seed = i*2+w+1 → w=1 gives even?).
			// seed = i*2 + w + 1: w=1 → i*2+2, always even; w=0 → odd.
			matched := false
			for i := 0; i < nclients; i++ {
				if bytes.Equal(first, pattern(byte(i*2+2), size)) {
					matched = true
					break
				}
			}
			if !matched {
				// Diagnose: was it a first write?
				for i := 0; i < nclients; i++ {
					if bytes.Equal(first, pattern(byte(i*2+1), size)) {
						t.Fatalf("final content is client %d's FIRST write — ordering broken", i)
					}
				}
				t.Fatal("final content matches no client's write — data corrupted")
			}
		})
	}
}

// TestIORHardReadback is the paper's §V-B1 first data-safety check: the
// IO500 IOR-hard pattern (N-1 strided, 47,008-byte unaligned writes)
// written concurrently and read back from different clients.
func TestIORHardReadback(t *testing.T) {
	const writeSize = 47008
	const nclients = 4
	const perClient = 8
	for _, stripes := range []uint32{1, 2, 4} {
		t.Run(fmt.Sprintf("%dstripes", stripes), func(t *testing.T) {
			c := newCluster(t, Options{Servers: 2, Policy: dlm.SeqDLM()})
			cls := newClients(t, c, nclients)
			if _, err := cls[0].Create("/ior", 1<<20, stripes); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i, cl := range cls {
				wg.Add(1)
				go func(i int, cl *client.Client) {
					defer wg.Done()
					f, err := cl.Open("/ior")
					if err != nil {
						t.Errorf("open: %v", err)
						return
					}
					for k := 0; k < perClient; k++ {
						// N-1 strided: iteration k, rank i.
						off := int64(k*nclients+i) * writeSize
						if _, err := f.WriteAt(pattern(byte(i+1), writeSize), off); err != nil {
							t.Errorf("write: %v", err)
							return
						}
					}
				}(i, cl)
			}
			wg.Wait()

			// Read back from a different client than wrote each block.
			for k := 0; k < perClient; k++ {
				for i := 0; i < nclients; i++ {
					reader := cls[(i+1)%nclients]
					f, err := reader.Open("/ior")
					if err != nil {
						t.Fatal(err)
					}
					off := int64(k*nclients+i) * writeSize
					got := make([]byte, writeSize)
					if _, err := f.ReadAt(got, off); err != nil && err != io.EOF {
						t.Fatal(err)
					}
					if !bytes.Equal(got, pattern(byte(i+1), writeSize)) {
						t.Fatalf("stripes=%d block (k=%d rank=%d) corrupted", stripes, k, i)
					}
				}
			}
		})
	}
}

func TestMultiStripeSpanningWrite(t *testing.T) {
	c := newCluster(t, Options{Servers: 4, Policy: dlm.SeqDLM()})
	cl := newClients(t, c, 1)[0]
	f, err := cl.Create("/span", 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	// One write spanning all four stripes twice over.
	data := pattern(3, 4096*9)
	if _, err := f.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 100); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("spanning write round trip failed")
	}
}

func TestConcurrentAppends(t *testing.T) {
	c := newCluster(t, Options{Servers: 2, Policy: dlm.SeqDLM()})
	const nclients = 4
	const appends = 10
	const chunk = 5000
	cls := newClients(t, c, nclients)
	if _, err := cls[0].Create("/log", 64<<10, 2); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, cl := range cls {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			f, err := cl.Open("/log")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			for k := 0; k < appends; k++ {
				if _, err := f.Append(pattern(byte(i+1), chunk)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	f, err := cls[0].Open("/log")
	if err != nil {
		t.Fatal(err)
	}
	f.Fsync()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != nclients*appends*chunk {
		t.Fatalf("size = %d, want %d (appends lost or overlapped)", size, nclients*appends*chunk)
	}
	// Every chunk boundary must contain exactly one client's pattern.
	buf := make([]byte, chunk)
	for off := int64(0); off < size; off += chunk {
		if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		ok := false
		for i := 0; i < nclients; i++ {
			if bytes.Equal(buf, pattern(byte(i+1), chunk)) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("chunk at %d is interleaved garbage — append not atomic", off)
		}
	}
}

func TestTruncate(t *testing.T) {
	c := newCluster(t, Options{Servers: 1, Policy: dlm.SeqDLM()})
	cl := newClients(t, c, 1)[0]
	f, err := cl.Create("/t", 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(pattern(1, 10000), 0)
	if err := f.Truncate(5000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10000)
	n, err := f.ReadAt(buf, 0)
	if n != 5000 || err != io.EOF {
		t.Fatalf("post-truncate read n=%d err=%v, want 5000, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 5000); err != io.EOF {
		t.Fatalf("read at truncated offset: err=%v, want EOF", err)
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestReadAtEOFSemantics(t *testing.T) {
	c := newCluster(t, Options{Servers: 1, Policy: dlm.SeqDLM()})
	cl := newClients(t, c, 1)[0]
	f, _ := cl.Create("/e", 64<<10, 1)
	f.WriteAt(pattern(1, 100), 0)
	f.Fsync()
	buf := make([]byte, 200)
	n, err := f.ReadAt(buf, 0)
	if n != 100 || err != io.EOF {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("read at EOF: %v", err)
	}
	if n, err := f.ReadAt(nil, 0); n != 0 || err != nil {
		t.Fatalf("empty read: n=%d err=%v", n, err)
	}
}

func TestVoluntaryFlushDaemon(t *testing.T) {
	c := newCluster(t, Options{
		Servers:       1,
		Policy:        dlm.SeqDLM(),
		PageCache:     pagecache.Config{MinDirty: 1024},
		FlushInterval: 5 * time.Millisecond,
	})
	cl := newClients(t, c, 1)[0]
	f, _ := cl.Create("/d", 64<<10, 1)
	f.WriteAt(pattern(1, 50_000), 0)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.FlushedBytes() < 50_000 {
		time.Sleep(5 * time.Millisecond)
	}
	if c.FlushedBytes() < 50_000 {
		t.Fatalf("daemon flushed %d bytes, want 50000", c.FlushedBytes())
	}
	// The lock must still be cached (voluntary flush releases nothing).
	if cl.Locks().CachedLocks(f.Resource(0)) == 0 {
		t.Fatal("voluntary flush dropped the lock")
	}
}

func TestDatatypeWriteMulti(t *testing.T) {
	c := newCluster(t, Options{Servers: 2, Policy: dlm.Datatype()})
	cls := newClients(t, c, 2)
	if _, err := cls[0].Create("/dt", 64<<10, 2); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, cl := range cls {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			f, err := cl.Open("/dt")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			var ops []client.WriteOp
			for k := 0; k < 10; k++ {
				off := int64(k*2+i) * 1000
				ops = append(ops, client.WriteOp{Off: off, Data: pattern(byte(i+1), 1000)})
			}
			if err := f.WriteMulti(ops); err != nil {
				t.Errorf("WriteMulti: %v", err)
			}
		}(i, cl)
	}
	wg.Wait()
	f, _ := cls[0].Open("/dt")
	buf := make([]byte, 1000)
	for k := 0; k < 10; k++ {
		for i := 0; i < 2; i++ {
			off := int64(k*2+i) * 1000
			if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, pattern(byte(i+1), 1000)) {
				t.Fatalf("datatype block (k=%d, i=%d) corrupted", k, i)
			}
		}
	}
}

func TestWriteMultiSeqDLM(t *testing.T) {
	c := newCluster(t, Options{Servers: 2, Policy: dlm.SeqDLM()})
	cl := newClients(t, c, 1)[0]
	f, _ := cl.Create("/wm", 4096, 2)
	ops := []client.WriteOp{
		{Off: 0, Data: pattern(1, 1000)},
		{Off: 5000, Data: pattern(2, 1000)},
		{Off: 9000, Data: pattern(3, 1000)},
	}
	if err := f.WriteMulti(ops); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		buf := make([]byte, len(op.Data))
		if _, err := f.ReadAt(buf, op.Off); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, op.Data) {
			t.Fatalf("piece at %d corrupted", op.Off)
		}
	}
}

func TestOpenMissingAndRemove(t *testing.T) {
	c := newCluster(t, Options{Servers: 1, Policy: dlm.SeqDLM()})
	cl := newClients(t, c, 1)[0]
	if _, err := cl.Open("/missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if _, err := cl.Create("/x", 4096, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create("/x", 4096, 1); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if f, err := cl.OpenOrCreate("/x", 4096, 1); err != nil || f == nil {
		t.Fatalf("OpenOrCreate existing: %v", err)
	}
	if f, err := cl.OpenOrCreate("/y", 4096, 1); err != nil || f == nil {
		t.Fatalf("OpenOrCreate new: %v", err)
	}
	if err := cl.Remove("/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("/x"); err == nil {
		t.Fatal("open after remove succeeded")
	}
}

func TestExtentCacheDrainsAfterRelease(t *testing.T) {
	c := newCluster(t, Options{Servers: 1, Policy: dlm.SeqDLM()})
	cls := newClients(t, c, 2)
	f0, _ := cls[0].Create("/cc", 64<<10, 1)
	f1, err := cls[1].Open("/cc")
	if err != nil {
		t.Fatal(err)
	}
	// Conflicting writes populate the extent cache.
	for k := 0; k < 5; k++ {
		f0.WriteAt(pattern(1, 5000), int64(k*10000))
		f1.WriteAt(pattern(2, 5000), int64(k*10000+5000))
	}
	cls[0].Locks().ReleaseAll(context.Background())
	cls[1].Locks().ReleaseAll(context.Background())
	if c.ExtCacheEntries() == 0 {
		t.Fatal("extent cache empty after conflicting flushes (nothing recorded?)")
	}
	// With all locks released, cleanup sweeps backed by the real DLM
	// mSN query can drop every entry.
	srv := c.Servers[0]
	minSN := func(stripe uint64, rng extent.Extent) (extent.SN, bool) {
		return srv.DLM.MinSN(dlm.ResourceID(stripe), rng)
	}
	for i := 0; i < 20 && srv.Cache.Entries() > 0; i++ {
		srv.Cache.CleanupRound(minSN)
	}
	if got := srv.Cache.Entries(); got != 0 {
		t.Fatalf("%d extent cache entries survived cleanup with no locks held", got)
	}
}

func TestClientIDsUnique(t *testing.T) {
	c := newCluster(t, Options{Servers: 1, Policy: dlm.SeqDLM()})
	a, err := c.NewClient("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := c.NewClient("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Locks().ID() == b.Locks().ID() {
		t.Fatal("cluster assigned duplicate client IDs")
	}
}

// TestExtCacheDaemonBoundsEntries keeps the server extent cache under
// its entry budget while early-granted conflicting writes hammer it:
// the cleanup task (and, if entries are pinned, forced synchronization)
// must hold the line — the §IV-B size-control mechanism end to end.
func TestExtCacheDaemonBoundsEntries(t *testing.T) {
	c := newCluster(t, Options{
		Servers:           1,
		Policy:            dlm.SeqDLM(),
		ExtCacheThreshold: 64,
		CleanupInterval:   2 * time.Millisecond,
	})
	cls := newClients(t, c, 4)
	if _, err := cls[0].Create("/bound", 1<<20, 1); err != nil {
		t.Fatal(err)
	}
	// Non-contiguous conflicting writes create many distinct extents.
	var wg sync.WaitGroup
	for i, cl := range cls {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			f, err := cl.Open("/bound")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			for k := 0; k < 60; k++ {
				off := int64(k*len(cls)+i) * 9000
				if _, err := f.WriteAt(pattern(byte(i+1), 5000), off); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	for _, cl := range cls {
		cl.Locks().ReleaseAll(context.Background())
	}
	// With all locks released, the daemon must get the cache under
	// budget.
	srv := c.Servers[0]
	waitFor(t, "extent cache under budget", func() bool {
		return srv.Cache.Entries() <= 64
	})
	ins, cleaned, _ := srv.Cache.Stats()
	if ins == 0 || cleaned == 0 {
		t.Fatalf("daemon idle: inserts=%d cleaned=%d", ins, cleaned)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestAbruptClientDeath: a client dies holding cached write locks with
// unflushed data. Its dirty cache is lost (the §IV-C1 convention), but
// the system must keep serving: conflicting requests get force-released
// grants and other clients' data stays intact.
func TestAbruptClientDeath(t *testing.T) {
	c := newCluster(t, Options{Servers: 1, Policy: dlm.SeqDLM()})
	survivorList := newClients(t, c, 1)
	survivor := survivorList[0]

	doomed, err := c.NewClient("doomed")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := survivor.Create("/abrupt", 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(pattern(1, 20_000), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Fsync(); err != nil {
		t.Fatal(err)
	}
	survivor.Locks().ReleaseAll(context.Background())

	fd, err := doomed.Open("/abrupt")
	if err != nil {
		t.Fatal(err)
	}
	// Doomed writes over part of the survivor's data but never flushes.
	if _, err := fd.WriteAt(pattern(9, 10_000), 5_000); err != nil {
		t.Fatal(err)
	}
	// Kill the connections without flushing or releasing.
	doomed.Kill()

	// The survivor can still lock and read the file; the doomed client's
	// unflushed overwrite is gone, the original data intact.
	got := make([]byte, 20_000)
	if _, err := fs.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(1, 20_000)) {
		t.Fatal("survivor data corrupted by dead client")
	}
	// And new writes proceed (the dead client's locks were force-released).
	if _, err := fs.WriteAt(pattern(3, 1_000), 0); err != nil {
		t.Fatal(err)
	}
}
