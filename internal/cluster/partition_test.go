package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/client"
	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
)

// findResourceOwnedBy returns a resource ID (> after) whose slot is
// currently mastered by the given server.
func findResourceOwnedBy(t *testing.T, c *Cluster, server int, after uint64) uint64 {
	t.Helper()
	for rid := after + 1; rid < after+100_000; rid++ {
		if owner, ok := c.lockMasterFor(rid); ok && owner == server {
			return rid
		}
	}
	t.Fatalf("no resource mastered by server %d", server)
	return 0
}

// TestClusterKillOneFailover kills one of four lock servers under held
// locks and verifies the paper's failover story end to end: the dead
// server's slot leases lapse, survivors claim them (epoch bump) and
// rebuild the lock tables from slot-filtered client replay, and the
// clients' redirected RPCs succeed at the successors — with sequencers
// resuming above every pre-kill grant and no slot mastered twice.
func TestClusterKillOneFailover(t *testing.T) {
	const nServers = 4
	c := newCluster(t, Options{
		Servers:   nServers,
		Policy:    dlm.SeqDLM(),
		Partition: true,
		LeaseTTL:  300 * time.Millisecond,
	})
	cls := newClients(t, c, 3)
	ctx := context.Background()
	victim := 1

	// Each client takes a write lock on a home resource mastered by the
	// victim, then unlocks it — the lock stays cached and granted, so
	// it must survive the kill via replay. Its SN anchors the
	// monotonicity check afterwards.
	homes := make([]dlm.ResourceID, len(cls))
	heldSN := make([]extent.SN, len(cls))
	rid := uint64(0)
	for i, cl := range cls {
		rid = findResourceOwnedBy(t, c, victim, rid)
		homes[i] = dlm.ResourceID(rid)
		h, err := cl.Locks().Acquire(ctx, homes[i], dlm.PW, extent.New(0, 4096))
		if err != nil {
			t.Fatalf("pre-kill acquire: %v", err)
		}
		heldSN[i] = h.SN()
		cl.Locks().Unlock(h)
	}
	// Some traffic on a survivor-mastered resource, so the failover runs
	// against a live cluster rather than an idle one.
	other := dlm.ResourceID(findResourceOwnedBy(t, c, 0, rid))
	if h, err := cls[0].Locks().Acquire(ctx, other, dlm.PR, extent.New(0, 4096)); err != nil {
		t.Fatalf("survivor acquire: %v", err)
	} else {
		cls[0].Locks().Unlock(h)
	}

	epoch0 := c.Coord.Epoch()
	start := time.Now()
	c.KillServer(victim)

	// Takeover: within the failover window some survivor claims each
	// home's slot and rebuilds it from client replay — the cached grants
	// must reappear at the successor. Bounded generously for -race CI;
	// the takeover itself completes within roughly TTL + one renewal
	// tick.
	deadline := time.Now().Add(20 * time.Second)
	for _, home := range homes {
		for {
			owner, ok := c.lockMasterFor(uint64(home))
			if ok && owner != victim && c.Servers[owner].DLM.GrantedCount(home) >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("home %d not re-mastered with replayed lock within 20s", home)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Logf("takeover with replay completed in %v (lease TTL 300ms)", time.Since(start))

	if got := c.Coord.Epoch(); got <= epoch0 {
		t.Fatalf("epoch %d not bumped past %d by takeover", got, epoch0)
	}

	// Progress and SN monotonicity: a conflicting write from another
	// client revokes the replayed grant and must be granted with an SN
	// above it — a regressed sequencer would re-issue heldSN and corrupt
	// write ordering.
	for i := range cls {
		j := (i + 1) % len(cls)
		actx, cancel := context.WithTimeout(ctx, 20*time.Second)
		h2, err := cls[j].Locks().Acquire(actx, homes[i], dlm.PW, extent.New(0, 4096))
		cancel()
		if err != nil {
			t.Fatalf("post-kill acquire on home %d: %v", homes[i], err)
		}
		if h2.SN() <= heldSN[i] {
			t.Fatalf("post-failover SN %d not above pre-kill SN %d", h2.SN(), heldSN[i])
		}
		cls[j].Locks().Unlock(h2)
	}

	// No slot is mastered by two survivors, every slot found a master,
	// and the surviving engines are internally consistent.
	seen := make(map[partition.Slot]int)
	for i, s := range c.Servers {
		if i == victim {
			continue
		}
		for _, sl := range s.DLM.OwnedSlots() {
			if prev, dup := seen[sl]; dup {
				t.Fatalf("slot %d mastered by both server %d and server %d", sl, prev, i)
			}
			seen[sl] = i
		}
		if err := s.DLM.CheckInvariants(); err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}
	if len(seen) != partition.NumSlots {
		t.Fatalf("%d slots owned by survivors, want %d", len(seen), partition.NumSlots)
	}
}

// TestClusterSlotMigrationOnline migrates a hot slot between two live
// servers (and back) while two clients hammer it with conflicting write
// locks. Every client op must succeed — redirected RPCs retry
// transparently — and the granted SNs must stay globally unique, which
// only holds if the migration transfers each resource's sequencer
// exactly.
func TestClusterSlotMigrationOnline(t *testing.T) {
	c := newCluster(t, Options{
		Servers:   2,
		Policy:    dlm.SeqDLM(),
		Partition: true,
		LeaseTTL:  time.Second,
	})
	cls := newClients(t, c, 2)
	ctx := context.Background()

	hot := dlm.ResourceID(findResourceOwnedBy(t, c, 0, 0))
	slot := partition.SlotOf(uint64(hot))

	type rec struct {
		id dlm.LockID
		sn extent.SN
	}
	var mu sync.Mutex
	var recs []rec
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, cl := range cls {
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := cl.Locks().Acquire(ctx, hot, dlm.PW, extent.New(0, 4096))
				if err != nil {
					t.Errorf("client op failed during migration: %v", err)
					return
				}
				mu.Lock()
				recs = append(recs, rec{h.ID(), h.SN()})
				mu.Unlock()
				cl.Locks().Unlock(h)
			}
		}(cl)
	}

	// distinctGrants counts distinct (SN, lock) grants recorded so far;
	// the same ID re-reporting an SN is just a client cache hit.
	distinctGrants := func() int {
		mu.Lock()
		defer mu.Unlock()
		byID := make(map[extent.SN]dlm.LockID)
		n := 0
		for _, r := range recs {
			if _, ok := byID[r.sn]; !ok {
				byID[r.sn] = r.id
				n++
			}
		}
		return n
	}
	migrate := func(from, to int) {
		mctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := c.MigrateSlot(mctx, slot, from, to); err != nil {
			t.Fatalf("migrate slot %d %d->%d: %v", slot, from, to, err)
		}
	}
	// Phase on observed progress, not wall-clock sleeps: each migration
	// happens with grant traffic demonstrably in flight, and the run
	// only stops after enough distinct grants to make the uniqueness
	// check meaningful — robust on slow or loaded hosts.
	waitGrants := func(min int) {
		deadline := time.Now().Add(15 * time.Second)
		for distinctGrants() < min && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitGrants(3)
	migrate(0, 1)
	waitGrants(6)
	migrate(1, 0)
	waitGrants(10)
	close(stop)
	wg.Wait()

	// Global SN uniqueness across the whole run: a duplicate SN under
	// two different lock IDs means a migration regressed a sequencer.
	byID := make(map[extent.SN]dlm.LockID)
	for _, r := range recs {
		if prev, ok := byID[r.sn]; ok && prev != r.id {
			t.Fatalf("SN %d issued to two locks (%d and %d)", r.sn, prev, r.id)
		}
		byID[r.sn] = r.id
	}
	if grants := distinctGrants(); grants < 10 {
		t.Fatalf("only %d distinct grants recorded; workers were starved", grants)
	}

	// Both directions actually migrated, the slot is home again, and
	// both engines are consistent.
	for i, s := range c.Servers {
		if s.DLM.Stats.SlotMigrationsOut.Load() < 1 || s.DLM.Stats.SlotMigrationsIn.Load() < 1 {
			t.Fatalf("server %d migrations in/out = %d/%d, want >= 1 each",
				i, s.DLM.Stats.SlotMigrationsIn.Load(), s.DLM.Stats.SlotMigrationsOut.Load())
		}
		if err := s.DLM.CheckInvariants(); err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}
	if err := c.Servers[0].DLM.CheckMaster(hot); err != nil {
		t.Fatalf("slot %d not back home on server 0: %v", slot, err)
	}
	if err := c.Servers[1].DLM.CheckMaster(hot); err == nil {
		t.Fatalf("server 1 still masters slot %d after migrating it away", slot)
	}

	// The clients' retry counters show the redirects really happened
	// (at least one client chased the map during the two migrations).
	var retries int64
	for _, cl := range cls {
		retries += cl.Stats.LockRetries.Load()
	}
	if retries == 0 {
		t.Log("no redirected RPCs observed (migrations fell between ops); SN check still valid")
	}
}
