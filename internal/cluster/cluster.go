// Package cluster assembles an in-process ccPFS deployment — N data
// servers (one hosting the namespace) and any number of clients — wired
// through the simulated memnet fabric. It is the reproduction's stand-in
// for the paper's 96-node testbed: every node is a real server or client
// running the full RPC/lock/data paths; only the wires and devices are
// simulated.
package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"ccpfs/internal/client"
	"ccpfs/internal/dataserver"
	"ccpfs/internal/dlm"
	"ccpfs/internal/meta"
	"ccpfs/internal/obs"
	"ccpfs/internal/pagecache"
	"ccpfs/internal/partition"
	"ccpfs/internal/rpc"
	"ccpfs/internal/sim"
	"ccpfs/internal/transport/memnet"
)

// Options configure a cluster.
type Options struct {
	// Servers is the number of data servers (1 when 0).
	Servers int
	// Policy selects the DLM every node runs.
	Policy dlm.Policy
	// Hardware models the fabric and devices (sim.Fast() when zero).
	Hardware sim.Hardware
	// PageCache configures each client's cache.
	PageCache pagecache.Config
	// FlushInterval enables each client's voluntary flush daemon.
	FlushInterval time.Duration
	// ExtCacheThreshold overrides the servers' extent cache budget.
	ExtCacheThreshold int
	// ExtentLog enables the servers' extent logs.
	ExtentLog bool
	// CleanupInterval enables the servers' extent cache cleanup daemon.
	CleanupInterval time.Duration
	// LockAlign overrides the clients' lock range alignment.
	LockAlign int64
	// FlushWindow bounds concurrent flush RPCs per data server on each
	// client (client.DefaultFlushWindow when 0, 1 = sequential).
	FlushWindow int
	// MaxFlushRPC bounds the payload of one client flush RPC.
	MaxFlushRPC int64
	// Handoff enables the client-to-client lock handoff fast path
	// (DESIGN.md §13) on every server and wires a peer listener and
	// dialer into every client.
	Handoff bool
	// ReaderFanout enables the batched shared-mode fan-out path
	// (DESIGN.md §14): broadcast delegations toward reader cohorts and
	// peer-to-peer read-lease propagation trees. It implies Handoff's
	// peer transport.
	ReaderFanout bool
	// Partition enables N-way lock-space partitioning (DESIGN.md §12):
	// each server masters a lease-held share of the hash slots, clients
	// route by the partition map, and surviving servers take over the
	// slots of a dead peer.
	Partition bool
	// LeaseTTL is the slot lease duration (DefaultLeaseTTL when 0).
	LeaseTTL time.Duration
}

// DefaultLeaseTTL is the default slot lease duration: long enough that
// renewal (every TTL/3) is cheap, short enough that failover tests
// complete quickly.
const DefaultLeaseTTL = time.Second

// Cluster is a running in-process deployment.
type Cluster struct {
	opts    Options
	net     *memnet.Network
	Meta    *meta.Service
	Servers []*dataserver.Server

	// Coord arbitrates slot leases when the lock space is partitioned
	// (nil otherwise); admin holds one RPC endpoint per server for the
	// migration orchestrator (freeze/install round trips).
	Coord *partition.Coordinator
	admin []*rpc.Endpoint

	nextClient atomic.Uint32
}

// New builds and starts a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Servers <= 0 {
		opts.Servers = 1
	}
	if opts.Handoff {
		opts.Policy.Handoff = true
	}
	if opts.ReaderFanout {
		opts.Policy.ReaderFanout = true
	}
	c := &Cluster{
		opts: opts,
		net:  memnet.New(opts.Hardware),
		Meta: meta.NewService(),
	}
	if opts.Partition {
		ttl := opts.LeaseTTL
		if ttl == 0 {
			ttl = DefaultLeaseTTL
		}
		c.Coord = partition.NewCoordinator(ttl)
		c.Coord.SetClock(opts.Hardware.Clock.Now)
	}
	slots := partition.Uniform(opts.Servers)
	for i := 0; i < opts.Servers; i++ {
		cfg := dataserver.Config{
			Name:              fmt.Sprintf("server-%d", i),
			Policy:            opts.Policy,
			Hardware:          opts.Hardware,
			ExtCacheThreshold: opts.ExtCacheThreshold,
			ExtentLog:         opts.ExtentLog,
			CleanupInterval:   opts.CleanupInterval,
		}
		if i == 0 {
			cfg.Meta = c.Meta
		}
		if opts.Partition {
			cfg.Partition = &dataserver.PartitionConfig{
				Coordinator:     c.Coord,
				Index:           int32(i),
				Slots:           slots[i],
				Takeover:        true,
				RemoteMinSN:     c.remoteMinSN,
				RemoteForceSync: c.remoteForceSync,
			}
		}
		srv := dataserver.New(cfg)
		l, err := c.net.Listen(cfg.Name)
		if err != nil {
			return nil, err
		}
		srv.Serve(l)
		c.Servers = append(c.Servers, srv)
	}
	if opts.Partition {
		// One admin connection per server carries the migration
		// orchestrator's freeze/install RPCs (no Hello: admin endpoints
		// must not appear in the servers' client tables, or takeover
		// replay would gather from them).
		for i := range c.Servers {
			conn, err := c.net.Dial(fmt.Sprintf("server-%d", i))
			if err != nil {
				return nil, err
			}
			ep := rpc.NewEndpoint(conn, rpc.Options{Clock: opts.Hardware.Clock})
			ep.Start()
			c.admin = append(c.admin, ep)
		}
	}
	return c, nil
}

// NewClient adds a client node with a cluster-unique identity.
func (c *Cluster) NewClient(name string) (*client.Client, error) {
	id := dlm.ClientID(c.nextClient.Add(1))
	conns := client.Conns{}
	for i := range c.Servers {
		conn, err := c.net.Dial(fmt.Sprintf("server-%d", i))
		if err != nil {
			return nil, err
		}
		ep := rpc.NewEndpoint(conn, rpc.Options{Clock: c.opts.Hardware.Clock})
		conns.Data = append(conns.Data, ep)
		if i == 0 {
			conns.Meta = ep
		}
		// A second connection per server for bulk transfers, so flushes
		// never delay lock round trips (the prototype's RPC/RDMA split).
		bconn, err := c.net.Dial(fmt.Sprintf("server-%d", i))
		if err != nil {
			return nil, err
		}
		conns.Bulk = append(conns.Bulk, rpc.NewEndpoint(bconn, rpc.Options{Clock: c.opts.Hardware.Clock}))
	}
	pcCfg := c.opts.PageCache
	if pcCfg.CacheBandwidth == 0 {
		pcCfg.CacheBandwidth = c.opts.Hardware.CacheBandwidth
	}
	cl, err := client.New(context.Background(), client.Config{
		Name:          name,
		ID:            id,
		Policy:        c.opts.Policy,
		PageCache:     pcCfg,
		FlushInterval: c.opts.FlushInterval,
		Clock:         c.opts.Hardware.Clock,
		LockAlign:     c.opts.LockAlign,
		FlushWindow:   c.opts.FlushWindow,
		MaxFlushRPC:   c.opts.MaxFlushRPC,
		Partitioned:   c.opts.Partition,
	}, conns)
	if err != nil || !(c.opts.Handoff || c.opts.ReaderFanout) {
		return cl, err
	}
	// The handoff fast path needs a client-to-client wire: each client
	// listens at peer-<id> and dials its peers by lock client ID.
	pl, err := c.net.Listen(peerAddr(id))
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.ServePeers(pl)
	cl.SetPeerDialer(func(peer dlm.ClientID) (*rpc.Endpoint, error) {
		conn, err := c.net.Dial(peerAddr(peer))
		if err != nil {
			return nil, err
		}
		ep := rpc.NewEndpoint(conn, rpc.Options{Clock: c.opts.Hardware.Clock})
		ep.Start()
		return ep, nil
	})
	return cl, nil
}

// peerAddr is the memnet address of a client's handoff listener.
func peerAddr(id dlm.ClientID) string { return fmt.Sprintf("peer-%d", id) }

// Clients builds n clients named with a prefix.
func (c *Cluster) Clients(n int, prefix string) ([]*client.Client, error) {
	out := make([]*client.Client, 0, n)
	for i := 0; i < n; i++ {
		cl, err := c.NewClient(fmt.Sprintf("%s-%d", prefix, i))
		if err != nil {
			for _, done := range out {
				done.Close()
			}
			return nil, err
		}
		out = append(out, cl)
	}
	return out, nil
}

// Close stops the servers immediately. Clients must be closed first by
// their owners.
func (c *Cluster) Close() {
	for _, ep := range c.admin {
		ep.Close()
	}
	for _, s := range c.Servers {
		s.Close()
	}
}

// Shutdown drains every server gracefully, bounded by ctx. Clients
// should be shut down first so their final flushes land while the
// servers still accept them.
func (c *Cluster) Shutdown(ctx context.Context) error {
	var err error
	for _, s := range c.Servers {
		if e := s.Shutdown(ctx); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Hardware returns the cluster's hardware model.
func (c *Cluster) Hardware() sim.Hardware { return c.opts.Hardware }

// Clock returns the cluster's time source (the hardware clock every
// node was built on; the zero value is the wall clock).
func (c *Cluster) Clock() sim.Clock { return c.opts.Hardware.Clock }

// Policy returns the cluster's DLM policy.
func (c *Cluster) Policy() dlm.Policy { return c.opts.Policy }

// ServerDLMStats is one server's contribution to the cluster's DLM
// activity: its counter snapshot plus its wait-latency histograms.
type ServerDLMStats struct {
	Server int
	Counts dlm.Snapshot

	GrantWait      obs.HistSnapshot
	RevocationWait obs.HistSnapshot
	CancelWait     obs.HistSnapshot
}

// DLMAggregate is the cluster-wide DLM view: summed counters, merged
// wait histograms (bucket-wise, so cluster percentiles are exact — a
// sum of per-server p99s would be meaningless), and the per-server
// breakdown the partition experiments use to see load balance.
type DLMAggregate struct {
	Total dlm.Snapshot

	GrantWait      obs.HistSnapshot
	RevocationWait obs.HistSnapshot
	CancelWait     obs.HistSnapshot

	PerServer []ServerDLMStats
}

// DLMStatsBreakdown aggregates lock-server statistics across servers:
// scalar counters sum, wait histograms merge.
func (c *Cluster) DLMStatsBreakdown() DLMAggregate {
	var agg DLMAggregate
	for i, s := range c.Servers {
		snap := s.DLM.Stats.Snapshot()
		g, r, cw := s.DLM.Stats.WaitHists()
		agg.PerServer = append(agg.PerServer, ServerDLMStats{
			Server: i, Counts: snap,
			GrantWait: g, RevocationWait: r, CancelWait: cw,
		})
		agg.Total.Grants += snap.Grants
		agg.Total.Releases += snap.Releases
		agg.Total.Revocations += snap.Revocations
		agg.Total.RevokeBatches += snap.RevokeBatches
		agg.Total.EarlyGrants += snap.EarlyGrants
		agg.Total.EarlyRevocations += snap.EarlyRevocations
		agg.Total.Upgrades += snap.Upgrades
		agg.Total.Downgrades += snap.Downgrades
		agg.Total.LockOps += snap.LockOps
		agg.Total.Handoffs += snap.Handoffs
		agg.Total.HandoffAcks += snap.HandoffAcks
		agg.Total.HandoffReclaims += snap.HandoffReclaims
		agg.Total.FanRuns += snap.FanRuns
		agg.Total.FanGrants += snap.FanGrants
		agg.Total.Broadcasts += snap.Broadcasts
		agg.Total.Gathers += snap.Gathers
		agg.Total.LeaseGrants += snap.LeaseGrants
		agg.GrantWait.Merge(g)
		agg.RevocationWait.Merge(r)
		agg.CancelWait.Merge(cw)
	}
	agg.Total.GrantWait = time.Duration(agg.GrantWait.Sum)
	agg.Total.RevocationWait = time.Duration(agg.RevocationWait.Sum)
	agg.Total.CancelWait = time.Duration(agg.CancelWait.Sum)
	return agg
}

// DLMStats aggregates lock-server statistics across servers. The wait
// totals come from the merged histograms (see DLMStatsBreakdown).
func (c *Cluster) DLMStats() dlm.Snapshot {
	return c.DLMStatsBreakdown().Total
}

// FlushedBytes sums bytes landed on all server devices.
func (c *Cluster) FlushedBytes() int64 {
	var n int64
	for _, s := range c.Servers {
		n += s.FlushedBytes.Load()
	}
	return n
}

// DiscardedBytes sums stale flushed bytes dropped by extent caches.
func (c *Cluster) DiscardedBytes() int64 {
	var n int64
	for _, s := range c.Servers {
		n += s.DiscardedBytes.Load()
	}
	return n
}

// ExtCacheEntries sums extent cache entries across servers.
func (c *Cluster) ExtCacheEntries() int {
	n := 0
	for _, s := range c.Servers {
		n += s.Cache.Entries()
	}
	return n
}
