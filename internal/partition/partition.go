// Package partition implements the hash-slot partition map that binds
// lock resources to their master lock server (ROADMAP item 1).
//
// The lock space is divided into NumSlots hash slots; a versioned Map
// records which server masters each slot under an epoch number. Servers
// hold time-bounded leases on their slots (see Coordinator) and refuse
// grants for slots they do not hold; clients cache a Map snapshot
// behind an atomic pointer and refresh it when a server answers
// wire.ErrNotOwner or stops answering at all. The epoch is bumped on
// every mastership change, so any two views of the lock space are
// ordered: a client that has seen epoch E never routes by a map older
// than E.
package partition

import "fmt"

// NumSlots is the number of hash slots the lock space is divided into.
// 64 slots over at most a handful of lock servers keeps per-slot state
// transfers small while still letting slots be spread (and migrated)
// with reasonable balance.
const NumSlots = 64

// Slot identifies one hash slot, in [0, NumSlots).
type Slot int

// NoOwner marks a slot with no current master in a Map.
const NoOwner = int32(-1)

// SlotOf maps a resource ID to its hash slot. It uses the same
// Fibonacci multiplicative hash as meta.PlaceStripe so resource IDs
// that differ only in low bits (fid<<16|stripe layouts) still spread
// evenly, but takes the top bits so the two placements stay
// independent of each other.
func SlotOf(rid uint64) Slot {
	return Slot((rid * 0x9E3779B97F4A7C15) >> 58 % NumSlots)
}

// Map is an immutable snapshot of slot→server mastership at one epoch.
// Readers hold it behind an atomic pointer and never mutate it; a new
// mastership view is a new Map with a larger Epoch.
type Map struct {
	// Epoch orders mastership views. It is bumped by the Coordinator
	// on every change of any slot's holder, so Epoch equality implies
	// Owner equality.
	Epoch uint64
	// Owner[s] is the index of the server mastering slot s, or NoOwner.
	Owner [NumSlots]int32
}

// OwnerOf returns the index of the server mastering rid's slot, or
// NoOwner when the slot is currently masterless.
func (m *Map) OwnerOf(rid uint64) int32 {
	return m.Owner[SlotOf(rid)]
}

// Slots returns the slots owned by server idx, in increasing order.
func (m *Map) Slots(idx int32) []Slot {
	var out []Slot
	for s, o := range m.Owner {
		if o == idx {
			out = append(out, Slot(s))
		}
	}
	return out
}

// Uniform splits the slot space evenly across n servers: server i gets
// every slot s with s % n == i. It is the initial assignment used by
// both the cluster harness and the static (coordinator-less) mode of
// cmd/ccpfs-server.
func Uniform(n int) [][]Slot {
	if n <= 0 {
		panic(fmt.Sprintf("partition: Uniform(%d)", n))
	}
	out := make([][]Slot, n)
	for s := 0; s < NumSlots; s++ {
		out[s%n] = append(out[s%n], Slot(s))
	}
	return out
}

// UniformMap is the Map corresponding to Uniform(n) at the given
// epoch. Static deployments (no coordinator) serve this to clients.
func UniformMap(epoch uint64, n int) *Map {
	m := &Map{Epoch: epoch}
	for s := 0; s < NumSlots; s++ {
		m.Owner[s] = int32(s % n)
	}
	return m
}
