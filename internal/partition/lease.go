package partition

import (
	"fmt"
	"sync"
	"time"
)

// Coordinator arbitrates slot mastership with diskless time-bounded
// leases, in the style of PaxosLease: a server owns a slot only while
// its lease is unexpired, renews well before expiry, and anything it
// fails to renew may be claimed by a successor. In the paper's setting
// the coordinator is a small quorum; here it is an in-process service
// (the same stand-in the repo uses for the metadata service), so the
// lease state machine, the epoch rules, and the failover dance are
// real while the consensus transport is elided.
//
// Lease state machine, per slot:
//
//	unowned --Acquire--> held(server, expiry)
//	held --Renew before expiry--> held(same server, new expiry)
//	held --expiry passes--> expired (still recorded, not serving)
//	expired --Acquire by anyone--> held(new server, expiry), epoch++
//
// Epoch rule: the epoch is bumped exactly when some slot's holder
// changes (first acquire, takeover, transfer). Renewals never bump it.
// Servers stamp their slot views with the epoch at grant time and
// clients refresh any map older than the epoch a server rejects with.
type Coordinator struct {
	mu     sync.Mutex
	ttl    time.Duration
	now    func() time.Time // injectable for tests
	epoch  uint64
	holder [NumSlots]int32
	expiry [NumSlots]time.Time
}

// NewCoordinator returns a coordinator granting leases of the given
// TTL. All slots start unowned at epoch 0.
func NewCoordinator(ttl time.Duration) *Coordinator {
	c := &Coordinator{ttl: ttl, now: time.Now}
	for s := range c.holder {
		c.holder[s] = NoOwner
	}
	return c
}

// SetClock replaces the coordinator's time source (tests only).
func (c *Coordinator) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// TTL returns the lease duration.
func (c *Coordinator) TTL() time.Duration { return c.ttl }

// Acquire claims the given slots for server. A slot is granted when it
// is unowned, already held by server, or held under an expired lease
// (takeover). The granted subset, the resulting epoch, and the lease
// expiry are returned; the epoch is bumped once if any slot changed
// holder.
func (c *Coordinator) Acquire(server int32, slots []Slot) (granted []Slot, epoch uint64, expiry time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	expiry = now.Add(c.ttl)
	changed := false
	for _, s := range slots {
		if s < 0 || s >= NumSlots {
			continue
		}
		switch {
		case c.holder[s] == server:
			// Already ours: treat as a renewal.
		case c.holder[s] == NoOwner || now.After(c.expiry[s]):
			c.holder[s] = server
			changed = true
		default:
			continue // held by a live lease elsewhere
		}
		c.expiry[s] = expiry
		granted = append(granted, s)
	}
	if changed {
		c.epoch++
	}
	return granted, c.epoch, expiry
}

// Renew extends every slot server still holds under an unexpired
// lease and returns that set with the new expiry. Slots whose lease
// already lapsed are NOT renewed — once expired, mastership is up for
// grabs and the previous holder must re-Acquire (which bumps the
// epoch if a successor got there first... or even if it didn't, when
// the coordinator already recorded the lapse via a takeover).
func (c *Coordinator) Renew(server int32) (held []Slot, expiry time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	expiry = now.Add(c.ttl)
	for s := range c.holder {
		if c.holder[s] == server && !now.After(c.expiry[s]) {
			c.expiry[s] = expiry
			held = append(held, Slot(s))
		}
	}
	return held, expiry
}

// Expired returns the slots whose lease has lapsed (or that were never
// owned), i.e. the set a surviving server may try to Acquire.
func (c *Coordinator) Expired() []Slot {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var out []Slot
	for s := range c.holder {
		if c.holder[s] == NoOwner || now.After(c.expiry[s]) {
			out = append(out, Slot(s))
		}
	}
	return out
}

// Transfer moves one slot's lease from one live holder to another
// (online migration). Unlike takeover it requires the source to still
// hold an unexpired lease: migration is a cooperative handoff, not a
// failover. The epoch is bumped.
func (c *Coordinator) Transfer(slot Slot, from, to int32) (epoch uint64, expiry time.Time, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if slot < 0 || slot >= NumSlots {
		return 0, time.Time{}, fmt.Errorf("partition: transfer: bad slot %d", slot)
	}
	now := c.now()
	if c.holder[slot] != from || now.After(c.expiry[slot]) {
		return 0, time.Time{}, fmt.Errorf("partition: transfer slot %d: not held by server %d", slot, from)
	}
	c.holder[slot] = to
	c.expiry[slot] = now.Add(c.ttl)
	c.epoch++
	return c.epoch, c.expiry[slot], nil
}

// Snapshot returns the current mastership view. Expired-but-unclaimed
// slots are reported with their last holder: clients routing there
// will be refused and retry, which is indistinguishable from (and
// resolved by) the successor's takeover.
func (c *Coordinator) Snapshot() *Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &Map{Epoch: c.epoch, Owner: c.holder}
	return m
}

// Epoch returns the current epoch.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}
