package partition

import (
	"testing"
	"time"
)

func TestSlotOfInRange(t *testing.T) {
	seen := map[Slot]bool{}
	for rid := uint64(0); rid < 1<<16; rid++ {
		s := SlotOf(rid)
		if s < 0 || s >= NumSlots {
			t.Fatalf("SlotOf(%d) = %d out of range", rid, s)
		}
		seen[s] = true
	}
	if len(seen) != NumSlots {
		t.Fatalf("only %d/%d slots hit by 64k rids", len(seen), NumSlots)
	}
}

func TestUniformCoversAllSlots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		got := map[Slot]int{}
		for i, slots := range Uniform(n) {
			for _, s := range slots {
				if prev, dup := got[s]; dup {
					t.Fatalf("n=%d: slot %d assigned to both %d and %d", n, s, prev, i)
				}
				got[s] = i
			}
		}
		if len(got) != NumSlots {
			t.Fatalf("n=%d: %d slots assigned, want %d", n, len(got), NumSlots)
		}
		m := UniformMap(7, n)
		if m.Epoch != 7 {
			t.Fatalf("UniformMap epoch = %d", m.Epoch)
		}
		for s, o := range m.Owner {
			if got[Slot(s)] != int(o) {
				t.Fatalf("n=%d: UniformMap disagrees with Uniform at slot %d", n, s)
			}
		}
	}
}

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestLeaseLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewCoordinator(time.Second)
	c.SetClock(clk.now)

	// First acquire: grants, bumps epoch to 1.
	granted, epoch, _ := c.Acquire(0, []Slot{0, 1, 2})
	if len(granted) != 3 || epoch != 1 {
		t.Fatalf("acquire: granted=%v epoch=%d", granted, epoch)
	}
	// A second server cannot steal a live lease.
	granted, epoch, _ = c.Acquire(1, []Slot{1, 3})
	if len(granted) != 1 || granted[0] != 3 || epoch != 2 {
		t.Fatalf("contended acquire: granted=%v epoch=%d", granted, epoch)
	}
	// Renew extends and does not bump the epoch.
	clk.advance(900 * time.Millisecond)
	held, _ := c.Renew(0)
	if len(held) != 3 || c.Epoch() != 2 {
		t.Fatalf("renew: held=%v epoch=%d", held, c.Epoch())
	}
	// Re-acquiring what you hold does not bump the epoch either.
	if _, epoch, _ = c.Acquire(0, []Slot{0}); epoch != 2 {
		t.Fatalf("self re-acquire bumped epoch to %d", epoch)
	}

	// Server 1 stops renewing; its lease on slot 3 lapses.
	clk.advance(1100 * time.Millisecond)
	if held, _ := c.Renew(1); held != nil {
		t.Fatalf("expired renew returned %v", held)
	}
	exp := c.Expired()
	if len(exp) != NumSlots-3 { // slots 0,1,2 were renewed 900ms ago... now expired too?
		// 0,1,2 renewed at t+900ms with 1s TTL expire at t+1900ms; we are
		// at t+2000ms, so they lapsed as well. Everything is expired.
	}
	if len(exp) != NumSlots {
		t.Fatalf("expired: %d slots, want all %d", len(exp), NumSlots)
	}

	// Takeover: server 2 claims slot 3, epoch bumps.
	granted, epoch, _ = c.Acquire(2, []Slot{3})
	if len(granted) != 1 || epoch != 3 {
		t.Fatalf("takeover: granted=%v epoch=%d", granted, epoch)
	}
	if m := c.Snapshot(); m.Owner[3] != 2 || m.Epoch != 3 {
		t.Fatalf("snapshot after takeover: owner=%d epoch=%d", m.Owner[3], m.Epoch)
	}
}

func TestLeaseTransfer(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewCoordinator(time.Second)
	c.SetClock(clk.now)
	c.Acquire(0, []Slot{5})

	if _, _, err := c.Transfer(5, 1, 2); err == nil {
		t.Fatal("transfer from non-holder succeeded")
	}
	epoch, _, err := c.Transfer(5, 0, 1)
	if err != nil || epoch != 2 {
		t.Fatalf("transfer: epoch=%d err=%v", epoch, err)
	}
	if m := c.Snapshot(); m.Owner[5] != 1 {
		t.Fatalf("owner after transfer = %d", m.Owner[5])
	}
	// The previous holder lost the slot: its renew no longer covers it.
	if held, _ := c.Renew(0); len(held) != 0 {
		t.Fatalf("old holder still renews %v", held)
	}
	// An expired lease cannot be transferred (that is a takeover).
	clk.advance(2 * time.Second)
	if _, _, err := c.Transfer(5, 1, 0); err == nil {
		t.Fatal("transfer of expired lease succeeded")
	}
}
