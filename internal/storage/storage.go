// Package storage provides the per-stripe block stores data servers
// write flushed data into. Three implementations share one interface:
// an in-memory sparse store, the same store wrapped with a simulated
// NVMe device (bandwidth + latency, serialized like a real disk queue),
// and a file-backed store for the standalone server binary.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ccpfs/internal/shard"
	"ccpfs/internal/sim"
)

// Store is a stripe-addressed byte store. Offsets are stripe-local.
type Store interface {
	// WriteAt stores data at off within stripe.
	WriteAt(stripe uint64, off int64, data []byte) error
	// ReadAt fills buf from off within stripe. Never-written ranges read
	// as zeros.
	ReadAt(stripe uint64, off int64, buf []byte) error
	// Remove drops a stripe's data.
	Remove(stripe uint64) error
}

// chunkSize is the allocation unit of the sparse in-memory store.
const chunkSize = 64 << 10

// MemStore is a sparse in-memory Store. It is safe for concurrent use:
// the stripe map is sharded (shard.Of) so flushes to different stripes
// land in parallel, serializing only per shard.
type MemStore struct {
	shards [shard.Count]memShard
}

type memShard struct {
	mu      sync.RWMutex
	stripes map[uint64]map[int64][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	m := &MemStore{}
	for i := range m.shards {
		m.shards[i].stripes = make(map[uint64]map[int64][]byte)
	}
	return m
}

// WriteAt implements Store.
func (m *MemStore) WriteAt(stripe uint64, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	sh := &m.shards[shard.Of(stripe)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	chunks := sh.stripes[stripe]
	if chunks == nil {
		chunks = make(map[int64][]byte)
		sh.stripes[stripe] = chunks
	}
	for len(data) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := int64(len(data))
		if n > chunkSize-co {
			n = chunkSize - co
		}
		c := chunks[ci]
		if c == nil {
			c = make([]byte, chunkSize)
			chunks[ci] = c
		}
		copy(c[co:co+n], data[:n])
		data = data[n:]
		off += n
	}
	return nil
}

// ReadAt implements Store.
func (m *MemStore) ReadAt(stripe uint64, off int64, buf []byte) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	sh := &m.shards[shard.Of(stripe)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chunks := sh.stripes[stripe]
	for len(buf) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := int64(len(buf))
		if n > chunkSize-co {
			n = chunkSize - co
		}
		if c := chunks[ci]; c != nil {
			copy(buf[:n], c[co:co+n])
		} else {
			for i := int64(0); i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		off += n
	}
	return nil
}

// Remove implements Store.
func (m *MemStore) Remove(stripe uint64) error {
	sh := &m.shards[shard.Of(stripe)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.stripes, stripe)
	return nil
}

// Bytes returns the number of chunk bytes allocated (tests/introspection).
func (m *MemStore) Bytes() int64 {
	var n int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, chunks := range sh.stripes {
			n += int64(len(chunks)) * chunkSize
		}
		sh.mu.RUnlock()
	}
	return n
}

// SimStore wraps a Store with a simulated storage device: every
// operation is serialized through the device and charged transfer time
// at the configured bandwidth plus fixed latency — the B_disk term of
// Equation (1).
type SimStore struct {
	inner Store
	dev   sim.Device
	bw    float64
	lat   time.Duration
}

// NewSimStore wraps inner with a device of hw.DiskBandwidth and
// hw.DiskLatency.
func NewSimStore(inner Store, hw sim.Hardware) *SimStore {
	s := &SimStore{inner: inner, bw: hw.DiskBandwidth, lat: hw.DiskLatency}
	s.dev.SetClock(hw.Clock)
	return s
}

// WriteAt implements Store, charging simulated device time.
func (s *SimStore) WriteAt(stripe uint64, off int64, data []byte) error {
	s.dev.UseBytes(int64(len(data)), s.bw, s.lat)
	return s.inner.WriteAt(stripe, off, data)
}

// ReadAt implements Store, charging simulated device time.
func (s *SimStore) ReadAt(stripe uint64, off int64, buf []byte) error {
	s.dev.UseBytes(int64(len(buf)), s.bw, s.lat)
	return s.inner.ReadAt(stripe, off, buf)
}

// Remove implements Store.
func (s *SimStore) Remove(stripe uint64) error { return s.inner.Remove(stripe) }

// Busy reports the device's committed backlog (flow control input).
func (s *SimStore) Busy() time.Duration { return s.dev.Busy() }

// FileStore keeps each stripe in its own file under a directory.
type FileStore struct {
	dir string
	mu  sync.Mutex
	fds map[uint64]*os.File
}

// NewFileStore returns a store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{dir: dir, fds: make(map[uint64]*os.File)}, nil
}

func (f *FileStore) file(stripe uint64) (*os.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fd, ok := f.fds[stripe]; ok {
		return fd, nil
	}
	fd, err := os.OpenFile(filepath.Join(f.dir, fmt.Sprintf("stripe-%d", stripe)), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	f.fds[stripe] = fd
	return fd, nil
}

// WriteAt implements Store.
func (f *FileStore) WriteAt(stripe uint64, off int64, data []byte) error {
	fd, err := f.file(stripe)
	if err != nil {
		return err
	}
	_, err = fd.WriteAt(data, off)
	return err
}

// ReadAt implements Store. Short reads past EOF are zero-filled.
func (f *FileStore) ReadAt(stripe uint64, off int64, buf []byte) error {
	fd, err := f.file(stripe)
	if err != nil {
		return err
	}
	n, err := fd.ReadAt(buf, off)
	if err != nil && n < len(buf) {
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
	}
	return nil
}

// Remove implements Store.
func (f *FileStore) Remove(stripe uint64) error {
	f.mu.Lock()
	fd, ok := f.fds[stripe]
	if ok {
		delete(f.fds, stripe)
	}
	f.mu.Unlock()
	if ok {
		fd.Close()
	}
	err := os.Remove(filepath.Join(f.dir, fmt.Sprintf("stripe-%d", stripe)))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Close closes all open stripe files.
func (f *FileStore) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	for _, fd := range f.fds {
		if err := fd.Close(); err != nil && first == nil {
			first = err
		}
	}
	f.fds = make(map[uint64]*os.File)
	return first
}
