package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ccpfs/internal/sim"
)

func testStoreRoundTrip(t *testing.T, s Store) {
	t.Helper()
	data := []byte("hello stripe world")
	if err := s.WriteAt(1, 100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := s.ReadAt(1, 100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read back %q, want %q", buf, data)
	}
	// Unwritten ranges read as zeros.
	zero := make([]byte, 8)
	if err := s.ReadAt(1, 1<<20, zero); err != nil {
		t.Fatal(err)
	}
	for _, b := range zero {
		if b != 0 {
			t.Fatal("hole did not read as zeros")
		}
	}
	// Stripes are independent.
	other := make([]byte, len(data))
	if err := s.ReadAt(2, 100, other); err != nil {
		t.Fatal(err)
	}
	for _, b := range other {
		if b != 0 {
			t.Fatal("write leaked across stripes")
		}
	}
}

func TestMemStoreRoundTrip(t *testing.T) { testStoreRoundTrip(t, NewMemStore()) }

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	testStoreRoundTrip(t, fs)
}

func TestSimStoreRoundTrip(t *testing.T) {
	testStoreRoundTrip(t, NewSimStore(NewMemStore(), sim.Fast()))
}

func TestMemStoreChunkBoundaries(t *testing.T) {
	m := NewMemStore()
	// Write straddling a chunk boundary.
	data := make([]byte, 3*chunkSize)
	rand.New(rand.NewSource(1)).Read(data)
	off := int64(chunkSize - 100)
	if err := m.WriteAt(7, off, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := m.ReadAt(7, off, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-chunk round trip corrupted data")
	}
}

func TestMemStoreNegativeOffset(t *testing.T) {
	m := NewMemStore()
	if err := m.WriteAt(1, -1, []byte{1}); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if err := m.ReadAt(1, -1, make([]byte, 1)); err == nil {
		t.Fatal("negative read offset accepted")
	}
}

func TestMemStoreRemove(t *testing.T) {
	m := NewMemStore()
	m.WriteAt(3, 0, []byte{1, 2, 3})
	if m.Bytes() == 0 {
		t.Fatal("no bytes accounted")
	}
	m.Remove(3)
	buf := make([]byte, 3)
	m.ReadAt(3, 0, buf)
	if buf[0] != 0 {
		t.Fatal("data survived Remove")
	}
}

func TestFileStoreRemoveAndReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteAt(1, 0, []byte("abc"))
	if err := fs.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(99); err != nil {
		t.Fatal("removing a nonexistent stripe must be a no-op")
	}
	buf := make([]byte, 3)
	fs.ReadAt(1, 0, buf)
	if buf[0] != 0 {
		t.Fatal("data survived Remove")
	}
	fs.Close()
}

func TestSimStoreChargesTime(t *testing.T) {
	hw := sim.Hardware{DiskBandwidth: 10e6, DiskLatency: time.Millisecond}
	s := NewSimStore(NewMemStore(), hw)
	start := time.Now()
	// 1 MB at 10 MB/s = 100 ms + 1 ms latency.
	if err := s.WriteAt(1, 0, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("write took %v, want >= ~100ms of simulated disk time", elapsed)
	}
	if s.Busy() > time.Second {
		t.Fatalf("backlog = %v after synchronous write", s.Busy())
	}
}

// Property: random writes then reads agree with an in-memory reference.
func TestQuickMemStoreMatchesReference(t *testing.T) {
	f := func(ops []struct {
		Off  uint32
		Data []byte
	}) bool {
		m := NewMemStore()
		ref := make(map[int64]byte)
		for _, op := range ops {
			off := int64(op.Off % (1 << 20))
			if len(op.Data) > 4096 {
				op.Data = op.Data[:4096]
			}
			if err := m.WriteAt(1, off, op.Data); err != nil {
				return false
			}
			for i, b := range op.Data {
				ref[off+int64(i)] = b
			}
		}
		for off, want := range ref {
			buf := make([]byte, 1)
			if err := m.ReadAt(1, off, buf); err != nil || buf[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMemStoreWrite64K(b *testing.B) {
	m := NewMemStore()
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.WriteAt(1, int64(i%1024)*int64(len(data)), data)
	}
}
