package perfbench

import (
	"context"
	"sync/atomic"
	"testing"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
)

// DLM grant-engine benchmarks: grant latency against a large granted
// set (interval index vs linear scan) and revocation-storm fan-out
// (per-client batching vs one delivery per revocation).

const (
	grantTableLocks = 10240 // granted locks preloaded on the bench resource
	grantTileBytes  = 4096
	stormClients    = 8
	stormTilesEach  = 128
)

// tiledPolicy disables range expansion so distinct holders can tile a
// resource without the first grant expanding over the whole keyspace.
func tiledPolicy() dlm.Policy {
	p := dlm.SeqDLM()
	p.Expand = dlm.ExpandNone
	return p
}

// grantTableServer preloads grantTableLocks adjacent NBW tiles from
// distinct clients, leaving one free slot in the middle whose extent is
// returned; the benchmark op grants and releases in that hole so every
// conflict check probes the full table.
func grantTableServer(b *testing.B) (*dlm.Server, extent.Extent) {
	srv := dlm.NewServer(tiledPolicy(), dlm.NotifierFunc(func(context.Context, dlm.Revocation) {}))
	hole := grantTableLocks / 2
	for i := 0; i < grantTableLocks; i++ {
		if i == hole {
			continue
		}
		_, err := srv.Lock(context.Background(), dlm.Request{
			Resource: 1,
			Client:   dlm.ClientID(i + 2),
			Mode:     dlm.NBW,
			Range:    extent.New(int64(i)*grantTileBytes, int64(i+1)*grantTileBytes),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return srv, extent.New(int64(hole)*grantTileBytes, int64(hole+1)*grantTileBytes)
}

func lockGrant(b *testing.B, indexed bool) {
	srv, slot := grantTableServer(b)
	srv.SetIndexed(indexed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := srv.Lock(context.Background(), dlm.Request{Resource: 1, Client: 1, Mode: dlm.NBW, Range: slot})
		if err != nil {
			b.Fatal(err)
		}
		srv.Release(1, g.LockID)
	}
}

// LockGrantIndexed measures grant+release latency on a resource holding
// 10k+ granted locks with the interval-indexed lock table.
func LockGrantIndexed(b *testing.B) { lockGrant(b, true) }

// LockGrantLinear is the same workload on the linear-scan baseline
// (SetIndexed(false)); the Indexed/Linear ratio is the index speedup.
func LockGrantLinear(b *testing.B) { lockGrant(b, false) }

// stormNotifier acks and force-releases every revocation in-process,
// standing in for the data server's client fan-out.
type stormNotifier struct {
	srv        *dlm.Server
	deliveries atomic.Int64
}

func (n *stormNotifier) Revoke(_ context.Context, rv dlm.Revocation) {
	n.deliveries.Add(1)
	n.srv.RevokeAck(rv.Resource, rv.Lock)
	n.srv.Release(rv.Resource, rv.Lock)
}

func (n *stormNotifier) RevokeBatch(_ context.Context, _ dlm.ClientID, revs []dlm.Revocation) {
	n.deliveries.Add(1)
	for _, rv := range revs {
		n.srv.RevokeAck(rv.Resource, rv.Lock)
		n.srv.Release(rv.Resource, rv.Lock)
	}
}

// sequentialNotifier hides RevokeBatch so the revoker falls back to one
// delivery per revocation — the pre-batching baseline.
type sequentialNotifier struct{ inner *stormNotifier }

func (n sequentialNotifier) Revoke(ctx context.Context, rv dlm.Revocation) { n.inner.Revoke(ctx, rv) }

func revokeStorm(b *testing.B, batched bool) {
	srv := dlm.NewServer(tiledPolicy(), nil)
	sn := &stormNotifier{srv: srv}
	if batched {
		srv.SetNotifier(sn)
	} else {
		srv.SetNotifier(sequentialNotifier{inner: sn})
	}
	total := stormClients * stormTilesEach
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Interleave tiles across clients so the storm revokes every
		// client's working set, then grab one write lock over the lot.
		for t := 0; t < total; t++ {
			_, err := srv.Lock(context.Background(), dlm.Request{
				Resource: 1,
				Client:   dlm.ClientID(t%stormClients + 2),
				Mode:     dlm.NBW,
				Range:    extent.New(int64(t)*grantTileBytes, int64(t+1)*grantTileBytes),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		g, err := srv.Lock(context.Background(), dlm.Request{
			Resource: 1, Client: 1, Mode: dlm.PW,
			Range: extent.New(0, int64(total)*grantTileBytes),
		})
		if err != nil {
			b.Fatal(err)
		}
		srv.Release(1, g.LockID)
	}
	b.StopTimer()
	b.ReportMetric(float64(sn.deliveries.Load())/float64(b.N), "deliveries/storm")
	if batched {
		if got, want := sn.deliveries.Load(), int64(b.N)*stormClients; got > want {
			b.Fatalf("batching lost: %d deliveries for %d storms x %d clients", got, b.N, stormClients)
		}
	}
}

// RevokeStorm measures a full revocation storm round — N clients'
// tiled working sets revoked by one conflicting whole-range write —
// with per-client batched fan-out.
func RevokeStorm(b *testing.B) { revokeStorm(b, true) }

// RevokeStormUnbatched is the same storm delivered one revocation per
// notifier send, the pre-batching baseline.
func RevokeStormUnbatched(b *testing.B) { revokeStorm(b, false) }
