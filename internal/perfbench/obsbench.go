package perfbench

// Observability overhead benchmarks. The instrumentation rule is that
// every obs instrument on a hot path is allocation-free and a handful
// of atomic operations; these benchmarks are the enforcement.
// RpcRoundTripObs vs RpcRoundTrip is the pair benchcheck gates: the
// fully instrumented round trip may cost at most a few percent over
// the bare one.

import (
	"context"
	"testing"

	"ccpfs/internal/obs"
	"ccpfs/internal/rpc"
	"ccpfs/internal/sim"
	"ccpfs/internal/transport/memnet"
	"ccpfs/internal/wire"
)

// ObsHistogramRecordParallel: concurrent Record on one shared
// histogram — the write side every instrumented call path pays.
func ObsHistogramRecordParallel(b *testing.B) {
	var h obs.Histogram
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Record(v)
			v = (v * 2654435761) % (1 << 30) // spread across buckets
		}
	})
}

// RpcRoundTripObs: RpcRoundTrip with rpc.Metrics attached on both
// endpoints — per-call latency histogram, in-flight gauges, and byte
// counters all live. Compare against RpcRoundTrip for the
// instrumentation overhead.
func RpcRoundTripObs(b *testing.B) {
	net := memnet.New(sim.Hardware{})
	l, err := net.Listen("srv")
	if err != nil {
		b.Fatal(err)
	}
	srvMetrics := rpc.NewMetrics()
	srv := rpc.NewServer(l, rpc.Options{}, func(ep *rpc.Endpoint) {
		ep.SetMetrics(srvMetrics)
		ep.Handle(wire.MRelease, func(context.Context, []byte) (wire.Msg, error) {
			return &wire.Ack{}, nil
		})
	})
	go srv.Serve()
	conn, err := net.Dial("srv")
	if err != nil {
		b.Fatal(err)
	}
	cli := rpc.NewEndpoint(conn, rpc.Options{Metrics: rpc.NewMetrics()})
	cli.Start()
	defer func() {
		cli.Close()
		srv.Close()
	}()
	ctx := context.Background()
	req := &wire.ReleaseRequest{Resource: 7, LockID: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Call(ctx, wire.MRelease, req, nil); err != nil {
			b.Fatal(err)
		}
	}
}
