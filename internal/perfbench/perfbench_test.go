package perfbench

import "testing"

// The bodies live in perfbench.go so seqbench -benchjson can drive them
// via testing.Benchmark; these wrappers expose them to `go test -bench`.
// They are skipped (not run) by a plain `go test ./...`.

func BenchmarkExtcacheApplyParallel(b *testing.B)          { ExtcacheApplyParallel(b) }
func BenchmarkExtcacheApplyCleanupParallel(b *testing.B)   { ExtcacheApplyCleanupParallel(b) }
func BenchmarkExtcacheMaxSNParallel(b *testing.B)          { ExtcacheMaxSNParallel(b) }
func BenchmarkDataserverFlushParallel(b *testing.B)        { DataserverFlushParallel(b) }
func BenchmarkDataserverFlushCleanupParallel(b *testing.B) { DataserverFlushCleanupParallel(b) }
func BenchmarkPagecacheMixedParallel(b *testing.B)         { PagecacheMixedParallel(b) }
func BenchmarkLockClientCachedHitParallel(b *testing.B)    { LockClientCachedHitParallel(b) }
func BenchmarkDLMGrantReleaseParallel(b *testing.B)        { DLMGrantReleaseParallel(b) }
func BenchmarkRpcRoundTrip(b *testing.B)                   { RpcRoundTrip(b) }
func BenchmarkRpcRoundTripObs(b *testing.B)                { RpcRoundTripObs(b) }
func BenchmarkRpcRoundTripParallel(b *testing.B)           { RpcRoundTripParallel(b) }
func BenchmarkObsHistogramRecordParallel(b *testing.B)     { ObsHistogramRecordParallel(b) }
func BenchmarkFlushPipelineSequential(b *testing.B)        { FlushPipelineSequential(b) }
func BenchmarkFlushPipelineWindowed(b *testing.B)          { FlushPipelineWindowed(b) }
func BenchmarkLockGrantIndexed(b *testing.B)               { LockGrantIndexed(b) }
func BenchmarkLockGrantLinear(b *testing.B)                { LockGrantLinear(b) }
func BenchmarkRevokeStorm(b *testing.B)                    { RevokeStorm(b) }
func BenchmarkRevokeStormUnbatched(b *testing.B)           { RevokeStormUnbatched(b) }
func BenchmarkServerPingPong(b *testing.B)                 { ServerPingPong(b) }
func BenchmarkHandoffPingPong(b *testing.B)                { HandoffPingPong(b) }
