package perfbench

// Wire hot-path benchmarks: RPC round trips over the in-process fabric
// and the client's flush pipeline end to end. Unlike the node-local
// benchmarks in perfbench.go these cross the full wire stack —
// wire codec, rpc endpoint, transport — so they are the series that
// tracks the frame-coalescing / zero-alloc / windowed-flush work.

import (
	"context"
	"testing"
	"time"

	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/pagecache"
	"ccpfs/internal/rpc"
	"ccpfs/internal/sim"
	"ccpfs/internal/transport/memnet"
	"ccpfs/internal/wire"
)

// newRPCPair builds a connected endpoint pair over a zero-latency memnet
// fabric with an MRelease echo handler, returning the client endpoint
// and a teardown func.
func newRPCPair(b *testing.B) (*rpc.Endpoint, func()) {
	b.Helper()
	net := memnet.New(sim.Hardware{})
	l, err := net.Listen("srv")
	if err != nil {
		b.Fatal(err)
	}
	srv := rpc.NewServer(l, rpc.Options{}, func(ep *rpc.Endpoint) {
		ep.Handle(wire.MRelease, func(context.Context, []byte) (wire.Msg, error) {
			return &wire.Ack{}, nil
		})
	})
	go srv.Serve()
	conn, err := net.Dial("srv")
	if err != nil {
		b.Fatal(err)
	}
	cli := rpc.NewEndpoint(conn, rpc.Options{})
	cli.Start()
	return cli, func() {
		cli.Close()
		srv.Close()
	}
}

// RpcRoundTrip: serial request/response round trips through the full
// wire + rpc + transport stack — the per-call overhead (encode, frame,
// dispatch, reply) that every lock and release RPC pays. allocs/op is
// the pooling target.
func RpcRoundTrip(b *testing.B) {
	cli, stop := newRPCPair(b)
	defer stop()
	ctx := context.Background()
	req := &wire.ReleaseRequest{Resource: 7, LockID: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Call(ctx, wire.MRelease, req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// RpcRoundTripParallel: many goroutines issuing calls on one shared
// endpoint — the shape of a client under windowed flush, where frame
// coalescing in the transport batches concurrent small frames.
func RpcRoundTripParallel(b *testing.B) {
	cli, stop := newRPCPair(b)
	defer stop()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := &wire.ReleaseRequest{Resource: 7, LockID: 9}
		for pb.Next() {
			if err := cli.Call(ctx, wire.MRelease, req, nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// flushPipeline measures one client flushing dirty data to 4 data
// servers over a fabric with real (simulated) latency: per iteration it
// dirties every stripe and Fsyncs. The writes are discontiguous (the
// page cache merges adjacent same-SN extents into one block, and flush
// chunks never split a block), so each stripe yields several flush RPCs
// and the duration is dominated by how well the client overlaps those
// round trips.
func flushPipeline(b *testing.B, window int) {
	const (
		servers     = 4
		stripeSize  = 1 << 20
		fileStripes = 8
		regions     = 4        // discontiguous dirty regions per stripe
		regionSize  = 64 << 10 // bytes per region
		chunk       = 64 << 10 // MaxFlushRPC: one flush RPC per region
	)
	cl, err := cluster.New(cluster.Options{
		Servers:     servers,
		Policy:      dlm.SeqDLM(),
		Hardware:    sim.Hardware{RTT: 200 * time.Microsecond},
		PageCache:   pagecache.Config{PageSize: 4096},
		FlushWindow: window,
		MaxFlushRPC: chunk,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := cl.NewClient("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	f, err := c.Create("/flushbench", stripeSize, fileStripes)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, regionSize)
	b.ReportAllocs()
	b.SetBytes(int64(fileStripes * regions * regionSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for st := int64(0); st < fileStripes; st++ {
			for r := int64(0); r < regions; r++ {
				// Leave a gap between regions so they stay separate
				// blocks in the cache (adjacent extents would merge).
				if _, err := f.WriteAt(data, st*stripeSize+r*2*regionSize); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := f.Fsync(); err != nil {
			b.Fatal(err)
		}
	}
}

// FlushPipelineSequential: the pre-pipeline baseline — one flush RPC in
// flight at a time, stripes drained in order (FlushWindow = 1).
func FlushPipelineSequential(b *testing.B) { flushPipeline(b, 1) }

// FlushPipelineWindowed: the windowed parallel flush — chunks fan out
// across servers with up to FlushWindow concurrent RPCs per server.
func FlushPipelineWindowed(b *testing.B) { flushPipeline(b, 4) }
