package perfbench

import (
	"context"
	"testing"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
)

// The ping-pong benchmarks measure the stable producer-consumer
// conflict pattern of DESIGN.md §13: two clients alternate whole-range
// NBW acquires on one resource, so every acquire after warm-up
// conflicts with the peer's cached lock. The interesting number is not
// ns/op (the in-process conn has no wire latency) but how many server
// RPCs each ownership exchange costs, reported as the custom metric
// server_rpcs/exchange from the engine's LockOps counter: the classic
// revoke path pays Lock + Release = 2 per exchange, while the handoff
// fast path stamps the revoke with a delegation and the transfer runs
// client-to-client, leaving only the Lock itself (delegation acks
// piggyback on it) — about 1 per exchange. Protocol counts are
// hardware-independent, so cmd/benchcheck gates them absolutely.

// ppHarness is an in-process server plus two lock clients with direct
// (function-call) notifier, conn, and peer-transport paths.
type ppHarness struct {
	srv     *dlm.Server
	clients map[dlm.ClientID]*dlm.LockClient
}

// ppNotifier delivers revocations (stamped or not) and server-sent
// activations straight to the in-process clients, acking each revoke
// once delivered.
type ppNotifier struct{ h *ppHarness }

func (n ppNotifier) Revoke(_ context.Context, rv dlm.Revocation) {
	if c, ok := n.h.clients[rv.Client]; ok {
		c.OnRevokeStamped(rv.Resource, rv.Lock, rv.Handoff)
	}
	n.h.srv.RevokeAck(rv.Resource, rv.Lock)
}

func (n ppNotifier) Handoff(_ context.Context, cl dlm.ClientID, res dlm.ResourceID, id dlm.LockID) {
	if c, ok := n.h.clients[cl]; ok {
		c.OnHandoff(res, id)
	}
}

// ppConn is directConn plus the standalone delegation ack, giving the
// benchmark clients the same two ack paths (piggyback and standalone)
// as a wire-connected client.
type ppConn struct{ srv *dlm.Server }

func (p ppConn) Lock(ctx context.Context, req dlm.Request) (dlm.Grant, error) {
	return p.srv.Lock(ctx, req)
}
func (p ppConn) Release(_ context.Context, res dlm.ResourceID, id dlm.LockID) error {
	p.srv.Release(res, id)
	return nil
}
func (p ppConn) Downgrade(_ context.Context, res dlm.ResourceID, id dlm.LockID, m dlm.Mode) error {
	return p.srv.Downgrade(res, id, m)
}
func (p ppConn) HandoffAck(_ context.Context, res dlm.ResourceID, id dlm.LockID) error {
	p.srv.HandoffAck(res, id)
	return nil
}

func newPingPong(policy dlm.Policy) *ppHarness {
	h := &ppHarness{clients: make(map[dlm.ClientID]*dlm.LockClient)}
	h.srv = dlm.NewServer(policy, ppNotifier{h})
	noFlush := dlm.FlusherFunc(func(context.Context, dlm.ResourceID, extent.Extent, extent.SN) error { return nil })
	router := func(dlm.ResourceID) dlm.ServerConn { return ppConn{srv: h.srv} }
	for id := dlm.ClientID(1); id <= 2; id++ {
		h.clients[id] = dlm.NewLockClient(id, policy, router, noFlush)
	}
	if policy.Handoff {
		for _, c := range h.clients {
			c.SetPeerSender(dlm.PeerSenderFunc(func(_ context.Context, peer dlm.ClientID, res dlm.ResourceID, id dlm.LockID, acks []dlm.LockID, bcast *dlm.BroadcastStamp) error {
				h.clients[peer].OnHandoffMsg(res, id, false, acks, bcast)
				return nil
			}))
		}
	}
	return h
}

func pingPong(b *testing.B, policy dlm.Policy) {
	h := newPingPong(policy)
	ctx := context.Background()
	res := dlm.ResourceID(1)
	rng := extent.New(0, window*blockSize)
	step := func(i int) {
		c := h.clients[dlm.ClientID(1+i%2)]
		hd, err := c.Acquire(ctx, res, dlm.NBW, rng)
		if err != nil {
			b.Fatal(err)
		}
		c.Unlock(hd)
	}
	// Two warm-up exchanges so the measured loop starts mid-pattern:
	// every measured acquire conflicts with the peer's cached lock.
	step(0)
	step(1)
	b.ReportAllocs()
	b.ResetTimer()
	start := h.srv.Stats.LockOps.Load()
	for i := 0; i < b.N; i++ {
		step(i)
	}
	b.StopTimer()
	ops := h.srv.Stats.LockOps.Load() - start
	b.ReportMetric(float64(ops)/float64(b.N), "server_rpcs/exchange")
	for _, c := range h.clients {
		c.FlushHandoffAcks(ctx)
		c.Close()
	}
	h.srv.Shutdown()
}

// ServerPingPong: the exchange pattern through the classic revoke path
// (handoff off) — the 2 server-RPCs-per-exchange baseline.
func ServerPingPong(b *testing.B) {
	pingPong(b, dlm.SeqDLM())
}

// HandoffPingPong: the same pattern with the handoff fast path on —
// transfers run client-to-client and the per-exchange server cost drops
// to the Lock RPC alone.
func HandoffPingPong(b *testing.B) {
	policy := dlm.SeqDLM()
	policy.Handoff = true
	pingPong(b, policy)
}
