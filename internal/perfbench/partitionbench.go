package perfbench

import (
	"context"
	"sync/atomic"
	"testing"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
	"ccpfs/internal/sim"
)

// Partition-scaling benchmarks: the same grant/release workload routed
// across N lock-server engines by the hash-slot partition map, with each
// engine's RPC admission capped by a sim.RateLimiter at the paper's
// per-server processing rate. A single server saturates at scaleServerOPS;
// N servers saturate at N times that, so the Scale1/ScaleN ns-per-op
// ratio measures how much lock throughput partitioning actually buys —
// independent of how fast the host happens to be, which is what makes
// the ScaleN gate in benchcheck meaningful on CI runners.

const (
	// scaleServerOPS is the per-engine admission cap. It is scaled far
	// below the paper's per-server RPC rate (Table I's ~213k OPS) so
	// that every worker's inter-op gap stays well above the scheduler's
	// sleep granularity (~1ms on small CI hosts): with per-op gaps in
	// the milliseconds, admission timing errors amortize away and the
	// measured throughput is exactly the capacity model's. The absolute
	// rate cancels out of the Scale1/ScaleN ratio the gate reads.
	scaleServerOPS = 2000
	// scaleResources is each worker's private resource set, cycled
	// per-op so every worker spreads its load across all servers.
	scaleResources = 64
)

func lockGrantScale(b *testing.B, nServers int) {
	servers := make([]*dlm.Server, nServers)
	limiters := make([]*sim.RateLimiter, nServers)
	for i := range servers {
		servers[i] = dlm.NewServer(dlm.SeqDLM(), dlm.NotifierFunc(func(context.Context, dlm.Revocation) {}))
		limiters[i] = sim.NewRateLimiter(scaleServerOPS)
	}
	pmap := partition.UniformMap(1, nServers)
	rng := extent.New(0, blockSize)

	// Far more goroutines than GOMAXPROCS: workers spend almost all of
	// each op queued at a limiter, and the offered load (roughly
	// workers / sleep-granularity) must exceed even the 8-server
	// aggregate capacity for the measurement to be saturation
	// throughput rather than worker-count throughput.
	b.SetParallelism(64)
	var nextWorker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gid := nextWorker.Add(1)
		client := dlm.ClientID(gid)
		base := uint64(gid) * 1_000_000
		i := uint64(0)
		for pb.Next() {
			rid := base + i%scaleResources
			i++
			owner := pmap.OwnerOf(rid)
			limiters[owner].Wait()
			srv := servers[owner]
			g, err := srv.Lock(context.Background(), dlm.Request{
				Resource: dlm.ResourceID(rid), Client: client, Mode: dlm.NBW, Range: rng,
			})
			if err != nil {
				b.Fatal(err)
			}
			srv.Release(dlm.ResourceID(rid), g.LockID)
		}
	})
}

// LockGrantScale1 is the grant/release workload against one
// capacity-capped lock server — the unpartitioned baseline.
func LockGrantScale1(b *testing.B) { lockGrantScale(b, 1) }

// LockGrantScale2 partitions the same workload across two servers.
func LockGrantScale2(b *testing.B) { lockGrantScale(b, 2) }

// LockGrantScale4 partitions the same workload across four servers;
// benchcheck gates Scale1/Scale4 >= 2x.
func LockGrantScale4(b *testing.B) { lockGrantScale(b, 4) }

// LockGrantScale8 partitions the same workload across eight servers —
// the tail of the scaling curve in BENCH_dlm.json.
func LockGrantScale8(b *testing.B) { lockGrantScale(b, 8) }
