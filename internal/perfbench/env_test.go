package perfbench

import "testing"

func TestCountCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"0", 1},
		{"0-7", 8},
		{"0-3,8,10-11", 7},
		{" 0-1 ", 2},
		{"", 0},
		{"0-", 0},
		{"3-1", 0},
		{"x", 0},
	}
	for _, c := range cases {
		if got := countCPUList(c.in); got != c.want {
			t.Errorf("countCPUList(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

// The live affinity mask can never exceed what the runtime saw at
// startup by more than the machine has, and numCPU must always return
// something positive for Env to be meaningful.
func TestNumCPUPositive(t *testing.T) {
	if n := numCPU(); n < 1 {
		t.Fatalf("numCPU() = %d, want >= 1", n)
	}
}
