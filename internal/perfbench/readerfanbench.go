package perfbench

import (
	"context"
	"sync"
	"testing"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
)

// The reader-fan benchmarks measure the write-then-fan-out rotation of
// DESIGN.md §14: one writer displaces a cohort of eight readers, which
// then re-acquire, round after round. The interesting number is
// server_rpcs/reader — the server lock RPCs each reader-round costs.
// The server path pays at least one Lock per reader per round; with
// ReaderFanout on, the cohort's leases are pre-armed by the writer's
// gather grant and propagate peer-to-peer, so the round's server cost
// collapses to the writer's single Lock, amortized over the cohort.
// Protocol counts are hardware-independent, so cmd/benchcheck gates
// them absolutely.

const fanReaders = 8

// fanHarness is an in-process server plus one writer and fanReaders
// reader clients wired with direct notifier, conn, transfer, and lease
// propagation paths.
type fanHarness struct {
	srv     *dlm.Server
	clients map[dlm.ClientID]*dlm.LockClient
}

func (h *fanHarness) Revoke(_ context.Context, rv dlm.Revocation) {
	if c, ok := h.clients[rv.Client]; ok {
		c.OnRevokeStamped(rv.Resource, rv.Lock, rv.Handoff)
	}
	h.srv.RevokeAck(rv.Resource, rv.Lock)
}

func (h *fanHarness) Handoff(_ context.Context, cl dlm.ClientID, res dlm.ResourceID, id dlm.LockID) {
	if c, ok := h.clients[cl]; ok {
		c.OnHandoff(res, id)
	}
}

// SendHandoff and SendLease make fanHarness the peer transport of every
// client: transfers and propagations are direct calls.
func (h *fanHarness) SendHandoff(_ context.Context, peer dlm.ClientID, res dlm.ResourceID, id dlm.LockID, acks []dlm.LockID, bcast *dlm.BroadcastStamp) error {
	h.clients[peer].OnHandoffMsg(res, id, false, acks, bcast)
	return nil
}

func (h *fanHarness) SendLease(_ context.Context, peer dlm.ClientID, res dlm.ResourceID, grant *dlm.BroadcastStamp) error {
	h.clients[peer].OnLeasePropagate(res, grant)
	return nil
}

func newFanHarness(policy dlm.Policy) *fanHarness {
	h := &fanHarness{clients: make(map[dlm.ClientID]*dlm.LockClient)}
	h.srv = dlm.NewServer(policy, nil)
	h.srv.SetNotifier(h)
	noFlush := dlm.FlusherFunc(func(context.Context, dlm.ResourceID, extent.Extent, extent.SN) error { return nil })
	router := func(dlm.ResourceID) dlm.ServerConn { return ppConn{srv: h.srv} }
	for id := dlm.ClientID(1); id <= 1+fanReaders; id++ {
		c := dlm.NewLockClient(id, policy, router, noFlush)
		c.SetPeerSender(h)
		h.clients[id] = c
	}
	return h
}

func readerFan(b *testing.B, policy dlm.Policy) {
	h := newFanHarness(policy)
	ctx := context.Background()
	res := dlm.ResourceID(1)
	rng := extent.New(0, window*blockSize)
	round := func() {
		w, err := h.clients[1].Acquire(ctx, res, dlm.NBW, rng)
		if err != nil {
			b.Fatal(err)
		}
		h.clients[1].Unlock(w)
		var wg sync.WaitGroup
		for i := 0; i < fanReaders; i++ {
			c := h.clients[dlm.ClientID(2+i)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				hd, err := c.Acquire(ctx, res, dlm.PR, rng)
				if err != nil {
					b.Error(err)
					return
				}
				c.Unlock(hd)
			}()
		}
		wg.Wait()
	}
	// Two warm-up rounds so the measured loop starts mid-rotation: the
	// first broadcast has formed and every later round runs on gathers
	// and pre-armed handback leases.
	round()
	round()
	b.ReportAllocs()
	b.ResetTimer()
	start := h.srv.Stats.LockOps.Load()
	for i := 0; i < b.N; i++ {
		round()
	}
	b.StopTimer()
	ops := h.srv.Stats.LockOps.Load() - start
	b.ReportMetric(float64(ops)/float64(b.N*fanReaders), "server_rpcs/reader")
	for _, c := range h.clients {
		c.FlushHandoffAcks(ctx)
		c.Close()
	}
	h.srv.Shutdown()
}

// ReaderFanServer: the rotation through the server grant path (fan-out
// off) — every reader-round pays its own lock RPC, the ≥1 baseline.
func ReaderFanServer(b *testing.B) {
	readerFan(b, dlm.SeqDLM())
}

// ReaderFanDelegated: the same rotation with the reader fan-out on —
// leases ride batched grants and peer-to-peer propagation, and the
// per-reader server cost collapses toward 1/N of the writer's lock RPC.
func ReaderFanDelegated(b *testing.B) {
	policy := dlm.SeqDLM()
	policy.Handoff = true
	policy.ReaderFanout = true
	readerFan(b, policy)
}
