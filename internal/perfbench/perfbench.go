// Package perfbench holds the parallel hot-path benchmarks of the
// node-local IO stack: extent-cache apply/lookup, data-server flush,
// page-cache mixed read/write, cached-lock hits, and raw DLM
// grant/release. Each benchmark body is an exported func(*testing.B) so
// it runs both under `go test -bench` (thin wrappers live next to the
// package under test) and programmatically via testing.Benchmark from
// `seqbench -benchjson`, which records the results in BENCH_dlm.json to
// track the perf trajectory across PRs.
//
// Every benchmark is b.RunParallel-shaped with each worker goroutine
// pinned to its own stripe / resource: the measured quantity is
// aggregate throughput when the workload itself has no data conflicts,
// i.e. exactly the serialization the node-local locks add. The flush
// benchmarks include the per-op cleanup budget check the data server's
// write routine performs (an O(1) atomic load here; an O(stripes) scan
// under the cache mutex before the counters were made atomic). The
// *CleanupParallel variants additionally run a daemon-style poller
// (entry-count check + cleanup round in a loop) concurrently, the way
// extcache.Daemon does, so they also measure how much the background
// task stalls foreground IO.
package perfbench

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"ccpfs/internal/dataserver"
	"ccpfs/internal/dlm"
	"ccpfs/internal/extcache"
	"ccpfs/internal/extent"
	"ccpfs/internal/pagecache"
	"ccpfs/internal/wire"
)

// benchStripes is the number of distinct stripes/resources the parallel
// benchmarks spread over; workers are assigned round-robin so any two
// workers touch different stripes whenever GOMAXPROCS <= benchStripes.
const benchStripes = 64

// cleanupStripes is the stripe population for the *CleanupParallel
// variants: a data server realistically hosts thousands of stripes, and
// the size of the stripe set is exactly what the cleanup daemon's
// entry-count polls and batch scans must not multiply into foreground
// stalls.
const cleanupStripes = 4096

// blockSize is the per-op payload of the data-moving benchmarks.
const blockSize = 4096

// window bounds the per-stripe offset space so trees and page maps stay
// at a steady size instead of growing with b.N.
const window = 256

// worker hands out distinct stripe slots to RunParallel goroutines.
type worker struct {
	next atomic.Uint64
}

func (w *worker) stripe() uint64 { return w.next.Add(1) % benchStripes }

// ExtcacheApplyParallel: concurrent SN-tagged inserts on distinct
// stripes — the extent-cache half of the flush path. Like the data
// server's write routine, every op also runs the cleanup budget check
// (dataserver.Flush tests NeedsCleanup after each merge to wake the
// cleanup daemon promptly).
func ExtcacheApplyParallel(b *testing.B) {
	c := extcache.New(0, false)
	var w worker
	var sn atomic.Uint64
	b.ReportAllocs()
	b.SetBytes(blockSize)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		stripe := w.stripe()
		i, over := 0, 0
		for pb.Next() {
			off := int64(i%window) * blockSize
			c.Apply(stripe, extent.Span(off, blockSize), sn.Add(1))
			if c.NeedsCleanup() {
				over++
			}
			i++
		}
		_ = over
	})
}

// ExtcacheApplyCleanupParallel: same insert load (including the per-op
// budget check of the flush path) while a daemon-style poller loops
// over Entries + CleanupRound, the way extcache.Daemon does when the
// cache is over budget. The mSN query pins every entry (msn=0) so the
// cleanup scan runs at full batch size each round.
func ExtcacheApplyCleanupParallel(b *testing.B) {
	c := extcache.New(1, false) // budget of 1 entry: always over, daemon always scanning
	// Populate the full stripe set up front so the daemon's entry-count
	// polls see the realistic stripe population from the first iteration.
	for s := uint64(0); s < cleanupStripes; s++ {
		c.Apply(s, extent.Span(0, blockSize), 1)
	}
	pinned := func(uint64, extent.Extent) (extent.SN, bool) { return 0, true }
	stopped := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(stopped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if c.NeedsCleanup() {
				c.CleanupRound(pinned)
			}
		}
	}()
	var w worker
	var sn atomic.Uint64
	b.ReportAllocs()
	b.SetBytes(blockSize)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		stripe := w.stripe()
		i, over := 0, 0
		for pb.Next() {
			off := int64(i%window) * blockSize
			c.Apply(stripe, extent.Span(off, blockSize), sn.Add(1))
			if c.NeedsCleanup() {
				over++
			}
			i++
		}
		_ = over
	})
	b.StopTimer()
	close(stop)
	<-stopped
}

// ExtcacheMaxSNParallel: concurrent read-side lookups (the data-server
// read path queries MaxSN for every read RPC) on distinct stripes.
func ExtcacheMaxSNParallel(b *testing.B) {
	c := extcache.New(0, false)
	for s := uint64(0); s < benchStripes; s++ {
		for i := 0; i < window; i++ {
			c.Apply(s, extent.Span(int64(i)*blockSize, blockSize), extent.SN(i+1))
		}
	}
	var w worker
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		stripe := w.stripe()
		i := 0
		for pb.Next() {
			off := int64(i%window) * blockSize
			c.MaxSN(stripe, extent.Span(off, blockSize))
			i++
		}
	})
}

// newBenchServer builds an in-process data server with no simulated
// hardware, no listener, and no cleanup daemon: Flush cost is extent
// cache + store only.
func newBenchServer() *dataserver.Server {
	return dataserver.New(dataserver.Config{Name: "bench", Policy: dlm.SeqDLM()})
}

// DataserverFlushParallel: concurrent SN-tagged flushes to distinct
// stripes through the full server-side write routine (extent cache
// merge + stripe store write).
func DataserverFlushParallel(b *testing.B) {
	s := newBenchServer()
	var w worker
	var sn atomic.Uint64
	data := make([]byte, blockSize)
	b.ReportAllocs()
	b.SetBytes(blockSize)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		stripe := w.stripe()
		req := &wire.FlushRequest{Resource: stripe, Client: 1}
		i := 0
		for pb.Next() {
			off := int64(i%window) * blockSize
			req.Blocks = req.Blocks[:0]
			req.Blocks = append(req.Blocks, wire.Block{
				Range: extent.Span(off, blockSize),
				SN:    sn.Add(1),
				Data:  data,
			})
			if err := s.Flush(req); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// DataserverFlushCleanupParallel: the flush load with the extent-cache
// cleanup poller running concurrently, as on a real data server whose
// cache sits over budget with every entry pinned by unreleased locks.
func DataserverFlushCleanupParallel(b *testing.B) {
	s := newBenchServer()
	for st := uint64(0); st < cleanupStripes; st++ {
		s.Cache.Apply(st, extent.Span(0, blockSize), 1)
	}
	pinned := func(uint64, extent.Extent) (extent.SN, bool) { return 0, true }
	stopped := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(stopped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s.Cache.Entries() > 0 {
				s.Cache.CleanupRound(pinned)
			}
		}
	}()
	var w worker
	var sn atomic.Uint64
	data := make([]byte, blockSize)
	b.ReportAllocs()
	b.SetBytes(blockSize)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		stripe := w.stripe()
		req := &wire.FlushRequest{Resource: stripe, Client: 1}
		i := 0
		for pb.Next() {
			off := int64(i%window) * blockSize
			req.Blocks = req.Blocks[:0]
			req.Blocks = append(req.Blocks, wire.Block{
				Range: extent.Span(off, blockSize),
				SN:    sn.Add(1),
				Data:  data,
			})
			if err := s.Flush(req); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-stopped
}

// PagecacheMixedParallel: each worker writes then reads back a page on
// its own stripe — the client-side cache hot path of WriteAt/ReadAt.
func PagecacheMixedParallel(b *testing.B) {
	c := pagecache.New(pagecache.Config{PageSize: blockSize})
	var w worker
	data := make([]byte, blockSize)
	b.ReportAllocs()
	b.SetBytes(2 * blockSize)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		stripe := w.stripe()
		buf := make([]byte, blockSize)
		i := 0
		for pb.Next() {
			off := int64(i%window) * blockSize
			c.Write(stripe, off, data, extent.SN(i+1))
			c.Read(stripe, off, buf)
			i++
		}
	})
}

// directConn adapts an in-process dlm.Server to dlm.ServerConn.
type directConn struct{ srv *dlm.Server }

func (d directConn) Lock(ctx context.Context, req dlm.Request) (dlm.Grant, error) {
	return d.srv.Lock(ctx, req)
}
func (d directConn) Release(_ context.Context, res dlm.ResourceID, id dlm.LockID) error {
	d.srv.Release(res, id)
	return nil
}
func (d directConn) Downgrade(_ context.Context, res dlm.ResourceID, id dlm.LockID, m dlm.Mode) error {
	return d.srv.Downgrade(res, id, m)
}

// LockClientCachedHitParallel: concurrent cached-lock lookups on
// distinct resources within one client — the fast path of every IO
// operation once the working set's locks are cached.
func LockClientCachedHitParallel(b *testing.B) {
	policy := dlm.SeqDLM()
	srv := dlm.NewServer(policy, dlm.NotifierFunc(func(context.Context, dlm.Revocation) {}))
	noFlush := dlm.FlusherFunc(func(context.Context, dlm.ResourceID, extent.Extent, extent.SN) error { return nil })
	c := dlm.NewLockClient(1, policy, func(dlm.ResourceID) dlm.ServerConn { return directConn{srv} }, noFlush)
	for r := 0; r < benchStripes; r++ {
		h, err := c.Acquire(context.Background(), dlm.ResourceID(r), dlm.NBW, extent.New(0, window*blockSize))
		if err != nil {
			b.Fatal(err)
		}
		c.Unlock(h)
	}
	var w worker
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		res := dlm.ResourceID(w.stripe())
		for pb.Next() {
			h, err := c.Acquire(context.Background(), res, dlm.NBW, extent.New(0, blockSize))
			if err != nil {
				b.Error(err)
				return
			}
			c.Unlock(h)
		}
	})
}

// DLMGrantReleaseParallel: uncontended grant/release rounds through the
// server engine on distinct resources — lock-table shard + lock-ID
// allocation cost.
func DLMGrantReleaseParallel(b *testing.B) {
	srv := dlm.NewServer(dlm.SeqDLM(), dlm.NotifierFunc(func(context.Context, dlm.Revocation) {}))
	var w worker
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		res := dlm.ResourceID(w.stripe())
		for pb.Next() {
			g, err := srv.Lock(context.Background(), dlm.Request{Resource: res, Client: 1, Mode: dlm.NBW, Range: extent.New(0, blockSize)})
			if err != nil {
				b.Error(err)
				return
			}
			srv.Release(res, g.LockID)
		}
	})
}

// NamedBench pairs a benchmark body with its reporting name.
type NamedBench struct {
	Name string
	Fn   func(*testing.B)
}

// All returns every hot-path benchmark in reporting order.
func All() []NamedBench {
	return []NamedBench{
		{"ExtcacheApplyParallel", ExtcacheApplyParallel},
		{"ExtcacheApplyCleanupParallel", ExtcacheApplyCleanupParallel},
		{"ExtcacheMaxSNParallel", ExtcacheMaxSNParallel},
		{"DataserverFlushParallel", DataserverFlushParallel},
		{"DataserverFlushCleanupParallel", DataserverFlushCleanupParallel},
		{"PagecacheMixedParallel", PagecacheMixedParallel},
		{"LockClientCachedHitParallel", LockClientCachedHitParallel},
		{"DLMGrantReleaseParallel", DLMGrantReleaseParallel},
		{"RpcRoundTrip", RpcRoundTrip},
		{"RpcRoundTripObs", RpcRoundTripObs},
		{"RpcRoundTripParallel", RpcRoundTripParallel},
		{"ObsHistogramRecordParallel", ObsHistogramRecordParallel},
		{"FlushPipelineSequential", FlushPipelineSequential},
		{"FlushPipelineWindowed", FlushPipelineWindowed},
		{"LockGrantIndexed", LockGrantIndexed},
		{"LockGrantLinear", LockGrantLinear},
		{"RevokeStorm", RevokeStorm},
		{"RevokeStormUnbatched", RevokeStormUnbatched},
		{"LockGrantScale1", LockGrantScale1},
		{"LockGrantScale2", LockGrantScale2},
		{"LockGrantScale4", LockGrantScale4},
		{"LockGrantScale8", LockGrantScale8},
		{"ServerPingPong", ServerPingPong},
		{"HandoffPingPong", HandoffPingPong},
		{"ReaderFanServer", ReaderFanServer},
		{"ReaderFanDelegated", ReaderFanDelegated},
	}
}

// Result is one benchmark's outcome in BENCH_dlm.json.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra carries custom b.ReportMetric values (e.g. the ping-pong
	// benchmarks' server_rpcs/exchange). Unlike ns/op these are
	// protocol counts, hardware-independent and safe to gate on
	// absolute thresholds.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Env records the machine facts a result file needs to be interpreted.
// It is captured inside Run, after the GOMAXPROCS override is applied,
// so the recorded values are exactly what the benchmarks saw — a report
// assembled by the caller from its own environment can drift (the
// original BENCH_dlm.json carried num_cpu from the wrong moment).
type Env struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Warn flags an environment that distorts parallel results: fewer
	// schedulable CPUs than GOMAXPROCS means the runtime multiplexes
	// benchmark workers onto shared cores and contention numbers
	// measure the scheduler, not the code. Recorded in the report so a
	// reviewer of BENCH_dlm.json sees the caveat next to the numbers.
	Warn string `json:"warn,omitempty"`
}

// Run executes every benchmark at the given GOMAXPROCS and returns the
// results plus the environment they ran under. The previous GOMAXPROCS
// is restored before returning.
func Run(procs int) ([]Result, Env) {
	if procs > 0 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
	}
	env := Env{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: numCPU()}
	if env.NumCPU < env.GOMAXPROCS {
		env.Warn = fmt.Sprintf("only %d schedulable CPUs for GOMAXPROCS=%d: parallel results are scheduler-bound",
			env.NumCPU, env.GOMAXPROCS)
	}
	var out []Result
	for _, nb := range All() {
		out = append(out, Measure(nb))
	}
	return out, env
}

// Measure runs one benchmark via testing.Benchmark and converts the
// outcome to a Result.
func Measure(nb NamedBench) Result {
	r := testing.Benchmark(nb.Fn)
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	res := Result{
		Name:        nb.Name,
		N:           r.N,
		NsPerOp:     nsPerOp,
		OpsPerSec:   1e9 / nsPerOp,
		AllocsPerOp: r.AllocsPerOp(),
	}
	if r.Bytes > 0 {
		res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	if len(r.Extra) > 0 {
		res.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			res.Extra[k] = v
		}
	}
	return res
}

// RunNamed executes only the named benchmarks (in the given order) at
// the given GOMAXPROCS. Unknown names are reported as an error by the
// caller via the nil-Result convention: the returned slice is aligned
// with names, and a missing benchmark yields a Result with N == 0.
func RunNamed(procs int, names []string) []Result {
	if procs > 0 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
	}
	byName := map[string]NamedBench{}
	for _, nb := range All() {
		byName[nb.Name] = nb
	}
	out := make([]Result, len(names))
	for i, name := range names {
		if nb, ok := byName[name]; ok {
			out[i] = Measure(nb)
		} else {
			out[i] = Result{Name: name}
		}
	}
	return out
}

// String renders a result line in `go test -bench` style.
func (r Result) String() string {
	s := fmt.Sprintf("%-32s %10d %12.1f ns/op %14.0f ops/s", r.Name, r.N, r.NsPerOp, r.OpsPerSec)
	if r.MBPerSec > 0 {
		s += fmt.Sprintf(" %10.1f MB/s", r.MBPerSec)
	}
	return s
}
