package perfbench

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// numCPU reports how many CPUs the process is actually allowed to run
// on right now. runtime.NumCPU caches the affinity mask once at process
// start, so a harness that re-pins the process (or a container whose
// cpuset is resized) after startup leaves it stale — which is how a
// BENCH_dlm.json could record num_cpu 1 next to gomaxprocs 8 and make
// every parallel result uninterpretable. Re-read the live mask from
// /proc/self/status and fall back to runtime.NumCPU where the file (or
// the field) is unavailable.
func numCPU() int {
	if n := affinityCPUs(); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// affinityCPUs parses the Cpus_allowed_list line of /proc/self/status,
// returning 0 if it cannot.
func affinityCPUs() int {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		rest, ok := strings.CutPrefix(line, "Cpus_allowed_list:")
		if !ok {
			continue
		}
		return countCPUList(strings.TrimSpace(rest))
	}
	return 0
}

// countCPUList counts the CPUs named by a kernel cpulist string such as
// "0-3,8,10-11". Returns 0 on malformed input.
func countCPUList(s string) int {
	n := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi, ranged := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return 0
		}
		if !ranged {
			n++
			continue
		}
		z, err := strconv.Atoi(hi)
		if err != nil || z < a {
			return 0
		}
		n += z - a + 1
	}
	return n
}
