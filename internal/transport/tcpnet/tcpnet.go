// Package tcpnet implements transport.Network over real TCP sockets with
// length-prefixed frames. It is what the standalone ccpfs-server and
// ccpfs-cli binaries use, demonstrating that the reproduction is a real
// networked system and not only a simulation harness.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"ccpfs/internal/transport"
)

// MaxFrame bounds a single message; larger frames indicate corruption
// (or a hostile peer) and fail the connection.
const MaxFrame = 256 << 20

// Network dials and listens on TCP.
type Network struct{}

// New returns the TCP fabric.
func New() *Network { return &Network{} }

// Listen binds a TCP listener at addr (host:port; ":0" picks a port).
func (*Network) Listen(addr string) (transport.Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &listener{nl: nl}, nil
}

// Dial connects to a TCP address.
func (*Network) Dial(addr string) (transport.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &conn{nc: nc}, nil
}

type listener struct{ nl net.Listener }

func (l *listener) Accept() (transport.Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, transport.ErrClosed
		}
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &conn{nc: nc}, nil
}

func (l *listener) Close() error { return l.nl.Close() }

func (l *listener) Addr() string { return l.nl.Addr().String() }

// conn frames messages as a 4-byte big-endian length followed by the
// payload.
type conn struct {
	nc      net.Conn
	sendMu  sync.Mutex
	recvBuf [4]byte
}

func (c *conn) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", len(msg))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if _, err := c.nc.Write(hdr[:]); err != nil {
		return mapErr(err)
	}
	if _, err := c.nc.Write(msg); err != nil {
		return mapErr(err)
	}
	return nil
}

func (c *conn) Recv() ([]byte, error) {
	if _, err := io.ReadFull(c.nc, c.recvBuf[:]); err != nil {
		return nil, mapErr(err)
	}
	n := binary.BigEndian.Uint32(c.recvBuf[:])
	if n > MaxFrame {
		c.nc.Close()
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(c.nc, msg); err != nil {
		return nil, mapErr(err)
	}
	return msg, nil
}

func (c *conn) Close() error { return c.nc.Close() }

func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return transport.ErrClosed
	}
	return err
}
