// Package tcpnet implements transport.Network over real TCP sockets with
// length-prefixed frames. It is what the standalone ccpfs-server and
// ccpfs-cli binaries use, demonstrating that the reproduction is a real
// networked system and not only a simulation harness.
//
// The send path is a group commit: concurrent senders enqueue frames and
// the first one becomes the writer leader, draining the whole queue with
// a single net.Buffers writev — so the 4-byte length prefix and payload
// always leave in one syscall, and a burst of small frames (lock
// requests, acks, cancel frames) coalesces into one segment instead of
// one syscall each. Leadership hands off to a waiting sender when the
// leader's own frame is done, bounding any one Send's time at the helm.
package tcpnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"ccpfs/internal/transport"
)

// MaxFrame bounds a single message; larger frames indicate corruption
// (or a hostile peer) and fail the connection.
const MaxFrame = 256 << 20

// Network dials and listens on TCP.
type Network struct{}

// New returns the TCP fabric.
func New() *Network { return &Network{} }

// Listen binds a TCP listener at addr (host:port; ":0" picks a port).
func (*Network) Listen(addr string) (transport.Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &listener{nl: nl}, nil
}

// Dial connects to a TCP address.
func (*Network) Dial(addr string) (transport.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newConn(nc), nil
}

type listener struct{ nl net.Listener }

func (l *listener) Accept() (transport.Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, transport.ErrClosed
		}
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newConn(nc), nil
}

func (l *listener) Close() error { return l.nl.Close() }

func (l *listener) Addr() string { return l.nl.Addr().String() }

// conn frames messages as a 4-byte big-endian length followed by the
// payload.
type conn struct {
	nc net.Conn
	br *bufio.Reader // frame scanner: fewer read syscalls, frames survive split reads

	// Group-commit send state: senders enqueue outFrames under qmu; the
	// first to find no leader drains the queue with one writev per batch.
	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   []*outFrame
	spare   []*outFrame // ping-pong backing for queue, reused across batches
	writing bool        // a leader is draining the queue
	scratch net.Buffers // leader's reused iovec (hdr, body, hdr, body, ...)

	recvBuf [4]byte
}

// outFrame is one queued message: its length prefix, payload, and
// completion state. The frame (not the payload) is pooled.
type outFrame struct {
	hdr  [4]byte
	body []byte
	done bool
	err  error // raw write error; mapped by the submitting sender
}

var framePool = sync.Pool{New: func() any { return new(outFrame) }}

func newConn(nc net.Conn) *conn {
	c := &conn{nc: nc, br: bufio.NewReaderSize(nc, 64<<10)}
	c.qcond = sync.NewCond(&c.qmu)
	return c
}

func newFrame(msg []byte) *outFrame {
	fr := framePool.Get().(*outFrame)
	binary.BigEndian.PutUint32(fr.hdr[:], uint32(len(msg)))
	fr.body = msg
	fr.done = false
	fr.err = nil
	return fr
}

func putFrame(fr *outFrame) {
	fr.body = nil
	framePool.Put(fr)
}

func (c *conn) Send(ctx context.Context, msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", len(msg))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	fr := newFrame(msg)
	err := c.submit(ctx, fr)
	putFrame(fr)
	return err
}

// SendBatch transmits msgs as one unit: the frames are enqueued
// back to back, so the leader's writev puts them all in a single
// syscall (up to the kernel's iovec limit; Go chunks transparently).
func (c *conn) SendBatch(ctx context.Context, msgs [][]byte) error {
	for _, m := range msgs {
		if len(m) > MaxFrame {
			return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", len(m))
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	frs := make([]*outFrame, len(msgs))
	for i, m := range msgs {
		frs[i] = newFrame(m)
	}
	err := c.submit(ctx, frs...)
	for _, fr := range frs {
		putFrame(fr)
	}
	return err
}

// submit enqueues frs and blocks until every frame has been written (or
// failed). The first sender to find no active leader becomes one and
// drains the queue — its own frames and any concurrent sender's — with
// one writev per batch; the rest wait on the cond.
//
// A canceled Send mid-frame would corrupt the stream for every later
// message, so cancellation only poisons the whole connection: the
// watcher below forces a past write deadline, the in-flight writev
// aborts, and the resulting short frame makes the peer's next Recv fail
// too. That matches the contract — callers give up on the call, the
// endpoint tears down. The sender still waits for its frames' outcome
// (prompt, because the poisoned deadline fails writes immediately), so
// the payload buffers are never retained past return.
func (c *conn) submit(ctx context.Context, frs ...*outFrame) error {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			c.nc.SetWriteDeadline(time.Unix(1, 0)) // a past deadline aborts the write
		})
		defer func() {
			if !stop() {
				// The watcher ran: clear the poisoned deadline so that if
				// the write in fact completed first, later operations are
				// not spuriously aborted.
				c.nc.SetWriteDeadline(time.Time{})
			}
		}()
	}
	c.qmu.Lock()
	c.queue = append(c.queue, frs...)
	for {
		if allDone(frs) {
			break
		}
		if !c.writing {
			c.writing = true
			c.lead(frs)
			continue
		}
		c.qcond.Wait()
	}
	err := firstErr(frs)
	c.qmu.Unlock()
	return c.mapCtxErr(ctx, err)
}

// lead drains the queue as the writer leader. Called with c.qmu held and
// c.writing set; returns with c.qmu held. The leader steps down once its
// own frames are done (handing the queue to a waiting sender) or the
// queue is empty.
func (c *conn) lead(own []*outFrame) {
	for len(c.queue) > 0 && !allDone(own) {
		batch := c.queue
		c.queue = c.spare[:0]
		c.qmu.Unlock()

		bufs := c.scratch[:0]
		for _, fr := range batch {
			bufs = append(bufs, fr.hdr[:], fr.body)
		}
		wb := bufs
		_, err := wb.WriteTo(c.nc) // one writev for the whole batch
		for i := range bufs {
			bufs[i] = nil
		}
		c.scratch = bufs[:0]

		c.qmu.Lock()
		for i, fr := range batch {
			fr.err = err
			fr.done = true
			batch[i] = nil
		}
		c.spare = batch[:0]
		c.qcond.Broadcast()
	}
	c.writing = false
	if len(c.queue) > 0 {
		// Our frames are done but others are queued: wake a waiter to
		// take over leadership.
		c.qcond.Broadcast()
	}
}

func allDone(frs []*outFrame) bool {
	for _, fr := range frs {
		if !fr.done {
			return false
		}
	}
	return true
}

func firstErr(frs []*outFrame) error {
	for _, fr := range frs {
		if fr.err != nil {
			return fr.err
		}
	}
	return nil
}

// errFrameTooLarge poisons the connection: an oversized length prefix
// means the stream is corrupt (or hostile), not merely slow.
var errFrameTooLarge = errors.New("tcpnet: frame exceeds limit")

// readFrame scans one length-prefixed frame from br, which may deliver
// the prefix and payload across any number of split reads. The returned
// slice is freshly allocated and owned by the caller.
func readFrame(br *bufio.Reader, scratch *[4]byte) ([]byte, error) {
	if _, err := io.ReadFull(br, scratch[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(scratch[:])
	if n > MaxFrame {
		return nil, errFrameTooLarge
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(br, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

func (c *conn) Recv(ctx context.Context) ([]byte, error) {
	stop := c.watch(ctx, c.nc.SetReadDeadline)
	defer stop()
	msg, err := readFrame(c.br, &c.recvBuf)
	if errors.Is(err, errFrameTooLarge) {
		c.nc.Close()
		return nil, fmt.Errorf("tcpnet: inbound frame exceeds %d byte limit", MaxFrame)
	}
	if err != nil {
		return nil, c.mapCtxErr(ctx, err)
	}
	return msg, nil
}

// watch arms a context watcher that fires the given deadline setter when
// ctx ends, unblocking an in-flight read or write. The returned stop
// func disarms the watcher and clears the deadline.
func (c *conn) watch(ctx context.Context, setDeadline func(time.Time) error) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	stop := context.AfterFunc(ctx, func() {
		setDeadline(time.Unix(1, 0)) // a past deadline aborts the op
	})
	return func() {
		if !stop() {
			// The watcher ran: clear the poisoned deadline so later
			// operations on the connection are not spuriously aborted.
			setDeadline(time.Time{})
		}
	}
}

func (c *conn) Close() error { return c.nc.Close() }

// mapCtxErr attributes a deadline abort to the context that armed it.
func (c *conn) mapCtxErr(ctx context.Context, err error) error {
	if errors.Is(err, os.ErrDeadlineExceeded) && ctx.Err() != nil {
		return ctx.Err()
	}
	return mapErr(err)
}

func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return transport.ErrClosed
	}
	return err
}
