// Package tcpnet implements transport.Network over real TCP sockets with
// length-prefixed frames. It is what the standalone ccpfs-server and
// ccpfs-cli binaries use, demonstrating that the reproduction is a real
// networked system and not only a simulation harness.
package tcpnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"ccpfs/internal/transport"
)

// MaxFrame bounds a single message; larger frames indicate corruption
// (or a hostile peer) and fail the connection.
const MaxFrame = 256 << 20

// Network dials and listens on TCP.
type Network struct{}

// New returns the TCP fabric.
func New() *Network { return &Network{} }

// Listen binds a TCP listener at addr (host:port; ":0" picks a port).
func (*Network) Listen(addr string) (transport.Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &listener{nl: nl}, nil
}

// Dial connects to a TCP address.
func (*Network) Dial(addr string) (transport.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &conn{nc: nc}, nil
}

type listener struct{ nl net.Listener }

func (l *listener) Accept() (transport.Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, transport.ErrClosed
		}
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &conn{nc: nc}, nil
}

func (l *listener) Close() error { return l.nl.Close() }

func (l *listener) Addr() string { return l.nl.Addr().String() }

// conn frames messages as a 4-byte big-endian length followed by the
// payload.
type conn struct {
	nc      net.Conn
	sendMu  sync.Mutex
	recvBuf [4]byte
}

func (c *conn) Send(ctx context.Context, msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", len(msg))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	// A canceled Send mid-frame would corrupt the stream for every later
	// message, so cancellation only poisons the whole connection: the
	// deadline watcher aborts the write, and the resulting short frame
	// makes the peer's next Recv fail too. That matches the contract —
	// callers give up on the call, the endpoint tears down.
	stop := c.watch(ctx, c.nc.SetWriteDeadline)
	defer stop()
	if _, err := c.nc.Write(hdr[:]); err != nil {
		return c.mapCtxErr(ctx, err)
	}
	if _, err := c.nc.Write(msg); err != nil {
		return c.mapCtxErr(ctx, err)
	}
	return nil
}

func (c *conn) Recv(ctx context.Context) ([]byte, error) {
	stop := c.watch(ctx, c.nc.SetReadDeadline)
	defer stop()
	if _, err := io.ReadFull(c.nc, c.recvBuf[:]); err != nil {
		return nil, c.mapCtxErr(ctx, err)
	}
	n := binary.BigEndian.Uint32(c.recvBuf[:])
	if n > MaxFrame {
		c.nc.Close()
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(c.nc, msg); err != nil {
		return nil, c.mapCtxErr(ctx, err)
	}
	return msg, nil
}

// watch arms a context watcher that fires the given deadline setter when
// ctx ends, unblocking an in-flight read or write. The returned stop
// func disarms the watcher and clears the deadline.
func (c *conn) watch(ctx context.Context, setDeadline func(time.Time) error) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	stop := context.AfterFunc(ctx, func() {
		setDeadline(time.Unix(1, 0)) // a past deadline aborts the op
	})
	return func() {
		if !stop() {
			// The watcher ran: clear the poisoned deadline so later
			// operations on the connection are not spuriously aborted.
			setDeadline(time.Time{})
		}
	}
}

func (c *conn) Close() error { return c.nc.Close() }

// mapCtxErr attributes a deadline abort to the context that armed it.
func (c *conn) mapCtxErr(ctx context.Context, err error) error {
	if errors.Is(err, os.ErrDeadlineExceeded) && ctx.Err() != nil {
		return ctx.Err()
	}
	return mapErr(err)
}

func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return transport.ErrClosed
	}
	return err
}
