package tcpnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzFrameStream throws arbitrary bytes at the frame scanner — the
// code that decodes a batched writev stream back into individual
// frames. Whatever the input, the scanner must not panic, must not
// allocate more than the stream can back, and must consume frames
// whose combined size is bounded by the input.
func FuzzFrameStream(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 3, 'a', 'b', 'c'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	// Two back-to-back frames, as a coalesced batch would produce.
	f.Add([]byte{0, 0, 0, 1, 'x', 0, 0, 0, 2, 'y', 'z'})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var scratch [4]byte
		var consumed int
		for {
			msg, err := readFrame(br, &scratch)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, errFrameTooLarge) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			consumed += 4 + len(msg)
			if consumed > len(data) {
				t.Fatalf("decoded %d framed bytes from a %d byte stream", consumed, len(data))
			}
		}
	})
}

// FuzzFrameStreamRoundTrip encodes a batch of frames the way the writer
// leader lays them out (prefix, payload, prefix, payload, ...), splits
// the stream at an arbitrary point into two reads, and asserts the
// scanner returns exactly the original frames.
func FuzzFrameStreamRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), []byte(""), 3)
	f.Add([]byte{}, []byte{1, 2, 3}, 0)
	f.Fuzz(func(t *testing.T, a, b []byte, split int) {
		var stream []byte
		for _, p := range [][]byte{a, b} {
			stream = binary.BigEndian.AppendUint32(stream, uint32(len(p)))
			stream = append(stream, p...)
		}
		if split < 0 {
			split = 0
		}
		if split > len(stream) {
			split = len(stream)
		}
		br := bufio.NewReader(io.MultiReader(bytes.NewReader(stream[:split]), bytes.NewReader(stream[split:])))
		var scratch [4]byte
		for i, want := range [][]byte{a, b} {
			got, err := readFrame(br, &scratch)
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("frame %d corrupted: got %q want %q", i, got, want)
			}
		}
		if _, err := readFrame(br, &scratch); !errors.Is(err, io.EOF) {
			t.Fatalf("trailing data after %d frames: %v", 2, err)
		}
	})
}
