package tcpnet

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"ccpfs/internal/transport"
)

func TestOversizedSendRejected(t *testing.T) {
	tn := New()
	l, err := tn.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Accept()
	c, err := tn.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	huge := make([]byte, MaxFrame+1)
	if err := c.Send(context.Background(), huge); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestOversizedInboundFrameFailsConnection(t *testing.T) {
	tn := New()
	l, err := tn.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recvErr := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			recvErr <- err
			return
		}
		_, err = c.Recv(context.Background())
		recvErr <- err
	}()
	// A raw TCP client declaring a hostile frame length.
	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	raw.Write(hdr[:])
	select {
	case err := <-recvErr:
		if err == nil {
			t.Fatal("hostile frame length accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not reject hostile frame")
	}
}

func TestDialRefused(t *testing.T) {
	tn := New()
	if _, err := tn.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestListenerCloseMapsToErrClosed(t *testing.T) {
	tn := New()
	l, err := tn.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if err != transport.ErrClosed {
			t.Fatalf("Accept after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept not unblocked")
	}
}

func TestEmptyFrame(t *testing.T) {
	tn := New()
	l, _ := tn.Listen("127.0.0.1:0")
	defer l.Close()
	got := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		m, err := c.Recv(context.Background())
		if err == nil {
			got <- m
		}
	}()
	c, err := tn.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if len(m) != 0 {
			t.Fatalf("empty frame read as %d bytes", len(m))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("empty frame not delivered")
	}
}

// TestFrameSurvivesSplitRead feeds one frame to a receiver in many tiny
// TCP writes — the length prefix split mid-way, the payload dribbled a
// few bytes at a time — and asserts Recv reassembles it intact.
func TestFrameSurvivesSplitRead(t *testing.T) {
	tn := New()
	l, err := tn.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := make(chan []byte, 1)
	recvErr := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			recvErr <- err
			return
		}
		defer c.Close()
		m, err := c.Recv(context.Background())
		if err != nil {
			recvErr <- err
			return
		}
		got <- m
	}()
	nc, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	var frame []byte
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	// Split inside the 4-byte prefix, then dribble the payload.
	chunks := [][]byte{frame[:2], frame[2:5], frame[5:6]}
	for off := 6; off < len(frame); off += 100 {
		end := off + 100
		if end > len(frame) {
			end = len(frame)
		}
		chunks = append(chunks, frame[off:end])
	}
	for _, ch := range chunks {
		if _, err := nc.Write(ch); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case m := <-got:
		if !bytes.Equal(m, payload) {
			t.Fatalf("frame corrupted across split reads: got %d bytes", len(m))
		}
	case err := <-recvErr:
		t.Fatalf("recv: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for reassembled frame")
	}
}
