package transport

import "ccpfs/internal/obs"

// batchMetrics is the process-wide instrumentation for the coalesced
// send path: the distribution of frames per batch (how well group
// commit is working) and the total bytes handed to SendBatch. It is
// package-level rather than per-Conn because batching happens below
// the per-endpoint rpc layer; a process hosts one server (or one
// in-process test cluster), so process scope is the natural unit.
// Recording is two atomic-add bundles per batch — never per frame —
// and counts attempts, not just successful sends.
var batchMetrics struct {
	frames obs.Histogram // frames per SendBatch call
	bytes  obs.Counter   // payload bytes across all batches
}

// RegisterMetrics exposes the batch-path instruments in reg:
//
//	transport.batch_frames  histogram of frames per coalesced batch
//	transport.batch_bytes   counter of payload bytes sent in batches
//
// Register into exactly one registry per process (the data server's,
// or the cluster harness's) — merging two registries that both carry
// these process-wide instruments would double count.
func RegisterMetrics(reg *obs.Registry) {
	reg.RegisterHistogram("transport.batch_frames", &batchMetrics.frames)
	reg.RegisterCounter("transport.batch_bytes", &batchMetrics.bytes)
}

// recordBatch notes one coalesced batch of n frames totaling bytes.
func recordBatch(n int, bytes int64) {
	batchMetrics.frames.Record(int64(n))
	batchMetrics.bytes.Add(bytes)
}
