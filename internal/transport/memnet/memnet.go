// Package memnet is an in-process implementation of transport.Network
// with simulated link latency and bandwidth. It stands in for the
// paper's InfiniBand fabric: each connection direction is a reliable
// ordered queue whose messages are serialized through a per-direction
// bandwidth device (sim.Device) and delivered half an RTT after they
// finish transmitting, so lock round trips and bulk flushes cost what
// Equation (1) of the paper says they should.
package memnet

import (
	"sync"
	"time"

	"ccpfs/internal/sim"
	"ccpfs/internal/transport"
)

// Network is an in-process fabric. Nodes listen on arbitrary string
// addresses and dial each other by those names.
type Network struct {
	hw        sim.Hardware
	mu        sync.Mutex
	listeners map[string]*listener
}

// New returns a fabric with the given hardware model.
func New(hw sim.Hardware) *Network {
	return &Network{hw: hw, listeners: make(map[string]*listener)}
}

// Hardware returns the fabric's hardware model.
func (n *Network) Hardware() sim.Hardware { return n.hw }

// Listen registers addr. It fails if the address is taken.
func (n *Network) Listen(addr string) (transport.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, errAddrInUse
	}
	l := &listener{net: n, addr: addr, backlog: make(chan *conn, 128)}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening address.
func (n *Network) Dial(addr string) (transport.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, errNoListener
	}
	a, b := n.pair()
	select {
	case l.backlog <- b:
		return a, nil
	default:
		b.Close()
		a.Close()
		return nil, errBacklogFull
	}
}

// pair creates the two endpoints of a connection.
func (n *Network) pair() (*conn, *conn) {
	ab := newPipe(n.hw)
	ba := newPipe(n.hw)
	a := &conn{send: ab, recv: ba}
	b := &conn{send: ba, recv: ab}
	return a, b
}

type memErr string

func (e memErr) Error() string { return string(e) }

const (
	errAddrInUse   = memErr("memnet: address in use")
	errNoListener  = memErr("memnet: no listener at address")
	errBacklogFull = memErr("memnet: accept backlog full")
)

type listener struct {
	net     *Network
	addr    string
	backlog chan *conn
	mu      sync.Mutex
	closed  bool
}

func (l *listener) Accept() (transport.Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, transport.ErrClosed
	}
	return c, nil
}

func (l *listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	close(l.backlog)
	return nil
}

func (l *listener) Addr() string { return l.addr }

// pipe is one direction of a connection: an unbounded ordered queue with
// simulated transmission (bandwidth) and propagation (latency) delays.
type pipe struct {
	hw     sim.Hardware
	nic    sim.Device // serializes this direction's transmissions
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []timedMsg
	closed bool
}

type timedMsg struct {
	deliverAt time.Time
	data      []byte
}

func newPipe(hw sim.Hardware) *pipe {
	p := &pipe{hw: hw}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipe) send(msg []byte) error {
	// Block the sender for the serialization time (sharing the link with
	// earlier messages), then schedule delivery half an RTT later. This
	// lets small control messages pipeline behind bulk transfers exactly
	// like a real NIC queue pair.
	p.nic.UseBytes(int64(len(msg)), p.hw.NetBandwidth, 0)
	cp := make([]byte, len(msg))
	copy(cp, msg)
	deliverAt := time.Now().Add(p.hw.RTT / 2)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return transport.ErrClosed
	}
	p.queue = append(p.queue, timedMsg{deliverAt: deliverAt, data: cp})
	p.cond.Signal()
	return nil
}

func (p *pipe) recv() ([]byte, error) {
	p.mu.Lock()
	for len(p.queue) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.queue) == 0 && p.closed {
		p.mu.Unlock()
		return nil, transport.ErrClosed
	}
	m := p.queue[0]
	p.queue = p.queue[1:]
	p.mu.Unlock()
	if d := time.Until(m.deliverAt); d > 0 {
		time.Sleep(d)
	}
	return m.data, nil
}

func (p *pipe) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
}

type conn struct {
	send *pipe
	recv *pipe
}

func (c *conn) Send(msg []byte) error { return c.send.send(msg) }

func (c *conn) Recv() ([]byte, error) { return c.recv.recv() }

func (c *conn) Close() error {
	c.send.close()
	c.recv.close()
	return nil
}
