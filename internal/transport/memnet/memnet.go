// Package memnet is an in-process implementation of transport.Network
// with simulated link latency and bandwidth. It stands in for the
// paper's InfiniBand fabric: each connection direction is a reliable
// ordered queue whose messages are serialized through a per-direction
// bandwidth device (sim.Device) and delivered half an RTT after they
// finish transmitting, so lock round trips and bulk flushes cost what
// Equation (1) of the paper says they should.
package memnet

import (
	"context"
	"sync"
	"time"

	"ccpfs/internal/sim"
	"ccpfs/internal/transport"
)

// Network is an in-process fabric. Nodes listen on arbitrary string
// addresses and dial each other by those names.
type Network struct {
	hw        sim.Hardware
	mu        sync.Mutex
	listeners map[string]*listener
}

// New returns a fabric with the given hardware model.
func New(hw sim.Hardware) *Network {
	return &Network{hw: hw, listeners: make(map[string]*listener)}
}

// Hardware returns the fabric's hardware model.
func (n *Network) Hardware() sim.Hardware { return n.hw }

// Listen registers addr. It fails if the address is taken.
func (n *Network) Listen(addr string) (transport.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, errAddrInUse
	}
	l := &listener{net: n, addr: addr, clk: n.hw.Clock, backlog: make(chan *conn, 128)}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening address.
func (n *Network) Dial(addr string) (transport.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, errNoListener
	}
	a, b := n.pair()
	// The listener's mutex serializes this send against Close closing the
	// backlog channel: a dial that fetched l before Close removed it from
	// the map would otherwise send on (or race the close of) a closed
	// channel.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		b.Close()
		a.Close()
		return nil, errNoListener
	}
	select {
	case l.backlog <- b:
		l.mu.Unlock()
		l.clk.Wakeup(l)
		return a, nil
	default:
		l.mu.Unlock()
		b.Close()
		a.Close()
		return nil, errBacklogFull
	}
}

// pair creates the two endpoints of a connection.
func (n *Network) pair() (*conn, *conn) {
	ab := newPipe(n.hw)
	ba := newPipe(n.hw)
	a := &conn{send: ab, recv: ba}
	b := &conn{send: ba, recv: ab}
	return a, b
}

type memErr string

func (e memErr) Error() string { return string(e) }

const (
	errAddrInUse   = memErr("memnet: address in use")
	errNoListener  = memErr("memnet: no listener at address")
	errBacklogFull = memErr("memnet: accept backlog full")
)

type listener struct {
	net     *Network
	addr    string
	clk     sim.Clock
	backlog chan *conn
	mu      sync.Mutex
	closed  bool
}

func (l *listener) Accept() (transport.Conn, error) {
	if v := l.clk.V(); v != nil {
		// Virtual time: poll the backlog under the run token, parking on
		// the listener until a Dial (or Close) wakes us.
		for {
			select {
			case c, ok := <-l.backlog:
				if !ok {
					return nil, transport.ErrClosed
				}
				return c, nil
			default:
			}
			if v.WaitOn(l) == sim.WakeExited {
				break
			}
		}
	}
	c, ok := <-l.backlog
	if !ok {
		return nil, transport.ErrClosed
	}
	return c, nil
}

func (l *listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	close(l.backlog)
	l.clk.Wakeup(l)
	return nil
}

func (l *listener) Addr() string { return l.addr }

// pipe is one direction of a connection: an unbounded ordered queue with
// simulated transmission (bandwidth) and propagation (latency) delays.
type pipe struct {
	hw     sim.Hardware
	clk    sim.Clock
	nic    sim.Device // serializes this direction's transmissions
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []timedMsg
	head   int // queue[head:] is live; popped slots are cleared for GC
	closed bool
}

type timedMsg struct {
	deliverAt time.Time
	data      []byte
}

func newPipe(hw sim.Hardware) *pipe {
	p := &pipe{hw: hw, clk: hw.Clock}
	p.nic.SetClock(hw.Clock)
	p.cond = sync.NewCond(&p.mu)
	return p
}

// deliveryTime returns when a message queued now arrives: half an RTT
// of propagation plus, in virtual mode, a small seeded jitter (up to
// RTT/16). The jitter is what makes a virtual run's seed meaningful —
// it perturbs message arrival interleavings, and through them grant
// orders, revocation timing, and every downstream duration — without
// changing what any message carries. Wall-clock runs get equivalent
// variance for free from the OS scheduler, so they draw nothing.
func (p *pipe) deliveryTime() time.Time {
	at := p.clk.Now().Add(p.hw.RTT / 2)
	if v := p.clk.V(); v != nil {
		if j := int64(p.hw.RTT / 16); j > 0 {
			at = at.Add(time.Duration(v.Int63n(j)))
		}
	}
	return at
}

func (p *pipe) send(ctx context.Context, msg []byte) error {
	// Block the sender for the serialization time (sharing the link with
	// earlier messages), then schedule delivery half an RTT later. This
	// lets small control messages pipeline behind bulk transfers exactly
	// like a real NIC queue pair. A fired context stops the sender from
	// queueing further (the link time is already committed).
	if err := p.nic.UseBytesCtx(ctx, int64(len(msg)), p.hw.NetBandwidth, 0); err != nil {
		return err
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	deliverAt := p.deliveryTime()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return transport.ErrClosed
	}
	p.push(timedMsg{deliverAt: deliverAt, data: cp})
	p.cond.Signal()
	p.mu.Unlock()
	p.clk.Wakeup(p)
	return nil
}

// sendBatch transmits msgs as one unit: a single bandwidth charge for
// the total bytes, one lock acquisition, and one shared delivery time —
// the frames ride the link back to back, like a coalesced writev.
func (p *pipe) sendBatch(ctx context.Context, msgs [][]byte) error {
	var total int64
	for _, m := range msgs {
		total += int64(len(m))
	}
	if err := p.nic.UseBytesCtx(ctx, total, p.hw.NetBandwidth, 0); err != nil {
		return err
	}
	deliverAt := p.deliveryTime()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return transport.ErrClosed
	}
	for _, m := range msgs {
		cp := make([]byte, len(m))
		copy(cp, m)
		p.push(timedMsg{deliverAt: deliverAt, data: cp})
	}
	p.cond.Signal()
	p.mu.Unlock()
	p.clk.Wakeup(p)
	return nil
}

// push appends under p.mu, compacting the consumed prefix first so a
// steady request/response exchange reuses one backing array instead of
// reallocating on every send.
func (p *pipe) push(m timedMsg) {
	if p.head > 0 && len(p.queue) == cap(p.queue) {
		n := copy(p.queue, p.queue[p.head:])
		for i := n; i < len(p.queue); i++ {
			p.queue[i] = timedMsg{}
		}
		p.queue = p.queue[:n]
		p.head = 0
	}
	p.queue = append(p.queue, m)
}

// pending returns the number of undelivered messages (under p.mu).
func (p *pipe) pending() int { return len(p.queue) - p.head }

func (p *pipe) recv(ctx context.Context) ([]byte, error) {
	if v := p.clk.V(); v != nil {
		if data, err, done := p.recvVirtual(ctx, v); done {
			return data, err
		}
		// The virtual run ended mid-wait; finish on the real path.
	}
	if ctx.Done() != nil {
		// Wake the cond wait below when the context fires; cond.Wait
		// cannot select on a channel, so the watcher broadcasts instead.
		stop := context.AfterFunc(ctx, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		defer stop()
	}
	p.mu.Lock()
	for p.pending() == 0 && !p.closed && ctx.Err() == nil {
		p.cond.Wait()
	}
	if p.pending() == 0 {
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return nil, transport.ErrClosed
		}
		return nil, ctx.Err()
	}
	m := p.queue[p.head]
	p.queue[p.head] = timedMsg{}
	p.head++
	if p.head == len(p.queue) {
		p.queue = p.queue[:0]
		p.head = 0
	}
	p.mu.Unlock()
	if err := sim.SleepUntil(ctx, m.deliverAt); err != nil {
		// Cancellation mid-delivery: requeue at the front so the stream
		// stays gapless and ordered for the next Recv (Conn permits only
		// one concurrent receiver, so no other reader raced us).
		p.mu.Lock()
		if p.head > 0 {
			p.head--
			p.queue[p.head] = m
		} else {
			p.queue = append(p.queue, timedMsg{})
			copy(p.queue[1:], p.queue)
			p.queue[0] = m
		}
		p.cond.Signal()
		p.mu.Unlock()
		return nil, err
	}
	return m.data, nil
}

// recvVirtual is recv under a virtual clock: park on the pipe until a
// sender (or close) wakes us, and ride the event heap to the head
// message's delivery time instead of sleeping. done=false means the
// virtual run ended and the caller must fall back to the real path.
func (p *pipe) recvVirtual(ctx context.Context, v *sim.VClock) (data []byte, err error, done bool) {
	for {
		p.mu.Lock()
		if err := ctx.Err(); err != nil {
			p.mu.Unlock()
			return nil, err, true
		}
		if p.pending() > 0 {
			m := p.queue[p.head]
			if !m.deliverAt.After(p.clk.Now()) {
				p.queue[p.head] = timedMsg{}
				p.head++
				if p.head == len(p.queue) {
					p.queue = p.queue[:0]
					p.head = 0
				}
				p.mu.Unlock()
				return m.data, nil, true
			}
			deliverAt := m.deliverAt
			p.mu.Unlock()
			// Holding the run token between the check above and parking
			// here makes check-then-park atomic: no wakeup can be lost.
			if v.WaitOnUntil(p, deliverAt) == sim.WakeExited {
				return nil, nil, false
			}
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return nil, transport.ErrClosed, true
		}
		p.mu.Unlock()
		if v.WaitOn(p) == sim.WakeExited {
			return nil, nil, false
		}
	}
}

func (p *pipe) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.clk.Wakeup(p)
}

type conn struct {
	send *pipe
	recv *pipe
}

func (c *conn) Send(ctx context.Context, msg []byte) error { return c.send.send(ctx, msg) }

func (c *conn) SendBatch(ctx context.Context, msgs [][]byte) error {
	return c.send.sendBatch(ctx, msgs)
}

func (c *conn) Recv(ctx context.Context) ([]byte, error) { return c.recv.recv(ctx) }

func (c *conn) Close() error {
	c.send.close()
	c.recv.close()
	return nil
}
