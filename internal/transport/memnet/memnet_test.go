package memnet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ccpfs/internal/sim"
	"ccpfs/internal/transport"
)

func TestBacklogFull(t *testing.T) {
	net := New(sim.Fast())
	l, err := net.Listen("s")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Fill the accept backlog without accepting.
	var conns []transport.Conn
	for i := 0; i < 200; i++ {
		c, err := net.Dial("s")
		if err != nil {
			// Backlog exhausted: expected before 200.
			if len(conns) < 64 {
				t.Fatalf("backlog rejected after only %d conns: %v", len(conns), err)
			}
			for _, c := range conns {
				c.Close()
			}
			return
		}
		conns = append(conns, c)
	}
	t.Fatal("backlog never filled")
}

func TestHardwareAccessor(t *testing.T) {
	hw := sim.Hardware{RTT: time.Second}
	if New(hw).Hardware() != hw {
		t.Fatal("Hardware accessor wrong")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	net := New(sim.Fast())
	l, _ := net.Listen("s")
	defer l.Close()
	go l.Accept()
	c, err := net.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Send(context.Background(), []byte("x")); err != transport.ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	if _, err := c.Recv(context.Background()); err != transport.ErrClosed {
		t.Fatalf("Recv after close = %v, want ErrClosed", err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	net := New(sim.Fast())
	l, _ := net.Listen("s")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if err != transport.ErrClosed {
			t.Fatalf("Accept after close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept not unblocked by Close")
	}
	if l.Close() != nil {
		t.Fatal("double close errored")
	}
}

func TestManyParallelConnections(t *testing.T) {
	net := New(sim.Fast())
	l, _ := net.Listen("s")
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c transport.Conn) {
				for {
					m, err := c.Recv(context.Background())
					if err != nil {
						return
					}
					c.Send(context.Background(), m)
				}
			}(c)
		}
	}()
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func(i int) {
			c, err := net.Dial("s")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			msg := []byte(fmt.Sprintf("conn-%d", i))
			if err := c.Send(context.Background(), msg); err != nil {
				errs <- err
				return
			}
			got, err := c.Recv(context.Background())
			if err != nil {
				errs <- err
				return
			}
			if string(got) != string(msg) {
				errs <- fmt.Errorf("conn %d: got %q", i, got)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < 32; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
