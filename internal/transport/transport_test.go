package transport_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/sim"
	"ccpfs/internal/transport"
	"ccpfs/internal/transport/memnet"
	"ccpfs/internal/transport/tcpnet"
)

// fabric constructs a network and returns a dialable address for it.
type fabric struct {
	name string
	mk   func(t *testing.T) transport.Network
}

func fabrics() []fabric {
	return []fabric{
		{"memnet", func(t *testing.T) transport.Network { return memnet.New(sim.Fast()) }},
		{"tcpnet", func(t *testing.T) transport.Network { return tcpnet.New() }},
	}
}

func listenAddr(f fabric) string {
	if f.name == "tcpnet" {
		return "127.0.0.1:0"
	}
	return "server"
}

func TestRoundTrip(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			net := f.mk(t)
			l, err := net.Listen(listenAddr(f))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			done := make(chan error, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					done <- err
					return
				}
				defer c.Close()
				msg, err := c.Recv(context.Background())
				if err != nil {
					done <- err
					return
				}
				done <- c.Send(context.Background(), append([]byte("echo:"), msg...))
			}()
			c, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Send(context.Background(), []byte("hello")); err != nil {
				t.Fatal(err)
			}
			reply, err := c.Recv(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if string(reply) != "echo:hello" {
				t.Fatalf("reply = %q", reply)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOrderingPreserved(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			net := f.mk(t)
			l, err := net.Listen(listenAddr(f))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			const n = 200
			recvd := make(chan []byte, n)
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				for i := 0; i < n; i++ {
					m, err := c.Recv(context.Background())
					if err != nil {
						return
					}
					recvd <- m
				}
			}()
			c, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < n; i++ {
				if err := c.Send(context.Background(), []byte(fmt.Sprintf("msg-%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				m := <-recvd
				want := fmt.Sprintf("msg-%04d", i)
				if string(m) != want {
					t.Fatalf("message %d = %q, want %q", i, m, want)
				}
			}
		})
	}
}

func TestSenderBufferReuse(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			net := f.mk(t)
			l, err := net.Listen(listenAddr(f))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			got := make(chan []byte, 2)
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				for i := 0; i < 2; i++ {
					m, err := c.Recv(context.Background())
					if err != nil {
						return
					}
					got <- m
				}
			}()
			c, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			buf := []byte("first")
			if err := c.Send(context.Background(), buf); err != nil {
				t.Fatal(err)
			}
			copy(buf, "XXXXX") // mutate after send; receiver must see original
			if err := c.Send(context.Background(), []byte("second")); err != nil {
				t.Fatal(err)
			}
			if m := <-got; !bytes.Equal(m, []byte("first")) {
				t.Fatalf("first message corrupted: %q", m)
			}
			<-got
		})
	}
}

func TestRecvAfterCloseReturnsErrClosed(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			net := f.mk(t)
			l, err := net.Listen(listenAddr(f))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := make(chan transport.Conn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			c, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			srv := <-accepted
			srv.Close()
			// Peer close surfaces as ErrClosed on our Recv, possibly after
			// draining nothing.
			deadline := time.After(2 * time.Second)
			errc := make(chan error, 1)
			go func() {
				_, err := c.Recv(context.Background())
				errc <- err
			}()
			select {
			case err := <-errc:
				if err != transport.ErrClosed {
					t.Fatalf("Recv error = %v, want ErrClosed", err)
				}
			case <-deadline:
				t.Fatal("Recv did not observe peer close")
			}
		})
	}
}

func TestDialUnknownAddressFails(t *testing.T) {
	net := memnet.New(sim.Fast())
	if _, err := net.Dial("nobody"); err == nil {
		t.Fatal("dialing unknown memnet address succeeded")
	}
}

func TestMemnetDuplicateListen(t *testing.T) {
	net := memnet.New(sim.Fast())
	l, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	l.Close()
	// Address is free again after close.
	if _, err := net.Listen("a"); err != nil {
		t.Fatalf("re-listen after close failed: %v", err)
	}
}

func TestMemnetLatency(t *testing.T) {
	hw := sim.Hardware{RTT: 20 * time.Millisecond}
	net := memnet.New(hw)
	l, _ := net.Listen("s")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			m, err := c.Recv(context.Background())
			if err != nil {
				return
			}
			if err := c.Send(context.Background(), m); err != nil {
				return
			}
		}
	}()
	c, err := net.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.Send(context.Background(), []byte("ping"))
	if _, err := c.Recv(context.Background()); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 18*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~20ms", rtt)
	}
}

func TestMemnetBandwidth(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100ms to transmit.
	hw := sim.Hardware{NetBandwidth: 10e6}
	net := memnet.New(hw)
	l, _ := net.Listen("s")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := c.Recv(context.Background()); err != nil {
				return
			}
		}
	}()
	c, err := net.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Send(context.Background(), make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("1 MB at 10 MB/s transmitted in %v", elapsed)
	}
}

func TestConcurrentSenders(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			net := f.mk(t)
			l, err := net.Listen(listenAddr(f))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			const senders, each = 8, 50
			counts := make(chan int, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				seen := 0
				for seen < senders*each {
					if _, err := c.Recv(context.Background()); err != nil {
						break
					}
					seen++
				}
				counts <- seen
			}()
			c, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						if err := c.Send(context.Background(), []byte(fmt.Sprintf("%d:%d", s, i))); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			if got := <-counts; got != senders*each {
				t.Fatalf("received %d messages, want %d", got, senders*each)
			}
		})
	}
}

// TestSendBatch sends a coalesced batch on every fabric and asserts the
// peer receives each frame individually, in order, intact — including
// an empty frame in the middle of the batch.
func TestSendBatch(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			net := f.mk(t)
			l, err := net.Listen(listenAddr(f))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			msgs := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-frame"), []byte("d")}
			got := make(chan [][]byte, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				var out [][]byte
				for range msgs {
					m, err := c.Recv(context.Background())
					if err != nil {
						return
					}
					out = append(out, m)
				}
				got <- out
			}()
			c, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, ok := c.(transport.BatchSender); !ok {
				t.Fatalf("%s conn does not implement BatchSender", f.name)
			}
			if err := transport.SendBatch(context.Background(), c, msgs); err != nil {
				t.Fatal(err)
			}
			// Ownership contract: the batch buffers are the caller's again.
			copy(msgs[0], "XXXXX")
			select {
			case out := <-got:
				want := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-frame"), []byte("d")}
				for i := range want {
					if !bytes.Equal(out[i], want[i]) {
						t.Fatalf("frame %d: got %q want %q", i, out[i], want[i])
					}
				}
			case <-time.After(5 * time.Second):
				t.Fatal("batch not delivered")
			}
		})
	}
}

// TestSendBatchConcurrentWithSends interleaves batches and single sends
// from many goroutines; every frame must arrive exactly once, intact.
func TestSendBatchConcurrentWithSends(t *testing.T) {
	for _, f := range fabrics() {
		t.Run(f.name, func(t *testing.T) {
			net := f.mk(t)
			l, err := net.Listen(listenAddr(f))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			const senders, each = 6, 30
			total := senders * each
			got := make(chan map[string]int, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				seen := make(map[string]int, total)
				for i := 0; i < total; i++ {
					m, err := c.Recv(context.Background())
					if err != nil {
						return
					}
					seen[string(m)]++
				}
				got <- seen
			}()
			c, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < each; i += 3 {
						// A batch of three frames per round.
						batch := [][]byte{
							[]byte(fmt.Sprintf("%d:%d", s, i)),
							[]byte(fmt.Sprintf("%d:%d", s, i+1)),
							[]byte(fmt.Sprintf("%d:%d", s, i+2)),
						}
						if err := transport.SendBatch(context.Background(), c, batch); err != nil {
							t.Errorf("batch: %v", err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			select {
			case seen := <-got:
				for s := 0; s < senders; s++ {
					for i := 0; i < each; i++ {
						k := fmt.Sprintf("%d:%d", s, i)
						if seen[k] != 1 {
							t.Fatalf("frame %s seen %d times", k, seen[k])
						}
					}
				}
			case <-time.After(10 * time.Second):
				t.Fatal("frames not delivered")
			}
		})
	}
}
