// Package transport abstracts the message fabric ccPFS runs on. The
// paper's prototype uses CaRT/Mercury over InfiniBand verbs; this
// reproduction provides two interchangeable fabrics behind one interface:
//
//   - memnet: an in-process network with simulated latency, per-link
//     bandwidth, and deterministic delivery order, used by the test and
//     benchmark cluster harness;
//   - tcpnet: real TCP with length-prefixed frames, used by the
//     standalone server and CLI binaries.
//
// Both fabrics carry the exact same wire messages through the exact same
// RPC, lock, and data paths.
package transport

import (
	"context"
	"errors"
)

// ErrClosed is returned by operations on a closed connection, listener,
// or network.
var ErrClosed = errors.New("transport: closed")

// Conn is a reliable, ordered, message-oriented duplex connection.
// Send and Recv are safe for concurrent use with each other; multiple
// concurrent Senders are allowed, multiple concurrent Recvs are not.
//
// Both operations honor their context: when it fires mid-operation they
// return the context's error promptly. A canceled Send does not
// guarantee the message was not delivered (it may already be in flight);
// the connection itself stays usable either way.
// Buffer ownership: a Conn must not retain msg after Send (or SendBatch)
// returns — it either copies the bytes or writes them out synchronously.
// The caller is therefore free to reuse or recycle the buffer the moment
// the call returns (the rpc layer pools its encoder frames on this
// contract). Symmetrically, a slice returned by Recv is owned by the
// caller; the Conn never touches it again.
type Conn interface {
	// Send transmits one message. It may block for simulated or real
	// transmission time, bounded by ctx.
	Send(ctx context.Context, msg []byte) error
	// Recv returns the next message. It blocks until a message arrives,
	// ctx fires, or the connection closes, in which case it returns
	// ErrClosed.
	Recv(ctx context.Context) ([]byte, error)
	// Close tears the connection down; pending and future operations on
	// both ends fail with ErrClosed.
	Close() error
}

// BatchSender is implemented by connections with a coalesced multi-frame
// send path: all messages go out as one unit (one syscall on tcpnet, one
// lock acquisition and bandwidth charge on memnet), preserving order and
// the Send ownership contract. Messages are delivered individually by
// the peer's Recv.
type BatchSender interface {
	SendBatch(ctx context.Context, msgs [][]byte) error
}

// SendBatch transmits msgs over c in one coalesced batch when the
// connection supports it, falling back to sequential Sends (stopping at
// the first error) otherwise.
func SendBatch(ctx context.Context, c Conn, msgs [][]byte) error {
	var total int64
	for _, m := range msgs {
		total += int64(len(m))
	}
	recordBatch(len(msgs), total)
	if bs, ok := c.(BatchSender); ok {
		return bs.SendBatch(ctx, msgs)
	}
	for _, m := range msgs {
		if err := c.Send(ctx, m); err != nil {
			return err
		}
	}
	return nil
}

// Listener accepts inbound connections at an address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// Network creates listeners and dials peers. Addresses are opaque
// strings; memnet uses node names, tcpnet uses host:port.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}
