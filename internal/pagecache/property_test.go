package pagecache

import (
	"math/rand"
	"testing"

	"ccpfs/internal/extent"
)

// oracle is a brute-force byte-level model of the cache: per byte, the
// value and SN of the newest content, plus the dirty state with its own
// SN (a clean fill can raise a byte's content SN without touching its
// dirty marker, so the two are tracked separately — exactly as the
// cache keeps separate valid and dirty extent lists).
type oracle struct {
	val     map[int64]byte
	sn      map[int64]extent.SN
	dirtySN map[int64]extent.SN
}

func newOracle() *oracle {
	return &oracle{
		val:     map[int64]byte{},
		sn:      map[int64]extent.SN{},
		dirtySN: map[int64]extent.SN{},
	}
}

// write models a local dirty write: ties win.
func (o *oracle) write(off int64, data []byte, sn extent.SN) {
	for i, b := range data {
		p := off + int64(i)
		if cur, ok := o.sn[p]; !ok || sn >= cur {
			o.val[p] = b
			o.sn[p] = sn
			if cur, ok := o.dirtySN[p]; !ok || sn >= cur {
				o.dirtySN[p] = sn
			}
		}
	}
}

// fill models a clean server fill: ties lose, dirty state untouched.
func (o *oracle) fill(off int64, data []byte, sn extent.SN) {
	for i, b := range data {
		p := off + int64(i)
		if cur, ok := o.sn[p]; !ok || sn > cur {
			o.val[p] = b
			o.sn[p] = sn
		}
	}
}

func (o *oracle) collect(rng extent.Extent, maxSN extent.SN) {
	for p, dsn := range o.dirtySN {
		if rng.ContainsOff(p) && dsn <= maxSN {
			delete(o.dirtySN, p)
		}
	}
}

func (o *oracle) invalidate(rng extent.Extent, maxSN extent.SN) {
	for p := range o.val {
		if rng.ContainsOff(p) && o.sn[p] <= maxSN {
			delete(o.val, p)
			delete(o.sn, p)
		}
	}
	for p, dsn := range o.dirtySN {
		if rng.ContainsOff(p) && dsn <= maxSN {
			delete(o.dirtySN, p)
		}
	}
}

// TestCacheMatchesOracle drives the cache with random writes, fills,
// dirty collections, and SN-bounded invalidations, comparing every byte
// and the dirty accounting against the brute-force model after each
// step. This is the invariant that keeps early-granted overlapping
// writes coherent in the client.
func TestCacheMatchesOracle(t *testing.T) {
	const space = 3 * DefaultPageSize
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		c := New(Config{})
		o := newOracle()
		for step := 0; step < 60; step++ {
			off := rng.Int63n(space - 1)
			n := rng.Int63n(min64(600, space-off-1)) + 1
			sn := extent.SN(rng.Intn(6))
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.Intn(256))
			}
			switch rng.Intn(5) {
			case 0, 1: // dirty write
				c.Write(1, off, data, sn)
				o.write(off, data, sn)
			case 2: // clean fill
				c.Fill(1, off, data, sn)
				o.fill(off, data, sn)
			case 3: // collect dirty (flush) over a random range
				e := extent.Span(off, n)
				blocks := c.CollectDirty(1, e, sn)
				// Flushed block contents must match the oracle bytes.
				for _, b := range blocks {
					for i, got := range b.Data {
						p := b.Range.Start + int64(i)
						if o.val[p] != got {
							t.Fatalf("trial %d step %d: flushed byte %d = %x, oracle %x",
								trial, step, p, got, o.val[p])
						}
					}
				}
				o.collect(e, sn)
			case 4: // SN-bounded invalidation (lock cancel)
				e := extent.Span(off, n)
				c.InvalidateUpTo(1, e, sn)
				o.invalidate(e, sn)
			}
			// Dirty byte accounting must agree exactly.
			if got, want := c.DirtyBytes(), int64(len(o.dirtySN)); got != want {
				t.Fatalf("trial %d step %d: dirty = %d, oracle %d", trial, step, got, want)
			}
		}
		// Full content comparison at the end of the trial.
		buf := make([]byte, space)
		c.Read(1, 0, buf)
		for p := int64(0); p < space; p++ {
			want, ok := o.val[p]
			covered := c.Covered(1, p, 1)
			if covered != ok {
				t.Fatalf("trial %d: byte %d coverage = %v, oracle %v", trial, p, covered, ok)
			}
			if ok && buf[p] != want {
				t.Fatalf("trial %d: byte %d = %x, oracle %x", trial, p, buf[p], want)
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
