package pagecache

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/extent"
)

func fill(n int, b byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := New(Config{})
	data := []byte("the quick brown fox")
	c.Write(1, 100, data, 1)
	buf := make([]byte, len(data))
	got := c.Read(1, 100, buf)
	if len(got) != 1 || got[0] != extent.Span(100, int64(len(data))) {
		t.Fatalf("coverage = %v", got)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q, want %q", buf, data)
	}
	if !c.Covered(1, 100, int64(len(data))) {
		t.Fatal("Covered = false for cached range")
	}
	if c.Covered(1, 100, int64(len(data))+1) {
		t.Fatal("Covered = true beyond cached range")
	}
}

func TestCrossPageWrite(t *testing.T) {
	c := New(Config{PageSize: 4096})
	data := fill(10000, 0xAB)
	c.Write(1, 4000, data, 1)
	buf := make([]byte, len(data))
	c.Read(1, 4000, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-page write corrupted")
	}
	if c.DirtyBytes() != int64(len(data)) {
		t.Fatalf("dirty = %d, want %d", c.DirtyBytes(), len(data))
	}
}

// TestSNOverwriteRule reproduces Fig. 14: a newer write overlapping an
// older one wins on the overlap; an older (stale) write must not clobber
// newer cached data.
func TestSNOverwriteRule(t *testing.T) {
	c := New(Config{PageSize: 4096})
	c.Write(1, 0, fill(4096, 0x01), 8) // lockA data, SN 8
	c.Write(1, 2048, fill(6144, 0x02), 9)
	// Now a stale write with SN 7 tries to land on [0, 4096).
	c.Write(1, 0, fill(4096, 0x03), 7)

	buf := make([]byte, 8192)
	c.Read(1, 0, buf)
	for i := 0; i < 2048; i++ {
		if buf[i] != 0x01 {
			t.Fatalf("byte %d = %x, want 01 (SN 8 data)", i, buf[i])
		}
	}
	for i := 2048; i < 8192; i++ {
		if buf[i] != 0x02 {
			t.Fatalf("byte %d = %x, want 02 (SN 9 data)", i, buf[i])
		}
	}
}

func TestCollectDirtyBySN(t *testing.T) {
	c := New(Config{PageSize: 4096})
	c.Write(1, 0, fill(2048, 0x01), 8)
	c.Write(1, 2048, fill(2048, 0x02), 9)

	// Cancel of the SN-8 lock flushes only SN <= 8.
	blocks := c.CollectDirty(1, extent.New(0, extent.Inf), 8)
	if len(blocks) != 1 || blocks[0].SN != 8 || blocks[0].Range != extent.New(0, 2048) {
		t.Fatalf("blocks = %+v", blocks)
	}
	if c.DirtyBytes() != 2048 {
		t.Fatalf("dirty = %d, want 2048 left", c.DirtyBytes())
	}
	// The SN-9 data flushes with its own lock.
	blocks = c.CollectDirty(1, extent.New(0, extent.Inf), 9)
	if len(blocks) != 1 || blocks[0].SN != 9 {
		t.Fatalf("blocks = %+v", blocks)
	}
	if c.DirtyBytes() != 0 {
		t.Fatal("dirty data left after both flushes")
	}
	// Data remains readable (clean) after collection.
	if !c.Covered(1, 0, 4096) {
		t.Fatal("collected data no longer cached")
	}
}

func TestCollectDirtyMergesAdjacentSameSN(t *testing.T) {
	c := New(Config{PageSize: 4096})
	c.Write(1, 0, fill(4096, 1), 5)
	c.Write(1, 4096, fill(4096, 2), 5)
	blocks := c.CollectDirty(1, extent.New(0, extent.Inf), 5)
	if len(blocks) != 1 || blocks[0].Range != extent.New(0, 8192) {
		t.Fatalf("blocks = %+v, want one merged block", blocks)
	}
	if len(blocks[0].Data) != 8192 {
		t.Fatalf("merged data length = %d", len(blocks[0].Data))
	}
}

func TestRedirty(t *testing.T) {
	c := New(Config{PageSize: 4096})
	c.Write(1, 0, fill(1024, 7), 3)
	blocks := c.CollectDirty(1, extent.New(0, extent.Inf), 3)
	if c.DirtyBytes() != 0 {
		t.Fatal("dirty not drained")
	}
	c.Redirty(1, blocks)
	if c.DirtyBytes() != 1024 {
		t.Fatalf("dirty = %d after redirty, want 1024", c.DirtyBytes())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{PageSize: 4096})
	c.Write(1, 0, fill(8192, 7), 3)
	c.Invalidate(1, extent.New(0, 4096))
	if c.Covered(1, 0, 4096) {
		t.Fatal("invalidated range still covered")
	}
	if !c.Covered(1, 4096, 4096) {
		t.Fatal("non-invalidated range lost")
	}
	if c.DirtyBytes() != 4096 {
		t.Fatalf("dirty = %d, want 4096", c.DirtyBytes())
	}
}

func TestFillIsClean(t *testing.T) {
	c := New(Config{PageSize: 4096})
	c.Fill(1, 0, fill(4096, 9), 2)
	if c.DirtyBytes() != 0 {
		t.Fatal("Fill marked data dirty")
	}
	if !c.Covered(1, 0, 4096) {
		t.Fatal("filled data not cached")
	}
}

func TestDirtyStripes(t *testing.T) {
	c := New(Config{PageSize: 4096})
	c.Write(1, 0, fill(10, 1), 1)
	c.Write(5, 0, fill(10, 1), 1)
	c.Fill(9, 0, fill(10, 1), 1)
	got := map[uint64]bool{}
	for _, s := range c.DirtyStripes() {
		got[s] = true
	}
	if !got[1] || !got[5] || got[9] {
		t.Fatalf("DirtyStripes = %v", got)
	}
}

func TestMaxDirtyBackpressure(t *testing.T) {
	c := New(Config{PageSize: 4096, MaxDirty: 8192})
	c.Write(1, 0, fill(8192, 1), 1)
	// The next write must block until dirty data is collected.
	wrote := make(chan struct{})
	go func() {
		c.Write(1, 8192, fill(4096, 2), 2)
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write above MaxDirty did not block")
	case <-time.After(100 * time.Millisecond):
	}
	c.CollectDirty(1, extent.New(0, extent.Inf), 2)
	select {
	case <-wrote:
	case <-time.After(5 * time.Second):
		t.Fatal("write never unblocked after flush")
	}
}

func TestNeedsFlushThreshold(t *testing.T) {
	c := New(Config{PageSize: 4096, MinDirty: 4096})
	if c.NeedsFlush() {
		t.Fatal("empty cache wants flush")
	}
	c.Write(1, 0, fill(4096, 1), 1)
	if !c.NeedsFlush() {
		t.Fatal("threshold crossing not detected")
	}
	cNo := New(Config{})
	cNo.Write(1, 0, fill(1<<16, 1), 1)
	if cNo.NeedsFlush() {
		t.Fatal("MinDirty=0 must disable voluntary flushing")
	}
}

func TestPoolReclaimEvictsCleanOnly(t *testing.T) {
	c := New(Config{PageSize: 4096, PoolBytes: 2 * 4096})
	c.Write(1, 0, fill(4096, 1), 1) // dirty page
	c.Fill(1, 4096, fill(4096, 2), 1)
	c.Fill(1, 8192, fill(4096, 3), 1) // exceeds pool; clean page evicted
	if c.DirtyBytes() != 4096 {
		t.Fatal("dirty page evicted by reclaim")
	}
	if c.CachedBytes() > 2*4096 {
		t.Fatalf("cached = %d, want <= pool", c.CachedBytes())
	}
}

func TestReadPartialCoverage(t *testing.T) {
	c := New(Config{PageSize: 4096})
	c.Write(1, 1000, fill(100, 0xEE), 1)
	buf := make([]byte, 4096)
	got := c.Read(1, 0, buf)
	if len(got) != 1 || got[0] != extent.New(1000, 1100) {
		t.Fatalf("coverage = %v", got)
	}
	if buf[999] != 0 || buf[1000] != 0xEE || buf[1099] != 0xEE || buf[1100] != 0 {
		t.Fatal("partial read filled wrong bytes")
	}
}

func TestConcurrentWriters(t *testing.T) {
	c := New(Config{PageSize: 4096})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				off := int64((g*100 + i) * 512)
				c.Write(uint64(g%2), off, fill(512, byte(g)), extent.SN(i))
			}
		}(g)
	}
	wg.Wait()
	if c.DirtyBytes() == 0 {
		t.Fatal("no dirty data after concurrent writes")
	}
}

func TestEmptyWriteNoop(t *testing.T) {
	c := New(Config{})
	c.Write(1, 0, nil, 1)
	c.Fill(1, 0, nil, 1)
	if c.DirtyBytes() != 0 || c.CachedBytes() != 0 {
		t.Fatal("empty write changed state")
	}
}

func TestStringSummary(t *testing.T) {
	c := New(Config{PageSize: 4096})
	c.Write(1, 0, fill(10, 1), 1)
	if s := c.String(); s == "" {
		t.Fatal("empty summary")
	}
}

func BenchmarkWrite64K(b *testing.B) {
	c := New(Config{})
	data := fill(64<<10, 1)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Write(1, int64(i%256)*int64(len(data)), data, extent.SN(i))
	}
}

func BenchmarkCollectDirty(b *testing.B) {
	c := New(Config{})
	data := fill(4096, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Write(1, int64(i%1024)*4096, data, extent.SN(i))
		if i%1024 == 1023 {
			c.CollectDirty(1, extent.New(0, extent.Inf), extent.SN(i))
		}
	}
}

func BenchmarkReadCached(b *testing.B) {
	c := New(Config{})
	c.Write(1, 0, fill(1<<20, 7), 1)
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(1, int64(i%16)*int64(len(buf)), buf)
	}
}
