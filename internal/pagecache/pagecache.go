// Package pagecache implements the ccPFS client cache of §IV-A: data is
// divided into pages (4 KB by default) drawn from a fixed memory pool
// (modelling the pre-registered RDMA page pool of the prototype), and
// each page keeps an extent list recording which byte ranges hold valid
// data and under which lock sequence number they were written. Written
// data with a larger SN overwrites smaller ones on insert, which is what
// keeps the cache coherent when early grant lets conflicting writes from
// the same client overlap in flight.
//
// Concurrency: stripes are sharded (shard.Of) and each stripe carries
// its own mutex guarding its page map and page contents, so IO on
// different stripes never contends. The global dirty/cached/page
// accounting is atomic; the MaxDirty backpressure of §IV-C1 runs
// through a separate flow-control gate (flowMu + cond) that admits
// writers by reservation, preserving the strict dirty-bytes bound
// without serializing the data path. See DESIGN.md §6.
package pagecache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ccpfs/internal/extent"
	"ccpfs/internal/shard"
	"ccpfs/internal/sim"
)

// DefaultPageSize matches the paper's 4 KB management unit.
const DefaultPageSize = 4096

// Block is an SN-tagged data block collected for flushing or filled by a
// read.
type Block struct {
	Range extent.Extent
	SN    extent.SN
	Data  []byte
}

// Config sizes a cache.
type Config struct {
	// PageSize is the page granularity (DefaultPageSize when 0).
	PageSize int64
	// PoolBytes bounds total cached bytes (dirty + clean). Clean pages
	// are reclaimed to the pool when the bound is exceeded; writers
	// block when dirty data alone exceeds it. Zero means unbounded.
	PoolBytes int64
	// MinDirty is the dirty-bytes threshold at which the voluntary flush
	// daemon should start flushing (256 MB in the paper).
	MinDirty int64
	// MaxDirty is the dirty-bytes threshold at which writers block until
	// flushing frees space (4 GB in the paper). Zero means unbounded.
	MaxDirty int64
	// CacheBandwidth, when set, charges simulated memory-copy time
	// (bytes/second) for every write into the cache — the cache-speed
	// bound the paper's N-N results converge to. Zero disables it.
	CacheBandwidth float64
}

type page struct {
	buf   []byte
	valid extent.List // page-relative ranges holding cached data
	dirty extent.List // subset not yet flushed

	// cachedBytes/dirtyBytes mirror the lists' total lengths so global
	// accounting updates are O(touched pages), not O(all pages).
	cachedBytes int64
	dirtyBytes  int64
}

// stripePages is one stripe's pages plus the mutex guarding them.
type stripePages struct {
	mu    sync.Mutex
	pages map[int64]*page // keyed by page index
}

// pcShard holds the stripe map of one shard; the shard mutex guards
// only map lookup/insert.
type pcShard struct {
	mu      sync.RWMutex
	stripes map[uint64]*stripePages
}

// Cache is one client's page cache across all stripes it touches.
// Ranges are stripe-local byte offsets keyed by lock resource.
type Cache struct {
	cfg Config
	clk sim.Clock
	mem sim.Device // serializes simulated cache-copy time

	shards [shard.Count]pcShard

	dirty  atomic.Int64
	cached atomic.Int64
	pages  atomic.Int64 // allocated page count, drives pool reclaim

	// Flow control for the MaxDirty bound: writers reserve their byte
	// count under flowMu before touching any stripe, and flushes signal
	// the cond when dirty bytes drop. pending counts admitted-but-not-
	// yet-accounted reservations so concurrent writers cannot overshoot.
	flowMu   sync.Mutex
	flowCond *sync.Cond
	pending  int64
}

// New returns a cache with cfg.
func New(cfg Config) *Cache {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	c := &Cache{cfg: cfg}
	for i := range c.shards {
		c.shards[i].stripes = make(map[uint64]*stripePages)
	}
	c.flowCond = sync.NewCond(&c.flowMu)
	return c
}

// SetClock moves the cache onto clk: simulated copy time is charged on
// it and the MaxDirty admission gate parks virtually instead of blocking
// a real condition variable (which would wedge a virtual run — the
// flusher could never be scheduled to drain). Call before first use.
func (c *Cache) SetClock(clk sim.Clock) {
	c.clk = clk
	c.mem.SetClock(clk)
}

// PageSize returns the configured page size.
func (c *Cache) PageSize() int64 { return c.cfg.PageSize }

// DirtyBytes returns the current dirty byte count.
func (c *Cache) DirtyBytes() int64 { return c.dirty.Load() }

// CachedBytes returns the total valid bytes cached (dirty + clean).
func (c *Cache) CachedBytes() int64 { return c.cached.Load() }

// NeedsFlush reports whether dirty data has crossed the voluntary-flush
// threshold.
func (c *Cache) NeedsFlush() bool {
	if c.cfg.MinDirty <= 0 {
		return false
	}
	return c.DirtyBytes() >= c.cfg.MinDirty
}

// stripe returns stripe id's page set, creating it if needed. Stripes
// are never removed from the shard map (invalidate empties them in
// place), so the pointer stays valid without the shard lock.
func (c *Cache) stripe(id uint64) *stripePages {
	sh := &c.shards[shard.Of(id)]
	sh.mu.RLock()
	sp := sh.stripes[id]
	sh.mu.RUnlock()
	if sp != nil {
		return sp
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sp = sh.stripes[id]; sp == nil {
		sp = &stripePages{pages: make(map[int64]*page)}
		sh.stripes[id] = sp
	}
	return sp
}

// lookup returns stripe id's page set without creating it.
func (c *Cache) lookup(id uint64) *stripePages {
	sh := &c.shards[shard.Of(id)]
	sh.mu.RLock()
	sp := sh.stripes[id]
	sh.mu.RUnlock()
	return sp
}

// signalFlow wakes writers blocked on the MaxDirty gate after dirty
// bytes (or a reservation) decreased.
func (c *Cache) signalFlow() {
	if c.cfg.MaxDirty <= 0 {
		return
	}
	c.flowMu.Lock()
	c.flowCond.Broadcast()
	c.flowMu.Unlock()
	c.clk.Wakeup(c.flowCond)
}

// Write copies data into the cache at off within stripe, tagged with sn.
// It blocks while dirty bytes exceed MaxDirty (the forced-flush
// backpressure of §IV-C1); the flush daemon is responsible for draining.
func (c *Cache) Write(stripe uint64, off int64, data []byte, sn extent.SN) {
	if len(data) == 0 {
		return
	}
	c.mem.UseBytes(int64(len(data)), c.cfg.CacheBandwidth, 0)
	need := int64(len(data))
	if c.cfg.MaxDirty > 0 {
		// Admission by reservation: dirty + admitted reservations must
		// stay under the bound, so racing writers on different stripes
		// cannot collectively overshoot it.
		c.flowMu.Lock()
		for c.dirty.Load()+c.pending+need > c.cfg.MaxDirty {
			if v := c.clk.V(); v != nil {
				// Park on the virtual clock instead of the cond: a cond
				// wait would hold the scheduler token and the flusher
				// could never run to drain. WakeExited means the run is
				// over — admit and let teardown proceed.
				c.flowMu.Unlock()
				exited := v.WaitOn(c.flowCond) == sim.WakeExited
				c.flowMu.Lock()
				if exited {
					break
				}
				continue
			}
			c.flowCond.Wait()
		}
		c.pending += need
		c.flowMu.Unlock()
	}
	sp := c.stripe(stripe)
	sp.mu.Lock()
	c.write(sp, off, data, sn, true)
	sp.mu.Unlock()
	if c.cfg.MaxDirty > 0 {
		c.flowMu.Lock()
		c.pending -= need
		// The actual dirty delta may be smaller than the reservation
		// (overwrites), so releasing it can free admission space.
		c.flowCond.Broadcast()
		c.flowMu.Unlock()
		c.clk.Wakeup(c.flowCond)
	}
}

// Fill inserts clean data read from a data server, tagged with the SN
// the server reported for it. Filled bytes lose ties: cached data with
// an equal or newer SN (in particular, unflushed dirty data) is at least
// as new as the server's copy and must never be replaced by it.
func (c *Cache) Fill(stripe uint64, off int64, data []byte, sn extent.SN) {
	if len(data) == 0 {
		return
	}
	sp := c.stripe(stripe)
	sp.mu.Lock()
	c.write(sp, off, data, sn, false)
	sp.mu.Unlock()
	c.reclaim()
}

// write lands data into sp's pages; the caller holds sp.mu.
func (c *Cache) write(sp *stripePages, off int64, data []byte, sn extent.SN, markDirty bool) {
	ps := c.cfg.PageSize
	for len(data) > 0 {
		pi := off / ps
		po := off % ps
		n := int64(len(data))
		if n > ps-po {
			n = ps - po
		}
		pg := sp.pages[pi]
		if pg == nil {
			pg = &page{buf: make([]byte, ps)}
			sp.pages[pi] = pg
			c.pages.Add(1)
		}
		rng := extent.Extent{Start: po, End: po + n}
		// The SN-overwrite rule: only the sub-ranges where sn wins
		// actually replace cached bytes. Local writes win ties (the
		// holder's operations are locally ordered); clean fills lose
		// them (the cached copy is at least as new as the server's).
		var won []extent.SNExtent
		if markDirty {
			won = pg.valid.Insert(rng, sn)
		} else {
			won = pg.valid.InsertNewer(rng, sn)
		}
		for _, w := range won {
			copy(pg.buf[w.Start:w.End], data[w.Start-po:w.End-po])
		}
		if markDirty {
			for _, w := range won {
				pg.dirty.Insert(w.Extent, w.SN)
			}
		}
		c.refreshPage(pg)
		data = data[n:]
		off += n
	}
}

// refreshPage recomputes one page's byte counts from its extent lists
// (a handful of entries) and applies the delta to the atomic cache
// totals. Every mutation of a page's lists must be followed by a call;
// the caller holds the stripe mutex.
func (c *Cache) refreshPage(pg *page) {
	var dirty, cached int64
	for _, e := range pg.dirty.Entries() {
		dirty += e.Len()
	}
	for _, e := range pg.valid.Entries() {
		cached += e.Len()
	}
	c.dirty.Add(dirty - pg.dirtyBytes)
	c.cached.Add(cached - pg.cachedBytes)
	pg.dirtyBytes, pg.cachedBytes = dirty, cached
}

// Read copies cached data overlapping [off, off+len(buf)) into buf and
// returns the stripe-local ranges that were satisfied from cache.
func (c *Cache) Read(stripe uint64, off int64, buf []byte) []extent.Extent {
	sp := c.lookup(stripe)
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	ps := c.cfg.PageSize
	var got []extent.Extent
	want := extent.Span(off, int64(len(buf)))
	for pi := want.Start / ps; pi*ps < want.End; pi++ {
		pg := sp.pages[pi]
		if pg == nil {
			continue
		}
		pageRng := extent.Extent{Start: pi * ps, End: (pi + 1) * ps}
		iv, ok := pageRng.Intersect(want)
		if !ok {
			continue
		}
		local := extent.Extent{Start: iv.Start - pi*ps, End: iv.End - pi*ps}
		for _, e := range pg.valid.Overlapping(local) {
			abs := extent.Extent{Start: e.Start + pi*ps, End: e.End + pi*ps}
			copy(buf[abs.Start-off:abs.End-off], pg.buf[e.Start:e.End])
			got = append(got, abs)
		}
	}
	return got
}

// Covered reports whether [off, off+n) is fully cached.
func (c *Cache) Covered(stripe uint64, off, n int64) bool {
	sp := c.lookup(stripe)
	if sp == nil {
		return false
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	ps := c.cfg.PageSize
	want := extent.Span(off, n)
	for pi := want.Start / ps; pi*ps < want.End; pi++ {
		pg := sp.pages[pi]
		if pg == nil {
			return false
		}
		pageRng := extent.Extent{Start: pi * ps, End: (pi + 1) * ps}
		iv, _ := pageRng.Intersect(want)
		local := extent.Extent{Start: iv.Start - pi*ps, End: iv.End - pi*ps}
		if !pg.valid.Covered(local) {
			return false
		}
	}
	return true
}

// CollectDirty removes and returns the dirty blocks of stripe within rng
// whose SN is at most maxSN, merged into per-SN contiguous blocks ready
// for a flush RPC. The data is copied; a concurrent write re-dirties its
// range and will be flushed again later.
func (c *Cache) CollectDirty(stripe uint64, rng extent.Extent, maxSN extent.SN) []Block {
	sp := c.lookup(stripe)
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	ps := c.cfg.PageSize
	var blocks []Block
	for pi, pg := range sp.pages {
		pageAbs := extent.Extent{Start: pi * ps, End: (pi + 1) * ps}
		iv, ok := pageAbs.Intersect(rng)
		if !ok {
			continue
		}
		local := extent.Extent{Start: iv.Start - pi*ps, End: iv.End - pi*ps}
		for _, e := range pg.dirty.Overlapping(local) {
			if e.SN > maxSN {
				continue
			}
			data := make([]byte, e.Len())
			copy(data, pg.buf[e.Start:e.End])
			blocks = append(blocks, Block{
				Range: extent.Extent{Start: e.Start + pi*ps, End: e.End + pi*ps},
				SN:    e.SN,
				Data:  data,
			})
			pg.dirty.Remove(e.Extent)
		}
		c.refreshPage(pg)
	}
	sp.mu.Unlock()
	c.signalFlow()
	mergeBlocks(&blocks)
	return blocks
}

// Redirty reinstates blocks whose flush failed.
func (c *Cache) Redirty(stripe uint64, blocks []Block) {
	sp := c.stripe(stripe)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	ps := c.cfg.PageSize
	for _, b := range blocks {
		off := b.Range.Start
		data := b.Data
		for len(data) > 0 {
			pi := off / ps
			po := off % ps
			n := int64(len(data))
			if n > ps-po {
				n = ps - po
			}
			if pg := sp.pages[pi]; pg != nil {
				pg.dirty.Insert(extent.Extent{Start: po, End: po + n}, b.SN)
				c.refreshPage(pg)
			}
			data = data[n:]
			off += n
		}
	}
}

// Invalidate drops cached data (clean and dirty) of stripe within rng.
// It is called when a lock is released: without the lock, cached copies
// may go stale the moment another client writes.
func (c *Cache) Invalidate(stripe uint64, rng extent.Extent) {
	c.invalidate(stripe, rng, ^extent.SN(0))
}

// InvalidateUpTo drops cached data of stripe within rng whose SN is at
// most sn. Cancel paths use it so that data written under a NEWER lock
// of the same client — whose (expanded) range can overlap the canceling
// lock's — keeps its cache protection.
func (c *Cache) InvalidateUpTo(stripe uint64, rng extent.Extent, sn extent.SN) {
	c.invalidate(stripe, rng, sn)
}

func (c *Cache) invalidate(stripe uint64, rng extent.Extent, sn extent.SN) {
	sp := c.lookup(stripe)
	if sp == nil {
		return
	}
	sp.mu.Lock()
	ps := c.cfg.PageSize
	for pi, pg := range sp.pages {
		pageAbs := extent.Extent{Start: pi * ps, End: (pi + 1) * ps}
		iv, ok := pageAbs.Intersect(rng)
		if !ok {
			continue
		}
		local := extent.Extent{Start: iv.Start - pi*ps, End: iv.End - pi*ps}
		pg.valid.RemoveLE(local, sn)
		pg.dirty.RemoveLE(local, sn)
		c.refreshPage(pg)
		if pg.valid.Len() == 0 {
			delete(sp.pages, pi)
			c.pages.Add(-1)
		}
	}
	sp.mu.Unlock()
	c.signalFlow()
}

// DirtyStripes returns the stripes currently holding dirty data.
func (c *Cache) DirtyStripes() []uint64 {
	var out []uint64
	c.forEachStripe(func(id uint64, sp *stripePages) {
		sp.mu.Lock()
		for _, pg := range sp.pages {
			if pg.dirty.Len() > 0 {
				out = append(out, id)
				break
			}
		}
		sp.mu.Unlock()
	})
	return out
}

// forEachStripe visits every stripe. It snapshots each shard under the
// shard read lock and visits without it, so fn may lock the stripe.
func (c *Cache) forEachStripe(fn func(id uint64, sp *stripePages)) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		ids := make([]uint64, 0, len(sh.stripes))
		sps := make([]*stripePages, 0, len(sh.stripes))
		for id, sp := range sh.stripes {
			ids = append(ids, id)
			sps = append(sps, sp)
		}
		sh.mu.RUnlock()
		for j, sp := range sps {
			fn(ids[j], sp)
		}
	}
}

// reclaim evicts clean pages when the pool bound is exceeded, modelling
// the prototype's reclamation of cached pages back to the registered
// memory pool. It locks one stripe at a time.
func (c *Cache) reclaim() {
	if c.cfg.PoolBytes <= 0 {
		return
	}
	if c.pages.Load()*c.cfg.PageSize <= c.cfg.PoolBytes {
		return
	}
	done := false
	c.forEachStripe(func(_ uint64, sp *stripePages) {
		if done {
			return
		}
		sp.mu.Lock()
		for pi, pg := range sp.pages {
			if pg.dirty.Len() > 0 {
				continue
			}
			pg.valid.Reset()
			pg.dirty.Reset()
			c.refreshPage(pg)
			delete(sp.pages, pi)
			if c.pages.Add(-1)*c.cfg.PageSize <= c.cfg.PoolBytes {
				done = true
				break
			}
		}
		sp.mu.Unlock()
	})
}

// String summarizes the cache for debugging.
func (c *Cache) String() string {
	return fmt.Sprintf("pagecache{pages=%d dirty=%dB cached=%dB}",
		c.pages.Load(), c.dirty.Load(), c.cached.Load())
}

// mergeBlocks coalesces adjacent same-SN blocks to shrink flush RPCs.
func mergeBlocks(blocks *[]Block) {
	bs := *blocks
	if len(bs) < 2 {
		return
	}
	// Insertion sort by start: block counts per flush are small.
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Range.Start < bs[j-1].Range.Start; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
	out := bs[:1]
	for _, b := range bs[1:] {
		last := &out[len(out)-1]
		if last.SN == b.SN && last.Range.End == b.Range.Start {
			last.Range.End = b.Range.End
			last.Data = append(last.Data, b.Data...)
			continue
		}
		out = append(out, b)
	}
	*blocks = out
}
