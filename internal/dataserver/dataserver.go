// Package dataserver implements a ccPFS data server node: an IO service
// that lands SN-tagged flushes through the extent cache onto the stripe
// store, a colocated DLM service for the stripes the node owns (the
// paper's architecture in Fig. 13), an optional metadata service, and
// the revocation-callback plumbing back to clients.
package dataserver

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extcache"
	"ccpfs/internal/extent"
	"ccpfs/internal/meta"
	"ccpfs/internal/obs"
	"ccpfs/internal/rpc"
	"ccpfs/internal/sim"
	"ccpfs/internal/storage"
	"ccpfs/internal/transport"
	"ccpfs/internal/wire"
)

// MaxReadBytes bounds a single read RPC.
const MaxReadBytes = 64 << 20

// Config describes one data server.
type Config struct {
	// Name labels the server in logs.
	Name string
	// Policy selects the DLM the node runs.
	Policy dlm.Policy
	// Hardware is the simulated device/fabric model; the store is
	// wrapped with a simulated disk when DiskBandwidth or DiskLatency is
	// set.
	Hardware sim.Hardware
	// Store is the stripe store (a fresh MemStore when nil).
	Store storage.Store
	// Meta, when non-nil, makes this node also serve the namespace.
	Meta *meta.Service
	// ExtCacheThreshold overrides the extent cache entry budget.
	ExtCacheThreshold int
	// ExtentLog enables the per-stripe extent log for recovery.
	ExtentLog bool
	// ExtentLogDir, when set (with ExtentLog), persists the log to an
	// append-only file in this directory and replays it at startup, so
	// recovery works across real process restarts.
	ExtentLogDir string
	// CleanupInterval runs the extent-cache cleanup daemon when > 0.
	CleanupInterval time.Duration
	// TraceEvents, when > 0, attaches a DLM protocol tracer keeping the
	// last TraceEvents events; the /debug/trace endpoint serves its dump.
	TraceEvents int
	// Partition, when non-nil, restricts the node's DLM to a subset of
	// the lock space's hash slots, with lease-based mastership and
	// takeover when a Coordinator is attached (see partition.go).
	Partition *PartitionConfig
}

// Server is a running data server.
type Server struct {
	cfg   Config
	clk   sim.Clock
	DLM   *dlm.Server
	Cache *extcache.Cache
	store storage.Store
	lockL *sim.RateLimiter

	rpcSrv *rpc.Server

	// mu guards the client endpoint registry. Revocation delivery and
	// the extent-cache mSN path only read it, so it is an RWMutex.
	mu      sync.RWMutex
	clients map[dlm.ClientID]*rpc.Endpoint

	// gate quiesces state-mutating operations during recovery: Recover
	// holds the write side while gathering and restoring lock records,
	// so a racing release cannot land before its lock is restored. Slot
	// adoption and migration freeze/install hold it for the same reason.
	gate sync.RWMutex

	// partMu serializes the lease daemon with the migration handlers so
	// a renewal never observes (and acts on) a half-transferred slot.
	partMu    sync.Mutex
	partState partState

	// baseCtx is the server's lifecycle: the cleanup daemon, revocation
	// callbacks, and recovery RPCs run under it. Shutdown cancels it
	// after the drain; Close cancels it immediately.
	baseCtx  context.Context
	cancelFn context.CancelFunc
	draining atomic.Bool

	closeOnce sync.Once
	logFile   *extcache.LogFile

	// obs is the server's metrics registry: DLM stats, RPC per-method
	// latencies (rpcMetrics is shared by every client endpoint), extent
	// cache occupancy, and flush byte counters all report into it.
	obs        *obs.Registry
	rpcMetrics *rpc.Metrics
	tracer     *dlm.Tracer

	// FlushedBytes counts bytes actually written to the device (after
	// stale-data discard).
	FlushedBytes atomic.Int64
	// DiscardedBytes counts flushed bytes dropped as stale by the extent
	// cache.
	DiscardedBytes atomic.Int64
}

// New builds a server; call Serve with a listener to start it.
func New(cfg Config) *Server {
	st := cfg.Store
	if st == nil {
		st = storage.NewMemStore()
	}
	if cfg.Hardware.DiskBandwidth > 0 || cfg.Hardware.DiskLatency > 0 {
		st = storage.NewSimStore(st, cfg.Hardware)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		clk:      cfg.Hardware.Clock,
		store:    st,
		Cache:    extcache.New(cfg.ExtCacheThreshold, cfg.ExtentLog),
		lockL:    sim.NewRateLimiter(cfg.Hardware.ServerOPS),
		clients:  make(map[dlm.ClientID]*rpc.Endpoint),
		baseCtx:  ctx,
		cancelFn: cancel,
	}
	s.lockL.SetClock(s.clk)
	s.Cache.SetClock(s.clk)
	s.DLM = dlm.NewServer(cfg.Policy, notifier{s})
	s.DLM.SetClock(s.clk)
	if cfg.TraceEvents > 0 {
		s.tracer = dlm.NewTracer(cfg.TraceEvents)
		s.DLM.SetTracer(s.tracer)
	}
	s.registerObs()
	if cfg.Partition != nil {
		s.initPartition()
	}
	if cfg.ExtentLog && cfg.ExtentLogDir != "" {
		if lf, err := extcache.OpenLogFile(cfg.ExtentLogDir); err == nil {
			s.Cache.ReplayLogFile(lf)
			s.Cache.AttachLogFile(lf)
			s.logFile = lf
		}
	}
	return s
}

// registerObs wires every instrument the server owns into its registry.
// Funcs sample the existing atomics on Snapshot, so the hot paths pay
// nothing beyond the counters they already maintain.
func (s *Server) registerObs() {
	reg := obs.NewRegistry()
	s.obs = reg
	s.rpcMetrics = rpc.NewMetrics()
	reg.RegisterCollector(s.rpcMetrics)
	// Transport batching counters are process-wide; the rule is one
	// registry per process, and for a server binary this is it.
	transport.RegisterMetrics(reg)
	s.DLM.Stats.Register(reg)
	reg.Func("extcache.entries", func() int64 { return int64(s.Cache.Entries()) })
	reg.Func("extcache.bytes", func() int64 { return int64(s.Cache.Bytes()) })
	reg.Func("extcache.pinned", s.Cache.Pinned)
	reg.Func("extcache.inserts", func() int64 { i, _, _ := s.Cache.Stats(); return i })
	reg.Func("extcache.cleaned", func() int64 { _, c, _ := s.Cache.Stats(); return c })
	reg.Func("extcache.forced_syncs", func() int64 { _, _, f := s.Cache.Stats(); return f })
	reg.Func("dataserver.flushed_bytes", s.FlushedBytes.Load)
	reg.Func("dataserver.discarded_bytes", s.DiscardedBytes.Load)
	reg.Func("dataserver.clients", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return int64(len(s.clients))
	})
	if s.cfg.Partition != nil {
		reg.Func("partition.epoch", func() int64 { return int64(s.DLM.PartitionEpoch()) })
		reg.Func("partition.lease_takeovers", s.partState.takeovers.Load)
	}
}

// Obs returns the server's metrics registry.
func (s *Server) Obs() *obs.Registry { return s.obs }

// Tracer returns the attached DLM protocol tracer (nil unless
// Config.TraceEvents was set).
func (s *Server) Tracer() *dlm.Tracer { return s.tracer }

// Serve starts accepting RPC connections on l and, if configured, the
// extent-cache cleanup daemon. It returns immediately.
func (s *Server) Serve(l transport.Listener) {
	s.rpcSrv = rpc.NewServer(l, rpc.Options{OnClose: s.dropEndpoint, Clock: s.clk}, s.setup)
	s.clk.Go(s.rpcSrv.Serve)
	if s.cfg.CleanupInterval > 0 {
		s.clk.Go(func() { s.Cache.Daemon(s.baseCtx, s.cfg.CleanupInterval, s.minSN, s.forceSync) })
	}
	if p := s.cfg.Partition; p != nil && p.Coordinator != nil {
		s.clk.Go(s.leaseDaemon)
	}
}

// Shutdown drains the server gracefully, bounded by ctx: new requests
// fail with wire.ErrShuttingDown, queued lock waiters are failed so
// blocked handlers return, in-flight handlers (flushes included) run to
// completion, then endpoints close, daemons stop, and the extent log is
// synced. It is idempotent with Close; whichever runs first wins.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.DLM.Shutdown() // unwedges handlers blocked in the grant wait
		if s.rpcSrv != nil {
			err = s.rpcSrv.Shutdown(ctx)
		}
		s.cancelFn()
		if s.logFile != nil {
			s.logFile.Sync()
			s.logFile.Close()
		}
	})
	return err
}

// Close stops the server immediately, without draining in-flight
// handlers. It is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.DLM.Shutdown()
		s.cancelFn()
		if s.rpcSrv != nil {
			s.rpcSrv.Close()
		}
		if s.logFile != nil {
			s.logFile.Sync()
			s.logFile.Close()
		}
	})
}

// Addr returns the RPC listen address.
func (s *Server) Addr() string { return s.rpcSrv.Addr() }

func (s *Server) dropEndpoint(ep *rpc.Endpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, e := range s.clients {
		if e == ep {
			delete(s.clients, id)
		}
	}
}

// notifier delivers revocation callbacks over the client's RPC
// connection and acks to the DLM when the reply returns. A vanished
// client's locks are acked and force-released so the queue never wedges
// on a dead holder.
type notifier struct{ s *Server }

// wireStamp converts a handoff stamp to its wire form.
func wireStamp(h *dlm.HandoffStamp) *wire.HandoffStamp {
	if h == nil {
		return nil
	}
	return &wire.HandoffStamp{
		NextOwner: uint32(h.NextOwner),
		NewLockID: uint64(h.NewLockID),
		Mode:      uint8(h.Mode),
		SN:        uint64(h.SN),
		MustFlush: h.MustFlush,
		Broadcast: wireBroadcast(h.Broadcast),
	}
}

// wireBroadcast converts a broadcast cohort payload to its wire form.
func wireBroadcast(b *dlm.BroadcastStamp) *wire.BroadcastGrant {
	if b == nil {
		return nil
	}
	g := &wire.BroadcastGrant{
		Mode:   uint8(b.Mode),
		Range:  b.Range,
		Fanout: uint8(b.Fanout),
		Leases: make([]wire.LeaseEntry, 0, len(b.Leases)),
	}
	for _, l := range b.Leases {
		g.Leases = append(g.Leases, wire.LeaseEntry{
			Owner: uint32(l.Owner), LockID: uint64(l.LockID), SN: uint64(l.SN),
		})
	}
	return g
}

// Revoke implements dlm.Notifier.
func (n notifier) Revoke(ctx context.Context, rv dlm.Revocation) {
	n.s.mu.RLock()
	ep := n.s.clients[rv.Client]
	n.s.mu.RUnlock()
	if ep == nil {
		n.s.DLM.RevokeAck(rv.Resource, rv.Lock)
		// For a stamped revocation this release also resolves the
		// delegation: the engine activates the successor itself.
		n.s.DLM.Release(rv.Resource, rv.Lock)
		return
	}
	err := ep.Call(ctx, wire.MRevoke, &wire.RevokeRequest{
		Resource: uint64(rv.Resource),
		LockID:   uint64(rv.Lock),
		Handoff:  wireStamp(rv.Handoff),
	}, nil)
	n.s.DLM.RevokeAck(rv.Resource, rv.Lock)
	if err != nil {
		// The holder is gone; its dirty data is lost by the client-cache
		// durability convention (§IV-C1). Release so waiters proceed.
		n.s.DLM.Release(rv.Resource, rv.Lock)
	}
}

// Handoff implements dlm.HandoffNotifier: the server-sent activation of
// a delegated lock, used when the previous holder released instead of
// transferring or the reclaimer force-resolved the delegation.
func (n notifier) Handoff(ctx context.Context, client dlm.ClientID, res dlm.ResourceID, id dlm.LockID) {
	n.s.mu.RLock()
	ep := n.s.clients[client]
	n.s.mu.RUnlock()
	if ep == nil {
		// The new owner is gone too; release the resolved lock so
		// waiters proceed.
		n.s.DLM.Release(res, id)
		return
	}
	if err := ep.Call(ctx, wire.MHandoff, &wire.HandoffRequest{Resource: uint64(res), LockID: uint64(id), Final: true}, nil); err != nil {
		n.s.DLM.Release(res, id)
	}
}

// maxRevokeEntries caps how many revocations ride in one RevokeBatch
// frame; a larger per-client backlog splits into several frames that
// still leave as one coalesced transport batch (rpc.CallBatch).
const maxRevokeEntries = 512

// RevokeBatch implements dlm.BatchNotifier: every revocation pending
// for one client goes out as a single callback RPC (chunked past
// maxRevokeEntries), with the acks batched on the return path. Entries
// a failed call or a partial ack leaves unacknowledged are acked and
// force-released here, preserving the vanished-holder semantics of the
// individual path.
func (n notifier) RevokeBatch(ctx context.Context, client dlm.ClientID, revs []dlm.Revocation) {
	n.s.mu.RLock()
	ep := n.s.clients[client]
	n.s.mu.RUnlock()
	if ep == nil {
		for _, rv := range revs {
			n.s.DLM.RevokeAck(rv.Resource, rv.Lock)
			n.s.DLM.Release(rv.Resource, rv.Lock)
		}
		return
	}
	chunk := func(i int) []dlm.Revocation {
		hi := (i + 1) * maxRevokeEntries
		if hi > len(revs) {
			hi = len(revs)
		}
		return revs[i*maxRevokeEntries : hi]
	}
	calls := make([]rpc.BatchCall, (len(revs)+maxRevokeEntries-1)/maxRevokeEntries)
	for i := range calls {
		part := chunk(i)
		req := &wire.RevokeBatch{Entries: make([]wire.RevokeEntry, len(part))}
		for j, rv := range part {
			req.Entries[j] = wire.RevokeEntry{
				Resource: uint64(rv.Resource),
				LockID:   uint64(rv.Lock),
				Handoff:  wireStamp(rv.Handoff),
			}
		}
		calls[i] = rpc.BatchCall{Method: wire.MRevokeBatch, Req: req, Reply: &wire.RevokeBatchAck{}}
	}
	ep.CallBatch(ctx, calls)
	for i := range calls {
		part := chunk(i)
		if calls[i].Err != nil {
			for _, rv := range part {
				n.s.DLM.RevokeAck(rv.Resource, rv.Lock)
				n.s.DLM.Release(rv.Resource, rv.Lock)
			}
			continue
		}
		ack := calls[i].Reply.(*wire.RevokeBatchAck)
		acked := make(map[wire.RevokeEntry]bool, len(ack.Acked))
		for _, e := range ack.Acked {
			acked[e] = true
		}
		for _, rv := range part {
			n.s.DLM.RevokeAck(rv.Resource, rv.Lock)
			if !acked[wire.RevokeEntry{Resource: uint64(rv.Resource), LockID: uint64(rv.Lock)}] {
				n.s.DLM.Release(rv.Resource, rv.Lock)
			}
		}
	}
}

// minSN is the extent-cache cleanup task's DLM query. Once the lock
// space is partitioned, the stripes this node stores and the stripes
// it masters are independent sets, so the query is routed to the
// slot's current master when it is not local.
func (s *Server) minSN(stripe uint64, rng extent.Extent) (extent.SN, bool) {
	if p := s.cfg.Partition; p != nil && p.RemoteMinSN != nil &&
		s.DLM.CheckMaster(dlm.ResourceID(stripe)) != nil {
		return p.RemoteMinSN(stripe, rng)
	}
	return s.DLM.MinSN(dlm.ResourceID(stripe), rng)
}

// forceSync reclaims every outstanding write lock of a stripe by taking
// (and releasing) a whole-range read lock as the server-local client 0,
// routed like minSN when the stripe's slot is mastered elsewhere.
func (s *Server) forceSync(stripe uint64) {
	if p := s.cfg.Partition; p != nil && p.RemoteForceSync != nil &&
		s.DLM.CheckMaster(dlm.ResourceID(stripe)) != nil {
		p.RemoteForceSync(stripe)
		return
	}
	mode := s.cfg.Policy.MapMode(dlm.PR)
	g, err := s.DLM.Lock(s.baseCtx, dlm.Request{
		Resource: dlm.ResourceID(stripe),
		Client:   0,
		Mode:     mode,
		Range:    extent.New(0, extent.Inf),
	})
	if err != nil {
		return
	}
	s.DLM.Release(dlm.ResourceID(stripe), g.LockID)
}

// Recover rebuilds the DLM state after a crash by gathering lock
// records from every connected client (§IV-C2) and restoring them into
// the engine. The extent cache is rebuilt separately by replaying the
// extent log (Cache.Replay). It must run before new lock traffic is
// admitted. ctx bounds the per-client report round trips.
func (s *Server) Recover(ctx context.Context) error {
	s.gate.Lock()
	defer s.gate.Unlock()

	var records []dlm.LockRecord
	for _, ep := range s.clientEndpoints() {
		var rep wire.LockReport
		if err := ep.Call(ctx, wire.MReport, &wire.Ack{}, &rep); err != nil {
			// A client that vanished since the crash simply loses its
			// locks, like the paper's aborted-job convention.
			continue
		}
		records = append(records, recordsFromWire(rep.Locks)...)
	}
	return s.DLM.RestoreReplay(records)
}

// clientEndpoints snapshots the registered control endpoints in client-ID
// order. The registry is a map; gathering in its iteration order would
// make replay RPC timing differ run to run under a virtual clock.
func (s *Server) clientEndpoints() []*rpc.Endpoint {
	s.mu.RLock()
	ids := make([]dlm.ClientID, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	eps := make([]*rpc.Endpoint, 0, len(ids))
	s.mu.RLock()
	for _, id := range ids {
		if ep := s.clients[id]; ep != nil {
			eps = append(eps, ep)
		}
	}
	s.mu.RUnlock()
	return eps
}

// recordsFromWire maps wire lock records into engine records, including
// the delegation flags crash takeover resolves.
func recordsFromWire(locks []wire.LockRecord) []dlm.LockRecord {
	out := make([]dlm.LockRecord, 0, len(locks))
	for _, l := range locks {
		out = append(out, dlm.LockRecord{
			Resource:  dlm.ResourceID(l.Resource),
			Client:    dlm.ClientID(l.Client),
			LockID:    dlm.LockID(l.LockID),
			Mode:      dlm.Mode(l.Mode),
			Range:     l.Range,
			SN:        l.SN,
			State:     dlm.State(l.State),
			Delegated: l.Flags&wire.LockFlagDelegated != 0,
			HandedOff: l.Flags&wire.LockFlagHandedOff != 0,
		})
	}
	return out
}

// setup registers the RPC handlers on a new endpoint.
func (s *Server) setup(ep *rpc.Endpoint) {
	// One shared Metrics across every client endpoint: per-method handle
	// latencies aggregate server-wide.
	ep.SetMetrics(s.rpcMetrics)
	ep.Handle(wire.MHello, func(ctx context.Context, p []byte) (wire.Msg, error) {
		var req wire.HelloRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		if req.ClientID == 0 {
			return nil, wire.Errorf(wire.CodeInvalid, "dataserver: client must bring a cluster-assigned ID")
		}
		if !req.Bulk {
			// Only the control connection receives revocation callbacks;
			// bulk connections carry flush and read traffic.
			s.mu.Lock()
			s.clients[dlm.ClientID(req.ClientID)] = ep
			s.mu.Unlock()
		}
		return &wire.HelloReply{ClientID: req.ClientID}, nil
	})

	ep.Handle(wire.MLock, func(ctx context.Context, p []byte) (wire.Msg, error) {
		var req wire.LockRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		if s.draining.Load() {
			return nil, wire.ErrShuttingDown
		}
		// Barrier only: a request must not enter the engine mid-recovery
		// (it would be resolved against missing state), but the gate
		// cannot be held across the blocking grant wait — the grant may
		// need a release, which itself passes the gate.
		s.gate.RLock()
		s.gate.RUnlock()                             //nolint:staticcheck // empty critical section is the barrier
		if err := s.lockL.WaitCtx(ctx); err != nil { // the lock server's OPS bound
			return nil, wire.FromContext(err)
		}
		var set extent.Set
		if len(req.Extents) > 0 {
			set = extent.NewSet(req.Extents...)
		}
		var acks []dlm.LockID
		for _, id := range req.HandoffAcks {
			acks = append(acks, dlm.LockID(id))
		}
		g, err := s.DLM.Lock(ctx, dlm.Request{
			Resource:    dlm.ResourceID(req.Resource),
			Client:      dlm.ClientID(req.Client),
			Mode:        dlm.Mode(req.Mode),
			Range:       req.Range,
			Extents:     set,
			HandoffAcks: acks,
		})
		if err != nil {
			return nil, err
		}
		reply := &wire.LockGrant{
			LockID:      uint64(g.LockID),
			Mode:        uint8(g.Mode),
			Range:       g.Range,
			SN:          g.SN,
			State:       uint8(g.State),
			Delegated:   g.Delegated,
			GatherParts: uint32(g.GatherParts),
			HandBack:    wireBroadcast(g.HandBack),
		}
		for _, id := range g.Absorbed {
			reply.Absorbed = append(reply.Absorbed, uint64(id))
		}
		return reply, nil
	})

	ep.Handle(wire.MRelease, func(ctx context.Context, p []byte) (wire.Msg, error) {
		var req wire.ReleaseRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		s.gate.RLock()
		defer s.gate.RUnlock()
		if err := s.lockL.WaitCtx(ctx); err != nil {
			return nil, wire.FromContext(err)
		}
		// A release for a slot this node no longer masters must be
		// redirected, not swallowed: the lock record migrated with the
		// slot, and a no-op "success" here would leave it held forever
		// at the new master. The gate makes the check-then-release
		// atomic with respect to migration.
		if err := s.DLM.CheckMaster(dlm.ResourceID(req.Resource)); err != nil {
			return nil, err
		}
		s.DLM.Release(dlm.ResourceID(req.Resource), dlm.LockID(req.LockID))
		return &wire.Ack{}, nil
	})

	ep.Handle(wire.MDowngrade, func(ctx context.Context, p []byte) (wire.Msg, error) {
		var req wire.DowngradeRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		s.gate.RLock()
		defer s.gate.RUnlock()
		if err := s.lockL.WaitCtx(ctx); err != nil {
			return nil, wire.FromContext(err)
		}
		if err := s.DLM.CheckMaster(dlm.ResourceID(req.Resource)); err != nil {
			return nil, err
		}
		if err := s.DLM.Downgrade(dlm.ResourceID(req.Resource), dlm.LockID(req.LockID), dlm.Mode(req.NewMode)); err != nil {
			return nil, err
		}
		return &wire.Ack{}, nil
	})

	ep.Handle(wire.MHandoffAck, func(ctx context.Context, p []byte) (wire.Msg, error) {
		var req wire.HandoffAckRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		s.gate.RLock()
		defer s.gate.RUnlock()
		if err := s.lockL.WaitCtx(ctx); err != nil {
			return nil, wire.FromContext(err)
		}
		// Like a release, an ack for a migrated slot must be redirected:
		// the freeze already resolved the delegation, and the new master
		// treats the late ack as a duplicate.
		if err := s.DLM.CheckMaster(dlm.ResourceID(req.Resource)); err != nil {
			return nil, err
		}
		if len(req.More) > 0 {
			ids := make([]dlm.LockID, 0, len(req.More)+1)
			ids = append(ids, dlm.LockID(req.LockID))
			for _, id := range req.More {
				ids = append(ids, dlm.LockID(id))
			}
			s.DLM.HandoffAckBatch(dlm.ResourceID(req.Resource), ids)
		} else {
			s.DLM.HandoffAck(dlm.ResourceID(req.Resource), dlm.LockID(req.LockID))
		}
		return &wire.Ack{}, nil
	})

	ep.Handle(wire.MFlush, func(ctx context.Context, p []byte) (wire.Msg, error) {
		var req wire.FlushRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		s.gate.RLock()
		defer s.gate.RUnlock()
		if err := s.Flush(&req); err != nil {
			return nil, err
		}
		return &wire.Ack{}, nil
	})

	ep.Handle(wire.MRead, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.ReadRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		return s.handleRead(&req)
	})

	ep.Handle(wire.MMinSN, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.MinSNRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		sn, ok := s.minSN(req.Resource, req.Range)
		return &wire.MinSNReply{HasLocks: ok, MinSN: sn}, nil
	})

	s.setupPartition(ep)
	if s.cfg.Meta != nil {
		s.setupMeta(ep)
	}
	ep.Start()
}

// Flush is the server-side write routine of Fig. 15: merge each
// block's SN into the extent cache, write the surviving update set to
// the device, discard the rest. It is the body of the MFlush RPC and is
// also driven directly by the hot-path benchmarks.
func (s *Server) Flush(req *wire.FlushRequest) error {
	for _, b := range req.Blocks {
		if b.Range.Len() != int64(len(b.Data)) {
			return fmt.Errorf("dataserver: block range %v does not match %d data bytes", b.Range, len(b.Data))
		}
		won := s.Cache.Apply(req.Resource, b.Range, b.SN)
		var wrote int64
		for _, w := range won {
			data := b.Data[w.Start-b.Range.Start : w.End-b.Range.Start]
			if err := s.store.WriteAt(req.Resource, w.Start, data); err != nil {
				return err
			}
			wrote += w.Len()
		}
		s.FlushedBytes.Add(wrote)
		s.DiscardedBytes.Add(b.Range.Len() - wrote)
	}
	// The budget check is one atomic load (DESIGN.md §6), so the write
	// routine tests it on every flush and wakes the cleanup daemon as
	// soon as the cache goes over budget rather than waiting out the
	// next tick.
	if s.Cache.NeedsCleanup() {
		s.Cache.Kick()
	}
	return nil
}

func (s *Server) handleRead(req *wire.ReadRequest) (wire.Msg, error) {
	if req.Range.Empty() || req.Range.End == extent.Inf || req.Range.Len() > MaxReadBytes {
		return nil, fmt.Errorf("dataserver: invalid read range %v", req.Range)
	}
	// The read buffer is pooled: the reply implements wire.Recycler, so
	// the rpc layer returns the buffer once the response frame is on the
	// wire (the encoded frame copies the bytes).
	buf := wire.GetBuf(int(req.Range.Len()))
	if err := s.store.ReadAt(req.Resource, req.Range.Start, buf); err != nil {
		wire.PutBuf(buf)
		return nil, err
	}
	sn, _ := s.Cache.MaxSN(req.Resource, req.Range)
	r := &pooledReadReply{}
	r.Blocks = []wire.Block{{Range: req.Range, SN: sn, Data: buf}}
	return r, nil
}

// pooledReadReply is a ReadReply whose block data rides in pooled
// buffers. Recycle runs after the rpc layer has encoded the response.
type pooledReadReply struct {
	wire.ReadReply
}

func (r *pooledReadReply) Recycle() {
	for i := range r.Blocks {
		wire.PutBuf(r.Blocks[i].Data)
		r.Blocks[i].Data = nil
	}
}

func (s *Server) setupMeta(ep *rpc.Endpoint) {
	m := s.cfg.Meta
	ep.Handle(wire.MCreate, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.CreateRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		f, err := m.Create(req.Path, req.StripeSize, req.StripeCount)
		if err != nil {
			return nil, err
		}
		return fileReply(f), nil
	})
	ep.Handle(wire.MOpen, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.OpenRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		f, err := m.Open(req.Path)
		if err != nil {
			return nil, err
		}
		return fileReply(f), nil
	})
	ep.Handle(wire.MStat, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.OpenRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		f, err := m.Open(req.Path)
		if err != nil {
			return nil, err
		}
		return fileReply(f), nil
	})
	ep.Handle(wire.MSetSize, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.SetSizeRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		sz, err := m.SetSize(req.FID, req.Size, req.Truncate)
		if err != nil {
			return nil, err
		}
		return &wire.SizeReply{Size: sz}, nil
	})
	ep.Handle(wire.MReserve, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.SetSizeRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		off, err := m.Reserve(req.FID, req.Size)
		if err != nil {
			return nil, err
		}
		return &wire.SizeReply{Size: off}, nil
	})
	ep.Handle(wire.MList, func(_ context.Context, p []byte) (wire.Msg, error) {
		return &wire.ListReply{Paths: m.List()}, nil
	})
	ep.Handle(wire.MRemove, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.OpenRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		if err := m.Remove(req.Path); err != nil {
			return nil, err
		}
		return &wire.Ack{}, nil
	})
}

func fileReply(f meta.File) *wire.FileReply {
	return &wire.FileReply{
		FID:         f.FID,
		Size:        f.Size,
		StripeSize:  f.StripeSize,
		StripeCount: f.StripeCount,
	}
}
