package dataserver

import (
	"context"
	"sync/atomic"
	"time"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/partition"
	"ccpfs/internal/rpc"
	"ccpfs/internal/wire"
)

// PartitionConfig makes the node's DLM master only a subset of the
// lock space's hash slots (DESIGN.md §12). With a Coordinator the node
// acquires and renews time-bounded leases on its slots and may take
// over the slots of a peer whose leases lapse, rebuilding them from
// client replay; without one, mastership is static (the multi-process
// deployment of cmd/ccpfs-server, where Servers/Index carve the slot
// space with partition.Uniform).
type PartitionConfig struct {
	// Coordinator arbitrates leases. Nil selects static mastership.
	Coordinator *partition.Coordinator
	// Index is this node's position in the partition map — the value
	// clients route by.
	Index int32
	// Servers is the total lock-server count (static mode only).
	Servers int
	// Slots overrides the initial claim; nil claims Uniform(n)[Index].
	Slots []partition.Slot
	// Takeover lets the node claim expired slots of dead peers.
	Takeover bool
	// RemoteMinSN and RemoteForceSync route the extent-cache cleanup
	// daemon's lock queries to the slot's current master when this node
	// stores a stripe it does not master (lock and data placement are
	// independent once the lock space is partitioned). Nil leaves the
	// daemon with local-only answers, which is only sound when it does
	// not run or the node masters every stripe it stores.
	RemoteMinSN     func(stripe uint64, rng extent.Extent) (extent.SN, bool)
	RemoteForceSync func(stripe uint64)
}

// partState is the lease agent's runtime state.
type partState struct {
	takeovers atomic.Int64
}

// initPartition installs the node's initial slot view. Called from New.
func (s *Server) initPartition() {
	p := s.cfg.Partition
	slots := p.Slots
	if p.Coordinator != nil {
		if slots == nil {
			slots = partition.Uniform(int(p.Index) + 1)[p.Index] // degenerate default; cluster always passes Slots
		}
		granted, epoch, expiry := p.Coordinator.Acquire(p.Index, slots)
		s.DLM.SetSlots(epoch, granted)
		s.DLM.SetLeaseExpiry(expiry)
		return
	}
	if slots == nil && p.Servers > 0 {
		slots = partition.Uniform(p.Servers)[p.Index]
	}
	s.DLM.SetSlots(1, slots)
}

// leaseDaemon renews this node's slot leases at a third of the TTL and,
// when Takeover is set, claims slots whose leases lapsed (a dead peer)
// and rebuilds them via client replay. Renewal can only shrink the
// owned set: slots are grown exclusively through adoptSlots or a
// migration install, both of which put the lock tables in place before
// the slot starts serving — a renewal that "discovered" a transferred
// slot before its state arrived would serve grants from an empty table.
func (s *Server) leaseDaemon() {
	p := s.cfg.Partition
	tick := p.Coordinator.TTL() / 3
	if tick <= 0 {
		tick = 50 * time.Millisecond
	}
	for s.clk.SleepCtx(s.baseCtx, tick) {
		s.partMu.Lock()
		held, expiry := p.Coordinator.Renew(p.Index)
		s.DLM.SetLeaseExpiry(expiry)
		in := make(map[partition.Slot]bool, len(held))
		for _, sl := range held {
			in[sl] = true
		}
		cur := s.DLM.OwnedSlots()
		keep := cur[:0]
		for _, sl := range cur {
			if in[sl] {
				keep = append(keep, sl)
			}
		}
		if len(keep) != len(cur) {
			s.DLM.SetSlots(p.Coordinator.Epoch(), keep)
		}
		if p.Takeover && !s.draining.Load() {
			if expired := p.Coordinator.Expired(); len(expired) > 0 {
				granted, epoch, exp := p.Coordinator.Acquire(p.Index, expired)
				if len(granted) > 0 {
					s.adoptSlots(epoch, granted)
					s.DLM.SetLeaseExpiry(exp)
					s.partState.takeovers.Add(1)
				}
			}
		}
		s.partMu.Unlock()
	}
}

// adoptSlots rebuilds newly claimed slots from client replay (§IV-C2,
// filtered by slot) and takes mastership of them. The handler gate is
// held for the whole gather+restore, exactly like full-crash Recover:
// a release racing the gather could otherwise land before its lock is
// restored and leave a zombie lock at the new master.
func (s *Server) adoptSlots(epoch uint64, slots []partition.Slot) {
	s.gate.Lock()
	defer s.gate.Unlock()

	req := &wire.SlotReportRequest{Epoch: epoch, Slots: make([]uint32, len(slots))}
	for i, sl := range slots {
		req.Slots[i] = uint32(sl)
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Partition.Coordinator.TTL())
	defer cancel()
	var records []dlm.LockRecord
	for _, ep := range s.clientEndpoints() {
		var rep wire.LockReport
		if err := ep.Call(ctx, wire.MReportSlots, req, &rep); err != nil {
			// A vanished client loses its locks, like the paper's
			// aborted-job convention (and full-crash Recover).
			continue
		}
		records = append(records, recordsFromWire(rep.Locks)...)
	}
	// Restore failures (a malformed record) drop the replay but still
	// take the slots: an empty rebuilt table loses cached locks, a
	// refused slot set wedges the whole lock space.
	_ = s.DLM.AdoptSlots(epoch, slots, records)
}

// partitionMap answers a client's map-refresh request.
func (s *Server) partitionMap() *wire.PartitionMapReply {
	p := s.cfg.Partition
	if p == nil {
		return &wire.PartitionMapReply{} // unpartitioned: epoch 0, no owners
	}
	var m *partition.Map
	if p.Coordinator != nil {
		m = p.Coordinator.Snapshot()
	} else {
		n := p.Servers
		if n <= 0 {
			n = 1
		}
		m = partition.UniformMap(1, n)
	}
	rep := &wire.PartitionMapReply{Epoch: m.Epoch, Owners: make([]int32, partition.NumSlots)}
	copy(rep.Owners, m.Owner[:])
	return rep
}

// setupPartition registers the partition-service handlers: map refresh
// for clients, freeze/install for the migration orchestrator.
func (s *Server) setupPartition(ep *rpc.Endpoint) {
	ep.Handle(wire.MPartitionMap, func(_ context.Context, p []byte) (wire.Msg, error) {
		return s.partitionMap(), nil
	})

	ep.Handle(wire.MSlotFreeze, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.SlotFreezeRequest
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		if s.cfg.Partition == nil {
			return nil, wire.Errorf(wire.CodeInvalid, "dataserver: not partitioned")
		}
		s.partMu.Lock()
		defer s.partMu.Unlock()
		// The gate quiesces releases/acks so none can land between the
		// export copying a lock and the new master installing it.
		s.gate.Lock()
		exp, err := s.DLM.FreezeExportSlot(partition.Slot(req.Slot))
		s.gate.Unlock()
		if err != nil {
			return nil, err
		}
		return exportToWire(exp), nil
	})

	ep.Handle(wire.MSlotInstall, func(_ context.Context, p []byte) (wire.Msg, error) {
		var req wire.SlotInstall
		if err := wire.Unmarshal(p, &req); err != nil {
			return nil, err
		}
		if s.cfg.Partition == nil {
			return nil, wire.Errorf(wire.CodeInvalid, "dataserver: not partitioned")
		}
		s.partMu.Lock()
		defer s.partMu.Unlock()
		s.gate.Lock()
		err := s.DLM.InstallSlot(wireToExport(&req.State), req.Epoch)
		s.gate.Unlock()
		if err != nil {
			return nil, err
		}
		return &wire.Ack{}, nil
	})
}

func exportToWire(exp dlm.SlotExport) *wire.SlotState {
	st := &wire.SlotState{Slot: uint32(exp.Slot), Epoch: exp.Epoch}
	for _, re := range exp.Resources {
		wr := wire.SlotResource{
			Resource: uint64(re.Resource),
			NextSN:   uint64(re.NextSN),
			Grants:   re.Grants,
		}
		for _, l := range re.Locks {
			wr.Locks = append(wr.Locks, wire.LockRecord{
				Resource: uint64(l.Resource),
				Client:   uint32(l.Client),
				LockID:   uint64(l.LockID),
				Mode:     uint8(l.Mode),
				Range:    l.Range,
				SN:       uint64(l.SN),
				State:    uint8(l.State),
				Flags:    lockFlags(l),
			})
		}
		st.Resources = append(st.Resources, wr)
	}
	return st
}

func wireToExport(st *wire.SlotState) dlm.SlotExport {
	exp := dlm.SlotExport{Slot: partition.Slot(st.Slot), Epoch: st.Epoch}
	for _, wr := range st.Resources {
		re := dlm.ResourceExport{
			Resource: dlm.ResourceID(wr.Resource),
			NextSN:   extent.SN(wr.NextSN),
			Grants:   wr.Grants,
		}
		for _, l := range wr.Locks {
			re.Locks = append(re.Locks, dlm.LockRecord{
				Resource:  dlm.ResourceID(l.Resource),
				Client:    dlm.ClientID(l.Client),
				LockID:    dlm.LockID(l.LockID),
				Mode:      dlm.Mode(l.Mode),
				Range:     l.Range,
				SN:        extent.SN(l.SN),
				State:     dlm.State(l.State),
				Delegated: l.Flags&wire.LockFlagDelegated != 0,
				HandedOff: l.Flags&wire.LockFlagHandedOff != 0,
			})
		}
		exp.Resources = append(exp.Resources, re)
	}
	return exp
}

// lockFlags packs a record's delegation bits into the wire flag byte.
func lockFlags(l dlm.LockRecord) uint8 {
	var f uint8
	if l.Delegated {
		f |= wire.LockFlagDelegated
	}
	if l.HandedOff {
		f |= wire.LockFlagHandedOff
	}
	return f
}
