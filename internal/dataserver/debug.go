package dataserver

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the server's diagnostic HTTP surface:
//
//	/debug/metrics        registry snapshot as JSON (?format=text for a table)
//	/debug/trace          DLM protocol-event dump (requires Config.TraceEvents)
//	/debug/pprof/...      the standard runtime profiles
//
// The handler holds no locks across requests — /debug/metrics takes a
// point-in-time Snapshot — so scraping a loaded server is safe. It is
// opt-in: ccpfs-server only mounts it when -debug is set, and the
// listener should stay on a loopback or otherwise trusted interface
// (pprof exposes process internals).
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.obs.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteTable(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.tracer == nil {
			http.Error(w, "tracing disabled: start the server with Config.TraceEvents > 0", http.StatusNotFound)
			return
		}
		w.Write([]byte(s.tracer.Dump()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
