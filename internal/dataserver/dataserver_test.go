package dataserver

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/meta"
	"ccpfs/internal/rpc"
	"ccpfs/internal/sim"
	"ccpfs/internal/storage"
	"ccpfs/internal/transport/memnet"
	"ccpfs/internal/wire"
)

// testServer starts a server on memnet and returns a connected, started
// client endpoint.
func testServer(t *testing.T, cfg Config) (*Server, *rpc.Endpoint) {
	t.Helper()
	net := memnet.New(sim.Fast())
	l, err := net.Listen("ds")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cfg)
	srv.Serve(l)
	t.Cleanup(srv.Close)
	conn, err := net.Dial("ds")
	if err != nil {
		t.Fatal(err)
	}
	ep := rpc.NewEndpoint(conn, rpc.Options{})
	ep.Start()
	t.Cleanup(func() { ep.Close() })
	return srv, ep
}

func hello(t *testing.T, ep *rpc.Endpoint, id uint32, bulk bool) {
	t.Helper()
	var rep wire.HelloReply
	err := ep.Call(context.Background(), wire.MHello, &wire.HelloRequest{NodeName: "t", ClientID: id, Bulk: bulk}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClientID != id {
		t.Fatalf("hello returned id %d, want %d", rep.ClientID, id)
	}
}

func TestHelloRejectsZeroID(t *testing.T) {
	_, ep := testServer(t, Config{Policy: dlm.SeqDLM()})
	err := ep.Call(context.Background(), wire.MHello, &wire.HelloRequest{NodeName: "t"}, &wire.HelloReply{})
	if err == nil {
		t.Fatal("zero client ID accepted")
	}
}

func TestLockGrantOverRPC(t *testing.T) {
	_, ep := testServer(t, Config{Policy: dlm.SeqDLM()})
	hello(t, ep, 7, false)
	var g wire.LockGrant
	err := ep.Call(context.Background(), wire.MLock, &wire.LockRequest{
		Resource: 1, Client: 7, Mode: uint8(dlm.NBW), Range: extent.New(0, 100),
	}, &g)
	if err != nil {
		t.Fatal(err)
	}
	if g.LockID == 0 || g.Range.End != extent.Inf || dlm.State(g.State) != dlm.Granted {
		t.Fatalf("grant = %+v", g)
	}
	if err := ep.Call(context.Background(), wire.MRelease, &wire.ReleaseRequest{Resource: 1, LockID: g.LockID}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockRejectsWrongModeForPolicy(t *testing.T) {
	_, ep := testServer(t, Config{Policy: dlm.Basic()})
	hello(t, ep, 7, false)
	err := ep.Call(context.Background(), wire.MLock, &wire.LockRequest{
		Resource: 1, Client: 7, Mode: uint8(dlm.NBW), Range: extent.New(0, 100),
	}, &wire.LockGrant{})
	if err == nil {
		t.Fatal("SeqDLM mode accepted by legacy policy")
	}
}

func TestFlushAndReadRoundTrip(t *testing.T) {
	srv, ep := testServer(t, Config{Policy: dlm.SeqDLM()})
	hello(t, ep, 7, false)
	data := []byte("hello extent cache")
	err := ep.Call(context.Background(), wire.MFlush, &wire.FlushRequest{
		Resource: 5, Client: 7,
		Blocks: []wire.Block{{Range: extent.Span(100, int64(len(data))), SN: 3, Data: data}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv.FlushedBytes.Load() != int64(len(data)) {
		t.Fatalf("FlushedBytes = %d", srv.FlushedBytes.Load())
	}
	var rep wire.ReadReply
	err = ep.Call(context.Background(), wire.MRead, &wire.ReadRequest{Resource: 5, Range: extent.Span(100, int64(len(data)))}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Blocks) != 1 || !bytes.Equal(rep.Blocks[0].Data, data) {
		t.Fatalf("read = %+v", rep)
	}
}

func TestFlushDiscardsStaleData(t *testing.T) {
	srv, ep := testServer(t, Config{Policy: dlm.SeqDLM()})
	hello(t, ep, 7, false)
	newer := bytes.Repeat([]byte{9}, 64)
	older := bytes.Repeat([]byte{1}, 64)
	ep.Call(context.Background(), wire.MFlush, &wire.FlushRequest{Resource: 1, Blocks: []wire.Block{
		{Range: extent.Span(0, 64), SN: 9, Data: newer}}}, nil)
	ep.Call(context.Background(), wire.MFlush, &wire.FlushRequest{Resource: 1, Blocks: []wire.Block{
		{Range: extent.Span(0, 64), SN: 2, Data: older}}}, nil)
	if srv.DiscardedBytes.Load() != 64 {
		t.Fatalf("DiscardedBytes = %d, want 64", srv.DiscardedBytes.Load())
	}
	var rep wire.ReadReply
	ep.Call(context.Background(), wire.MRead, &wire.ReadRequest{Resource: 1, Range: extent.Span(0, 64)}, &rep)
	if !bytes.Equal(rep.Blocks[0].Data, newer) {
		t.Fatal("stale flush overwrote newer data on device")
	}
}

func TestFlushRejectsMalformedBlock(t *testing.T) {
	_, ep := testServer(t, Config{Policy: dlm.SeqDLM()})
	hello(t, ep, 7, false)
	err := ep.Call(context.Background(), wire.MFlush, &wire.FlushRequest{Resource: 1, Blocks: []wire.Block{
		{Range: extent.Span(0, 100), SN: 1, Data: []byte("short")}}}, nil)
	if err == nil {
		t.Fatal("mismatched block length accepted")
	}
}

func TestReadValidation(t *testing.T) {
	_, ep := testServer(t, Config{Policy: dlm.SeqDLM()})
	hello(t, ep, 7, false)
	for _, rng := range []extent.Extent{
		{Start: 0, End: 0},
		{Start: 0, End: extent.Inf},
		{Start: 0, End: MaxReadBytes + 1},
	} {
		if err := ep.Call(context.Background(), wire.MRead, &wire.ReadRequest{Resource: 1, Range: rng}, &wire.ReadReply{}); err == nil {
			t.Fatalf("read range %v accepted", rng)
		}
	}
}

func TestMinSNOverRPC(t *testing.T) {
	_, ep := testServer(t, Config{Policy: dlm.SeqDLM()})
	hello(t, ep, 7, false)
	var g wire.LockGrant
	if err := ep.Call(context.Background(), wire.MLock, &wire.LockRequest{
		Resource: 1, Client: 7, Mode: uint8(dlm.NBW), Range: extent.New(0, 100),
	}, &g); err != nil {
		t.Fatal(err)
	}
	var rep wire.MinSNReply
	if err := ep.Call(context.Background(), wire.MMinSN, &wire.MinSNRequest{Resource: 1, Range: extent.New(0, extent.Inf)}, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.HasLocks || rep.MinSN != g.SN {
		t.Fatalf("MinSN = %+v, want SN %d", rep, g.SN)
	}
}

// TestRevocationToVanishedClientForceReleases: when the lock holder's
// connection is gone, the server acks and force-releases so waiters are
// never wedged on a dead client.
func TestRevocationToVanishedClientForceReleases(t *testing.T) {
	net := memnet.New(sim.Fast())
	l, _ := net.Listen("ds")
	srv := New(Config{Policy: dlm.SeqDLM()})
	srv.Serve(l)
	defer srv.Close()

	// Client 1 takes a lock, then disconnects without releasing.
	conn1, _ := net.Dial("ds")
	ep1 := rpc.NewEndpoint(conn1, rpc.Options{})
	ep1.Start()
	hello(t, ep1, 1, false)
	var g wire.LockGrant
	if err := ep1.Call(context.Background(), wire.MLock, &wire.LockRequest{
		Resource: 1, Client: 1, Mode: uint8(dlm.NBW), Range: extent.New(0, extent.Inf),
	}, &g); err != nil {
		t.Fatal(err)
	}
	ep1.Close()
	time.Sleep(20 * time.Millisecond) // let the server drop the endpoint

	// Client 2's conflicting request must still be granted.
	conn2, _ := net.Dial("ds")
	ep2 := rpc.NewEndpoint(conn2, rpc.Options{})
	ep2.Start()
	defer ep2.Close()
	hello(t, ep2, 2, false)
	done := make(chan error, 1)
	go func() {
		done <- ep2.Call(context.Background(), wire.MLock, &wire.LockRequest{
			Resource: 1, Client: 2, Mode: uint8(dlm.NBW), Range: extent.New(0, extent.Inf),
		}, &wire.LockGrant{})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lock request wedged behind a vanished holder")
	}
}

// TestBulkConnectionNotUsedForRevocations: a client whose only
// registered connection is bulk must be treated as unreachable for
// callbacks (force-release), not called back over the bulk conn.
func TestBulkConnectionNotUsedForRevocations(t *testing.T) {
	net := memnet.New(sim.Fast())
	l, _ := net.Listen("ds")
	srv := New(Config{Policy: dlm.SeqDLM()})
	srv.Serve(l)
	defer srv.Close()

	conn, _ := net.Dial("ds")
	ep := rpc.NewEndpoint(conn, rpc.Options{})
	// No MRevoke handler registered: a revocation over this conn would
	// error out. Register as bulk-only.
	ep.Start()
	defer ep.Close()
	hello(t, ep, 1, true)
	var g wire.LockGrant
	if err := ep.Call(context.Background(), wire.MLock, &wire.LockRequest{
		Resource: 1, Client: 1, Mode: uint8(dlm.NBW), Range: extent.New(0, extent.Inf),
	}, &g); err != nil {
		t.Fatal(err)
	}
	// A second client conflicts; the server must force-release client
	// 1's lock (no control conn) and grant.
	conn2, _ := net.Dial("ds")
	ep2 := rpc.NewEndpoint(conn2, rpc.Options{})
	ep2.Start()
	defer ep2.Close()
	hello(t, ep2, 2, false)
	done := make(chan error, 1)
	go func() {
		done <- ep2.Call(context.Background(), wire.MLock, &wire.LockRequest{
			Resource: 1, Client: 2, Mode: uint8(dlm.NBW), Range: extent.New(0, extent.Inf),
		}, &wire.LockGrant{})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request wedged behind bulk-only holder")
	}
}

func TestMetaHandlers(t *testing.T) {
	_, ep := testServer(t, Config{Policy: dlm.SeqDLM(), Meta: meta.NewService()})
	hello(t, ep, 7, false)

	var f wire.FileReply
	if err := ep.Call(context.Background(), wire.MCreate, &wire.CreateRequest{Path: "/a", StripeSize: 4096, StripeCount: 2}, &f); err != nil {
		t.Fatal(err)
	}
	if f.FID == 0 || f.StripeCount != 2 {
		t.Fatalf("create = %+v", f)
	}
	if err := ep.Call(context.Background(), wire.MCreate, &wire.CreateRequest{Path: "/a", StripeSize: 4096, StripeCount: 2}, &f); err == nil {
		t.Fatal("duplicate create accepted")
	}
	var g wire.FileReply
	if err := ep.Call(context.Background(), wire.MOpen, &wire.OpenRequest{Path: "/a"}, &g); err != nil || g.FID != f.FID {
		t.Fatalf("open = %+v, %v", g, err)
	}
	var sz wire.SizeReply
	if err := ep.Call(context.Background(), wire.MSetSize, &wire.SetSizeRequest{FID: f.FID, Size: 999}, &sz); err != nil || sz.Size != 999 {
		t.Fatalf("setsize = %+v, %v", sz, err)
	}
	if err := ep.Call(context.Background(), wire.MReserve, &wire.SetSizeRequest{FID: f.FID, Size: 100}, &sz); err != nil || sz.Size != 999 {
		t.Fatalf("reserve = %+v, %v (want old size back)", sz, err)
	}
	if err := ep.Call(context.Background(), wire.MStat, &wire.OpenRequest{Path: "/a"}, &g); err != nil || g.Size != 1099 {
		t.Fatalf("stat = %+v, %v", g, err)
	}
	if err := ep.Call(context.Background(), wire.MRemove, &wire.OpenRequest{Path: "/a"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := ep.Call(context.Background(), wire.MOpen, &wire.OpenRequest{Path: "/a"}, &g); err == nil {
		t.Fatal("open after remove succeeded")
	}
}

func TestMetaNotHostedHere(t *testing.T) {
	_, ep := testServer(t, Config{Policy: dlm.SeqDLM()})
	hello(t, ep, 7, false)
	err := ep.Call(context.Background(), wire.MCreate, &wire.CreateRequest{Path: "/a", StripeSize: 4096, StripeCount: 1}, &wire.FileReply{})
	if err == nil {
		t.Fatal("meta call served by a non-meta server")
	}
}

func TestExtentLogConfigured(t *testing.T) {
	srv, ep := testServer(t, Config{Policy: dlm.SeqDLM(), ExtentLog: true})
	hello(t, ep, 7, false)
	data := bytes.Repeat([]byte{1}, 32)
	ep.Call(context.Background(), wire.MFlush, &wire.FlushRequest{Resource: 3, Blocks: []wire.Block{
		{Range: extent.Span(0, 32), SN: 1, Data: data}}}, nil)
	if len(srv.Cache.Log(3)) == 0 {
		t.Fatal("extent log empty despite ExtentLog=true")
	}
}

// TestRestartRebuildsExtentCacheFromDurableLog simulates a real server
// restart: a new Server over the same data directory and extent-log
// directory must reconstruct the extent cache, so post-restart stale
// flushes are still discarded.
func TestRestartRebuildsExtentCacheFromDurableLog(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: dlm.SeqDLM(), Store: store, ExtentLog: true, ExtentLogDir: dir}

	srv, ep := testServer(t, cfg)
	hello(t, ep, 7, false)
	newer := bytes.Repeat([]byte{9}, 64)
	if err := ep.Call(context.Background(), wire.MFlush, &wire.FlushRequest{Resource: 1, Blocks: []wire.Block{
		{Range: extent.Span(0, 64), SN: 9, Data: newer}}}, nil); err != nil {
		t.Fatal(err)
	}
	srv.Close() // syncs and closes the durable log
	store.Close()

	// "New process": fresh store handle, fresh server, same directories.
	store2, err := storage.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	cfg.Store = store2
	net2 := memnet.New(sim.Fast())
	l2, err := net2.Listen("ds2")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(cfg)
	srv2.Serve(l2)
	defer srv2.Close()
	conn2, err := net2.Dial("ds2")
	if err != nil {
		t.Fatal(err)
	}
	ep2 := rpc.NewEndpoint(conn2, rpc.Options{})
	ep2.Start()
	defer ep2.Close()
	hello(t, ep2, 7, false)

	// A straggler flush with an older SN must STILL be discarded — only
	// possible if the extent cache was rebuilt from the durable log.
	older := bytes.Repeat([]byte{1}, 64)
	if err := ep2.Call(context.Background(), wire.MFlush, &wire.FlushRequest{Resource: 1, Blocks: []wire.Block{
		{Range: extent.Span(0, 64), SN: 2, Data: older}}}, nil); err != nil {
		t.Fatal(err)
	}
	if srv2.DiscardedBytes.Load() != 64 {
		t.Fatalf("stale flush not discarded after restart: discarded=%d", srv2.DiscardedBytes.Load())
	}
	var rep wire.ReadReply
	if err := ep2.Call(context.Background(), wire.MRead, &wire.ReadRequest{Resource: 1, Range: extent.Span(0, 64)}, &rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.Blocks[0].Data, newer) {
		t.Fatal("pre-restart data lost or overwritten by stale flush")
	}
}
