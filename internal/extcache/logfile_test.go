package extcache

import (
	"os"
	"path/filepath"
	"testing"

	"ccpfs/internal/extent"
)

func TestLogFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	lf, err := OpenLogFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	lf.Append(1, []extent.SNExtent{{Extent: extent.New(0, 100), SN: 3}})
	lf.Append(2, []extent.SNExtent{{Extent: extent.New(50, 60), SN: 4}, {Extent: extent.New(70, 80), SN: 4}})
	lf.Append(1, []extent.SNExtent{{Extent: extent.New(100, 200), SN: 5}})
	if err := lf.Sync(); err != nil {
		t.Fatal(err)
	}
	lf.Close()

	// Reopen (simulated restart) and replay.
	lf2, err := OpenLogFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lf2.Close()
	byStripe, err := lf2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(byStripe[1]) != 2 || len(byStripe[2]) != 2 {
		t.Fatalf("replayed %d/%d records", len(byStripe[1]), len(byStripe[2]))
	}
	if byStripe[1][1] != (extent.SNExtent{Extent: extent.New(100, 200), SN: 5}) {
		t.Fatalf("record = %+v", byStripe[1][1])
	}
}

func TestLogFileTornTail(t *testing.T) {
	dir := t.TempDir()
	lf, err := OpenLogFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	lf.Append(1, []extent.SNExtent{{Extent: extent.New(0, 100), SN: 3}})
	lf.Append(1, []extent.SNExtent{{Extent: extent.New(100, 200), SN: 4}})
	lf.Close()

	// Tear off half of the last record (a crash mid-append).
	path := filepath.Join(dir, "extent.log")
	st, _ := os.Stat(path)
	os.Truncate(path, st.Size()-10)

	lf2, err := OpenLogFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lf2.Close()
	byStripe, err := lf2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(byStripe[1]) != 1 || byStripe[1][0].SN != 3 {
		t.Fatalf("torn tail not truncated: %+v", byStripe[1])
	}
	// Appends after a torn-tail replay still work... but note the reader
	// stops at the tear, so new appends land after garbage. Truncate to
	// resynchronize, as a recovering server does after forced sync.
	if err := lf2.Truncate(); err != nil {
		t.Fatal(err)
	}
	lf2.Append(1, []extent.SNExtent{{Extent: extent.New(5, 6), SN: 9}})
	byStripe, err = lf2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(byStripe[1]) != 1 || byStripe[1][0].SN != 9 {
		t.Fatalf("post-truncate append lost: %+v", byStripe[1])
	}
}

func TestLogFileRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "extent.log"), []byte("not a log at all"), 0o644)
	lf, err := OpenLogFile(dir)
	if err != nil {
		t.Fatal(err) // open succeeds; replay must reject
	}
	defer lf.Close()
	if _, err := lf.ReadAll(); err == nil {
		t.Fatal("foreign file replayed")
	}
}

func TestCacheDurableLogMirror(t *testing.T) {
	dir := t.TempDir()
	lf, err := OpenLogFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(0, true)
	c.AttachLogFile(lf)
	c.Apply(7, extent.New(0, 4096), 8)
	c.Apply(7, extent.New(2048, 8192), 9)
	lf.Close()

	// A fresh cache in a fresh "process" rebuilds from the file.
	lf2, err := OpenLogFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lf2.Close()
	c2 := New(0, true)
	if err := c2.ReplayLogFile(lf2); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		rng extent.Extent
		sn  extent.SN
	}{{extent.New(0, 2048), 8}, {extent.New(2048, 8192), 9}} {
		got, ok := c2.MaxSN(7, probe.rng)
		if !ok || got != probe.sn {
			t.Fatalf("replayed SN for %v = %d/%v, want %d", probe.rng, got, ok, probe.sn)
		}
	}
}

func TestForceSyncTruncatesDurableLog(t *testing.T) {
	dir := t.TempDir()
	lf, _ := OpenLogFile(dir)
	c := New(0, true)
	c.AttachLogFile(lf)
	c.Apply(1, extent.New(0, 100), 1)
	c.ForceSync(func(uint64) {})
	byStripe, err := lf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(byStripe) != 0 {
		t.Fatalf("log not truncated by forced sync: %v", byStripe)
	}
	lf.Close()
}
