package extcache

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ccpfs/internal/extent"
)

// TestConcurrentStress hammers the cache with concurrent Apply, MaxSN,
// and cleanup rounds on overlapping stripes (run under -race in CI).
// The asserted invariant is per-byte-range max-SN monotonicity: once a
// reader observes SN x for a range, no later read of that range may
// observe a smaller SN while the entries are pinned — cleanup with a
// pinning mSN may only remove entries at or below the release horizon,
// so a regression above the horizon is a lost update.
func TestConcurrentStress(t *testing.T) {
	const (
		stripes  = 4
		writers  = 4
		readers  = 2
		perSlot  = 16 // byte ranges per stripe
		slotSize = 4096
		rounds   = 2000
	)
	c := New(1, false) // budget 1: cleanup always has work to consider

	var sn atomic.Uint64 // global SN allocator

	// seen holds the highest SN observed per byte range. Each slot's
	// read-compare-update must be one atomic step (slotMu): otherwise a
	// reader that finished MaxSN and then slept while a faster reader
	// raised the cell would flag a "regression" even though both reads
	// were correct when they executed inside the cache.
	var seen [stripes][perSlot]uint64
	var slotMu [stripes][perSlot]sync.Mutex

	// minSN treats everything older than the horizon as released
	// (removable) and everything newer as pinned by unreleased locks.
	var horizon atomic.Uint64
	pinningMinSN := func(uint64, extent.Extent) (extent.SN, bool) {
		return horizon.Load(), true
	}

	stop := make(chan struct{})
	var loopers sync.WaitGroup

	// Cleanup task: advance the horizon lazily and run rounds.
	loopers.Add(1)
	go func() {
		defer loopers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Everything older than half the issued SNs is "released".
			horizon.Store(sn.Load() / 2)
			c.CleanupRound(pinningMinSN)
		}
	}()

	readErr := make(chan string, 1)
	for r := 0; r < readers; r++ {
		loopers.Add(1)
		go func(seed int64) {
			defer loopers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				stripe := uint64(rng.Intn(stripes))
				slot := rng.Intn(perSlot)
				off := int64(slot) * slotSize
				mu := &slotMu[stripe][slot]
				mu.Lock()
				got, ok := c.MaxSN(stripe, extent.New(off, off+slotSize))
				if !ok {
					mu.Unlock()
					continue
				}
				prev := seen[stripe][slot]
				if got >= prev {
					seen[stripe][slot] = got
				} else if prev > horizon.Load() {
					// got < prev: legal only when the previously observed
					// entry became removable (prev <= horizon) — then the
					// range may read older or empty. A smaller SN while
					// prev is still pinned means an update was lost.
					select {
					case readErr <- "max-SN regression above cleanup horizon":
					default:
					}
				}
				mu.Unlock()
			}
		}(int64(100 + r))
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				stripe := uint64(rng.Intn(stripes))
				slot := rng.Intn(perSlot)
				s := sn.Add(1)
				off := int64(slot) * slotSize
				c.Apply(stripe, extent.New(off, off+slotSize), s)
			}
		}(int64(w))
	}
	writersWG.Wait()
	close(stop)
	loopers.Wait()

	select {
	case msg := <-readErr:
		t.Fatal(msg)
	default:
	}

	// Quiescent check: with all locks released (no pinning), a full
	// cleanup sweep must drain the cache completely, and the atomic
	// entry accounting must end exactly at zero.
	unpinned := func(uint64, extent.Extent) (extent.SN, bool) { return 0, false }
	for c.Entries() > 0 {
		if c.CleanupRound(unpinned) == 0 {
			t.Fatalf("cleanup stalled with %d entries left", c.Entries())
		}
	}
	if got := c.Entries(); got != 0 {
		t.Fatalf("entry counter %d after full drain, want 0", got)
	}
	if ins, _, _ := c.Stats(); ins != int64(writers*rounds) {
		t.Fatalf("inserts = %d, want %d", ins, writers*rounds)
	}
}

// TestConcurrentApplySameStripe checks that racing flushes to the SAME
// stripe keep the tree consistent and the winner is always the highest
// SN per byte (the §IV-B ordering rule).
func TestConcurrentApplySameStripe(t *testing.T) {
	const (
		writers = 8
		rounds  = 500
	)
	c := New(0, false)
	var wg sync.WaitGroup
	var sn atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Apply(7, extent.New(0, 4096), sn.Add(1))
			}
		}()
	}
	wg.Wait()
	got, ok := c.MaxSN(7, extent.New(0, 4096))
	if !ok || got != uint64(writers*rounds) {
		t.Fatalf("MaxSN = %d,%v; want %d", got, ok, writers*rounds)
	}
	if c.Entries() != 1 {
		t.Fatalf("entries = %d, want 1 (full overwrite)", c.Entries())
	}
}
