// Package extcache implements the data server's extent cache of §IV-B:
// a per-stripe interval structure recording the newest sequence number
// written to each byte range, which makes out-of-order data flushing
// from early-granted locks land correctly on the storage device.
//
// It also implements the two cache-size controls of the paper: an
// asynchronous cleanup task that removes entries whose SN is no larger
// than the minimum SN of unreleased write locks overlapping them (mSN),
// processing at most BatchLimit entries per round at lower priority than
// IO; and a forced-synchronization fallback that reclaims every
// outstanding write lock when cleanup cannot keep the cache under its
// entry budget.
//
// Concurrency: the cache is sharded by stripe (shard.Of) and every
// stripe carries its own mutex, so flushes to different stripes never
// contend and the cleanup task only ever stalls the one stripe it is
// scanning. Shard mutexes guard only the stripe map; stripe mutexes
// guard that stripe's mutators (tree writes, log, scan cursor); the
// global entry count and activity counters are atomics. Reads are
// lock-free: each stripe's tree is snapshot-enabled (extent.Tree
// path-copying + atomic root publication), so MaxSN answers from the
// last published snapshot under an epoch pin without touching the
// stripe mutex — a conflict probe never waits behind an Apply batch.
// Displaced tree nodes are reclaimed through the shard's epoch domain.
// See DESIGN.md §6 (Concurrency model) and §11 (Memory ordering and
// reclamation).
package extcache

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ccpfs/internal/epoch"
	"ccpfs/internal/extent"
	"ccpfs/internal/shard"
	"ccpfs/internal/sim"
)

// Defaults from the paper.
const (
	// DefaultThreshold is the entry count that triggers cleanup (256 K).
	DefaultThreshold = 256 * 1024
	// BatchLimit is the maximum entries one cleanup round processes so
	// the task never blocks normal IO for long (1,024).
	BatchLimit = 1024
)

// MinSNFunc queries the DLM service for the minimum SN among unreleased
// write locks overlapping rng on a stripe; the boolean is false when no
// such lock exists (every cached entry in rng is then removable).
type MinSNFunc func(stripe uint64, rng extent.Extent) (extent.SN, bool)

// ForceSyncFunc forces the data flushing of all clients for a stripe by
// acquiring a whole-range read lock (and releasing it).
type ForceSyncFunc func(stripe uint64)

// Cache is the extent cache for all stripes a data server owns.
type Cache struct {
	shards    [shard.Count]cacheShard
	threshold int
	logging   bool
	logFile   *LogFile // optional durable mirror; attached before traffic

	// entries mirrors the total tree entry count across stripes so the
	// budget check is one atomic load instead of a full-cache scan under
	// a lock.
	entries atomic.Int64

	// Stats.
	inserts     atomic.Int64
	cleaned     atomic.Int64
	forcedSyncs atomic.Int64
	// pinned is the number of entries the most recent cleanup round
	// visited but could not remove because an unreleased write lock's
	// mSN was below the entry's SN — the cache's cleanup lag behind the
	// lock state. It is overwritten per round, so it reads as a gauge.
	pinned atomic.Int64

	// kick wakes the cleanup daemon ahead of its next tick; see Kick.
	kick chan struct{}

	// clk is the daemon's time source (zero value: wall clock).
	clk sim.Clock
}

// SetClock points the cleanup daemon at a (virtual) clock. Call before
// Daemon starts.
func (c *Cache) SetClock(clk sim.Clock) { c.clk = clk }

// cacheShard holds the stripe map of one shard. The RWMutex guards only
// map lookup/insert; per-stripe state has its own lock. The epoch
// domain reclaims tree nodes displaced by this shard's stripes: readers
// of any stripe in the shard pin it (inside extent.Tree's Snap* path),
// and Apply batches retire into it.
type cacheShard struct {
	mu      sync.RWMutex
	stripes map[uint64]*stripeCache
	dom     epoch.Domain
}

type stripeCache struct {
	mu     sync.Mutex
	tree   extent.Tree
	cursor int64 // cleanup scan position
	log    []extent.SNExtent
}

// New returns a cache with the given entry threshold (DefaultThreshold
// when <= 0). When logging is true an extent log is kept per stripe so
// the cache can be rebuilt after a server restart (§IV-C2).
func New(threshold int, logging bool) *Cache {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	c := &Cache{
		threshold: threshold,
		logging:   logging,
		kick:      make(chan struct{}, 1),
	}
	for i := range c.shards {
		c.shards[i].stripes = make(map[uint64]*stripeCache)
	}
	return c
}

// stripe returns stripe id's cache, creating it if needed. Stripes are
// never removed from the map (ForceSync clears their contents in
// place), so the returned pointer stays valid without the shard lock.
func (c *Cache) stripe(id uint64) *stripeCache {
	sh := &c.shards[shard.Of(id)]
	sh.mu.RLock()
	sc := sh.stripes[id]
	sh.mu.RUnlock()
	if sc != nil {
		return sc
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sc = sh.stripes[id]; sc == nil {
		sc = &stripeCache{}
		sc.tree.EnableSnapshots(&sh.dom)
		sh.stripes[id] = sc
	}
	return sc
}

// lookup returns stripe id's cache without creating it.
func (c *Cache) lookup(id uint64) *stripeCache {
	sh := &c.shards[shard.Of(id)]
	sh.mu.RLock()
	sc := sh.stripes[id]
	sh.mu.RUnlock()
	return sc
}

// Apply merges an incoming flushed block (rng, sn) into the cache and
// returns the update set: the sub-ranges where the incoming data is
// newest and must be written to the device. Ranges absent from the
// update set lost to newer cached data and their bytes are discarded.
func (c *Cache) Apply(stripe uint64, rng extent.Extent, sn extent.SN) []extent.SNExtent {
	sc := c.stripe(stripe)
	sc.mu.Lock()
	before := sc.tree.Len()
	won := sc.tree.Insert(rng, sn)
	if c.logging && len(won) > 0 {
		sc.log = append(sc.log, won...)
	}
	if c.logFile != nil && len(won) > 0 {
		// Mirror to the durable log while holding the stripe lock so
		// record order matches apply order per stripe (replay only needs
		// per-stripe ordering: records carry the stripe id).
		c.logFile.Append(stripe, won)
	}
	delta := sc.tree.Len() - before
	sc.tree.Publish()
	sc.mu.Unlock()
	c.entries.Add(int64(delta))
	c.inserts.Add(1)
	return won
}

// MaxSN returns the newest SN recorded for any byte of rng. It is
// lock-free: the answer comes from the stripe tree's last published
// snapshot under an epoch pin, so probes never queue behind an Apply
// holding the stripe mutex.
func (c *Cache) MaxSN(stripe uint64, rng extent.Extent) (extent.SN, bool) {
	sc := c.lookup(stripe)
	if sc == nil {
		return 0, false
	}
	return sc.tree.SnapMaxSN(rng)
}

// Entries returns the total entry count across stripes.
func (c *Cache) Entries() int { return int(c.entries.Load()) }

// Bytes returns the modelled memory footprint (48 bytes per entry).
func (c *Cache) Bytes() int {
	return c.Entries() * extent.EntrySize
}

// NeedsCleanup reports whether the entry budget is exceeded.
func (c *Cache) NeedsCleanup() bool { return c.Entries() > c.threshold }

// forEachStripe visits every stripe currently in the cache. It snapshots
// each shard's stripe list under the shard read lock and visits without
// any lock held, so fn may lock the stripe itself.
func (c *Cache) forEachStripe(fn func(id uint64, sc *stripeCache) bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		ids := make([]uint64, 0, len(sh.stripes))
		scs := make([]*stripeCache, 0, len(sh.stripes))
		for id, sc := range sh.stripes {
			ids = append(ids, id)
			scs = append(scs, sc)
		}
		sh.mu.RUnlock()
		for j, sc := range scs {
			if !fn(ids[j], sc) {
				return
			}
		}
	}
}

// CleanupRound runs one bounded cleanup pass: it picks up to BatchLimit
// entries round-robin across stripes (resuming each stripe's scan where
// the previous round stopped), queries the mSN for each entry's range,
// and removes entries whose SN is no larger than the mSN — those can
// never be superseded by in-flight flushes because SeqDLM guarantees
// data with smaller SNs is already on the device. It returns the number
// of entries removed. Only the stripe being scanned is locked at any
// moment, so inserts on other stripes proceed unimpeded.
func (c *Cache) CleanupRound(minSN MinSNFunc) int {
	type job struct {
		stripe uint64
		sc     *stripeCache
		ents   []extent.SNExtent
	}
	var jobs []job
	budget := BatchLimit
	c.forEachStripe(func(id uint64, sc *stripeCache) bool {
		if budget <= 0 {
			return false
		}
		sc.mu.Lock()
		batch, next := sc.tree.PickBatch(sc.cursor, budget)
		if len(batch) == 0 && sc.cursor != 0 {
			// The scan ran off the end; wrap and retry immediately so a
			// round always makes progress on a non-empty stripe.
			sc.cursor = 0
			batch, next = sc.tree.PickBatch(0, budget)
		}
		if len(batch) == 0 {
			sc.mu.Unlock()
			return true
		}
		sc.cursor = next
		sc.mu.Unlock()
		budget -= len(batch)
		jobs = append(jobs, job{stripe: id, sc: sc, ents: batch})
		return true
	})

	removed := 0
	skipped := int64(0)
	for _, j := range jobs {
		// Query the mSN per entry outside the stripe lock (the DLM call
		// can block behind lock traffic). An entry is removable when its
		// SN is no larger than the mSN — SeqDLM guarantees data with
		// smaller SNs has already been written to the device, so nothing
		// in flight can still need this entry for ordering. With no
		// unreleased write lock overlapping the range, every entry is
		// removable.
		for _, ent := range j.ents {
			msn, hasLocks := minSN(j.stripe, ent.Extent)
			limit := ent.SN // no locks: the entry itself is the bound
			if hasLocks {
				limit = msn
			}
			if ent.SN > limit {
				skipped++
				continue
			}
			j.sc.mu.Lock()
			removed += j.sc.tree.RemoveLE([]extent.SNExtent{ent}, limit)
			j.sc.tree.Publish()
			j.sc.mu.Unlock()
		}
	}
	c.entries.Add(-int64(removed))
	c.cleaned.Add(int64(removed))
	c.pinned.Store(skipped)
	return removed
}

// Pinned returns how many entries the most recent cleanup round could
// not remove because they were pinned by unreleased write locks.
func (c *Cache) Pinned() int64 { return c.pinned.Load() }

// ForceSync runs the fallback of §IV-B when cleanup cannot keep the
// cache under budget: for every stripe still over its share, it forces
// all clients to flush by taking a whole-range read lock, after which
// every entry (and the extent log) can be dropped.
func (c *Cache) ForceSync(sync ForceSyncFunc) {
	type target struct {
		id uint64
		sc *stripeCache
	}
	var targets []target
	c.forEachStripe(func(id uint64, sc *stripeCache) bool {
		sc.mu.Lock()
		n := sc.tree.Len()
		sc.mu.Unlock()
		if n > 0 {
			targets = append(targets, target{id, sc})
		}
		return true
	})
	c.forcedSyncs.Add(1)

	for _, t := range targets {
		sync(t.id) // all conflicting writes are durable once this returns
		t.sc.mu.Lock()
		dropped := t.sc.tree.Len()
		t.sc.tree.Clear()
		t.sc.tree.Publish()
		t.sc.log = nil
		t.sc.cursor = 0
		t.sc.mu.Unlock()
		c.entries.Add(-int64(dropped))
	}
	if c.logFile != nil {
		// Every logged entry is now redundant: the forced sync flushed
		// all clients and the cache restarts empty.
		c.logFile.Truncate()
	}
}

// Log returns a copy of a stripe's extent log (empty when logging is
// disabled).
func (c *Cache) Log(stripe uint64) []extent.SNExtent {
	sc := c.lookup(stripe)
	if sc == nil {
		return nil
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]extent.SNExtent, len(sc.log))
	copy(out, sc.log)
	return out
}

// Replay rebuilds a stripe's cache from an extent log, the server
// recovery path of §IV-C2.
func (c *Cache) Replay(stripe uint64, log []extent.SNExtent) {
	sc := c.stripe(stripe)
	sc.mu.Lock()
	before := sc.tree.Len()
	sc.tree.Clear()
	sc.log = nil
	for _, e := range log {
		sc.tree.Insert(e.Extent, e.SN)
		if c.logging {
			sc.log = append(sc.log, e)
		}
	}
	delta := sc.tree.Len() - before
	sc.tree.Publish()
	sc.mu.Unlock()
	c.entries.Add(int64(delta))
}

// Stats reports cache activity counters.
func (c *Cache) Stats() (inserts, cleaned, forcedSyncs int64) {
	return c.inserts.Load(), c.cleaned.Load(), c.forcedSyncs.Load()
}

// Kick wakes the cleanup daemon ahead of its next tick. The flush path
// calls it right after the budget check trips: because NeedsCleanup is
// a single atomic load, the write routine can afford to test it on
// every flush and start cleanup the moment the cache goes over budget
// instead of waiting out the tick. Kick never blocks; with no daemon
// running it is a no-op.
func (c *Cache) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
	c.clk.Wakeup(c.kick)
}

// Daemon runs the periodic cleanup task until ctx is canceled: each
// tick (or Kick) it runs cleanup rounds while the cache is over budget,
// and falls back to forced synchronization when a full sweep cannot get
// it under.
func (c *Cache) Daemon(ctx context.Context, interval time.Duration, minSN MinSNFunc, force ForceSyncFunc) {
	if v := c.clk.V(); v != nil {
		// Virtual time: park on the kick channel with the tick as an
		// event-heap deadline; Kick wakes the key.
		for {
			if v.WaitOnUntil(c.kick, c.clk.Now().Add(interval)) == sim.WakeExited {
				return
			}
			select {
			case <-c.kick:
			default:
			}
			if ctx.Err() != nil {
				return
			}
			c.daemonPass(minSN, force)
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		case <-c.kick:
		}
		c.daemonPass(minSN, force)
	}
}

// daemonPass is one tick of the cleanup daemon: cleanup rounds while
// the cache is over budget, then the forced-synchronization fallback.
func (c *Cache) daemonPass(minSN MinSNFunc, force ForceSyncFunc) {
	if !c.NeedsCleanup() {
		return
	}
	// A full sweep is at most Entries/BatchLimit rounds; if the
	// cache is still over budget afterwards, the remaining entries
	// are pinned by unreleased early-granted locks — force flushing.
	rounds := c.Entries()/BatchLimit + 1
	for i := 0; i < rounds && c.NeedsCleanup(); i++ {
		c.CleanupRound(minSN)
	}
	if c.NeedsCleanup() && force != nil {
		c.ForceSync(force)
	}
}
