// Package extcache implements the data server's extent cache of §IV-B:
// a per-stripe interval structure recording the newest sequence number
// written to each byte range, which makes out-of-order data flushing
// from early-granted locks land correctly on the storage device.
//
// It also implements the two cache-size controls of the paper: an
// asynchronous cleanup task that removes entries whose SN is no larger
// than the minimum SN of unreleased write locks overlapping them (mSN),
// processing at most BatchLimit entries per round at lower priority than
// IO; and a forced-synchronization fallback that reclaims every
// outstanding write lock when cleanup cannot keep the cache under its
// entry budget.
package extcache

import (
	"sync"
	"time"

	"ccpfs/internal/extent"
)

// Defaults from the paper.
const (
	// DefaultThreshold is the entry count that triggers cleanup (256 K).
	DefaultThreshold = 256 * 1024
	// BatchLimit is the maximum entries one cleanup round processes so
	// the task never blocks normal IO for long (1,024).
	BatchLimit = 1024
)

// MinSNFunc queries the DLM service for the minimum SN among unreleased
// write locks overlapping rng on a stripe; the boolean is false when no
// such lock exists (every cached entry in rng is then removable).
type MinSNFunc func(stripe uint64, rng extent.Extent) (extent.SN, bool)

// ForceSyncFunc forces the data flushing of all clients for a stripe by
// acquiring a whole-range read lock (and releasing it).
type ForceSyncFunc func(stripe uint64)

// Cache is the extent cache for all stripes a data server owns.
type Cache struct {
	mu        sync.Mutex
	stripes   map[uint64]*stripeCache
	threshold int
	logging   bool
	logFile   *LogFile // optional durable mirror of the in-memory logs

	// Stats.
	inserts     int64
	cleaned     int64
	forcedSyncs int64
}

type stripeCache struct {
	tree   extent.Tree
	cursor int64 // cleanup scan position
	log    []extent.SNExtent
}

// New returns a cache with the given entry threshold (DefaultThreshold
// when <= 0). When logging is true an extent log is kept per stripe so
// the cache can be rebuilt after a server restart (§IV-C2).
func New(threshold int, logging bool) *Cache {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Cache{
		stripes:   make(map[uint64]*stripeCache),
		threshold: threshold,
		logging:   logging,
	}
}

func (c *Cache) stripe(id uint64) *stripeCache {
	sc := c.stripes[id]
	if sc == nil {
		sc = &stripeCache{}
		c.stripes[id] = sc
	}
	return sc
}

// Apply merges an incoming flushed block (rng, sn) into the cache and
// returns the update set: the sub-ranges where the incoming data is
// newest and must be written to the device. Ranges absent from the
// update set lost to newer cached data and their bytes are discarded.
func (c *Cache) Apply(stripe uint64, rng extent.Extent, sn extent.SN) []extent.SNExtent {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc := c.stripe(stripe)
	won := sc.tree.Insert(rng, sn)
	c.inserts++
	if c.logging && len(won) > 0 {
		sc.log = append(sc.log, won...)
	}
	if c.logFile != nil && len(won) > 0 {
		// Mirror to the durable log while holding c.mu so record order
		// matches apply order.
		c.logFile.Append(stripe, won)
	}
	return won
}

// MaxSN returns the newest SN recorded for any byte of rng.
func (c *Cache) MaxSN(stripe uint64, rng extent.Extent) (extent.SN, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stripe(stripe).tree.MaxSNOverlapping(rng)
}

// Entries returns the total entry count across stripes.
func (c *Cache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, sc := range c.stripes {
		n += sc.tree.Len()
	}
	return n
}

// Bytes returns the modelled memory footprint (48 bytes per entry).
func (c *Cache) Bytes() int {
	return c.Entries() * extent.EntrySize
}

// NeedsCleanup reports whether the entry budget is exceeded.
func (c *Cache) NeedsCleanup() bool { return c.Entries() > c.threshold }

// CleanupRound runs one bounded cleanup pass: it picks up to BatchLimit
// entries round-robin across stripes (resuming each stripe's scan where
// the previous round stopped), queries the mSN for each entry's range,
// and removes entries whose SN is no larger than the mSN — those can
// never be superseded by in-flight flushes because SeqDLM guarantees
// data with smaller SNs is already on the device. It returns the number
// of entries removed.
func (c *Cache) CleanupRound(minSN MinSNFunc) int {
	type job struct {
		stripe uint64
		ents   []extent.SNExtent
	}
	var jobs []job
	c.mu.Lock()
	budget := BatchLimit
	for id, sc := range c.stripes {
		if budget <= 0 {
			break
		}
		batch, next := sc.tree.PickBatch(sc.cursor, budget)
		if len(batch) == 0 {
			// Wrap the scan for the next round.
			sc.cursor = 0
			continue
		}
		sc.cursor = next
		budget -= len(batch)
		jobs = append(jobs, job{stripe: id, ents: batch})
	}
	c.mu.Unlock()

	removed := 0
	for _, j := range jobs {
		// Query the mSN per entry outside the cache lock (the DLM call
		// can block behind lock traffic). An entry is removable when its
		// SN is no larger than the mSN — SeqDLM guarantees data with
		// smaller SNs has already been written to the device, so nothing
		// in flight can still need this entry for ordering. With no
		// unreleased write lock overlapping the range, every entry is
		// removable.
		for _, ent := range j.ents {
			msn, hasLocks := minSN(j.stripe, ent.Extent)
			limit := ent.SN // no locks: the entry itself is the bound
			if hasLocks {
				limit = msn
			}
			if ent.SN > limit {
				continue
			}
			c.mu.Lock()
			if sc := c.stripes[j.stripe]; sc != nil {
				removed += sc.tree.RemoveLE([]extent.SNExtent{ent}, limit)
			}
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	c.cleaned += int64(removed)
	c.mu.Unlock()
	return removed
}

// ForceSync runs the fallback of §IV-B when cleanup cannot keep the
// cache under budget: for every stripe still over its share, it forces
// all clients to flush by taking a whole-range read lock, after which
// every entry (and the extent log) can be dropped.
func (c *Cache) ForceSync(sync ForceSyncFunc) {
	c.mu.Lock()
	var ids []uint64
	for id, sc := range c.stripes {
		if sc.tree.Len() > 0 {
			ids = append(ids, id)
		}
	}
	c.forcedSyncs++
	c.mu.Unlock()

	for _, id := range ids {
		sync(id) // all conflicting writes are durable once this returns
		c.mu.Lock()
		if sc := c.stripes[id]; sc != nil {
			sc.tree.Clear()
			sc.log = nil
			sc.cursor = 0
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	lf := c.logFile
	c.mu.Unlock()
	if lf != nil {
		// Every logged entry is now redundant: the forced sync flushed
		// all clients and the cache restarts empty.
		lf.Truncate()
	}
}

// Log returns a copy of a stripe's extent log (empty when logging is
// disabled).
func (c *Cache) Log(stripe uint64) []extent.SNExtent {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc := c.stripes[stripe]
	if sc == nil {
		return nil
	}
	out := make([]extent.SNExtent, len(sc.log))
	copy(out, sc.log)
	return out
}

// Replay rebuilds a stripe's cache from an extent log, the server
// recovery path of §IV-C2.
func (c *Cache) Replay(stripe uint64, log []extent.SNExtent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc := c.stripe(stripe)
	sc.tree.Clear()
	sc.log = nil
	for _, e := range log {
		sc.tree.Insert(e.Extent, e.SN)
		if c.logging {
			sc.log = append(sc.log, e)
		}
	}
}

// Stats reports cache activity counters.
func (c *Cache) Stats() (inserts, cleaned, forcedSyncs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inserts, c.cleaned, c.forcedSyncs
}

// Daemon runs the periodic cleanup task until stop is closed: each tick
// it runs cleanup rounds while the cache is over budget, and falls back
// to forced synchronization when a full sweep cannot get it under.
func (c *Cache) Daemon(interval time.Duration, minSN MinSNFunc, force ForceSyncFunc, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if !c.NeedsCleanup() {
			continue
		}
		// A full sweep is at most Entries/BatchLimit rounds; if the
		// cache is still over budget afterwards, the remaining entries
		// are pinned by unreleased early-granted locks — force flushing.
		rounds := c.Entries()/BatchLimit + 1
		for i := 0; i < rounds && c.NeedsCleanup(); i++ {
			c.CleanupRound(minSN)
		}
		if c.NeedsCleanup() && force != nil {
			c.ForceSync(force)
		}
	}
}
