package extcache

// This file adds durable extent logs: the in-memory per-stripe log of
// §IV-B/§IV-C2 serialized to an append-only file so a data server that
// really restarts (new process, same data directory) can rebuild its
// extent cache. Records are fixed-size little-endian with a per-record
// checksum; a torn tail (crash mid-append) is detected and truncated at
// replay.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ccpfs/internal/extent"
)

// logMagic guards against replaying a foreign file.
const logMagic = 0x53514c47 // "SQLG"

// logRecordSize is the on-disk record size: stripe, start, end, sn,
// checksum.
const logRecordSize = 8 + 8 + 8 + 8 + 4

// LogFile is an append-only durable extent log for all stripes of one
// data server.
type LogFile struct {
	mu sync.Mutex
	f  *os.File
}

// OpenLogFile opens (creating if needed) the extent log in dir.
func OpenLogFile(dir string) (*LogFile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "extent.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:4], logMagic)
		binary.LittleEndian.PutUint32(hdr[4:], 1) // version
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &LogFile{f: f}, nil
}

func checksum(rec []byte) uint32 {
	// FNV-1a over the record body.
	h := uint32(2166136261)
	for _, b := range rec {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// Append durably records the update-set entries of a flushed write.
func (l *LogFile) Append(stripe uint64, ents []extent.SNExtent) error {
	if len(ents) == 0 {
		return nil
	}
	buf := make([]byte, 0, len(ents)*logRecordSize)
	for _, e := range ents {
		var rec [logRecordSize]byte
		binary.LittleEndian.PutUint64(rec[0:], stripe)
		binary.LittleEndian.PutUint64(rec[8:], uint64(e.Start))
		binary.LittleEndian.PutUint64(rec[16:], uint64(e.End))
		binary.LittleEndian.PutUint64(rec[24:], e.SN)
		binary.LittleEndian.PutUint32(rec[32:], checksum(rec[:32]))
		buf = append(buf, rec[:]...)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.f.Write(buf)
	return err
}

// Sync flushes the log to stable storage.
func (l *LogFile) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Close closes the log.
func (l *LogFile) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Truncate discards the log contents (after a forced synchronization
// made every entry redundant, §IV-B).
func (l *LogFile) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(8); err != nil {
		return err
	}
	_, err := l.f.Seek(0, io.SeekEnd)
	return err
}

// ReadAll replays the log, returning entries grouped by stripe in append
// order. A corrupt or torn tail ends the replay at the last good record.
func (l *LogFile) ReadAll() (map[uint64][]extent.SNExtent, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
		return nil, fmt.Errorf("extcache: log header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[:4]) != logMagic {
		return nil, fmt.Errorf("extcache: not an extent log")
	}
	out := make(map[uint64][]extent.SNExtent)
	var rec [logRecordSize]byte
	for {
		if _, err := io.ReadFull(l.f, rec[:]); err != nil {
			break // EOF or torn tail: stop at the last good record
		}
		if binary.LittleEndian.Uint32(rec[32:]) != checksum(rec[:32]) {
			break
		}
		stripe := binary.LittleEndian.Uint64(rec[0:])
		e := extent.SNExtent{
			Extent: extent.Extent{
				Start: int64(binary.LittleEndian.Uint64(rec[8:])),
				End:   int64(binary.LittleEndian.Uint64(rec[16:])),
			},
			SN: binary.LittleEndian.Uint64(rec[24:]),
		}
		if e.Empty() {
			break
		}
		out[stripe] = append(out[stripe], e)
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return out, nil
}

// AttachLogFile mirrors every Apply's update set into the durable log.
// Call it once, right after New, before any concurrent use: the field
// is read without synchronization on the flush hot path.
func (c *Cache) AttachLogFile(lf *LogFile) {
	c.logFile = lf
}

// ReplayLogFile rebuilds the cache from a durable log (server restart).
func (c *Cache) ReplayLogFile(lf *LogFile) error {
	byStripe, err := lf.ReadAll()
	if err != nil {
		return err
	}
	// Deterministic stripe order keeps replay reproducible.
	stripes := make([]uint64, 0, len(byStripe))
	for s := range byStripe {
		stripes = append(stripes, s)
	}
	sort.Slice(stripes, func(i, j int) bool { return stripes[i] < stripes[j] })
	for _, s := range stripes {
		c.Replay(s, byStripe[s])
	}
	return nil
}
