package extcache

import (
	"context"
	"sync"
	"testing"
	"time"

	"ccpfs/internal/extent"
)

func TestApplyUpdateSetOrdering(t *testing.T) {
	c := New(0, false)
	// Reproduce the Fig. 15 routine: cached S[0,4K,8]; incoming blocks
	// D[0,2K,7], D[2K,4K,9], D[4K,8K,9].
	c.Apply(1, extent.New(0, 4096), 8)

	if won := c.Apply(1, extent.New(0, 2048), 7); len(won) != 0 {
		t.Fatalf("stale block won: %v", won)
	}
	won := c.Apply(1, extent.New(2048, 4096), 9)
	if len(won) != 1 || won[0].Extent != extent.New(2048, 4096) || won[0].SN != 9 {
		t.Fatalf("update set = %v, want [2K,4K)@9", won)
	}
	won = c.Apply(1, extent.New(4096, 8192), 9)
	if len(won) != 1 || won[0].Extent != extent.New(4096, 8192) {
		t.Fatalf("update set = %v, want [4K,8K)@9", won)
	}
	// Final state: [0,2K)@8, [2K,8K)@9 (merged).
	if sn, _ := c.MaxSN(1, extent.New(0, 2048)); sn != 8 {
		t.Fatalf("SN[0,2K) = %d, want 8", sn)
	}
	if sn, _ := c.MaxSN(1, extent.New(2048, 8192)); sn != 9 {
		t.Fatalf("SN[2K,8K) = %d, want 9", sn)
	}
	if c.Entries() != 2 {
		t.Fatalf("entries = %d, want 2 (adjacent same-SN merged)", c.Entries())
	}
}

func TestOutOfOrderFlushKeepsNewest(t *testing.T) {
	c := New(0, false)
	// Newer flush arrives first.
	c.Apply(1, extent.New(0, 1024), 5)
	won := c.Apply(1, extent.New(0, 1024), 3)
	if len(won) != 0 {
		t.Fatal("older flush overwrote newer data")
	}
	// Equal SN (same lock, later local write) wins.
	won = c.Apply(1, extent.New(0, 512), 5)
	if len(won) != 1 {
		t.Fatal("equal-SN rewrite lost")
	}
}

func TestEntriesAndBytes(t *testing.T) {
	c := New(0, false)
	c.Apply(1, extent.New(0, 10), 1)
	c.Apply(1, extent.New(100, 110), 2)
	c.Apply(2, extent.New(0, 10), 1)
	if c.Entries() != 3 {
		t.Fatalf("entries = %d, want 3", c.Entries())
	}
	if c.Bytes() != 3*extent.EntrySize {
		t.Fatalf("bytes = %d", c.Bytes())
	}
}

func TestNeedsCleanupThreshold(t *testing.T) {
	c := New(4, false)
	for i := int64(0); i < 4; i++ {
		c.Apply(1, extent.Span(i*100, 10), extent.SN(i+1))
	}
	if c.NeedsCleanup() {
		t.Fatal("cleanup triggered at threshold")
	}
	c.Apply(1, extent.Span(1000, 10), 9)
	if !c.NeedsCleanup() {
		t.Fatal("cleanup not triggered above threshold")
	}
}

func TestCleanupRoundRemovesOnlyBelowMSN(t *testing.T) {
	c := New(0, false)
	for i := int64(0); i < 10; i++ {
		c.Apply(1, extent.Span(i*100, 50), extent.SN(i+1))
	}
	// mSN = 5: entries with SN <= 5 are removable.
	minSN := func(stripe uint64, rng extent.Extent) (extent.SN, bool) { return 5, true }
	removed := c.CleanupRound(minSN)
	if removed != 5 {
		t.Fatalf("removed %d entries, want 5", removed)
	}
	if c.Entries() != 5 {
		t.Fatalf("entries = %d, want 5", c.Entries())
	}
	// No unreleased locks: everything is removable.
	removed = c.CleanupRound(func(uint64, extent.Extent) (extent.SN, bool) { return 0, false })
	// The cursor may need a wrap-around round to see the start again.
	removed += c.CleanupRound(func(uint64, extent.Extent) (extent.SN, bool) { return 0, false })
	if c.Entries() != 0 {
		t.Fatalf("entries = %d after full cleanup (removed %d)", c.Entries(), removed)
	}
}

func TestCleanupRespectsBatchLimit(t *testing.T) {
	c := New(0, false)
	for i := int64(0); i < int64(BatchLimit)+500; i++ {
		c.Apply(1, extent.Span(i*10, 5), extent.SN(i+1))
	}
	removed := c.CleanupRound(func(uint64, extent.Extent) (extent.SN, bool) { return 0, false })
	if removed > BatchLimit {
		t.Fatalf("one round removed %d > BatchLimit", removed)
	}
}

func TestForceSync(t *testing.T) {
	c := New(0, false)
	c.Apply(1, extent.New(0, 100), 1)
	c.Apply(2, extent.New(0, 100), 2)
	var mu sync.Mutex
	synced := map[uint64]bool{}
	c.ForceSync(func(stripe uint64) {
		mu.Lock()
		synced[stripe] = true
		mu.Unlock()
	})
	if !synced[1] || !synced[2] {
		t.Fatalf("forced sync missed stripes: %v", synced)
	}
	if c.Entries() != 0 {
		t.Fatal("entries survived forced sync")
	}
	_, _, fs := c.Stats()
	if fs != 1 {
		t.Fatalf("forcedSyncs = %d", fs)
	}
}

func TestExtentLogReplay(t *testing.T) {
	c := New(0, true)
	c.Apply(1, extent.New(0, 4096), 8)
	c.Apply(1, extent.New(2048, 8192), 9)
	log := c.Log(1)
	if len(log) == 0 {
		t.Fatal("no log recorded")
	}

	// A recovered server replays the log into a fresh cache and must
	// reach the same state.
	c2 := New(0, true)
	c2.Replay(1, log)
	for _, probe := range []struct {
		rng extent.Extent
		sn  extent.SN
	}{
		{extent.New(0, 2048), 8},
		{extent.New(2048, 8192), 9},
	} {
		got, ok := c2.MaxSN(1, probe.rng)
		want, _ := c.MaxSN(1, probe.rng)
		if !ok || got != want || got != probe.sn {
			t.Fatalf("replayed SN for %v = %d, want %d", probe.rng, got, probe.sn)
		}
	}
}

func TestLogDisabled(t *testing.T) {
	c := New(0, false)
	c.Apply(1, extent.New(0, 100), 1)
	if got := c.Log(1); len(got) != 0 {
		t.Fatalf("log recorded with logging disabled: %v", got)
	}
}

func TestDaemonCleansWhenOverBudget(t *testing.T) {
	c := New(8, false)
	for i := int64(0); i < 32; i++ {
		c.Apply(1, extent.Span(i*100, 50), extent.SN(i+1))
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Daemon(ctx, time.Millisecond,
			func(uint64, extent.Extent) (extent.SN, bool) { return 0, false },
			nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.NeedsCleanup() {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if c.NeedsCleanup() {
		t.Fatalf("daemon left %d entries above budget", c.Entries())
	}
}

func TestDaemonForcesSyncWhenPinned(t *testing.T) {
	c := New(4, false)
	for i := int64(0); i < 16; i++ {
		c.Apply(1, extent.Span(i*100, 50), extent.SN(i+1))
	}
	// Every entry is pinned: mSN = 0 with locks outstanding.
	forced := make(chan struct{}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Daemon(ctx, time.Millisecond,
			func(uint64, extent.Extent) (extent.SN, bool) { return 0, true },
			func(stripe uint64) {
				select {
				case forced <- struct{}{}:
				default:
				}
			})
	}()
	select {
	case <-forced:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never fell back to forced synchronization")
	}
	cancel()
	<-done
}

func TestConcurrentApply(t *testing.T) {
	c := New(0, false)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 200; i++ {
				c.Apply(uint64(g%4), extent.Span(i*64, 64), extent.SN(g*1000+int(i)))
			}
		}(g)
	}
	wg.Wait()
	if c.Entries() == 0 {
		t.Fatal("no entries after concurrent applies")
	}
}

func BenchmarkApplySequential(b *testing.B) {
	c := New(0, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := int64(i%100000) * 4096
		c.Apply(1, extent.Span(off, 4096), extent.SN(i))
	}
}

func BenchmarkApplyOverlapping(b *testing.B) {
	c := New(0, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := int64(i%1000) * 2048 // heavy overlap, constant splitting
		c.Apply(1, extent.Span(off, 47008), extent.SN(i))
	}
}

func BenchmarkCleanupRoundLoaded(b *testing.B) {
	c := New(0, false)
	for i := int64(0); i < 100_000; i++ {
		c.Apply(1, extent.Span(i*100, 50), extent.SN(i+1))
	}
	noLocks := func(uint64, extent.Extent) (extent.SN, bool) { return 0, false }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.CleanupRound(noLocks) == 0 {
			b.StopTimer()
			for j := int64(0); j < 100_000; j++ {
				c.Apply(1, extent.Span(j*100, 50), extent.SN(j+1))
			}
			b.StartTimer()
		}
	}
}
