package wire

import "sync"

// Buffer ownership rules
//
// The pools below back the RPC hot path. Correct reuse depends on a
// small set of ownership rules, stated here once:
//
//   - Encoder frames: the frame returned by Encoder.Bytes is owned by
//     the encoder. A transport.Conn must not retain it after Send
//     returns (every conn either copies or writes synchronously), so
//     the sender may PutEncoder immediately after Send.
//
//   - Received frames: a frame returned by Conn.Recv is owned by the
//     receiver. Decoded messages may alias it (Decoder.Bytes32 does
//     not copy), so a handler that retains payload bytes past its
//     return must copy them; the rpc layer is then free to recycle
//     the frame.
//
//   - GetBuf/PutBuf: the caller that Gets a buffer owns it until it
//     either Puts it back or hands it to a message that implements
//     Recycler, in which case the rpc layer calls Recycle once the
//     bytes are on the wire.
//
// Pools are size-classed so one 16 MB flush frame does not pin a pool
// slot that every 30-byte lock request then inherits: Get draws from
// the smallest class that fits, Put files the buffer under the largest
// class it can still serve fully.

// classes are the pooled buffer capacities. Requests larger than the
// top class fall through to plain allocation.
var classes = [...]int{256, 4 << 10, 64 << 10, 1 << 20, 16 << 20}

var encPools [len(classes)]sync.Pool

// classFor returns the index of the smallest class that holds n bytes,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	for i, c := range classes {
		if n <= c {
			return i
		}
	}
	return -1
}

// classUnder returns the index of the largest class a buffer of
// capacity c can fully serve, or -1 when c is below the smallest class.
func classUnder(c int) int {
	for i := len(classes) - 1; i >= 0; i-- {
		if c >= classes[i] {
			return i
		}
	}
	return -1
}

// Reset truncates the encoder for reuse, keeping its buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// GetEncoder returns a pooled encoder with capacity for at least n
// bytes. Pair with PutEncoder once the frame is no longer referenced.
func GetEncoder(n int) *Encoder {
	i := classFor(n)
	if i < 0 {
		return NewEncoder(n)
	}
	if v := encPools[i].Get(); v != nil {
		e := v.(*Encoder)
		e.Reset()
		return e
	}
	return NewEncoder(classes[i])
}

// PutEncoder recycles an encoder obtained from GetEncoder. The caller
// must not touch the encoder or any frame it returned afterwards.
func PutEncoder(e *Encoder) {
	i := classUnder(cap(e.buf))
	if i < 0 {
		return
	}
	encPools[i].Put(e)
}

var bufPools [len(classes)]sync.Pool

// GetBuf returns a length-n byte slice drawn from the size-classed
// pools (plain allocation beyond the largest class).
func GetBuf(n int) []byte {
	i := classFor(n)
	if i < 0 {
		return make([]byte, n)
	}
	if v := bufPools[i].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, classes[i])[:n]
}

// PutBuf recycles a buffer obtained from GetBuf. The caller must not
// touch it afterwards.
func PutBuf(b []byte) {
	i := classUnder(cap(b))
	if i < 0 {
		return
	}
	b = b[:0]
	bufPools[i].Put(&b)
}

// Recycler is implemented by messages whose payload rides in a pooled
// buffer. The rpc layer calls Recycle exactly once, after the encoded
// response frame is on the wire, returning the buffer to its pool.
type Recycler interface{ Recycle() }
