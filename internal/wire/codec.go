// Package wire defines every RPC message exchanged in ccPFS and a
// compact binary codec for them. The prototype in the paper rides on
// CaRT/Mercury; here each message marshals to a flat little-endian frame
// so the same bytes travel over both the in-process simulated fabric and
// real TCP.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports a frame shorter than its declared contents.
var ErrTruncated = errors.New("wire: truncated message")

// Encoder appends primitive values to a buffer. The zero value is ready
// to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// Bytes returns the encoded frame.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes32 appends a length-prefixed byte slice (max 4 GiB-1).
func (e *Encoder) Bytes32(b []byte) {
	if len(b) > math.MaxUint32 {
		panic("wire: slice too large")
	}
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	if len(s) > math.MaxUint32 {
		panic("wire: string too large")
	}
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads primitive values from a frame. Errors are sticky: after
// the first failure every read returns the zero value, and Err reports
// the failure.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a frame for decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the sticky decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Finish returns the sticky error, or an error if unread bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.buf)-d.off < n {
		d.err = ErrTruncated
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a boolean byte.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// StrictBool reads a boolean byte, rejecting values other than 0 and 1.
// Messages whose frames must re-encode byte-identically (the batched
// revocation path re-marshals decoded entries) use it so a non-canonical
// encoding cannot survive a round trip.
func (d *Decoder) StrictBool() bool {
	v := d.U8()
	if v > 1 && d.err == nil {
		d.err = fmt.Errorf("wire: invalid bool byte %d", v)
	}
	return v == 1
}

// Bytes32 reads a length-prefixed byte slice. The result aliases the
// frame; callers that retain it past the frame's lifetime must copy.
func (d *Decoder) Bytes32() []byte {
	n := int(d.U32())
	if !d.need(n) {
		return nil
	}
	v := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes32()) }

// Len32 reads a collection length and validates it against a per-element
// lower bound so a corrupt length cannot trigger a huge allocation.
func (d *Decoder) Len32(minElemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if minElemSize > 0 && n > (len(d.buf)-d.off)/minElemSize {
		d.err = ErrTruncated
		return 0
	}
	return n
}
